// Smart-shelf inventory (paper §3.1, Rule 2): the shelf reader bulk-reads
// every resident tag every 30 seconds; infield/outfield rules distill the
// raw read storm into "object placed" / "object removed" transitions and
// keep the OBSERVATION table as the filtered inventory log.
//
//   ./build/examples/smart_shelf

#include <cstdio>
#include <map>

#include "engine/engine.h"
#include "sim/workload.h"
#include "store/database.h"
#include "store/sql_executor.h"

using rfidcep::Status;
using rfidcep::engine::RcedaEngine;
using rfidcep::engine::RuleFiring;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  rfidcep::store::Database db;
  if (Status s = db.InstallRfidSchema(); !s.ok()) return Fail(s);

  RcedaEngine engine(&db, rfidcep::events::Environment{});
  Status added = engine.AddRulesFromText(R"(
    CREATE RULE infield, infield filtering
    ON WITHIN(NOT observation("shelf-A", o, t1);
              observation("shelf-A", o, t2), 30sec)
    IF true
    DO INSERT INTO OBSERVATION VALUES ("shelf-A", o, t2);
       notify infield

    CREATE RULE outfield, outfield filtering
    ON WITHIN(observation("shelf-A", o, t1);
              NOT observation("shelf-A", o, t2), 30sec)
    IF true
    DO notify outfield
  )");
  if (!added.ok()) return Fail(added);
  if (Status s = engine.Compile(); !s.ok()) return Fail(s);

  std::map<std::string, int> inventory_events;
  engine.RegisterProcedure(
      "notify infield", [&](const RuleFiring& firing, const std::string&) {
        std::string object = firing.params.at("o").scalar.AsString();
        ++inventory_events[object];
        std::printf("  + %-12s placed on shelf   (t=%s)\n", object.c_str(),
                    rfidcep::FormatTimePoint(firing.instance->t_end())
                        .c_str());
      });
  engine.RegisterProcedure(
      "notify outfield", [&](const RuleFiring& firing, const std::string&) {
        std::string object = firing.params.at("o").scalar.AsString();
        --inventory_events[object];
        std::printf("  - %-12s taken off shelf   (last seen t=%s)\n",
                    object.c_str(),
                    rfidcep::FormatTimePoint(firing.instance->t_begin())
                        .c_str());
      });

  // Simulated shelf occupancy: soda stays all day, chips arrive at scan 3
  // and leave at scan 7, candy makes two separate visits.
  using rfidcep::kSecond;
  rfidcep::sim::ShelfConfig shelf;
  shelf.reader = "shelf-A";
  shelf.scans = 12;
  shelf.read_jitter = 0;
  std::vector<rfidcep::sim::ShelfStay> stays = {
      {"soda-001", 0, 12 * shelf.scan_period},
      {"chips-002", 3 * shelf.scan_period, 7 * shelf.scan_period},
      {"candy-003", 1 * shelf.scan_period, 4 * shelf.scan_period},
      {"candy-003", 9 * shelf.scan_period, 12 * shelf.scan_period},
  };
  rfidcep::Prng prng(7);
  std::vector<rfidcep::events::Observation> reads =
      rfidcep::sim::GenerateShelf(shelf, stays, &prng);

  std::printf("raw shelf reads: %zu (bulk scan every 30s)\n", reads.size());
  std::printf("inventory transitions detected:\n");
  for (const auto& obs : reads) {
    if (Status s = engine.Process(obs); !s.ok()) return Fail(s);
  }
  if (Status s = engine.Flush(); !s.ok()) return Fail(s);

  auto rows = rfidcep::store::ExecuteSql(
      "SELECT object, ts FROM OBSERVATION ORDER BY ts", &db);
  if (!rows.ok()) return Fail(rows.status());
  std::printf("\nfiltered inventory log: %zu rows (vs %zu raw reads)\n",
              rows->rows.size(), reads.size());
  std::printf("infield events fired: %llu, outfield events fired: %llu\n",
              static_cast<unsigned long long>(engine.FiredCount("infield")),
              static_cast<unsigned long long>(engine.FiredCount("outfield")));
  return 0;
}
