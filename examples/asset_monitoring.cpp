// Real-time asset monitoring (paper Example 2 / Rule 5): alert when a
// tagged laptop leaves the building without a superuser badge within the
// 5-second window. Demonstrates negated events, WITHIN constraints, and
// pseudo-event driven detection — the scenarios a polling system can't
// express declaratively.
//
//   ./build/examples/asset_monitoring

#include <cstdio>

#include "engine/engine.h"
#include "epc/catalog.h"

using rfidcep::Status;
using rfidcep::engine::RcedaEngine;
using rfidcep::engine::RuleFiring;
using rfidcep::events::Observation;

namespace {

constexpr rfidcep::TimePoint kSec = rfidcep::kSecond;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  // type() is resolved through a product catalog; here we map exact tag
  // ids the way a badge/asset database would.
  rfidcep::epc::ProductCatalog catalog;
  catalog.RegisterExact("tag-laptop-7781", "laptop");
  catalog.RegisterExact("tag-laptop-9313", "laptop");
  catalog.RegisterExact("tag-badge-alice", "superuser");
  catalog.RegisterExact("tag-badge-bob", "superuser");
  catalog.RegisterExact("tag-mug-0001", "mug");

  RcedaEngine engine(nullptr,
                     rfidcep::events::Environment{&catalog, nullptr});
  Status added = engine.AddRulesFromText(R"(
    DEFINE E4 = observation("exit-door", o4, t4), type(o4) = "laptop"
    DEFINE E5 = observation("exit-door", o5, t5), type(o5) = "superuser"
    CREATE RULE r5, asset monitoring rule
    ON WITHIN(E4 AND NOT E5, 5sec)
    IF true
    DO send alarm
  )");
  if (!added.ok()) return Fail(added);
  if (Status s = engine.Compile(); !s.ok()) return Fail(s);

  engine.RegisterProcedure(
      "send alarm", [](const RuleFiring& firing, const std::string&) {
        std::printf("  >>> SECURITY ALERT: %s left unescorted (window "
                    "[%s, %s])\n",
                    firing.params.at("o4").scalar.AsString().c_str(),
                    rfidcep::FormatTimePoint(firing.instance->t_begin())
                        .c_str(),
                    rfidcep::FormatTimePoint(firing.instance->t_end())
                        .c_str());
      });

  struct Scripted {
    Observation obs;
    const char* note;
  };
  const Scripted script[] = {
      {{"exit-door", "tag-badge-alice", 8 * kSec},
       "Alice badges out ahead of her laptop"},
      {{"exit-door", "tag-laptop-7781", 10 * kSec},
       "laptop 7781 exits 2s later -> escorted, no alarm"},
      {{"exit-door", "tag-mug-0001", 25 * kSec},
       "a mug exits -> not an asset, ignored"},
      {{"exit-door", "tag-laptop-9313", 40 * kSec},
       "laptop 9313 exits with nobody around..."},
      {{"exit-door", "tag-laptop-7781", 60 * kSec},
       "laptop 7781 exits again..."},
      {{"exit-door", "tag-badge-bob", 62 * kSec},
       "...but Bob badges out 2s after it -> no alarm"},
  };

  for (const Scripted& step : script) {
    std::printf("t=%-3lld %-55s\n",
                static_cast<long long>(step.obs.timestamp / kSec), step.note);
    if (Status s = engine.Process(step.obs); !s.ok()) return Fail(s);
  }
  // End of shift: fire the pending expiry checks.
  std::printf("t=end flushing pending windows\n");
  if (Status s = engine.Flush(); !s.ok()) return Fail(s);

  std::printf("\nalarms raised: %llu (expected 1 — laptop 9313)\n",
              static_cast<unsigned long long>(engine.FiredCount("r5")));
  return engine.FiredCount("r5") == 1 ? 0 : 1;
}
