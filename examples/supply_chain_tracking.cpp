// End-to-end supply-chain tracking: the paper's five rules over a
// simulated RFID-enabled supply chain (warehouse packing, smart shelves,
// dock tracking, exit monitoring), with the resulting semantic data in
// the RFID data store.
//
//   ./build/examples/supply_chain_tracking [num_events] [seed]

#include <cstdio>
#include <cstdlib>

#include "engine/engine.h"
#include "sim/supply_chain.h"
#include "store/sql_executor.h"

using rfidcep::Status;
using rfidcep::engine::RcedaEngine;
using rfidcep::engine::RuleFiring;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

void PrintQuery(rfidcep::store::Database* db, const char* title,
                const std::string& sql, size_t max_rows = 8) {
  auto result = rfidcep::store::ExecuteSql(sql, db);
  if (!result.ok()) {
    std::printf("%s: query failed: %s\n", title,
                result.status().ToString().c_str());
    return;
  }
  std::printf("\n%s (%zu rows)\n", title, result->rows.size());
  for (size_t i = 0; i < result->rows.size() && i < max_rows; ++i) {
    std::printf("  ");
    for (size_t c = 0; c < result->rows[i].size(); ++c) {
      std::printf("%s%s", c > 0 ? " | " : "",
                  result->rows[i][c].ToString().c_str());
    }
    std::printf("\n");
  }
  if (result->rows.size() > max_rows) {
    std::printf("  ... (%zu more)\n", result->rows.size() - max_rows);
  }
}

}  // namespace

int main(int argc, char** argv) {
  size_t num_events = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  rfidcep::sim::SupplyChainConfig config;
  config.seed = seed;
  config.num_sites = 1;
  rfidcep::sim::SupplyChain chain(config);

  rfidcep::store::Database db;
  if (Status s = db.InstallRfidSchema(); !s.ok()) return Fail(s);

  RcedaEngine engine(&db, chain.environment());
  int alarms = 0;
  int duplicates = 0;
  engine.RegisterProcedure("send alarm",
                           [&](const RuleFiring& firing, const std::string&) {
                             ++alarms;
                             if (alarms <= 3) {
                               std::printf(
                                   "  [ALERT] unescorted laptop at exit, "
                                   "t=%s\n",
                                   rfidcep::FormatTimePoint(firing.fire_time)
                                       .c_str());
                             }
                           });
  engine.RegisterProcedure(
      "send duplicate msg",
      [&](const RuleFiring&, const std::string&) { ++duplicates; });

  if (Status s = engine.AddRulesFromText(chain.PaperRuleProgram()); !s.ok()) {
    return Fail(s);
  }
  if (Status s = engine.Compile(); !s.ok()) return Fail(s);

  std::printf("generating ~%zu observations (seed %llu)...\n", num_events,
              static_cast<unsigned long long>(seed));
  std::vector<rfidcep::events::Observation> stream =
      chain.GenerateStream(num_events);
  std::printf("streaming %zu observations through RCEDA...\n", stream.size());
  for (const auto& obs : stream) {
    if (Status s = engine.Process(obs); !s.ok()) return Fail(s);
  }
  if (Status s = engine.Flush(); !s.ok()) return Fail(s);

  const rfidcep::engine::EngineStats& stats = engine.stats();
  std::printf("\n--- engine summary ---\n");
  std::printf("observations         %llu\n",
              static_cast<unsigned long long>(stats.detector.observations));
  std::printf("primitive matches    %llu\n",
              static_cast<unsigned long long>(
                  stats.detector.primitive_matches));
  std::printf("complex instances    %llu\n",
              static_cast<unsigned long long>(
                  stats.detector.instances_produced));
  std::printf("pseudo events fired  %llu\n",
              static_cast<unsigned long long>(stats.detector.pseudo_fired));
  std::printf("rules fired          %llu\n",
              static_cast<unsigned long long>(stats.rules_fired));
  std::printf("duplicates flagged   %d\n", duplicates);
  std::printf("exit alarms          %d\n", alarms);
  for (const char* id : {"r1", "r2", "r3", "r4", "r5"}) {
    std::printf("  rule %-3s fired %llu times\n", id,
                static_cast<unsigned long long>(engine.FiredCount(id)));
  }

  PrintQuery(&db, "OBJECTCONTAINMENT (packing aggregation, Rule 4)",
             "SELECT parent_epc, object_epc, tstart FROM OBJECTCONTAINMENT "
             "ORDER BY tstart");
  PrintQuery(&db, "OBJECTLOCATION with open periods (Rule 3)",
             "SELECT object_epc, loc_id, tstart FROM OBJECTLOCATION "
             "WHERE tend = \"UC\" ORDER BY tstart");
  PrintQuery(&db, "Filtered shelf inventory (infield events, Rule 2)",
             "SELECT object, ts FROM OBSERVATION ORDER BY ts");
  return 0;
}
