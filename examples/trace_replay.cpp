// rfidcep trace replay tool: run a rule program over an observation trace
// (or a freshly simulated workload) and report what fired.
//
//   ./build/examples/trace_replay --rules=FILE [--trace=FILE]
//                                 [--generate=N] [--seed=S] [--save=FILE]
//                                 [--context=chronicle|recent|continuous|
//                                            cumulative|unrestricted]
//                                 [--metrics-out=FILE] [--lifecycle=FILE]
//                                 [--quiet]
//
// With --trace, observations are replayed from a CSV trace (see
// sim/trace.h). Without it, --generate=N events of supply-chain workload
// are simulated (and optionally saved with --save for later replays).
//
// --metrics-out dumps the engine's Prometheus exposition after the run
// ("-" for stdout); --lifecycle streams the JSONL event-lifecycle trace
// (observation -> node activations -> match -> condition -> action, see
// engine/trace.h) to a file, or "-" for stdout.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "engine/engine.h"
#include "engine/trace.h"
#include "sim/supply_chain.h"
#include "sim/trace.h"
#include "store/sql_executor.h"

namespace {

using rfidcep::Status;
using rfidcep::engine::EngineOptions;
using rfidcep::engine::ParameterContext;
using rfidcep::engine::RcedaEngine;
using rfidcep::engine::RuleFiring;

int Fail(const std::string& what, const Status& status) {
  std::fprintf(stderr, "error: %s: %s\n", what.c_str(),
               status.ToString().c_str());
  return 1;
}

bool ParseContext(const std::string& name, ParameterContext* out) {
  if (name == "chronicle") *out = ParameterContext::kChronicle;
  else if (name == "recent") *out = ParameterContext::kRecent;
  else if (name == "continuous") *out = ParameterContext::kContinuous;
  else if (name == "cumulative") *out = ParameterContext::kCumulative;
  else if (name == "unrestricted") *out = ParameterContext::kUnrestricted;
  else return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string rules_path;
  std::string trace_path;
  std::string save_path;
  std::string metrics_out;
  std::string lifecycle_path;
  size_t generate = 0;
  uint64_t seed = 42;
  bool quiet = false;
  ParameterContext context = ParameterContext::kChronicle;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&arg](const char* flag) -> const char* {
      size_t n = std::strlen(flag);
      return arg.compare(0, n, flag) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--rules=")) rules_path = v;
    else if (const char* v = value("--trace=")) trace_path = v;
    else if (const char* v = value("--save=")) save_path = v;
    else if (const char* v = value("--metrics-out=")) metrics_out = v;
    else if (const char* v = value("--lifecycle=")) lifecycle_path = v;
    else if (const char* v = value("--generate=")) generate = std::strtoull(v, nullptr, 10);
    else if (const char* v = value("--seed=")) seed = std::strtoull(v, nullptr, 10);
    else if (const char* v = value("--context=")) {
      if (!ParseContext(v, &context)) {
        std::fprintf(stderr, "unknown context '%s'\n", v);
        return 2;
      }
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (rules_path.empty() || (trace_path.empty() && generate == 0)) {
    std::fprintf(stderr,
                 "usage: trace_replay --rules=FILE (--trace=FILE | "
                 "--generate=N) [--seed=S] [--save=FILE] [--context=NAME] "
                 "[--metrics-out=FILE] [--lifecycle=FILE] [--quiet]\n");
    return 2;
  }

  // Load rules.
  std::ifstream rules_file(rules_path);
  if (!rules_file) {
    std::fprintf(stderr, "error: cannot open rules file '%s'\n",
                 rules_path.c_str());
    return 1;
  }
  std::ostringstream rules_text;
  rules_text << rules_file.rdbuf();

  // A supply chain supplies catalogs either way (type()/group() for
  // generated workloads; harmless for external traces).
  rfidcep::sim::SupplyChainConfig config;
  config.seed = seed;
  rfidcep::sim::SupplyChain chain(config);

  // Load or generate the stream.
  std::vector<rfidcep::events::Observation> stream;
  if (!trace_path.empty()) {
    auto loaded = rfidcep::sim::ReadTraceFile(trace_path);
    if (!loaded.ok()) return Fail("reading trace", loaded.status());
    stream = std::move(*loaded);
  } else {
    stream = chain.GenerateStream(generate);
  }
  if (!save_path.empty()) {
    if (Status s = rfidcep::sim::WriteTraceFile(save_path, stream); !s.ok()) {
      return Fail("saving trace", s);
    }
  }

  rfidcep::store::Database db;
  if (Status s = db.InstallRfidSchema(); !s.ok()) return Fail("schema", s);
  EngineOptions options;
  options.detector.context = context;
  options.detector.tolerate_out_of_order = true;
  RcedaEngine engine(&db, chain.environment(), options);

  std::ofstream lifecycle_file;
  std::unique_ptr<rfidcep::engine::TraceSink> sink;
  if (!lifecycle_path.empty()) {
    std::ostream* out = &std::cout;
    if (lifecycle_path != "-") {
      lifecycle_file.open(lifecycle_path);
      if (!lifecycle_file) {
        std::fprintf(stderr, "error: cannot open lifecycle file '%s'\n",
                     lifecycle_path.c_str());
        return 1;
      }
      out = &lifecycle_file;
    }
    sink = std::make_unique<rfidcep::engine::TraceSink>(out);
    if (Status s = engine.SetTraceSink(sink.get()); !s.ok()) {
      return Fail("attaching trace sink", s);
    }
  }

  size_t alarms = 0;
  engine.RegisterProcedure("send alarm",
                           [&](const RuleFiring& firing, const std::string&) {
                             ++alarms;
                             if (!quiet) {
                               std::printf("[alarm] rule %s at t=%s\n",
                                           firing.rule->id.c_str(),
                                           rfidcep::FormatTimePoint(
                                               firing.fire_time)
                                               .c_str());
                             }
                           });
  if (Status s = engine.AddRulesFromText(rules_text.str()); !s.ok()) {
    return Fail("parsing rules", s);
  }
  if (Status s = engine.Compile(); !s.ok()) return Fail("compiling rules", s);

  std::printf("replaying %zu observations under %s context...\n",
              stream.size(), std::string(rfidcep::engine::ParameterContextName(
                                 context))
                                 .c_str());
  for (const auto& obs : stream) {
    if (Status s = engine.Process(obs); !s.ok()) return Fail("processing", s);
  }
  if (Status s = engine.Flush(); !s.ok()) return Fail("flushing", s);

  const rfidcep::engine::EngineStats& stats = engine.stats();
  std::printf("\nobservations=%llu dropped_ooo=%llu matches=%llu "
              "fired=%llu pseudo=%llu sql_actions=%llu procedures=%llu\n",
              static_cast<unsigned long long>(stats.detector.observations),
              static_cast<unsigned long long>(
                  stats.detector.out_of_order_dropped),
              static_cast<unsigned long long>(stats.detector.rule_matches),
              static_cast<unsigned long long>(stats.rules_fired),
              static_cast<unsigned long long>(stats.detector.pseudo_fired),
              static_cast<unsigned long long>(stats.sql_actions_executed),
              static_cast<unsigned long long>(stats.procedures_invoked));
  std::printf("per-rule fired counts:\n");
  for (size_t i = 0; i < engine.num_rules(); ++i) {
    const auto& rule = engine.rule(i);
    std::printf("  %-12s %-32s %llu\n", rule.id.c_str(), rule.name.c_str(),
                static_cast<unsigned long long>(engine.FiredCount(rule.id)));
  }
  for (const char* table : {"OBSERVATION", "OBJECTLOCATION",
                            "OBJECTCONTAINMENT"}) {
    auto rows = rfidcep::store::ExecuteSql(
        std::string("SELECT COUNT(*) FROM ") + table, &db);
    if (rows.ok() && !rows->rows.empty()) {
      std::printf("table %-18s %s rows\n", table,
                  rows->rows[0][0].ToString().c_str());
    }
  }
  if (!engine.first_deferred_error().ok()) {
    std::printf("first deferred action/condition error: %s\n",
                engine.first_deferred_error().ToString().c_str());
  }
  if (sink != nullptr) {
    std::printf("lifecycle trace: %zu records -> %s\n", sink->records(),
                lifecycle_path == "-" ? "stdout" : lifecycle_path.c_str());
  }
  if (!metrics_out.empty()) {
    std::string text = engine.ExportMetrics();
    if (metrics_out == "-") {
      std::fputs(text.c_str(), stdout);
    } else {
      std::ofstream out(metrics_out);
      if (!out) {
        std::fprintf(stderr, "error: cannot open metrics file '%s'\n",
                     metrics_out.c_str());
        return 1;
      }
      out << text;
    }
  }
  return 0;
}
