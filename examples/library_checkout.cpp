// Library check-in/checkout (one of the paper's motivating applications):
//
//   * a book leaving through the gate WITHOUT a desk checkout in the
//     previous 2 minutes raises a theft alert (sequence + negation);
//   * a checked-out book leaving the gate is recorded as borrowed;
//   * returned books (check-in desk) update the inventory table.
//
//   ./build/examples/library_checkout

#include <cstdio>

#include "engine/engine.h"
#include "epc/catalog.h"
#include "store/database.h"
#include "store/sql_executor.h"

using rfidcep::Status;
using rfidcep::engine::RcedaEngine;
using rfidcep::engine::RuleFiring;
using rfidcep::events::Observation;

namespace {

constexpr rfidcep::TimePoint kSec = rfidcep::kSecond;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  rfidcep::store::Database db;
  if (Status s = db.InstallRfidSchema(); !s.ok()) return Fail(s);
  if (Status s = db.CreateTable(
          "LOANS", rfidcep::store::Schema(
                       {{"book", rfidcep::store::ColumnType::kString},
                        {"checked_out", rfidcep::store::ColumnType::kTime},
                        {"returned", rfidcep::store::ColumnType::kTime}}));
      !s.ok()) {
    return Fail(s);
  }

  rfidcep::epc::ReaderRegistry readers;
  readers.RegisterReader("desk-out", "g_checkout", "front desk");
  readers.RegisterReader("desk-in", "g_checkin", "front desk");
  readers.RegisterReader("gate", "g_gate", "exit gate");

  RcedaEngine engine(&db, rfidcep::events::Environment{nullptr, &readers});
  Status added = engine.AddRulesFromText(R"(
    DEFINE CHECKOUT = observation(rc, b, tc), group(rc) = "g_checkout"
    DEFINE GATE     = observation(rg, b, tg), group(rg) = "g_gate"
    DEFINE CHECKIN  = observation(ri, b, ti), group(ri) = "g_checkin"

    CREATE RULE borrow, legitimate borrow
    ON TSEQ(CHECKOUT; GATE, 0sec, 2min)
    IF true
    DO INSERT INTO LOANS VALUES (b, tc, "UC");
       notify borrowed

    CREATE RULE theft, gate alarm
    ON WITHIN(NOT CHECKOUT; GATE, 2min)
    IF true
    DO send alarm

    CREATE RULE checkin, book returned
    ON CHECKIN
    IF true
    DO UPDATE LOANS SET returned = ti WHERE book = b AND returned = "UC";
       notify returned
  )");
  if (!added.ok()) return Fail(added);
  if (Status s = engine.Compile(); !s.ok()) return Fail(s);

  engine.RegisterProcedure("send alarm",
                           [](const RuleFiring& firing, const std::string&) {
                             std::printf(
                                 "  !! GATE ALARM: %s left without checkout "
                                 "(t=%s)\n",
                                 firing.params.at("b").scalar.AsString()
                                     .c_str(),
                                 rfidcep::FormatTimePoint(firing.fire_time)
                                     .c_str());
                           });
  engine.RegisterProcedure("notify borrowed",
                           [](const RuleFiring& firing, const std::string&) {
                             std::printf("  -> %s borrowed\n",
                                         firing.params.at("b")
                                             .scalar.AsString()
                                             .c_str());
                           });
  engine.RegisterProcedure("notify returned",
                           [](const RuleFiring& firing, const std::string&) {
                             std::printf("  <- %s returned\n",
                                         firing.params.at("b")
                                             .scalar.AsString()
                                             .c_str());
                           });

  const Observation day[] = {
      {"desk-out", "book-moby-dick", 10 * kSec},   // Checked out...
      {"gate", "book-moby-dick", 40 * kSec},       // ...and leaves: borrow.
      {"gate", "book-ulysses", 300 * kSec},        // No checkout: alarm!
      {"desk-out", "book-dune", 500 * kSec},       // Checked out...
      {"gate", "book-dune", 560 * kSec},           // ...leaves: borrow.
      {"desk-in", "book-moby-dick", 9000 * kSec},  // Returned days later.
  };
  std::printf("library day: %zu reader events\n", std::size(day));
  for (const Observation& obs : day) {
    if (Status s = engine.Process(obs); !s.ok()) return Fail(s);
  }
  if (Status s = engine.Flush(); !s.ok()) return Fail(s);

  auto loans = rfidcep::store::ExecuteSql(
      "SELECT book, checked_out, returned FROM LOANS ORDER BY checked_out",
      &db);
  if (!loans.ok()) return Fail(loans.status());
  std::printf("\nLOANS ledger (%zu rows):\n", loans->rows.size());
  for (const auto& row : loans->rows) {
    std::printf("  %-18s out=%-12s returned=%s\n", row[0].ToString().c_str(),
                row[1].ToString().c_str(), row[2].ToString().c_str());
  }
  auto open = rfidcep::store::ExecuteSql(
      "SELECT COUNT(*) FROM LOANS WHERE returned = \"UC\"", &db);
  if (!open.ok()) return Fail(open.status());
  std::printf("books still out: %s\n", open->rows[0][0].ToString().c_str());
  bool ok = engine.FiredCount("borrow") == 2 &&
            engine.FiredCount("theft") == 1 &&
            engine.FiredCount("checkin") == 1;
  return ok ? 0 : 1;
}
