// Quickstart: declare an RFID rule, stream observations, watch it fire.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "engine/engine.h"
#include "store/database.h"
#include "store/sql_executor.h"

using rfidcep::Status;
using rfidcep::engine::RcedaEngine;
using rfidcep::engine::RuleFiring;
using rfidcep::events::Observation;

namespace {

constexpr rfidcep::TimePoint kSec = rfidcep::kSecond;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  // 1. A data store with the standard RFID relations.
  rfidcep::store::Database db;
  if (Status s = db.InstallRfidSchema(); !s.ok()) return Fail(s);

  // 2. An engine. The Environment supplies type()/group() mappings; the
  //    defaults (every reader is its own group) are fine here.
  RcedaEngine engine(&db, rfidcep::events::Environment{});

  // 3. Rules, in the paper's declarative language. The first filters
  //    duplicate reads; the second records every dock observation.
  Status added = engine.AddRulesFromText(R"(
    CREATE RULE dup, duplicate detection rule
    ON WITHIN(observation(r, o, t1); observation(r, o, t2), 5sec)
    IF true
    DO send duplicate msg(observation(r, o, t1))

    CREATE RULE track, dock tracking
    ON observation("dock", o, t)
    IF true
    DO INSERT INTO OBSERVATION VALUES ("dock", o, t)
  )");
  if (!added.ok()) return Fail(added);
  if (Status s = engine.Compile(); !s.ok()) return Fail(s);

  // 4. Wire the alert procedure to application code.
  engine.RegisterProcedure(
      "send duplicate msg",
      [](const RuleFiring& firing, const std::string&) {
        const auto& params = firing.params;
        std::printf("  [alert] duplicate read of %s by %s\n",
                    params.at("o").scalar.AsString().c_str(),
                    params.at("r").scalar.AsString().c_str());
      });

  // 5. Stream observations (reader, object, timestamp).
  const Observation stream[] = {
      {"dock", "pallet-17", 0 * kSec},
      {"dock", "pallet-17", 2 * kSec},   // Duplicate (2s after first read).
      {"dock", "pallet-42", 3 * kSec},
      {"dock", "pallet-17", 30 * kSec},  // Not a duplicate (window passed).
  };
  std::printf("processing %zu observations...\n", std::size(stream));
  for (const Observation& obs : stream) {
    if (Status s = engine.Process(obs); !s.ok()) return Fail(s);
  }
  if (Status s = engine.Flush(); !s.ok()) return Fail(s);

  // 6. Inspect the results.
  std::printf("\nrule fire counts: dup=%llu track=%llu\n",
              static_cast<unsigned long long>(engine.FiredCount("dup")),
              static_cast<unsigned long long>(engine.FiredCount("track")));
  auto rows = rfidcep::store::ExecuteSql(
      "SELECT object, ts FROM OBSERVATION ORDER BY ts", &db);
  if (!rows.ok()) return Fail(rows.status());
  std::printf("OBSERVATION table (%zu rows):\n", rows->rows.size());
  for (const auto& row : rows->rows) {
    std::printf("  %s @ %s\n", row[0].ToString().c_str(),
                row[1].ToString().c_str());
  }
  return 0;
}
