// SUB-EPC: EPC codec throughput (Tag Data Standard substrate).

#include <benchmark/benchmark.h>

#include "epc/catalog.h"
#include "epc/epc.h"

namespace {

using rfidcep::epc::Epc;
using rfidcep::epc::EpcBits;

void BM_SgtinEncodeBinary(benchmark::State& state) {
  auto epc = Epc::MakeSgtin(3, 614141, 7, 812345, 6789);
  for (auto _ : state) {
    benchmark::DoNotOptimize(epc->ToBinary());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SgtinEncodeBinary);

void BM_SgtinDecodeBinary(benchmark::State& state) {
  EpcBits bits = Epc::MakeSgtin(3, 614141, 7, 812345, 6789)->ToBinary();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Epc::FromBinary(bits));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SgtinDecodeBinary);

void BM_SgtinToUri(benchmark::State& state) {
  auto epc = Epc::MakeSgtin(3, 614141, 7, 812345, 6789);
  for (auto _ : state) {
    benchmark::DoNotOptimize(epc->ToUri());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SgtinToUri);

void BM_SgtinFromUri(benchmark::State& state) {
  std::string uri = Epc::MakeSgtin(3, 614141, 7, 812345, 6789)->ToUri();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Epc::FromUri(uri));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SgtinFromUri);

void BM_CatalogTypeLookup(benchmark::State& state) {
  rfidcep::epc::ProductCatalog catalog;
  (void)catalog.RegisterItemClass(614141, 7, 300003, "laptop");
  std::string uri = Epc::MakeSgtin(1, 614141, 7, 300003, 42)->ToUri();
  for (auto _ : state) {
    benchmark::DoNotOptimize(catalog.TypeOf(uri));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CatalogTypeLookup);

}  // namespace
