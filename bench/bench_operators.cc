// ABL-OPS: per-constructor micro-throughput of the RCEDA engine — one
// benchmark per event constructor from §2.2 of the paper.

#include <benchmark/benchmark.h>

#include "engine/engine.h"
#include "sim/workload.h"

namespace {

using rfidcep::kSecond;
using rfidcep::TimePoint;
using rfidcep::engine::EngineOptions;
using rfidcep::engine::RcedaEngine;
using rfidcep::events::Observation;

// Alternating a/b observations, 0.5s apart, objects drawn from a pool so
// join-free rules pair steadily.
std::vector<Observation> AlternatingStream(size_t n) {
  std::vector<Observation> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(Observation{
        i % 2 == 0 ? "a" : "b", "obj" + std::to_string(i % 64),
        static_cast<TimePoint>(i) * kSecond / 2});
  }
  return out;
}

void RunRule(benchmark::State& state, const std::string& rule_program) {
  std::vector<Observation> stream = AlternatingStream(10000);
  for (auto _ : state) {
    state.PauseTiming();
    EngineOptions options;
    options.execute_actions = false;
    RcedaEngine engine(nullptr, rfidcep::events::Environment{}, options);
    if (auto s = engine.AddRulesFromText(rule_program); !s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
    if (auto s = engine.Compile(); !s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
    state.ResumeTiming();
    for (const Observation& obs : stream) {
      benchmark::DoNotOptimize(engine.Process(obs));
    }
    (void)engine.Flush();
    state.counters["matches"] = static_cast<double>(
        engine.stats().detector.rule_matches);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
}

void BM_Primitive(benchmark::State& state) {
  RunRule(state,
          "CREATE RULE r, x ON observation(\"a\", o, t) IF true DO act");
}
BENCHMARK(BM_Primitive);

void BM_Or(benchmark::State& state) {
  RunRule(state,
          "CREATE RULE r, x ON observation(\"a\", o, t) OR "
          "observation(\"b\", o, t) IF true DO act");
}
BENCHMARK(BM_Or);

void BM_AndWithin(benchmark::State& state) {
  RunRule(state,
          "CREATE RULE r, x ON WITHIN(observation(\"a\", o1, t1) AND "
          "observation(\"b\", o2, t2), 10sec) IF true DO act");
}
BENCHMARK(BM_AndWithin);

void BM_Seq(benchmark::State& state) {
  RunRule(state,
          "CREATE RULE r, x ON WITHIN(SEQ(observation(\"a\", o1, t1); "
          "observation(\"b\", o2, t2)), 10sec) IF true DO act");
}
BENCHMARK(BM_Seq);

void BM_Tseq(benchmark::State& state) {
  RunRule(state,
          "CREATE RULE r, x ON TSEQ(observation(\"a\", o1, t1); "
          "observation(\"b\", o2, t2), 0sec, 2sec) IF true DO act");
}
BENCHMARK(BM_Tseq);

void BM_SeqJoinOnObject(benchmark::State& state) {
  // Equality join on (r, o): the duplicate-filter shape.
  RunRule(state,
          "CREATE RULE r, x ON WITHIN(observation(r, o, t1); "
          "observation(r, o, t2), 40sec) IF true DO act");
}
BENCHMARK(BM_SeqJoinOnObject);

void BM_TseqPlusUnderTseq(benchmark::State& state) {
  // The packing rule: aperiodic runs closed by a case observation.
  // Item reads arrive 1s apart, so adjacent-distance bound 0.6s makes
  // each read its own run, closed at the next arrival and paired with a
  // later case read.
  RunRule(state,
          "CREATE RULE r, x ON TSEQ(TSEQ+(observation(\"a\", o1, t1), "
          "0sec, 0.6sec); observation(\"b\", o2, t2), 0sec, 10sec) "
          "IF true DO act");
}
BENCHMARK(BM_TseqPlusUnderTseq);

void BM_WithinAndNot(benchmark::State& state) {
  // Negation with pseudo-event confirmation (Fig. 8 shape).
  RunRule(state,
          "CREATE RULE r, x ON WITHIN(observation(\"a\", o1, t1) AND NOT "
          "observation(\"c\", o2, t2), 5sec) IF true DO act");
}
BENCHMARK(BM_WithinAndNot);

void BM_NotSeqInfield(benchmark::State& state) {
  RunRule(state,
          "CREATE RULE r, x ON WITHIN(NOT observation(\"a\", o, t1); "
          "observation(\"a\", o, t2), 30sec) IF true DO act");
}
BENCHMARK(BM_NotSeqInfield);

}  // namespace
