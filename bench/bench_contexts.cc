// ABL-CTX: parameter-context ablation (paper §4.2). The same
// overlap-heavy stream detected under all five contexts — chronicle is
// the correct one for RFID; this measures what the others cost/produce.

#include <benchmark/benchmark.h>

#include "engine/engine.h"

namespace {

using rfidcep::kSecond;
using rfidcep::TimePoint;
using rfidcep::engine::EngineOptions;
using rfidcep::engine::ParameterContext;
using rfidcep::engine::RcedaEngine;
using rfidcep::events::Observation;

constexpr char kRule[] =
    "CREATE RULE s, pairing ON WITHIN(SEQ(observation(\"a\", o1, t1); "
    "observation(\"b\", o2, t2)), 20sec) IF true DO act";

// Bursts of initiators followed by bursts of terminators: many open
// initiators overlap at each terminator.
std::vector<Observation> OverlappingStream(size_t bursts, size_t width) {
  std::vector<Observation> out;
  TimePoint t = 0;
  for (size_t b = 0; b < bursts; ++b) {
    for (size_t i = 0; i < width; ++i) {
      out.push_back(Observation{"a", "x" + std::to_string(i), t});
      t += kSecond / 4;
    }
    for (size_t i = 0; i < width; ++i) {
      out.push_back(Observation{"b", "y" + std::to_string(i), t});
      t += kSecond / 4;
    }
  }
  return out;
}

void BM_Context(benchmark::State& state) {
  ParameterContext context = static_cast<ParameterContext>(state.range(0));
  std::vector<Observation> stream = OverlappingStream(200, 8);
  uint64_t matches = 0;
  for (auto _ : state) {
    state.PauseTiming();
    EngineOptions options;
    options.execute_actions = false;
    options.detector.context = context;
    RcedaEngine engine(nullptr, rfidcep::events::Environment{}, options);
    if (auto s = engine.AddRulesFromText(kRule); !s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
    (void)engine.Compile();
    state.ResumeTiming();
    for (const Observation& obs : stream) {
      benchmark::DoNotOptimize(engine.Process(obs));
    }
    (void)engine.Flush();
    matches = engine.stats().detector.rule_matches;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
  state.counters["matches"] = static_cast<double>(matches);
  state.SetLabel(std::string(
      rfidcep::engine::ParameterContextName(context)));
}
BENCHMARK(BM_Context)
    ->Arg(static_cast<int>(ParameterContext::kChronicle))
    ->Arg(static_cast<int>(ParameterContext::kRecent))
    ->Arg(static_cast<int>(ParameterContext::kContinuous))
    ->Arg(static_cast<int>(ParameterContext::kCumulative))
    ->Arg(static_cast<int>(ParameterContext::kUnrestricted));

}  // namespace
