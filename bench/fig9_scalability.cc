// FIG9-A / FIG9-B: reproduction of the paper's Fig. 9 — "Event processing
// time versus number of events and number of rules" (§5) — plus a shards
// series for the sharded detection pipeline.
//
// Setup mirrors the paper: a simulated RFID-enabled supply chain
// (warehouses, shipping, retail, sale), observation arrival rate 1000
// events/sec, rule families for filtering / transformation / aggregation /
// monitoring, and *action cost excluded* from the measured processing time
// (execute_actions = false).
//
//   ./build/bench/fig9_scalability [--series=events|rules|shards|actions|
//                                   workload|both|all]
//                                  [--shards=N[,N...]] [--batch=N]
//                                  [--partition=rule|data]
//                                  [--compile=full|off]
//                                  [--actions=off|sync|async]
//                                  [--rules=N] [--sites=N] [--events=N]
//                                  [--metrics] [--metrics-out=FILE]
//                                  [--json-out=FILE] [--recovery-smoke]
//
// --partition=data requests the data-partitioned pipeline (keyed rules
// replicated, stream split by hash(EPC); see engine/sharded_engine.h);
// every JSON row records the partition mode the engine ACTUALLY ran
// ("data" only when at least one rule was key-partitionable). --shards
// takes a comma list for the shards series (a serial shards=1 baseline
// point is always included); other series use the first value.
//
// --compile=off disables the rule-set compiler (indexed dispatch,
// predicate pushdown, and SEQ+ prefix sharing) so the 500 -> 10k rules
// scaling of the uncompiled engine can be measured for comparison; the
// default ("full") is what BENCH_rfidcep.json records.
//
// The rules series (FIG9-B) sweeps the SKU x site rule family — one
// duplicate-detection rule per (site, SKU) pair over 20 sites and 500
// SKU classes — from 500 to 10,000 rules against ONE fixed stream, so
// the usec/event curve isolates rule-set size. --rules=N pins the
// series to a single point (the CI bench smoke runs --rules=2000).
//
// The actions series (FIG9-ACT) runs the FIG9-A workload against a real
// store three ways — actions disabled, executed inline on the detection
// thread (sync), and on the dedicated pipeline stage (async;
// engine/action_stage.h) — and reports `action us/ev`, the usec/event
// delta versus the actions-off baseline, isolating what rule actions
// cost the hot path in each mode. The sync and async runs must agree on
// every match / fired count, every executed SQL action, and every store
// row (exit 1 otherwise); scripts/bench_guard.py gates the async/sync
// ratio with --actions-max-ratio. --actions=sync|async restricts the
// series to the off baseline plus that one mode.
//
// --recovery-smoke replaces the timed series with a durability check:
// the FIG9-A workload runs once uninterrupted and once interrupted by a
// midpoint Checkpoint()/Restore() into a fresh engine, and the two
// executions must agree on every match / fired count and on every
// `_total` counter in the Prometheus exposition (exit 1 otherwise).
// With --actions=sync|async the smoke adds a store-effects phase: the
// same workload runs with SQL actions against a database behind a
// write-ahead log (store/wal.h), is hard-killed after a mid-run
// SerializeState by truncating the WAL mid-write, recovered (WAL
// replay + state restore + reprocessing the suffix), and the final
// OBSERVATION / OBJECTLOCATION / OBJECTCONTAINMENT tables must be
// byte-identical (store/csv.h dumps) to the uninterrupted run's —
// the exactly-once contract of docs/recovery.md "Exactly-once
// effects". CI runs this as the recovery smoke job at shards 1/2/4.
//
// Metric collection defaults OFF here (the engine defaults it on) so the
// timed numbers stay comparable with BENCH_rfidcep.json; --metrics turns
// it on and --metrics-out dumps the final run's Prometheus exposition.
// --json-out writes every timing row as JSON for scripts/bench_guard.py.
//
// The stream is pre-split into batches outside the timed region and fed
// through RcedaEngine::ProcessAll, the batch entry point (one routing
// fan-out, one barrier, and one stats sync per batch in sharded mode).
//
// Expected shape (paper): total processing time grows ~linearly with the
// number of primitive events, and stays moderate as the number of rules
// grows (sub-linear in rules thanks to common-subgraph merging and
// group-keyed primitive dispatch). The shards series reports the same
// workload partitioned across worker threads; wall-clock gains require
// the host to have that many cores (see docs/performance.md).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "sim/supply_chain.h"
#include "sim/workload.h"
#include "store/csv.h"
#include "store/database.h"
#include "store/wal.h"

namespace {

using rfidcep::Status;
using rfidcep::engine::EngineOptions;
using rfidcep::engine::RcedaEngine;
using rfidcep::events::Observation;

struct RunResult {
  double total_ms = 0;
  double usec_per_event = 0;
  uint64_t matches = 0;
  uint64_t pseudo_fired = 0;
  uint64_t rules_fired = 0;
  bool data_partitioned = false;  // What the engine actually ran.
  // Actions-series extras (zero when the run had no store).
  uint64_t sql_actions = 0;
  uint64_t store_rows = 0;  // Total rows across the three RFID tables.
};

struct BenchFlags {
  std::string series = "both";
  int shards = 1;
  std::vector<int> shard_list;  // --shards comma list (shards series).
  std::string partition = "rule";
  size_t batch = 1024;
  int rules = 0;    // 0 = per-series default.
  int sites = 0;    // 0 = per-series default.
  size_t events = 0;  // 0 = per-series default.
  bool metrics = false;  // Collection off: timed numbers match the seed.
  bool recovery_smoke = false;  // Midpoint checkpoint/restore check.
  std::string compile = "full";  // "off" disables the rule-set compiler.
  std::string actions = "off";   // Action mode (actions series / smoke).
  std::string metrics_out;  // Exposition of the last run ("-" = stdout).
  std::string json_out;     // Timing rows for scripts/bench_guard.py.
};

// Rows accumulated across series for --json-out / --metrics-out.
struct BenchOutput {
  std::vector<std::string> json_rows;
  std::string metrics_text;  // Last run's exposition (--metrics only).
};

void AppendJsonRow(BenchOutput* out, const char* series,
                   const char* rule_family, const BenchFlags& flags,
                   size_t events, int rules, int shards, const RunResult& r) {
  char buf[352];
  std::snprintf(buf, sizeof(buf),
                "{\"series\":\"%s\",\"rule_family\":\"%s\","
                "\"compile\":\"%s\",\"events\":%zu,\"rules\":%d,"
                "\"shards\":%d,\"partition\":\"%s\",\"total_ms\":%.3f,"
                "\"usec_per_event\":%.4f,\"matches\":%llu,\"fired\":%llu}",
                series, rule_family, flags.compile.c_str(), events, rules,
                shards, r.data_partitioned ? "data" : "rule", r.total_ms,
                r.usec_per_event, static_cast<unsigned long long>(r.matches),
                static_cast<unsigned long long>(r.rules_fired));
  out->json_rows.emplace_back(buf);
}

// Row for the actions series: carries the mode and the usec/event delta
// versus the actions-off baseline (scripts/bench_guard.py gates the
// async/sync ratio with --actions-max-ratio). `host_cpus` is recorded
// so the guard can skip the async-vs-sync gate on a single-core host,
// where the async worker has no core to overlap onto and every handoff
// is pure scheduling overhead — the same host-awareness the shards
// speedup gate has.
void AppendActionsJsonRow(BenchOutput* out, const char* mode,
                          const BenchFlags& flags, size_t events, int rules,
                          const RunResult& r, double action_usec_per_event) {
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                "{\"series\":\"actions\",\"actions\":\"%s\","
                "\"events\":%zu,\"rules\":%d,\"shards\":%d,"
                "\"host_cpus\":%u,"
                "\"total_ms\":%.3f,\"usec_per_event\":%.4f,"
                "\"action_usec_per_event\":%.4f,\"matches\":%llu,"
                "\"sql_actions\":%llu,\"store_rows\":%llu}",
                mode, events, rules, flags.shards,
                std::thread::hardware_concurrency(), r.total_ms,
                r.usec_per_event, action_usec_per_event,
                static_cast<unsigned long long>(r.matches),
                static_cast<unsigned long long>(r.sql_actions),
                static_cast<unsigned long long>(r.store_rows));
  out->json_rows.emplace_back(buf);
}

rfidcep::sim::SupplyChainConfig BenchConfig(int num_sites) {
  rfidcep::sim::SupplyChainConfig config;
  config.seed = 20060327;  // EDBT'06.
  config.num_sites = num_sites;
  config.num_items = 10000;  // Large pool: duplicates come from injection.
  config.num_cases = 1000;
  config.arrival_rate_per_second = 1000.0;  // Paper's arrival rate.
  config.duplicate_rate = 0.03;
  return config;
}

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s error: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

RunResult RunOnce(const std::string& rule_program,
                  const rfidcep::sim::SupplyChainConfig& chain_config,
                  size_t num_events, int shards, const BenchFlags& flags,
                  BenchOutput* out) {
  const size_t batch_size = flags.batch;
  rfidcep::sim::SupplyChain chain(chain_config);
  std::vector<Observation> stream = chain.GenerateStream(num_events);

  // Pre-split the stream outside the timed region; the timed loop only
  // pays for detection, not for batch assembly.
  std::vector<std::vector<Observation>> batches;
  for (size_t begin = 0; begin < stream.size(); begin += batch_size) {
    size_t end = std::min(begin + batch_size, stream.size());
    batches.emplace_back(stream.begin() + static_cast<long>(begin),
                         stream.begin() + static_cast<long>(end));
  }

  EngineOptions options;
  options.execute_actions = false;  // Paper: action cost not counted.
  options.shards = shards;
  options.partition = flags.partition == "data"
                          ? rfidcep::engine::PartitionMode::kData
                          : rfidcep::engine::PartitionMode::kRule;
  options.enable_metrics = flags.metrics;
  if (flags.compile == "off") {
    options.detector.compile.indexed_dispatch = false;
    options.detector.compile.predicate_pushdown = false;
    options.detector.compile.share_prefixes = false;
  }
  RcedaEngine engine(nullptr, chain.environment(), options);
  Check(engine.AddRulesFromText(rule_program), "rule");
  Check(engine.Compile(), "compile");

  auto start = std::chrono::steady_clock::now();
  for (const std::vector<Observation>& batch : batches) {
    Check(engine.ProcessAll(batch), "process");
  }
  (void)engine.Flush();
  auto end = std::chrono::steady_clock::now();

  RunResult result;
  result.total_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  result.usec_per_event = result.total_ms * 1000.0 /
                          static_cast<double>(stream.size());
  result.matches = engine.stats().detector.rule_matches;
  result.pseudo_fired = engine.stats().detector.pseudo_fired;
  result.rules_fired = engine.stats().rules_fired;
  result.data_partitioned = engine.data_partitioned();
  if (flags.metrics) out->metrics_text = engine.ExportMetrics();
  return result;
}

void RunEventsSeries(const BenchFlags& flags, BenchOutput* out) {
  const int num_rules = flags.rules > 0 ? flags.rules : 25;
  std::printf(
      "\nFIG9-A: total event processing time versus number of primitive "
      "events\n");
  std::printf("(fixed rule set: %d rules over %d sites, arrival rate 1000 "
              "ev/s, actions excluded, shards=%d, batch=%zu)\n",
              num_rules, flags.sites > 0 ? flags.sites : 5, flags.shards,
              flags.batch);
  std::printf("%12s %14s %14s %12s %12s\n", "events", "total_ms",
              "usec/event", "matches", "pseudo");
  const int sites = flags.sites > 0 ? flags.sites : 5;
  rfidcep::sim::SupplyChain chain(BenchConfig(sites));
  std::string rules = chain.GeneratedRuleProgram(num_rules);
  // --events pins the series to a single point (CI smoke runs).
  std::vector<size_t> points = {50000, 100000, 150000, 200000, 250000};
  if (flags.events > 0) points = {flags.events};
  for (size_t events : points) {
    RunResult r =
        RunOnce(rules, BenchConfig(sites), events, flags.shards, flags, out);
    std::printf("%12zu %14.1f %14.3f %12llu %12llu\n", events, r.total_ms,
                r.usec_per_event, static_cast<unsigned long long>(r.matches),
                static_cast<unsigned long long>(r.pseudo_fired));
    AppendJsonRow(out, "events", "generated", flags, events, num_rules,
                  flags.shards, r);
  }
}

void RunRulesSeries(const BenchFlags& flags, BenchOutput* out) {
  std::printf(
      "\nFIG9-B: total event processing time versus number of rules\n");
  const size_t events = flags.events > 0 ? flags.events : 100000;
  // One fixed stream for every point, drawn from the 25 SKU classes the
  // smallest (500-rule) point covers: every event does the same
  // detection work (exactly one matching rule per (site, SKU) pair) at
  // every rule count, and rules past 500 reference SKUs the stream
  // never emits — but in the SAME site groups the index probes on every
  // event, so they load the probed buckets without adding matching
  // work. The usec/event ratio between points is therefore the pure
  // dispatch-scaling measurement the rule-set compiler is gated on
  // (scripts/bench_guard.py); the uncompiled engine still scans every
  // leaf per event and shows the contrast.
  const int sites = flags.sites > 0 ? flags.sites : 20;
  rfidcep::sim::SupplyChainConfig config = BenchConfig(sites);
  config.num_skus = 25;  // Stream pool == the 500-rule point's coverage.
  rfidcep::sim::SupplyChainConfig naming = config;
  naming.num_skus = 500;  // Rule family spans the full SKU space.
  std::printf("(fixed stream: %zu primitive events at 1000 ev/s over %d "
              "sites x %d SKUs, sku_site rule family over %d SKUs, "
              "compile=%s, actions excluded, shards=%d, batch=%zu)\n",
              events, sites, config.num_skus, naming.num_skus,
              flags.compile.c_str(), flags.shards, flags.batch);
  std::printf("%12s %14s %14s %12s %12s\n", "rules", "total_ms", "usec/event",
              "matches", "pseudo");
  rfidcep::sim::SupplyChain naming_chain(naming);
  // --rules pins the series to a single point (CI smoke).
  std::vector<int> points = {500, 1000, 2000, 5000, 10000};
  if (flags.rules > 0) points = {flags.rules};
  for (int rules : points) {
    std::string program = naming_chain.SkuSiteRuleProgram(rules);
    RunResult r = RunOnce(program, config, events, flags.shards, flags, out);
    std::printf("%12d %14.1f %14.3f %12llu %12llu\n", rules, r.total_ms,
                r.usec_per_event, static_cast<unsigned long long>(r.matches),
                static_cast<unsigned long long>(r.pseudo_fired));
    AppendJsonRow(out, "rules", "sku_site", flags, events, rules,
                  flags.shards, r);
  }
}

// Many-rules workload partitioned across detection shards (default
// {1, 2, 4}; override the multi-shard points with --shards=2,4,...).
// Match and fired counts must be identical at every shard count and in
// both partition modes — the pipeline's determinism contract — so they
// are printed for auditing, along with the mode each run engaged.
void RunShardsSeries(const BenchFlags& flags, BenchOutput* out) {
  const int rules = flags.rules > 0 ? flags.rules : 100;
  const int sites = flags.sites > 0 ? flags.sites : 20;
  const size_t events = flags.events > 0 ? flags.events : 100000;
  std::printf("\nFIG9-S: total event processing time versus detection "
              "shards\n");
  std::printf("(fixed workload: %d rules over %d sites, %zu primitive "
              "events, batch=%zu, partition=%s, actions excluded)\n",
              rules, sites, events, flags.batch, flags.partition.c_str());
  std::printf("%12s %11s %14s %14s %12s %12s\n", "shards", "partition",
              "total_ms", "usec/event", "matches", "fired");
  rfidcep::sim::SupplyChain chain(BenchConfig(sites));
  std::string program = chain.GeneratedRuleProgram(rules);
  std::vector<int> points = {1};
  if (flags.shard_list.empty()) {
    points.push_back(2);
    points.push_back(4);
  } else {
    for (int shards : flags.shard_list) {
      if (shards > 1) points.push_back(shards);
    }
  }
  for (int shards : points) {
    RunResult r =
        RunOnce(program, BenchConfig(sites), events, shards, flags, out);
    std::printf("%12d %11s %14.1f %14.3f %12llu %12llu\n", shards,
                r.data_partitioned ? "data" : "rule", r.total_ms,
                r.usec_per_event, static_cast<unsigned long long>(r.matches),
                static_cast<unsigned long long>(r.rules_fired));
    AppendJsonRow(out, "shards", "generated", flags, events, rules, shards,
                  r);
  }
}

// One FIG9-W point: a pre-generated stream through the detection
// pipeline, optionally with out-of-order tolerance (the upload-order
// feed regresses in time whenever one portal's batch lands after
// another portal's later batch).
RunResult RunWorkloadOnce(const std::string& rule_program,
                          const std::vector<rfidcep::events::Observation>&
                              stream,
                          bool tolerate, const BenchFlags& flags,
                          BenchOutput* out) {
  std::vector<std::vector<Observation>> batches;
  for (size_t begin = 0; begin < stream.size(); begin += flags.batch) {
    size_t end = std::min(begin + flags.batch, stream.size());
    batches.emplace_back(stream.begin() + static_cast<long>(begin),
                         stream.begin() + static_cast<long>(end));
  }
  EngineOptions options;
  options.execute_actions = false;
  options.shards = flags.shards;
  options.partition = flags.partition == "data"
                          ? rfidcep::engine::PartitionMode::kData
                          : rfidcep::engine::PartitionMode::kRule;
  options.enable_metrics = flags.metrics;
  options.detector.tolerate_out_of_order = tolerate;
  if (flags.compile == "off") {
    options.detector.compile.indexed_dispatch = false;
    options.detector.compile.predicate_pushdown = false;
    options.detector.compile.share_prefixes = false;
  }
  RcedaEngine engine(nullptr, rfidcep::events::Environment{}, options);
  Check(engine.AddRulesFromText(rule_program), "rule");
  Check(engine.Compile(), "compile");

  auto start = std::chrono::steady_clock::now();
  for (const std::vector<Observation>& batch : batches) {
    Check(engine.ProcessAll(batch), "process");
  }
  (void)engine.Flush();
  auto end = std::chrono::steady_clock::now();

  RunResult result;
  result.total_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  result.usec_per_event =
      result.total_ms * 1000.0 / static_cast<double>(stream.size());
  result.matches = engine.stats().detector.rule_matches;
  result.pseudo_fired = engine.stats().detector.pseudo_fired;
  result.rules_fired = engine.stats().rules_fired;
  result.data_partitioned = engine.data_partitioned();
  if (flags.metrics) out->metrics_text = engine.ExportMetrics();
  return result;
}

// FIG9-W: the airport-baggage workload (sim/workload.h GenerateBaggage —
// ROADMAP's out-of-order-heavy scenario). Each point feeds the same
// observation multiset two ways: `time` order (timestamp-sorted, with
// the burst ties batch uploading creates) through the default engine,
// and `upload` order (per-reader batch uploads, heavy timestamp
// regressions) through an engine with out-of-order tolerance, which
// drops reads that regress behind the running clock. The rule family
// covers the journey shapes: misroute loops through the sorter, full
// check-in -> claim journeys, a negated stuck-bag monitor, and a TSEQ+
// reread aggregate.
void RunWorkloadSeries(const BenchFlags& flags, BenchOutput* out) {
  static const char* kBaggageRules = R"(
CREATE RULE misroute, baggage ON WITHIN(SEQ(observation("sorter", o, t1); observation("sorter", o, t2)), 30sec) IF true DO act
CREATE RULE journey, baggage ON WITHIN(SEQ(observation("checkin", o, t1); observation("claim", o, t2)), 60sec) IF true DO act
CREATE RULE stuck, baggage ON WITHIN(SEQ(observation("sorter", o, t1); NOT observation("gate", o, t2)), 45sec) IF true DO act
CREATE RULE reread, baggage ON WITHIN(TSEQ+(observation("gate", o, t), 0sec, 1sec), 20sec) IF true DO act
)";
  // ~5 reads per bag (4 stages + misroutes + rereads): size the bag
  // pool so each point lands near its primitive-event target.
  std::vector<size_t> points = {50000, 100000, 200000};
  if (flags.events > 0) points = {flags.events};
  std::printf("\nFIG9-W: airport-baggage workload, in-order versus "
              "out-of-order arrival\n");
  std::printf("(4 baggage rules, per-reader upload batching, shards=%d, "
              "batch=%zu, compile=%s; `upload` feeds arrival order with "
              "out-of-order tolerance)\n",
              flags.shards, flags.batch, flags.compile.c_str());
  std::printf("%12s %8s %14s %14s %12s %12s\n", "events", "order",
              "total_ms", "usec/event", "matches", "fired");
  for (size_t target : points) {
    const size_t bags = std::max<size_t>(1, target / 5);
    std::vector<std::string> bag_epcs;
    bag_epcs.reserve(bags);
    for (size_t i = 0; i < bags; ++i) {
      bag_epcs.push_back("bag" + std::to_string(i));
    }
    rfidcep::sim::BaggageConfig config;
    rfidcep::Prng prng(20060327 + target);
    rfidcep::sim::BaggageWorkload workload =
        rfidcep::sim::GenerateBaggage(config, bag_epcs, &prng);
    const size_t events = workload.arrivals.size();
    struct Feed {
      const char* order;
      const std::vector<Observation>* stream;
      bool tolerate;
    };
    for (const Feed& feed :
         {Feed{"time", &workload.event_order, false},
          Feed{"upload", &workload.arrivals, true}}) {
      RunResult r =
          RunWorkloadOnce(kBaggageRules, *feed.stream, feed.tolerate, flags,
                          out);
      std::printf("%12zu %8s %14.1f %14.3f %12llu %12llu\n", events,
                  feed.order, r.total_ms, r.usec_per_event,
                  static_cast<unsigned long long>(r.matches),
                  static_cast<unsigned long long>(r.rules_fired));
      AppendJsonRow(out, "workload",
                    feed.tolerate ? "baggage_upload" : "baggage_time", flags,
                    events, 4, flags.shards, r);
    }
  }
}

// One FIG9-ACT point: the FIG9-A workload against a real store with the
// given action mode ("off" = actions disabled, "sync" = inline on the
// detection thread, "async" = dedicated pipeline stage). Returns the
// timing plus the executed-action and store-row totals for the
// cross-mode equivalence check.
RunResult RunActionsOnce(const std::string& rule_program,
                         const rfidcep::sim::SupplyChainConfig& chain_config,
                         size_t num_events, const std::string& mode,
                         const BenchFlags& flags, BenchOutput* out) {
  rfidcep::sim::SupplyChain chain(chain_config);
  std::vector<Observation> stream = chain.GenerateStream(num_events);
  std::vector<std::vector<Observation>> batches;
  for (size_t begin = 0; begin < stream.size(); begin += flags.batch) {
    size_t end = std::min(begin + flags.batch, stream.size());
    batches.emplace_back(stream.begin() + static_cast<long>(begin),
                         stream.begin() + static_cast<long>(end));
  }

  rfidcep::store::Database db;
  Check(db.InstallRfidSchema(), "schema");
  EngineOptions options;
  options.execute_actions = mode != "off";
  options.async_actions = mode == "async";
  options.shards = flags.shards;
  options.partition = flags.partition == "data"
                          ? rfidcep::engine::PartitionMode::kData
                          : rfidcep::engine::PartitionMode::kRule;
  options.enable_metrics = flags.metrics;
  RcedaEngine engine(&db, chain.environment(), options);
  Check(engine.AddRulesFromText(rule_program), "rule");
  Check(engine.Compile(), "compile");

  // The timed region includes Flush(): async mode must pay for draining
  // its queue, or deferred action cost would be invisible.
  auto start = std::chrono::steady_clock::now();
  for (const std::vector<Observation>& batch : batches) {
    Check(engine.ProcessAll(batch), "process");
  }
  Check(engine.Flush(), "flush");
  auto end = std::chrono::steady_clock::now();

  RunResult result;
  result.total_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  result.usec_per_event =
      result.total_ms * 1000.0 / static_cast<double>(stream.size());
  result.matches = engine.stats().detector.rule_matches;
  result.rules_fired = engine.stats().rules_fired;
  result.data_partitioned = engine.data_partitioned();
  result.sql_actions = engine.stats().sql_actions_executed;
  for (const char* table :
       {"OBSERVATION", "OBJECTLOCATION", "OBJECTCONTAINMENT"}) {
    result.store_rows += db.GetTable(table)->size();
  }
  if (flags.metrics) out->metrics_text = engine.ExportMetrics();
  return result;
}

// FIG9-ACT: what rule actions cost the detection path, per mode. The
// off/sync/async runs share one workload, so `action us/ev` (usec/event
// minus the off baseline's) isolates action execution; sync and async
// must agree exactly on matches, executed SQL actions, and final store
// rows — async moves the work, it must not change it.
int RunActionsSeries(const BenchFlags& flags, BenchOutput* out) {
  const int num_rules = flags.rules > 0 ? flags.rules : 25;
  const int sites = flags.sites > 0 ? flags.sites : 5;
  const size_t events = flags.events > 0 ? flags.events : 100000;
  std::printf("\nFIG9-ACT: action execution cost on the detection path\n");
  std::printf("(fixed workload: %d rules over %d sites, %zu primitive "
              "events, shards=%d, batch=%zu, real store)\n",
              num_rules, sites, events, flags.shards, flags.batch);
  std::printf("%12s %14s %14s %14s %12s %12s\n", "actions", "total_ms",
              "usec/event", "action us/ev", "sql_actions", "store_rows");
  rfidcep::sim::SupplyChain chain(BenchConfig(sites));
  const std::string program = chain.GeneratedRuleProgram(num_rules);

  std::vector<std::string> modes = {"off", "sync", "async"};
  if (flags.actions != "off") modes = {"off", flags.actions};
  std::map<std::string, RunResult> results;
  double off_usec = 0;
  for (const std::string& mode : modes) {
    RunResult r = RunActionsOnce(program, BenchConfig(sites), events, mode,
                                 flags, out);
    if (mode == "off") off_usec = r.usec_per_event;
    double action_usec = mode == "off"
                             ? 0.0
                             : std::max(0.0, r.usec_per_event - off_usec);
    std::printf("%12s %14.1f %14.3f %14.3f %12llu %12llu\n", mode.c_str(),
                r.total_ms, r.usec_per_event, action_usec,
                static_cast<unsigned long long>(r.sql_actions),
                static_cast<unsigned long long>(r.store_rows));
    AppendActionsJsonRow(out, mode.c_str(), flags, events, num_rules, r,
                         action_usec);
    results[mode] = r;
  }

  int failures = 0;
  auto require = [&failures](const char* what, uint64_t a, uint64_t b) {
    if (a != b) {
      std::fprintf(stderr,
                   "actions series: sync/async %s diverge: %llu vs %llu\n",
                   what, static_cast<unsigned long long>(a),
                   static_cast<unsigned long long>(b));
      ++failures;
    }
  };
  for (const std::string& mode : modes) {
    if (mode == "off") continue;
    require("matches", results["off"].matches, results[mode].matches);
  }
  if (results.count("sync") != 0 && results.count("async") != 0) {
    require("fired counts", results["sync"].rules_fired,
            results["async"].rules_fired);
    require("sql actions", results["sync"].sql_actions,
            results["async"].sql_actions);
    require("store rows", results["sync"].store_rows,
            results["async"].store_rows);
  }
  return failures;
}

// Counter lines (`*_total ...`) of a Prometheus exposition, sorted,
// with the `shard="N"` label aggregated away (values summed by the
// remaining name). Gauges and histogram buckets carry timings and queue
// depths that legitimately differ across executions, so only counters
// reconcile. Enqueue stalls are backpressure events — thread-scheduling
// dependent, not deterministic even between two uninterrupted runs — so
// they are excluded too, as are the async action stage's batch count
// (how many ring drains the worker needed is scheduling-dependent) and
// the dedup counter (an interrupted-and-recovered run legitimately
// dedups re-fired actions against the WAL; an uninterrupted run never
// does — the LOGICAL action counters still reconcile because dedup
// hits credit them). The shard label must be aggregated because
// per-shard ATTRIBUTION of pre-checkpoint work is not part of the
// durability contract: a data-partitioned engine captures one merged
// serial-equivalent snapshot, and restore re-splits it by partition
// key, so restored produced counts land on different shards than the
// ones that originally did the work. The shard-summed totals are exact.
// `skip_node_counters` drops per-node firing counters: their node ids
// are relative to each layout's graphs, so across a re-partitioning
// restore (any data-partitioned engine — its snapshot is pre-merged to
// one serial-equivalent source) pre-checkpoint firings cannot be
// re-credited by node id and legitimately stay behind.
std::vector<std::string> CounterLines(const std::string& exposition,
                                      bool skip_node_counters) {
  std::map<std::string, unsigned long long> sums;
  std::istringstream in(exposition);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("_total") == std::string::npos) continue;
    if (line.find("enqueue_stalls") != std::string::npos) continue;
    if (line.find("actions_batches") != std::string::npos) continue;
    if (line.find("actions_deduped") != std::string::npos) continue;
    if (skip_node_counters &&
        line.find("node=") != std::string::npos) {
      continue;
    }
    size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    std::string name = line.substr(0, space);
    unsigned long long value = std::strtoull(line.c_str() + space + 1,
                                             nullptr, 10);
    // Drop a `shard="N"` label (with its separating comma, whichever
    // side it is on; `{shard="N"}` collapses to no label block at all).
    size_t pos = name.find("shard=\"");
    if (pos != std::string::npos) {
      size_t end = name.find('"', pos + 7) + 1;  // Past the value quote.
      if (end < name.size() && name[end] == ',') {
        ++end;  // {shard="0",node="1"} -> {node="1"}
      } else if (name[pos - 1] == ',') {
        --pos;  // {node="1",shard="0"} -> {node="1"}
      } else {
        --pos;
        ++end;  // {shard="0"} -> (no labels)
      }
      name.erase(pos, end - pos);
    }
    sums[name] += value;
  }
  std::vector<std::string> lines;
  for (const auto& [name, value] : sums) {
    lines.push_back(name + " " + std::to_string(value));
  }
  return lines;
}

// Hard-kill simulation: keep exactly `keep` bytes of the WAL directory
// (segments in name order), deleting later segments and cutting the one
// the boundary lands in — usually mid-record, which is exactly the torn
// tail Wal::Open must recover from.
void TruncateWalAt(const std::string& dir, uint64_t keep) {
  namespace fs = std::filesystem;
  std::vector<fs::path> segments;
  for (const auto& entry : fs::directory_iterator(dir)) {
    segments.push_back(entry.path());
  }
  std::sort(segments.begin(), segments.end());
  uint64_t offset = 0;
  for (const fs::path& segment : segments) {
    uint64_t size = fs::file_size(segment);
    if (offset >= keep) {
      fs::remove(segment);
      continue;
    }
    if (offset + size > keep) fs::resize_file(segment, keep - offset);
    offset += size;
  }
}

// Store-effects phase of the recovery smoke (--actions=sync|async): the
// FIG9-A workload with SQL actions against a real database behind a
// write-ahead log, hard-killed after a mid-run checkpoint by truncating
// the WAL halfway through the post-checkpoint bytes (mid-record), then
// recovered — WAL replay into a fresh store, state restore, suffix
// reprocessing. Same-layout recovery, so the final OBSERVATION /
// OBJECTLOCATION / OBJECTCONTAINMENT tables must be byte-identical to
// the uninterrupted run's, and the exported counters must reconcile.
int RunDurableStoreSmoke(const BenchFlags& flags) {
  namespace fs = std::filesystem;
  using rfidcep::store::Database;
  using rfidcep::store::Wal;
  using rfidcep::store::WalOptions;
  const int num_rules = flags.rules > 0 ? flags.rules : 25;
  const int sites = flags.sites > 0 ? flags.sites : 5;
  const size_t events = flags.events > 0 ? flags.events : 20000;
  rfidcep::sim::SupplyChain chain(BenchConfig(sites));
  const std::string program = chain.GeneratedRuleProgram(num_rules);
  std::vector<Observation> stream = chain.GenerateStream(events);
  std::vector<std::vector<Observation>> batches;
  for (size_t begin = 0; begin < stream.size(); begin += flags.batch) {
    size_t end = std::min(begin + flags.batch, stream.size());
    batches.emplace_back(stream.begin() + static_cast<long>(begin),
                         stream.begin() + static_cast<long>(end));
  }
  const size_t cut = batches.size() / 2;
  const size_t doomed_end = cut + (batches.size() - cut + 1) / 2;

  EngineOptions options;
  options.execute_actions = true;
  options.async_actions = flags.actions == "async";
  options.shards = flags.shards;
  options.partition = flags.partition == "data"
                          ? rfidcep::engine::PartitionMode::kData
                          : rfidcep::engine::PartitionMode::kRule;
  options.enable_metrics = true;
  auto make_engine = [&](Database* db) {
    auto engine =
        std::make_unique<RcedaEngine>(db, chain.environment(), options);
    Check(engine->AddRulesFromText(program), "rule");
    return engine;
  };
  auto dump_store = [](Database* db) {
    std::string out;
    for (const char* table :
         {"OBSERVATION", "OBJECTLOCATION", "OBJECTCONTAINMENT"}) {
      out += rfidcep::store::TableToCsv(*db->GetTable(table));
      out += '\n';
    }
    return out;
  };

  std::printf("\nDURABLE STORE SMOKE: %zu events, %d rules, shards=%d, "
              "actions=%s, checkpoint after batch %zu/%zu, crash after "
              "batch %zu, WAL cut mid-record\n",
              events, num_rules, flags.shards, flags.actions.c_str(), cut,
              batches.size(), doomed_end);

  Database reference_db;
  Check(reference_db.InstallRfidSchema(), "schema");
  auto reference = make_engine(&reference_db);
  Check(reference->Compile(), "compile");
  for (const auto& batch : batches) {
    Check(reference->ProcessAll(batch), "process");
  }
  Check(reference->Flush(), "flush");
  const std::string want_store = dump_store(&reference_db);

  const std::string wal_dir = "fig9_durable_smoke_wal";
  fs::remove_all(wal_dir);
  WalOptions wal_options;
  wal_options.segment_bytes = 4096;  // The cut can cross rotations.
  uint64_t checkpoint_bytes = 0;
  uint64_t final_bytes = 0;
  std::string snapshot;
  {
    rfidcep::Result<std::unique_ptr<Wal>> opened =
        Wal::Open(wal_dir, wal_options);
    Check(opened.status(), "wal open");
    std::unique_ptr<Wal> wal = std::move(*opened);
    Database db;
    Check(db.InstallRfidSchema(), "schema");
    auto crashed = make_engine(&db);
    Check(crashed->AttachWal(wal.get()), "attach wal");
    Check(crashed->Compile(), "compile");
    for (size_t i = 0; i < cut; ++i) {
      Check(crashed->ProcessAll(batches[i]), "process");
    }
    Check(crashed->SerializeState(&snapshot), "serialize");
    checkpoint_bytes = wal->total_bytes();
    for (size_t i = cut; i < doomed_end; ++i) {
      Check(crashed->ProcessAll(batches[i]), "process");
    }
    crashed.reset();  // Drains the action stage into the WAL.
    final_bytes = wal->total_bytes();
  }  // The Wal flushes on destruction; the files now hold everything.
  TruncateWalAt(wal_dir,
                checkpoint_bytes + (final_bytes - checkpoint_bytes) / 2);

  rfidcep::Result<std::unique_ptr<Wal>> reopened =
      Wal::Open(wal_dir, wal_options);
  Check(reopened.status(), "wal reopen");
  std::unique_ptr<Wal> wal = std::move(*reopened);
  Database db;
  Check(db.InstallRfidSchema(), "schema");
  Check(rfidcep::store::ReplayWalIntoDatabase(*wal, &db).status(),
        "wal replay");
  auto second = make_engine(&db);
  Check(second->AttachWal(wal.get()), "attach wal");
  Check(second->Compile(), "compile");
  Check(second->RestoreState(snapshot), "restore");
  for (size_t i = cut; i < batches.size(); ++i) {
    Check(second->ProcessAll(batches[i]), "process");
  }
  Check(second->Flush(), "flush");

  int failures = 0;
  auto require = [&failures](const char* what, uint64_t want, uint64_t got) {
    bool ok = want == got;
    std::printf("  %-24s reference=%-10llu recovered=%-10llu %s\n", what,
                static_cast<unsigned long long>(want),
                static_cast<unsigned long long>(got), ok ? "ok" : "MISMATCH");
    if (!ok) ++failures;
  };
  require("rule_matches", reference->stats().detector.rule_matches,
          second->stats().detector.rule_matches);
  require("rules_fired", reference->stats().rules_fired,
          second->stats().rules_fired);
  require("sql_actions_executed", reference->stats().sql_actions_executed,
          second->stats().sql_actions_executed);

  const std::string got_store = dump_store(&db);
  if (want_store == got_store) {
    std::printf("  %-24s %zu bytes byte-identical\n", "store tables",
                want_store.size());
  } else {
    ++failures;
    std::printf("  %-24s MISMATCH (%zu vs %zu bytes)\n", "store tables",
                want_store.size(), got_store.size());
  }

  const bool skip_node_counters = reference->data_partitioned();
  std::vector<std::string> want =
      CounterLines(reference->ExportMetrics(), skip_node_counters);
  std::vector<std::string> got =
      CounterLines(second->ExportMetrics(), skip_node_counters);
  if (want == got) {
    std::printf("  %-24s %zu lines reconcile\n", "exported counters",
                want.size());
  } else {
    ++failures;
    std::printf("  %-24s MISMATCH\n", "exported counters");
    for (const std::string& line : want) {
      if (!std::binary_search(got.begin(), got.end(), line)) {
        std::printf("    - %s\n", line.c_str());
      }
    }
    for (const std::string& line : got) {
      if (!std::binary_search(want.begin(), want.end(), line)) {
        std::printf("    + %s\n", line.c_str());
      }
    }
  }
  fs::remove_all(wal_dir);
  std::printf("durable store smoke: %s\n", failures == 0 ? "PASS" : "FAIL");
  return failures;
}

// --recovery-smoke: the FIG9-A workload uninterrupted versus interrupted
// by a midpoint Checkpoint()/Restore(). The cut lands on a batch
// boundary so both executions issue the same ProcessAll calls. With
// --actions=sync|async the durable store phase (above) runs after it.
int RunRecoverySmoke(const BenchFlags& flags) {
  const int num_rules = flags.rules > 0 ? flags.rules : 25;
  const int sites = flags.sites > 0 ? flags.sites : 5;
  const size_t events = flags.events > 0 ? flags.events : 20000;
  rfidcep::sim::SupplyChain chain(BenchConfig(sites));
  const std::string program = chain.GeneratedRuleProgram(num_rules);
  std::vector<Observation> stream = chain.GenerateStream(events);

  std::vector<std::vector<Observation>> batches;
  for (size_t begin = 0; begin < stream.size(); begin += flags.batch) {
    size_t end = std::min(begin + flags.batch, stream.size());
    batches.emplace_back(stream.begin() + static_cast<long>(begin),
                         stream.begin() + static_cast<long>(end));
  }
  const size_t cut = batches.size() / 2;

  EngineOptions options;
  options.execute_actions = false;
  options.shards = flags.shards;
  options.partition = flags.partition == "data"
                          ? rfidcep::engine::PartitionMode::kData
                          : rfidcep::engine::PartitionMode::kRule;
  options.enable_metrics = true;
  auto make_engine = [&] {
    auto engine = std::make_unique<RcedaEngine>(nullptr, chain.environment(),
                                                options);
    Check(engine->AddRulesFromText(program), "rule");
    Check(engine->Compile(), "compile");
    return engine;
  };

  std::printf("\nRECOVERY SMOKE: %zu events, %d rules, shards=%d, "
              "checkpoint after batch %zu/%zu\n",
              events, num_rules, flags.shards, cut, batches.size());

  auto reference = make_engine();
  for (const auto& batch : batches) {
    Check(reference->ProcessAll(batch), "process");
  }
  Check(reference->Flush(), "flush");

  const std::string path = "fig9_recovery_smoke.snap";
  auto first = make_engine();
  for (size_t i = 0; i < cut; ++i) {
    Check(first->ProcessAll(batches[i]), "process");
  }
  Check(first->Checkpoint(path), "checkpoint");
  auto second = make_engine();
  Check(second->Restore(path), "restore");
  std::remove(path.c_str());
  for (size_t i = cut; i < batches.size(); ++i) {
    Check(second->ProcessAll(batches[i]), "process");
  }
  Check(second->Flush(), "flush");

  int failures = 0;
  auto require = [&failures](const char* what, uint64_t want, uint64_t got) {
    bool ok = want == got;
    std::printf("  %-24s reference=%-10llu recovered=%-10llu %s\n", what,
                static_cast<unsigned long long>(want),
                static_cast<unsigned long long>(got), ok ? "ok" : "MISMATCH");
    if (!ok) ++failures;
  };
  require("rule_matches", reference->stats().detector.rule_matches,
          second->stats().detector.rule_matches);
  require("rules_fired", reference->stats().rules_fired,
          second->stats().rules_fired);
  require("pseudo_fired", reference->stats().detector.pseudo_fired,
          second->stats().detector.pseudo_fired);

  const bool skip_node_counters = reference->data_partitioned();
  std::vector<std::string> want =
      CounterLines(reference->ExportMetrics(), skip_node_counters);
  std::vector<std::string> got =
      CounterLines(second->ExportMetrics(), skip_node_counters);
  if (want == got) {
    std::printf("  %-24s %zu lines reconcile\n", "exported counters",
                want.size());
  } else {
    ++failures;
    std::printf("  %-24s MISMATCH\n", "exported counters");
    for (const std::string& line : want) {
      if (!std::binary_search(got.begin(), got.end(), line)) {
        std::printf("    - %s\n", line.c_str());
      }
    }
    for (const std::string& line : got) {
      if (!std::binary_search(want.begin(), want.end(), line)) {
        std::printf("    + %s\n", line.c_str());
      }
    }
  }
  std::printf("recovery smoke: %s\n", failures == 0 ? "PASS" : "FAIL");
  if (flags.actions != "off") failures += RunDurableStoreSmoke(flags);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--series=", 9) == 0) {
      flags.series = argv[i] + 9;
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      // Comma list: the shards series sweeps every value (plus the
      // serial baseline); single-engine series use the first one.
      for (const char* p = argv[i] + 9; *p != '\0';) {
        char* next = nullptr;
        int value = static_cast<int>(std::strtol(p, &next, 10));
        if (next == p) break;
        flags.shard_list.push_back(value);
        p = (*next == ',') ? next + 1 : next;
      }
      flags.shards = flags.shard_list.empty() ? 0 : flags.shard_list.front();
    } else if (std::strncmp(argv[i], "--partition=", 12) == 0) {
      flags.partition = argv[i] + 12;
      if (flags.partition != "rule" && flags.partition != "data") {
        std::fprintf(stderr, "bad --partition (want rule|data): %s\n",
                     argv[i]);
        return 1;
      }
    } else if (std::strncmp(argv[i], "--batch=", 8) == 0) {
      flags.batch = static_cast<size_t>(std::atol(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--rules=", 8) == 0) {
      flags.rules = std::atoi(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--sites=", 8) == 0) {
      flags.sites = std::atoi(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--events=", 9) == 0) {
      flags.events = static_cast<size_t>(std::atol(argv[i] + 9));
    } else if (std::strncmp(argv[i], "--compile=", 10) == 0) {
      flags.compile = argv[i] + 10;
      if (flags.compile != "full" && flags.compile != "off") {
        std::fprintf(stderr, "bad --compile (want full|off): %s\n", argv[i]);
        return 1;
      }
    } else if (std::strncmp(argv[i], "--actions=", 10) == 0) {
      flags.actions = argv[i] + 10;
      if (flags.actions != "off" && flags.actions != "sync" &&
          flags.actions != "async") {
        std::fprintf(stderr, "bad --actions (want off|sync|async): %s\n",
                     argv[i]);
        return 1;
      }
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      flags.metrics = true;
    } else if (std::strcmp(argv[i], "--recovery-smoke") == 0) {
      flags.recovery_smoke = true;
    } else if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      flags.metrics = true;
      flags.metrics_out = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--json-out=", 11) == 0) {
      flags.json_out = argv[i] + 11;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 1;
    }
  }
  if (flags.shards < 1 || flags.batch < 1) {
    std::fprintf(stderr, "--shards and --batch must be >= 1\n");
    return 1;
  }
  std::printf("rfidcep Fig. 9 reproduction "
              "(Wang et al., EDBT 2006, \"Bridging Physical and Virtual "
              "Worlds\")\n");
  if (flags.recovery_smoke) return RunRecoverySmoke(flags);
  BenchOutput output;
  int failures = 0;
  const std::string& s = flags.series;
  if (s == "events" || s == "both" || s == "all") {
    RunEventsSeries(flags, &output);
  }
  if (s == "rules" || s == "both" || s == "all") {
    RunRulesSeries(flags, &output);
  }
  if (s == "shards" || s == "all") RunShardsSeries(flags, &output);
  if (s == "workload" || s == "all") RunWorkloadSeries(flags, &output);
  if (s == "actions" || s == "all") {
    failures += RunActionsSeries(flags, &output);
  }
  if (!flags.json_out.empty()) {
    std::ofstream out(flags.json_out);
    if (!out) {
      std::fprintf(stderr, "cannot open '%s'\n", flags.json_out.c_str());
      return 1;
    }
    out << "{\"bench\":\"fig9_scalability\",\"rows\":[\n";
    for (size_t i = 0; i < output.json_rows.size(); ++i) {
      out << "  " << output.json_rows[i]
          << (i + 1 < output.json_rows.size() ? ",\n" : "\n");
    }
    out << "]}\n";
  }
  if (!flags.metrics_out.empty()) {
    if (flags.metrics_out == "-") {
      std::fputs(output.metrics_text.c_str(), stdout);
    } else {
      std::ofstream out(flags.metrics_out);
      if (!out) {
        std::fprintf(stderr, "cannot open '%s'\n", flags.metrics_out.c_str());
        return 1;
      }
      out << output.metrics_text;
    }
  }
  return failures == 0 ? 0 : 1;
}
