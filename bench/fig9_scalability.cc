// FIG9-A / FIG9-B: reproduction of the paper's Fig. 9 — "Event processing
// time versus number of events and number of rules" (§5).
//
// Setup mirrors the paper: a simulated RFID-enabled supply chain
// (warehouses, shipping, retail, sale), observation arrival rate 1000
// events/sec, rule families for filtering / transformation / aggregation /
// monitoring, and *action cost excluded* from the measured processing time
// (execute_actions = false).
//
//   ./build/bench/fig9_scalability [--series=events|rules|both]
//
// Expected shape (paper): total processing time grows ~linearly with the
// number of primitive events, and stays moderate as the number of rules
// grows (sub-linear in rules thanks to common-subgraph merging and
// group-keyed primitive dispatch).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "sim/supply_chain.h"

namespace {

using rfidcep::Status;
using rfidcep::engine::EngineOptions;
using rfidcep::engine::RcedaEngine;
using rfidcep::events::Observation;

struct RunResult {
  double total_ms = 0;
  double usec_per_event = 0;
  uint64_t matches = 0;
  uint64_t pseudo_fired = 0;
};

rfidcep::sim::SupplyChainConfig BenchConfig(int num_sites) {
  rfidcep::sim::SupplyChainConfig config;
  config.seed = 20060327;  // EDBT'06.
  config.num_sites = num_sites;
  config.num_items = 10000;  // Large pool: duplicates come from injection.
  config.num_cases = 1000;
  config.arrival_rate_per_second = 1000.0;  // Paper's arrival rate.
  config.duplicate_rate = 0.03;
  return config;
}

RunResult RunOnce(const std::string& rule_program, int num_sites,
                  size_t num_events) {
  rfidcep::sim::SupplyChain chain(BenchConfig(num_sites));
  std::vector<Observation> stream = chain.GenerateStream(num_events);

  EngineOptions options;
  options.execute_actions = false;  // Paper: action cost not counted.
  RcedaEngine engine(nullptr, chain.environment(), options);
  Status status = engine.AddRulesFromText(rule_program);
  if (!status.ok()) {
    std::fprintf(stderr, "rule error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
  status = engine.Compile();
  if (!status.ok()) {
    std::fprintf(stderr, "compile error: %s\n", status.ToString().c_str());
    std::exit(1);
  }

  auto start = std::chrono::steady_clock::now();
  for (const Observation& obs : stream) {
    status = engine.Process(obs);
    if (!status.ok()) {
      std::fprintf(stderr, "process error: %s\n", status.ToString().c_str());
      std::exit(1);
    }
  }
  (void)engine.Flush();
  auto end = std::chrono::steady_clock::now();

  RunResult result;
  result.total_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  result.usec_per_event = result.total_ms * 1000.0 /
                          static_cast<double>(stream.size());
  result.matches = engine.stats().detector.rule_matches;
  result.pseudo_fired = engine.stats().detector.pseudo_fired;
  return result;
}

void RunEventsSeries() {
  std::printf(
      "\nFIG9-A: total event processing time versus number of primitive "
      "events\n");
  std::printf("(fixed rule set: 25 rules over 5 sites, arrival rate 1000 "
              "ev/s, actions excluded)\n");
  std::printf("%12s %14s %14s %12s %12s\n", "events", "total_ms",
              "usec/event", "matches", "pseudo");
  constexpr int kSites = 5;
  rfidcep::sim::SupplyChain chain(BenchConfig(kSites));
  std::string rules = chain.GeneratedRuleProgram(25);
  for (size_t events : {50000u, 100000u, 150000u, 200000u, 250000u}) {
    RunResult r = RunOnce(rules, kSites, events);
    std::printf("%12zu %14.1f %14.3f %12llu %12llu\n", events, r.total_ms,
                r.usec_per_event, static_cast<unsigned long long>(r.matches),
                static_cast<unsigned long long>(r.pseudo_fired));
  }
}

void RunRulesSeries() {
  std::printf(
      "\nFIG9-B: total event processing time versus number of rules\n");
  std::printf("(fixed stream: 100000 primitive events at 1000 ev/s, actions "
              "excluded)\n");
  std::printf("%12s %14s %14s %12s %12s\n", "rules", "total_ms", "usec/event",
              "matches", "pseudo");
  constexpr size_t kEvents = 100000;
  for (int rules : {50, 100, 200, 300, 400, 500}) {
    int sites = std::max(1, rules / 5);
    rfidcep::sim::SupplyChain chain(BenchConfig(sites));
    std::string program = chain.GeneratedRuleProgram(rules);
    RunResult r = RunOnce(program, sites, kEvents);
    std::printf("%12d %14.1f %14.3f %12llu %12llu\n", rules, r.total_ms,
                r.usec_per_event, static_cast<unsigned long long>(r.matches),
                static_cast<unsigned long long>(r.pseudo_fired));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string series = "both";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--series=", 9) == 0) series = argv[i] + 9;
  }
  std::printf("rfidcep Fig. 9 reproduction "
              "(Wang et al., EDBT 2006, \"Bridging Physical and Virtual "
              "Worlds\")\n");
  if (series == "events" || series == "both") RunEventsSeries();
  if (series == "rules" || series == "both") RunRulesSeries();
  return 0;
}
