// FIG9-A / FIG9-B: reproduction of the paper's Fig. 9 — "Event processing
// time versus number of events and number of rules" (§5) — plus a shards
// series for the sharded detection pipeline.
//
// Setup mirrors the paper: a simulated RFID-enabled supply chain
// (warehouses, shipping, retail, sale), observation arrival rate 1000
// events/sec, rule families for filtering / transformation / aggregation /
// monitoring, and *action cost excluded* from the measured processing time
// (execute_actions = false).
//
//   ./build/bench/fig9_scalability [--series=events|rules|shards|both|all]
//                                  [--shards=N[,N...]] [--batch=N]
//                                  [--partition=rule|data]
//                                  [--compile=full|off]
//                                  [--rules=N] [--sites=N] [--events=N]
//                                  [--metrics] [--metrics-out=FILE]
//                                  [--json-out=FILE] [--recovery-smoke]
//
// --partition=data requests the data-partitioned pipeline (keyed rules
// replicated, stream split by hash(EPC); see engine/sharded_engine.h);
// every JSON row records the partition mode the engine ACTUALLY ran
// ("data" only when at least one rule was key-partitionable). --shards
// takes a comma list for the shards series (a serial shards=1 baseline
// point is always included); other series use the first value.
//
// --compile=off disables the rule-set compiler (indexed dispatch,
// predicate pushdown, and SEQ+ prefix sharing) so the 500 -> 10k rules
// scaling of the uncompiled engine can be measured for comparison; the
// default ("full") is what BENCH_rfidcep.json records.
//
// The rules series (FIG9-B) sweeps the SKU x site rule family — one
// duplicate-detection rule per (site, SKU) pair over 20 sites and 500
// SKU classes — from 500 to 10,000 rules against ONE fixed stream, so
// the usec/event curve isolates rule-set size. --rules=N pins the
// series to a single point (the CI bench smoke runs --rules=2000).
//
// --recovery-smoke replaces the timed series with a durability check:
// the FIG9-A workload runs once uninterrupted and once interrupted by a
// midpoint Checkpoint()/Restore() into a fresh engine, and the two
// executions must agree on every match / fired count and on every
// `_total` counter in the Prometheus exposition (exit 1 otherwise).
// CI runs this as the recovery smoke job; see docs/recovery.md.
//
// Metric collection defaults OFF here (the engine defaults it on) so the
// timed numbers stay comparable with BENCH_rfidcep.json; --metrics turns
// it on and --metrics-out dumps the final run's Prometheus exposition.
// --json-out writes every timing row as JSON for scripts/bench_guard.py.
//
// The stream is pre-split into batches outside the timed region and fed
// through RcedaEngine::ProcessAll, the batch entry point (one routing
// fan-out, one barrier, and one stats sync per batch in sharded mode).
//
// Expected shape (paper): total processing time grows ~linearly with the
// number of primitive events, and stays moderate as the number of rules
// grows (sub-linear in rules thanks to common-subgraph merging and
// group-keyed primitive dispatch). The shards series reports the same
// workload partitioned across worker threads; wall-clock gains require
// the host to have that many cores (see docs/performance.md).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "sim/supply_chain.h"

namespace {

using rfidcep::Status;
using rfidcep::engine::EngineOptions;
using rfidcep::engine::RcedaEngine;
using rfidcep::events::Observation;

struct RunResult {
  double total_ms = 0;
  double usec_per_event = 0;
  uint64_t matches = 0;
  uint64_t pseudo_fired = 0;
  uint64_t rules_fired = 0;
  bool data_partitioned = false;  // What the engine actually ran.
};

struct BenchFlags {
  std::string series = "both";
  int shards = 1;
  std::vector<int> shard_list;  // --shards comma list (shards series).
  std::string partition = "rule";
  size_t batch = 1024;
  int rules = 0;    // 0 = per-series default.
  int sites = 0;    // 0 = per-series default.
  size_t events = 0;  // 0 = per-series default.
  bool metrics = false;  // Collection off: timed numbers match the seed.
  bool recovery_smoke = false;  // Midpoint checkpoint/restore check.
  std::string compile = "full";  // "off" disables the rule-set compiler.
  std::string metrics_out;  // Exposition of the last run ("-" = stdout).
  std::string json_out;     // Timing rows for scripts/bench_guard.py.
};

// Rows accumulated across series for --json-out / --metrics-out.
struct BenchOutput {
  std::vector<std::string> json_rows;
  std::string metrics_text;  // Last run's exposition (--metrics only).
};

void AppendJsonRow(BenchOutput* out, const char* series,
                   const char* rule_family, const BenchFlags& flags,
                   size_t events, int rules, int shards, const RunResult& r) {
  char buf[352];
  std::snprintf(buf, sizeof(buf),
                "{\"series\":\"%s\",\"rule_family\":\"%s\","
                "\"compile\":\"%s\",\"events\":%zu,\"rules\":%d,"
                "\"shards\":%d,\"partition\":\"%s\",\"total_ms\":%.3f,"
                "\"usec_per_event\":%.4f,\"matches\":%llu,\"fired\":%llu}",
                series, rule_family, flags.compile.c_str(), events, rules,
                shards, r.data_partitioned ? "data" : "rule", r.total_ms,
                r.usec_per_event, static_cast<unsigned long long>(r.matches),
                static_cast<unsigned long long>(r.rules_fired));
  out->json_rows.emplace_back(buf);
}

rfidcep::sim::SupplyChainConfig BenchConfig(int num_sites) {
  rfidcep::sim::SupplyChainConfig config;
  config.seed = 20060327;  // EDBT'06.
  config.num_sites = num_sites;
  config.num_items = 10000;  // Large pool: duplicates come from injection.
  config.num_cases = 1000;
  config.arrival_rate_per_second = 1000.0;  // Paper's arrival rate.
  config.duplicate_rate = 0.03;
  return config;
}

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s error: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

RunResult RunOnce(const std::string& rule_program,
                  const rfidcep::sim::SupplyChainConfig& chain_config,
                  size_t num_events, int shards, const BenchFlags& flags,
                  BenchOutput* out) {
  const size_t batch_size = flags.batch;
  rfidcep::sim::SupplyChain chain(chain_config);
  std::vector<Observation> stream = chain.GenerateStream(num_events);

  // Pre-split the stream outside the timed region; the timed loop only
  // pays for detection, not for batch assembly.
  std::vector<std::vector<Observation>> batches;
  for (size_t begin = 0; begin < stream.size(); begin += batch_size) {
    size_t end = std::min(begin + batch_size, stream.size());
    batches.emplace_back(stream.begin() + static_cast<long>(begin),
                         stream.begin() + static_cast<long>(end));
  }

  EngineOptions options;
  options.execute_actions = false;  // Paper: action cost not counted.
  options.shards = shards;
  options.partition = flags.partition == "data"
                          ? rfidcep::engine::PartitionMode::kData
                          : rfidcep::engine::PartitionMode::kRule;
  options.enable_metrics = flags.metrics;
  if (flags.compile == "off") {
    options.detector.compile.indexed_dispatch = false;
    options.detector.compile.predicate_pushdown = false;
    options.detector.compile.share_prefixes = false;
  }
  RcedaEngine engine(nullptr, chain.environment(), options);
  Check(engine.AddRulesFromText(rule_program), "rule");
  Check(engine.Compile(), "compile");

  auto start = std::chrono::steady_clock::now();
  for (const std::vector<Observation>& batch : batches) {
    Check(engine.ProcessAll(batch), "process");
  }
  (void)engine.Flush();
  auto end = std::chrono::steady_clock::now();

  RunResult result;
  result.total_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  result.usec_per_event = result.total_ms * 1000.0 /
                          static_cast<double>(stream.size());
  result.matches = engine.stats().detector.rule_matches;
  result.pseudo_fired = engine.stats().detector.pseudo_fired;
  result.rules_fired = engine.stats().rules_fired;
  result.data_partitioned = engine.data_partitioned();
  if (flags.metrics) out->metrics_text = engine.ExportMetrics();
  return result;
}

void RunEventsSeries(const BenchFlags& flags, BenchOutput* out) {
  const int num_rules = flags.rules > 0 ? flags.rules : 25;
  std::printf(
      "\nFIG9-A: total event processing time versus number of primitive "
      "events\n");
  std::printf("(fixed rule set: %d rules over %d sites, arrival rate 1000 "
              "ev/s, actions excluded, shards=%d, batch=%zu)\n",
              num_rules, flags.sites > 0 ? flags.sites : 5, flags.shards,
              flags.batch);
  std::printf("%12s %14s %14s %12s %12s\n", "events", "total_ms",
              "usec/event", "matches", "pseudo");
  const int sites = flags.sites > 0 ? flags.sites : 5;
  rfidcep::sim::SupplyChain chain(BenchConfig(sites));
  std::string rules = chain.GeneratedRuleProgram(num_rules);
  // --events pins the series to a single point (CI smoke runs).
  std::vector<size_t> points = {50000, 100000, 150000, 200000, 250000};
  if (flags.events > 0) points = {flags.events};
  for (size_t events : points) {
    RunResult r =
        RunOnce(rules, BenchConfig(sites), events, flags.shards, flags, out);
    std::printf("%12zu %14.1f %14.3f %12llu %12llu\n", events, r.total_ms,
                r.usec_per_event, static_cast<unsigned long long>(r.matches),
                static_cast<unsigned long long>(r.pseudo_fired));
    AppendJsonRow(out, "events", "generated", flags, events, num_rules,
                  flags.shards, r);
  }
}

void RunRulesSeries(const BenchFlags& flags, BenchOutput* out) {
  std::printf(
      "\nFIG9-B: total event processing time versus number of rules\n");
  const size_t events = flags.events > 0 ? flags.events : 100000;
  // One fixed stream for every point, drawn from the 25 SKU classes the
  // smallest (500-rule) point covers: every event does the same
  // detection work (exactly one matching rule per (site, SKU) pair) at
  // every rule count, and rules past 500 reference SKUs the stream
  // never emits — but in the SAME site groups the index probes on every
  // event, so they load the probed buckets without adding matching
  // work. The usec/event ratio between points is therefore the pure
  // dispatch-scaling measurement the rule-set compiler is gated on
  // (scripts/bench_guard.py); the uncompiled engine still scans every
  // leaf per event and shows the contrast.
  const int sites = flags.sites > 0 ? flags.sites : 20;
  rfidcep::sim::SupplyChainConfig config = BenchConfig(sites);
  config.num_skus = 25;  // Stream pool == the 500-rule point's coverage.
  rfidcep::sim::SupplyChainConfig naming = config;
  naming.num_skus = 500;  // Rule family spans the full SKU space.
  std::printf("(fixed stream: %zu primitive events at 1000 ev/s over %d "
              "sites x %d SKUs, sku_site rule family over %d SKUs, "
              "compile=%s, actions excluded, shards=%d, batch=%zu)\n",
              events, sites, config.num_skus, naming.num_skus,
              flags.compile.c_str(), flags.shards, flags.batch);
  std::printf("%12s %14s %14s %12s %12s\n", "rules", "total_ms", "usec/event",
              "matches", "pseudo");
  rfidcep::sim::SupplyChain naming_chain(naming);
  // --rules pins the series to a single point (CI smoke).
  std::vector<int> points = {500, 1000, 2000, 5000, 10000};
  if (flags.rules > 0) points = {flags.rules};
  for (int rules : points) {
    std::string program = naming_chain.SkuSiteRuleProgram(rules);
    RunResult r = RunOnce(program, config, events, flags.shards, flags, out);
    std::printf("%12d %14.1f %14.3f %12llu %12llu\n", rules, r.total_ms,
                r.usec_per_event, static_cast<unsigned long long>(r.matches),
                static_cast<unsigned long long>(r.pseudo_fired));
    AppendJsonRow(out, "rules", "sku_site", flags, events, rules,
                  flags.shards, r);
  }
}

// Many-rules workload partitioned across detection shards (default
// {1, 2, 4}; override the multi-shard points with --shards=2,4,...).
// Match and fired counts must be identical at every shard count and in
// both partition modes — the pipeline's determinism contract — so they
// are printed for auditing, along with the mode each run engaged.
void RunShardsSeries(const BenchFlags& flags, BenchOutput* out) {
  const int rules = flags.rules > 0 ? flags.rules : 100;
  const int sites = flags.sites > 0 ? flags.sites : 20;
  const size_t events = flags.events > 0 ? flags.events : 100000;
  std::printf("\nFIG9-S: total event processing time versus detection "
              "shards\n");
  std::printf("(fixed workload: %d rules over %d sites, %zu primitive "
              "events, batch=%zu, partition=%s, actions excluded)\n",
              rules, sites, events, flags.batch, flags.partition.c_str());
  std::printf("%12s %11s %14s %14s %12s %12s\n", "shards", "partition",
              "total_ms", "usec/event", "matches", "fired");
  rfidcep::sim::SupplyChain chain(BenchConfig(sites));
  std::string program = chain.GeneratedRuleProgram(rules);
  std::vector<int> points = {1};
  if (flags.shard_list.empty()) {
    points.push_back(2);
    points.push_back(4);
  } else {
    for (int shards : flags.shard_list) {
      if (shards > 1) points.push_back(shards);
    }
  }
  for (int shards : points) {
    RunResult r =
        RunOnce(program, BenchConfig(sites), events, shards, flags, out);
    std::printf("%12d %11s %14.1f %14.3f %12llu %12llu\n", shards,
                r.data_partitioned ? "data" : "rule", r.total_ms,
                r.usec_per_event, static_cast<unsigned long long>(r.matches),
                static_cast<unsigned long long>(r.rules_fired));
    AppendJsonRow(out, "shards", "generated", flags, events, rules, shards,
                  r);
  }
}

// Counter lines (`*_total ...`) of a Prometheus exposition, sorted,
// with the `shard="N"` label aggregated away (values summed by the
// remaining name). Gauges and histogram buckets carry timings and queue
// depths that legitimately differ across executions, so only counters
// reconcile. Enqueue stalls are backpressure events — thread-scheduling
// dependent, not deterministic even between two uninterrupted runs — so
// they are excluded too. The shard label must be aggregated because
// per-shard ATTRIBUTION of pre-checkpoint work is not part of the
// durability contract: a data-partitioned engine captures one merged
// serial-equivalent snapshot, and restore re-splits it by partition
// key, so restored produced counts land on different shards than the
// ones that originally did the work. The shard-summed totals are exact.
// `skip_node_counters` drops per-node firing counters: their node ids
// are relative to each layout's graphs, so across a re-partitioning
// restore (any data-partitioned engine — its snapshot is pre-merged to
// one serial-equivalent source) pre-checkpoint firings cannot be
// re-credited by node id and legitimately stay behind.
std::vector<std::string> CounterLines(const std::string& exposition,
                                      bool skip_node_counters) {
  std::map<std::string, unsigned long long> sums;
  std::istringstream in(exposition);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("_total") == std::string::npos) continue;
    if (line.find("enqueue_stalls") != std::string::npos) continue;
    if (skip_node_counters &&
        line.find("node=") != std::string::npos) {
      continue;
    }
    size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    std::string name = line.substr(0, space);
    unsigned long long value = std::strtoull(line.c_str() + space + 1,
                                             nullptr, 10);
    // Drop a `shard="N"` label (with its separating comma, whichever
    // side it is on; `{shard="N"}` collapses to no label block at all).
    size_t pos = name.find("shard=\"");
    if (pos != std::string::npos) {
      size_t end = name.find('"', pos + 7) + 1;  // Past the value quote.
      if (end < name.size() && name[end] == ',') {
        ++end;  // {shard="0",node="1"} -> {node="1"}
      } else if (name[pos - 1] == ',') {
        --pos;  // {node="1",shard="0"} -> {node="1"}
      } else {
        --pos;
        ++end;  // {shard="0"} -> (no labels)
      }
      name.erase(pos, end - pos);
    }
    sums[name] += value;
  }
  std::vector<std::string> lines;
  for (const auto& [name, value] : sums) {
    lines.push_back(name + " " + std::to_string(value));
  }
  return lines;
}

// --recovery-smoke: the FIG9-A workload uninterrupted versus interrupted
// by a midpoint Checkpoint()/Restore(). The cut lands on a batch
// boundary so both executions issue the same ProcessAll calls.
int RunRecoverySmoke(const BenchFlags& flags) {
  const int num_rules = flags.rules > 0 ? flags.rules : 25;
  const int sites = flags.sites > 0 ? flags.sites : 5;
  const size_t events = flags.events > 0 ? flags.events : 20000;
  rfidcep::sim::SupplyChain chain(BenchConfig(sites));
  const std::string program = chain.GeneratedRuleProgram(num_rules);
  std::vector<Observation> stream = chain.GenerateStream(events);

  std::vector<std::vector<Observation>> batches;
  for (size_t begin = 0; begin < stream.size(); begin += flags.batch) {
    size_t end = std::min(begin + flags.batch, stream.size());
    batches.emplace_back(stream.begin() + static_cast<long>(begin),
                         stream.begin() + static_cast<long>(end));
  }
  const size_t cut = batches.size() / 2;

  EngineOptions options;
  options.execute_actions = false;
  options.shards = flags.shards;
  options.partition = flags.partition == "data"
                          ? rfidcep::engine::PartitionMode::kData
                          : rfidcep::engine::PartitionMode::kRule;
  options.enable_metrics = true;
  auto make_engine = [&] {
    auto engine = std::make_unique<RcedaEngine>(nullptr, chain.environment(),
                                                options);
    Check(engine->AddRulesFromText(program), "rule");
    Check(engine->Compile(), "compile");
    return engine;
  };

  std::printf("\nRECOVERY SMOKE: %zu events, %d rules, shards=%d, "
              "checkpoint after batch %zu/%zu\n",
              events, num_rules, flags.shards, cut, batches.size());

  auto reference = make_engine();
  for (const auto& batch : batches) {
    Check(reference->ProcessAll(batch), "process");
  }
  Check(reference->Flush(), "flush");

  const std::string path = "fig9_recovery_smoke.snap";
  auto first = make_engine();
  for (size_t i = 0; i < cut; ++i) {
    Check(first->ProcessAll(batches[i]), "process");
  }
  Check(first->Checkpoint(path), "checkpoint");
  auto second = make_engine();
  Check(second->Restore(path), "restore");
  std::remove(path.c_str());
  for (size_t i = cut; i < batches.size(); ++i) {
    Check(second->ProcessAll(batches[i]), "process");
  }
  Check(second->Flush(), "flush");

  int failures = 0;
  auto require = [&failures](const char* what, uint64_t want, uint64_t got) {
    bool ok = want == got;
    std::printf("  %-24s reference=%-10llu recovered=%-10llu %s\n", what,
                static_cast<unsigned long long>(want),
                static_cast<unsigned long long>(got), ok ? "ok" : "MISMATCH");
    if (!ok) ++failures;
  };
  require("rule_matches", reference->stats().detector.rule_matches,
          second->stats().detector.rule_matches);
  require("rules_fired", reference->stats().rules_fired,
          second->stats().rules_fired);
  require("pseudo_fired", reference->stats().detector.pseudo_fired,
          second->stats().detector.pseudo_fired);

  const bool skip_node_counters = reference->data_partitioned();
  std::vector<std::string> want =
      CounterLines(reference->ExportMetrics(), skip_node_counters);
  std::vector<std::string> got =
      CounterLines(second->ExportMetrics(), skip_node_counters);
  if (want == got) {
    std::printf("  %-24s %zu lines reconcile\n", "exported counters",
                want.size());
  } else {
    ++failures;
    std::printf("  %-24s MISMATCH\n", "exported counters");
    for (const std::string& line : want) {
      if (!std::binary_search(got.begin(), got.end(), line)) {
        std::printf("    - %s\n", line.c_str());
      }
    }
    for (const std::string& line : got) {
      if (!std::binary_search(want.begin(), want.end(), line)) {
        std::printf("    + %s\n", line.c_str());
      }
    }
  }
  std::printf("recovery smoke: %s\n", failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--series=", 9) == 0) {
      flags.series = argv[i] + 9;
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      // Comma list: the shards series sweeps every value (plus the
      // serial baseline); single-engine series use the first one.
      for (const char* p = argv[i] + 9; *p != '\0';) {
        char* next = nullptr;
        int value = static_cast<int>(std::strtol(p, &next, 10));
        if (next == p) break;
        flags.shard_list.push_back(value);
        p = (*next == ',') ? next + 1 : next;
      }
      flags.shards = flags.shard_list.empty() ? 0 : flags.shard_list.front();
    } else if (std::strncmp(argv[i], "--partition=", 12) == 0) {
      flags.partition = argv[i] + 12;
      if (flags.partition != "rule" && flags.partition != "data") {
        std::fprintf(stderr, "bad --partition (want rule|data): %s\n",
                     argv[i]);
        return 1;
      }
    } else if (std::strncmp(argv[i], "--batch=", 8) == 0) {
      flags.batch = static_cast<size_t>(std::atol(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--rules=", 8) == 0) {
      flags.rules = std::atoi(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--sites=", 8) == 0) {
      flags.sites = std::atoi(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--events=", 9) == 0) {
      flags.events = static_cast<size_t>(std::atol(argv[i] + 9));
    } else if (std::strncmp(argv[i], "--compile=", 10) == 0) {
      flags.compile = argv[i] + 10;
      if (flags.compile != "full" && flags.compile != "off") {
        std::fprintf(stderr, "bad --compile (want full|off): %s\n", argv[i]);
        return 1;
      }
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      flags.metrics = true;
    } else if (std::strcmp(argv[i], "--recovery-smoke") == 0) {
      flags.recovery_smoke = true;
    } else if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      flags.metrics = true;
      flags.metrics_out = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--json-out=", 11) == 0) {
      flags.json_out = argv[i] + 11;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 1;
    }
  }
  if (flags.shards < 1 || flags.batch < 1) {
    std::fprintf(stderr, "--shards and --batch must be >= 1\n");
    return 1;
  }
  std::printf("rfidcep Fig. 9 reproduction "
              "(Wang et al., EDBT 2006, \"Bridging Physical and Virtual "
              "Worlds\")\n");
  if (flags.recovery_smoke) return RunRecoverySmoke(flags);
  BenchOutput output;
  const std::string& s = flags.series;
  if (s == "events" || s == "both" || s == "all") {
    RunEventsSeries(flags, &output);
  }
  if (s == "rules" || s == "both" || s == "all") {
    RunRulesSeries(flags, &output);
  }
  if (s == "shards" || s == "all") RunShardsSeries(flags, &output);
  if (!flags.json_out.empty()) {
    std::ofstream out(flags.json_out);
    if (!out) {
      std::fprintf(stderr, "cannot open '%s'\n", flags.json_out.c_str());
      return 1;
    }
    out << "{\"bench\":\"fig9_scalability\",\"rows\":[\n";
    for (size_t i = 0; i < output.json_rows.size(); ++i) {
      out << "  " << output.json_rows[i]
          << (i + 1 < output.json_rows.size() ? ",\n" : "\n");
    }
    out << "]}\n";
  }
  if (!flags.metrics_out.empty()) {
    if (flags.metrics_out == "-") {
      std::fputs(output.metrics_text.c_str(), stdout);
    } else {
      std::ofstream out(flags.metrics_out);
      if (!out) {
        std::fprintf(stderr, "cannot open '%s'\n", flags.metrics_out.c_str());
        return 1;
      }
      out << output.metrics_text;
    }
  }
  return 0;
}
