// SUB-STORE: throughput of the mini-SQL data store behind rule actions —
// the cost the paper's Fig. 9 measurement explicitly excludes, measured
// here on its own.

#include <benchmark/benchmark.h>

#include "store/database.h"
#include "store/sql_executor.h"
#include "store/sql_parser.h"

namespace {

using rfidcep::store::Database;
using rfidcep::store::ExecuteSql;
using rfidcep::store::ParamMap;
using rfidcep::store::ParamValue;
using rfidcep::store::SqlStatement;
using rfidcep::store::Value;

void BM_ParseInsert(benchmark::State& state) {
  for (auto _ : state) {
    auto stmt = rfidcep::store::ParseSql(
        "INSERT INTO OBJECTLOCATION VALUES (o, 'loc2', t, \"UC\")");
    benchmark::DoNotOptimize(stmt);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ParseInsert);

void BM_InsertPrepared(benchmark::State& state) {
  Database db;
  (void)db.InstallRfidSchema();
  auto stmt = rfidcep::store::ParseSql(
      "INSERT INTO OBSERVATION VALUES (r, o, t)");
  int i = 0;
  for (auto _ : state) {
    ParamMap params;
    params.emplace("r", ParamValue::Scalar(Value::String("r1")));
    params.emplace("o", ParamValue::Scalar(
                            Value::String("obj" + std::to_string(i % 4096))));
    params.emplace("t", ParamValue::Scalar(Value::Time(i)));
    benchmark::DoNotOptimize(ExecuteSql(*stmt, &db, params));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InsertPrepared);

void BM_UpdateIndexedVsScan(benchmark::State& state) {
  bool indexed = state.range(0) == 1;
  Database db;
  (void)db.InstallRfidSchema();  // OBJECTLOCATION indexed on object_epc.
  for (int i = 0; i < 10000; ++i) {
    ParamMap params;
    params.emplace("o", ParamValue::Scalar(
                            Value::String("obj" + std::to_string(i))));
    params.emplace("t", ParamValue::Scalar(Value::Time(i)));
    (void)ExecuteSql(
        "INSERT INTO OBJECTLOCATION VALUES (o, 'dock', t, \"UC\")", &db,
        params);
  }
  // The WHERE below is evaluated per row (scan); the indexed variant uses
  // Table::Lookup directly to show the gap.
  auto* table = db.GetTable("OBJECTLOCATION");
  int i = 0;
  for (auto _ : state) {
    Value key = Value::String("obj" + std::to_string(i % 10000));
    if (indexed) {
      benchmark::DoNotOptimize(table->Lookup(0, key));
    } else {
      benchmark::DoNotOptimize(table->SelectWhere(
          [&key](const rfidcep::store::Row& row) {
            return row[0].EqualsSql(key);
          }));
    }
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(indexed ? "hash index" : "full scan");
}
BENCHMARK(BM_UpdateIndexedVsScan)->Arg(1)->Arg(0);

void BM_BulkInsertContainment(benchmark::State& state) {
  int width = static_cast<int>(state.range(0));
  Database db;
  (void)db.InstallRfidSchema();
  auto stmt = rfidcep::store::ParseSql(
      "BULK INSERT INTO OBJECTCONTAINMENT VALUES (o1, o2, t2, \"UC\")");
  std::vector<Value> items;
  for (int i = 0; i < width; ++i) {
    items.push_back(Value::String("item" + std::to_string(i)));
  }
  int episode = 0;
  for (auto _ : state) {
    ParamMap params;
    params.emplace("o1", ParamValue::Multi(items));
    params.emplace("o2", ParamValue::Scalar(
                             Value::String("case" + std::to_string(episode))));
    params.emplace("t2", ParamValue::Scalar(Value::Time(episode)));
    benchmark::DoNotOptimize(ExecuteSql(*stmt, &db, params));
    ++episode;
  }
  state.SetItemsProcessed(state.iterations() * width);
}
BENCHMARK(BM_BulkInsertContainment)->Arg(4)->Arg(16)->Arg(64);

void BM_SelectOrderLimit(benchmark::State& state) {
  Database db;
  (void)db.InstallRfidSchema();
  for (int i = 0; i < 5000; ++i) {
    ParamMap params;
    params.emplace("o", ParamValue::Scalar(
                            Value::String("obj" + std::to_string(i % 100))));
    params.emplace("t", ParamValue::Scalar(Value::Time(i * 997 % 5000)));
    (void)ExecuteSql("INSERT INTO OBSERVATION VALUES ('r1', o, t)", &db,
                     params);
  }
  auto stmt = rfidcep::store::ParseSql(
      "SELECT object, ts FROM OBSERVATION WHERE ts > 1000 "
      "ORDER BY ts DESC LIMIT 20");
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExecuteSql(*stmt, &db));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SelectOrderLimit);

}  // namespace
