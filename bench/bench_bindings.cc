// Microbenchmarks for the binding layer the detection hot path lives on:
// Merge (copy vs move), ToMulti, join-key computation, and the full
// pairing probe (key + unification re-check).
//
// Every benchmark reports an `allocs_per_iter` counter backed by a global
// operator new override. The probe-path benchmarks must report 0: the
// acceptance bar for this layer is that pairing an incoming instance
// against a bucket performs no heap allocation (and in particular never
// builds a std::string bucket key — compare BM_StringBucketKey, which
// reconstructs the old representation for contrast).

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "events/binding.h"
#include "events/symbol.h"

namespace {

std::atomic<uint64_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace rfidcep::events {
namespace {

// Counts heap allocations across the timed region and reports the
// per-iteration average.
class AllocationScope {
 public:
  explicit AllocationScope(benchmark::State& state)
      : state_(state), start_(g_allocations.load(std::memory_order_relaxed)) {}
  ~AllocationScope() {
    uint64_t allocs =
        g_allocations.load(std::memory_order_relaxed) - start_;
    state_.counters["allocs_per_iter"] = benchmark::Counter(
        static_cast<double>(allocs) /
        static_cast<double>(std::max<int64_t>(state_.iterations(), 1)));
  }

 private:
  benchmark::State& state_;
  uint64_t start_;
};

// A primitive match's typical bindings: reader, object, timestamp.
Bindings MakeLeafBindings(SymbolId r, SymbolId o, SymbolId t,
                          const std::string& reader,
                          const std::string& object, TimePoint when) {
  Bindings b;
  b.BindScalar(r, reader);
  b.BindScalar(o, object);
  b.BindScalar(t, when);
  return b;
}

// The per-probe work PairBinary does for one candidate: hash the join
// tuple of the incoming instance, then re-check unification against a
// buffered candidate. Must be allocation-free.
void BM_PairingProbe(benchmark::State& state) {
  SymbolId r = InternSymbol("bb_r");
  SymbolId o = InternSymbol("bb_o");
  SymbolId t1 = InternSymbol("bb_t1");
  SymbolId t2 = InternSymbol("bb_t2");
  Bindings incoming = MakeLeafBindings(r, o, t2, "urn:reader:dock-04",
                                       "urn:epc:case:0042", 17 * kSecond);
  Bindings candidate = MakeLeafBindings(r, o, t1, "urn:reader:dock-04",
                                        "urn:epc:case:0042", 12 * kSecond);
  std::vector<SymbolId> join_syms = {r, o};
  AllocationScope allocs(state);
  for (auto _ : state) {
    bool complete = false;
    uint64_t key = ComputeJoinKey(incoming, join_syms, &complete);
    benchmark::DoNotOptimize(key);
    benchmark::DoNotOptimize(complete);
    benchmark::DoNotOptimize(candidate.UnifiesWith(incoming));
  }
}
BENCHMARK(BM_PairingProbe);

void BM_ComputeJoinKey(benchmark::State& state) {
  int num_vars = static_cast<int>(state.range(0));
  std::vector<SymbolId> vars;
  Bindings b;
  for (int i = 0; i < num_vars; ++i) {
    SymbolId var = InternSymbol("bb_jk_v" + std::to_string(i));
    vars.push_back(var);
    b.BindScalar(var, "urn:epc:item:" + std::to_string(1000 + i));
  }
  AllocationScope allocs(state);
  for (auto _ : state) {
    bool complete = false;
    benchmark::DoNotOptimize(ComputeJoinKey(b, vars, &complete));
  }
}
BENCHMARK(BM_ComputeJoinKey)->Arg(1)->Arg(2)->Arg(4);

void BM_UnifiesWith(benchmark::State& state) {
  SymbolId r = InternSymbol("bb_u_r");
  SymbolId o = InternSymbol("bb_u_o");
  SymbolId t1 = InternSymbol("bb_u_t1");
  SymbolId t2 = InternSymbol("bb_u_t2");
  Bindings a = MakeLeafBindings(r, o, t1, "reader-a", "case-7", kSecond);
  Bindings b = MakeLeafBindings(r, o, t2, "reader-a", "case-7", 2 * kSecond);
  AllocationScope allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.UnifiesWith(b));
  }
}
BENCHMARK(BM_UnifiesWith);

// What ProducePair does once per emitted pair: merge terminator bindings
// into a copy of the initiator's.
void BM_MergeCopy(benchmark::State& state) {
  SymbolId r = InternSymbol("bb_m_r");
  SymbolId o = InternSymbol("bb_m_o");
  SymbolId t1 = InternSymbol("bb_m_t1");
  SymbolId t2 = InternSymbol("bb_m_t2");
  Bindings initiator =
      MakeLeafBindings(r, o, t1, "reader-a", "case-7", kSecond);
  Bindings terminator =
      MakeLeafBindings(r, o, t2, "reader-b", "case-7", 2 * kSecond);
  AllocationScope allocs(state);
  for (auto _ : state) {
    Bindings merged = initiator;
    benchmark::DoNotOptimize(merged.Merge(terminator));
  }
}
BENCHMARK(BM_MergeCopy);

// Same work through the rvalue overload: the terminator copy is consumed,
// so its string payloads move instead of reallocating.
void BM_MergeMove(benchmark::State& state) {
  SymbolId r = InternSymbol("bb_mm_r");
  SymbolId o = InternSymbol("bb_mm_o");
  SymbolId t1 = InternSymbol("bb_mm_t1");
  SymbolId t2 = InternSymbol("bb_mm_t2");
  Bindings initiator =
      MakeLeafBindings(r, o, t1, "reader-a", "case-7", kSecond);
  Bindings terminator =
      MakeLeafBindings(r, o, t2, "reader-b", "case-7", 2 * kSecond);
  AllocationScope allocs(state);
  for (auto _ : state) {
    Bindings merged = initiator;
    Bindings consumed = terminator;
    benchmark::DoNotOptimize(merged.Merge(std::move(consumed)));
  }
}
BENCHMARK(BM_MergeMove);

void BM_ToMulti(benchmark::State& state) {
  SymbolId r = InternSymbol("bb_tm_r");
  SymbolId o = InternSymbol("bb_tm_o");
  SymbolId t = InternSymbol("bb_tm_t");
  Bindings b = MakeLeafBindings(r, o, t, "reader-a", "case-7", kSecond);
  AllocationScope allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.ToMulti());
  }
}
BENCHMARK(BM_ToMulti);

// The representation this PR removed: a per-probe std::string bucket key
// concatenated from the join values. Kept as a baseline so the probe
// benchmarks have something to be compared against.
void BM_StringBucketKey(benchmark::State& state) {
  SymbolId r = InternSymbol("bb_sk_r");
  SymbolId o = InternSymbol("bb_sk_o");
  SymbolId t = InternSymbol("bb_sk_t");
  Bindings b = MakeLeafBindings(r, o, t, "urn:reader:dock-04",
                                "urn:epc:case:0042", 17 * kSecond);
  std::vector<SymbolId> join_syms = {r, o};
  AllocationScope allocs(state);
  for (auto _ : state) {
    std::string key;
    for (SymbolId var : join_syms) {
      const BindingValue* value = b.FindScalar(var);
      key += value != nullptr ? BindingValueToString(*value) : "*";
      key += '\x1f';
    }
    benchmark::DoNotOptimize(key);
  }
}
BENCHMARK(BM_StringBucketKey);

}  // namespace
}  // namespace rfidcep::events
