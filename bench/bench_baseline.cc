// FIG4 / baseline comparison (paper §4.1): RCEDA versus a traditional
// type-level ECA detector on distance-constrained packing streams. The
// counters show the correctness gap — the baseline's post-hoc constraint
// checking rejects whole matches that chronicle detection splits
// correctly — alongside the raw throughput of both engines.

#include <benchmark/benchmark.h>

#include "engine/baseline/type_level_detector.h"
#include "engine/engine.h"
#include "rules/parser.h"

namespace {

using rfidcep::kSecond;
using rfidcep::TimePoint;
using rfidcep::engine::EngineOptions;
using rfidcep::engine::RcedaEngine;
using rfidcep::events::Observation;

constexpr char kExpr[] =
    "TSEQ(TSEQ+(observation(\"A\", o1, t1), 0sec, 1sec); "
    "observation(\"B\", o2, t2), 5sec, 10sec)";

// Fig. 4 shaped history, repeated: two item bursts split by a >1s gap,
// then two case reads. Correct chronicle answer: 2 matches per block;
// type-level answer: 0.
std::vector<Observation> Fig4Stream(size_t blocks) {
  std::vector<Observation> out;
  TimePoint base = 0;
  for (size_t b = 0; b < blocks; ++b) {
    for (int t : {1, 2, 3, 5, 6, 7}) {
      out.push_back(Observation{"A", "item" + std::to_string(t),
                                base + static_cast<TimePoint>(t) * kSecond});
    }
    out.push_back(Observation{"B", "case1", base + 12 * kSecond});
    out.push_back(Observation{"B", "case2", base + 15 * kSecond});
    base += 60 * kSecond;
  }
  return out;
}

void BM_RcedaOnFig4(benchmark::State& state) {
  std::vector<Observation> stream = Fig4Stream(500);
  uint64_t matches = 0;
  for (auto _ : state) {
    state.PauseTiming();
    EngineOptions options;
    options.execute_actions = false;
    RcedaEngine engine(nullptr, rfidcep::events::Environment{}, options);
    (void)engine.AddRulesFromText(std::string("CREATE RULE f, fig4 ON ") +
                                  kExpr + " IF true DO act");
    (void)engine.Compile();
    state.ResumeTiming();
    for (const Observation& obs : stream) {
      benchmark::DoNotOptimize(engine.Process(obs));
    }
    (void)engine.Flush();
    matches = engine.stats().detector.rule_matches;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
  state.counters["detected"] = static_cast<double>(matches);
  state.SetLabel("correct answer: 1000 (2 per block)");
}
BENCHMARK(BM_RcedaOnFig4);

void BM_TypeLevelEcaOnFig4(benchmark::State& state) {
  std::vector<Observation> stream = Fig4Stream(500);
  auto expr = rfidcep::rules::ParseEventExpr(kExpr);
  if (!expr.ok()) {
    state.SkipWithError(expr.status().ToString().c_str());
    return;
  }
  rfidcep::events::Environment env;
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  for (auto _ : state) {
    state.PauseTiming();
    size_t hits = 0;
    auto detector = rfidcep::engine::baseline::TypeLevelDetector::Create(
        *expr, &env,
        [&hits](const rfidcep::events::EventInstancePtr&) { ++hits; });
    state.ResumeTiming();
    for (const Observation& obs : stream) {
      benchmark::DoNotOptimize((*detector)->Process(obs));
    }
    accepted = (*detector)->stats().accepted;
    rejected = (*detector)->stats().rejected;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
  state.counters["detected"] = static_cast<double>(accepted);
  state.counters["rejected_matches"] = static_cast<double>(rejected);
  state.SetLabel("type-level ECA misses every episode");
}
BENCHMARK(BM_TypeLevelEcaOnFig4);

}  // namespace
