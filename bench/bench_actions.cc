// SUB-ACT: what the paper's Fig. 9 excludes — the cost of executing rule
// actions (data-store updates) on top of detection, and the effect of the
// executor's index probe on the per-event location-update action.

#include <benchmark/benchmark.h>

#include "engine/engine.h"
#include "sim/supply_chain.h"

namespace {

using rfidcep::engine::EngineOptions;
using rfidcep::engine::RcedaEngine;
using rfidcep::events::Observation;

void RunSupplyChain(benchmark::State& state, bool execute_actions,
                    bool indexed, size_t num_events) {
  rfidcep::sim::SupplyChainConfig config;
  config.seed = 99;
  config.num_items = 2000;
  rfidcep::sim::SupplyChain chain(config);
  std::vector<Observation> stream = chain.GenerateStream(num_events);
  uint64_t sql_actions = 0;
  for (auto _ : state) {
    state.PauseTiming();
    rfidcep::store::Database db;
    (void)db.InstallRfidSchema();
    if (!indexed) {
      // Rebuild OBJECTLOCATION without its object_epc index.
      (void)db.DropTable("OBJECTLOCATION");
      (void)db.CreateTable(
          "OBJECTLOCATION",
          rfidcep::store::Schema(
              {{"object_epc", rfidcep::store::ColumnType::kString},
               {"loc_id", rfidcep::store::ColumnType::kString},
               {"tstart", rfidcep::store::ColumnType::kTime},
               {"tend", rfidcep::store::ColumnType::kTime}}));
    }
    EngineOptions options;
    options.execute_actions = execute_actions;
    RcedaEngine engine(&db, chain.environment(), options);
    if (auto s = engine.AddRulesFromText(chain.PaperRuleProgram()); !s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
    (void)engine.Compile();
    state.ResumeTiming();
    for (const Observation& obs : stream) {
      benchmark::DoNotOptimize(engine.Process(obs));
    }
    (void)engine.Flush();
    sql_actions = engine.stats().sql_actions_executed;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
  state.counters["sql_actions"] = static_cast<double>(sql_actions);
}

void BM_DetectionOnly(benchmark::State& state) {
  RunSupplyChain(state, /*execute_actions=*/false, /*indexed=*/true, 20000);
}
BENCHMARK(BM_DetectionOnly)->Unit(benchmark::kMillisecond);

void BM_DetectionPlusActions(benchmark::State& state) {
  RunSupplyChain(state, /*execute_actions=*/true, /*indexed=*/true, 20000);
}
BENCHMARK(BM_DetectionPlusActions)->Unit(benchmark::kMillisecond);

void BM_DetectionPlusActionsNoIndex(benchmark::State& state) {
  // Quadratic in stream length without the index probe; a shorter stream
  // keeps the suite fast while the items/sec gap stays obvious.
  RunSupplyChain(state, /*execute_actions=*/true, /*indexed=*/false, 5000);
}
BENCHMARK(BM_DetectionPlusActionsNoIndex)->Unit(benchmark::kMillisecond);

}  // namespace
