// ABL-MERGE: common-subgraph merging ablation (paper §4.3). N rules share
// the same TSEQ+ subexpression; with merging the subevent is detected
// once, without merging (forced by giving each rule distinct variable
// names) it is detected N times.

#include <benchmark/benchmark.h>

#include "engine/engine.h"

namespace {

using rfidcep::kSecond;
using rfidcep::TimePoint;
using rfidcep::engine::EngineOptions;
using rfidcep::engine::RcedaEngine;
using rfidcep::events::Observation;

// N containment-style rules over the same conveyor pair. `merged` keeps
// identical variable names (identical canonical keys -> one shared TSEQ+
// node); otherwise each rule gets its own variables, defeating merging.
std::string Rules(int n, bool merged) {
  std::string program;
  for (int i = 0; i < n; ++i) {
    std::string v = merged ? "" : std::to_string(i);
    program += "CREATE RULE m" + std::to_string(i) + ", merge bench\n";
    program += "ON TSEQ(TSEQ+(observation(\"conv\", o" + v +
               ", ta" + v + "), 0sec, 2sec); observation(\"case\", c" + v +
               ", tb" + v + "), 2sec, 30sec)\nIF true\nDO act\n\n";
  }
  return program;
}

std::vector<Observation> PackingStream(size_t episodes) {
  std::vector<Observation> out;
  TimePoint t = 0;
  for (size_t e = 0; e < episodes; ++e) {
    for (int i = 0; i < 4; ++i) {
      out.push_back(Observation{"conv", "item" + std::to_string(i), t});
      t += kSecond;
    }
    t += 4 * kSecond;
    out.push_back(Observation{"case", "case" + std::to_string(e % 16), t});
    t += 30 * kSecond;
  }
  return out;
}

void RunMergeBench(benchmark::State& state, bool merged) {
  int num_rules = static_cast<int>(state.range(0));
  std::string program = Rules(num_rules, merged);
  std::vector<Observation> stream = PackingStream(500);
  size_t nodes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    EngineOptions options;
    options.execute_actions = false;
    RcedaEngine engine(nullptr, rfidcep::events::Environment{}, options);
    if (auto s = engine.AddRulesFromText(program); !s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
    (void)engine.Compile();
    nodes = engine.graph().num_nodes();
    state.ResumeTiming();
    for (const Observation& obs : stream) {
      benchmark::DoNotOptimize(engine.Process(obs));
    }
    (void)engine.Flush();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
  state.counters["graph_nodes"] = static_cast<double>(nodes);
}

void BM_MergedSubgraphs(benchmark::State& state) {
  RunMergeBench(state, /*merged=*/true);
}
BENCHMARK(BM_MergedSubgraphs)->Arg(4)->Arg(16)->Arg(64);

void BM_UnmergedSubgraphs(benchmark::State& state) {
  RunMergeBench(state, /*merged=*/false);
}
BENCHMARK(BM_UnmergedSubgraphs)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
