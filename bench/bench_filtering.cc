// ABL-FILTER: data-filtering rule throughput (paper §3.1, Rules 1–2)
// versus the duplicate rate of the raw stream.

#include <benchmark/benchmark.h>

#include "engine/engine.h"
#include "sim/workload.h"

namespace {

using rfidcep::kMillisecond;
using rfidcep::kSecond;
using rfidcep::Prng;
using rfidcep::TimePoint;
using rfidcep::engine::EngineOptions;
using rfidcep::engine::RcedaEngine;
using rfidcep::events::Observation;

constexpr char kFilterRules[] = R"(
  CREATE RULE dup, duplicate detection rule
  ON WITHIN(observation(r, o, t1); observation(r, o, t2), 5sec)
  IF true
  DO send duplicate msg

  CREATE RULE infield, infield filtering
  ON WITHIN(NOT observation(r, o, t1); observation(r, o, t2), 30sec)
  IF true
  DO record infield
)";

std::vector<Observation> NoisyStream(double duplicate_rate, size_t n) {
  Prng prng(17);
  std::vector<std::string> readers = {"r1", "r2", "r3", "r4"};
  // Large object pool so same-(r,o) re-reads within the 5s window come
  // from injection, not coincidence.
  std::vector<std::string> objects;
  for (int i = 0; i < 8192; ++i) objects.push_back("o" + std::to_string(i));
  std::vector<Observation> base = rfidcep::sim::GenerateBackground(
      readers, objects, 0, 1000.0, n, &prng);
  return rfidcep::sim::InjectDuplicates(std::move(base), duplicate_rate,
                                        200 * kMillisecond, 2 * kSecond,
                                        &prng);
}

void BM_FilteringRules(benchmark::State& state) {
  double duplicate_rate = static_cast<double>(state.range(0)) / 100.0;
  std::vector<Observation> stream = NoisyStream(duplicate_rate, 20000);
  uint64_t duplicates = 0;
  for (auto _ : state) {
    state.PauseTiming();
    EngineOptions options;
    options.execute_actions = false;
    RcedaEngine engine(nullptr, rfidcep::events::Environment{}, options);
    if (auto s = engine.AddRulesFromText(kFilterRules); !s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
    (void)engine.Compile();
    state.ResumeTiming();
    for (const Observation& obs : stream) {
      benchmark::DoNotOptimize(engine.Process(obs));
    }
    (void)engine.Flush();
    duplicates = engine.FiredCount("dup");
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
  state.counters["stream_size"] = static_cast<double>(stream.size());
  state.counters["duplicates_flagged"] = static_cast<double>(duplicates);
}
BENCHMARK(BM_FilteringRules)->Arg(0)->Arg(10)->Arg(30);

}  // namespace
