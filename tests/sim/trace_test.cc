#include "sim/trace.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "sim/supply_chain.h"

namespace rfidcep::sim {
namespace {

using events::Observation;

TEST(TraceTest, CsvRoundTrip) {
  std::vector<Observation> stream = {
      {"r1", "urn:epc:id:sgtin:0614141.100001.1", 0},
      {"r2", "o2", 1500000},
      {"r1", "o3", 3000000},
  };
  std::string csv = TraceToCsv(stream);
  Result<std::vector<Observation>> parsed = TraceFromCsv(csv);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), 3u);
  for (size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ((*parsed)[i], stream[i]);
  }
}

TEST(TraceTest, SkipsCommentsAndBlankLines) {
  Result<std::vector<Observation>> parsed = TraceFromCsv(
      "# header\n\nr1,o1,5\n# mid comment\nr2,o2,10\n\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->size(), 2u);
}

TEST(TraceTest, RejectsMalformedLines) {
  EXPECT_FALSE(TraceFromCsv("r1,o1\n").ok());
  EXPECT_FALSE(TraceFromCsv("r1,o1,notatime\n").ok());
  EXPECT_FALSE(TraceFromCsv("r1,o1,5,extra\n").ok());
}

TEST(TraceTest, EmptyInputYieldsEmptyStream) {
  Result<std::vector<Observation>> parsed = TraceFromCsv("");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
}

TEST(TraceTest, FileRoundTripWithSimulatedStream) {
  SupplyChainConfig config;
  config.seed = 21;
  SupplyChain chain(config);
  std::vector<Observation> stream = chain.GenerateStream(2000);

  std::string path = ::testing::TempDir() + "/rfidcep_trace_test.csv";
  ASSERT_TRUE(WriteTraceFile(path, stream).ok());
  Result<std::vector<Observation>> loaded = ReadTraceFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), stream.size());
  for (size_t i = 0; i < stream.size(); ++i) {
    ASSERT_EQ((*loaded)[i], stream[i]);
  }
  std::remove(path.c_str());
}

TEST(TraceTest, MissingFileIsNotFound) {
  Result<std::vector<Observation>> loaded =
      ReadTraceFile("/nonexistent/rfidcep.csv");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace rfidcep::sim
