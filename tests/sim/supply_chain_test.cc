#include "sim/supply_chain.h"

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "rules/parser.h"

namespace rfidcep::sim {
namespace {

TEST(SupplyChainTest, MintsValidSgtinPools) {
  SupplyChainConfig config;
  config.num_items = 10;
  SupplyChain chain(config);
  ASSERT_EQ(chain.items().size(), 10u);
  for (const std::string& uri : chain.items()) {
    EXPECT_TRUE(epc::Epc::FromUri(uri).ok()) << uri;
  }
  // type() resolves through the catalog.
  EXPECT_EQ(chain.catalog().TypeOf(chain.items()[0]), "item");
  EXPECT_EQ(chain.catalog().TypeOf(chain.cases()[0]), "case");
  EXPECT_EQ(chain.catalog().TypeOf(chain.laptops()[0]), "laptop");
  EXPECT_EQ(chain.catalog().TypeOf(chain.badges()[0]), "superuser");
}

TEST(SupplyChainTest, RegistersReadersPerSite) {
  SupplyChainConfig config;
  config.num_sites = 3;
  SupplyChain chain(config);
  EXPECT_EQ(chain.readers().GroupOf(chain.PackItemReader(2)), "g_pack_item_2");
  EXPECT_EQ(chain.readers().GroupOf(chain.ShelfReader(0)), "g_shelf_0");
  EXPECT_EQ(chain.readers().LocationOf(chain.DockReader(1)), "loc_dock_1");
}

TEST(SupplyChainTest, PaperRuleProgramParses) {
  SupplyChain chain(SupplyChainConfig{});
  Result<rules::RuleSet> set =
      rules::ParseRuleProgram(chain.PaperRuleProgram());
  ASSERT_TRUE(set.ok()) << set.status();
  EXPECT_EQ(set->rules.size(), 5u);
  EXPECT_EQ(set->defines.size(), 4u);
}

TEST(SupplyChainTest, SaleRuleProgramParsesAndCompilesWithPaperRules) {
  SupplyChain chain(SupplyChainConfig{});
  store::Database db;
  ASSERT_TRUE(db.InstallRfidSchema().ok());
  engine::RcedaEngine engine(&db, chain.environment());
  ASSERT_TRUE(engine.AddRulesFromText(chain.PaperRuleProgram()).ok());
  ASSERT_TRUE(engine.AddRulesFromText(chain.SaleRuleProgram()).ok());
  ASSERT_TRUE(engine.Compile().ok());
  EXPECT_EQ(engine.num_rules(), 6u);
}

TEST(SupplyChainTest, GeneratedRuleProgramsParseAndCompile) {
  SupplyChainConfig config;
  config.num_sites = 4;
  SupplyChain chain(config);
  for (int n : {1, 5, 23, 60}) {
    std::string program = chain.GeneratedRuleProgram(n);
    Result<rules::RuleSet> set = rules::ParseRuleProgram(program);
    ASSERT_TRUE(set.ok()) << "n=" << n << ": " << set.status();
    EXPECT_EQ(set->rules.size(), static_cast<size_t>(n));
    store::Database db;
    ASSERT_TRUE(db.InstallRfidSchema().ok());
    engine::RcedaEngine engine(&db, chain.environment());
    ASSERT_TRUE(engine.AddRules(std::move(*set)).ok());
    ASSERT_TRUE(engine.Compile().ok()) << "n=" << n;
  }
}

TEST(SupplyChainTest, StreamIsSortedSizedAndPacedToArrivalRate) {
  SupplyChainConfig config;
  config.seed = 13;
  SupplyChain chain(config);
  std::vector<events::Observation> stream = chain.GenerateStream(20000);
  ASSERT_GE(stream.size(), 18000u);
  ASSERT_LE(stream.size(), 22000u);
  for (size_t i = 1; i < stream.size(); ++i) {
    ASSERT_LE(stream[i - 1].timestamp, stream[i].timestamp);
  }
  // ~1000 events/sec: the stream should span roughly 20 simulated seconds.
  double span = static_cast<double>(stream.back().timestamp) / kSecond;
  EXPECT_GT(span, 10.0);
  EXPECT_LT(span, 40.0);
}

TEST(SupplyChainTest, StreamIsDeterministicInSeed) {
  SupplyChainConfig config;
  config.seed = 99;
  SupplyChain a(config);
  SupplyChain b(config);
  std::vector<events::Observation> sa = a.GenerateStream(3000);
  std::vector<events::Observation> sb = b.GenerateStream(3000);
  ASSERT_EQ(sa.size(), sb.size());
  for (size_t i = 0; i < sa.size(); ++i) {
    ASSERT_EQ(sa[i], sb[i]);
  }
}

TEST(SupplyChainTest, StreamMixesAllActivities) {
  SupplyChainConfig config;
  config.seed = 4;
  SupplyChain chain(config);
  std::vector<events::Observation> stream = chain.GenerateStream(10000);
  size_t pack = 0, shelf = 0, exit_reads = 0, dock = 0, pos = 0;
  for (const events::Observation& obs : stream) {
    std::string group = chain.readers().GroupOf(obs.reader);
    if (group.rfind("g_pack", 0) == 0) ++pack;
    if (group.rfind("g_shelf", 0) == 0) ++shelf;
    if (group.rfind("g_exit", 0) == 0) ++exit_reads;
    if (group.rfind("g_dock", 0) == 0) ++dock;
    if (group.rfind("g_pos", 0) == 0) ++pos;
  }
  EXPECT_GT(pack, 0u);
  EXPECT_GT(shelf, 0u);
  EXPECT_GT(exit_reads, 0u);
  EXPECT_GT(dock, 0u);
  EXPECT_GT(pos, 0u);
  EXPECT_EQ(pack + shelf + exit_reads + dock + pos, stream.size());
}

}  // namespace
}  // namespace rfidcep::sim
