#include "sim/workload.h"

#include <algorithm>
#include <tuple>

#include <gtest/gtest.h>

namespace rfidcep::sim {
namespace {

bool IsSorted(const std::vector<Observation>& stream) {
  for (size_t i = 1; i < stream.size(); ++i) {
    if (stream[i].timestamp < stream[i - 1].timestamp) return false;
  }
  return true;
}

TEST(WorkloadTest, MergeStreamsSortsByTimestamp) {
  std::vector<Observation> a = {{"r1", "o1", 10}, {"r1", "o2", 30}};
  std::vector<Observation> b = {{"r2", "o3", 20}};
  std::vector<Observation> merged = MergeStreams({a, b});
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_TRUE(IsSorted(merged));
  EXPECT_EQ(merged[1].reader, "r2");
}

TEST(WorkloadTest, PackingEpisodesRespectGapBounds) {
  PackingConfig config;
  config.episodes = 20;
  config.items_per_case = 4;
  Prng prng(1);
  std::vector<std::string> items = {"i1", "i2", "i3", "i4", "i5"};
  std::vector<std::string> cases = {"c1", "c2"};
  PackingWorkload workload = GeneratePacking(config, items, cases, &prng);
  ASSERT_EQ(workload.episodes.size(), 20u);
  EXPECT_EQ(workload.observations.size(), 20u * 5u);
  // Per episode: item gaps within [lo, hi]; case gap within its bounds.
  for (int e = 0; e < 20; ++e) {
    size_t base = static_cast<size_t>(e) * 5;
    for (int i = 1; i < 4; ++i) {
      Duration gap = workload.observations[base + i].timestamp -
                     workload.observations[base + i - 1].timestamp;
      EXPECT_GE(gap, config.item_gap_lo);
      EXPECT_LE(gap, config.item_gap_hi);
    }
    Duration case_gap = workload.observations[base + 4].timestamp -
                        workload.observations[base + 3].timestamp;
    EXPECT_GE(case_gap, config.case_gap_lo);
    EXPECT_LE(case_gap, config.case_gap_hi);
    EXPECT_EQ(workload.observations[base + 4].reader, config.case_reader);
  }
}

TEST(WorkloadTest, PackingIsDeterministicInSeed) {
  PackingConfig config;
  config.episodes = 5;
  std::vector<std::string> items = {"i1", "i2"};
  std::vector<std::string> cases = {"c1"};
  Prng prng1(42);
  Prng prng2(42);
  PackingWorkload w1 = GeneratePacking(config, items, cases, &prng1);
  PackingWorkload w2 = GeneratePacking(config, items, cases, &prng2);
  ASSERT_EQ(w1.observations.size(), w2.observations.size());
  for (size_t i = 0; i < w1.observations.size(); ++i) {
    EXPECT_EQ(w1.observations[i], w2.observations[i]);
  }
}

TEST(WorkloadTest, ShelfScansOnlySeeResidentObjects) {
  ShelfConfig config;
  config.scans = 4;
  config.read_jitter = 0;
  std::vector<ShelfStay> stays = {
      {"always", 0, 4 * config.scan_period},
      {"late", 2 * config.scan_period, 4 * config.scan_period},
  };
  Prng prng(1);
  std::vector<Observation> reads = GenerateShelf(config, stays, &prng);
  size_t always_reads = 0;
  size_t late_reads = 0;
  for (const Observation& obs : reads) {
    if (obs.object == "always") ++always_reads;
    if (obs.object == "late") ++late_reads;
  }
  EXPECT_EQ(always_reads, 4u);
  EXPECT_EQ(late_reads, 2u);
}

TEST(WorkloadTest, ExitAuthorizedFractionControlsBadges) {
  ExitConfig config;
  config.passes = 50;
  config.authorized_fraction = 1.0;
  Prng prng(1);
  ExitWorkload all_escorted =
      GenerateExit(config, {"laptop"}, {"badge"}, &prng);
  EXPECT_EQ(all_escorted.authorized, 50);
  EXPECT_EQ(all_escorted.unauthorized, 0);
  EXPECT_EQ(all_escorted.observations.size(), 100u);
  EXPECT_TRUE(IsSorted(all_escorted.observations));

  config.authorized_fraction = 0.0;
  Prng prng2(1);
  ExitWorkload none = GenerateExit(config, {"laptop"}, {"badge"}, &prng2);
  EXPECT_EQ(none.unauthorized, 50);
  EXPECT_EQ(none.observations.size(), 50u);
}

TEST(WorkloadTest, RouteVisitsReadersInOrderPerObject) {
  RouteConfig config;
  config.route_readers = {"wh", "dock", "ship"};
  config.hop_gap_lo = 10 * kSecond;
  config.hop_gap_hi = 60 * kSecond;
  Prng prng(4);
  std::vector<Observation> stream =
      GenerateRoute(config, {"a", "b", "c"}, &prng);
  ASSERT_EQ(stream.size(), 9u);
  EXPECT_TRUE(IsSorted(stream));
  // Per object: hops in route order with gaps in bounds.
  for (const std::string& object : {"a", "b", "c"}) {
    std::vector<Observation> hops;
    for (const Observation& obs : stream) {
      if (obs.object == object) hops.push_back(obs);
    }
    ASSERT_EQ(hops.size(), 3u);
    EXPECT_EQ(hops[0].reader, "wh");
    EXPECT_EQ(hops[1].reader, "dock");
    EXPECT_EQ(hops[2].reader, "ship");
    for (size_t i = 1; i < hops.size(); ++i) {
      Duration gap = hops[i].timestamp - hops[i - 1].timestamp;
      EXPECT_GE(gap, config.hop_gap_lo);
      EXPECT_LE(gap, config.hop_gap_hi);
    }
  }
}

TEST(WorkloadTest, InjectDuplicatesKeepsOrderAndAddsRereads) {
  std::vector<Observation> base;
  for (int i = 0; i < 100; ++i) {
    base.push_back({"r", "o" + std::to_string(i),
                    static_cast<TimePoint>(i) * kSecond});
  }
  Prng prng(9);
  std::vector<Observation> noisy =
      InjectDuplicates(base, 0.5, kMillisecond, 10 * kMillisecond, &prng);
  EXPECT_GT(noisy.size(), base.size());
  EXPECT_LT(noisy.size(), base.size() * 2);
  EXPECT_TRUE(IsSorted(noisy));
  // Zero rate injects nothing.
  Prng prng2(9);
  EXPECT_EQ(InjectDuplicates(base, 0.0, 1, 2, &prng2).size(), base.size());
}

TEST(WorkloadTest, BaggageArrivalsRegressButMatchEventOrderMultiset) {
  BaggageConfig config;
  Prng prng(11);
  BaggageWorkload workload = GenerateBaggage(
      config, {"b1", "b2", "b3", "b4", "b5", "b6", "b7", "b8"}, &prng);
  // Same multiset, two orders: arrivals is the batch-upload order,
  // event_order the timestamp sort.
  ASSERT_EQ(workload.arrivals.size(), workload.event_order.size());
  EXPECT_TRUE(IsSorted(workload.event_order));
  auto sorted_copy = [](std::vector<Observation> v) {
    std::sort(v.begin(), v.end(), [](const Observation& a,
                                     const Observation& b) {
      return std::tie(a.timestamp, a.reader, a.object) <
             std::tie(b.timestamp, b.reader, b.object);
    });
    return v;
  };
  EXPECT_EQ(sorted_copy(workload.arrivals), sorted_copy(workload.event_order));
  // The point of the workload: upload batching makes timestamps regress.
  EXPECT_FALSE(IsSorted(workload.arrivals));
  // Every bag visits every stage at least once, in journey order when
  // reads are sorted by time.
  for (const char* bag : {"b1", "b2", "b3", "b4", "b5", "b6", "b7", "b8"}) {
    std::vector<Observation> hops;
    for (const Observation& obs : workload.event_order) {
      if (obs.object == bag) hops.push_back(obs);
    }
    ASSERT_GE(hops.size(), config.stage_readers.size()) << bag;
    EXPECT_EQ(hops.front().reader, config.stage_readers.front()) << bag;
    EXPECT_EQ(hops.back().reader, config.stage_readers.back()) << bag;
  }
}

TEST(WorkloadTest, BaggageIsDeterministicInSeed) {
  BaggageConfig config;
  Prng prng1(77);
  Prng prng2(77);
  BaggageWorkload w1 = GenerateBaggage(config, {"b1", "b2", "b3"}, &prng1);
  BaggageWorkload w2 = GenerateBaggage(config, {"b1", "b2", "b3"}, &prng2);
  ASSERT_EQ(w1.arrivals.size(), w2.arrivals.size());
  for (size_t i = 0; i < w1.arrivals.size(); ++i) {
    EXPECT_EQ(w1.arrivals[i], w2.arrivals[i]);
  }
}

TEST(WorkloadTest, BackgroundMatchesCountAndApproximateRate) {
  Prng prng(3);
  std::vector<Observation> background =
      GenerateBackground({"r1", "r2"}, {"o1", "o2", "o3"}, 0, 1000.0, 5000,
                         &prng);
  ASSERT_EQ(background.size(), 5000u);
  EXPECT_TRUE(IsSorted(background));
  // 5000 events at 1000/s should span roughly five seconds.
  double span_seconds =
      static_cast<double>(background.back().timestamp) / kSecond;
  EXPECT_GT(span_seconds, 3.0);
  EXPECT_LT(span_seconds, 8.0);
}

}  // namespace
}  // namespace rfidcep::sim
