#include "events/expr.h"

#include <gtest/gtest.h>

namespace rfidcep::events {
namespace {

EventExprPtr Obs(const std::string& reader, const std::string& object_var,
                 const std::string& time_var) {
  return EventExpr::Primitive(PrimitiveEventType(
      Term::Literal(reader), Term::Variable(object_var), time_var));
}

TEST(ExprTest, FactoriesSetOperators) {
  EventExprPtr e1 = Obs("r1", "o1", "t1");
  EventExprPtr e2 = Obs("r2", "o2", "t2");
  EXPECT_EQ(EventExpr::Or(e1, e2)->op(), ExprOp::kOr);
  EXPECT_EQ(EventExpr::And(e1, e2)->op(), ExprOp::kAnd);
  EXPECT_EQ(EventExpr::Not(e1)->op(), ExprOp::kNot);
  EXPECT_EQ(EventExpr::Seq(e1, e2)->op(), ExprOp::kSeq);
  EXPECT_EQ(EventExpr::SeqPlus(e1)->op(), ExprOp::kSeqPlus);
}

TEST(ExprTest, SeqNormalizesToUnboundedTseq) {
  EventExprPtr seq = EventExpr::Seq(Obs("r1", "o", "t1"), Obs("r2", "o", "t2"));
  EXPECT_EQ(seq->dist_lo(), 0);
  EXPECT_EQ(seq->dist_hi(), kDurationInfinity);
  EventExprPtr tseq = EventExpr::Tseq(Obs("r1", "o", "t1"),
                                      Obs("r2", "o", "t2"), 10 * kSecond,
                                      20 * kSecond);
  EXPECT_EQ(tseq->dist_lo(), 10 * kSecond);
  EXPECT_EQ(tseq->dist_hi(), 20 * kSecond);
}

TEST(ExprTest, WithinIsAnAttributeNotANode) {
  EventExprPtr base = EventExpr::And(Obs("r1", "o1", "t1"),
                                     Obs("r2", "o2", "t2"));
  EXPECT_FALSE(base->has_within());
  EventExprPtr constrained = EventExpr::Within(base, 10 * kSecond);
  EXPECT_EQ(constrained->op(), ExprOp::kAnd);  // Same node kind.
  EXPECT_EQ(constrained->within(), 10 * kSecond);
  // Base remains untouched (immutability).
  EXPECT_FALSE(base->has_within());
}

TEST(ExprTest, NestedWithinTightensToMinimum) {
  EventExprPtr e = Obs("r1", "o", "t");
  EventExprPtr w10 = EventExpr::Within(e, 10 * kSecond);
  EventExprPtr w5 = EventExpr::Within(w10, 5 * kSecond);
  EXPECT_EQ(w5->within(), 5 * kSecond);
  EventExprPtr still5 = EventExpr::Within(w5, 60 * kSecond);
  EXPECT_EQ(still5->within(), 5 * kSecond);
}

TEST(ExprTest, CanonicalKeyMergesIdenticalSubtrees) {
  EventExprPtr a = EventExpr::TseqPlus(Obs("r1", "o1", "t1"),
                                       100 * kMillisecond, kSecond);
  EventExprPtr b = EventExpr::TseqPlus(Obs("r1", "o1", "t1"),
                                       100 * kMillisecond, kSecond);
  EXPECT_EQ(a->CanonicalKey(), b->CanonicalKey());
  EventExprPtr c = EventExpr::TseqPlus(Obs("r1", "o1", "t1"),
                                       100 * kMillisecond, 2 * kSecond);
  EXPECT_NE(a->CanonicalKey(), c->CanonicalKey());
}

TEST(ExprTest, CanonicalKeyIncludesWithin) {
  EventExprPtr a = Obs("r1", "o", "t");
  EventExprPtr b = EventExpr::Within(a, 5 * kSecond);
  EXPECT_NE(a->CanonicalKey(), b->CanonicalKey());
}

TEST(ExprTest, ToStringUsesPaperConstructors) {
  // Paper Rule 4: TSEQ(TSEQ+(E1, 0.1sec, 1sec); E2, 10sec, 20sec).
  EventExprPtr rule4 = EventExpr::Tseq(
      EventExpr::TseqPlus(Obs("r1", "o1", "t1"), 100 * kMillisecond, kSecond),
      Obs("r2", "o2", "t2"), 10 * kSecond, 20 * kSecond);
  std::string s = rule4->ToString();
  EXPECT_NE(s.find("TSEQ(TSEQ+("), std::string::npos) << s;
  EXPECT_NE(s.find("10sec, 20sec"), std::string::npos) << s;
  EXPECT_NE(s.find("100msec"), std::string::npos) << s;

  // Paper Rule 5: WITHIN(E4 AND NOT E5, 5sec).
  EventExprPtr rule5 = EventExpr::Within(
      EventExpr::And(Obs("r4", "o4", "t4"),
                     EventExpr::Not(Obs("r4", "o5", "t5"))),
      5 * kSecond);
  std::string s5 = rule5->ToString();
  EXPECT_NE(s5.find("WITHIN("), std::string::npos) << s5;
  EXPECT_NE(s5.find("NOT "), std::string::npos) << s5;
  EXPECT_NE(s5.find("5sec"), std::string::npos) << s5;
}

TEST(ExprTest, OrSupportsNaryChildren) {
  std::vector<EventExprPtr> children = {Obs("r1", "o", "t"),
                                        Obs("r2", "o", "t"),
                                        Obs("r3", "o", "t")};
  EventExprPtr e = EventExpr::Or(std::move(children));
  EXPECT_EQ(e->children().size(), 3u);
}

}  // namespace
}  // namespace rfidcep::events
