#include "events/binding.h"

#include <gtest/gtest.h>

namespace rfidcep::events {
namespace {

TEST(BindingsTest, ScalarBindAndLookup) {
  Bindings b;
  b.BindScalar("o", std::string("epc1"));
  b.BindScalar("t", TimePoint{5 * kSecond});
  ASSERT_TRUE(b.HasScalar("o"));
  EXPECT_EQ(std::get<std::string>(b.Scalar("o")), "epc1");
  EXPECT_EQ(std::get<TimePoint>(b.Scalar("t")), 5 * kSecond);
  EXPECT_FALSE(b.HasScalar("x"));
}

TEST(BindingsTest, MergeAgreeingScalarsSucceeds) {
  Bindings a;
  a.BindScalar("r", std::string("r1"));
  a.BindScalar("o", std::string("epc1"));
  Bindings b;
  b.BindScalar("r", std::string("r1"));
  b.BindScalar("t", TimePoint{7});
  ASSERT_TRUE(a.Merge(b));
  EXPECT_EQ(std::get<std::string>(a.Scalar("r")), "r1");
  EXPECT_EQ(std::get<TimePoint>(a.Scalar("t")), 7);
}

TEST(BindingsTest, MergeConflictingScalarsFails) {
  // This is the equality-join semantics behind the duplicate-filter rule:
  // observation(r, o, t1); observation(r, o, t2) requires the same o.
  Bindings a;
  a.BindScalar("o", std::string("epc1"));
  Bindings b;
  b.BindScalar("o", std::string("epc2"));
  EXPECT_FALSE(a.Merge(b));
}

TEST(BindingsTest, MergeScalarAgainstMultiFails) {
  Bindings a;
  a.BindScalar("o", std::string("epc1"));
  Bindings b;
  b.BindMulti("o", std::string("epc2"));
  EXPECT_FALSE(a.Merge(b));
  Bindings c;
  c.BindMulti("o", std::string("epc2"));
  Bindings d;
  d.BindScalar("o", std::string("epc1"));
  EXPECT_FALSE(c.Merge(d));
}

TEST(BindingsTest, MultiValuesConcatenateOnMerge) {
  Bindings a;
  a.BindMulti("o1", std::string("e1"));
  Bindings b;
  b.BindMulti("o1", std::string("e2"));
  b.BindMulti("o1", std::string("e3"));
  ASSERT_TRUE(a.Merge(b));
  ASSERT_TRUE(a.HasMulti("o1"));
  const std::vector<BindingValue>& values = a.Multi("o1");
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(std::get<std::string>(values[0]), "e1");
  EXPECT_EQ(std::get<std::string>(values[2]), "e3");
}

TEST(BindingsTest, ToMultiDemotesScalars) {
  Bindings a;
  a.BindScalar("o", std::string("e1"));
  a.BindScalar("t", TimePoint{3});
  Bindings multi = a.ToMulti();
  EXPECT_EQ(multi.scalar_count(), 0u);
  ASSERT_TRUE(multi.HasMulti("o"));
  EXPECT_EQ(multi.Multi("o").size(), 1u);
  // Two demoted bindings can then merge without conflict — aperiodic
  // sequences aggregate different objects under the same variable.
  Bindings b;
  b.BindScalar("o", std::string("e2"));
  Bindings mb = b.ToMulti();
  ASSERT_TRUE(multi.Merge(mb));
  EXPECT_EQ(multi.Multi("o").size(), 2u);
}

TEST(BindingsTest, BindingValueToString) {
  EXPECT_EQ(BindingValueToString(BindingValue{std::string("x")}), "x");
  EXPECT_EQ(BindingValueToString(BindingValue{TimePoint{kSecond}}),
            "1.000000s");
}

}  // namespace
}  // namespace rfidcep::events
