#include "events/event_type.h"

#include <gtest/gtest.h>

namespace rfidcep::events {
namespace {

TEST(EventTypeTest, LiteralReaderMatchesReaderOrItsGroup) {
  PrimitiveEventType type(Term::Literal("r1"), Term::Variable("o"), "t");
  Environment env;  // Defaults: group(r) = r.
  EXPECT_TRUE(type.Matches(Observation{"r1", "x", 0}, env));
  EXPECT_FALSE(type.Matches(Observation{"r2", "x", 0}, env));

  // A reader whose registered group is "r1" also matches (paper default:
  // the literal names a group).
  epc::ReaderRegistry readers;
  readers.RegisterReader("rA", "r1", "loc");
  Environment env2{nullptr, &readers};
  EXPECT_TRUE(type.Matches(Observation{"rA", "x", 0}, env2));
  EXPECT_TRUE(type.Matches(Observation{"r1", "x", 0}, env2));
}

TEST(EventTypeTest, GroupConstraintUsesRegistry) {
  PrimitiveEventType type(Term::Variable("r"), Term::Variable("o"), "t");
  type.WithGroup("g1");
  epc::ReaderRegistry readers;
  readers.RegisterReader("r1", "g1", "loc");
  readers.RegisterReader("r2", "g2", "loc");
  Environment env{nullptr, &readers};
  EXPECT_TRUE(type.Matches(Observation{"r1", "x", 0}, env));
  EXPECT_FALSE(type.Matches(Observation{"r2", "x", 0}, env));
  EXPECT_FALSE(type.Matches(Observation{"unknown", "x", 0}, env));
}

TEST(EventTypeTest, TypeConstraintUsesCatalog) {
  PrimitiveEventType type(Term::Variable("r"), Term::Variable("o"), "t");
  type.WithObjectType("laptop");
  epc::ProductCatalog catalog;
  catalog.RegisterExact("o-laptop", "laptop");
  catalog.RegisterExact("o-pallet", "pallet");
  Environment env{&catalog, nullptr};
  EXPECT_TRUE(type.Matches(Observation{"r", "o-laptop", 0}, env));
  EXPECT_FALSE(type.Matches(Observation{"r", "o-pallet", 0}, env));
  EXPECT_FALSE(type.Matches(Observation{"r", "o-unknown", 0}, env));
}

TEST(EventTypeTest, LiteralObjectMatchesExactly) {
  PrimitiveEventType type(Term::Variable("r"), Term::Literal("case7"), "t");
  Environment env;
  EXPECT_TRUE(type.Matches(Observation{"r", "case7", 0}, env));
  EXPECT_FALSE(type.Matches(Observation{"r", "case8", 0}, env));
}

TEST(EventTypeTest, BindProducesVariableBindings) {
  PrimitiveEventType type(Term::Variable("r"), Term::Variable("o1"), "t1");
  Bindings b = type.Bind(Observation{"rX", "oY", 42 * kSecond});
  EXPECT_EQ(std::get<std::string>(b.Scalar("r")), "rX");
  EXPECT_EQ(std::get<std::string>(b.Scalar("o1")), "oY");
  EXPECT_EQ(std::get<TimePoint>(b.Scalar("t1")), 42 * kSecond);
}

TEST(EventTypeTest, LiteralTermsDoNotBind) {
  PrimitiveEventType type(Term::Literal("r1"), Term::Variable("o"), "t");
  Bindings b = type.Bind(Observation{"r1", "oY", 1});
  EXPECT_FALSE(b.HasScalar("r1"));
  EXPECT_TRUE(b.HasScalar("o"));
  EXPECT_EQ(b.scalar_count(), 2u);  // o and t.
}

TEST(EventTypeTest, CanonicalKeyDistinguishesConstraints) {
  PrimitiveEventType plain(Term::Variable("r"), Term::Variable("o"), "t");
  PrimitiveEventType grouped = plain;
  grouped.WithGroup("g1");
  PrimitiveEventType typed = plain;
  typed.WithObjectType("case");
  EXPECT_NE(plain.CanonicalKey(), grouped.CanonicalKey());
  EXPECT_NE(plain.CanonicalKey(), typed.CanonicalKey());
  EXPECT_NE(grouped.CanonicalKey(), typed.CanonicalKey());
  // Identical definitions share a key (common-subgraph merging).
  PrimitiveEventType same(Term::Variable("r"), Term::Variable("o"), "t");
  EXPECT_EQ(plain.CanonicalKey(), same.CanonicalKey());
}

}  // namespace
}  // namespace rfidcep::events
