#include "events/symbol.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "events/binding.h"

namespace rfidcep::events {
namespace {

TEST(SymbolTableTest, InterningIsIdempotent) {
  SymbolId a = InternSymbol("symtest_r");
  SymbolId b = InternSymbol("symtest_r");
  EXPECT_EQ(a, b);
  EXPECT_EQ(InternSymbol("symtest_r"), a);
  EXPECT_EQ(SymbolName(a), "symtest_r");
}

TEST(SymbolTableTest, DistinctNamesGetDistinctIds) {
  SymbolId a = InternSymbol("symtest_o1");
  SymbolId b = InternSymbol("symtest_o2");
  EXPECT_NE(a, b);
  EXPECT_EQ(SymbolName(a), "symtest_o1");
  EXPECT_EQ(SymbolName(b), "symtest_o2");
}

TEST(SymbolTableTest, FindDoesNotIntern) {
  size_t before = SymbolTable::Global().size();
  EXPECT_EQ(FindSymbol("symtest_never_interned"), kInvalidSymbol);
  EXPECT_EQ(SymbolTable::Global().size(), before);
  SymbolId id = InternSymbol("symtest_now_interned");
  EXPECT_EQ(FindSymbol("symtest_now_interned"), id);
}

TEST(SymbolTableTest, ConcurrentInternAgreesOnIds) {
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<SymbolId> ids(kThreads, kInvalidSymbol);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back(
        [&ids, i] { ids[i] = InternSymbol("symtest_concurrent"); });
  }
  for (std::thread& t : threads) t.join();
  for (int i = 1; i < kThreads; ++i) EXPECT_EQ(ids[i], ids[0]);
  EXPECT_EQ(SymbolName(ids[0]), "symtest_concurrent");
}

// --- Join-key hashing --------------------------------------------------------

TEST(JoinKeyTest, UnboundVariableFallsBackToWildcard) {
  SymbolId r = InternSymbol("symtest_jk_r");
  SymbolId o = InternSymbol("symtest_jk_o");
  Bindings b;
  b.BindScalar(r, std::string("r1"));
  std::vector<SymbolId> vars = {r, o};  // `o` is unbound.
  bool complete = true;
  EXPECT_EQ(ComputeJoinKey(b, vars, &complete), kWildcardJoinKey);
  EXPECT_FALSE(complete);
}

TEST(JoinKeyTest, MultiValuedBindingDoesNotCountAsBound) {
  SymbolId o = InternSymbol("symtest_jk_multi");
  Bindings b;
  b.BindMulti(o, std::string("e1"));
  std::vector<SymbolId> vars = {o};
  bool complete = true;
  EXPECT_EQ(ComputeJoinKey(b, vars, &complete), kWildcardJoinKey);
  EXPECT_FALSE(complete);
}

TEST(JoinKeyTest, CompleteKeyIsNeverTheWildcardValue) {
  SymbolId r = InternSymbol("symtest_jk_r2");
  std::vector<SymbolId> vars = {r};
  for (int i = 0; i < 1000; ++i) {
    Bindings b;
    b.BindScalar(r, "epc" + std::to_string(i));
    bool complete = false;
    EXPECT_NE(ComputeJoinKey(b, vars, &complete), kWildcardJoinKey);
    EXPECT_TRUE(complete);
  }
  // Empty join-variable set: complete, single shared (non-wildcard) bucket.
  Bindings empty;
  bool complete = false;
  EXPECT_NE(ComputeJoinKey(empty, nullptr, 0, &complete), kWildcardJoinKey);
  EXPECT_TRUE(complete);
}

TEST(JoinKeyTest, EqualTuplesHashEqually) {
  SymbolId r = InternSymbol("symtest_jk_r3");
  SymbolId t = InternSymbol("symtest_jk_t3");
  std::vector<SymbolId> vars = {r, t};
  Bindings a;
  a.BindScalar(r, std::string("reader-7"));
  a.BindScalar(t, TimePoint{42 * kSecond});
  Bindings b;
  b.BindScalar(t, TimePoint{42 * kSecond});  // Insertion order differs.
  b.BindScalar(r, std::string("reader-7"));
  bool ca = false;
  bool cb = false;
  EXPECT_EQ(ComputeJoinKey(a, vars, &ca), ComputeJoinKey(b, vars, &cb));
  EXPECT_TRUE(ca);
  EXPECT_TRUE(cb);
}

TEST(JoinKeyTest, ValueTypeIsPartOfTheHash) {
  // The string "0" and the timestamp 0 must not collide by construction.
  EXPECT_NE(HashBindingValue(BindingValue(std::string("0"))),
            HashBindingValue(BindingValue(TimePoint{0})));
  EXPECT_NE(HashBindingValue(BindingValue(std::string())),
            HashBindingValue(BindingValue(TimePoint{0})));
}

}  // namespace
}  // namespace rfidcep::events
