#include "events/event_instance.h"

#include <gtest/gtest.h>

namespace rfidcep::events {
namespace {

EventInstancePtr Prim(const std::string& reader, const std::string& object,
                      TimePoint t, uint64_t seq) {
  return EventInstance::MakePrimitive(Observation{reader, object, t},
                                      Bindings(), seq);
}

TEST(EventInstanceTest, PrimitiveIsInstantaneous) {
  EventInstancePtr e = Prim("r1", "o1", 5 * kSecond, 1);
  EXPECT_TRUE(e->is_primitive());
  EXPECT_EQ(e->t_begin(), e->t_end());
  EXPECT_EQ(e->interval(), 0);
  EXPECT_EQ(e->observation().reader, "r1");
}

TEST(EventInstanceTest, ComplexSpansChildren) {
  EventInstancePtr a = Prim("r1", "o1", 1 * kSecond, 1);
  EventInstancePtr b = Prim("r2", "o2", 4 * kSecond, 2);
  EventInstancePtr c = EventInstance::MakeComplex(
      a->t_begin(), b->t_end(), Bindings(), {a, b}, 3);
  EXPECT_FALSE(c->is_primitive());
  EXPECT_EQ(c->interval(), 3 * kSecond);
  EXPECT_EQ(c->children().size(), 2u);
}

TEST(EventInstanceTest, TemporalFunctionsMatchPaperFig3) {
  // dist(e1,e2) = t_end(e2) - t_end(e1);
  // interval(e1,e2) = max(t_end) - min(t_begin).
  EventInstancePtr e1 = Prim("r", "o", 2 * kSecond, 1);
  EventInstancePtr e2 = Prim("r", "o", 9 * kSecond, 2);
  EXPECT_EQ(Dist(*e1, *e2), 7 * kSecond);
  EXPECT_EQ(Dist(*e2, *e1), -7 * kSecond);
  EXPECT_EQ(CombinedInterval(*e1, *e2), 7 * kSecond);

  EventInstancePtr complex1 = EventInstance::MakeComplex(
      1 * kSecond, 5 * kSecond, Bindings(), {}, 3);
  EventInstancePtr complex2 = EventInstance::MakeComplex(
      3 * kSecond, 11 * kSecond, Bindings(), {}, 4);
  EXPECT_EQ(Dist(*complex1, *complex2), 6 * kSecond);
  EXPECT_EQ(CombinedInterval(*complex1, *complex2), 10 * kSecond);
}

TEST(EventInstanceTest, CollectObservationsFlattensInOrder) {
  EventInstancePtr a = Prim("r1", "a", 1, 1);
  EventInstancePtr b = Prim("r1", "b", 2, 2);
  EventInstancePtr c = Prim("r2", "c", 3, 3);
  EventInstancePtr run =
      EventInstance::MakeComplex(1, 2, Bindings(), {a, b}, 4);
  EventInstancePtr root =
      EventInstance::MakeComplex(1, 3, Bindings(), {run, c}, 5);
  std::vector<Observation> flat = root->CollectObservations();
  ASSERT_EQ(flat.size(), 3u);
  EXPECT_EQ(flat[0].object, "a");
  EXPECT_EQ(flat[1].object, "b");
  EXPECT_EQ(flat[2].object, "c");
}

TEST(EventInstanceTest, ToStringIsInformative) {
  EventInstancePtr e = Prim("r1", "o1", kSecond, 7);
  EXPECT_NE(e->ToString().find("r1"), std::string::npos);
  EXPECT_NE(e->ToString().find("o1"), std::string::npos);
}

}  // namespace
}  // namespace rfidcep::events
