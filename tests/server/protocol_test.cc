// Robustness tests for the rfidcepd wire protocol (ISSUE 10): framing
// round-trips, then — in the WAL torn-tail test's style — every-byte
// truncation and every-byte corruption of a valid stream. The decoder
// must never crash, never hand a damaged frame to the engine layer, and
// must latch into a clean error on anything unrecoverable.

#include "server/protocol.h"

#include <cstring>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "gtest/gtest.h"

namespace rfidcep::server {
namespace {

std::vector<events::Observation> SampleBatch() {
  return {{"r1", "o1", 1000}, {"dock-reader", "pallet-42", 2000},
          {"", "", 0}};  // Empty EPCs are legal on the wire.
}

// A representative client stream: hello-free frame sequence.
std::string SampleStream() {
  std::string stream;
  stream += EncodeBatch(SampleBatch());
  stream += EncodeAdvance(5000);
  stream += EncodeFrame(FrameType::kStats, "");
  stream += EncodeFrame(FrameType::kFlush, "");
  return stream;
}

// Feeds `stream` to a fresh reader and drains it.
struct DrainResult {
  std::vector<Frame> frames;
  DecodeResult last = DecodeResult::kNeedMore;
  std::string error;
};

DrainResult Drain(std::string_view stream) {
  FrameReader reader;
  reader.Feed(stream);
  DrainResult result;
  Frame frame;
  for (;;) {
    result.last = reader.Next(&frame);
    if (result.last != DecodeResult::kItem) break;
    result.frames.push_back(frame);
  }
  result.error = reader.error();
  return result;
}

TEST(ProtocolTest, BatchRoundTrip) {
  const std::vector<events::Observation> batch = SampleBatch();
  const std::string encoded = EncodeBatch(batch);

  DrainResult result = Drain(encoded);
  ASSERT_EQ(result.frames.size(), 1u);
  EXPECT_EQ(result.last, DecodeResult::kNeedMore);
  EXPECT_EQ(result.frames[0].type, FrameType::kBatch);

  std::vector<events::Observation> decoded;
  ASSERT_TRUE(DecodeBatch(result.frames[0].body, &decoded).ok());
  EXPECT_EQ(decoded, batch);
}

TEST(ProtocolTest, ControlFrameRoundTrips) {
  DrainResult result = Drain(SampleStream());
  ASSERT_EQ(result.frames.size(), 4u);
  EXPECT_EQ(result.last, DecodeResult::kNeedMore);
  EXPECT_EQ(result.error, "");

  TimePoint t = 0;
  ASSERT_TRUE(DecodeAdvance(result.frames[1].body, &t).ok());
  EXPECT_EQ(t, 5000);
  EXPECT_EQ(result.frames[2].type, FrameType::kStats);
  EXPECT_EQ(result.frames[3].type, FrameType::kFlush);
}

TEST(ProtocolTest, AckErrorAndStatsReplyRoundTrip) {
  DrainResult ack = Drain(EncodeAck(41));
  ASSERT_EQ(ack.frames.size(), 1u);
  uint64_t seq = 0;
  ASSERT_TRUE(DecodeAck(ack.frames[0].body, &seq).ok());
  EXPECT_EQ(seq, 41u);

  DrainResult err = Drain(EncodeError(Status::InvalidArgument("bad batch")));
  ASSERT_EQ(err.frames.size(), 1u);
  ASSERT_EQ(err.frames[0].type, FrameType::kError);
  Status decoded_status = Status::Ok();
  ASSERT_TRUE(DecodeError(err.frames[0].body, &decoded_status).ok());
  EXPECT_EQ(decoded_status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(decoded_status.message(), "bad batch");

  StatsReply stats;
  stats.observations = 7;
  stats.matches = 5;
  stats.rules_fired = 3;
  stats.sql_actions = 2;
  stats.procedures = 1;
  stats.fired = {{"shoplifting", 2}, {"misplaced inventory", 1}};
  DrainResult reply = Drain(EncodeStatsReply(stats));
  ASSERT_EQ(reply.frames.size(), 1u);
  StatsReply decoded;
  ASSERT_TRUE(DecodeStatsReply(reply.frames[0].body, &decoded).ok());
  EXPECT_EQ(decoded.observations, 7u);
  EXPECT_EQ(decoded.matches, 5u);
  EXPECT_EQ(decoded.rules_fired, 3u);
  EXPECT_EQ(decoded.sql_actions, 2u);
  EXPECT_EQ(decoded.procedures, 1u);
  EXPECT_EQ(decoded.fired, stats.fired);
}

TEST(ProtocolTest, IncrementalFeedByteAtATime) {
  const std::string stream = SampleStream();
  FrameReader reader;
  std::vector<Frame> frames;
  Frame frame;
  for (char byte : stream) {
    reader.Feed(std::string_view(&byte, 1));
    while (reader.Next(&frame) == DecodeResult::kItem) frames.push_back(frame);
    EXPECT_EQ(reader.error(), "");
  }
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_EQ(frames[0].type, FrameType::kBatch);
  EXPECT_EQ(frames[3].type, FrameType::kFlush);
}

// Truncating a valid stream at every byte boundary must yield only
// complete leading frames plus kNeedMore — never an error, never a
// partial frame, never a crash (peer close mid-frame is routine).
TEST(ProtocolTest, EveryTruncationPointIsCleanNeedMore) {
  const std::string stream = SampleStream();
  // Frame boundaries, for computing how many full frames survive.
  std::vector<size_t> boundaries;
  for (size_t pos = 0; pos < stream.size();) {
    uint32_t len = 0;
    std::memcpy(&len, stream.data() + pos, sizeof(len));
    pos += kFrameHeaderBytes + len;
    boundaries.push_back(pos);
  }

  for (size_t cut = 0; cut <= stream.size(); ++cut) {
    DrainResult result = Drain(stream.substr(0, cut));
    size_t expect_frames = 0;
    for (size_t boundary : boundaries) {
      if (boundary <= cut) ++expect_frames;
    }
    EXPECT_EQ(result.frames.size(), expect_frames) << "cut at " << cut;
    EXPECT_EQ(result.last, DecodeResult::kNeedMore) << "cut at " << cut;
    EXPECT_EQ(result.error, "") << "cut at " << cut;
  }
}

// Flipping any payload byte must be caught by the CRC; flipping header
// bytes is caught by the CRC or the length/type checks. In every case
// the reader latches kError with a message and stays failed.
TEST(ProtocolTest, EveryByteCorruptionIsDetected) {
  const std::string stream = EncodeBatch(SampleBatch());
  for (size_t i = 0; i < stream.size(); ++i) {
    for (int bit = 0; bit < 8; bit += 7) {  // Low and high bit of each byte.
      std::string corrupt = stream;
      corrupt[i] = static_cast<char>(corrupt[i] ^ (1 << bit));
      FrameReader reader;
      reader.Feed(corrupt);
      Frame frame;
      DecodeResult r = reader.Next(&frame);
      // A corrupted length can only make the frame longer or shorter;
      // shorter-than-buffer lengths must fail CRC, longer ones are
      // kNeedMore (indistinguishable from truncation) or the size cap.
      if (r == DecodeResult::kItem) {
        ADD_FAILURE() << "undetected corruption at byte " << i << " bit "
                      << bit;
        continue;
      }
      if (r == DecodeResult::kError) {
        EXPECT_NE(reader.error(), "") << "byte " << i;
        // Latched: identical error on retry, no crash.
        EXPECT_EQ(reader.Next(&frame), DecodeResult::kError);
      }
    }
  }
}

TEST(ProtocolTest, OversizedFrameIsRejectedBeforeAllocation) {
  std::string header;
  const uint32_t huge = kMaxFrameBytes + 1;
  header.append(reinterpret_cast<const char*>(&huge), sizeof(huge));
  header.append(4, '\0');  // CRC never inspected.
  FrameReader reader;
  reader.Feed(header);
  Frame frame;
  EXPECT_EQ(reader.Next(&frame), DecodeResult::kError);
  EXPECT_NE(reader.error().find("oversized"), std::string::npos);
}

TEST(ProtocolTest, UnknownFrameTypeIsRejected) {
  std::string payload = "\x7f";  // No such type.
  std::string raw;
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint32_t crc = common::Crc32(payload.data(), payload.size());
  raw.append(reinterpret_cast<const char*>(&len), sizeof(len));
  raw.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  raw += payload;
  FrameReader reader;
  reader.Feed(raw);
  Frame frame;
  EXPECT_EQ(reader.Next(&frame), DecodeResult::kError);
  EXPECT_NE(reader.error().find("unknown frame type"), std::string::npos);
}

TEST(ProtocolTest, ZeroLengthPayloadIsRejected) {
  // Even an "empty" frame carries its type byte; length 0 is corruption.
  std::string raw(kFrameHeaderBytes, '\0');
  FrameReader reader;
  reader.Feed(raw);
  Frame frame;
  EXPECT_EQ(reader.Next(&frame), DecodeResult::kError);
}

TEST(ProtocolTest, BatchBodyDecodeRejectsDamage) {
  const std::string good = EncodeBatch(SampleBatch());
  DrainResult result = Drain(good);
  ASSERT_EQ(result.frames.size(), 1u);
  const std::string body = result.frames[0].body;

  std::vector<events::Observation> out;
  // Truncating the (CRC-valid) body at every point must error, not read
  // out of bounds: DecodeBatch guards independently of framing.
  for (size_t cut = 0; cut < body.size(); ++cut) {
    EXPECT_FALSE(DecodeBatch(body.substr(0, cut), &out).ok())
        << "cut at " << cut;
  }
  // An absurd count with a tiny body must be rejected without allocating.
  std::string tiny;
  const uint32_t count = 0xFFFFFFFFu;
  tiny.append(reinterpret_cast<const char*>(&count), sizeof(count));
  EXPECT_FALSE(DecodeBatch(tiny, &out).ok());
  // Trailing garbage after the last observation is also corruption.
  EXPECT_FALSE(DecodeBatch(body + "x", &out).ok());
}

TEST(ProtocolTest, HelloRoundTripAndErrors) {
  Hello hello;
  size_t consumed = 0;
  std::string error;

  const std::string good = EncodeHello("warehouse-7");
  EXPECT_EQ(DecodeHello(good, &hello, &consumed, &error), DecodeResult::kItem);
  EXPECT_EQ(hello.version, kProtocolVersion);
  EXPECT_EQ(hello.tenant, "warehouse-7");
  EXPECT_EQ(consumed, good.size());

  // Truncation at every point: kNeedMore, never error.
  for (size_t cut = 0; cut < good.size(); ++cut) {
    error.clear();
    EXPECT_EQ(DecodeHello(good.substr(0, cut), &hello, &consumed, &error),
              DecodeResult::kNeedMore)
        << "cut at " << cut;
    EXPECT_EQ(error, "") << "cut at " << cut;
  }

  // Wrong magic (e.g. an HTTP client hitting the wrong port).
  error.clear();
  EXPECT_EQ(DecodeHello("GET / HTTP/1.1\r\n", &hello, &consumed, &error),
            DecodeResult::kError);
  EXPECT_NE(error.find("magic"), std::string::npos);

  // Future protocol version.
  std::string future = good;
  future[4] = 2;
  error.clear();
  EXPECT_EQ(DecodeHello(future, &hello, &consumed, &error),
            DecodeResult::kError);

  // Empty and oversized tenant names.
  error.clear();
  EXPECT_EQ(DecodeHello(EncodeHello(""), &hello, &consumed, &error),
            DecodeResult::kError);
  error.clear();
  EXPECT_EQ(DecodeHello(EncodeHello(std::string(kMaxTenantNameBytes + 1, 't')),
                        &hello, &consumed, &error),
            DecodeResult::kError);
}

}  // namespace
}  // namespace rfidcep::server
