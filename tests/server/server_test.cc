// End-to-end rfidcepd tests (ISSUE 10): a real Server on a loopback
// socket, a client speaking the binary protocol, and an in-process
// library engine as the oracle. The daemon must be a transparent
// transport — byte-identical match/fired counts to the library path —
// and its SIGTERM lifecycle must reconcile exactly across a restart,
// including onto a different shard count.

#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "store/database.h"

namespace rfidcep::server {
namespace {

namespace fs = std::filesystem;

// Two rule families per tenant: a per-observation SQL action and a
// WITHIN pair raising an alarm procedure (the exactly-once surface).
constexpr std::string_view kAlphaRules = R"(
  CREATE RULE loc, location update rule
  ON observation(r, o, t)
  IF true
  DO INSERT INTO OBJECTLOCATION VALUES (o, r, t, "UC")

  CREATE RULE dup, duplicate read rule
  ON WITHIN(observation(r, o, t1); observation(r, o, t2), 5sec)
  IF true
  DO raise alarm
)";

constexpr std::string_view kBetaRules = R"(
  CREATE RULE watch, watched object rule
  ON observation(r, o, t)
  IF o = 'hot'
  DO notify security
)";

// Deterministic trace: the same (reader, object) pair recurs every 2.5
// seconds, inside dup's 5-second window; every 7th object is 'hot'.
std::vector<events::Observation> MakeTrace(int count) {
  std::vector<events::Observation> trace;
  trace.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    std::string object = i % 7 == 0 ? "hot" : "obj" + std::to_string(i % 5);
    trace.push_back(events::Observation{"dock" + std::to_string(i % 5),
                                        std::move(object),
                                        static_cast<TimePoint>(i) *
                                            (kSecond / 2)});
  }
  return trace;
}

std::vector<std::vector<events::Observation>> Batched(
    const std::vector<events::Observation>& trace, size_t batch) {
  std::vector<std::vector<events::Observation>> batches;
  for (size_t i = 0; i < trace.size(); i += batch) {
    batches.emplace_back(trace.begin() + static_cast<ptrdiff_t>(i),
                         trace.begin() +
                             static_cast<ptrdiff_t>(
                                 std::min(i + batch, trace.size())));
  }
  return batches;
}

// A minimal protocol client for loopback tests.
class Client {
 public:
  ~Client() { Close(); }

  bool Connect(int port, const std::string& tenant) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      return false;
    }
    if (!SendRaw(EncodeHello(tenant))) return false;
    Frame frame;
    return ReadFrame(&frame) && frame.type == FrameType::kAck;
  }

  bool SendRaw(std::string_view bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                         MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  // Reads server frames until one complete frame is available.
  bool ReadFrame(Frame* out) {
    for (;;) {
      switch (reader_.Next(out)) {
        case DecodeResult::kItem:
          return true;
        case DecodeResult::kError:
          return false;
        case DecodeResult::kNeedMore:
          break;
      }
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      reader_.Feed(std::string_view(chunk, static_cast<size_t>(n)));
    }
  }

  // Sends one frame and waits for its ack.
  bool Roundtrip(std::string_view encoded_frame) {
    if (!SendRaw(encoded_frame)) return false;
    Frame frame;
    return ReadFrame(&frame) && frame.type == FrameType::kAck;
  }

  bool Stats(StatsReply* out) {
    if (!SendRaw(EncodeFrame(FrameType::kStats, ""))) return false;
    Frame frame;
    if (!ReadFrame(&frame) || frame.type != FrameType::kStatsReply) {
      return false;
    }
    return DecodeStatsReply(frame.body, out).ok();
  }

  // Reads the terminal kError frame (after the server fails the
  // connection) and the EOF behind it.
  bool ReadError(Status* out) {
    Frame frame;
    if (!ReadFrame(&frame) || frame.type != FrameType::kError) return false;
    if (!DecodeError(frame.body, out).ok()) return false;
    char byte;
    return ::recv(fd_, &byte, 1, 0) == 0;  // Server closed.
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
  FrameReader reader_;
};

struct Reference {
  explicit Reference(std::string_view rules, engine::EngineOptions options =
                                                 {}) {
    EXPECT_TRUE(db.InstallRfidSchema().ok());
    engine = std::make_unique<engine::RcedaEngine>(&db, events::Environment{},
                                                   options);
    EXPECT_TRUE(engine->AddRulesFromText(rules).ok());
    engine->RegisterProcedure("raise alarm",
                              [this](const engine::RuleFiring&,
                                     const std::string&) { ++alarms; });
    engine->RegisterProcedure("notify security",
                              [this](const engine::RuleFiring&,
                                     const std::string&) { ++alarms; });
    EXPECT_TRUE(engine->Compile().ok());
  }

  store::Database db;
  std::unique_ptr<engine::RcedaEngine> engine;
  int alarms = 0;
};

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("server_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  TenantConfig AlphaConfig(int shards) {
    TenantConfig config;
    config.name = "alpha";
    config.rules_text = kAlphaRules;
    config.shards = shards;
    return config;
  }

  TenantConfig BetaConfig() {
    TenantConfig config;
    config.name = "beta";
    config.rules_text = kBetaRules;
    config.store = false;
    return config;
  }

  // Counts alarm-procedure invocations on a live server tenant.
  static void CountAlarms(Server& server, const std::string& name, int* count) {
    for (const char* procedure : {"raise alarm", "notify security"}) {
      server.tenant(name)->engine().RegisterProcedure(
          procedure, [count](const engine::RuleFiring&, const std::string&) {
            ++*count;
          });
    }
  }

  ServerOptions Options(const std::string& subdir = "") {
    ServerOptions options;
    options.port = 0;
    options.http_port = -1;
    options.state_dir = subdir.empty() ? dir_.string()
                                       : (dir_ / subdir).string();
    return options;
  }

  fs::path dir_;
};

// The daemon is a transparent transport: every count a client can see
// equals the library path, at one shard and at two.
TEST_F(ServerTest, LoopbackCountsMatchLibraryPath) {
  const std::vector<events::Observation> trace = MakeTrace(600);
  for (int shards : {1, 2}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));

    Server server(Options("s" + std::to_string(shards)));
    ASSERT_TRUE(server.AddTenant(AlphaConfig(shards)).ok());
    ASSERT_TRUE(server.AddTenant(BetaConfig()).ok());
    int alpha_alarms = 0;
    int beta_alarms = 0;
    CountAlarms(server, "alpha", &alpha_alarms);
    CountAlarms(server, "beta", &beta_alarms);
    ASSERT_TRUE(server.Start().ok());

    Client alpha;
    Client beta;
    ASSERT_TRUE(alpha.Connect(server.bound_port(), "alpha"));
    ASSERT_TRUE(beta.Connect(server.bound_port(), "beta"));
    for (const auto& batch : Batched(trace, 32)) {
      ASSERT_TRUE(alpha.Roundtrip(EncodeBatch(batch)));
      ASSERT_TRUE(beta.Roundtrip(EncodeBatch(batch)));
    }
    ASSERT_TRUE(alpha.Roundtrip(EncodeFrame(FrameType::kFlush, "")));
    ASSERT_TRUE(beta.Roundtrip(EncodeFrame(FrameType::kFlush, "")));

    StatsReply alpha_stats;
    StatsReply beta_stats;
    ASSERT_TRUE(alpha.Stats(&alpha_stats));
    ASSERT_TRUE(beta.Stats(&beta_stats));

    // Library oracle, same shard count, fed the same trace directly.
    engine::EngineOptions options;
    options.shards = shards;
    Reference alpha_ref(kAlphaRules, options);
    Reference beta_ref(kBetaRules);
    ASSERT_TRUE(alpha_ref.engine->ProcessAll(trace).ok());
    ASSERT_TRUE(beta_ref.engine->ProcessAll(trace).ok());
    ASSERT_TRUE(alpha_ref.engine->Flush().ok());
    ASSERT_TRUE(beta_ref.engine->Flush().ok());

    const engine::EngineStats& alpha_want = alpha_ref.engine->stats();
    EXPECT_EQ(alpha_stats.observations, alpha_want.detector.observations);
    EXPECT_EQ(alpha_stats.matches, alpha_want.detector.rule_matches);
    EXPECT_EQ(alpha_stats.rules_fired, alpha_want.rules_fired);
    EXPECT_EQ(alpha_stats.sql_actions, alpha_want.sql_actions_executed);
    EXPECT_EQ(alpha_stats.procedures, alpha_want.procedures_invoked);
    ASSERT_EQ(alpha_stats.fired.size(), 2u);
    for (const auto& [rule, count] : alpha_stats.fired) {
      EXPECT_EQ(count, alpha_ref.engine->FiredCount(rule)) << rule;
    }
    EXPECT_EQ(alpha_alarms, alpha_ref.alarms);

    const engine::EngineStats& beta_want = beta_ref.engine->stats();
    EXPECT_EQ(beta_stats.observations, beta_want.detector.observations);
    EXPECT_EQ(beta_stats.matches, beta_want.detector.rule_matches);
    EXPECT_EQ(beta_stats.rules_fired, beta_want.rules_fired);
    EXPECT_EQ(beta_stats.procedures, beta_want.procedures_invoked);
    EXPECT_EQ(beta_alarms, beta_ref.alarms);

    // The trace fires something in every family, or the test is vacuous.
    EXPECT_GT(alpha_stats.sql_actions, 0u);
    EXPECT_GT(alpha_stats.procedures, 0u);
    EXPECT_GT(beta_stats.rules_fired, 0u);

    EXPECT_TRUE(server.Shutdown().ok());
  }
}

// The SIGTERM path: shutdown mid-stream checkpoints, a new server over
// the same state directory — on a different shard count — resumes, and
// the client finishes the stream. Totals reconcile exactly with an
// uninterrupted run; no alarm or procedure fires twice.
TEST_F(ServerTest, ShutdownMidStreamRestartsOntoDifferentShardCount) {
  const std::vector<events::Observation> trace = MakeTrace(600);
  const auto batches = Batched(trace, 32);
  const size_t split = batches.size() / 2;
  int alarms_before = 0;
  int alarms_after = 0;

  {
    Server server(Options());
    ASSERT_TRUE(server.AddTenant(AlphaConfig(/*shards=*/1)).ok());
    CountAlarms(server, "alpha", &alarms_before);
    ASSERT_TRUE(server.Start().ok());
    Client client;
    ASSERT_TRUE(client.Connect(server.bound_port(), "alpha"));
    for (size_t i = 0; i < split; ++i) {
      // Each ack means the frame is fully processed: everything acked
      // before Shutdown() is inside the checkpoint.
      ASSERT_TRUE(client.Roundtrip(EncodeBatch(batches[i])));
    }
    ASSERT_TRUE(server.Shutdown().ok());
  }

  {
    Server server(Options());
    ASSERT_TRUE(server.AddTenant(AlphaConfig(/*shards=*/2)).ok());
    ASSERT_TRUE(server.tenant("alpha")->restored());
    CountAlarms(server, "alpha", &alarms_after);
    ASSERT_TRUE(server.Start().ok());
    Client client;
    ASSERT_TRUE(client.Connect(server.bound_port(), "alpha"));
    for (size_t i = split; i < batches.size(); ++i) {
      ASSERT_TRUE(client.Roundtrip(EncodeBatch(batches[i])));
    }
    ASSERT_TRUE(client.Roundtrip(EncodeFrame(FrameType::kFlush, "")));
    StatsReply stats;
    ASSERT_TRUE(client.Stats(&stats));

    Reference ref(kAlphaRules);
    ASSERT_TRUE(ref.engine->ProcessAll(trace).ok());
    ASSERT_TRUE(ref.engine->Flush().ok());

    // Counters persist through the snapshot, so the restarted tenant
    // reports whole-stream totals, not a post-restart suffix.
    const engine::EngineStats& want = ref.engine->stats();
    EXPECT_EQ(stats.observations, want.detector.observations);
    EXPECT_EQ(stats.matches, want.detector.rule_matches);
    EXPECT_EQ(stats.rules_fired, want.rules_fired);
    EXPECT_EQ(stats.sql_actions, want.sql_actions_executed);
    EXPECT_EQ(stats.procedures, want.procedures_invoked);
    for (const auto& [rule, count] : stats.fired) {
      EXPECT_EQ(count, ref.engine->FiredCount(rule)) << rule;
    }
    // Zero duplicate effects: invocations across both server lifetimes
    // sum to exactly the uninterrupted run's.
    EXPECT_EQ(alarms_before + alarms_after, ref.alarms);
    EXPECT_GT(alarms_before, 0);
    EXPECT_GT(alarms_after, 0);

    EXPECT_TRUE(server.Shutdown().ok());
  }
}

TEST_F(ServerTest, GarbageBytesFailTheConnectionCleanly) {
  Server server(Options());
  ASSERT_TRUE(server.AddTenant(BetaConfig()).ok());
  ASSERT_TRUE(server.Start().ok());

  // Garbage after a valid hello: framing CRC catches it, the server
  // reports, counts, and closes; the engine is untouched.
  Client client;
  ASSERT_TRUE(client.Connect(server.bound_port(), "beta"));
  ASSERT_TRUE(client.SendRaw(std::string(64, '\xee')));
  Status error = Status::Ok();
  ASSERT_TRUE(client.ReadError(&error));
  EXPECT_FALSE(error.ok());

  // Garbage instead of a hello.
  Client bad_hello;
  ASSERT_TRUE(bad_hello.Connect(server.bound_port(), "beta"));
  // Reuse the raw socket path: fresh connection, wrong magic.
  Client raw;
  {
    // Connect() sends a valid hello, so hand-roll the socket.
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(server.bound_port()));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    ASSERT_EQ(::send(fd, "GET / HTTP/1.1\r\n", 16, MSG_NOSIGNAL), 16);
    std::string reply;
    char chunk[512];
    for (ssize_t n; (n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0;) {
      reply.append(chunk, static_cast<size_t>(n));
    }
    ::close(fd);
    EXPECT_NE(reply.size(), 0u);  // kError frame, then EOF.
  }

  // Unknown tenant in an otherwise valid hello.
  Client ghost;
  EXPECT_FALSE(ghost.Connect(server.bound_port(), "no-such-tenant"));

  const std::string metrics = server.ExportMetrics();
  EXPECT_NE(metrics.find("rfidcepd_protocol_errors_total 3"),
            std::string::npos)
      << metrics;
  EXPECT_TRUE(server.Shutdown().ok());
}

TEST_F(ServerTest, HttpServesMetricsAndHealth) {
  ServerOptions options = Options();
  options.http_port = 0;  // Ephemeral.
  Server server(options);
  ASSERT_TRUE(server.AddTenant(BetaConfig()).ok());
  ASSERT_TRUE(server.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect(server.bound_port(), "beta"));
  ASSERT_TRUE(client.Roundtrip(EncodeBatch(MakeTrace(20))));

  auto http_get = [&](const std::string& path) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(server.http_port()));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
    EXPECT_TRUE(::send(fd, request.data(), request.size(), MSG_NOSIGNAL) ==
                static_cast<ssize_t>(request.size()));
    std::string reply;
    char chunk[4096];
    for (ssize_t n; (n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0;) {
      reply.append(chunk, static_cast<size_t>(n));
    }
    ::close(fd);
    return reply;
  };

  const std::string health = http_get("/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok"), std::string::npos);

  const std::string metrics = http_get("/metrics");
  EXPECT_NE(metrics.find("rfidcepd_observations_total 20"), std::string::npos)
      << metrics;
  // Tenant engine metrics come through with a tenant label injected.
  EXPECT_NE(metrics.find("tenant=\"beta\""), std::string::npos);

  EXPECT_NE(http_get("/nope").find("404"), std::string::npos);
  EXPECT_TRUE(server.Shutdown().ok());
}

// Frames already acknowledged are never resent, frames never sent are
// simply absent: the ack sequence is the exact resend boundary. A
// client that resends an *unacked but processed* frame would double
// count — the protocol makes that window empty because acks are sent
// only after processing, and Shutdown() finishes the in-flight frame.
TEST_F(ServerTest, AckSequenceNumbersAreOrderedAndComplete) {
  Server server(Options());
  ASSERT_TRUE(server.AddTenant(BetaConfig()).ok());
  ASSERT_TRUE(server.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect(server.bound_port(), "beta"));
  for (uint64_t want = 1; want <= 10; ++want) {
    ASSERT_TRUE(client.SendRaw(EncodeFrame(FrameType::kPing, "")));
    Frame frame;
    ASSERT_TRUE(client.ReadFrame(&frame));
    ASSERT_EQ(frame.type, FrameType::kAck);
    uint64_t seq = 0;
    ASSERT_TRUE(DecodeAck(frame.body, &seq).ok());
    EXPECT_EQ(seq, want);
  }
  EXPECT_TRUE(server.Shutdown().ok());
}

}  // namespace
}  // namespace rfidcep::server
