// Integration test for the observability layer: replay a known
// supply-chain trace with metrics on and assert that ExportMetrics()
// totals reconcile exactly with EngineStats and FiredCount — on the
// serial path and on the sharded pipeline at shards {2, 4}, where the
// per-shard routing counters must also account for every observation.

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "engine/trace.h"
#include "sim/supply_chain.h"
#include "store/database.h"

namespace rfidcep::engine {
namespace {

constexpr int kNumRules = 25;
constexpr size_t kNumEvents = 20000;
constexpr size_t kBatchSize = 512;

// Parses Prometheus text exposition: `name{labels} value` per line.
// Histogram series show up under their spliced `_bucket`/`_sum`/`_count`
// names; everything keeps its label set as part of the key.
std::map<std::string, int64_t> ParseExposition(const std::string& text) {
  std::map<std::string, int64_t> samples;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    size_t space = line.rfind(' ');
    EXPECT_NE(space, std::string::npos) << line;
    if (space == std::string::npos) continue;
    samples[line.substr(0, space)] = std::stoll(line.substr(space + 1));
  }
  return samples;
}

int64_t SampleOr(const std::map<std::string, int64_t>& samples,
                 const std::string& name, int64_t fallback = -1) {
  auto it = samples.find(name);
  return it != samples.end() ? it->second : fallback;
}

// Sums every sample whose name starts with `prefix` (e.g. all shards of
// a labeled counter family).
int64_t SumFamily(const std::map<std::string, int64_t>& samples,
                  const std::string& prefix) {
  int64_t total = 0;
  for (const auto& [name, value] : samples) {
    if (name.compare(0, prefix.size(), prefix) == 0) total += value;
  }
  return total;
}

class MetricsIntegrationTest : public ::testing::Test {
 protected:
  MetricsIntegrationTest() : chain_(MakeConfig()) {
    program_ = chain_.GeneratedRuleProgram(kNumRules);
    stream_ = chain_.GenerateStream(kNumEvents);
  }

  static sim::SupplyChainConfig MakeConfig() {
    sim::SupplyChainConfig config;
    config.seed = 20060327;
    config.num_sites = 5;
    return config;
  }

  // Replays the trace at the given shard count with metrics enabled and
  // cross-checks the exposition against the engine's own accounting.
  void RunAndReconcile(int shards) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    store::Database db;
    ASSERT_TRUE(db.InstallRfidSchema().ok());
    EngineOptions options;
    options.shards = shards;
    options.execute_actions = true;
    options.enable_metrics = true;
    options.detector.tolerate_out_of_order = true;
    RcedaEngine engine(&db, chain_.environment(), options);
    ASSERT_TRUE(engine.AddRulesFromText(program_).ok());
    ASSERT_TRUE(engine.Compile().ok());

    for (size_t begin = 0; begin < stream_.size(); begin += kBatchSize) {
      size_t end = std::min(begin + kBatchSize, stream_.size());
      std::vector<events::Observation> batch(stream_.begin() + begin,
                                             stream_.begin() + end);
      ASSERT_TRUE(engine.ProcessAll(batch).ok());
    }
    ASSERT_TRUE(engine.Flush().ok());

    std::map<std::string, int64_t> samples =
        ParseExposition(engine.ExportMetrics());
    const EngineStats& stats = engine.stats();

    // Engine-global acceptance counters reconcile with DetectorStats no
    // matter how detection is partitioned.
    EXPECT_EQ(SampleOr(samples, "rfidcep_observations_total"),
              static_cast<int64_t>(stats.detector.observations));
    EXPECT_EQ(SampleOr(samples, "rfidcep_out_of_order_dropped_total", 0),
              static_cast<int64_t>(stats.detector.out_of_order_dropped));

    // Match/fire/condition accounting.
    EXPECT_EQ(SampleOr(samples, "rfidcep_rules_fired_total"),
              static_cast<int64_t>(stats.rules_fired));
    EXPECT_EQ(SampleOr(samples, "rfidcep_condition_rejects_total"),
              static_cast<int64_t>(stats.condition_rejects));
    EXPECT_EQ(SampleOr(samples, "rfidcep_matches_total"),
              static_cast<int64_t>(stats.rules_fired + stats.condition_rejects +
                                   stats.condition_errors));
    EXPECT_GT(stats.rules_fired, 0u);

    // Per-rule fired counters reconcile with FiredCount, rule by rule.
    uint64_t fired_sum = 0;
    for (int i = 0; i < kNumRules; ++i) {
      std::string id = "gen" + std::to_string(i);
      EXPECT_EQ(SampleOr(samples, "rule_fired_total{rule=\"" + id + "\"}", 0),
                static_cast<int64_t>(engine.FiredCount(id)))
          << id;
      fired_sum += engine.FiredCount(id);
    }
    EXPECT_EQ(fired_sum, stats.rules_fired);

    // Action counters reconcile with the dispatcher's accounting.
    EXPECT_EQ(SampleOr(samples, "actions_sql_total", 0),
              static_cast<int64_t>(stats.sql_actions_executed));
    EXPECT_EQ(SampleOr(samples, "actions_procedures_total", 0),
              static_cast<int64_t>(stats.procedures_invoked));

    // Detection-tier counters: rule matches partition exactly across
    // shards (each rule lives on one shard).
    EXPECT_EQ(SumFamily(samples, "detector_rule_matches_total{shard="),
              static_cast<int64_t>(stats.detector.rule_matches));

    if (shards > 1) {
      // Every accepted observation is routed to >= 1 shard or counted
      // unrouted; enqueue totals can exceed observations via fan-out.
      int64_t routed = SumFamily(samples, "shard_routed_total{shard=");
      int64_t unrouted =
          SampleOr(samples, "rfidcep_unrouted_observations_total", 0);
      int64_t accepted =
          static_cast<int64_t>(stats.detector.observations);
      EXPECT_GE(routed + unrouted, accepted);
      EXPECT_LE(unrouted, accepted);
      // The coordinator drained exactly the matches it replayed.
      EXPECT_EQ(SumFamily(samples, "shard_matches_total{shard="),
                static_cast<int64_t>(stats.detector.rule_matches));
      // Ring high watermarks are positive once traffic flowed and
      // bounded by the configured capacity.
      for (int s = 0; s < engine.num_shards(); ++s) {
        std::string label = "{shard=\"" + std::to_string(s) + "\"}";
        int64_t peak = SampleOr(samples, "shard_inbox_peak" + label, 0);
        EXPECT_GT(peak, 0) << label;
        EXPECT_LE(peak, static_cast<int64_t>(options.shard_queue_capacity));
      }
    }

    // The timing histogram saw every ProcessAll/Flush-adjacent call.
    EXPECT_EQ(SampleOr(samples, "rfidcep_process_us_count"),
              SampleOr(samples, "rfidcep_process_calls_total"));
    EXPECT_GT(SampleOr(samples, "rfidcep_process_calls_total"), 0);

    // Remember the serial ground truth to compare shard counts against.
    if (ground_truth_.empty()) {
      ground_truth_ = {
          {"observations", static_cast<int64_t>(stats.detector.observations)},
          {"rules_fired", static_cast<int64_t>(stats.rules_fired)},
          {"rule_matches", static_cast<int64_t>(stats.detector.rule_matches)},
      };
    } else {
      EXPECT_EQ(ground_truth_["observations"],
                static_cast<int64_t>(stats.detector.observations));
      EXPECT_EQ(ground_truth_["rules_fired"],
                static_cast<int64_t>(stats.rules_fired));
      EXPECT_EQ(ground_truth_["rule_matches"],
                static_cast<int64_t>(stats.detector.rule_matches));
    }
  }

  sim::SupplyChain chain_;
  std::string program_;
  std::vector<events::Observation> stream_;
  std::map<std::string, int64_t> ground_truth_;
};

TEST_F(MetricsIntegrationTest, ExportReconcilesAcrossShardCounts) {
  for (int shards : {1, 2, 4}) RunAndReconcile(shards);
}

// Metrics off: the exposition is the disabled sentinel and processing
// still works (every instrumentation site must tolerate null).
TEST_F(MetricsIntegrationTest, DisabledMetricsExportSentinel) {
  EngineOptions options;
  options.enable_metrics = false;
  options.detector.tolerate_out_of_order = true;
  RcedaEngine engine(nullptr, chain_.environment(), options);
  ASSERT_TRUE(engine.AddRulesFromText(program_).ok());
  ASSERT_TRUE(engine.Compile().ok());
  std::vector<events::Observation> head(stream_.begin(),
                                        stream_.begin() + 1000);
  ASSERT_TRUE(engine.ProcessAll(head).ok());
  ASSERT_TRUE(engine.Flush().ok());
  EXPECT_EQ(engine.ExportMetrics(), "# metrics disabled\n");
  EXPECT_GT(engine.stats().detector.observations, 0u);
}

// Reset() zeroes instrument values but preserves registration, so a
// second identical replay reconciles identically.
TEST_F(MetricsIntegrationTest, ResetZeroesCountersAndReplayMatches) {
  EngineOptions options;
  options.enable_metrics = true;
  options.detector.tolerate_out_of_order = true;
  RcedaEngine engine(nullptr, chain_.environment(), options);
  ASSERT_TRUE(engine.AddRulesFromText(program_).ok());
  ASSERT_TRUE(engine.Compile().ok());
  std::vector<events::Observation> head(stream_.begin(),
                                        stream_.begin() + 2000);
  ASSERT_TRUE(engine.ProcessAll(head).ok());
  ASSERT_TRUE(engine.Flush().ok());
  // Wall-clock histograms (*_us) vary run to run; the counters must not.
  auto counters_only = [](const std::string& text) {
    std::map<std::string, int64_t> out;
    for (const auto& [name, value] : ParseExposition(text)) {
      if (name.find("_us") == std::string::npos) out[name] = value;
    }
    return out;
  };
  std::map<std::string, int64_t> first =
      counters_only(engine.ExportMetrics());
  EXPECT_GT(first.at("rfidcep_observations_total"), 0);
  ASSERT_TRUE(engine.Reset().ok());
  EXPECT_EQ(counters_only(engine.ExportMetrics())
                .at("rfidcep_observations_total"),
            0);
  ASSERT_TRUE(engine.ProcessAll(head).ok());
  ASSERT_TRUE(engine.Flush().ok());
  EXPECT_EQ(counters_only(engine.ExportMetrics()), first);
}

// The lifecycle trace and the counters agree on the same replay.
TEST_F(MetricsIntegrationTest, TraceRecordsMatchCounters) {
  uint64_t obs_records = 0, match_records = 0;
  TraceSink sink([&](std::string_view line) {
    if (line.find("\"k\":\"obs\"") != std::string_view::npos) ++obs_records;
    if (line.find("\"k\":\"match\"") != std::string_view::npos) {
      ++match_records;
    }
  });
  EngineOptions options;
  options.enable_metrics = true;
  options.detector.tolerate_out_of_order = true;
  RcedaEngine engine(nullptr, chain_.environment(), options);
  ASSERT_TRUE(engine.SetTraceSink(&sink).ok());
  ASSERT_TRUE(engine.AddRulesFromText(program_).ok());
  ASSERT_TRUE(engine.Compile().ok());
  std::vector<events::Observation> head(stream_.begin(),
                                        stream_.begin() + 2000);
  ASSERT_TRUE(engine.ProcessAll(head).ok());
  ASSERT_TRUE(engine.Flush().ok());
  EXPECT_EQ(obs_records, head.size());
  const EngineStats& stats = engine.stats();
  EXPECT_EQ(match_records, stats.rules_fired + stats.condition_rejects +
                               stats.condition_errors);
}

}  // namespace
}  // namespace rfidcep::engine
