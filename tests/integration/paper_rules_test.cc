// End-to-end integration: the paper's five rules running together over
// simulated supply-chain traffic, with the RFID data store verified
// against ground truth.

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "sim/supply_chain.h"
#include "store/sql_executor.h"

namespace rfidcep {
namespace {

using engine::RcedaEngine;
using engine::RuleFiring;
using events::Observation;

class PaperRulesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::SupplyChainConfig config;
    config.seed = 7;
    config.num_sites = 1;
    chain_ = std::make_unique<sim::SupplyChain>(config);
    ASSERT_TRUE(db_.InstallRfidSchema().ok());
    engine_ = std::make_unique<RcedaEngine>(&db_, chain_->environment());
    engine_->RegisterProcedure(
        "send alarm",
        [this](const RuleFiring&, const std::string&) { ++alarms_; });
    engine_->RegisterProcedure(
        "send duplicate msg",
        [this](const RuleFiring&, const std::string&) { ++duplicates_; });
    ASSERT_TRUE(engine_->AddRulesFromText(chain_->PaperRuleProgram()).ok());
  }

  // Compiles on first use so tests can add extra rules before running.
  void Run(const std::vector<Observation>& stream, bool flush = true) {
    if (!engine_->compiled()) {
      ASSERT_TRUE(engine_->Compile().ok());
    }
    for (const Observation& obs : stream) {
      ASSERT_TRUE(engine_->Process(obs).ok());
    }
    if (flush) {
      ASSERT_TRUE(engine_->Flush().ok());
    }
  }

  size_t CountRows(const std::string& sql) {
    Result<store::ExecResult> result = store::ExecuteSql(sql, &db_);
    EXPECT_TRUE(result.ok()) << result.status();
    return result.ok() ? result->rows.size() : 0;
  }

  std::unique_ptr<sim::SupplyChain> chain_;
  store::Database db_;
  std::unique_ptr<RcedaEngine> engine_;
  int alarms_ = 0;
  int duplicates_ = 0;
};

TEST_F(PaperRulesTest, Rule4ContainmentMatchesGroundTruth) {
  // Pure packing traffic: every episode must produce exactly its items as
  // containment rows under its case.
  sim::PackingConfig pc;
  pc.item_reader = chain_->PackItemReader(0);
  pc.case_reader = chain_->PackCaseReader(0);
  pc.episodes = 12;
  pc.items_per_case = 5;
  Prng prng(3);
  sim::PackingWorkload packing =
      sim::GeneratePacking(pc, chain_->items(), chain_->cases(), &prng);
  Run(packing.observations);

  EXPECT_EQ(engine_->FiredCount("r4"), 12u);
  size_t total_rows = CountRows("SELECT * FROM OBJECTCONTAINMENT");
  EXPECT_EQ(total_rows, 12u * 5u);
  // Spot-check one episode's rows.
  const sim::PackingEpisode& episode = packing.episodes.front();
  Result<store::ExecResult> rows = store::ExecuteSql(
      "SELECT object_epc FROM OBJECTCONTAINMENT WHERE parent_epc = '" +
          episode.case_epc + "' ORDER BY object_epc",
      &db_);
  ASSERT_TRUE(rows.ok());
  std::vector<std::string> got;
  for (const store::Row& row : rows->rows) got.push_back(row[0].AsString());
  std::vector<std::string> want = episode.item_epcs;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

TEST_F(PaperRulesTest, Rule5AlarmsMatchUnauthorizedExits) {
  sim::ExitConfig ec;
  ec.reader = chain_->ExitReader(0);
  ec.passes = 30;
  ec.authorized_fraction = 0.5;
  ec.mean_gap = 40 * kSecond;  // Keep passes well separated.
  Prng prng(11);
  sim::ExitWorkload exits =
      sim::GenerateExit(ec, chain_->laptops(), chain_->badges(), &prng);
  Run(exits.observations);
  // Ground truth per the rule's actual semantics: a laptop observation
  // alarms iff NO superuser badge was read within +/-5sec of it — a badge
  // escorting an adjacent pass also suppresses the alarm.
  int expected_alarms = 0;
  for (const Observation& laptop : exits.observations) {
    if (chain_->catalog().TypeOf(laptop.object) != "laptop") continue;
    bool escorted = false;
    for (const Observation& other : exits.observations) {
      if (chain_->catalog().TypeOf(other.object) == "superuser" &&
          other.timestamp >= laptop.timestamp - 5 * kSecond &&
          other.timestamp <= laptop.timestamp + 5 * kSecond) {
        escorted = true;
        break;
      }
    }
    if (!escorted) ++expected_alarms;
  }
  EXPECT_GT(expected_alarms, 0);
  EXPECT_EQ(alarms_, expected_alarms);
  EXPECT_EQ(engine_->FiredCount("r5"),
            static_cast<uint64_t>(expected_alarms));
}

TEST_F(PaperRulesTest, Rule1FlagsInjectedDuplicates) {
  // Background traffic with duplicates injected at a known count.
  std::vector<Observation> base;
  for (int i = 0; i < 200; ++i) {
    base.push_back(Observation{chain_->DockReader(0),
                               chain_->items()[i % chain_->items().size()],
                               static_cast<TimePoint>(i) * 10 * kSecond});
  }
  Prng prng(5);
  std::vector<Observation> noisy =
      sim::InjectDuplicates(base, 0.25, 200 * kMillisecond, 2 * kSecond,
                            &prng);
  size_t injected = noisy.size() - base.size();
  ASSERT_GT(injected, 0u);
  Run(noisy);
  EXPECT_EQ(static_cast<size_t>(duplicates_), injected);
}

TEST_F(PaperRulesTest, Rule3MaintainsLocationHistory) {
  // The same object crosses the dock three times; OBJECTLOCATION must
  // hold a closed period chain with exactly one open ("UC") row.
  const std::string& object = chain_->items()[0];
  std::vector<Observation> stream = {
      {chain_->DockReader(0), object, 10 * kSecond},
      {chain_->DockReader(0), object, 100 * kSecond},
      {chain_->DockReader(0), object, 500 * kSecond},
  };
  Run(stream);
  EXPECT_EQ(CountRows("SELECT * FROM OBJECTLOCATION WHERE object_epc = '" +
                      object + "'"),
            3u);
  EXPECT_EQ(CountRows("SELECT * FROM OBJECTLOCATION WHERE object_epc = '" +
                      object + "' AND tend = \"UC\""),
            1u);
  // Closed periods end exactly when the next begins.
  Result<store::ExecResult> periods = store::ExecuteSql(
      "SELECT tstart, tend FROM OBJECTLOCATION WHERE object_epc = '" +
          object + "' ORDER BY tstart",
      &db_);
  ASSERT_TRUE(periods.ok());
  ASSERT_EQ(periods->rows.size(), 3u);
  EXPECT_TRUE(periods->rows[0][1].EqualsSql(periods->rows[1][0]));
  EXPECT_TRUE(periods->rows[1][1].EqualsSql(periods->rows[2][0]));
  EXPECT_TRUE(periods->rows[2][1].is_uc());
}

TEST_F(PaperRulesTest, Rule2RecordsInfieldEventsOnly) {
  sim::ShelfConfig sc;
  sc.reader = chain_->ShelfReader(0);
  sc.scans = 10;
  // The paper assumes exact 30s bulk-read scheduling; read jitter would
  // let a scan gap exceed the 30s negation window and re-trigger infield.
  sc.read_jitter = 0;
  std::vector<sim::ShelfStay> stays = {
      // Present from the start for all 10 scans.
      {chain_->items()[0], 0, 10 * sc.scan_period},
      // Joins at scan 5.
      {chain_->items()[1], 5 * sc.scan_period, 10 * sc.scan_period},
  };
  Prng prng(2);
  Run(sim::GenerateShelf(sc, stays, &prng));
  // Two infield events total (one per stay), despite ~15 raw reads.
  EXPECT_EQ(engine_->FiredCount("r2"), 2u);
  EXPECT_EQ(CountRows("SELECT * FROM OBSERVATION"), 2u);
}

TEST_F(PaperRulesTest, SaleRuleClosesLocationAndContainment) {
  // §5's "sale to customers" stage: pack items into a case, then sell one
  // item at the POS — its containment period must close and its location
  // must move to "sold", while its case-mates stay contained.
  ASSERT_TRUE(engine_->AddRulesFromText(chain_->SaleRuleProgram()).ok());
  sim::PackingConfig pc;
  pc.item_reader = chain_->PackItemReader(0);
  pc.case_reader = chain_->PackCaseReader(0);
  pc.episodes = 1;
  pc.items_per_case = 3;
  Prng prng(21);
  sim::PackingWorkload packing =
      sim::GeneratePacking(pc, chain_->items(), chain_->cases(), &prng);
  // The sale arrives later on the same stream, so keep it open (no Flush)
  // and settle the packing windows by advancing the clock instead.
  Run(packing.observations, /*flush=*/false);
  const sim::PackingEpisode& episode = packing.episodes.front();
  TimePoint sale_time = 10 * kMinute;
  ASSERT_TRUE(engine_->AdvanceTo(sale_time).ok());
  ASSERT_EQ(CountRows("SELECT * FROM OBJECTCONTAINMENT WHERE tend = \"UC\""),
            3u);

  // Sell the first item 10 minutes later.
  const std::string& sold = episode.item_epcs.front();
  ASSERT_TRUE(
      engine_->Process({chain_->PosReader(0), sold, sale_time}).ok());
  ASSERT_TRUE(engine_->Flush().ok());
  EXPECT_EQ(engine_->FiredCount("r6"), 1u);
  // Its containment period closed at the sale time...
  Result<store::ExecResult> closed = store::ExecuteSql(
      "SELECT tend FROM OBJECTCONTAINMENT WHERE object_epc = '" + sold + "'",
      &db_);
  ASSERT_TRUE(closed.ok());
  ASSERT_EQ(closed->rows.size(), 1u);
  EXPECT_EQ(closed->rows[0][0].AsTime(), sale_time);
  // ...the other two stayed contained, and the item is now "sold".
  EXPECT_EQ(CountRows("SELECT * FROM OBJECTCONTAINMENT WHERE tend = \"UC\""),
            2u);
  EXPECT_EQ(CountRows("SELECT * FROM OBJECTLOCATION WHERE object_epc = '" +
                      sold + "' AND loc_id = 'sold' AND tend = \"UC\""),
            1u);
}

TEST_F(PaperRulesTest, LocationRuleCanUseDerivedReaderLocation) {
  // Extension over the paper's hardcoded "loc2": `r_location` binds the
  // reader's registered location, so ONE rule serves every dock.
  store::Database db;
  ASSERT_TRUE(db.InstallRfidSchema().ok());
  sim::SupplyChainConfig config;
  config.num_sites = 2;
  sim::SupplyChain chain(config);
  RcedaEngine engine(&db, chain.environment());
  ASSERT_TRUE(engine.AddRulesFromText(R"(
    CREATE RULE anyloc, generic location rule
    ON observation(r, o, t)
    IF true
    DO UPDATE OBJECTLOCATION SET tend = t WHERE object_epc = o AND
       tend = "UC";
       INSERT INTO OBJECTLOCATION VALUES (o, r_location, t, "UC")
  )").ok());
  ASSERT_TRUE(engine.Compile().ok());
  const std::string& object = chain.items()[0];
  ASSERT_TRUE(engine
                  .Process({chain.DockReader(0), object, 10 * kSecond})
                  .ok());
  ASSERT_TRUE(engine
                  .Process({chain.DockReader(1), object, 90 * kSecond})
                  .ok());
  ASSERT_TRUE(engine.Flush().ok());
  Result<store::ExecResult> rows = store::ExecuteSql(
      "SELECT loc_id, tend FROM OBJECTLOCATION ORDER BY tstart", &db);
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->rows.size(), 2u);
  EXPECT_EQ(rows->rows[0][0].AsString(), "loc_dock_0");
  EXPECT_EQ(rows->rows[0][1].AsTime(), 90 * kSecond);  // Closed by hop 2.
  EXPECT_EQ(rows->rows[1][0].AsString(), "loc_dock_1");
  EXPECT_TRUE(rows->rows[1][1].is_uc());
}

TEST_F(PaperRulesTest, MultiReaderGroupDuplicateFiltering) {
  // Paper §3.1: "we can filter duplicates from multiple readers (e.g.,
  // r1 and r2), by defining a reader group containing these readers."
  store::Database db;
  ASSERT_TRUE(db.InstallRfidSchema().ok());
  epc::ReaderRegistry readers;
  readers.RegisterReader("rA", "g_door", "door");
  readers.RegisterReader("rB", "g_door", "door");
  RcedaEngine engine(&db, events::Environment{nullptr, &readers});
  int duplicates = 0;
  engine.RegisterProcedure(
      "send duplicate msg",
      [&](const RuleFiring&, const std::string&) { ++duplicates; });
  ASSERT_TRUE(engine.AddRulesFromText(R"(
    CREATE RULE gdup, group duplicate rule
    ON WITHIN(observation(ra, o, t1), group(ra) = "g_door";
              observation(rb, o, t2), group(rb) = "g_door", 5sec)
    IF true
    DO send duplicate msg
  )").ok());
  ASSERT_TRUE(engine.Compile().ok());
  // Same object read by the two overlapping readers 1s apart: duplicate.
  ASSERT_TRUE(engine.Process({"rA", "obj1", 0}).ok());
  ASSERT_TRUE(engine.Process({"rB", "obj1", 1 * kSecond}).ok());
  // Different objects: not duplicates.
  ASSERT_TRUE(engine.Process({"rA", "obj2", 10 * kSecond}).ok());
  ASSERT_TRUE(engine.Process({"rB", "obj3", 11 * kSecond}).ok());
  ASSERT_TRUE(engine.Flush().ok());
  EXPECT_EQ(duplicates, 1);
}

TEST_F(PaperRulesTest, FullMixedStreamRunsCleanly) {
  std::vector<Observation> stream = chain_->GenerateStream(5000);
  ASSERT_GE(stream.size(), 4000u);
  Run(stream);
  const engine::EngineStats& stats = engine_->stats();
  EXPECT_EQ(stats.detector.observations, stream.size());
  // Every rule family did real work on the mixed stream.
  EXPECT_GT(engine_->FiredCount("r3"), 0u);
  EXPECT_GT(engine_->FiredCount("r4"), 0u);
  EXPECT_GT(CountRows("SELECT * FROM OBJECTLOCATION"), 0u);
  EXPECT_GT(CountRows("SELECT * FROM OBJECTCONTAINMENT"), 0u);
  EXPECT_TRUE(engine_->first_deferred_error().ok())
      << engine_->first_deferred_error();
  // Buffers stay bounded thanks to expiry GC.
  EXPECT_LT(engine_->TotalBufferedEntries(), 2000u);
}

}  // namespace
}  // namespace rfidcep
