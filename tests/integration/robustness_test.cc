// Stream-robustness and multi-site integration: jittered (out-of-order)
// streams under the tolerance flag, site isolation of generated rules,
// deterministic replays, and long-stream memory bounds.

#include <algorithm>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "sim/supply_chain.h"
#include "sim/trace.h"

namespace rfidcep {
namespace {

using engine::EngineOptions;
using engine::RcedaEngine;
using events::Observation;

// Swaps random adjacent-ish pairs to emulate reader-to-middleware jitter.
std::vector<Observation> Jitter(std::vector<Observation> stream,
                                uint64_t seed, int swaps) {
  Prng prng(seed);
  for (int i = 0; i < swaps; ++i) {
    size_t a = static_cast<size_t>(
        prng.UniformInt(0, static_cast<int64_t>(stream.size()) - 2));
    std::swap(stream[a], stream[a + 1]);
  }
  return stream;
}

TEST(RobustnessTest, JitteredStreamSurvivesWithToleranceFlag) {
  sim::SupplyChainConfig config;
  config.seed = 31;
  sim::SupplyChain chain(config);
  std::vector<Observation> stream =
      Jitter(chain.GenerateStream(5000), 77, 500);

  EngineOptions options;
  options.detector.tolerate_out_of_order = true;
  store::Database db;
  ASSERT_TRUE(db.InstallRfidSchema().ok());
  RcedaEngine engine(&db, chain.environment(), options);
  ASSERT_TRUE(engine.AddRulesFromText(chain.PaperRuleProgram()).ok());
  ASSERT_TRUE(engine.Compile().ok());
  for (const Observation& obs : stream) {
    ASSERT_TRUE(engine.Process(obs).ok());
  }
  ASSERT_TRUE(engine.Flush().ok());
  const engine::EngineStats& stats = engine.stats();
  EXPECT_GT(stats.detector.out_of_order_dropped, 0u);
  EXPECT_EQ(stats.detector.observations + stats.detector.out_of_order_dropped,
            stream.size());
  EXPECT_GT(stats.rules_fired, 0u);
}

TEST(RobustnessTest, GeneratedRulesAreSiteIsolated) {
  // Rules generated for sites 1..2 must not fire on site-0-only traffic
  // (except the site-agnostic duplicate family).
  sim::SupplyChainConfig config;
  config.seed = 8;
  config.num_sites = 3;
  sim::SupplyChain chain(config);

  // Site-0 dock traffic only.
  std::vector<Observation> stream;
  for (int i = 0; i < 500; ++i) {
    stream.push_back(Observation{chain.DockReader(0),
                                 chain.items()[i % chain.items().size()],
                                 static_cast<TimePoint>(i) * kSecond});
  }

  store::Database db;
  ASSERT_TRUE(db.InstallRfidSchema().ok());
  RcedaEngine engine(&db, chain.environment());
  ASSERT_TRUE(engine.AddRulesFromText(chain.GeneratedRuleProgram(15)).ok());
  ASSERT_TRUE(engine.Compile().ok());
  for (const Observation& obs : stream) {
    ASSERT_TRUE(engine.Process(obs).ok());
  }
  ASSERT_TRUE(engine.Flush().ok());

  for (size_t i = 0; i < engine.num_rules(); ++i) {
    const rules::Rule& rule = engine.rule(i);
    uint64_t fired = engine.FiredCount(rule.id);
    bool site0_location_rule =
        rule.name.find("location") != std::string::npos &&
        rule.id == "gen12";  // gen12: location family (12%5==2), site 0 (12%3==0).
    bool duplicate_family =
        rule.name.find("duplicate") != std::string::npos;
    if (site0_location_rule) {
      EXPECT_GT(fired, 0u) << rule.id;
    } else if (!duplicate_family) {
      EXPECT_EQ(fired, 0u) << rule.id << " (" << rule.name << ")";
    }
  }
}

TEST(RobustnessTest, TraceReplayIsBitIdentical) {
  sim::SupplyChainConfig config;
  config.seed = 64;
  sim::SupplyChain chain(config);
  std::vector<Observation> stream = chain.GenerateStream(3000);
  // Round-trip the stream through the CSV trace format.
  Result<std::vector<Observation>> replay =
      sim::TraceFromCsv(sim::TraceToCsv(stream));
  ASSERT_TRUE(replay.ok());

  auto run = [&](const std::vector<Observation>& s) {
    store::Database db;
    EXPECT_TRUE(db.InstallRfidSchema().ok());
    RcedaEngine engine(&db, chain.environment());
    EXPECT_TRUE(engine.AddRulesFromText(chain.PaperRuleProgram()).ok());
    EXPECT_TRUE(engine.Compile().ok());
    for (const Observation& obs : s) {
      EXPECT_TRUE(engine.Process(obs).ok());
    }
    EXPECT_TRUE(engine.Flush().ok());
    return std::make_tuple(engine.stats().rules_fired,
                           engine.stats().detector.instances_produced,
                           engine.stats().detector.pseudo_fired);
  };
  EXPECT_EQ(run(stream), run(*replay));
}

TEST(RobustnessTest, LongStreamMemoryStaysBounded) {
  sim::SupplyChainConfig config;
  config.seed = 12;
  sim::SupplyChain chain(config);
  std::vector<Observation> stream = chain.GenerateStream(30000);
  EngineOptions options;
  options.execute_actions = false;
  RcedaEngine engine(nullptr, chain.environment(), options);
  ASSERT_TRUE(engine.AddRulesFromText(chain.PaperRuleProgram()).ok());
  ASSERT_TRUE(engine.Compile().ok());
  size_t peak = 0;
  for (size_t i = 0; i < stream.size(); ++i) {
    ASSERT_TRUE(engine.Process(stream[i]).ok());
    if (i % 1000 == 0) {
      peak = std::max(peak, engine.TotalBufferedEntries());
    }
  }
  ASSERT_TRUE(engine.Flush().ok());
  // Buffers are bounded by the rules' windows (seconds) times the arrival
  // rate — far below the stream length.
  EXPECT_LT(peak, 15000u);
  EXPECT_GT(peak, 0u);
}

TEST(RobustnessTest, ShippingRouteBuildsFullLocationHistories) {
  // Objects travel warehouse -> dock -> shipping -> retail; the generic
  // location rule (with the derived r_location binding) must leave each
  // object with a complete, abutting validity-period chain.
  sim::SupplyChainConfig config;
  config.num_sites = 1;
  sim::SupplyChain chain(config);
  epc::ReaderRegistry readers;
  std::vector<std::string> route = {"r_wh", "r_dock", "r_ship", "r_retail"};
  for (const std::string& reader : route) {
    readers.RegisterReader(reader, "g_route", "loc_" + reader);
  }
  sim::RouteConfig rc;
  rc.route_readers = route;
  Prng prng(5);
  std::vector<std::string> travelers(chain.items().begin(),
                                     chain.items().begin() + 20);
  std::vector<Observation> stream =
      sim::GenerateRoute(rc, travelers, &prng);
  ASSERT_EQ(stream.size(), travelers.size() * route.size());

  store::Database db;
  ASSERT_TRUE(db.InstallRfidSchema().ok());
  engine::RcedaEngine engine(&db,
                             events::Environment{nullptr, &readers});
  ASSERT_TRUE(engine.AddRulesFromText(R"(
    CREATE RULE route, route location rule
    ON observation(r, o, t)
    IF true
    DO UPDATE OBJECTLOCATION SET tend = t WHERE object_epc = o AND
       tend = "UC";
       INSERT INTO OBJECTLOCATION VALUES (o, r_location, t, "UC")
  )").ok());
  ASSERT_TRUE(engine.Compile().ok());
  for (const Observation& obs : stream) {
    ASSERT_TRUE(engine.Process(obs).ok());
  }
  ASSERT_TRUE(engine.Flush().ok());

  for (const std::string& object : travelers) {
    Result<store::ExecResult> rows = store::ExecuteSql(
        "SELECT loc_id, tstart, tend FROM OBJECTLOCATION WHERE "
        "object_epc = '" + object + "' ORDER BY tstart",
        &db);
    ASSERT_TRUE(rows.ok());
    ASSERT_EQ(rows->rows.size(), route.size()) << object;
    for (size_t hop = 0; hop < route.size(); ++hop) {
      EXPECT_EQ(rows->rows[hop][0].AsString(), "loc_" + route[hop]);
      if (hop + 1 < route.size()) {
        // Each period closes exactly when the next opens.
        EXPECT_TRUE(rows->rows[hop][2].EqualsSql(rows->rows[hop + 1][1]));
      } else {
        EXPECT_TRUE(rows->rows[hop][2].is_uc());
      }
    }
  }
}

TEST(RobustnessTest, DebugReportListsNodesAndRules) {
  sim::SupplyChain chain(sim::SupplyChainConfig{});
  RcedaEngine engine(nullptr, chain.environment());
  ASSERT_TRUE(engine.AddRulesFromText(chain.PaperRuleProgram()).ok());
  ASSERT_TRUE(engine.Compile().ok());
  ASSERT_TRUE(
      engine.Process(Observation{chain.DockReader(0), "o", kSecond}).ok());
  std::string report = engine.DebugReport();
  EXPECT_NE(report.find("clock="), std::string::npos);
  EXPECT_NE(report.find("rule r1 fired="), std::string::npos);
  EXPECT_NE(report.find("mixed"), std::string::npos);  // Rule 5's AND node.
  EXPECT_NE(report.find("produced="), std::string::npos);
}

}  // namespace
}  // namespace rfidcep
