#include "common/time.h"

#include <gtest/gtest.h>

namespace rfidcep {
namespace {

TEST(TimeTest, UnitConstants) {
  EXPECT_EQ(kMillisecond, 1000);
  EXPECT_EQ(kSecond, 1000 * 1000);
  EXPECT_EQ(kMinute, 60 * kSecond);
  EXPECT_EQ(kHour, 60 * kMinute);
}

TEST(TimeTest, FormatTimePoint) {
  EXPECT_EQ(FormatTimePoint(0), "0.000000s");
  EXPECT_EQ(FormatTimePoint(12 * kSecond + 300 * kMillisecond), "12.300000s");
  EXPECT_EQ(FormatTimePoint(-2 * kSecond), "-2.000000s");
  EXPECT_EQ(FormatTimePoint(kTimeInfinity), "inf");
}

TEST(TimeTest, FormatDuration) {
  EXPECT_EQ(FormatDuration(5 * kSecond), "5sec");
  EXPECT_EQ(FormatDuration(100 * kMillisecond), "100msec");
  EXPECT_EQ(FormatDuration(10 * kMinute), "10min");
  EXPECT_EQ(FormatDuration(2 * kHour), "2hour");
  EXPECT_EQ(FormatDuration(7), "7usec");
  EXPECT_EQ(FormatDuration(0), "0sec");
  EXPECT_EQ(FormatDuration(kDurationInfinity), "inf");
  EXPECT_EQ(FormatDuration(-5 * kSecond), "-5sec");
}

TEST(TimeTest, AddSaturating) {
  EXPECT_EQ(AddSaturating(10, 5), 15);
  EXPECT_EQ(AddSaturating(10, kDurationInfinity), kTimeInfinity);
  EXPECT_EQ(AddSaturating(kTimeInfinity - 1, 2), kTimeInfinity);
}

}  // namespace
}  // namespace rfidcep
