#include "common/spsc_ring.h"

#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace rfidcep::common {
namespace {

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
  EXPECT_EQ(SpscRing<int>(1024).capacity(), 1024u);
}

TEST(SpscRingTest, PushPopFifo) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.TryPush(int(i)));
  EXPECT_FALSE(ring.TryPush(99));  // Full.
  EXPECT_EQ(ring.size(), 4u);
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.TryPop(&out));  // Empty.
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRingTest, WrapsAroundManyTimes) {
  SpscRing<int> ring(4);
  int out = -1;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(ring.TryPush(int(i)));
    EXPECT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, i);
  }
}

TEST(SpscRingTest, FailedPushLeavesItemIntact) {
  SpscRing<std::unique_ptr<int>> ring(2);
  EXPECT_TRUE(ring.TryPush(std::make_unique<int>(1)));
  EXPECT_TRUE(ring.TryPush(std::make_unique<int>(2)));
  auto item = std::make_unique<int>(3);
  EXPECT_FALSE(ring.TryPush(std::move(item)));
  ASSERT_NE(item, nullptr);  // Not consumed by the failed push.
  EXPECT_EQ(*item, 3);
}

TEST(SpscRingTest, MoveOnlyPayload) {
  SpscRing<std::unique_ptr<int>> ring(8);
  EXPECT_TRUE(ring.TryPush(std::make_unique<int>(7)));
  std::unique_ptr<int> out;
  EXPECT_TRUE(ring.TryPop(&out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 7);
}

TEST(SpscRingTest, ConcurrentProducerConsumer) {
  constexpr int kItems = 200000;
  SpscRing<int> ring(64);
  std::vector<int> received;
  received.reserve(kItems);

  std::thread consumer([&] {
    int out = -1;
    while (static_cast<int>(received.size()) < kItems) {
      if (ring.TryPop(&out)) {
        received.push_back(out);
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (int i = 0; i < kItems; ++i) {
    while (!ring.TryPush(int(i))) std::this_thread::yield();
  }
  consumer.join();

  ASSERT_EQ(received.size(), static_cast<size_t>(kItems));
  for (int i = 0; i < kItems; ++i) {
    ASSERT_EQ(received[i], i) << "out-of-order at " << i;
  }
}

}  // namespace
}  // namespace rfidcep::common
