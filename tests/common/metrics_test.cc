// Unit tests for the lock-free metrics primitives (common/metrics.h):
// histogram bucketing, snapshot merge, quantiles, registry name/kind
// resolution, Prometheus exposition, and multi-threaded updates (the
// concurrency tests carry the TSAN ctest label via this binary).

#include "common/metrics.h"

#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace rfidcep::common {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAddUpdateMax) {
  Gauge g;
  g.Set(7);
  EXPECT_EQ(g.value(), 7);
  g.Add(-10);
  EXPECT_EQ(g.value(), -3);
  g.UpdateMax(5);
  EXPECT_EQ(g.value(), 5);
  g.UpdateMax(2);  // Lower values never win.
  EXPECT_EQ(g.value(), 5);
}

TEST(HistogramTest, BucketingAtBoundEdges) {
  Histogram h({10, 100, 1000});
  h.Record(0);     // <= 10.
  h.Record(10);    // Bounds are inclusive: still the first bucket.
  h.Record(11);    // <= 100.
  h.Record(100);   // <= 100.
  h.Record(1000);  // <= 1000.
  h.Record(1001);  // Overflow.

  HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);  // 3 bounds + overflow.
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 2u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 6u);
  EXPECT_EQ(snap.sum, 0u + 10 + 11 + 100 + 1000 + 1001);
}

TEST(HistogramTest, ResetZeroesBucketsAndTotals) {
  Histogram h({5});
  h.Record(1);
  h.Record(100);
  h.Reset();
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0u);
  EXPECT_EQ(snap.counts[0], 0u);
  EXPECT_EQ(snap.counts[1], 0u);
}

TEST(HistogramSnapshotTest, MergeSumsBucketsCountAndSum) {
  Histogram a({10, 100});
  Histogram b({10, 100});
  a.Record(5);
  a.Record(500);
  b.Record(50);
  b.Record(50);

  HistogramSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.counts[0], 1u);
  EXPECT_EQ(merged.counts[1], 2u);
  EXPECT_EQ(merged.counts[2], 1u);
  EXPECT_EQ(merged.count, 4u);
  EXPECT_EQ(merged.sum, 5u + 500 + 50 + 50);
}

TEST(HistogramSnapshotTest, QuantileResolvesToBucketBound) {
  Histogram h({1, 2, 4, 8});
  for (int i = 0; i < 90; ++i) h.Record(1);
  for (int i = 0; i < 9; ++i) h.Record(4);
  h.Record(100);  // Overflow.

  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.Quantile(0.5), 1u);
  EXPECT_EQ(snap.Quantile(0.95), 4u);
  EXPECT_EQ(snap.Quantile(1.0), 8u);  // Overflow reports the last bound.
  EXPECT_EQ(HistogramSnapshot{}.Quantile(0.5), 0u);
}

TEST(HistogramTest, DefaultLatencyBoundsArePowersOfTwo) {
  const std::vector<uint64_t>& bounds = Histogram::DefaultLatencyBoundsUs();
  ASSERT_FALSE(bounds.empty());
  EXPECT_EQ(bounds.front(), 1u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_EQ(bounds[i], bounds[i - 1] * 2);
  }
}

TEST(MetricsRegistryTest, SameNameReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x_total");
  Counter* b = registry.GetCounter("x_total");
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsRegistryTest, KindMismatchReturnsNull) {
  MetricsRegistry registry;
  ASSERT_NE(registry.GetCounter("x"), nullptr);
  EXPECT_EQ(registry.GetGauge("x"), nullptr);
  EXPECT_EQ(registry.GetHistogram("x"), nullptr);
}

TEST(MetricsRegistryTest, ResetPreservesRegistrationAndPointers) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("c_total");
  Histogram* h = registry.GetHistogram("h_us", {1, 2});
  c->Increment(3);
  h->Record(1);
  registry.Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(registry.GetCounter("c_total"), c);
  EXPECT_EQ(registry.GetHistogram("h_us"), h);
}

TEST(MetricsRegistryTest, ExportTextCountersAndGauges) {
  MetricsRegistry registry;
  registry.GetCounter("b_total")->Increment(2);
  registry.GetGauge("a_depth")->Set(-1);
  // Sorted by name (std::map order).
  EXPECT_EQ(registry.ExportText(), "a_depth -1\nb_total 2\n");
}

TEST(MetricsRegistryTest, ExportTextHistogramCumulativeBuckets) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat_us", {1, 4});
  h->Record(1);
  h->Record(3);
  h->Record(9);
  EXPECT_EQ(registry.ExportText(),
            "lat_us_bucket{le=\"1\"} 1\n"
            "lat_us_bucket{le=\"4\"} 2\n"
            "lat_us_bucket{le=\"+Inf\"} 3\n"
            "lat_us_sum 13\n"
            "lat_us_count 3\n");
}

TEST(MetricsRegistryTest, ExportTextSplicesLeIntoExistingLabels) {
  MetricsRegistry registry;
  registry.GetHistogram("rule_us{rule=\"r1\"}", {8})->Record(2);
  EXPECT_EQ(registry.ExportText(),
            "rule_us_bucket{rule=\"r1\",le=\"8\"} 1\n"
            "rule_us_bucket{rule=\"r1\",le=\"+Inf\"} 1\n"
            "rule_us_sum{rule=\"r1\"} 2\n"
            "rule_us_count{rule=\"r1\"} 1\n");
}

// --- Concurrency (runs under the TSAN ctest label) -----------------------

TEST(MetricsConcurrencyTest, ParallelCounterIncrementsAreExact) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("hits_total");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kPerThread; ++i) c->Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c->value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsConcurrencyTest, ParallelHistogramRecordsAreExact) {
  Histogram h({1, 2, 4, 8, 16});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    expected_sum += static_cast<uint64_t>(t) * kPerThread;
  }
  EXPECT_EQ(snap.sum, expected_sum);
}

TEST(MetricsConcurrencyTest, ParallelGaugeUpdateMaxKeepsMaximum) {
  Gauge g;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g, t] {
      for (int i = 0; i < 10000; ++i) g.UpdateMax(t * 10000 + i);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(g.value(), (kThreads - 1) * 10000 + 9999);
}

TEST(MetricsConcurrencyTest, ParallelRegistrationIsRaceFree) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<Counter*> seen(kThreads, nullptr);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &seen, t] {
      // Everyone races to register the same name plus a private one;
      // the shared pointer must come back identical everywhere.
      Counter* shared = registry.GetCounter("shared_total");
      registry.GetCounter("private_" + std::to_string(t))->Increment();
      shared->Increment();
      seen[t] = shared;
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(seen[0]->value(), static_cast<uint64_t>(kThreads));
  EXPECT_EQ(registry.size(), 1u + kThreads);
}

}  // namespace
}  // namespace rfidcep::common
