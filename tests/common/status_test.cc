#include "common/status.h"

#include <gtest/gtest.h>

namespace rfidcep {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad epc");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad epc");
  EXPECT_EQ(status.ToString(), "invalid_argument: bad epc");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result = Status::NotFound("missing");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> result = std::make_unique<int>(7);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> value = std::move(result).value();
  EXPECT_EQ(*value, 7);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> DoublePositive(int x) {
  RFIDCEP_ASSIGN_OR_RETURN(int value, ParsePositive(x));
  return value * 2;
}

Status CheckPositive(int x) {
  RFIDCEP_RETURN_IF_ERROR(DoublePositive(x).status());
  return Status::Ok();
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = DoublePositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err = DoublePositive(-1);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(CheckPositive(3).ok());
  EXPECT_FALSE(CheckPositive(0).ok());
}

}  // namespace
}  // namespace rfidcep
