#include "common/strings.h"

#include <gtest/gtest.h>

namespace rfidcep {
namespace {

TEST(StringsTest, AsciiCase) {
  EXPECT_EQ(AsciiLower("AbC_1"), "abc_1");
  EXPECT_EQ(AsciiUpper("AbC_1"), "ABC_1");
  EXPECT_EQ(AsciiLower(""), "");
}

TEST(StringsTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("CREATE", "create"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abcd"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y  "), "x y");
  EXPECT_EQ(StripWhitespace("\t\n"), "");
  EXPECT_EQ(StripWhitespace("solid"), "solid");
}

TEST(StringsTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("urn:epc:id:sgtin:1.2.3", "urn:epc:id:"));
  EXPECT_FALSE(StartsWith("urn", "urn:epc"));
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, " "), "a b c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

}  // namespace
}  // namespace rfidcep
