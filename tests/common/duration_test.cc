#include "common/duration.h"

#include <gtest/gtest.h>

namespace rfidcep {
namespace {

TEST(DurationTest, ParsesPaperLiterals) {
  // Every duration literal appearing in the paper's rules.
  EXPECT_EQ(*ParseDuration("5sec"), 5 * kSecond);
  EXPECT_EQ(*ParseDuration("0.1sec"), 100 * kMillisecond);
  EXPECT_EQ(*ParseDuration("1sec"), kSecond);
  EXPECT_EQ(*ParseDuration("10sec"), 10 * kSecond);
  EXPECT_EQ(*ParseDuration("20sec"), 20 * kSecond);
  EXPECT_EQ(*ParseDuration("30sec"), 30 * kSecond);
  EXPECT_EQ(*ParseDuration("100sec"), 100 * kSecond);
  EXPECT_EQ(*ParseDuration("10min"), 10 * kMinute);
}

TEST(DurationTest, ParsesAllUnits) {
  EXPECT_EQ(*ParseDuration("7usec"), 7);
  EXPECT_EQ(*ParseDuration("3msec"), 3 * kMillisecond);
  EXPECT_EQ(*ParseDuration("2hour"), 2 * kHour);
  EXPECT_EQ(*ParseDuration("4min"), 4 * kMinute);
}

TEST(DurationTest, UnitsAreCaseInsensitive) {
  EXPECT_EQ(*ParseDuration("5SEC"), 5 * kSecond);
  EXPECT_EQ(*ParseDuration("5Sec"), 5 * kSecond);
  EXPECT_EQ(*ParseDuration("10MIN"), 10 * kMinute);
}

TEST(DurationTest, AllowsWhitespace) {
  EXPECT_EQ(*ParseDuration(" 10 sec "), 10 * kSecond);
}

TEST(DurationTest, FractionalValues) {
  EXPECT_EQ(*ParseDuration("0.5sec"), 500 * kMillisecond);
  EXPECT_EQ(*ParseDuration("2.5sec"), 2500 * kMillisecond);
  EXPECT_EQ(*ParseDuration("0.25min"), 15 * kSecond);
  EXPECT_EQ(*ParseDuration("1.5msec"), 1500);
  EXPECT_EQ(*ParseDuration("0.001sec"), kMillisecond);
}

TEST(DurationTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseDuration("").ok());
  EXPECT_FALSE(ParseDuration("sec").ok());
  EXPECT_FALSE(ParseDuration("5").ok());
  EXPECT_FALSE(ParseDuration("5lightyears").ok());
  EXPECT_FALSE(ParseDuration("5sec extra").ok());
  EXPECT_FALSE(ParseDuration("1.2.3sec").ok());
}

TEST(DurationTest, RejectsOverflow) {
  EXPECT_FALSE(ParseDuration("99999999999999999999hour").ok());
  EXPECT_FALSE(ParseDuration("9223372036854776hour").ok());
}

TEST(DurationTest, RoundTripsWithFormatDuration) {
  for (Duration d : {5 * kSecond, 100 * kMillisecond, 10 * kMinute, 2 * kHour,
                     7 * kMicrosecond}) {
    EXPECT_EQ(*ParseDuration(FormatDuration(d)), d) << FormatDuration(d);
  }
}

}  // namespace
}  // namespace rfidcep
