// Regression test for the sharded-pipeline determinism contract: the
// Fig. 9 supply-chain trace must produce identical per-rule fired
// counts, engine stats, and database contents for shards in {1, 2, 4}.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "sim/supply_chain.h"
#include "store/database.h"

namespace rfidcep::engine {
namespace {

constexpr int kNumRules = 25;
constexpr size_t kNumEvents = 20000;
constexpr size_t kBatchSize = 512;

struct TraceOutcome {
  std::vector<uint64_t> fired;  // Per generated rule, gen0..genN.
  uint64_t rules_fired = 0;
  uint64_t rule_matches = 0;
  uint64_t observations = 0;
  uint64_t out_of_order_dropped = 0;
  uint64_t condition_rejects = 0;
  uint64_t sql_actions_executed = 0;
  uint64_t procedures_invoked = 0;
  size_t observation_rows = 0;
  size_t location_rows = 0;
  size_t containment_rows = 0;

  bool operator==(const TraceOutcome&) const = default;
};

class ShardedDeterminismTest : public ::testing::Test {
 protected:
  ShardedDeterminismTest() : chain_(MakeConfig()) {
    program_ = chain_.GeneratedRuleProgram(kNumRules);
    stream_ = chain_.GenerateStream(kNumEvents);
  }

  static sim::SupplyChainConfig MakeConfig() {
    sim::SupplyChainConfig config;
    config.seed = 20060327;
    config.num_sites = 5;
    return config;
  }

  TraceOutcome RunTrace(int shards) {
    store::Database db;
    EXPECT_TRUE(db.InstallRfidSchema().ok());
    EngineOptions options;
    options.shards = shards;
    options.execute_actions = true;
    options.detector.tolerate_out_of_order = true;
    RcedaEngine engine(&db, chain_.environment(), options);
    EXPECT_TRUE(engine.AddRulesFromText(program_).ok());
    EXPECT_TRUE(engine.Compile().ok());

    for (size_t begin = 0; begin < stream_.size(); begin += kBatchSize) {
      size_t end = std::min(begin + kBatchSize, stream_.size());
      std::vector<events::Observation> batch(stream_.begin() + begin,
                                             stream_.begin() + end);
      EXPECT_TRUE(engine.ProcessAll(batch).ok());
    }
    EXPECT_TRUE(engine.Flush().ok());

    TraceOutcome outcome;
    for (int i = 0; i < kNumRules; ++i) {
      outcome.fired.push_back(engine.FiredCount("gen" + std::to_string(i)));
    }
    const EngineStats& stats = engine.stats();
    outcome.rules_fired = stats.rules_fired;
    outcome.rule_matches = stats.detector.rule_matches;
    outcome.observations = stats.detector.observations;
    outcome.out_of_order_dropped = stats.detector.out_of_order_dropped;
    outcome.condition_rejects = stats.condition_rejects;
    outcome.sql_actions_executed = stats.sql_actions_executed;
    outcome.procedures_invoked = stats.procedures_invoked;
    outcome.observation_rows = db.GetTable("OBSERVATION")->size();
    outcome.location_rows = db.GetTable("OBJECTLOCATION")->size();
    outcome.containment_rows = db.GetTable("OBJECTCONTAINMENT")->size();
    return outcome;
  }

  sim::SupplyChain chain_;
  std::string program_;
  std::vector<events::Observation> stream_;
};

TEST_F(ShardedDeterminismTest, ShardCountsAgreeWithSerial) {
  TraceOutcome serial = RunTrace(1);
  ASSERT_EQ(serial.observations + serial.out_of_order_dropped,
            stream_.size());
  // The trace must actually exercise the pipeline, not vacuously agree.
  ASSERT_GT(serial.rules_fired, 0u);
  ASSERT_GT(serial.sql_actions_executed, 0u);

  for (int shards : {2, 4}) {
    TraceOutcome sharded = RunTrace(shards);
    EXPECT_EQ(sharded.fired, serial.fired) << "shards=" << shards;
    EXPECT_EQ(sharded.rules_fired, serial.rules_fired)
        << "shards=" << shards;
    EXPECT_EQ(sharded.rule_matches, serial.rule_matches)
        << "shards=" << shards;
    EXPECT_EQ(sharded.observations, serial.observations)
        << "shards=" << shards;
    EXPECT_EQ(sharded.out_of_order_dropped, serial.out_of_order_dropped)
        << "shards=" << shards;
    EXPECT_EQ(sharded.condition_rejects, serial.condition_rejects)
        << "shards=" << shards;
    EXPECT_EQ(sharded.sql_actions_executed, serial.sql_actions_executed)
        << "shards=" << shards;
    EXPECT_EQ(sharded.procedures_invoked, serial.procedures_invoked)
        << "shards=" << shards;
    EXPECT_EQ(sharded.observation_rows, serial.observation_rows)
        << "shards=" << shards;
    EXPECT_EQ(sharded.location_rows, serial.location_rows)
        << "shards=" << shards;
    EXPECT_EQ(sharded.containment_rows, serial.containment_rows)
        << "shards=" << shards;
  }
}

TEST_F(ShardedDeterminismTest, RepeatedRunsAreStable) {
  TraceOutcome first = RunTrace(4);
  TraceOutcome second = RunTrace(4);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace rfidcep::engine
