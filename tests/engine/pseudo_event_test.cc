// Non-spontaneous event detection via pseudo events: the paper's Fig. 8
// walkthrough, infield/outfield filtering (Rule 2), and asset monitoring
// (Rule 5).

#include <gtest/gtest.h>

#include "tests/engine/test_util.h"

namespace rfidcep::engine {
namespace {

using ::rfidcep::engine::testing::EngineHarness;

constexpr char kFig8Rule[] = R"(
  CREATE RULE fig8, negated conjunction
  ON WITHIN(observation("rE1", o1, t1) AND NOT observation("rE2", o2, t2),
            10sec)
  IF true
  DO send alarm
)";

TEST(PseudoEventTest, Fig8WalkthroughExact) {
  // History {e2@2, e1@10, e1@20}: e1@10 dies (e2@2 is within its past
  // window); e1@20 survives and is confirmed by the pseudo event at t=30.
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(kFig8Rule).ok());
  ASSERT_TRUE(h.ObserveAt("rE2", "x", 2).ok());
  ASSERT_TRUE(h.ObserveAt("rE1", "y", 10).ok());
  ASSERT_TRUE(h.ObserveAt("rE1", "y", 20).ok());
  EXPECT_TRUE(h.matches.empty());  // Nothing confirmed yet.
  ASSERT_TRUE(h.engine->Flush().ok());
  ASSERT_EQ(h.matches.size(), 1u);
  // Fig. 8h: the detected instance spans [20, 30].
  EXPECT_EQ(h.matches[0].t_begin, 20 * kSecond);
  EXPECT_EQ(h.matches[0].t_end, 30 * kSecond);
  EXPECT_GE(h.engine->stats().detector.pseudo_fired, 1u);
}

TEST(PseudoEventTest, Fig8LaterNegativeKillsAnchor) {
  // e1@10 looks clean, but e2@15 lands inside [10, 20] and kills it.
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(kFig8Rule).ok());
  ASSERT_TRUE(h.ObserveAt("rE1", "y", 10).ok());
  ASSERT_TRUE(h.ObserveAt("rE2", "x", 15).ok());
  ASSERT_TRUE(h.engine->Flush().ok());
  EXPECT_TRUE(h.matches.empty());
}

TEST(PseudoEventTest, NegativeAtExactWindowEdgeKills) {
  // e2 exactly at t_begin(e1) + tau still falsifies (observations at a
  // pseudo event's execution time process first).
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(kFig8Rule).ok());
  ASSERT_TRUE(h.ObserveAt("rE1", "y", 10).ok());
  ASSERT_TRUE(h.ObserveAt("rE2", "x", 20).ok());
  ASSERT_TRUE(h.engine->Flush().ok());
  EXPECT_TRUE(h.matches.empty());
}

TEST(PseudoEventTest, IndependentAnchorsConfirmIndependently) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(kFig8Rule).ok());
  ASSERT_TRUE(h.ObserveAt("rE1", "a", 0).ok());
  ASSERT_TRUE(h.ObserveAt("rE1", "b", 50).ok());
  ASSERT_TRUE(h.ObserveAt("rE2", "x", 55).ok());  // Kills b only.
  ASSERT_TRUE(h.engine->Flush().ok());
  ASSERT_EQ(h.matches.size(), 1u);
  EXPECT_EQ(h.matches[0].t_begin, 0);
}

TEST(AssetMonitoringTest, PaperRule5AlertsOnlyUnescortedLaptops) {
  EngineHarness h;
  h.catalog.RegisterExact("laptop-1", "laptop");
  h.catalog.RegisterExact("laptop-2", "laptop");
  h.catalog.RegisterExact("badge-1", "superuser");
  ASSERT_TRUE(h.AddRules(R"(
    DEFINE E4 = observation("r4", o4, t4), type(o4) = "laptop"
    DEFINE E5 = observation("r4", o5, t5), type(o5) = "superuser"
    CREATE RULE r5, asset monitoring rule
    ON WITHIN(E4 AND NOT E5, 5sec)
    IF true
    DO send alarm
  )").ok());
  // Escorted: badge 2s after laptop.
  ASSERT_TRUE(h.ObserveAt("r4", "laptop-1", 10).ok());
  ASSERT_TRUE(h.ObserveAt("r4", "badge-1", 12).ok());
  // Unescorted laptop at t=100.
  ASSERT_TRUE(h.ObserveAt("r4", "laptop-2", 100).ok());
  ASSERT_TRUE(h.engine->Flush().ok());
  ASSERT_EQ(h.matches.size(), 1u);
  EXPECT_EQ(h.matches[0].t_begin, 100 * kSecond);
}

TEST(AssetMonitoringTest, BadgeBeforeLaptopAlsoEscorts) {
  // The conjunction window is symmetric: a badge up to tau before the
  // laptop also suppresses the alert.
  EngineHarness h;
  h.catalog.RegisterExact("laptop-1", "laptop");
  h.catalog.RegisterExact("badge-1", "superuser");
  ASSERT_TRUE(h.AddRules(R"(
    DEFINE E4 = observation("r4", o4, t4), type(o4) = "laptop"
    DEFINE E5 = observation("r4", o5, t5), type(o5) = "superuser"
    CREATE RULE r5, asset monitoring rule
    ON WITHIN(E4 AND NOT E5, 5sec)
    IF true
    DO send alarm
  )").ok());
  ASSERT_TRUE(h.ObserveAt("r4", "badge-1", 8).ok());
  ASSERT_TRUE(h.ObserveAt("r4", "laptop-1", 10).ok());
  ASSERT_TRUE(h.engine->Flush().ok());
  EXPECT_TRUE(h.matches.empty());
}

// --- Infield / outfield filtering (paper Rule 2) ------------------------------

constexpr char kInfieldRule[] = R"(
  CREATE RULE infield, infield filtering
  ON WITHIN(NOT observation(r, o, t1); observation(r, o, t2), 30sec)
  IF true
  DO INSERT INTO OBSERVATION VALUES (r, o, t2)
)";

TEST(InfieldTest, FirstSightingIsInfield) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(kInfieldRule).ok());
  // Shelf bulk-reads o every 30s; the first read is the infield event.
  ASSERT_TRUE(h.ObserveAt("shelf", "o1", 0).ok());
  EXPECT_EQ(h.matches.size(), 1u);
  ASSERT_TRUE(h.ObserveAt("shelf", "o1", 30).ok());
  ASSERT_TRUE(h.ObserveAt("shelf", "o1", 60).ok());
  EXPECT_EQ(h.matches.size(), 1u);  // Still only the first.
  // The object leaves for > 30s, then returns: a new infield event.
  ASSERT_TRUE(h.ObserveAt("shelf", "o1", 200).ok());
  EXPECT_EQ(h.matches.size(), 2u);
}

TEST(InfieldTest, PerObjectWindows) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(kInfieldRule).ok());
  ASSERT_TRUE(h.ObserveAt("shelf", "o1", 0).ok());
  ASSERT_TRUE(h.ObserveAt("shelf", "o2", 10).ok());
  EXPECT_EQ(h.matches.size(), 2u);  // Both are first sightings.
  ASSERT_TRUE(h.ObserveAt("shelf", "o1", 30).ok());
  ASSERT_TRUE(h.ObserveAt("shelf", "o2", 40).ok());
  EXPECT_EQ(h.matches.size(), 2u);  // Neither is new.
}

TEST(InfieldTest, SqlActionInsertsIntoObservationTable) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(kInfieldRule).ok());
  ASSERT_TRUE(h.ObserveAt("shelf", "o1", 0).ok());
  ASSERT_TRUE(h.ObserveAt("shelf", "o1", 30).ok());
  const store::Table* table = h.db.GetTable("OBSERVATION");
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->size(), 1u);  // One infield row, not two raw reads.
}

constexpr char kOutfieldRule[] = R"(
  CREATE RULE outfield, outfield filtering
  ON WITHIN(observation(r, o, t1); NOT observation(r, o, t2), 30sec)
  IF true
  DO send outfield msg
)";

TEST(OutfieldTest, LastSightingConfirmedAtExpiry) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(kOutfieldRule).ok());
  ASSERT_TRUE(h.ObserveAt("shelf", "o1", 0).ok());
  ASSERT_TRUE(h.ObserveAt("shelf", "o1", 25).ok());   // Still present.
  ASSERT_TRUE(h.ObserveAt("shelf", "other", 100).ok());  // Clock advances.
  // o1 unseen since t=25; its outfield confirms at t=55.
  ASSERT_EQ(h.matches.size(), 1u);
  EXPECT_EQ(h.matches[0].t_begin, 25 * kSecond);
  EXPECT_EQ(h.matches[0].t_end, 55 * kSecond);
}

TEST(OutfieldTest, ContinuedPresenceSuppressesOutfield) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(kOutfieldRule).ok());
  for (int i = 0; i <= 4; ++i) {
    ASSERT_TRUE(h.ObserveAt("shelf", "o1", i * 20.0).ok());
  }
  // Reads every 20s < 30s window: only the final departure fires.
  ASSERT_TRUE(h.engine->Flush().ok());
  ASSERT_EQ(h.matches.size(), 1u);
  EXPECT_EQ(h.matches[0].t_begin, 80 * kSecond);
}

TEST(PseudoEventTest, StatsCountScheduledAndFired) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(kFig8Rule).ok());
  ASSERT_TRUE(h.ObserveAt("rE1", "y", 10).ok());
  ASSERT_TRUE(h.engine->Flush().ok());
  EXPECT_EQ(h.engine->stats().detector.pseudo_scheduled, 1u);
  EXPECT_EQ(h.engine->stats().detector.pseudo_fired, 1u);
}

}  // namespace
}  // namespace rfidcep::engine
