// Data-parallel partitioning: the rule-partitionability classifier
// (EventGraph::ClassifyRulePartition) over the paper's rule families,
// engagement of the data-partitioned pipeline (replicas + residual +
// silent rule-mode fallback), hash-routing balance, the serial replay
// contract, and the unrouted-observation diagnostics.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "engine/graph.h"
#include "engine/trace.h"
#include "rules/parser.h"
#include "tests/engine/test_util.h"

namespace rfidcep::engine {
namespace {

using Cls = EventGraph::RulePartitionClass;

EventGraph::RulePartition Classify(const std::string& program,
                                   size_t rule_index = 0) {
  Result<rules::RuleSet> set = rules::ParseRuleProgram(program);
  EXPECT_TRUE(set.ok()) << set.status().ToString();
  Result<EventGraph> graph = EventGraph::Build(set->rules);
  EXPECT_TRUE(graph.ok()) << graph.status().ToString();
  return graph->ClassifyRulePartition(rule_index);
}

// --- Classifier over the paper's rule families ------------------------------

TEST(PartitionClassifier, MisplacementTseqIsEpcKeyed) {
  // Fig. 8 misplaced-item shape: both legs observe the SAME object at
  // different shelves — every join correlates on the tag EPC.
  EventGraph::RulePartition p = Classify(
      "CREATE RULE misplace, paper ON WITHIN(TSEQ(observation(\"shelf1\", o, "
      "t1); observation(\"shelf2\", o, t2), 0sec, 5sec), 10sec) IF true DO "
      "act");
  EXPECT_EQ(p.cls, Cls::kEpcKeyed);
  EXPECT_EQ(p.key_var, "o");
}

TEST(PartitionClassifier, ShopliftingAndNotIsEpcKeyed) {
  // NOT-based shoplifting: the negated leaf also binds the same object
  // variable, so the NOT occurrence log partitions by EPC too.
  EventGraph::RulePartition p = Classify(
      "CREATE RULE shoplift, paper ON WITHIN((observation(\"shelf\", o, t1) "
      "AND NOT observation(\"checkout\", o, t2)), 10sec) IF true DO act");
  EXPECT_EQ(p.cls, Cls::kEpcKeyed);
  EXPECT_EQ(p.key_var, "o");
}

TEST(PartitionClassifier, ContainmentSeqPlusIsCrossObject) {
  // Aperiodic runs absorb instances across keys (a TSEQ+ run's closure
  // couples it to other nodes' pseudo events), so SEQ+ disqualifies even
  // a single-variable rule.
  EventGraph::RulePartition p = Classify(
      "CREATE RULE contain, paper ON WITHIN(TSEQ+(observation(\"belt\", o, "
      "t), 0sec, 2sec), 20sec) IF true DO act");
  EXPECT_EQ(p.cls, Cls::kCrossObject);
}

TEST(PartitionClassifier, CrossObjectAndIsCrossObject) {
  // Two distinct object variables: the match pairs observations of
  // DIFFERENT tags, whose state cannot live under one partition key.
  EventGraph::RulePartition p = Classify(
      "CREATE RULE pair, paper ON WITHIN((observation(\"dock\", o1, t1) AND "
      "observation(\"dock\", o2, t2)), 5sec) IF true DO act");
  EXPECT_EQ(p.cls, Cls::kCrossObject);
}

TEST(PartitionClassifier, SharedReaderVariableIsSiteKeyed) {
  // Both legs bind the same reader variable and distinct objects: joins
  // correlate on the reader site, not the tag.
  EventGraph::RulePartition p = Classify(
      "CREATE RULE site, paper ON WITHIN(SEQ(observation(r, o1, t1); "
      "observation(r, o2, t2)), 5sec) IF true DO act");
  EXPECT_EQ(p.cls, Cls::kSiteKeyed);
  EXPECT_EQ(p.key_var, "r");
}

TEST(PartitionClassifier, ObjectKeyWinsOverSiteKey) {
  // Shared object AND shared reader variables: either dimension would be
  // correct; the classifier reports the EPC key (the paper's common
  // case, and the dimension Create() prefers).
  EventGraph::RulePartition p = Classify(
      "CREATE RULE both, paper ON WITHIN(SEQ(observation(r, o, t1); "
      "observation(r, o, t2)), 5sec) IF true DO act");
  EXPECT_EQ(p.cls, Cls::kEpcKeyed);
  EXPECT_EQ(p.key_var, "o");
}

TEST(PartitionClassifier, SingleLeafRuleIsEpcKeyed) {
  EventGraph::RulePartition p = Classify(
      "CREATE RULE leaf, trivial ON WITHIN(observation(\"door\", o, t), "
      "2sec) IF true DO act");
  EXPECT_EQ(p.cls, Cls::kEpcKeyed);
  EXPECT_EQ(p.key_var, "o");
}

// --- Pipeline engagement ----------------------------------------------------

constexpr const char* kKeyedRules =
    "CREATE RULE misplace, keyed ON WITHIN(TSEQ(observation(\"shelf1\", o, "
    "t1); observation(\"shelf2\", o, t2), 0sec, 5sec), 10sec) IF true DO "
    "act\n"
    "CREATE RULE shoplift, keyed ON WITHIN((observation(\"shelf1\", o, t1) "
    "AND NOT observation(\"checkout\", o, t2)), 8sec) IF true DO act\n";

constexpr const char* kCrossRules =
    "CREATE RULE pair, cross ON WITHIN((observation(\"shelf1\", o1, t1) AND "
    "observation(\"shelf2\", o2, t2)), 5sec) IF true DO act\n";

EngineOptions DataOptions(int shards) {
  EngineOptions options;
  options.shards = shards;
  options.partition = PartitionMode::kData;
  return options;
}

TEST(DataPartitionedEngine, KeyedRulesEngageDataMode) {
  testing::EngineHarness h(DataOptions(2));
  ASSERT_TRUE(h.AddRules(kKeyedRules).ok());
  ASSERT_TRUE(h.engine->Compile().ok());
  EXPECT_TRUE(h.engine->data_partitioned());
  EXPECT_EQ(h.engine->num_shards(), 2);  // Replicas only, no residual.
}

TEST(DataPartitionedEngine, CrossObjectRulesAddResidualShard) {
  testing::EngineHarness h(DataOptions(2));
  ASSERT_TRUE(h.AddRules(std::string(kKeyedRules) + kCrossRules).ok());
  ASSERT_TRUE(h.engine->Compile().ok());
  EXPECT_TRUE(h.engine->data_partitioned());
  EXPECT_EQ(h.engine->num_shards(), 3);  // 2 replicas + 1 residual.
}

TEST(DataPartitionedEngine, AllCrossObjectFallsBackToRuleSharding) {
  testing::EngineHarness h(DataOptions(2));
  ASSERT_TRUE(h.AddRules(kCrossRules).ok());
  ASSERT_TRUE(h.engine->Compile().ok());
  EXPECT_FALSE(h.engine->data_partitioned());
}

// Streams shelf1 -> shelf2 movements for `objects` distinct EPCs with
// interleaved timestamps, plus checkout reads that veto shoplift matches
// for every third object.
std::vector<events::Observation> KeyedStream(int objects) {
  std::vector<events::Observation> out;
  TimePoint t = 0;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < objects; ++i) {
      std::string obj = "obj" + std::to_string(i);
      t += kSecond / 4;
      out.push_back({"shelf1", obj, t});
      if (i % 3 == 0) out.push_back({"checkout", obj, t + kSecond});
      out.push_back({"shelf2", obj, t + 2 * kSecond});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const events::Observation& a, const events::Observation& b) {
              return a.timestamp < b.timestamp;
            });
  return out;
}

std::vector<std::string> RunAndFormat(int shards, PartitionMode partition,
                                      const std::string& program,
                                      const std::vector<events::Observation>&
                                          stream) {
  EngineOptions options;
  options.shards = shards;
  options.partition = partition;
  testing::EngineHarness h(options);
  EXPECT_TRUE(h.AddRules(program).ok());
  EXPECT_TRUE(h.engine->Compile().ok());
  EXPECT_TRUE(h.engine->ProcessAll(stream).ok());
  EXPECT_TRUE(h.engine->Flush().ok());
  std::vector<std::string> out;
  for (const testing::RecordedMatch& m : h.matches) {
    out.push_back(m.rule_id + "[" + std::to_string(m.t_begin) + "," +
                  std::to_string(m.t_end) + "]");
  }
  return out;
}

TEST(DataPartitionedEngine, ReplaysSerialOrderExactly) {
  // The replay contract at its strongest: the data-partitioned pipeline
  // must deliver the SAME matches in the SAME order as the serial
  // engine, at any replica count, including the residual interleaving.
  const std::string program = std::string(kKeyedRules) + kCrossRules;
  const std::vector<events::Observation> stream = KeyedStream(12);
  const std::vector<std::string> serial =
      RunAndFormat(1, PartitionMode::kRule, program, stream);
  EXPECT_FALSE(serial.empty());
  for (int shards : {2, 4}) {
    EXPECT_EQ(RunAndFormat(shards, PartitionMode::kData, program, stream),
              serial)
        << "data-partitioned replay diverged at " << shards << " shards";
  }
}

TEST(DataPartitionedEngine, HashRoutingReachesEveryReplica) {
  testing::EngineHarness h(DataOptions(4));
  ASSERT_TRUE(h.AddRules(kKeyedRules).ok());
  ASSERT_TRUE(h.engine->Compile().ok());
  ASSERT_TRUE(h.engine->data_partitioned());
  ASSERT_TRUE(h.engine->ProcessAll(KeyedStream(32)).ok());
  ASSERT_TRUE(h.engine->Flush().ok());
  // Every replica owns some keys, and no replica owns all of them: each
  // observation lands on exactly one shard, so per-shard routed counts
  // sum to the total and FNV spreads 32 keys across 4 buckets.
  uint64_t total = 0;
  for (int s = 0; s < h.engine->num_shards(); ++s) {
    uint64_t routed =
        h.engine->metrics_registry()
            .GetCounter("shard_routed_total{shard=\"" + std::to_string(s) +
                        "\"}")
            ->value();
    EXPECT_GT(routed, 0u) << "replica " << s << " received nothing";
    total += routed;
  }
  EXPECT_EQ(total, h.engine->stats().detector.observations);
}

TEST(DataPartitionedEngine, UnroutedObservationsAreCountedAndTraced) {
  std::vector<std::string> lines;
  TraceSink trace([&lines](std::string_view line) {
    lines.emplace_back(line);
  });
  testing::EngineHarness h(DataOptions(2));
  ASSERT_TRUE(h.AddRules(kKeyedRules).ok());
  ASSERT_TRUE(h.engine->SetTraceSink(&trace).ok());
  ASSERT_TRUE(h.engine->Compile().ok());
  ASSERT_TRUE(h.ObserveAt("shelf1", "obj1", 1.0).ok());
  // No rule's vocabulary mentions this reader: the observation is
  // dropped at routing, but never silently — counter, trace record, and
  // DebugReport all see it.
  ASSERT_TRUE(h.ObserveAt("unknown-reader", "obj1", 2.0).ok());
  ASSERT_TRUE(h.engine->Flush().ok());
  uint64_t unrouted =
      h.engine->metrics_registry()
          .GetCounter("rfidcep_unrouted_observations_total")
          ->value();
  EXPECT_EQ(unrouted, 1u);
  bool traced = false;
  for (const std::string& line : lines) {
    if (line.find("\"k\":\"unrouted\"") != std::string::npos &&
        line.find("\"reader\":\"unknown-reader\"") != std::string::npos) {
      traced = true;
    }
  }
  EXPECT_TRUE(traced) << "no unrouted trace record emitted";
  EXPECT_NE(h.engine->DebugReport().find("unrouted=1"), std::string::npos);
}

}  // namespace
}  // namespace rfidcep::engine
