// Exact-boundary semantics (§2): every temporal constraint in the event
// model is a closed interval, and these tests pin each committed edge:
//
//   * TSEQ[τl, τu]: dist == τl and dist == τu are both accepted;
//   * WITHIN[τ]: interval == τ is accepted, τ + ε is not;
//   * NOT windows: a falsifier arriving at exactly the window edge still
//     falsifies (AdvanceTo leaves the boundary pseudo pending);
//   * TSEQ+[τl, τu]: an element at exactly t_end + τu extends the run,
//     including through an incremental AdvanceTo at the bound;
//   * chronicle initiators: an initiator whose deadline equals the clock
//     is still pairable; one whose deadline has strictly passed is
//     consumed and never retried.
//
// docs/semantics.md records the conventions; the differential fuzz
// harness (tests/property/) searches for violations at random.

#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "tests/engine/test_util.h"

namespace rfidcep::engine {
namespace {

using ::rfidcep::engine::testing::EngineHarness;

// --- TSEQ distance bounds ----------------------------------------------------

TEST(BoundaryTest, TseqAcceptsDistExactlyAtUpperBound) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE b1, boundary
    ON TSEQ(observation("a", o1, t1); observation("b", o2, t2), 1sec, 4sec)
    IF true DO act
  )").ok());
  ASSERT_TRUE(h.ObserveAt("a", "x", 10).ok());
  ASSERT_TRUE(h.ObserveAt("b", "y", 14).ok());  // dist == τu == 4s.
  ASSERT_TRUE(h.engine->Flush().ok());
  ASSERT_EQ(h.matches.size(), 1u);
  EXPECT_EQ(h.matches[0].t_begin, 10 * kSecond);
  EXPECT_EQ(h.matches[0].t_end, 14 * kSecond);
}

TEST(BoundaryTest, TseqAcceptsDistExactlyAtLowerBound) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE b2, boundary
    ON TSEQ(observation("a", o1, t1); observation("b", o2, t2), 2sec, 6sec)
    IF true DO act
  )").ok());
  ASSERT_TRUE(h.ObserveAt("a", "x", 10).ok());
  ASSERT_TRUE(h.ObserveAt("b", "y", 12).ok());  // dist == τl == 2s.
  ASSERT_TRUE(h.engine->Flush().ok());
  EXPECT_EQ(h.matches.size(), 1u);
}

TEST(BoundaryTest, TseqRejectsDistJustOutsideEitherBound) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE b3, boundary
    ON TSEQ(observation("a", o1, t1); observation("b", o2, t2), 2sec, 4sec)
    IF true DO act
  )").ok());
  ASSERT_TRUE(h.ObserveAt("a", "x", 10).ok());
  // One microsecond under τl.
  ASSERT_TRUE(h.engine
                  ->Process({"b", "y", 12 * kSecond - 1})
                  .ok());
  ASSERT_TRUE(h.ObserveAt("a", "x2", 20).ok());
  // One microsecond over τu.
  ASSERT_TRUE(h.engine
                  ->Process({"b", "y2", 24 * kSecond + 1})
                  .ok());
  ASSERT_TRUE(h.engine->Flush().ok());
  EXPECT_TRUE(h.matches.empty());
}

// --- WITHIN interval bound ---------------------------------------------------

TEST(BoundaryTest, WithinAcceptsIntervalExactlyAtBound) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE b4, boundary
    ON WITHIN(observation("a", o1, t1) AND observation("b", o2, t2), 5sec)
    IF true DO act
  )").ok());
  ASSERT_TRUE(h.ObserveAt("a", "x", 10).ok());
  ASSERT_TRUE(h.ObserveAt("b", "y", 15).ok());  // interval == τ == 5s.
  ASSERT_TRUE(h.engine->Flush().ok());
  ASSERT_EQ(h.matches.size(), 1u);
  EXPECT_EQ(h.matches[0].t_begin, 10 * kSecond);
  EXPECT_EQ(h.matches[0].t_end, 15 * kSecond);
}

TEST(BoundaryTest, WithinRejectsIntervalJustOverBound) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE b5, boundary
    ON WITHIN(observation("a", o1, t1) AND observation("b", o2, t2), 5sec)
    IF true DO act
  )").ok());
  ASSERT_TRUE(h.ObserveAt("a", "x", 10).ok());
  ASSERT_TRUE(h.engine
                  ->Process({"b", "y", 15 * kSecond + 1})
                  .ok());
  ASSERT_TRUE(h.engine->Flush().ok());
  EXPECT_TRUE(h.matches.empty());
}

// --- NOT window edges (pseudo-vs-real tie order) -----------------------------

TEST(BoundaryTest, NotFalsifierAtExactWindowEdgeAfterAdvanceTo) {
  // Regression: AdvanceTo(t) used to fire the confirmation pseudo AT `t`,
  // so a falsifier arriving at exactly the closed window edge was ignored
  // and the incremental execution diverged from the single-shot one.
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE b6, boundary
    ON WITHIN(observation("a", o1, t1) AND
              NOT observation("c", o2, t2), 5sec)
    IF true DO act
  )").ok());
  ASSERT_TRUE(h.ObserveAt("a", "x", 10).ok());
  ASSERT_TRUE(h.engine->AdvanceTo(15 * kSecond).ok());
  EXPECT_TRUE(h.matches.empty());  // Boundary pseudo still pending.
  ASSERT_TRUE(h.ObserveAt("c", "y", 15).ok());  // Exactly t + 5s: falsifies.
  ASSERT_TRUE(h.engine->Flush().ok());
  EXPECT_TRUE(h.matches.empty());
}

TEST(BoundaryTest, NotWindowConfirmsOnceClockStrictlyPassesEdge) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE b7, boundary
    ON WITHIN(observation("a", o1, t1) AND
              NOT observation("c", o2, t2), 5sec)
    IF true DO act
  )").ok());
  ASSERT_TRUE(h.ObserveAt("a", "x", 10).ok());
  ASSERT_TRUE(h.engine->AdvanceTo(15 * kSecond).ok());
  EXPECT_TRUE(h.matches.empty());
  ASSERT_TRUE(h.engine->AdvanceTo(15 * kSecond + 1).ok());
  ASSERT_EQ(h.matches.size(), 1u);
  EXPECT_EQ(h.matches[0].t_end, 15 * kSecond);
}

TEST(BoundaryTest, NotFalsifierAtEdgeViaProcessMatchesAdvanceToPath) {
  // The same history without the interleaved AdvanceTo must agree.
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE b8, boundary
    ON WITHIN(observation("a", o1, t1) AND
              NOT observation("c", o2, t2), 5sec)
    IF true DO act
  )").ok());
  ASSERT_TRUE(h.ObserveAt("a", "x", 10).ok());
  ASSERT_TRUE(h.ObserveAt("c", "y", 15).ok());
  ASSERT_TRUE(h.engine->Flush().ok());
  EXPECT_TRUE(h.matches.empty());
}

// --- SEQ+ distance bound through incremental advancement ---------------------

TEST(BoundaryTest, SeqPlusExtendsAtExactDistBoundAcrossAdvanceTo) {
  // Regression: with the old inclusive AdvanceTo, advancing to exactly
  // t_end + τu expired the open run before the element at the closed
  // bound could extend it, splitting one run into two.
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE b9, boundary
    ON WITHIN(TSEQ+(observation("a", o, t), 0sec, 3sec), 10sec)
    IF true DO act
  )").ok());
  ASSERT_TRUE(h.ObserveAt("a", "x", 0).ok());
  ASSERT_TRUE(h.engine->AdvanceTo(3 * kSecond).ok());
  ASSERT_TRUE(h.ObserveAt("a", "x", 3).ok());  // dist == τu: extends.
  ASSERT_TRUE(h.engine->Flush().ok());
  ASSERT_EQ(h.matches.size(), 1u);
  EXPECT_EQ(h.matches[0].t_begin, 0);
  EXPECT_EQ(h.matches[0].t_end, 3 * kSecond);
}

TEST(BoundaryTest, SeqPlusClosesOnceDistBoundStrictlyPassed) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE b10, boundary
    ON WITHIN(TSEQ+(observation("a", o, t), 0sec, 3sec), 10sec)
    IF true DO act
  )").ok());
  ASSERT_TRUE(h.ObserveAt("a", "x", 0).ok());
  // Strictly past the bound: the run [0, 0] closes, a new run starts.
  ASSERT_TRUE(h.engine
                  ->Process({"a", "x", 3 * kSecond + 1})
                  .ok());
  ASSERT_TRUE(h.engine->Flush().ok());
  ASSERT_EQ(h.matches.size(), 2u);
}

// --- Retention horizon versus rewritten negation shapes (ISSUE 9) ------------

// Runs a scripted history (SEQ+ run on "a", optional falsifier "c" at
// exactly the window edge, incremental advances landing ON the edge)
// and returns the (t_begin, t_end) spans that fired.
std::vector<std::pair<TimePoint, TimePoint>> RunNegatedSeqScript(
    const char* rules, bool falsify) {
  EngineHarness h;
  EXPECT_TRUE(h.AddRules(rules).ok());
  EXPECT_TRUE(h.ObserveAt("a", "x", 0).ok());
  EXPECT_TRUE(h.ObserveAt("a", "x", 2).ok());  // Extends the SEQ+ run.
  EXPECT_TRUE(h.engine->AdvanceTo(6 * kSecond).ok());  // Exactly the edge.
  if (falsify) {
    EXPECT_TRUE(h.ObserveAt("c", "y", 6).ok());  // At the closed edge.
  }
  EXPECT_TRUE(h.engine->AdvanceTo(6 * kSecond + 1).ok());
  EXPECT_TRUE(h.engine->Flush().ok());
  std::vector<std::pair<TimePoint, TimePoint>> spans;
  for (const auto& match : h.matches) {
    spans.emplace_back(match.t_begin, match.t_end);
  }
  return spans;
}

TEST(BoundaryTest, NegatedSeqAgreesAfterDistBoundSlackRewrite) {
  // The metamorphic axis (engine/rewrite.h, seqplus-hi-slack) pads a
  // SEQ+ upper dist bound once the WITHIN window already binds: with
  // hi >= w every run is cut by run_begin + w before run_end + hi can
  // matter, so the match set is provably unchanged. ComputeRetention
  // pads each node's buffer by its siblings' materialization lag, which
  // flows through min(dist_hi, within) — this regression pins that a
  // slackened bound leaves the negation log's retention horizon intact
  // at exactly the window edge, where an off-by-one horizon would
  // either drop the edge falsifier or hold the confirmation forever.
  const char* kOriginal = R"(
    CREATE RULE b14, boundary
    ON WITHIN(SEQ(TSEQ+(observation("a", o, t), 0sec, 6sec);
                  NOT observation("c", o2, t2)), 6sec)
    IF true DO act
  )";
  const char* kSlackened = R"(
    CREATE RULE b14, boundary
    ON WITHIN(SEQ(TSEQ+(observation("a", o, t), 0sec, 8sec);
                  NOT observation("c", o2, t2)), 6sec)
    IF true DO act
  )";
  // Falsifier at exactly the closed window edge: both forms drop the
  // confirmation.
  std::vector<std::pair<TimePoint, TimePoint>> original =
      RunNegatedSeqScript(kOriginal, /*falsify=*/true);
  EXPECT_EQ(original, RunNegatedSeqScript(kSlackened, /*falsify=*/true));
  EXPECT_TRUE(original.empty());
  // No falsifier: both forms confirm once the clock strictly passes the
  // edge, with identical spans.
  std::vector<std::pair<TimePoint, TimePoint>> confirmed =
      RunNegatedSeqScript(kOriginal, /*falsify=*/false);
  EXPECT_EQ(confirmed, RunNegatedSeqScript(kSlackened, /*falsify=*/false));
  EXPECT_FALSE(confirmed.empty());
}

// --- Chronicle initiator lifetime at the deadline ----------------------------

TEST(BoundaryTest, ChronicleInitiatorPairsWhenClockEqualsDeadline) {
  // Initiator a@10 under WITHIN 5s has deadline 15s; a terminator at
  // exactly 15s still pairs (prune keeps deadline == clock).
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE b11, boundary
    ON WITHIN(SEQ(observation("a", o1, t1); observation("b", o2, t2)), 5sec)
    IF true DO act
  )").ok());
  ASSERT_TRUE(h.ObserveAt("a", "x", 10).ok());
  ASSERT_TRUE(h.ObserveAt("b", "y", 15).ok());
  ASSERT_TRUE(h.engine->Flush().ok());
  ASSERT_EQ(h.matches.size(), 1u);
  EXPECT_EQ(h.matches[0].t_begin, 10 * kSecond);
  EXPECT_EQ(h.matches[0].t_end, 15 * kSecond);
}

TEST(BoundaryTest, ChronicleExpiredInitiatorIsConsumedNotRetried) {
  // a1@10 expires at 15s; the terminator at 16s must pair with a2@13 (the
  // oldest LIVE initiator), not resurrect a1 — and only one match fires.
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE b12, boundary
    ON WITHIN(SEQ(observation("a", o1, t1); observation("b", o2, t2)), 5sec)
    IF true DO act
  )").ok());
  ASSERT_TRUE(h.ObserveAt("a", "x1", 10).ok());
  ASSERT_TRUE(h.ObserveAt("a", "x2", 13).ok());
  ASSERT_TRUE(h.ObserveAt("b", "y", 16).ok());
  ASSERT_TRUE(h.engine->Flush().ok());
  ASSERT_EQ(h.matches.size(), 1u);
  EXPECT_EQ(h.matches[0].t_begin, 13 * kSecond);
  EXPECT_EQ(h.matches[0].t_end, 16 * kSecond);
}

TEST(BoundaryTest, ChronicleOldestInitiatorWinsAtSharedDeadline) {
  // Both initiators live at the terminator: chronicle picks the oldest,
  // even when its deadline is exactly the clock.
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE b13, boundary
    ON WITHIN(SEQ(observation("a", o1, t1); observation("b", o2, t2)), 5sec)
    IF true DO act
  )").ok());
  ASSERT_TRUE(h.ObserveAt("a", "x1", 10).ok());
  ASSERT_TRUE(h.ObserveAt("a", "x2", 12).ok());
  ASSERT_TRUE(h.ObserveAt("b", "y", 15).ok());  // a1's deadline exactly.
  ASSERT_TRUE(h.engine->Flush().ok());
  ASSERT_EQ(h.matches.size(), 1u);
  EXPECT_EQ(h.matches[0].t_begin, 10 * kSecond);
}

}  // namespace
}  // namespace rfidcep::engine
