// Engine lifecycle contract (engine/engine.h "Streaming"): every
// streaming call requires Compile(); Flush() ends the stream and is
// idempotent; Reset()/Compile() start a new stream. Exercised on both
// the serial fast path and the sharded pipeline.

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "tests/engine/test_util.h"

namespace rfidcep::engine {
namespace {

using ::rfidcep::engine::testing::EngineHarness;

constexpr const char* kRule =
    "CREATE RULE x, a ON observation(r, o, t) IF true DO send alarm";

EngineOptions WithShards(int shards) {
  EngineOptions options;
  options.shards = shards;
  return options;
}

class LifecycleTest : public ::testing::TestWithParam<int> {
 protected:
  EngineOptions Options() const { return WithShards(GetParam()); }
};

TEST_P(LifecycleTest, StreamingBeforeCompileFails) {
  EngineHarness h(Options());
  ASSERT_TRUE(h.AddRules(kRule).ok());
  EXPECT_EQ(h.engine->Process({"r", "o", 1}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(h.engine->ProcessAll({{"r", "o", 1}}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(h.engine->AdvanceTo(kSecond).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(h.engine->Flush().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(h.matches.empty());
}

TEST_P(LifecycleTest, StreamingAfterFlushFails) {
  EngineHarness h(Options());
  ASSERT_TRUE(h.AddRules(kRule).ok());
  ASSERT_TRUE(h.engine->Compile().ok());
  ASSERT_TRUE(h.engine->Process({"r", "o", 1 * kSecond}).ok());
  ASSERT_TRUE(h.engine->Flush().ok());
  EXPECT_EQ(h.engine->Process({"r", "o", 2 * kSecond}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(h.engine->ProcessAll({{"r", "o", 2 * kSecond}}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(h.engine->AdvanceTo(2 * kSecond).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(h.matches.size(), 1u);
}

TEST_P(LifecycleTest, FlushIsIdempotent) {
  EngineHarness h(Options());
  ASSERT_TRUE(h.AddRules(kRule).ok());
  ASSERT_TRUE(h.engine->Compile().ok());
  ASSERT_TRUE(h.engine->Process({"r", "o", 1 * kSecond}).ok());
  ASSERT_TRUE(h.engine->Flush().ok());
  const EngineStats after_first = h.engine->stats();
  ASSERT_TRUE(h.engine->Flush().ok());
  ASSERT_TRUE(h.engine->Flush().ok());
  EXPECT_EQ(h.engine->stats().detector.pseudo_fired,
            after_first.detector.pseudo_fired);
  EXPECT_EQ(h.matches.size(), 1u);
}

TEST_P(LifecycleTest, ResetStartsANewStream) {
  EngineHarness h(Options());
  ASSERT_TRUE(h.AddRules(kRule).ok());
  ASSERT_TRUE(h.engine->Compile().ok());
  ASSERT_TRUE(h.engine->Process({"r", "o", 5 * kSecond}).ok());
  ASSERT_TRUE(h.engine->Flush().ok());
  ASSERT_TRUE(h.engine->Reset().ok());
  // The new stream may start before the flushed one ended.
  ASSERT_TRUE(h.engine->Process({"r", "o", 1 * kSecond}).ok());
  ASSERT_TRUE(h.engine->Flush().ok());
  EXPECT_EQ(h.matches.size(), 2u);
}

TEST_P(LifecycleTest, RecompileStartsANewStream) {
  EngineHarness h(Options());
  ASSERT_TRUE(h.AddRules(kRule).ok());
  ASSERT_TRUE(h.engine->Compile().ok());
  ASSERT_TRUE(h.engine->Process({"r", "o", 5 * kSecond}).ok());
  ASSERT_TRUE(h.engine->Flush().ok());
  h.engine->Decompile();
  ASSERT_TRUE(h.engine->Compile().ok());
  ASSERT_TRUE(h.engine->Process({"r", "o", 1 * kSecond}).ok());
  ASSERT_TRUE(h.engine->Flush().ok());
  EXPECT_EQ(h.matches.size(), 2u);
}

TEST_P(LifecycleTest, CheckpointBeforeCompileFails) {
  EngineHarness h(Options());
  ASSERT_TRUE(h.AddRules(kRule).ok());
  std::string bytes;
  EXPECT_EQ(h.engine->SerializeState(&bytes).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(h.engine->RestoreState("").code(),
            StatusCode::kFailedPrecondition);
}

TEST_P(LifecycleTest, FlushedEngineCanBeCheckpointedAndRestored) {
  // A checkpoint of a flushed engine restores as flushed: the stream
  // stays ended until Reset().
  EngineHarness h(Options());
  ASSERT_TRUE(h.AddRules(kRule).ok());
  ASSERT_TRUE(h.engine->Compile().ok());
  ASSERT_TRUE(h.engine->Process({"r", "o", 1 * kSecond}).ok());
  ASSERT_TRUE(h.engine->Flush().ok());
  std::string bytes;
  ASSERT_TRUE(h.engine->SerializeState(&bytes).ok());
  ASSERT_TRUE(h.engine->RestoreState(bytes).ok());
  EXPECT_EQ(h.engine->Process({"r", "o", 2 * kSecond}).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(h.engine->Reset().ok());
  ASSERT_TRUE(h.engine->Process({"r", "o", 2 * kSecond}).ok());
}

INSTANTIATE_TEST_SUITE_P(SerialAndSharded, LifecycleTest,
                         ::testing::Values(1, 2, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Shards" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace rfidcep::engine
