// Parameter-context semantics (paper §4.2): the same overlapping history
// pulled through all five contexts.

#include <gtest/gtest.h>

#include "tests/engine/test_util.h"

namespace rfidcep::engine {
namespace {

using ::rfidcep::engine::testing::EngineHarness;

constexpr char kSeqRule[] = R"(
  CREATE RULE s, pairing
  ON SEQ(observation("a", o1, t1); observation("b", o2, t2))
  IF true
  DO send alarm
)";

// History: a@1, a@2, b@3, b@4.
void FeedOverlap(EngineHarness* h) {
  ASSERT_TRUE(h->ObserveAt("a", "x1", 1).ok());
  ASSERT_TRUE(h->ObserveAt("a", "x2", 2).ok());
  ASSERT_TRUE(h->ObserveAt("b", "y1", 3).ok());
  ASSERT_TRUE(h->ObserveAt("b", "y2", 4).ok());
}

EngineOptions WithContext(ParameterContext context) {
  EngineOptions options;
  options.detector.context = context;
  return options;
}

TEST(ContextTest, ChroniclePairsOldestWithOldest) {
  EngineHarness h(WithContext(ParameterContext::kChronicle));
  ASSERT_TRUE(h.AddRules(kSeqRule).ok());
  FeedOverlap(&h);
  ASSERT_EQ(h.matches.size(), 2u);
  EXPECT_EQ(h.matches[0].t_begin, 1 * kSecond);  // (a@1, b@3)
  EXPECT_EQ(h.matches[0].t_end, 3 * kSecond);
  EXPECT_EQ(h.matches[1].t_begin, 2 * kSecond);  // (a@2, b@4)
  EXPECT_EQ(h.matches[1].t_end, 4 * kSecond);
}

TEST(ContextTest, RecentReusesNewestInitiator) {
  EngineHarness h(WithContext(ParameterContext::kRecent));
  ASSERT_TRUE(h.AddRules(kSeqRule).ok());
  FeedOverlap(&h);
  ASSERT_EQ(h.matches.size(), 2u);
  EXPECT_EQ(h.matches[0].t_begin, 2 * kSecond);  // (a@2, b@3)
  EXPECT_EQ(h.matches[1].t_begin, 2 * kSecond);  // (a@2, b@4) — reused.
}

TEST(ContextTest, ContinuousPairsEveryOpenInitiator) {
  EngineHarness h(WithContext(ParameterContext::kContinuous));
  ASSERT_TRUE(h.AddRules(kSeqRule).ok());
  FeedOverlap(&h);
  // b@3 pairs with both a@1 and a@2 (consuming them); b@4 finds none.
  ASSERT_EQ(h.matches.size(), 2u);
  EXPECT_EQ(h.matches[0].t_end, 3 * kSecond);
  EXPECT_EQ(h.matches[1].t_end, 3 * kSecond);
}

TEST(ContextTest, CumulativeMergesAllInitiators) {
  EngineHarness h(WithContext(ParameterContext::kCumulative));
  ASSERT_TRUE(h.AddRules(kSeqRule).ok());
  FeedOverlap(&h);
  // b@3 produces a single merged instance holding a@1 and a@2.
  ASSERT_EQ(h.matches.size(), 1u);
  EXPECT_EQ(h.matches[0].t_begin, 1 * kSecond);
  EXPECT_EQ(h.matches[0].t_end, 3 * kSecond);
  EXPECT_EQ(h.matches[0].instance->children().size(), 3u);
}

TEST(ContextTest, UnrestrictedProducesAllCombinations) {
  EngineHarness h(WithContext(ParameterContext::kUnrestricted));
  ASSERT_TRUE(h.AddRules(kSeqRule).ok());
  FeedOverlap(&h);
  // (a1,b3), (a2,b3), (a1,b4), (a2,b4).
  EXPECT_EQ(h.matches.size(), 4u);
}

TEST(ContextTest, ChronicleIsCorrectForOverlappingPackings) {
  // Two interleaved packing episodes from two conveyors feeding one rule
  // family (paper Fig. 1b): chronicle keeps them separate.
  EngineHarness h(WithContext(ParameterContext::kChronicle));
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE pack, packing
    ON TSEQ(TSEQ+(observation("A", o1, t1), 0sec, 1sec);
            observation("B", o2, t2), 5sec, 10sec)
    IF true
    DO send alarm
  )").ok());
  // Episode 1 items at 1..2, episode 2 items at 4..5; cases at 9 and 13.
  ASSERT_TRUE(h.ObserveAt("A", "p", 1).ok());
  ASSERT_TRUE(h.ObserveAt("A", "q", 2).ok());
  ASSERT_TRUE(h.ObserveAt("A", "r", 4).ok());
  ASSERT_TRUE(h.ObserveAt("A", "s", 5).ok());
  ASSERT_TRUE(h.ObserveAt("B", "case1", 9).ok());
  ASSERT_TRUE(h.ObserveAt("B", "case2", 13).ok());
  ASSERT_EQ(h.matches.size(), 2u);
  auto first = h.matches[0].instance->CollectObservations();
  ASSERT_EQ(first.size(), 3u);
  EXPECT_EQ(first[0].object, "p");
  EXPECT_EQ(first[1].object, "q");
  EXPECT_EQ(first[2].object, "case1");
  auto second = h.matches[1].instance->CollectObservations();
  ASSERT_EQ(second.size(), 3u);
  EXPECT_EQ(second[0].object, "r");
  EXPECT_EQ(second[2].object, "case2");
}

}  // namespace
}  // namespace rfidcep::engine
