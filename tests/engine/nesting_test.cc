// Deeply nested constructor combinations and temporal edge cases.

#include <gtest/gtest.h>

#include "tests/engine/test_util.h"

namespace rfidcep::engine {
namespace {

using ::rfidcep::engine::testing::EngineHarness;

TEST(NestingTest, Fig7RuleEndToEnd) {
  // Paper Fig. 7: WITHIN(TSEQ+(E1 OR E2, 0.1sec, 1sec) ; E3, 10min).
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE fig7, propagated interval
    ON WITHIN(SEQ(TSEQ+(observation("r1", o, t) OR observation("r2", o, t),
                        0.1sec, 1sec);
                  observation("r3", o3, t3)), 10min)
    IF true
    DO send alarm
  )").ok());
  // A run mixing both branches, closed by gap, then the E3 terminator.
  ASSERT_TRUE(h.ObserveAt("r1", "a", 1.0).ok());
  ASSERT_TRUE(h.ObserveAt("r2", "b", 1.5).ok());
  ASSERT_TRUE(h.ObserveAt("r1", "c", 2.2).ok());
  ASSERT_TRUE(h.ObserveAt("r3", "case", 30).ok());
  ASSERT_EQ(h.matches.size(), 1u);
  auto observations = h.matches[0].instance->CollectObservations();
  ASSERT_EQ(observations.size(), 4u);
  EXPECT_EQ(observations[0].reader, "r1");
  EXPECT_EQ(observations[1].reader, "r2");
  EXPECT_EQ(observations[3].reader, "r3");
}

TEST(NestingTest, NotOverDisjunction) {
  // NOT over a push-mode complex child (OR) is supported: alert unless
  // EITHER badge reader saw a supervisor.
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE guard, no supervisor at either reader
    ON WITHIN(observation("asset", o1, t1) AND
              NOT (observation("badge1", o2, t2) OR
                   observation("badge2", o2, t2)), 5sec)
    IF true
    DO send alarm
  )").ok());
  ASSERT_TRUE(h.ObserveAt("asset", "laptop", 10).ok());
  ASSERT_TRUE(h.ObserveAt("badge2", "sup", 12).ok());   // Falsifies #1.
  ASSERT_TRUE(h.ObserveAt("asset", "laptop", 50).ok());
  ASSERT_TRUE(h.engine->Flush().ok());
  ASSERT_EQ(h.matches.size(), 1u);
  EXPECT_EQ(h.matches[0].t_begin, 50 * kSecond);
}

TEST(NestingTest, SequenceOfConjunction) {
  // SEQ(AND(a,b); c): the pair must complete before c.
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE sc, pair then trigger
    ON WITHIN(SEQ((observation("a", o1, t1) AND observation("b", o2, t2));
                  observation("c", o3, t3)), 20sec)
    IF true
    DO send alarm
  )").ok());
  ASSERT_TRUE(h.ObserveAt("a", "x", 1).ok());
  ASSERT_TRUE(h.ObserveAt("c", "z", 2).ok());  // AND not complete yet.
  EXPECT_TRUE(h.matches.empty());
  ASSERT_TRUE(h.ObserveAt("b", "y", 3).ok());  // AND completes [1,3].
  ASSERT_TRUE(h.ObserveAt("c", "z", 5).ok());
  ASSERT_EQ(h.matches.size(), 1u);
  EXPECT_EQ(h.matches[0].t_begin, 1 * kSecond);
  EXPECT_EQ(h.matches[0].t_end, 5 * kSecond);
}

TEST(NestingTest, RightNestedSequences) {
  // SEQ(a; SEQ(b; c)) — the inner sequence is the terminator side.
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE rn, right nested
    ON WITHIN(SEQ(observation("a", o1, t1);
                  SEQ(observation("b", o2, t2); observation("c", o3, t3))),
              20sec)
    IF true
    DO send alarm
  )").ok());
  ASSERT_TRUE(h.ObserveAt("a", "x", 1).ok());
  ASSERT_TRUE(h.ObserveAt("b", "y", 3).ok());
  ASSERT_TRUE(h.ObserveAt("c", "z", 5).ok());
  ASSERT_EQ(h.matches.size(), 1u);
  EXPECT_EQ(h.matches[0].t_begin, 1 * kSecond);
  EXPECT_EQ(h.matches[0].t_end, 5 * kSecond);
  // Inner pair completing before `a` must NOT match (ordering).
  h.matches.clear();
  ASSERT_TRUE(h.ObserveAt("b", "y", 30).ok());
  ASSERT_TRUE(h.ObserveAt("c", "z", 31).ok());
  ASSERT_TRUE(h.ObserveAt("a", "x", 32).ok());
  ASSERT_TRUE(h.engine->Flush().ok());
  EXPECT_TRUE(h.matches.empty());
}

TEST(NestingTest, SameTimestampEventsDoNotSequence) {
  // SEQ requires t_end(e1) < t_begin(e2): simultaneous reads don't chain.
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE s, strict order
    ON SEQ(observation("a", o1, t1); observation("b", o2, t2))
    IF true
    DO send alarm
  )").ok());
  ASSERT_TRUE(h.ObserveAt("a", "x", 7).ok());
  ASSERT_TRUE(h.ObserveAt("b", "y", 7).ok());
  EXPECT_TRUE(h.matches.empty());
  // But simultaneous events DO satisfy AND.
  EngineHarness h2;
  ASSERT_TRUE(h2.AddRules(R"(
    CREATE RULE c, conj
    ON WITHIN(observation("a", o1, t1) AND observation("b", o2, t2), 5sec)
    IF true
    DO send alarm
  )").ok());
  ASSERT_TRUE(h2.ObserveAt("a", "x", 7).ok());
  ASSERT_TRUE(h2.ObserveAt("b", "y", 7).ok());
  EXPECT_EQ(h2.matches.size(), 1u);
}

TEST(NestingTest, ExactDistanceBound) {
  // dist_lo == dist_hi: only the exact distance matches.
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE e, exact
    ON TSEQ(observation("a", o1, t1); observation("b", o2, t2), 3sec, 3sec)
    IF true
    DO send alarm
  )").ok());
  ASSERT_TRUE(h.ObserveAt("a", "x", 0).ok());
  ASSERT_TRUE(h.ObserveAt("b", "y", 2.999).ok());
  ASSERT_TRUE(h.ObserveAt("a", "x", 10).ok());
  ASSERT_TRUE(h.ObserveAt("b", "y", 13).ok());
  ASSERT_TRUE(h.ObserveAt("a", "x", 20).ok());
  ASSERT_TRUE(h.ObserveAt("b", "y", 23.001).ok());
  ASSERT_EQ(h.matches.size(), 1u);
  EXPECT_EQ(h.matches[0].t_begin, 10 * kSecond);
}

TEST(NestingTest, ZeroWithinMeansInstantaneous) {
  // WITHIN(... , 0sec): only zero-interval instances survive — an AND of
  // two simultaneous observations.
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE z, zero window
    ON WITHIN(observation("a", o1, t1) AND observation("b", o2, t2), 0sec)
    IF true
    DO send alarm
  )").ok());
  ASSERT_TRUE(h.ObserveAt("a", "x", 5).ok());
  ASSERT_TRUE(h.ObserveAt("b", "y", 5).ok());
  ASSERT_TRUE(h.ObserveAt("a", "x", 6).ok());
  ASSERT_TRUE(h.ObserveAt("b", "y", 6.001).ok());
  EXPECT_EQ(h.matches.size(), 1u);
}

TEST(NestingTest, SharedSubgraphFeedsMultipleRules) {
  // Two rules over the same TSEQ+ subexpression: one match each, with the
  // shared node detected once (the instance trees are shared objects).
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    DEFINE E1 = observation("conv", o1, t1)
    CREATE RULE fast, quick case
    ON TSEQ(TSEQ+(E1, 0sec, 1sec); observation("fastcase", o2, t2),
            2sec, 10sec)
    IF true
    DO send alarm
    CREATE RULE slow, late case
    ON TSEQ(TSEQ+(E1, 0sec, 1sec); observation("slowcase", o2, t2),
            2sec, 60sec)
    IF true
    DO send alarm
  )").ok());
  ASSERT_TRUE(h.ObserveAt("conv", "i1", 1).ok());
  ASSERT_TRUE(h.ObserveAt("conv", "i2", 1.5).ok());
  ASSERT_TRUE(h.ObserveAt("fastcase", "f", 6).ok());
  EXPECT_EQ(h.engine->FiredCount("fast"), 1u);
  // The run was consumed by `fast`'s TSEQ node, but `slow` has its own
  // buffer edge, so it can still pair.
  ASSERT_TRUE(h.ObserveAt("slowcase", "s", 40).ok());
  EXPECT_EQ(h.engine->FiredCount("slow"), 1u);
}

TEST(NestingTest, OrOfComplexEvents) {
  // OR over two sequences: either pattern fires the rule.
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE either, two paths
    ON WITHIN(SEQ(observation("a", o1, t1); observation("b", o2, t2)), 5sec)
       OR WITHIN(SEQ(observation("c", o3, t3); observation("d", o4, t4)), 5sec)
    IF true
    DO send alarm
  )").ok());
  ASSERT_TRUE(h.ObserveAt("a", "x", 1).ok());
  ASSERT_TRUE(h.ObserveAt("b", "y", 2).ok());
  ASSERT_TRUE(h.ObserveAt("c", "x", 10).ok());
  ASSERT_TRUE(h.ObserveAt("d", "y", 11).ok());
  EXPECT_EQ(h.matches.size(), 2u);
}

TEST(NestingTest, AdvanceToFiresPendingWindows) {
  EngineHarness h;
  h.catalog.RegisterExact("laptop-1", "laptop");
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE r5, monitor
    ON WITHIN(observation("exit", o4, t4), type(o4) = "laptop" AND
              NOT observation("exit", o5, t5), type(o5) = "superuser", 5sec)
    IF true
    DO send alarm
  )").ok());
  ASSERT_TRUE(h.ObserveAt("exit", "laptop-1", 10).ok());
  EXPECT_TRUE(h.matches.empty());
  ASSERT_TRUE(h.engine->AdvanceTo(14 * kSecond).ok());
  EXPECT_TRUE(h.matches.empty());  // Window still open.
  // The window edge t+5s is closed: a falsifier arriving at exactly 15s
  // must still count, so advancing TO the edge keeps the check pending.
  ASSERT_TRUE(h.engine->AdvanceTo(15 * kSecond).ok());
  EXPECT_TRUE(h.matches.empty());
  // Once the stream strictly passes the edge, the window is confirmed.
  ASSERT_TRUE(h.engine->AdvanceTo(15 * kSecond + 1).ok());
  EXPECT_EQ(h.matches.size(), 1u);
}

}  // namespace
}  // namespace rfidcep::engine
