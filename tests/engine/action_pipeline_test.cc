// Async action pipeline (engine/action_stage.h) + store WAL: equivalence
// with sync dispatch, exactly-once store effects across a simulated
// crash, and non-quiescent pending-queue capture in snapshots.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/snapshot.h"
#include "events/observation.h"
#include "store/csv.h"
#include "store/database.h"
#include "store/wal.h"

namespace rfidcep::engine {
namespace {

namespace fs = std::filesystem;

constexpr std::string_view kRules = R"(
  CREATE RULE loc, location update rule
  ON observation(r, o, t)
  IF true
  DO UPDATE OBJECTLOCATION SET tend = t WHERE object_epc = o AND tend = "UC";
     INSERT INTO OBJECTLOCATION VALUES (o, r, t, "UC")

  CREATE RULE dup, duplicate read rule
  ON WITHIN(observation(r, o, t1); observation(r, o, t2), 5sec)
  IF true
  DO INSERT INTO OBSERVATION VALUES (r, o, t2)
)";

// A deterministic stream that exercises both rules: every observation
// fires `loc` (two SQL actions); the same (reader, object) pair recurs
// every 2.5 seconds, inside `dup`'s 5-second window.
std::vector<events::Observation> MakeStream(int count) {
  std::vector<events::Observation> stream;
  stream.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    std::string reader = "dock" + std::to_string(i % 5);
    std::string object = "obj" + std::to_string(i % 5);
    stream.push_back(events::Observation{
        reader, object, static_cast<TimePoint>(i) * (kSecond / 2)});
  }
  return stream;
}

struct Rig {
  explicit Rig(EngineOptions options = {}) {
    EXPECT_TRUE(db.InstallRfidSchema().ok());
    engine = std::make_unique<RcedaEngine>(&db, events::Environment{}, options);
    EXPECT_TRUE(engine->AddRulesFromText(kRules).ok());
  }

  Status Run(const std::vector<events::Observation>& stream, size_t begin = 0,
             size_t end = SIZE_MAX) {
    if (!engine->compiled()) {
      RFIDCEP_RETURN_IF_ERROR(engine->Compile());
    }
    end = std::min(end, stream.size());
    for (size_t i = begin; i < end; ++i) {
      RFIDCEP_RETURN_IF_ERROR(engine->Process(stream[i]));
    }
    return Status::Ok();
  }

  store::Database db;
  std::unique_ptr<RcedaEngine> engine;
};

std::string DumpStore(store::Database* db) {
  std::string out;
  for (const char* table :
       {"OBSERVATION", "OBJECTLOCATION", "OBJECTCONTAINMENT"}) {
    out += table;
    out += "\n";
    out += store::TableToCsv(*db->GetTable(table));
  }
  return out;
}

EngineOptions AsyncOptions() {
  EngineOptions options;
  options.async_actions = true;
  return options;
}

class TempWalDir {
 public:
  explicit TempWalDir(const std::string& name)
      : dir_(fs::path(::testing::TempDir()) / name) {
    fs::remove_all(dir_);
  }
  ~TempWalDir() { fs::remove_all(dir_); }
  std::string str() const { return dir_.string(); }
  // Simulates a crash that loses everything past `keep_bytes` (tests use
  // the default 4MB segment size, so the log is one file).
  void TruncateAt(uint64_t keep_bytes) {
    std::vector<fs::path> files;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      files.push_back(entry.path());
    }
    ASSERT_EQ(files.size(), 1u);
    ASSERT_GE(fs::file_size(files[0]), keep_bytes);
    fs::resize_file(files[0], keep_bytes);
  }

 private:
  fs::path dir_;
};

TEST(ActionPipelineTest, AsyncMatchesSyncIncludingBackpressure) {
  std::vector<events::Observation> stream = MakeStream(300);

  Rig sync;
  ASSERT_TRUE(sync.Run(stream).ok());
  ASSERT_TRUE(sync.engine->Flush().ok());
  std::string expected = DumpStore(&sync.db);

  EngineOptions tiny_queue = AsyncOptions();
  tiny_queue.action_queue_capacity = 2;  // Force enqueue backpressure.
  for (EngineOptions options : {AsyncOptions(), tiny_queue}) {
    Rig async(options);
    ASSERT_TRUE(async.Run(stream).ok());
    ASSERT_TRUE(async.engine->Flush().ok());
    EXPECT_EQ(DumpStore(&async.db), expected);
    EXPECT_EQ(async.engine->stats().rules_fired,
              sync.engine->stats().rules_fired);
    EXPECT_EQ(async.engine->stats().sql_actions_executed,
              sync.engine->stats().sql_actions_executed);
    EXPECT_EQ(async.engine->stats().action_errors,
              sync.engine->stats().action_errors);
    for (const char* rule : {"loc", "dup"}) {
      EXPECT_EQ(async.engine->FiredCount(rule), sync.engine->FiredCount(rule));
    }
    EXPECT_TRUE(async.engine->first_deferred_error().ok())
        << async.engine->first_deferred_error().message();
  }
}

// Crash after a checkpoint: everything the WAL lost past the checkpoint
// is re-derived by reprocessing the suffix; store contents end up
// byte-identical to an uninterrupted run.
TEST(ActionPipelineTest, ExactlyOnceAcrossCrashWithLostTail) {
  std::vector<events::Observation> stream = MakeStream(200);
  const size_t kCut = 100;

  Rig reference;
  ASSERT_TRUE(reference.Run(stream).ok());
  ASSERT_TRUE(reference.engine->Flush().ok());
  std::string expected = DumpStore(&reference.db);

  TempWalDir wal_dir("action_pipeline_crash");
  std::string snapshot_bytes;
  uint64_t checkpoint_bytes = 0;
  {
    Result<std::unique_ptr<store::Wal>> wal = store::Wal::Open(wal_dir.str());
    ASSERT_TRUE(wal.ok()) << wal.status().message();
    Rig crashed(AsyncOptions());
    ASSERT_TRUE(crashed.engine->AttachWal(wal->get()).ok());
    ASSERT_TRUE(crashed.Run(stream, 0, kCut).ok());
    ASSERT_TRUE(crashed.engine->SerializeState(&snapshot_bytes).ok());
    checkpoint_bytes = (*wal)->total_bytes();  // Post-sync: all on disk.
    // Work past the checkpoint, then "crash": no Flush, engine torn down
    // mid-stream and the WAL tail discarded below.
    ASSERT_TRUE(crashed.Run(stream, kCut, 160).ok());
  }
  wal_dir.TruncateAt(checkpoint_bytes);

  Result<std::unique_ptr<store::Wal>> wal = store::Wal::Open(wal_dir.str());
  ASSERT_TRUE(wal.ok()) << wal.status().message();
  Rig recovered(AsyncOptions());
  Result<uint64_t> cursor = ReplayWalIntoDatabase(**wal, &recovered.db);
  ASSERT_TRUE(cursor.ok()) << cursor.status().message();
  ASSERT_TRUE(recovered.engine->AttachWal(wal->get()).ok());
  ASSERT_TRUE(recovered.engine->Compile().ok());
  ASSERT_TRUE(recovered.engine->RestoreState(snapshot_bytes).ok());
  ASSERT_TRUE(recovered.Run(stream, kCut).ok());
  ASSERT_TRUE(recovered.engine->Flush().ok());

  EXPECT_EQ(DumpStore(&recovered.db), expected);
  EXPECT_EQ(recovered.engine->stats().rules_fired,
            reference.engine->stats().rules_fired);
  EXPECT_EQ(recovered.engine->stats().sql_actions_executed,
            reference.engine->stats().sql_actions_executed);
  for (const char* rule : {"loc", "dup"}) {
    EXPECT_EQ(recovered.engine->FiredCount(rule),
              reference.engine->FiredCount(rule));
  }
}

// Crash where the WAL survived PAST the checkpoint (effects durable but
// unacknowledged): the re-derived firings deduplicate instead of
// double-writing, and the restored engine lands on the same layout-
// independent totals — here the recovery even switches to sync dispatch
// on a sharded layout.
TEST(ActionPipelineTest, DurableTailDeduplicatesAcrossModeAndLayout) {
  std::vector<events::Observation> stream = MakeStream(200);
  const size_t kCut = 100;

  Rig reference;
  ASSERT_TRUE(reference.Run(stream).ok());
  ASSERT_TRUE(reference.engine->Flush().ok());
  std::string expected = DumpStore(&reference.db);

  TempWalDir wal_dir("action_pipeline_dedup");
  std::string snapshot_bytes;
  {
    Result<std::unique_ptr<store::Wal>> wal = store::Wal::Open(wal_dir.str());
    ASSERT_TRUE(wal.ok()) << wal.status().message();
    Rig crashed(AsyncOptions());
    ASSERT_TRUE(crashed.engine->AttachWal(wal->get()).ok());
    ASSERT_TRUE(crashed.Run(stream, 0, kCut).ok());
    ASSERT_TRUE(crashed.engine->SerializeState(&snapshot_bytes).ok());
    ASSERT_TRUE(crashed.Run(stream, kCut, 160).ok());
    // Engine teardown drains the stage and the WAL destructor flushes,
    // so the whole prefix (incl. post-checkpoint records) is durable.
  }

  Result<std::unique_ptr<store::Wal>> wal = store::Wal::Open(wal_dir.str());
  ASSERT_TRUE(wal.ok()) << wal.status().message();
  EngineOptions sharded_sync;
  sharded_sync.shards = 2;
  Rig recovered(sharded_sync);
  Result<uint64_t> cursor = ReplayWalIntoDatabase(**wal, &recovered.db);
  ASSERT_TRUE(cursor.ok()) << cursor.status().message();
  ASSERT_TRUE(recovered.engine->AttachWal(wal->get()).ok());
  ASSERT_TRUE(recovered.engine->Compile().ok());
  ASSERT_TRUE(recovered.engine->RestoreState(snapshot_bytes).ok());
  ASSERT_TRUE(recovered.Run(stream, kCut).ok());
  ASSERT_TRUE(recovered.engine->Flush().ok());

  EXPECT_EQ(DumpStore(&recovered.db), expected);
  EXPECT_EQ(recovered.engine->stats().sql_actions_executed,
            reference.engine->stats().sql_actions_executed);
  EXPECT_GT(
      recovered.engine->metrics_registry().GetCounter("actions_deduped_total")
          ->value(),
      0u);
}

// SerializeState does not quiesce the stage: firings stuck behind a
// blocked worker are captured in the snapshot's pending queue, and a
// restore credits replayed procedures without re-invoking them.
TEST(ActionPipelineTest, PendingQueueIsCapturedAndReplayedWithoutReinvoking) {
  constexpr std::string_view kProcRule = R"(
    CREATE RULE alert, alert rule
    ON observation(r, o, t)
    IF true
    DO notify(o)
  )";
  std::vector<events::Observation> stream = MakeStream(8);

  std::mutex gate;
  std::atomic<int> invoked{0};
  std::string snapshot_bytes;
  {
    store::Database db;
    ASSERT_TRUE(db.InstallRfidSchema().ok());
    RcedaEngine engine(&db, events::Environment{}, AsyncOptions());
    ASSERT_TRUE(engine.AddRulesFromText(kProcRule).ok());
    engine.RegisterProcedure("notify",
                             [&](const RuleFiring&, const std::string&) {
                               std::lock_guard<std::mutex> lock(gate);
                               ++invoked;
                             });
    ASSERT_TRUE(engine.Compile().ok());
    {
      std::lock_guard<std::mutex> hold(gate);  // Worker blocks on firing 1.
      for (const events::Observation& obs : stream) {
        ASSERT_TRUE(engine.Process(obs).ok());
      }
      ASSERT_TRUE(engine.SerializeState(&snapshot_bytes).ok());
    }
    ASSERT_TRUE(engine.Flush().ok());
    EXPECT_EQ(engine.stats().procedures_invoked, stream.size());
    EXPECT_EQ(invoked.load(), static_cast<int>(stream.size()));
  }

  snapshot::EngineSnapshot snap;
  ASSERT_TRUE(snapshot::DecodeEngineSnapshot(snapshot_bytes, &snap).ok());
  EXPECT_EQ(snap.version, 2u);
  // The worker was blocked on the first firing the whole time, so at
  // least the un-dispatched rest of the queue must have been captured,
  // each stamped with its per-rule firing ordinal.
  EXPECT_GE(snap.pending_actions.size(), stream.size() - 1);
  for (const auto& rec : snap.pending_actions) {
    EXPECT_EQ(rec.rule_id, "alert");
    EXPECT_GT(rec.seq, 0u);
    EXPECT_LE(rec.seq, stream.size());
  }

  // Restore elsewhere: replayed procedure firings are credited in the
  // stats but NOT invoked (their event instances are gone).
  store::Database db2;
  ASSERT_TRUE(db2.InstallRfidSchema().ok());
  RcedaEngine restored(&db2, events::Environment{}, AsyncOptions());
  ASSERT_TRUE(restored.AddRulesFromText(kProcRule).ok());
  std::atomic<int> reinvoked{0};
  restored.RegisterProcedure("notify",
                             [&](const RuleFiring&, const std::string&) {
                               ++reinvoked;
                             });
  ASSERT_TRUE(restored.Compile().ok());
  ASSERT_TRUE(restored.RestoreState(snapshot_bytes).ok());
  ASSERT_TRUE(restored.Flush().ok());
  EXPECT_EQ(restored.stats().procedures_invoked, stream.size());
  EXPECT_EQ(reinvoked.load(), 0);
}

TEST(ActionPipelineTest, WalGatesRejectMismatchedSnapshots) {
  std::vector<events::Observation> stream = MakeStream(20);

  // A version-1 snapshot (no durable-action section) cannot restore into
  // a WAL-attached engine.
  Rig source;
  ASSERT_TRUE(source.Run(stream).ok());
  std::string bytes;
  ASSERT_TRUE(source.engine->SerializeState(&bytes).ok());
  snapshot::EngineSnapshot snap;
  ASSERT_TRUE(snapshot::DecodeEngineSnapshot(bytes, &snap).ok());
  snap.version = 1;
  std::string v1_bytes = snapshot::EncodeEngineSnapshot(snap);

  TempWalDir wal_dir("action_pipeline_gates");
  Result<std::unique_ptr<store::Wal>> wal = store::Wal::Open(wal_dir.str());
  ASSERT_TRUE(wal.ok());
  Rig gated;
  ASSERT_TRUE(gated.engine->AttachWal(wal->get()).ok());
  ASSERT_TRUE(gated.engine->Compile().ok());
  Status v1 = gated.engine->RestoreState(v1_bytes);
  EXPECT_EQ(v1.code(), StatusCode::kFailedPrecondition) << v1.message();

  // A snapshot whose durable LSN is ahead of the attached (empty) WAL is
  // from a different run: rejected.
  snap.version = 2;
  snap.durable_lsn = 7;
  Status ahead = gated.engine->RestoreState(snapshot::EncodeEngineSnapshot(snap));
  EXPECT_EQ(ahead.code(), StatusCode::kFailedPrecondition) << ahead.message();

  // The unmodified snapshot (durable LSN 0: no WAL at capture) restores.
  EXPECT_TRUE(gated.engine->RestoreState(bytes).ok());
}

}  // namespace
}  // namespace rfidcep::engine
