#include "engine/graph.h"

#include <gtest/gtest.h>

#include "rules/parser.h"

namespace rfidcep::engine {
namespace {

using events::ExprOp;

rules::RuleSet MustParse(std::string_view program) {
  Result<rules::RuleSet> set = rules::ParseRuleProgram(program);
  EXPECT_TRUE(set.ok()) << set.status();
  return std::move(*set);
}

TEST(IntervalPropagationTest, Fig7TopDownMin) {
  // Paper Fig. 7: E = WITHIN(TSEQ+(E1 OR E2, 0.1sec, 1sec) ; E3, 10min) —
  // after propagation every descendant carries the 10min bound.
  Result<events::EventExprPtr> expr = rules::ParseEventExpr(
      "WITHIN(SEQ(TSEQ+(observation(\"r1\", o, t) OR observation(\"r2\", o, "
      "t), 0.1sec, 1sec); observation(\"r3\", o3, t3)), 10min)");
  ASSERT_TRUE(expr.ok()) << expr.status();
  events::EventExprPtr propagated = PropagateIntervalConstraints(*expr);
  // Root SEQ: 10min.
  EXPECT_EQ(propagated->within(), 10 * kMinute);
  // TSEQ+ child: 10min.
  const events::EventExprPtr& seqplus = propagated->children()[0];
  EXPECT_EQ(seqplus->op(), ExprOp::kSeqPlus);
  EXPECT_EQ(seqplus->within(), 10 * kMinute);
  // OR under TSEQ+: 10min.
  EXPECT_EQ(seqplus->children()[0]->within(), 10 * kMinute);
  // And its primitive leaves too.
  EXPECT_EQ(seqplus->children()[0]->children()[0]->within(), 10 * kMinute);
}

TEST(IntervalPropagationTest, InnerTighterBoundWins) {
  Result<events::EventExprPtr> expr = rules::ParseEventExpr(
      "WITHIN(WITHIN(observation(\"r1\", o, t), 5sec) AND "
      "observation(\"r2\", o2, t2), 1min)");
  ASSERT_TRUE(expr.ok()) << expr.status();
  events::EventExprPtr propagated = PropagateIntervalConstraints(*expr);
  EXPECT_EQ(propagated->within(), kMinute);
  EXPECT_EQ(propagated->children()[0]->within(), 5 * kSecond);  // min(5s,60s)
  EXPECT_EQ(propagated->children()[1]->within(), kMinute);
}

TEST(EventGraphTest, MergesCommonSubgraphsAcrossRules) {
  rules::RuleSet set = MustParse(R"(
    DEFINE E1 = observation("r1", o1, t1)
    CREATE RULE a, one
    ON TSEQ(TSEQ+(E1, 0.1sec, 1sec); observation("r2", o2, t2), 10sec, 20sec)
    IF true
    DO send alarm
    CREATE RULE b, two
    ON TSEQ(TSEQ+(E1, 0.1sec, 1sec); observation("r3", o3, t3), 10sec, 20sec)
    IF true
    DO send alarm
  )");
  Result<EventGraph> graph = EventGraph::Build(set.rules);
  ASSERT_TRUE(graph.ok()) << graph.status();
  // Nodes: E1, r2-obs, r3-obs, TSEQ a, TSEQ b hash-cons, but each rule gets
  // a private TSEQ+ node (7 total, not 8): run state is materialized by the
  // parent SEQ's terminator, so sharing one TSEQ+ between rules with
  // different terminators would let one rule close the other's open run.
  EXPECT_EQ(graph->num_nodes(), 7u);
  size_t seqplus_count = 0;
  for (const GraphNode& node : graph->nodes()) {
    if (node.op == ExprOp::kSeqPlus) ++seqplus_count;
  }
  EXPECT_EQ(seqplus_count, 2u);
}

TEST(EventGraphTest, DistinctWithinBoundsAreNotMerged) {
  rules::RuleSet set = MustParse(R"(
    CREATE RULE a, one
    ON WITHIN(observation(r, o, t1); observation(r, o, t2), 5sec)
    IF true
    DO send alarm
    CREATE RULE b, two
    ON WITHIN(observation(r, o, t1); observation(r, o, t2), 9sec)
    IF true
    DO send alarm
  )");
  Result<EventGraph> graph = EventGraph::Build(set.rules);
  ASSERT_TRUE(graph.ok()) << graph.status();
  EXPECT_NE(graph->RuleRoot(0), graph->RuleRoot(1));
  // But identical bounds do merge.
  rules::RuleSet same = MustParse(R"(
    CREATE RULE a, one
    ON WITHIN(observation(r, o, t1); observation(r, o, t2), 5sec)
    IF true
    DO send alarm
    CREATE RULE b, two
    ON WITHIN(observation(r, o, t1); observation(r, o, t2), 5sec)
    IF true
    DO send alarm
  )");
  Result<EventGraph> merged = EventGraph::Build(same.rules);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->RuleRoot(0), merged->RuleRoot(1));
}

TEST(EventGraphTest, DetectionModes) {
  rules::RuleSet set = MustParse(R"(
    DEFINE E4 = observation("r4", o4, t4), type(o4) = "laptop"
    DEFINE E5 = observation("r4", o5, t5), type(o5) = "superuser"
    CREATE RULE push_rule, simple
    ON observation("r1", o, t) OR observation("r2", o, t)
    IF true
    DO send alarm
    CREATE RULE mixed_rule, negated
    ON WITHIN(E4 AND NOT E5, 5sec)
    IF true
    DO send alarm
    CREATE RULE seq_rule, packing
    ON TSEQ(TSEQ+(observation("ri", o1, t1), 0.1sec, 1sec);
            observation("rc", o2, t2), 10sec, 20sec)
    IF true
    DO send alarm
  )");
  Result<EventGraph> graph = EventGraph::Build(set.rules);
  ASSERT_TRUE(graph.ok()) << graph.status();
  EXPECT_EQ(graph->node(graph->RuleRoot(0)).mode, DetectionMode::kPush);
  EXPECT_EQ(graph->node(graph->RuleRoot(1)).mode, DetectionMode::kMixed);
  // Paper: TSEQ over a push terminator is push-detectable.
  EXPECT_EQ(graph->node(graph->RuleRoot(2)).mode, DetectionMode::kPush);
  // The TSEQ+ node itself is mixed; the NOT node is pull.
  for (const GraphNode& node : graph->nodes()) {
    if (node.op == ExprOp::kSeqPlus) {
      EXPECT_EQ(node.mode, DetectionMode::kMixed);
    }
    if (node.op == ExprOp::kNot) {
      EXPECT_EQ(node.mode, DetectionMode::kPull);
    }
  }
}

TEST(EventGraphTest, RejectsPullRootRule) {
  // A bare negation can never be detected.
  rules::RuleSet set = MustParse(R"(
    CREATE RULE invalid, bare negation
    ON NOT observation("r1", o, t)
    IF true
    DO send alarm
  )");
  Result<EventGraph> graph = EventGraph::Build(set.rules);
  EXPECT_FALSE(graph.ok());
}

TEST(EventGraphTest, RejectsUnboundedNegatedAnd) {
  rules::RuleSet set = MustParse(R"(
    CREATE RULE invalid, unbounded negation
    ON observation("r1", o, t) AND NOT observation("r2", o2, t2)
    IF true
    DO send alarm
  )");
  Result<EventGraph> graph = EventGraph::Build(set.rules);
  EXPECT_FALSE(graph.ok());
  EXPECT_EQ(graph.status().code(), StatusCode::kFailedPrecondition);
}

TEST(EventGraphTest, RejectsUnboundedSeqPlusRoot) {
  rules::RuleSet set = MustParse(R"(
    CREATE RULE invalid, unbounded aperiodic
    ON SEQ+(observation("r1", o, t))
    IF true
    DO send alarm
  )");
  Result<EventGraph> graph = EventGraph::Build(set.rules);
  EXPECT_FALSE(graph.ok());
}

TEST(EventGraphTest, AcceptsUnboundedSeqPlusUnderSeqTerminator) {
  // Snoop A* style: the terminator closes the collection.
  rules::RuleSet set = MustParse(R"(
    CREATE RULE valid, terminator closed
    ON SEQ(SEQ+(observation("r1", o1, t1)); observation("r2", o2, t2))
    IF true
    DO send alarm
  )");
  Result<EventGraph> graph = EventGraph::Build(set.rules);
  EXPECT_TRUE(graph.ok()) << graph.status();
}

TEST(EventGraphTest, RejectsNotOverNonSpontaneous) {
  rules::RuleSet set = MustParse(R"(
    CREATE RULE invalid, not over seqplus
    ON WITHIN(observation("r2", o2, t2) AND
              NOT TSEQ+(observation("r1", o, t), 0.1sec, 1sec), 10sec)
    IF true
    DO send alarm
  )");
  Result<EventGraph> graph = EventGraph::Build(set.rules);
  EXPECT_FALSE(graph.ok());
  EXPECT_EQ(graph.status().code(), StatusCode::kUnimplemented);
}

TEST(EventGraphTest, RetentionCoversParentWindows) {
  rules::RuleSet set = MustParse(R"(
    DEFINE E4 = observation("r4", o4, t4), type(o4) = "laptop"
    DEFINE E5 = observation("r4", o5, t5), type(o5) = "superuser"
    CREATE RULE r5, asset monitoring rule
    ON WITHIN(E4 AND NOT E5, 5sec)
    IF true
    DO send alarm
  )");
  Result<EventGraph> graph = EventGraph::Build(set.rules);
  ASSERT_TRUE(graph.ok()) << graph.status();
  for (const GraphNode& node : graph->nodes()) {
    if (node.op == ExprOp::kNot) {
      EXPECT_EQ(node.retention, 5 * kSecond);
    }
  }
}

TEST(EventGraphTest, JoinVarsForEqualityJoins) {
  // The duplicate-filter rule joins on (r, o); t1/t2 are not shared.
  rules::RuleSet set = MustParse(R"(
    CREATE RULE dup, duplicate detection rule
    ON WITHIN(observation(r, o, t1); observation(r, o, t2), 5sec)
    IF true
    DO send duplicate msg
  )");
  Result<EventGraph> graph = EventGraph::Build(set.rules);
  ASSERT_TRUE(graph.ok()) << graph.status();
  const GraphNode& root = graph->node(graph->RuleRoot(0));
  EXPECT_EQ(root.op, ExprOp::kSeq);
  EXPECT_EQ(root.join_vars, (std::vector<std::string>{"o", "r"}));
  EXPECT_EQ(root.bound_vars,
            (std::vector<std::string>{"o", "r", "t1", "t2"}));
}

TEST(EventGraphTest, NotLogKeyIsSharedWithProbingSibling) {
  // Infield rule: the NOT's occurrence log is keyed by (r, o), the
  // variables shared with the probing terminator.
  rules::RuleSet set = MustParse(R"(
    CREATE RULE infield, infield filtering
    ON WITHIN(NOT observation(r, o, t1); observation(r, o, t2), 30sec)
    IF true
    DO send alarm
  )");
  Result<EventGraph> graph = EventGraph::Build(set.rules);
  ASSERT_TRUE(graph.ok()) << graph.status();
  bool found = false;
  for (const GraphNode& node : graph->nodes()) {
    if (node.op == ExprOp::kNot) {
      found = true;
      EXPECT_EQ(node.join_vars, (std::vector<std::string>{"o", "r"}));
      EXPECT_TRUE(node.bound_vars.empty());  // NOT binds nothing itself.
    }
  }
  EXPECT_TRUE(found);
  // Rule 5 shape: no shared variables -> empty NOT key (single bucket).
  rules::RuleSet monitor = MustParse(R"(
    DEFINE E4 = observation("r4", o4, t4)
    DEFINE E5 = observation("r4", o5, t5)
    CREATE RULE r5, monitor
    ON WITHIN(E4 AND NOT E5, 5sec)
    IF true
    DO send alarm
  )");
  Result<EventGraph> g2 = EventGraph::Build(monitor.rules);
  ASSERT_TRUE(g2.ok());
  for (const GraphNode& node : g2->nodes()) {
    if (node.op == ExprOp::kNot) {
      EXPECT_TRUE(node.join_vars.empty());
    }
  }
}

TEST(EventGraphTest, OrBoundVarsAreTheIntersection) {
  rules::RuleSet set = MustParse(R"(
    CREATE RULE u, union
    ON observation("a", o, t1) OR observation("b", o, t2)
    IF true
    DO send alarm
  )");
  Result<EventGraph> graph = EventGraph::Build(set.rules);
  ASSERT_TRUE(graph.ok());
  const GraphNode& root = graph->node(graph->RuleRoot(0));
  ASSERT_EQ(root.op, ExprOp::kOr);
  // Only `o` is bound by both branches (t1 vs t2 differ).
  EXPECT_EQ(root.bound_vars, (std::vector<std::string>{"o"}));
}

TEST(EventGraphTest, DebugStringListsAllNodes) {
  rules::RuleSet set = MustParse(R"(
    CREATE RULE a, one
    ON observation("r1", o, t)
    IF true
    DO send alarm
  )");
  Result<EventGraph> graph = EventGraph::Build(set.rules);
  ASSERT_TRUE(graph.ok());
  std::string dump = graph->DebugString();
  EXPECT_NE(dump.find("push"), std::string::npos);
  EXPECT_NE(dump.find("rules: 0"), std::string::npos);
}

}  // namespace
}  // namespace rfidcep::engine
