// Shared helpers for engine tests: build an engine from rule text, feed a
// scripted observation history, and record matches.

#ifndef RFIDCEP_TESTS_ENGINE_TEST_UTIL_H_
#define RFIDCEP_TESTS_ENGINE_TEST_UTIL_H_

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "epc/catalog.h"
#include "events/observation.h"
#include "store/database.h"

namespace rfidcep::engine::testing {

struct RecordedMatch {
  std::string rule_id;
  TimePoint t_begin;
  TimePoint t_end;
  events::EventInstancePtr instance;
};

// Owns a database, catalogs, and an engine wired to record every match.
class EngineHarness {
 public:
  explicit EngineHarness(EngineOptions options = {}) {
    EXPECT_TRUE(db.InstallRfidSchema().ok());
    engine = std::make_unique<RcedaEngine>(
        &db, events::Environment{&catalog, &readers}, options);
    engine->SetMatchCallback(
        [this](const rules::Rule& rule, const events::EventInstancePtr& e) {
          matches.push_back(
              RecordedMatch{rule.id, e->t_begin(), e->t_end(), e});
        });
  }

  Status AddRules(std::string_view program) {
    return engine->AddRulesFromText(program);
  }

  // Feeds observation(reader, object, t_seconds) — seconds for readability.
  // Compiles on first use so tests can focus on detection semantics.
  Status ObserveAt(const std::string& reader, const std::string& object,
                   double t_seconds) {
    if (!engine->compiled()) {
      if (Status s = engine->Compile(); !s.ok()) return s;
    }
    return engine->Process(events::Observation{
        reader, object,
        static_cast<TimePoint>(t_seconds * kSecond)});
  }

  std::vector<RecordedMatch> MatchesFor(const std::string& rule_id) const {
    std::vector<RecordedMatch> out;
    for (const RecordedMatch& match : matches) {
      if (match.rule_id == rule_id) out.push_back(match);
    }
    return out;
  }

  store::Database db;
  epc::ProductCatalog catalog;
  epc::ReaderRegistry readers;
  std::unique_ptr<RcedaEngine> engine;
  std::vector<RecordedMatch> matches;
};

}  // namespace rfidcep::engine::testing

#endif  // RFIDCEP_TESTS_ENGINE_TEST_UTIL_H_
