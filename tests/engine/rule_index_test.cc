// Rule-set compiler tests: vocabulary-indexed dispatch (PrimitiveIndex
// construction over the paper rule families), predicate pushdown
// equivalence, the all-wildcard full-scan fallback, safe cross-rule SEQ+
// prefix sharing (ownership isolation), and snapshot round-trips across
// shared/unshared compile modes.

#include "engine/rule_index.h"

#include <cstdio>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "engine/graph.h"
#include "epc/epc.h"
#include "rules/parser.h"
#include "test_util.h"

namespace rfidcep::engine {
namespace {

using rfidcep::engine::testing::EngineHarness;

rules::RuleSet MustParse(std::string_view program) {
  Result<rules::RuleSet> set = rules::ParseRuleProgram(program);
  EXPECT_TRUE(set.ok()) << set.status();
  return std::move(*set);
}

EventGraph MustBuild(const rules::RuleSet& set, bool share_prefixes = false) {
  Result<EventGraph> graph = EventGraph::Build(set.rules, share_prefixes);
  EXPECT_TRUE(graph.ok()) << graph.status();
  return std::move(*graph);
}

std::string LaptopEpc(uint64_t serial) {
  Result<epc::Epc> epc = epc::Epc::MakeSgtin(1, 614141, 7, 300003, serial);
  EXPECT_TRUE(epc.ok());
  return epc->ToUri();
}

// The paper rule families, compacted: a reader literal (containment), a
// group constraint (location), a group + type pair (asset monitoring on
// typed objects), and a type-only leaf.
constexpr std::string_view kFamilyProgram = R"(
  CREATE RULE lit, reader literal
  ON observation("r_conv", o, t)
  IF true
  DO send alarm
  CREATE RULE grp, group keyed
  ON observation(r, o, t), group(r) = "g_dock"
  IF true
  DO send alarm
  CREATE RULE typed, group and type
  ON observation(r, o, t), group(r) = "g_exit", type(o) = "laptop"
  IF true
  DO send alarm
  CREATE RULE typeonly, type only
  ON observation(r, o, t), type(o) = "laptop"
  IF true
  DO send alarm
)";

TEST(RuleIndexTest, BucketsPaperFamiliesByVocabulary) {
  rules::RuleSet set = MustParse(kFamilyProgram);
  EventGraph graph = MustBuild(set);
  PrimitiveIndex index(graph, /*predicate_pushdown=*/true);

  EXPECT_FALSE(index.fullscan_fallback());
  EXPECT_TRUE(index.has_typed_entries());

  // Reader literal and group constraints key buckets.
  ASSERT_NE(index.FindReaderBucket("r_conv"), nullptr);
  ASSERT_NE(index.FindReaderBucket("g_dock"), nullptr);
  const PrimitiveIndex::Bucket* exit_bucket = index.FindReaderBucket("g_exit");
  ASSERT_NE(exit_bucket, nullptr);
  EXPECT_EQ(index.FindReaderBucket("nowhere"), nullptr);

  // The pushed type(o) constraint keys a sub-bucket; its entry needs no
  // full Matches() re-check, only the group residual (reachable through
  // the raw-reader probe, where the probe key does not imply the group).
  ASSERT_EQ(exit_bucket->by_type.count("laptop"), 1u);
  EXPECT_TRUE(exit_bucket->untyped.empty());
  const DispatchEntry& typed = exit_bucket->by_type.find("laptop")->second[0];
  EXPECT_FALSE(typed.needs_full_match);
  EXPECT_TRUE(typed.check_group);
  EXPECT_EQ(typed.group, "g_exit");

  // The type-only leaf has no reader vocabulary: it lives in the unkeyed
  // bucket, typed sub-bucket — so a non-laptop observation skips it.
  EXPECT_EQ(index.unkeyed().by_type.count("laptop"), 1u);
  EXPECT_TRUE(index.unkeyed().untyped.empty());
}

TEST(RuleIndexTest, WithoutPushdownEntriesFallBackToFullMatch) {
  rules::RuleSet set = MustParse(kFamilyProgram);
  EventGraph graph = MustBuild(set);
  PrimitiveIndex index(graph, /*predicate_pushdown=*/false);

  EXPECT_FALSE(index.fullscan_fallback());
  EXPECT_FALSE(index.has_typed_entries());
  const PrimitiveIndex::Bucket* exit_bucket = index.FindReaderBucket("g_exit");
  ASSERT_NE(exit_bucket, nullptr);
  EXPECT_TRUE(exit_bucket->by_type.empty());
  ASSERT_EQ(exit_bucket->untyped.size(), 1u);
  EXPECT_TRUE(exit_bucket->untyped[0].needs_full_match);
}

TEST(RuleIndexTest, AllWildcardRuleSetIsFullScanFallback) {
  rules::RuleSet set = MustParse(R"(
    CREATE RULE any, wildcard
    ON observation(r, o, t)
    IF true
    DO send alarm
  )");
  EventGraph graph = MustBuild(set);
  PrimitiveIndex index(graph, /*predicate_pushdown=*/true);
  EXPECT_TRUE(index.fullscan_fallback());
  ASSERT_EQ(index.unkeyed().untyped.size(), 1u);
}

TEST(RuleIndexTest, FullScanFallbackStillMatchesAndIsCounted) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE any, wildcard
    ON observation(r, o, t)
    IF true
    DO send alarm
  )").ok());
  ASSERT_TRUE(h.ObserveAt("somewhere", "x", 1).ok());
  ASSERT_TRUE(h.ObserveAt("elsewhere", "y", 2).ok());
  EXPECT_EQ(h.matches.size(), 2u);
  // The degradation is surfaced, not silent.
  EXPECT_NE(h.engine->DebugReport().find("dispatch_fullscan=2"),
            std::string::npos);
}

// Runs kFamilyProgram-style traffic through one engine configuration
// and returns the (rule id, t_begin, t_end) match sequence.
std::vector<std::tuple<std::string, TimePoint, TimePoint>> RunFamilies(
    const CompileOptions& compile) {
  EngineOptions options;
  options.detector.compile = compile;
  EngineHarness h(options);
  h.readers.RegisterReader("dock1", "g_dock", "dock");
  h.readers.RegisterReader("exit1", "g_exit", "exit");
  EXPECT_TRUE(
      h.catalog.RegisterItemClass(614141, 7, 300003, "laptop").ok());
  EXPECT_TRUE(h.AddRules(std::string(kFamilyProgram)).ok());
  const std::string laptop = LaptopEpc(7);
  EXPECT_TRUE(h.ObserveAt("r_conv", "plain", 1).ok());
  EXPECT_TRUE(h.ObserveAt("dock1", laptop, 2).ok());   // grp + typeonly.
  EXPECT_TRUE(h.ObserveAt("exit1", laptop, 3).ok());   // typed + typeonly.
  EXPECT_TRUE(h.ObserveAt("exit1", "plain", 4).ok());  // Nothing.
  EXPECT_TRUE(h.ObserveAt("unknown", laptop, 5).ok()); // typeonly.
  EXPECT_TRUE(h.engine->Flush().ok());
  std::vector<std::tuple<std::string, TimePoint, TimePoint>> out;
  for (const auto& match : h.matches) {
    out.emplace_back(match.rule_id, match.t_begin, match.t_end);
  }
  return out;
}

TEST(RuleIndexTest, IndexAndPushdownPreserveLegacyDispatchExactly) {
  CompileOptions full;  // Defaults: everything on.
  CompileOptions no_pushdown;
  no_pushdown.predicate_pushdown = false;
  CompileOptions legacy;
  legacy.indexed_dispatch = false;
  legacy.predicate_pushdown = false;

  auto want = RunFamilies(legacy);
  ASSERT_EQ(want.size(), 6u);  // The workload exercises every family.
  EXPECT_EQ(RunFamilies(full), want);
  EXPECT_EQ(RunFamilies(no_pushdown), want);
}

// --- SEQ+ prefix sharing ----------------------------------------------------

// Two rules over the same bounded TSEQ+ prefix behind NEGATION
// terminators (the run still closes via the SEQ+ node's own expiry, so
// sharing is safe) plus a third whose identical-looking TSEQ+ is
// terminator-closed — its terminator CONSUMES the run, so it must keep
// a private copy even under share_prefixes.
constexpr std::string_view kSharingProgram = R"(
  DEFINE E1 = observation("r_conv", o1, t1)
  CREATE RULE wa, exit negated
  ON TSEQ(TSEQ+(E1, 0.1sec, 1sec); NOT observation("r_exit", o2, t2),
          2sec, 4sec)
  IF true
  DO send alarm
  CREATE RULE nb, case negated
  ON TSEQ(TSEQ+(E1, 0.1sec, 1sec); NOT observation("r_case", o2, t2),
          2sec, 4sec)
  IF true
  DO send alarm
  CREATE RULE ct, closed terminator
  ON TSEQ(TSEQ+(E1, 0.1sec, 1sec); observation("r_case", o2, t2),
          2sec, 4sec)
  IF true
  DO send alarm
)";

TEST(PrefixSharingTest, EligibleSeqPlusSharesIneligibleStaysPrivate) {
  rules::RuleSet set = MustParse(kSharingProgram);
  EventGraph unshared = MustBuild(set, /*share_prefixes=*/false);
  EventGraph shared = MustBuild(set, /*share_prefixes=*/true);

  auto count_seqplus = [](const EventGraph& g) {
    int n = 0;
    for (const GraphNode& node : g.nodes()) {
      if (node.op == events::ExprOp::kSeqPlus) ++n;
    }
    return n;
  };
  // wa + nb merge their eligible prefix; ct keeps a private copy.
  EXPECT_EQ(count_seqplus(unshared), 3);
  EXPECT_EQ(count_seqplus(shared), 2);

  // State keys: the shared node is canonical-keyed; the terminator-closed
  // copy stays positionally keyed, byte-identical to the unshared layout.
  std::vector<std::string> rule_ids;
  for (const rules::Rule& rule : set.rules) rule_ids.push_back(rule.id);
  bool saw_shared_key = false;
  for (const std::string& key : shared.NodeStateKeys(rule_ids)) {
    if (key.rfind("shared|", 0) == 0) saw_shared_key = true;
  }
  EXPECT_TRUE(saw_shared_key);
  for (const std::string& key : unshared.NodeStateKeys(rule_ids)) {
    EXPECT_NE(key.rfind("shared|", 0), 0u) << key;
  }

  // Aliases mark the share-eligible SEQ+ in BOTH modes (that is what
  // makes snapshots portable across them), and nothing else.
  auto eligible_aliases = [](const EventGraph& g) {
    int n = 0;
    for (const std::string& alias : g.NodeStateAliases()) {
      if (!alias.empty()) ++n;
    }
    return n;
  };
  EXPECT_EQ(eligible_aliases(shared), 1);
  EXPECT_EQ(eligible_aliases(unshared), 2);  // One per private copy.
}

// Feeds the sharing workload: two TSEQ+ runs on r_conv, one of them
// confirmed by an r_case terminator, plus unrelated traffic.
void FeedSharingStream(EngineHarness& h, double offset = 0) {
  EXPECT_TRUE(h.ObserveAt("r_conv", "a", offset + 1.0).ok());
  EXPECT_TRUE(h.ObserveAt("r_conv", "b", offset + 1.5).ok());
  EXPECT_TRUE(h.ObserveAt("r_conv", "c", offset + 2.0).ok());
  // Consumes ct's private run AND falsifies nb's negation window; wa's
  // r_exit negation still holds, so run 1 fires wa + ct but not nb.
  EXPECT_TRUE(h.ObserveAt("r_case", "K", offset + 4.5).ok());
  // Run 2 gets no terminator: once the clock moves past its windows
  // (or at Flush), both negation rules fire and ct stays silent.
  EXPECT_TRUE(h.ObserveAt("r_conv", "d", offset + 8.0).ok());
  EXPECT_TRUE(h.ObserveAt("r_conv", "e", offset + 8.4).ok());
}

// The continuation fed after the snapshot cut: closes the open (d, e)
// run, then a third wave whose wa-negation IS falsified by r_exit.
void FeedSharingSuffix(EngineHarness& h) {
  EXPECT_TRUE(h.ObserveAt("elsewhere", "x", 14.0).ok());
  EXPECT_TRUE(h.ObserveAt("r_conv", "f", 20.1).ok());
  EXPECT_TRUE(h.ObserveAt("r_conv", "g", 20.6).ok());
  EXPECT_TRUE(h.ObserveAt("r_exit", "X", 24.0).ok());
  EXPECT_TRUE(h.ObserveAt("elsewhere", "x", 30.0).ok());
}

std::vector<std::tuple<std::string, TimePoint, TimePoint>> RunSharing(
    bool share_prefixes) {
  EngineOptions options;
  options.detector.compile.share_prefixes = share_prefixes;
  EngineHarness h(options);
  EXPECT_TRUE(h.AddRules(std::string(kSharingProgram)).ok());
  FeedSharingStream(h);
  EXPECT_TRUE(h.engine->Flush().ok());
  std::vector<std::tuple<std::string, TimePoint, TimePoint>> out;
  for (const auto& match : h.matches) {
    out.emplace_back(match.rule_id, match.t_begin, match.t_end);
  }
  return out;
}

TEST(PrefixSharingTest, SharedCompileKeepsRunOwnershipPerRule) {
  auto want = RunSharing(false);
  auto got = RunSharing(true);
  // Every rule fired somewhere in the workload — in particular ct's
  // terminator consumed ITS private run without disturbing the runs the
  // shared node holds for wa and nb.
  bool wa = false, nb = false, ct = false;
  for (const auto& [id, b, e] : want) {
    wa |= id == "wa";
    nb |= id == "nb";
    ct |= id == "ct";
  }
  EXPECT_TRUE(wa);
  EXPECT_TRUE(nb);
  EXPECT_TRUE(ct);
  EXPECT_EQ(got, want);
}

// --- Snapshot round-trips across compile modes ------------------------------

class CompileModeSnapshotTest
    : public ::testing::TestWithParam<std::pair<bool, bool>> {};

TEST_P(CompileModeSnapshotTest, RoundTripsAcrossSharedAndUnshared) {
  const auto [capture_shared, restore_shared] = GetParam();
  auto make = [](bool share) {
    EngineOptions options;
    options.detector.compile.share_prefixes = share;
    auto h = std::make_unique<EngineHarness>(options);
    EXPECT_TRUE(h->AddRules(std::string(kSharingProgram)).ok());
    return h;
  };

  // Reference: the whole stream, uninterrupted, in the RESTORE mode.
  auto reference = make(restore_shared);
  FeedSharingStream(*reference);
  FeedSharingSuffix(*reference);
  EXPECT_TRUE(reference->engine->Flush().ok());

  // Capture mid-stream — the (d, e) TSEQ+ run is still OPEN at the cut,
  // with its expiry pseudo and negation windows pending — then restore
  // into the other compile mode and continue.
  const std::string path =
      ::testing::TempDir() + "rule_index_compile_mode.snap";
  auto first = make(capture_shared);
  FeedSharingStream(*first);
  ASSERT_TRUE(first->engine->Checkpoint(path).ok());
  auto second = make(restore_shared);
  ASSERT_TRUE(second->engine->Compile().ok());
  ASSERT_TRUE(second->engine->Restore(path).ok());
  std::remove(path.c_str());
  FeedSharingSuffix(*second);
  EXPECT_TRUE(second->engine->Flush().ok());

  // Matches fired before the cut live in `first`; the concatenation must
  // replay the uninterrupted run exactly.
  std::vector<std::tuple<std::string, TimePoint, TimePoint>> got, want;
  for (const auto& m : first->matches) {
    got.emplace_back(m.rule_id, m.t_begin, m.t_end);
  }
  for (const auto& m : second->matches) {
    got.emplace_back(m.rule_id, m.t_begin, m.t_end);
  }
  for (const auto& m : reference->matches) {
    want.emplace_back(m.rule_id, m.t_begin, m.t_end);
  }
  ASSERT_FALSE(want.empty());
  EXPECT_FALSE(second->matches.empty());  // The open run survived the cut.
  EXPECT_EQ(got, want);
}

INSTANTIATE_TEST_SUITE_P(
    AllModePairs, CompileModeSnapshotTest,
    ::testing::Values(std::pair(false, false), std::pair(false, true),
                      std::pair(true, false), std::pair(true, true)),
    [](const ::testing::TestParamInfo<std::pair<bool, bool>>& info) {
      return std::string(info.param.first ? "shared" : "unshared") + "_to_" +
             (info.param.second ? "shared" : "unshared");
    });

}  // namespace
}  // namespace rfidcep::engine
