// Regression: a checkpoint captured on a data-partitioned engine must
// restore into any layout without inventing or losing matches for
// negation (WITHIN ... AND NOT ...) rules whose confirmation pseudos
// straddle the cut. Distilled from differential-fuzz seed 51365158574:
// two EPC keys on different replicas each hold an open negation window
// at the capture instant, and the merged snapshot has to keep each
// pending confirmation anchored to ITS OWN initiator.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "events/observation.h"
#include "rules/parser.h"

namespace rfidcep::engine {
namespace {

using events::Observation;

constexpr char kNegationRule[] =
    "CREATE RULE f1, fuzz distilled\n"
    "ON WITHIN((observation(\"B\", o, t2) AND NOT observation(\"C\", o, t1)),"
    " 15sec)\n"
    "IF true DO act\n";

struct Span {
  std::string rule;
  TimePoint t_begin;
  TimePoint t_end;
  friend bool operator==(const Span& a, const Span& b) {
    return a.rule == b.rule && a.t_begin == b.t_begin && a.t_end == b.t_end;
  }
};

struct Harness {
  std::unique_ptr<RcedaEngine> engine;
  std::vector<Span> matches;

  static std::unique_ptr<Harness> Make(int shards, PartitionMode partition) {
    auto h = std::make_unique<Harness>();
    EngineOptions options;
    options.detector.context = ParameterContext::kChronicle;
    options.shards = shards;
    options.partition = partition;
    h->engine = std::make_unique<RcedaEngine>(/*db=*/nullptr,
                                              events::Environment{}, options);
    std::vector<Span>* out = &h->matches;
    h->engine->SetMatchCallback(
        [out](const rules::Rule& rule, const events::EventInstancePtr& e) {
          out->push_back(Span{rule.id, e->t_begin(), e->t_end()});
        });
    if (!h->engine->AddRulesFromText(kNegationRule).ok()) return nullptr;
    if (!h->engine->Compile().ok()) return nullptr;
    return h;
  }
};

std::vector<Observation> Stream() {
  // Trimmed from the fuzz stream: B,z opens a window at 3s (falsified by
  // C,z at 11.999s), B,y opens one at 5.999s (falsified by C,y at
  // 19.999s — after the cut). Neither rule instance may fire.
  return {
      {"B", "z", 3000000},
      {"B", "y", 5999999},
      {"C", "z", 11999999},
      {"B", "z", 12999998},
      {"A", "y", 14999998},  // <- cut after this observation
      {"B", "z", 15999998},
      {"C", "y", 19999999},
      {"A", "y", 42000000},
  };
}

void RunCutAt(size_t cut, int src_shards, PartitionMode src_mode,
              int tgt_shards, PartitionMode tgt_mode) {
  std::vector<Observation> stream = Stream();
  ASSERT_LE(cut, stream.size());

  auto reference = Harness::Make(1, PartitionMode::kRule);
  ASSERT_NE(reference, nullptr);
  ASSERT_TRUE(reference->engine->ProcessAll(stream).ok());
  ASSERT_TRUE(reference->engine->Flush().ok());

  auto source = Harness::Make(src_shards, src_mode);
  ASSERT_NE(source, nullptr);
  std::vector<Observation> head(stream.begin(),
                                stream.begin() + static_cast<long>(cut));
  std::vector<Observation> tail(stream.begin() + static_cast<long>(cut),
                                stream.end());
  ASSERT_TRUE(source->engine->ProcessAll(head).ok());
  std::string bytes;
  ASSERT_TRUE(source->engine->SerializeState(&bytes).ok());

  auto target = Harness::Make(tgt_shards, tgt_mode);
  ASSERT_NE(target, nullptr);
  ASSERT_TRUE(target->engine->RestoreState(bytes).ok());
  ASSERT_TRUE(target->engine->ProcessAll(tail).ok());
  ASSERT_TRUE(target->engine->Flush().ok());

  std::vector<Span> combined = source->matches;
  combined.insert(combined.end(), target->matches.begin(),
                  target->matches.end());
  EXPECT_EQ(combined, reference->matches)
      << "cut " << cut << ", " << src_shards << " -> " << tgt_shards;
}

TEST(DataPartitionRecoveryTest, PendingNegationWindowsStayPerKey) {
  // The fuzz failure: 2-shard data-partitioned capture between the two
  // falsifiers, restored serially, fired y's window with z's deadline.
  for (size_t cut = 0; cut <= Stream().size(); ++cut) {
    RunCutAt(cut, /*src_shards=*/2, PartitionMode::kData,
             /*tgt_shards=*/1, PartitionMode::kRule);
  }
}

TEST(DataPartitionRecoveryTest, AllLayoutPairsAgree) {
  struct Layout {
    int shards;
    PartitionMode mode;
  };
  const Layout layouts[] = {{1, PartitionMode::kRule},
                            {2, PartitionMode::kRule},
                            {2, PartitionMode::kData},
                            {4, PartitionMode::kData}};
  for (const Layout& src : layouts) {
    for (const Layout& tgt : layouts) {
      RunCutAt(/*cut=*/5, src.shards, src.mode, tgt.shards, tgt.mode);
    }
  }
}

}  // namespace
}  // namespace rfidcep::engine
