// Hashed join-key regressions: slot buffers and NOT logs bucket instances
// by a 64-bit hash of their equality-join values (see detector.h). Distinct
// join tuples may share a bucket — by hash collision or via the wildcard
// bucket that holds instances missing a join variable — and pairing must
// then fall back to full unification. `debug_force_join_collisions` maps
// every complete key onto one constant bucket, turning the rare collision
// path into the only path: detection results must be identical.

#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "tests/engine/test_util.h"

namespace rfidcep::engine {
namespace {

using ::rfidcep::engine::testing::EngineHarness;
using ::rfidcep::engine::testing::RecordedMatch;

EngineOptions ForcedCollisions(
    ParameterContext context = ParameterContext::kChronicle) {
  EngineOptions options;
  options.detector.context = context;
  options.detector.debug_force_join_collisions = true;
  return options;
}

std::vector<std::tuple<std::string, TimePoint, TimePoint>> Summarize(
    const std::vector<RecordedMatch>& matches) {
  std::vector<std::tuple<std::string, TimePoint, TimePoint>> out;
  out.reserve(matches.size());
  for (const RecordedMatch& m : matches) {
    out.emplace_back(m.rule_id, m.t_begin, m.t_end);
  }
  return out;
}

constexpr char kJoinSeqRule[] = R"(
  CREATE RULE pair, same object sequence
  ON WITHIN(observation("a", o, t1); observation("b", o, t2), 10sec)
  IF true
  DO send alarm
)";

// Interleaved objects across both readers; several same object pairs and
// several near-miss tuples that only unification can tell apart.
void FeedInterleaved(EngineHarness* h) {
  const char* objects[] = {"o1", "o2", "o3", "o4", "o5"};
  double t = 0;
  for (const char* obj : objects) {
    ASSERT_TRUE(h->ObserveAt("a", obj, t += 1).ok());
  }
  for (const char* obj : objects) {
    ASSERT_TRUE(h->ObserveAt("b", obj, t += 1).ok());
  }
  // A second wave pairing across the first (chronicle consumes initiators).
  ASSERT_TRUE(h->ObserveAt("a", "o2", t += 1).ok());
  ASSERT_TRUE(h->ObserveAt("b", "o2", t += 1).ok());
  ASSERT_TRUE(h->engine->Flush().ok());
}

TEST(JoinKeyCollisionTest, ForcedCollisionsMatchTheNormalRun) {
  EngineHarness normal;
  EngineHarness collided(ForcedCollisions());
  ASSERT_TRUE(normal.AddRules(kJoinSeqRule).ok());
  ASSERT_TRUE(collided.AddRules(kJoinSeqRule).ok());
  FeedInterleaved(&normal);
  FeedInterleaved(&collided);
  EXPECT_FALSE(normal.matches.empty());
  EXPECT_EQ(Summarize(normal.matches), Summarize(collided.matches));
}

TEST(JoinKeyCollisionTest, CollidingTuplesStillRefuseToPair) {
  // (a, o1) and (b, o2) share the forced bucket but do not unify on `o`;
  // the bucket scan's unification re-check must reject the pair.
  EngineHarness h(ForcedCollisions());
  ASSERT_TRUE(h.AddRules(kJoinSeqRule).ok());
  ASSERT_TRUE(h.ObserveAt("a", "o1", 1).ok());
  ASSERT_TRUE(h.ObserveAt("b", "o2", 2).ok());
  ASSERT_TRUE(h.engine->Flush().ok());
  EXPECT_TRUE(h.matches.empty());
}

TEST(JoinKeyCollisionTest, EveryContextSurvivesForcedCollisions) {
  for (ParameterContext context :
       {ParameterContext::kChronicle, ParameterContext::kRecent,
        ParameterContext::kContinuous, ParameterContext::kCumulative,
        ParameterContext::kUnrestricted}) {
    EngineOptions plain;
    plain.detector.context = context;
    EngineHarness normal(plain);
    EngineHarness collided(ForcedCollisions(context));
    ASSERT_TRUE(normal.AddRules(kJoinSeqRule).ok());
    ASSERT_TRUE(collided.AddRules(kJoinSeqRule).ok());
    FeedInterleaved(&normal);
    FeedInterleaved(&collided);
    EXPECT_EQ(Summarize(normal.matches), Summarize(collided.matches))
        << "context " << static_cast<int>(context);
  }
}

constexpr char kNotJoinRule[] = R"(
  CREATE RULE guarded, same object negation
  ON WITHIN(observation("a", o, t1) AND NOT observation("b", o, t2), 5sec)
  IF true
  DO send alarm
)";

TEST(JoinKeyCollisionTest, NotLogCollisionsDoNotFalsifyOtherObjects) {
  // The NOT log joins on `o`. With collisions forced, the b@2 occurrence
  // for o2 lands in the same bucket the o1 probe scans; only unification
  // keeps it from falsifying o1's anchor.
  EngineHarness h(ForcedCollisions());
  ASSERT_TRUE(h.AddRules(kNotJoinRule).ok());
  ASSERT_TRUE(h.ObserveAt("a", "o1", 1).ok());
  ASSERT_TRUE(h.ObserveAt("b", "o2", 2).ok());   // Different object.
  ASSERT_TRUE(h.ObserveAt("a", "o3", 20).ok());
  ASSERT_TRUE(h.ObserveAt("b", "o3", 21).ok());  // Same object: falsifies.
  ASSERT_TRUE(h.engine->Flush().ok());
  ASSERT_EQ(h.matches.size(), 1u);
  EXPECT_EQ(h.matches[0].t_begin, 1 * kSecond);  // o1 confirmed, o3 killed.
}

// Under the cumulative context a complex instance's bindings are demoted
// to multi-valued, so a nested conjunction's inner instances miss their
// outer join variable and land in the wildcard bucket; the completing
// side arrives equally incomplete and must scan every bucket. Two inner
// pairs (all-multi on both sides) unify, so the outer event fires.
constexpr char kNestedAndRule[] = R"(
  CREATE RULE nested, nested conjunction
  ON WITHIN((observation("a", o, t1) AND observation("b", o, t2))
            AND (observation("c", o, t3) AND observation("d", o, t4)),
            20sec)
  IF true
  DO send alarm
)";

TEST(WildcardBucketTest, CumulativeInstancesPairThroughTheWildcardBucket) {
  EngineOptions options;
  options.detector.context = ParameterContext::kCumulative;
  EngineHarness h(options);
  ASSERT_TRUE(h.AddRules(kNestedAndRule).ok());
  ASSERT_TRUE(h.ObserveAt("a", "o1", 1).ok());
  ASSERT_TRUE(h.ObserveAt("b", "o1", 2).ok());  // Inner (a AND b) fires.
  ASSERT_TRUE(h.ObserveAt("c", "o1", 3).ok());
  ASSERT_TRUE(h.ObserveAt("d", "o1", 4).ok());  // Inner (c AND d) fires.
  ASSERT_TRUE(h.engine->Flush().ok());
  ASSERT_EQ(h.matches.size(), 1u);
  EXPECT_EQ(h.matches[0].t_begin, 1 * kSecond);
  EXPECT_EQ(h.matches[0].t_end, 4 * kSecond);
}

TEST(WildcardBucketTest, WildcardPairingIsCollisionProof) {
  EngineOptions plain;
  plain.detector.context = ParameterContext::kCumulative;
  EngineHarness normal(plain);
  EngineHarness collided(ForcedCollisions(ParameterContext::kCumulative));
  for (EngineHarness* h : {&normal, &collided}) {
    ASSERT_TRUE(h->AddRules(kNestedAndRule).ok());
    ASSERT_TRUE(h->ObserveAt("a", "o1", 1).ok());
    ASSERT_TRUE(h->ObserveAt("b", "o1", 2).ok());
    ASSERT_TRUE(h->ObserveAt("c", "o1", 3).ok());
    ASSERT_TRUE(h->ObserveAt("d", "o1", 4).ok());
    ASSERT_TRUE(h->engine->Flush().ok());
  }
  EXPECT_EQ(Summarize(normal.matches), Summarize(collided.matches));
}

}  // namespace
}  // namespace rfidcep::engine
