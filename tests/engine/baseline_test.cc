// The §4.1 incorrectness reproduction: on the Fig. 4 history, a
// traditional type-level ECA engine (constraints checked as post-hoc
// conditions) detects nothing, while RCEDA detects both episodes.

#include "engine/baseline/type_level_detector.h"

#include <gtest/gtest.h>

#include "rules/parser.h"
#include "tests/engine/test_util.h"

namespace rfidcep::engine::baseline {
namespace {

using ::rfidcep::engine::testing::EngineHarness;
using events::Observation;

constexpr char kFig4Expr[] =
    "TSEQ(TSEQ+(observation(\"A\", o1, t1), 0sec, 1sec); "
    "observation(\"B\", o2, t2), 5sec, 10sec)";

std::vector<Observation> Fig4History() {
  std::vector<Observation> history;
  for (int t : {1, 2, 3, 5, 6, 7}) {
    history.push_back(
        Observation{"A", "item" + std::to_string(t),
                    static_cast<TimePoint>(t) * kSecond});
  }
  history.push_back(Observation{"B", "case1", 12 * kSecond});
  history.push_back(Observation{"B", "case2", 15 * kSecond});
  return history;
}

TEST(TypeLevelBaselineTest, Fig4DetectsNothing) {
  Result<events::EventExprPtr> expr = rules::ParseEventExpr(kFig4Expr);
  ASSERT_TRUE(expr.ok()) << expr.status();
  events::Environment env;
  size_t accepted = 0;
  Result<std::unique_ptr<TypeLevelDetector>> detector = TypeLevelDetector::Create(
      *expr, &env, [&](const events::EventInstancePtr&) { ++accepted; });
  ASSERT_TRUE(detector.ok()) << detector.status();
  for (const Observation& obs : Fig4History()) {
    ASSERT_TRUE((*detector)->Process(obs).ok());
  }
  // Type-level detection produced a candidate match at e2@12...
  EXPECT_EQ((*detector)->stats().type_level_matches, 1u);
  // ...but the post-hoc distance check rejects it (gap 3s->5s > 1s), so
  // the engine reports zero instances — the paper's incorrectness claim.
  EXPECT_EQ(accepted, 0u);
  EXPECT_EQ((*detector)->stats().rejected, 1u);
}

TEST(TypeLevelBaselineTest, RcedaDetectsBothOnSameHistory) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(std::string("CREATE RULE fig4, packing\nON ") +
                         kFig4Expr + "\nIF true\nDO send alarm")
                  .ok());
  ASSERT_TRUE(h.engine->Compile().ok());
  for (const Observation& obs : Fig4History()) {
    ASSERT_TRUE(h.engine->Process(obs).ok());
  }
  EXPECT_EQ(h.matches.size(), 2u);
}

TEST(TypeLevelBaselineTest, AgreesWithRcedaWhenConstraintsAreSlack) {
  // With no tight adjacent-distance bound, both engines find the episode.
  const char* expr_text =
      "TSEQ(TSEQ+(observation(\"A\", o1, t1), 0sec, 100sec); "
      "observation(\"B\", o2, t2), 1sec, 100sec)";
  Result<events::EventExprPtr> expr = rules::ParseEventExpr(expr_text);
  ASSERT_TRUE(expr.ok()) << expr.status();
  events::Environment env;
  size_t accepted = 0;
  auto detector = TypeLevelDetector::Create(
      *expr, &env, [&](const events::EventInstancePtr&) { ++accepted; });
  ASSERT_TRUE(detector.ok());
  for (const Observation& obs : Fig4History()) {
    ASSERT_TRUE((*detector)->Process(obs).ok());
  }
  EXPECT_EQ(accepted, 1u);  // All six items + case1 in one collection.
}

TEST(TypeLevelBaselineTest, SimpleSeqWorks) {
  Result<events::EventExprPtr> expr = rules::ParseEventExpr(
      "SEQ(observation(\"A\", o1, t1); observation(\"B\", o2, t2))");
  ASSERT_TRUE(expr.ok());
  events::Environment env;
  size_t accepted = 0;
  auto detector = TypeLevelDetector::Create(
      *expr, &env, [&](const events::EventInstancePtr&) { ++accepted; });
  ASSERT_TRUE(detector.ok());
  ASSERT_TRUE((*detector)->Process(Observation{"A", "x", 1 * kSecond}).ok());
  ASSERT_TRUE((*detector)->Process(Observation{"B", "y", 2 * kSecond}).ok());
  EXPECT_EQ(accepted, 1u);
}

TEST(TypeLevelBaselineTest, WithinCheckedPostHoc) {
  Result<events::EventExprPtr> expr = rules::ParseEventExpr(
      "WITHIN(observation(\"A\", o1, t1); observation(\"B\", o2, t2), 5sec)");
  ASSERT_TRUE(expr.ok());
  events::Environment env;
  size_t accepted = 0;
  auto detector = TypeLevelDetector::Create(
      *expr, &env, [&](const events::EventInstancePtr&) { ++accepted; });
  ASSERT_TRUE(detector.ok());
  ASSERT_TRUE((*detector)->Process(Observation{"A", "x", 0}).ok());
  ASSERT_TRUE((*detector)->Process(Observation{"B", "y", 60 * kSecond}).ok());
  EXPECT_EQ((*detector)->stats().type_level_matches, 1u);
  EXPECT_EQ(accepted, 0u);  // 60s interval > 5s bound.
}

TEST(TypeLevelBaselineTest, RejectsNotExpressions) {
  Result<events::EventExprPtr> expr = rules::ParseEventExpr(
      "WITHIN(observation(\"A\", o1, t1) AND NOT observation(\"B\", o2, t2), "
      "5sec)");
  ASSERT_TRUE(expr.ok());
  events::Environment env;
  auto detector = TypeLevelDetector::Create(*expr, &env, nullptr);
  EXPECT_FALSE(detector.ok());
  EXPECT_EQ(detector.status().code(), StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace rfidcep::engine::baseline
