// Snapshot format contract (engine/snapshot.h): deterministic bytes,
// versioned header with explicit gates on magic / version / rule-set
// fingerprint, and golden on-disk fixtures — one per format version this
// build reads (tests/engine/testdata/checkpoint_v<N>.snap) — that every
// future build must keep restoring.
//
// After an INTENTIONAL format bump, commit a fixture for the new version
// (the old ones stay and must keep restoring) via:
//   RFIDCEP_REGEN_GOLDEN=1 ./tests/snapshot_format_test

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "engine/snapshot.h"
#include "tests/engine/test_util.h"

namespace rfidcep::engine {
namespace {

using ::rfidcep::engine::testing::EngineHarness;

// Covers every serialized state shape: SEQ slot buffers, a NOT log with
// pending confirmation pseudos, and SEQ+ open runs.
constexpr const char* kFixtureRules = R"(
  CREATE RULE pair, pairing
  ON WITHIN(observation("a", o, t1); observation("b", o, t2), 8sec)
  IF true
  DO send alarm

  CREATE RULE quiet, quiet zone
  ON WITHIN(observation("a", o1, t1) AND NOT observation("c", o2, t2), 6sec)
  IF true
  DO send alarm

  CREATE RULE run, aperiodic
  ON WITHIN(TSEQ+(observation("a", o1, t1), 0sec, 4sec), 20sec)
  IF true
  DO send alarm
)";

std::vector<events::Observation> FixtureStream() {
  return {
      {"a", "x", 1 * kSecond},  {"b", "y", 2 * kSecond},
      {"a", "x", 3 * kSecond},  {"c", "z", 4 * kSecond},
      {"a", "w", 5 * kSecond},  {"b", "x", 6 * kSecond},
  };
}

std::vector<events::Observation> ContinuationStream() {
  return {
      {"b", "w", 8 * kSecond},  {"a", "v", 9 * kSecond},
      {"b", "v", 12 * kSecond}, {"c", "q", 14 * kSecond},
  };
}

std::string FixturePath(uint32_t version) {
  return std::string(RFIDCEP_TESTDATA_DIR) + "/checkpoint_v" +
         std::to_string(version) + ".snap";
}

EngineOptions WithShards(int shards) {
  EngineOptions options;
  options.shards = shards;
  return options;
}

// Builds the fixture engine and feeds the fixture stream (no flush), so
// slot buffers, the NOT log, open runs, and pending pseudos are all live.
std::unique_ptr<EngineHarness> LoadedHarness(int shards = 1) {
  auto h = std::make_unique<EngineHarness>(WithShards(shards));
  EXPECT_TRUE(h->AddRules(kFixtureRules).ok());
  EXPECT_TRUE(h->engine->Compile().ok());
  EXPECT_TRUE(h->engine->ProcessAll(FixtureStream()).ok());
  return h;
}

std::string Serialized(RcedaEngine* engine) {
  std::string bytes;
  EXPECT_TRUE(engine->SerializeState(&bytes).ok());
  return bytes;
}

// Per-rule (t_begin, t_end) spans of the matches recorded from index
// `from` on (a restored engine's log restarts empty at the checkpoint).
std::vector<std::string> MatchLog(const EngineHarness& h, size_t from = 0) {
  std::vector<std::string> out;
  for (size_t i = from; i < h.matches.size(); ++i) {
    const auto& m = h.matches[i];
    std::ostringstream line;
    line << m.rule_id << "[" << m.t_begin << "," << m.t_end << "]";
    out.push_back(line.str());
  }
  return out;
}

TEST(SnapshotFormatTest, HeaderLaysOutMagicVersionFingerprint) {
  auto h = LoadedHarness();
  std::string bytes = Serialized(h->engine.get());
  ASSERT_GE(bytes.size(), 20u);
  EXPECT_EQ(bytes.substr(0, 8), snapshot::kSnapshotMagic);
  uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 8, sizeof(version));
  EXPECT_EQ(version, snapshot::kSnapshotVersion);
}

TEST(SnapshotFormatTest, SerializationIsDeterministic) {
  auto h1 = LoadedHarness();
  auto h2 = LoadedHarness();
  std::string bytes = Serialized(h1->engine.get());
  EXPECT_EQ(bytes, Serialized(h2->engine.get()));
  // Re-serializing after a restore round-trip is also byte-identical.
  ASSERT_TRUE(h1->engine->RestoreState(bytes).ok());
  EXPECT_EQ(Serialized(h1->engine.get()), bytes);
}

TEST(SnapshotFormatTest, BadMagicRejected) {
  auto h = LoadedHarness();
  std::string bytes = Serialized(h->engine.get());
  bytes[0] = 'X';
  Status status = h->engine->RestoreState(bytes);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("magic"), std::string::npos);
}

TEST(SnapshotFormatTest, UnknownVersionRejected) {
  auto h = LoadedHarness();
  std::string bytes = Serialized(h->engine.get());
  uint32_t version = snapshot::kSnapshotVersion + 1;
  std::memcpy(&bytes[8], &version, sizeof(version));
  Status status = h->engine->RestoreState(bytes);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("version"), std::string::npos);
}

TEST(SnapshotFormatTest, FingerprintMismatchRejected) {
  auto h = LoadedHarness();
  std::string bytes = Serialized(h->engine.get());
  EngineHarness other;
  ASSERT_TRUE(
      other
          .AddRules("CREATE RULE different, a ON observation(r, o, t) "
                    "IF true DO send alarm")
          .ok());
  ASSERT_TRUE(other.engine->Compile().ok());
  Status status = other.engine->RestoreState(bytes);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("fingerprint"), std::string::npos);
}

TEST(SnapshotFormatTest, TruncationRejectedAtEveryPrefix) {
  auto h = LoadedHarness();
  std::string bytes = Serialized(h->engine.get());
  // Every proper prefix must be rejected, never crash or succeed.
  for (size_t len : {size_t{0}, size_t{4}, size_t{8}, size_t{19},
                     bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_FALSE(h->engine->RestoreState(bytes.substr(0, len)).ok())
        << "prefix of " << len << " bytes";
  }
}

TEST(SnapshotFormatTest, TrailingBytesRejected) {
  auto h = LoadedHarness();
  std::string bytes = Serialized(h->engine.get());
  Status status = h->engine->RestoreState(bytes + '\0');
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("trailing"), std::string::npos);
}

TEST(SnapshotFormatTest, CheckpointFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "snapshot_roundtrip.snap";
  auto source = LoadedHarness();
  ASSERT_TRUE(source->engine->Checkpoint(path).ok());
  // Matches up to the checkpoint instant were already delivered on the
  // source; the restored engine only replays the stream from here on.
  const size_t at_checkpoint = source->matches.size();

  auto restored = std::make_unique<EngineHarness>();
  ASSERT_TRUE(restored->AddRules(kFixtureRules).ok());
  ASSERT_TRUE(restored->engine->Compile().ok());
  ASSERT_TRUE(restored->engine->Restore(path).ok());

  for (const events::Observation& obs : ContinuationStream()) {
    ASSERT_TRUE(source->engine->Process(obs).ok());
    ASSERT_TRUE(restored->engine->Process(obs).ok());
  }
  ASSERT_TRUE(source->engine->Flush().ok());
  ASSERT_TRUE(restored->engine->Flush().ok());
  EXPECT_EQ(MatchLog(*restored), MatchLog(*source, at_checkpoint));
  for (const char* rule : {"pair", "quiet", "run"}) {
    EXPECT_EQ(restored->engine->FiredCount(rule),
              source->engine->FiredCount(rule))
        << rule;
  }
  std::remove(path.c_str());
}

TEST(SnapshotFormatTest, RestoreFromMissingFileIsNotFound) {
  auto h = LoadedHarness();
  EXPECT_EQ(h->engine->Restore("/nonexistent/dir/x.snap").code(),
            StatusCode::kNotFound);
}

// The committed fixtures: one checkpoint per readable format version,
// each captured from the fixture engine after FixtureStream(). Restoring
// any of them and continuing the stream must keep producing exactly the
// matches an uninterrupted run produces — on the serial path and
// re-partitioned across shards. A build whose reader no longer
// understands an old version must fail here, not silently misread it.
TEST(SnapshotGoldenTest, CommittedFixturesRestoreOnEveryShardCount) {
  ASSERT_EQ(snapshot::kSnapshotVersion, 2u)
      << "format bumped: regenerate a checkpoint fixture for the new "
         "version and keep the old fixtures restoring (or raise "
         "kMinSnapshotVersion and delete theirs)";
  ASSERT_EQ(snapshot::kMinSnapshotVersion, 1u);

  if (std::getenv("RFIDCEP_REGEN_GOLDEN") != nullptr) {
    // Only the current version can be (re)generated; older fixtures are
    // immutable artifacts of the builds that wrote them.
    auto h = LoadedHarness();
    const std::string path = FixturePath(snapshot::kSnapshotVersion);
    ASSERT_TRUE(h->engine->Checkpoint(path).ok());
    GTEST_SKIP() << "regenerated " << path;
  }

  // Uninterrupted reference run. Serializing (and discarding the bytes)
  // advances it to the same logical instant the fixtures were captured
  // at, marking where their match logs and a restored engine's log line
  // up.
  auto reference = LoadedHarness();
  std::string discard;
  ASSERT_TRUE(reference->engine->SerializeState(&discard).ok());
  const size_t at_checkpoint = reference->matches.size();
  ASSERT_TRUE(reference->engine->ProcessAll(ContinuationStream()).ok());
  ASSERT_TRUE(reference->engine->Flush().ok());

  for (uint32_t version = snapshot::kMinSnapshotVersion;
       version <= snapshot::kSnapshotVersion; ++version) {
    std::ifstream in(FixturePath(version), std::ios::binary);
    ASSERT_TRUE(in.good()) << "missing fixture " << FixturePath(version);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string bytes = buf.str();

    ASSERT_GE(bytes.size(), 12u);
    EXPECT_EQ(bytes.substr(0, 8), snapshot::kSnapshotMagic);
    uint32_t on_disk = 0;
    std::memcpy(&on_disk, bytes.data() + 8, sizeof(on_disk));
    ASSERT_EQ(on_disk, version) << FixturePath(version);

    for (int shards : {1, 2, 4}) {
      auto restored = std::make_unique<EngineHarness>(WithShards(shards));
      ASSERT_TRUE(restored->AddRules(kFixtureRules).ok());
      ASSERT_TRUE(restored->engine->Compile().ok());
      ASSERT_TRUE(restored->engine->RestoreState(bytes).ok())
          << "v" << version << " on " << shards << " shards";
      ASSERT_TRUE(restored->engine->ProcessAll(ContinuationStream()).ok());
      ASSERT_TRUE(restored->engine->Flush().ok());
      EXPECT_EQ(MatchLog(*restored), MatchLog(*reference, at_checkpoint))
          << "v" << version << " on " << shards << " shards";
      for (const char* rule : {"pair", "quiet", "run"}) {
        EXPECT_EQ(restored->engine->FiredCount(rule),
                  reference->engine->FiredCount(rule))
            << rule << " v" << version << " on " << shards << " shards";
      }
    }
  }
}

}  // namespace
}  // namespace rfidcep::engine
