// Lifecycle and parity tests for the sharded detection pipeline:
// partitioning, routing, Reset/Decompile/Flush, re-Compile with a new
// shard count, and the per-shard DebugReport.

#include "engine/sharded_engine.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "rules/parser.h"
#include "tests/engine/test_util.h"

namespace rfidcep::engine {
namespace {

using testing::EngineHarness;
using testing::RecordedMatch;

EngineOptions WithShards(int shards) {
  EngineOptions options;
  options.shards = shards;
  return options;
}

// Four independent rules over distinct readers; a scripted stream that
// fires all of them, including via pseudo events (the NOT window rule).
constexpr char kFourRules[] = R"(
  CREATE RULE dup, duplicate filter
  ON WITHIN(observation("a", o, t1); observation("a", o, t2), 5sec)
  IF true
  DO send duplicate msg

  CREATE RULE pair, cross reader pair
  ON WITHIN(observation("b", o, t1) AND observation("c", o, t2), 10sec)
  IF true
  DO send alarm

  CREATE RULE quiet, no b after d
  ON WITHIN(observation("d", o, t1) AND NOT observation("b", o, t2), 3sec)
  IF true
  DO send alarm

  CREATE RULE solo, plain leaf
  ON observation("e", o, t1)
  IF true
  DO send alarm
)";

std::vector<events::Observation> ScriptedStream() {
  std::vector<events::Observation> stream;
  auto at = [](double sec) {
    return static_cast<TimePoint>(sec * kSecond);
  };
  stream.push_back({"a", "x", at(1)});
  stream.push_back({"b", "x", at(1.5)});
  stream.push_back({"a", "x", at(2)});    // dup fires.
  stream.push_back({"c", "x", at(3)});    // pair fires.
  stream.push_back({"d", "y", at(4)});    // quiet: window opens.
  stream.push_back({"e", "z", at(5)});    // solo fires.
  stream.push_back({"a", "q", at(8)});    // advances clock past 4+3.
  return stream;
}

struct RunSummary {
  std::vector<std::pair<std::string, std::pair<TimePoint, TimePoint>>>
      matches;
  uint64_t dup = 0, pair = 0, quiet = 0, solo = 0;
  uint64_t rule_matches = 0;
  uint64_t rules_fired = 0;
};

RunSummary RunScripted(int shards, bool batch) {
  EngineHarness h(WithShards(shards));
  EXPECT_TRUE(h.AddRules(kFourRules).ok());
  EXPECT_TRUE(h.engine->Compile().ok());
  if (batch) {
    EXPECT_TRUE(h.engine->ProcessAll(ScriptedStream()).ok());
  } else {
    for (const events::Observation& obs : ScriptedStream()) {
      EXPECT_TRUE(h.engine->Process(obs).ok());
    }
  }
  EXPECT_TRUE(h.engine->Flush().ok());
  RunSummary summary;
  for (const RecordedMatch& m : h.matches) {
    summary.matches.push_back({m.rule_id, {m.t_begin, m.t_end}});
  }
  summary.dup = h.engine->FiredCount("dup");
  summary.pair = h.engine->FiredCount("pair");
  summary.quiet = h.engine->FiredCount("quiet");
  summary.solo = h.engine->FiredCount("solo");
  summary.rule_matches = h.engine->stats().detector.rule_matches;
  summary.rules_fired = h.engine->stats().rules_fired;
  return summary;
}

TEST(ShardedEngineTest, ScriptedParityAcrossShardCounts) {
  RunSummary serial = RunScripted(1, /*batch=*/false);
  EXPECT_EQ(serial.dup, 1u);
  EXPECT_EQ(serial.pair, 1u);
  EXPECT_EQ(serial.quiet, 1u);
  EXPECT_EQ(serial.solo, 1u);
  for (int shards : {2, 4}) {
    for (bool batch : {false, true}) {
      RunSummary sharded = RunScripted(shards, batch);
      EXPECT_EQ(sharded.dup, serial.dup) << shards;
      EXPECT_EQ(sharded.pair, serial.pair) << shards;
      EXPECT_EQ(sharded.quiet, serial.quiet) << shards;
      EXPECT_EQ(sharded.solo, serial.solo) << shards;
      EXPECT_EQ(sharded.rule_matches, serial.rule_matches) << shards;
      EXPECT_EQ(sharded.rules_fired, serial.rules_fired) << shards;
      // Same match multiset; per-rule order is identical to serial.
      auto sorted = [](RunSummary s) {
        std::sort(s.matches.begin(), s.matches.end());
        return s.matches;
      };
      EXPECT_EQ(sorted(sharded), sorted(serial)) << shards;
    }
  }
}

TEST(ShardedEngineTest, ResetClearsEveryShard) {
  EngineHarness h(WithShards(4));
  ASSERT_TRUE(h.AddRules(kFourRules).ok());
  ASSERT_TRUE(h.engine->Compile().ok());
  ASSERT_TRUE(h.ObserveAt("a", "x", 1).ok());
  ASSERT_TRUE(h.ObserveAt("b", "x", 2).ok());
  ASSERT_TRUE(h.ObserveAt("d", "y", 3).ok());
  EXPECT_GT(h.engine->TotalBufferedEntries(), 0u);
  EXPECT_GT(h.engine->PendingPseudoEvents(), 0u);

  ASSERT_TRUE(h.engine->Reset().ok());
  EXPECT_EQ(h.engine->TotalBufferedEntries(), 0u);
  EXPECT_EQ(h.engine->PendingPseudoEvents(), 0u);
  EXPECT_EQ(h.engine->clock(), 0);
  EXPECT_EQ(h.engine->stats().detector.observations, 0u);
  EXPECT_EQ(h.engine->FiredCount("dup"), 0u);

  // The stream may restart at t=0 and detection behaves like new.
  h.matches.clear();
  ASSERT_TRUE(h.ObserveAt("a", "x", 1).ok());
  ASSERT_TRUE(h.ObserveAt("a", "x", 2).ok());
  EXPECT_EQ(h.engine->FiredCount("dup"), 1u);
}

TEST(ShardedEngineTest, FlushDrainsPseudoEventsOnAllShards) {
  EngineHarness h(WithShards(4));
  ASSERT_TRUE(h.AddRules(kFourRules).ok());
  ASSERT_TRUE(h.engine->Compile().ok());
  // Two NOT windows pending on (potentially) different shards.
  ASSERT_TRUE(h.ObserveAt("d", "y", 1).ok());
  ASSERT_TRUE(h.ObserveAt("d", "z", 2).ok());
  EXPECT_GT(h.engine->PendingPseudoEvents(), 0u);
  ASSERT_TRUE(h.engine->Flush().ok());
  EXPECT_EQ(h.engine->PendingPseudoEvents(), 0u);
  EXPECT_EQ(h.engine->FiredCount("quiet"), 2u);
}

TEST(ShardedEngineTest, RecompileWithDifferentShardCount) {
  EngineHarness h(WithShards(2));
  ASSERT_TRUE(h.AddRules(kFourRules).ok());
  ASSERT_TRUE(h.engine->Compile().ok());
  EXPECT_EQ(h.engine->num_shards(), 2);
  ASSERT_TRUE(h.engine->ProcessAll(ScriptedStream()).ok());
  ASSERT_TRUE(h.engine->Flush().ok());
  auto fired_totals = [&h] {
    return std::vector<uint64_t>{
        h.engine->FiredCount("dup"), h.engine->FiredCount("pair"),
        h.engine->FiredCount("quiet"), h.engine->FiredCount("solo")};
  };
  std::vector<uint64_t> fired_with_2 = fired_totals();

  // Changing the shard count requires decompiling first.
  EXPECT_FALSE(h.engine->SetShards(4).ok());
  h.engine->Decompile();
  EXPECT_FALSE(h.engine->compiled());
  EXPECT_FALSE(h.engine->SetShards(0).ok());
  EXPECT_FALSE(h.engine->SetShards(kMaxDetectionShards + 1).ok());
  ASSERT_TRUE(h.engine->SetShards(4).ok());
  ASSERT_TRUE(h.engine->Compile().ok());
  EXPECT_EQ(h.engine->num_shards(), 4);

  h.matches.clear();
  ASSERT_TRUE(h.engine->ProcessAll(ScriptedStream()).ok());
  ASSERT_TRUE(h.engine->Flush().ok());
  EXPECT_EQ(fired_totals(), fired_with_2);

  // And back down to the serial fast path.
  h.engine->Decompile();
  ASSERT_TRUE(h.engine->SetShards(1).ok());
  ASSERT_TRUE(h.engine->Compile().ok());
  EXPECT_EQ(h.engine->num_shards(), 1);
}

TEST(ShardedEngineTest, DebugReportHasPerShardSections) {
  EngineHarness h(WithShards(2));
  ASSERT_TRUE(h.AddRules(kFourRules).ok());
  ASSERT_TRUE(h.engine->Compile().ok());
  ASSERT_TRUE(h.ObserveAt("a", "x", 1).ok());
  std::string report = h.engine->DebugReport();
  EXPECT_NE(report.find("sharded engine: 2 shards"), std::string::npos)
      << report;
  EXPECT_NE(report.find("shard 0: rules=["), std::string::npos) << report;
  EXPECT_NE(report.find("shard 1: rules=["), std::string::npos) << report;
  EXPECT_NE(report.find("inbox_depth=0/"), std::string::npos) << report;
  EXPECT_NE(report.find("outbox_depth=0/"), std::string::npos) << report;
  EXPECT_NE(report.find("produced="), std::string::npos) << report;
  EXPECT_NE(report.find("rule dup fired=0"), std::string::npos) << report;
}

TEST(ShardedEngineTest, OutOfOrderRejectionMatchesSerial) {
  for (int shards : {1, 4}) {
    EngineHarness h(WithShards(shards));
    ASSERT_TRUE(h.AddRules(kFourRules).ok());
    ASSERT_TRUE(h.engine->Compile().ok());
    ASSERT_TRUE(h.ObserveAt("a", "x", 5).ok());
    Status status = h.ObserveAt("a", "x", 3);
    EXPECT_FALSE(status.ok()) << "shards=" << shards;
  }
  for (int shards : {1, 4}) {
    EngineOptions options = WithShards(shards);
    options.detector.tolerate_out_of_order = true;
    EngineHarness h(options);
    ASSERT_TRUE(h.AddRules(kFourRules).ok());
    ASSERT_TRUE(h.engine->Compile().ok());
    ASSERT_TRUE(h.ObserveAt("a", "x", 5).ok());
    ASSERT_TRUE(h.ObserveAt("a", "x", 3).ok());
    EXPECT_EQ(h.engine->stats().detector.out_of_order_dropped, 1u);
    EXPECT_EQ(h.engine->stats().detector.observations, 1u);
  }
}

// SEQ+ nodes are private per occurrence (the graph compiler never shares
// them), so rules with textually identical TSEQ+ subevents are NOT coupled:
// each rule's run state is its own, and they may spread across shards.
TEST(ShardedEngineTest, IdenticalSeqPlusRulesAreIndependent) {
  constexpr char kCoupled[] = R"(
    CREATE RULE pack1, run closed by b
    ON TSEQ(TSEQ+(observation("a", o1, t1), 0.1sec, 1sec);
            observation("b", o2, t2), 0sec, 20sec)
    IF true
    DO send alarm

    CREATE RULE pack2, same run closed by c
    ON TSEQ(TSEQ+(observation("a", o1, t1), 0.1sec, 1sec);
            observation("c", o2, t2), 0sec, 20sec)
    IF true
    DO send alarm

    CREATE RULE other, independent
    ON observation("e", o, t1)
    IF true
    DO send alarm
  )";
  Result<rules::RuleSet> parsed = rules::ParseRuleProgram(kCoupled);
  ASSERT_TRUE(parsed.ok());
  Result<EventGraph> graph = EventGraph::Build(parsed->rules);
  ASSERT_TRUE(graph.ok());

  std::vector<std::vector<size_t>> groups = graph->CoupledRuleGroups();
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0], (std::vector<size_t>{0}));
  EXPECT_EQ(groups[1], (std::vector<size_t>{1}));
  EXPECT_EQ(groups[2], (std::vector<size_t>{2}));

  EngineHarness h(WithShards(4));
  ASSERT_TRUE(h.AddRules(kCoupled).ok());
  ASSERT_TRUE(h.engine->Compile().ok());
  // 3 independent rules -> 3 populated shards.
  EXPECT_EQ(h.engine->num_shards(), 3);
}

TEST(ShardedEngineTest, SubscriptionVocabularyCoversLeafKinds) {
  constexpr char kMixed[] = R"(
    CREATE RULE lit, literal reader
    ON observation("r9", o, t1) IF true DO send alarm

    CREATE RULE grp, group constrained
    ON observation(r, o, t1), group(r) = "g_dock_0" IF true DO send alarm

    CREATE RULE any, unconstrained reader
    ON WITHIN(observation(r, o, t1); observation(r, o, t2), 5sec)
    IF true DO send alarm
  )";
  Result<rules::RuleSet> parsed = rules::ParseRuleProgram(kMixed);
  ASSERT_TRUE(parsed.ok());
  Result<EventGraph> graph = EventGraph::Build(parsed->rules);
  ASSERT_TRUE(graph.ok());
  EventGraph::Subscription sub = graph->ComputeSubscription();
  EXPECT_TRUE(sub.any_reader);
  EXPECT_EQ(sub.reader_keys,
            (std::vector<std::string>{"g_dock_0", "r9"}));
}

}  // namespace
}  // namespace rfidcep::engine
