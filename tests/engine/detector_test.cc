#include "engine/detector.h"

#include <gtest/gtest.h>

#include "tests/engine/test_util.h"

namespace rfidcep::engine {
namespace {

using ::rfidcep::engine::testing::EngineHarness;
using ::rfidcep::engine::testing::RecordedMatch;

// --- SEQ / TSEQ -----------------------------------------------------------

TEST(DetectorSeqTest, BasicSequenceFiresOnTerminator) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE s, seq
    ON SEQ(observation("a", o1, t1); observation("b", o2, t2))
    IF true
    DO send alarm
  )").ok());
  ASSERT_TRUE(h.ObserveAt("a", "x", 1).ok());
  EXPECT_TRUE(h.matches.empty());
  ASSERT_TRUE(h.ObserveAt("b", "y", 2).ok());
  ASSERT_EQ(h.matches.size(), 1u);
  EXPECT_EQ(h.matches[0].t_begin, 1 * kSecond);
  EXPECT_EQ(h.matches[0].t_end, 2 * kSecond);
}

TEST(DetectorSeqTest, TerminatorWithoutInitiatorDoesNotFire) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE s, seq
    ON SEQ(observation("a", o1, t1); observation("b", o2, t2))
    IF true
    DO send alarm
  )").ok());
  ASSERT_TRUE(h.ObserveAt("b", "y", 1).ok());
  ASSERT_TRUE(h.ObserveAt("a", "x", 2).ok());
  EXPECT_TRUE(h.matches.empty());  // Order matters.
}

TEST(DetectorSeqTest, TseqEnforcesDistanceBounds) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE s, tseq
    ON TSEQ(observation("a", o1, t1); observation("b", o2, t2), 5sec, 10sec)
    IF true
    DO send alarm
  )").ok());
  ASSERT_TRUE(h.ObserveAt("a", "x", 0).ok());
  ASSERT_TRUE(h.ObserveAt("b", "y", 2).ok());  // dist 2 < 5: too soon.
  EXPECT_TRUE(h.matches.empty());
  ASSERT_TRUE(h.ObserveAt("b", "y", 7).ok());  // dist 7 in [5,10]: fires.
  EXPECT_EQ(h.matches.size(), 1u);
  ASSERT_TRUE(h.ObserveAt("a", "x", 20).ok());
  ASSERT_TRUE(h.ObserveAt("b", "y", 31).ok());  // dist 11 > 10: too late.
  EXPECT_EQ(h.matches.size(), 1u);
}

TEST(DetectorSeqTest, TseqBoundsAreInclusive) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE s, tseq
    ON TSEQ(observation("a", o1, t1); observation("b", o2, t2), 5sec, 10sec)
    IF true
    DO send alarm
  )").ok());
  ASSERT_TRUE(h.ObserveAt("a", "x", 0).ok());
  ASSERT_TRUE(h.ObserveAt("b", "y", 5).ok());  // dist exactly 5.
  EXPECT_EQ(h.matches.size(), 1u);
  ASSERT_TRUE(h.ObserveAt("a", "x", 20).ok());
  ASSERT_TRUE(h.ObserveAt("b", "y", 30).ok());  // dist exactly 10.
  EXPECT_EQ(h.matches.size(), 2u);
}

TEST(DetectorSeqTest, ChronicleConsumesInitiators) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE s, seq
    ON SEQ(observation("a", o1, t1); observation("b", o2, t2))
    IF true
    DO send alarm
  )").ok());
  ASSERT_TRUE(h.ObserveAt("a", "x1", 1).ok());
  ASSERT_TRUE(h.ObserveAt("a", "x2", 2).ok());
  ASSERT_TRUE(h.ObserveAt("b", "y1", 3).ok());
  ASSERT_TRUE(h.ObserveAt("b", "y2", 4).ok());
  // Oldest initiator pairs with oldest terminator: (x1,y1), (x2,y2).
  ASSERT_EQ(h.matches.size(), 2u);
  EXPECT_EQ(h.matches[0].t_begin, 1 * kSecond);
  EXPECT_EQ(h.matches[0].t_end, 3 * kSecond);
  EXPECT_EQ(h.matches[1].t_begin, 2 * kSecond);
  EXPECT_EQ(h.matches[1].t_end, 4 * kSecond);
}

TEST(DetectorSeqTest, VariableJoinRequiresSameBindings) {
  // The duplicate-filter pattern: same reader AND same object.
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE dup, duplicate detection rule
    ON WITHIN(observation(r, o, t1); observation(r, o, t2), 5sec)
    IF true
    DO send duplicate msg
  )").ok());
  ASSERT_TRUE(h.ObserveAt("r1", "o1", 0).ok());
  ASSERT_TRUE(h.ObserveAt("r1", "o2", 1).ok());   // Different object.
  ASSERT_TRUE(h.ObserveAt("r2", "o1", 2).ok());   // Different reader.
  EXPECT_TRUE(h.matches.empty());
  ASSERT_TRUE(h.ObserveAt("r1", "o1", 3).ok());   // True duplicate.
  ASSERT_EQ(h.matches.size(), 1u);
  EXPECT_EQ(h.matches[0].t_begin, 0);
  EXPECT_EQ(h.matches[0].t_end, 3 * kSecond);
}

TEST(DetectorSeqTest, WithinBoundsDuplicateWindow) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE dup, duplicate detection rule
    ON WITHIN(observation(r, o, t1); observation(r, o, t2), 5sec)
    IF true
    DO send duplicate msg
  )").ok());
  ASSERT_TRUE(h.ObserveAt("r1", "o1", 0).ok());
  ASSERT_TRUE(h.ObserveAt("r1", "o1", 6).ok());  // 6s apart: not a duplicate.
  EXPECT_TRUE(h.matches.empty());
  ASSERT_TRUE(h.ObserveAt("r1", "o1", 9).ok());  // 3s after previous: dup.
  EXPECT_EQ(h.matches.size(), 1u);
}

TEST(DetectorSeqTest, DuplicateChainPairsConsecutively) {
  // o observed at 0, 2, 4: chronicle pairs (0,2) and (2,4).
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE dup, duplicate detection rule
    ON WITHIN(observation(r, o, t1); observation(r, o, t2), 5sec)
    IF true
    DO send duplicate msg
  )").ok());
  ASSERT_TRUE(h.ObserveAt("r1", "o1", 0).ok());
  ASSERT_TRUE(h.ObserveAt("r1", "o1", 2).ok());
  ASSERT_TRUE(h.ObserveAt("r1", "o1", 4).ok());
  ASSERT_EQ(h.matches.size(), 2u);
  EXPECT_EQ(h.matches[0].t_begin, 0);
  EXPECT_EQ(h.matches[0].t_end, 2 * kSecond);
  EXPECT_EQ(h.matches[1].t_begin, 2 * kSecond);
  EXPECT_EQ(h.matches[1].t_end, 4 * kSecond);
}

TEST(DetectorSeqTest, ExpiredInitiatorsAreGarbageCollected) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE dup, duplicate detection rule
    ON WITHIN(observation(r, o, t1); observation(r, o, t2), 5sec)
    IF true
    DO send duplicate msg
  )").ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(h.ObserveAt("r1", "o" + std::to_string(i), i * 10.0).ok());
  }
  // Every initiator expires after 5s; nothing should accumulate.
  EXPECT_LE(h.engine->TotalBufferedEntries(), 2u);
}

// --- OR / AND ----------------------------------------------------------------

TEST(DetectorOrTest, EitherBranchFires) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE o, or rule
    ON observation("a", o, t) OR observation("b", o, t)
    IF true
    DO send alarm
  )").ok());
  ASSERT_TRUE(h.ObserveAt("a", "x", 1).ok());
  ASSERT_TRUE(h.ObserveAt("b", "y", 2).ok());
  ASSERT_TRUE(h.ObserveAt("c", "z", 3).ok());
  EXPECT_EQ(h.matches.size(), 2u);
}

TEST(DetectorAndTest, OrderIrrelevant) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE c, conj
    ON WITHIN(observation("a", o1, t1) AND observation("b", o2, t2), 10sec)
    IF true
    DO send alarm
  )").ok());
  ASSERT_TRUE(h.ObserveAt("b", "y", 1).ok());
  ASSERT_TRUE(h.ObserveAt("a", "x", 3).ok());
  ASSERT_EQ(h.matches.size(), 1u);
  EXPECT_EQ(h.matches[0].t_begin, 1 * kSecond);
  EXPECT_EQ(h.matches[0].t_end, 3 * kSecond);
  // And the other order.
  ASSERT_TRUE(h.ObserveAt("a", "x", 20).ok());
  ASSERT_TRUE(h.ObserveAt("b", "y", 22).ok());
  EXPECT_EQ(h.matches.size(), 2u);
}

TEST(DetectorAndTest, WithinIntervalEnforced) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE c, conj
    ON WITHIN(observation("a", o1, t1) AND observation("b", o2, t2), 10sec)
    IF true
    DO send alarm
  )").ok());
  ASSERT_TRUE(h.ObserveAt("a", "x", 0).ok());
  ASSERT_TRUE(h.ObserveAt("b", "y", 11).ok());  // 11s apart: too wide.
  EXPECT_TRUE(h.matches.empty());
  // The expired 'a' must not linger; a fresh pair still works.
  ASSERT_TRUE(h.ObserveAt("a", "x", 20).ok());
  ASSERT_TRUE(h.ObserveAt("b", "y", 25).ok());
  EXPECT_EQ(h.matches.size(), 1u);
}

// --- TSEQ+ runs (paper Fig. 4) -------------------------------------------------

TEST(DetectorSeqPlusTest, Fig4ChronicleDetectsBothEpisodes) {
  // E = TSEQ(TSEQ+(E1, 0sec, 1sec); E2, 5sec, 10sec) over the history
  // e1@{1,2,3}, e1@{5,6,7}, e2@12, e2@15 — the gap 3→5 splits the runs; the
  // correct chronicle answer is {e1@1..3, e2@12} and {e1@5..7, e2@15}.
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE fig4, packing
    ON TSEQ(TSEQ+(observation("A", o1, t1), 0sec, 1sec);
            observation("B", o2, t2), 5sec, 10sec)
    IF true
    DO send alarm
  )").ok());
  for (double t : {1.0, 2.0, 3.0, 5.0, 6.0, 7.0}) {
    ASSERT_TRUE(h.ObserveAt("A", "item" + std::to_string(int(t)), t).ok());
  }
  ASSERT_TRUE(h.ObserveAt("B", "case1", 12).ok());
  ASSERT_TRUE(h.ObserveAt("B", "case2", 15).ok());
  ASSERT_EQ(h.matches.size(), 2u);
  EXPECT_EQ(h.matches[0].t_begin, 1 * kSecond);
  EXPECT_EQ(h.matches[0].t_end, 12 * kSecond);
  EXPECT_EQ(h.matches[1].t_begin, 5 * kSecond);
  EXPECT_EQ(h.matches[1].t_end, 15 * kSecond);
  // The first match's run holds exactly items 1..3.
  std::vector<events::Observation> first =
      h.matches[0].instance->CollectObservations();
  ASSERT_EQ(first.size(), 4u);  // 3 items + case.
  EXPECT_EQ(first[0].object, "item1");
  EXPECT_EQ(first[2].object, "item3");
  EXPECT_EQ(first[3].object, "case1");
}

TEST(DetectorSeqPlusTest, RunBindingsAreMultiValued) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE pack, containment
    ON TSEQ(TSEQ+(observation("A", o1, t1), 0sec, 1sec);
            observation("B", o2, t2), 5sec, 10sec)
    IF true
    DO send alarm
  )").ok());
  ASSERT_TRUE(h.ObserveAt("A", "i1", 1).ok());
  ASSERT_TRUE(h.ObserveAt("A", "i2", 1.5).ok());
  ASSERT_TRUE(h.ObserveAt("B", "case", 8).ok());
  ASSERT_EQ(h.matches.size(), 1u);
  const events::Bindings& b = h.matches[0].instance->bindings();
  ASSERT_TRUE(b.HasMulti("o1"));
  EXPECT_EQ(b.Multi("o1").size(), 2u);
  ASSERT_TRUE(b.HasScalar("o2"));
  EXPECT_EQ(std::get<std::string>(b.Scalar("o2")), "case");
}

TEST(DetectorSeqPlusTest, DistanceGapTooSmallSplitsRun) {
  // dist_lo = 0.5sec: arrivals closer than that violate the constraint.
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE pack, tight
    ON TSEQ(TSEQ+(observation("A", o1, t1), 0.5sec, 1sec);
            observation("B", o2, t2), 2sec, 10sec)
    IF true
    DO send alarm
  )").ok());
  ASSERT_TRUE(h.ObserveAt("A", "i1", 1.0).ok());
  ASSERT_TRUE(h.ObserveAt("A", "i2", 1.2).ok());  // 0.2s gap: splits.
  ASSERT_TRUE(h.ObserveAt("B", "case", 4).ok());
  ASSERT_EQ(h.matches.size(), 1u);
  // Only the second (still open then gap-closed) run or the first?
  // Chronicle: the first closed run with valid distance [2,10] to the case
  // is the singleton {i1} (dist 3s).
  std::vector<events::Observation> obs =
      h.matches[0].instance->CollectObservations();
  ASSERT_EQ(obs.size(), 2u);
  EXPECT_EQ(obs[0].object, "i1");
}

TEST(DetectorSeqPlusTest, SnoopStyleTerminatorClosesUnboundedRun) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE collect, aperiodic
    ON SEQ(SEQ+(observation("A", o1, t1)); observation("B", o2, t2))
    IF true
    DO send alarm
  )").ok());
  ASSERT_TRUE(h.ObserveAt("A", "i1", 1).ok());
  ASSERT_TRUE(h.ObserveAt("A", "i2", 50).ok());    // Any spacing is fine.
  ASSERT_TRUE(h.ObserveAt("A", "i3", 1000).ok());
  ASSERT_TRUE(h.ObserveAt("B", "case", 2000).ok());
  ASSERT_EQ(h.matches.size(), 1u);
  EXPECT_EQ(h.matches[0].instance->CollectObservations().size(), 4u);
}

TEST(DetectorSeqPlusTest, SelfClosingRunUnderWithinRoot) {
  // WITHIN(TSEQ+(E1, 0.1sec, 1sec), 100sec) — paper Fig. 6b. The run
  // closes via pseudo event once no arrival extends it within 1sec.
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE runs, aperiodic root
    ON WITHIN(TSEQ+(observation("A", o1, t1), 0.1sec, 1sec), 100sec)
    IF true
    DO send alarm
  )").ok());
  ASSERT_TRUE(h.ObserveAt("A", "i1", 1.0).ok());
  ASSERT_TRUE(h.ObserveAt("A", "i2", 1.5).ok());
  ASSERT_TRUE(h.ObserveAt("A", "i3", 2.0).ok());
  EXPECT_TRUE(h.matches.empty());  // Run still open.
  // Nothing arrives within 1s of i3: the pseudo event at t=3 closes it.
  ASSERT_TRUE(h.ObserveAt("X", "other", 10).ok());
  ASSERT_EQ(h.matches.size(), 1u);
  EXPECT_EQ(h.matches[0].t_begin, 1 * kSecond);
  EXPECT_EQ(h.matches[0].t_end, 2 * kSecond);
  EXPECT_EQ(h.matches[0].instance->children().size(), 3u);
}

TEST(DetectorSeqPlusTest, FlushClosesOpenRunAtEndOfStream) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE runs, aperiodic root
    ON WITHIN(TSEQ+(observation("A", o1, t1), 0.1sec, 1sec), 100sec)
    IF true
    DO send alarm
  )").ok());
  ASSERT_TRUE(h.ObserveAt("A", "i1", 1.0).ok());
  EXPECT_TRUE(h.matches.empty());
  ASSERT_TRUE(h.engine->Flush().ok());
  EXPECT_EQ(h.matches.size(), 1u);
}

// --- Out-of-order handling -------------------------------------------------------

TEST(DetectorStreamTest, RejectsOutOfOrderByDefault) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE any, all observations
    ON observation(r, o, t)
    IF true
    DO send alarm
  )").ok());
  ASSERT_TRUE(h.ObserveAt("a", "x", 5).ok());
  Status status = h.ObserveAt("a", "x", 4);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(DetectorStreamTest, ToleratesOutOfOrderWhenConfigured) {
  EngineOptions options;
  options.detector.tolerate_out_of_order = true;
  EngineHarness h(options);
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE any, all observations
    ON observation(r, o, t)
    IF true
    DO send alarm
  )").ok());
  ASSERT_TRUE(h.ObserveAt("a", "x", 5).ok());
  ASSERT_TRUE(h.ObserveAt("a", "x", 4).ok());  // Dropped, not an error.
  EXPECT_EQ(h.engine->stats().detector.out_of_order_dropped, 1u);
  EXPECT_EQ(h.matches.size(), 1u);
}

// --- Rule firing on primitive roots -----------------------------------------------

TEST(DetectorPrimitiveTest, PrimitiveRootRuleFiresPerObservation) {
  EngineHarness h;
  h.readers.RegisterReader("dock1", "g_dock", "dock");
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE loc, location rule
    ON observation(r, o, t), group(r) = "g_dock"
    IF true
    DO send alarm
  )").ok());
  ASSERT_TRUE(h.ObserveAt("dock1", "o1", 1).ok());
  ASSERT_TRUE(h.ObserveAt("elsewhere", "o1", 2).ok());
  EXPECT_EQ(h.matches.size(), 1u);
}

TEST(DetectorEdgeTest, FlushOnEmptyStreamIsHarmless) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE s, seq
    ON WITHIN(observation("a", o1, t1); observation("b", o2, t2), 5sec)
    IF true
    DO send alarm
  )").ok());
  ASSERT_TRUE(h.engine->Compile().ok());
  ASSERT_TRUE(h.engine->Flush().ok());
  ASSERT_TRUE(h.engine->Flush().ok());  // Idempotent.
  EXPECT_TRUE(h.matches.empty());
  EXPECT_EQ(h.engine->stats().detector.pseudo_fired, 0u);
}

TEST(DetectorEdgeTest, UnwatchedReadersCostNoPrimitiveMatches) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules("CREATE RULE x, keyed ON observation(\"a\", o, t) "
                         "IF true DO send alarm")
                  .ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(h.ObserveAt("other", "o", i).ok());
  }
  EXPECT_EQ(h.engine->stats().detector.primitive_matches, 0u);
  EXPECT_EQ(h.engine->stats().detector.observations, 50u);
}

TEST(DetectorEdgeTest, ObservationMatchingTwoOrBranchesEmitsTwice) {
  // One observation can instantiate both OR branches when their types
  // overlap (a literal reader and a group constraint naming its group):
  // two distinct primitive instances, hence two rule matches.
  EngineHarness h;
  h.readers.RegisterReader("a", "ga", "loc");
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE o, overlapping branches
    ON observation("a", o, t) OR observation(r, o, t2), group(r) = "ga"
    IF true
    DO send alarm
  )").ok());
  ASSERT_TRUE(h.ObserveAt("a", "x", 1).ok());
  EXPECT_EQ(h.matches.size(), 2u);
}

TEST(DetectorEdgeTest, EqualPseudoExecutionTimesFireInFifoOrder) {
  // Two anchors whose expiry windows end at the same instant must both
  // resolve (FIFO tie-break), producing two confirmations.
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE m, monitor
    ON WITHIN(observation("a", o1, t1) AND NOT observation("n", o2, t2),
              5sec)
    IF true
    DO send alarm
  )").ok());
  ASSERT_TRUE(h.engine->Compile().ok());
  // Same timestamp, different objects: identical pseudo execution times.
  ASSERT_TRUE(h.engine
                  ->Process({"a", "x", 10 * kSecond})
                  .ok());
  ASSERT_TRUE(h.engine
                  ->Process({"a", "y", 10 * kSecond})
                  .ok());
  ASSERT_TRUE(h.engine->Flush().ok());
  ASSERT_EQ(h.matches.size(), 2u);
  EXPECT_EQ(h.matches[0].t_end, 15 * kSecond);
  EXPECT_EQ(h.matches[1].t_end, 15 * kSecond);
}

TEST(DetectorEdgeTest, IntervalEqualToWithinBoundMatches) {
  // interval(e) <= tau is inclusive: a pair spanning exactly the window
  // matches, one microsecond more does not.
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE s, exact window
    ON WITHIN(observation("a", o1, t1); observation("b", o2, t2), 5sec)
    IF true
    DO send alarm
  )").ok());
  ASSERT_TRUE(h.ObserveAt("a", "x", 0).ok());
  ASSERT_TRUE(h.engine->Process({"b", "y", 5 * kSecond}).ok());
  EXPECT_EQ(h.matches.size(), 1u);
  ASSERT_TRUE(h.engine->Process({"a", "x", 10 * kSecond}).ok());
  ASSERT_TRUE(h.engine->Process({"b", "y", 15 * kSecond + 1}).ok());
  EXPECT_EQ(h.matches.size(), 1u);  // 5s + 1us: rejected.
}

TEST(DetectorEdgeTest, AdvanceToIsMonotonic) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules("CREATE RULE x, a ON observation(r, o, t) IF true "
                         "DO send alarm")
                  .ok());
  ASSERT_TRUE(h.ObserveAt("r", "o", 100).ok());
  ASSERT_TRUE(h.engine->AdvanceTo(50 * kSecond).ok());  // Past: no-op.
  EXPECT_EQ(h.engine->clock(), 100 * kSecond);
  ASSERT_TRUE(h.engine->AdvanceTo(200 * kSecond).ok());
  EXPECT_EQ(h.engine->clock(), 200 * kSecond);
}

TEST(DetectorPrimitiveTest, TypeConstraintFilters) {
  EngineHarness h;
  h.catalog.RegisterExact("laptop-1", "laptop");
  h.catalog.RegisterExact("mug-1", "mug");
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE laptops, typed
    ON observation(r, o, t), type(o) = "laptop"
    IF true
    DO send alarm
  )").ok());
  ASSERT_TRUE(h.ObserveAt("r", "laptop-1", 1).ok());
  ASSERT_TRUE(h.ObserveAt("r", "mug-1", 2).ok());
  ASSERT_TRUE(h.ObserveAt("r", "unknown", 3).ok());
  EXPECT_EQ(h.matches.size(), 1u);
}

}  // namespace
}  // namespace rfidcep::engine
