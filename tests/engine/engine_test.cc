// RcedaEngine facade behaviors: compilation lifecycle, conditions,
// procedures, statistics.

#include "engine/engine.h"

#include <gtest/gtest.h>

#include "tests/engine/test_util.h"

namespace rfidcep::engine {
namespace {

using ::rfidcep::engine::testing::EngineHarness;

TEST(EngineTest, CompileRequiresRules) {
  store::Database db;
  RcedaEngine engine(&db, events::Environment{});
  EXPECT_FALSE(engine.Compile().ok());
}

TEST(EngineTest, DuplicateRuleIdsRejected) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules("CREATE RULE x, a ON observation(r, o, t) IF true "
                         "DO send alarm")
                  .ok());
  Status status = h.AddRules(
      "CREATE RULE x, b ON observation(r, o, t) IF true DO send alarm");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kAlreadyExists);
}

TEST(EngineTest, NoRuleAdditionAfterCompile) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules("CREATE RULE x, a ON observation(r, o, t) IF true "
                         "DO send alarm")
                  .ok());
  ASSERT_TRUE(h.engine->Compile().ok());
  EXPECT_FALSE(h.AddRules("CREATE RULE y, b ON observation(r, o, t) IF true "
                          "DO send alarm")
                   .ok());
}

TEST(EngineTest, ProcessRequiresCompile) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules("CREATE RULE x, a ON observation(r, o, t) IF true "
                         "DO send alarm")
                  .ok());
  EXPECT_FALSE(h.engine->compiled());
  Status status = h.engine->Process({"r", "o", 1 * kSecond});
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(h.engine->Compile().ok());
  ASSERT_TRUE(h.ObserveAt("r", "o", 1).ok());
  EXPECT_EQ(h.matches.size(), 1u);
}

TEST(EngineTest, ConditionGatesActions) {
  EngineHarness h;
  int alarms = 0;
  h.engine->RegisterProcedure(
      "send alarm",
      [&](const RuleFiring&, const std::string&) { ++alarms; });
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE gated, conditional
    ON observation(r, o, t)
    IF o = 'target'
    DO send alarm
  )").ok());
  ASSERT_TRUE(h.ObserveAt("r", "noise", 1).ok());
  ASSERT_TRUE(h.ObserveAt("r", "target", 2).ok());
  ASSERT_TRUE(h.ObserveAt("r", "noise", 3).ok());
  EXPECT_EQ(alarms, 1);
  EXPECT_EQ(h.engine->stats().rules_fired, 1u);
  EXPECT_EQ(h.engine->stats().condition_rejects, 2u);
  EXPECT_EQ(h.engine->FiredCount("gated"), 1u);
  // Matches (pre-condition) were reported for all three.
  EXPECT_EQ(h.matches.size(), 3u);
}

TEST(EngineTest, ProcedureReceivesBindingsAndArgs) {
  EngineHarness h;
  std::string seen_object;
  std::string seen_args;
  h.engine->RegisterProcedure(
      "send duplicate msg",
      [&](const RuleFiring& firing, const std::string& args) {
        seen_args = args;
        seen_object = firing.params.at("o").scalar.AsString();
      });
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE dup, duplicate detection rule
    ON WITHIN(observation(r, o, t1); observation(r, o, t2), 5sec)
    IF true
    DO send duplicate msg(observation(r, o, t1))
  )").ok());
  ASSERT_TRUE(h.ObserveAt("r1", "oX", 0).ok());
  ASSERT_TRUE(h.ObserveAt("r1", "oX", 2).ok());
  EXPECT_EQ(seen_object, "oX");
  EXPECT_EQ(seen_args, "observation(r, o, t1)");
  EXPECT_EQ(h.engine->stats().procedures_invoked, 1u);
}

TEST(EngineTest, UnknownProceduresAreCountedNotFatal) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules("CREATE RULE x, a ON observation(r, o, t) IF true "
                         "DO some unregistered thing")
                  .ok());
  ASSERT_TRUE(h.ObserveAt("r", "o", 1).ok());
  EXPECT_EQ(h.engine->stats().unknown_procedures, 1u);
  EXPECT_TRUE(h.engine->first_deferred_error().ok());
}

TEST(EngineTest, ExecuteActionsFalseSkipsDispatch) {
  EngineOptions options;
  options.execute_actions = false;
  EngineHarness h(options);
  int alarms = 0;
  h.engine->RegisterProcedure(
      "send alarm",
      [&](const RuleFiring&, const std::string&) { ++alarms; });
  ASSERT_TRUE(h.AddRules("CREATE RULE x, a ON observation(r, o, t) IF true "
                         "DO send alarm")
                  .ok());
  ASSERT_TRUE(h.ObserveAt("r", "o", 1).ok());
  EXPECT_EQ(alarms, 0);
  EXPECT_EQ(h.engine->stats().rules_fired, 1u);  // Still counted.
}

TEST(EngineTest, SqlActionErrorsAreDeferred) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules("CREATE RULE x, a ON observation(r, o, t) IF true "
                         "DO INSERT INTO missing_table VALUES (o)")
                  .ok());
  ASSERT_TRUE(h.ObserveAt("r", "o", 1).ok());  // Stream keeps going.
  EXPECT_EQ(h.engine->stats().action_errors, 1u);
  EXPECT_FALSE(h.engine->first_deferred_error().ok());
}

TEST(EngineTest, FiredCountsPerRule) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE all_obs, everything
    ON observation(r, o, t)
    IF true
    DO send alarm
    CREATE RULE a_only, reader a
    ON observation("a", o, t)
    IF true
    DO send alarm
  )").ok());
  ASSERT_TRUE(h.ObserveAt("a", "x", 1).ok());
  ASSERT_TRUE(h.ObserveAt("b", "y", 2).ok());
  EXPECT_EQ(h.engine->FiredCount("all_obs"), 2u);
  EXPECT_EQ(h.engine->FiredCount("a_only"), 1u);
  EXPECT_EQ(h.engine->FiredCount("ghost"), 0u);
}

TEST(EngineTest, RemoveRuleAndRecompile) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE keep, stays
    ON observation("a", o, t)
    IF true
    DO send alarm
    CREATE RULE drop_me, goes
    ON observation(r, o, t)
    IF true
    DO send alarm
  )").ok());
  ASSERT_TRUE(h.ObserveAt("a", "x", 1).ok());
  EXPECT_EQ(h.matches.size(), 2u);  // Both rules matched.

  ASSERT_TRUE(h.engine->RemoveRule("drop_me").ok());
  EXPECT_FALSE(h.engine->compiled());  // Removal decompiles.
  EXPECT_EQ(h.engine->num_rules(), 1u);
  h.matches.clear();
  ASSERT_TRUE(h.ObserveAt("a", "y", 2).ok());  // Auto-recompiles.
  EXPECT_EQ(h.matches.size(), 1u);
  EXPECT_EQ(h.matches[0].rule_id, "keep");

  EXPECT_FALSE(h.engine->RemoveRule("ghost").ok());
}

TEST(EngineTest, DecompileAllowsAddingRules) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules("CREATE RULE a, one ON observation(\"a\", o, t) IF "
                         "true DO send alarm")
                  .ok());
  ASSERT_TRUE(h.engine->Compile().ok());
  h.engine->Decompile();
  ASSERT_TRUE(h.AddRules("CREATE RULE b, two ON observation(\"b\", o, t) IF "
                         "true DO send alarm")
                  .ok());
  ASSERT_TRUE(h.ObserveAt("b", "x", 1).ok());
  EXPECT_EQ(h.engine->FiredCount("b"), 1u);
}

TEST(EngineTest, ResetClearsRuntimeState) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE s, seq
    ON WITHIN(SEQ(observation("a", o1, t1); observation("b", o2, t2)), 10sec)
    IF true
    DO send alarm
  )").ok());
  ASSERT_TRUE(h.ObserveAt("a", "x", 5).ok());  // Buffered initiator.
  EXPECT_GT(h.engine->TotalBufferedEntries(), 0u);
  ASSERT_TRUE(h.engine->Reset().ok());
  EXPECT_EQ(h.engine->TotalBufferedEntries(), 0u);
  EXPECT_EQ(h.engine->clock(), 0);
  EXPECT_EQ(h.engine->stats().detector.observations, 0u);
  // The buffered initiator is gone: a terminator alone does not fire,
  // and a fresh stream can restart at t=0.
  ASSERT_TRUE(h.ObserveAt("b", "y", 1).ok());
  EXPECT_EQ(h.engine->FiredCount("s"), 0u);
  ASSERT_TRUE(h.ObserveAt("a", "x", 2).ok());
  ASSERT_TRUE(h.ObserveAt("b", "y", 3).ok());
  EXPECT_EQ(h.engine->FiredCount("s"), 1u);
}

TEST(EngineTest, ResetRequiresCompiled) {
  store::Database db;
  RcedaEngine engine(&db, events::Environment{});
  EXPECT_FALSE(engine.Reset().ok());
}

TEST(EngineTest, InvalidRuleFailsCompilation) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules("CREATE RULE bad, pull root ON NOT "
                         "observation(r, o, t) IF true DO send alarm")
                  .ok());
  Status status = h.engine->Compile();
  EXPECT_FALSE(status.ok());
}

TEST(EngineTest, DebugReportReflectsRuntimeState) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules(R"(
    CREATE RULE s, seq
    ON WITHIN(SEQ(observation("a", o1, t1); observation("b", o2, t2)), 10sec)
    IF true
    DO send alarm
  )").ok());
  ASSERT_TRUE(h.ObserveAt("a", "x", 1).ok());
  std::string mid = h.engine->DebugReport();
  EXPECT_NE(mid.find("buffered=1"), std::string::npos) << mid;
  EXPECT_NE(mid.find("rule s fired=0"), std::string::npos) << mid;
  ASSERT_TRUE(h.ObserveAt("b", "y", 2).ok());
  std::string after = h.engine->DebugReport();
  EXPECT_NE(after.find("rule s fired=1"), std::string::npos) << after;
}

TEST(EngineTest, StatsTrackDetectorCounters) {
  EngineHarness h;
  ASSERT_TRUE(h.AddRules("CREATE RULE x, a ON observation(\"a\", o, t) IF "
                         "true DO send alarm")
                  .ok());
  ASSERT_TRUE(h.ObserveAt("a", "x", 1).ok());
  ASSERT_TRUE(h.ObserveAt("b", "y", 2).ok());
  const EngineStats& stats = h.engine->stats();
  EXPECT_EQ(stats.detector.observations, 2u);
  EXPECT_EQ(stats.detector.primitive_matches, 1u);
}

}  // namespace
}  // namespace rfidcep::engine
