// Unit tests for the JSONL trace sink (engine/trace.h): record shapes,
// JSON escaping, and concurrent writers (sharded workers share one sink),
// which is why this binary carries the TSAN ctest label.

#include "engine/trace.h"

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "events/binding.h"
#include "events/event_instance.h"
#include "events/observation.h"
#include "gtest/gtest.h"

namespace rfidcep::engine {
namespace {

using events::Bindings;
using events::EventInstance;
using events::EventInstancePtr;
using events::Observation;

class TraceSinkTest : public ::testing::Test {
 protected:
  TraceSinkTest()
      : sink_([this](std::string_view line) { lines_.emplace_back(line); }) {}

  TraceSink sink_;
  std::vector<std::string> lines_;
};

TEST_F(TraceSinkTest, ObservationRecord) {
  sink_.RecordObservation(7, Observation{"r1", "o1", 1500});
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_EQ(lines_[0],
            "{\"k\":\"obs\",\"seq\":7,\"reader\":\"r1\","
            "\"object\":\"o1\",\"t\":1500}");
  EXPECT_EQ(sink_.records(), 1u);
}

TEST_F(TraceSinkTest, NodeActivationRecord) {
  EventInstancePtr instance =
      EventInstance::MakePrimitive(Observation{"r1", "o1", 10}, Bindings{}, 3);
  sink_.RecordNodeActivation(2, 5, "SEQ", *instance);
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_EQ(lines_[0],
            "{\"k\":\"node\",\"shard\":2,\"node\":5,\"mode\":\"SEQ\","
            "\"t0\":10,\"t1\":10,\"iseq\":3}");
}

TEST_F(TraceSinkTest, PseudoMatchConditionActionRecords) {
  EventInstancePtr instance =
      EventInstance::MakePrimitive(Observation{"r", "o", 20}, Bindings{}, 1);
  sink_.RecordPseudoFired(0, 4, 30, 25);
  sink_.RecordMatch("r1", *instance, 42);
  sink_.RecordCondition("r1", true);
  sink_.RecordAction("r1", "sql", false);
  ASSERT_EQ(lines_.size(), 4u);
  EXPECT_EQ(lines_[0],
            "{\"k\":\"pseudo\",\"shard\":0,\"node\":4,\"exec\":30,"
            "\"created\":25}");
  EXPECT_EQ(lines_[1],
            "{\"k\":\"match\",\"rule\":\"r1\",\"t0\":20,\"t1\":20,"
            "\"fire\":42}");
  EXPECT_EQ(lines_[2], "{\"k\":\"cond\",\"rule\":\"r1\",\"held\":true}");
  EXPECT_EQ(lines_[3],
            "{\"k\":\"action\",\"rule\":\"r1\",\"kind\":\"sql\","
            "\"ok\":false}");
  EXPECT_EQ(sink_.records(), 4u);
}

TEST_F(TraceSinkTest, EscapesQuotesBackslashesAndControlChars) {
  EXPECT_EQ(TraceSink::EscapeJson("plain"), "plain");
  EXPECT_EQ(TraceSink::EscapeJson("a\"b"), "a\\\"b");
  EXPECT_EQ(TraceSink::EscapeJson("a\\b"), "a\\\\b");
  EXPECT_EQ(TraceSink::EscapeJson("a\nb"), "a\\nb");
  EXPECT_EQ(TraceSink::EscapeJson(std::string_view("\x01", 1)), "\\u0001");
}

TEST_F(TraceSinkTest, EscapedFieldsReachTheLine) {
  sink_.RecordObservation(1, Observation{"r\"1", "o\\1", 0});
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_EQ(lines_[0],
            "{\"k\":\"obs\",\"seq\":1,\"reader\":\"r\\\"1\","
            "\"object\":\"o\\\\1\",\"t\":0}");
}

TEST_F(TraceSinkTest, OstreamConstructorAppendsNewlines) {
  std::ostringstream out;
  TraceSink sink(&out);
  sink.RecordCondition("r", false);
  sink.RecordCondition("r", true);
  EXPECT_EQ(out.str(),
            "{\"k\":\"cond\",\"rule\":\"r\",\"held\":false}\n"
            "{\"k\":\"cond\",\"rule\":\"r\",\"held\":true}\n");
}

// Sharded workers write through one sink; every line must arrive intact
// and the record count must be exact. Runs under the TSAN label.
TEST_F(TraceSinkTest, ConcurrentWritersSerializeCleanly) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t] {
      for (int i = 0; i < kPerThread; ++i) {
        sink_.RecordCondition("rule_" + std::to_string(t), i % 2 == 0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(sink_.records(), static_cast<uint64_t>(kThreads) * kPerThread);
  ASSERT_EQ(lines_.size(), static_cast<size_t>(kThreads) * kPerThread);
  for (const std::string& line : lines_) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"k\":\"cond\""), std::string::npos);
  }
}

}  // namespace
}  // namespace rfidcep::engine
