#include "store/csv.h"

#include <gtest/gtest.h>

#include "store/database.h"
#include "store/sql_executor.h"

namespace rfidcep::store {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(db_.InstallRfidSchema().ok()); }
  Database db_;
};

TEST_F(CsvTest, RoundTripsLocationTable) {
  for (const char* sql : {
           "INSERT INTO OBJECTLOCATION VALUES ('o1', 'dock', 10, 90)",
           "INSERT INTO OBJECTLOCATION VALUES ('o1', 'shelf', 90, \"UC\")",
           "INSERT INTO OBJECTLOCATION (object_epc, loc_id) VALUES "
           "('o2', 'dock')",
       }) {
    ASSERT_TRUE(ExecuteSql(sql, &db_).ok());
  }
  Table* table = db_.GetTable("OBJECTLOCATION");
  std::string csv = TableToCsv(*table);
  EXPECT_NE(csv.find("object_epc,loc_id,tstart,tend"), std::string::npos);
  EXPECT_NE(csv.find("UC"), std::string::npos);
  EXPECT_NE(csv.find("NULL"), std::string::npos);

  // Load into a second database and compare rendered contents.
  Database db2;
  ASSERT_TRUE(db2.InstallRfidSchema().ok());
  Table* table2 = db2.GetTable("OBJECTLOCATION");
  ASSERT_TRUE(LoadTableFromCsv(csv, table2).ok());
  EXPECT_EQ(table2->size(), table->size());
  EXPECT_EQ(TableToCsv(*table2), csv);
  // Kind fidelity: UC stays UC, times stay kTime.
  std::vector<Row> open = table2->SelectWhere(
      [](const Row& row) { return row[3].is_uc(); });
  ASSERT_EQ(open.size(), 1u);
  EXPECT_EQ(open[0][2].kind(), ValueKind::kTime);
}

TEST_F(CsvTest, QuotesSpecialCharacters) {
  ASSERT_TRUE(db_.CreateTable("notes", Schema({{"txt", ColumnType::kString}}))
                  .ok());
  Table* table = db_.GetTable("notes");
  ASSERT_TRUE(table->Insert({Value::String("a,b")}).ok());
  ASSERT_TRUE(table->Insert({Value::String("say \"hi\"")}).ok());
  std::string csv = TableToCsv(*table);
  Database db2;
  ASSERT_TRUE(
      db2.CreateTable("notes", Schema({{"txt", ColumnType::kString}})).ok());
  Table* table2 = db2.GetTable("notes");
  ASSERT_TRUE(LoadTableFromCsv(csv, table2).ok());
  std::vector<Row> rows = table2->SelectWhere(nullptr);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0].AsString(), "a,b");
  EXPECT_EQ(rows[1][0].AsString(), "say \"hi\"");
}

TEST_F(CsvTest, RejectsBadHeadersAndRows) {
  Table* table = db_.GetTable("OBJECTLOCATION");
  EXPECT_FALSE(LoadTableFromCsv("", table).ok());
  EXPECT_FALSE(LoadTableFromCsv("wrong,header\n", table).ok());
  EXPECT_FALSE(
      LoadTableFromCsv("object_epc,loc_id,tstart\n", table).ok());
  EXPECT_FALSE(LoadTableFromCsv(
                   "object_epc,loc_id,tstart,tend\no1,dock,notatime,UC\n",
                   table)
                   .ok());
  EXPECT_FALSE(LoadTableFromCsv(
                   "object_epc,loc_id,tstart,tend\no1,dock,5\n", table)
                   .ok());
  EXPECT_FALSE(LoadTableFromCsv(
                   "object_epc,loc_id,tstart,tend\n\"o1,dock,5,UC\n", table)
                   .ok());
}

TEST_F(CsvTest, EmptyTableStillHasHeader) {
  Table* table = db_.GetTable("OBSERVATION");
  std::string csv = TableToCsv(*table);
  EXPECT_EQ(csv, "reader,object,ts\n");
  // A header-only file loads zero rows.
  ASSERT_TRUE(LoadTableFromCsv(csv, table).ok());
  EXPECT_EQ(table->size(), 0u);
}

}  // namespace
}  // namespace rfidcep::store
