#include <gtest/gtest.h>

#include "store/database.h"
#include "store/sql_executor.h"
#include "store/sql_lexer.h"
#include "store/sql_parser.h"

namespace rfidcep::store {
namespace {

// --- Lexer ------------------------------------------------------------------

TEST(SqlLexerTest, TokenizesStatement) {
  Result<std::vector<SqlToken>> tokens =
      SqlTokenize("SELECT a, b FROM t WHERE x >= 1.5 AND y != 'hi'");
  ASSERT_TRUE(tokens.ok());
  ASSERT_FALSE(tokens->empty());
  EXPECT_EQ(tokens->back().kind, SqlTokenKind::kEnd);
  EXPECT_TRUE((*tokens)[0].Is("select"));
}

TEST(SqlLexerTest, StringQuotingAndEscapes) {
  Result<std::vector<SqlToken>> tokens = SqlTokenize("'a''b' \"UC\"");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, SqlTokenKind::kString);
  EXPECT_EQ((*tokens)[0].text, "a'b");
  EXPECT_EQ((*tokens)[1].text, "UC");
}

TEST(SqlLexerTest, RejectsUnterminatedString) {
  EXPECT_FALSE(SqlTokenize("'oops").ok());
}

TEST(SqlLexerTest, RejectsStrayCharacters) {
  EXPECT_FALSE(SqlTokenize("SELECT @ FROM t").ok());
}

TEST(SqlLexerTest, NumbersIntAndDouble) {
  Result<std::vector<SqlToken>> tokens = SqlTokenize("12 3.5 0.1");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, SqlTokenKind::kInteger);
  EXPECT_EQ((*tokens)[1].kind, SqlTokenKind::kDouble);
  EXPECT_EQ((*tokens)[2].kind, SqlTokenKind::kDouble);
}

// --- Parser ------------------------------------------------------------------

TEST(SqlParserTest, ParsesCreateTable) {
  Result<SqlStatement> stmt = ParseSql(
      "CREATE TABLE OBJECTLOCATION (object_epc STRING, loc_id STRING, "
      "tstart TIME, tend TIME)");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->kind, SqlStatement::Kind::kCreateTable);
  ASSERT_EQ(stmt->columns.size(), 4u);
  EXPECT_EQ(stmt->columns[3].type, ColumnType::kTime);
}

TEST(SqlParserTest, ParsesPaperRule3Actions) {
  // Verbatim from the paper's Rule 3.
  Result<SqlStatement> update = ParseSql(
      "UPDATE OBJECTLOCATION SET tend = t WHERE object_epc = o AND "
      "tend = \"UC\"");
  ASSERT_TRUE(update.ok()) << update.status();
  EXPECT_EQ(update->kind, SqlStatement::Kind::kUpdate);
  ASSERT_EQ(update->set_clauses.size(), 1u);
  EXPECT_EQ(update->set_clauses[0].first, "tend");
  ASSERT_NE(update->where, nullptr);

  Result<SqlStatement> insert = ParseSql(
      "INSERT INTO OBJECTLOCATION VALUES(o, \"loc2\", t, \"UC\")");
  ASSERT_TRUE(insert.ok()) << insert.status();
  EXPECT_EQ(insert->insert_values.size(), 4u);
}

TEST(SqlParserTest, ParsesBulkInsert) {
  Result<SqlStatement> stmt = ParseSql(
      "BULK INSERT INTO OBJECTCONTAINMENT VALUES (o1, o2, t2, \"UC\")");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->kind, SqlStatement::Kind::kInsert);
  EXPECT_TRUE(stmt->bulk);
}

TEST(SqlParserTest, ParsesSelectWithOrderLimit) {
  Result<SqlStatement> stmt = ParseSql(
      "SELECT object_epc, loc_id FROM OBJECTLOCATION WHERE tstart >= 5 "
      "ORDER BY tstart DESC, object_epc LIMIT 10");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->select_exprs.size(), 2u);
  ASSERT_EQ(stmt->order_by.size(), 2u);
  EXPECT_FALSE(stmt->order_by[0].ascending);
  EXPECT_TRUE(stmt->order_by[1].ascending);
  EXPECT_EQ(stmt->limit, 10);
}

TEST(SqlParserTest, OperatorPrecedence) {
  Result<SqlExprPtr> expr = ParseSqlExpression("a = 1 OR b = 2 AND c = 3");
  ASSERT_TRUE(expr.ok());
  // OR is the root; AND binds tighter.
  EXPECT_EQ((*expr)->op, SqlBinOp::kOr);
  EXPECT_EQ((*expr)->rhs->op, SqlBinOp::kAnd);
}

TEST(SqlParserTest, ArithmeticPrecedence) {
  Result<SqlExprPtr> expr = ParseSqlExpression("1 + 2 * 3 = 7");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->op, SqlBinOp::kEq);
  EXPECT_EQ((*expr)->lhs->op, SqlBinOp::kAdd);
}

TEST(SqlParserTest, RejectsMalformedStatements) {
  EXPECT_FALSE(ParseSql("INSERT OBJECTLOCATION VALUES (1)").ok());
  EXPECT_FALSE(ParseSql("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSql("UPDATE t tend = 5").ok());
  EXPECT_FALSE(ParseSql("DELETE t").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM t WHERE").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM t extra").ok());
  EXPECT_FALSE(ParseSql("").ok());
}

TEST(SqlParserTest, LooksLikeSql) {
  EXPECT_TRUE(LooksLikeSql("INSERT INTO t VALUES (1)"));
  EXPECT_TRUE(LooksLikeSql("  update t set a = 1"));
  EXPECT_TRUE(LooksLikeSql("BULK INSERT INTO t VALUES (o1)"));
  EXPECT_FALSE(LooksLikeSql("send alarm"));
  EXPECT_FALSE(LooksLikeSql("send duplicate msg(observation(r, o, t1))"));
}

// --- Executor ------------------------------------------------------------------

class SqlExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(db_.InstallRfidSchema().ok()); }
  Database db_;
};

TEST_F(SqlExecutorTest, InsertSelectRoundTrip) {
  ASSERT_TRUE(
      ExecuteSql("INSERT INTO OBSERVATION VALUES ('r1', 'o1', 5)", &db_).ok());
  Result<ExecResult> result = ExecuteSql("SELECT * FROM OBSERVATION", &db_);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].AsString(), "r1");
  EXPECT_EQ(result->rows[0][2].kind(), ValueKind::kTime);
}

TEST_F(SqlExecutorTest, PaperRule3LocationChange) {
  // Two location changes for o1: the first period must close at t=10.
  ParamMap params1;
  params1.emplace("o", ParamValue::Scalar(Value::String("o1")));
  params1.emplace("t", ParamValue::Scalar(Value::Time(0)));
  ASSERT_TRUE(ExecuteSql("UPDATE OBJECTLOCATION SET tend = t WHERE "
                         "object_epc = o AND tend = \"UC\"",
                         &db_, params1)
                  .ok());
  ASSERT_TRUE(ExecuteSql("INSERT INTO OBJECTLOCATION VALUES (o, 'locA', t, "
                         "\"UC\")",
                         &db_, params1)
                  .ok());

  ParamMap params2;
  params2.emplace("o", ParamValue::Scalar(Value::String("o1")));
  params2.emplace("t", ParamValue::Scalar(Value::Time(10 * kSecond)));
  ASSERT_TRUE(ExecuteSql("UPDATE OBJECTLOCATION SET tend = t WHERE "
                         "object_epc = o AND tend = \"UC\"",
                         &db_, params2)
                  .ok());
  ASSERT_TRUE(ExecuteSql("INSERT INTO OBJECTLOCATION VALUES (o, 'locB', t, "
                         "\"UC\")",
                         &db_, params2)
                  .ok());

  Result<ExecResult> open = ExecuteSql(
      "SELECT loc_id FROM OBJECTLOCATION WHERE tend = \"UC\"", &db_);
  ASSERT_TRUE(open.ok());
  ASSERT_EQ(open->rows.size(), 1u);
  EXPECT_EQ(open->rows[0][0].AsString(), "locB");
  Result<ExecResult> closed = ExecuteSql(
      "SELECT tend FROM OBJECTLOCATION WHERE loc_id = 'locA'", &db_);
  ASSERT_TRUE(closed.ok());
  ASSERT_EQ(closed->rows.size(), 1u);
  EXPECT_EQ(closed->rows[0][0].AsTime(), 10 * kSecond);
}

TEST_F(SqlExecutorTest, BulkInsertExpandsMultiParam) {
  // Paper Rule 4: one containment row per packed item.
  ParamMap params;
  params.emplace("o1", ParamValue::Multi({Value::String("i1"),
                                          Value::String("i2"),
                                          Value::String("i3")}));
  params.emplace("o2", ParamValue::Scalar(Value::String("case9")));
  params.emplace("t2", ParamValue::Scalar(Value::Time(20 * kSecond)));
  Result<ExecResult> result = ExecuteSql(
      "BULK INSERT INTO OBJECTCONTAINMENT VALUES (o1, o2, t2, \"UC\")", &db_,
      params);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->affected, 3u);
  Result<ExecResult> rows = ExecuteSql(
      "SELECT object_epc FROM OBJECTCONTAINMENT WHERE parent_epc = 'case9' "
      "ORDER BY object_epc",
      &db_);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 3u);
  EXPECT_EQ(rows->rows[0][0].AsString(), "i1");
  EXPECT_EQ(rows->rows[2][0].AsString(), "i3");
}

TEST_F(SqlExecutorTest, MultiParamOutsideBulkFails) {
  ParamMap params;
  params.emplace("o1", ParamValue::Multi({Value::String("i1")}));
  EXPECT_FALSE(ExecuteSql("INSERT INTO OBSERVATION VALUES ('r', o1, 1)", &db_,
                          params)
                   .ok());
}

TEST_F(SqlExecutorTest, BulkMismatchedMultiLengthsFail) {
  ParamMap params;
  params.emplace("a", ParamValue::Multi({Value::String("x")}));
  params.emplace("b",
                 ParamValue::Multi({Value::String("y"), Value::String("z")}));
  params.emplace("t", ParamValue::Scalar(Value::Time(0)));
  EXPECT_FALSE(
      ExecuteSql("BULK INSERT INTO OBJECTCONTAINMENT VALUES (a, b, t, \"UC\")",
                 &db_, params)
          .ok());
}

TEST_F(SqlExecutorTest, DeleteWithWhere) {
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ExecuteSql("INSERT INTO OBSERVATION VALUES ('r1', 'o" +
                               std::to_string(i) + "', " + std::to_string(i) +
                               ")",
                           &db_)
                    .ok());
  }
  Result<ExecResult> deleted =
      ExecuteSql("DELETE FROM OBSERVATION WHERE ts < 3", &db_);
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(deleted->affected, 3u);
  Result<ExecResult> rest = ExecuteSql("SELECT * FROM OBSERVATION", &db_);
  EXPECT_EQ(rest->rows.size(), 2u);
}

TEST_F(SqlExecutorTest, InsertWithNamedColumns) {
  ASSERT_TRUE(ExecuteSql("INSERT INTO OBJECTLOCATION (object_epc, loc_id) "
                         "VALUES ('o1', 'dock')",
                         &db_)
                  .ok());
  Result<ExecResult> rows =
      ExecuteSql("SELECT tstart FROM OBJECTLOCATION", &db_);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_TRUE(rows->rows[0][0].is_null());
}

TEST_F(SqlExecutorTest, SelectProjectionExpressions) {
  ASSERT_TRUE(
      ExecuteSql("INSERT INTO OBSERVATION VALUES ('r1', 'o1', 10)", &db_)
          .ok());
  Result<ExecResult> rows =
      ExecuteSql("SELECT ts + 5, object FROM OBSERVATION", &db_);
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][0].AsTime(), 15);
}

TEST_F(SqlExecutorTest, CreateTableAndIndexViaSql) {
  ASSERT_TRUE(ExecuteSql("CREATE TABLE custom (a INT, b STRING)", &db_).ok());
  ASSERT_TRUE(ExecuteSql("CREATE INDEX ON custom (b)", &db_).ok());
  EXPECT_TRUE(db_.HasTable("custom"));
  EXPECT_FALSE(ExecuteSql("CREATE TABLE custom (a INT)", &db_).ok());
  EXPECT_FALSE(ExecuteSql("CREATE INDEX ON custom (ghost)", &db_).ok());
}

TEST_F(SqlExecutorTest, UnresolvedIdentifierFails) {
  ASSERT_TRUE(
      ExecuteSql("INSERT INTO OBSERVATION VALUES ('r', 'o', 1)", &db_).ok());
  Result<ExecResult> result =
      ExecuteSql("SELECT * FROM OBSERVATION WHERE mystery = 1", &db_);
  EXPECT_FALSE(result.ok());
}

TEST_F(SqlExecutorTest, UnknownTableFails) {
  EXPECT_FALSE(ExecuteSql("SELECT * FROM ghost", &db_).ok());
  EXPECT_FALSE(ExecuteSql("DELETE FROM ghost", &db_).ok());
  EXPECT_FALSE(ExecuteSql("UPDATE ghost SET a = 1", &db_).ok());
}

TEST_F(SqlExecutorTest, DivisionByZeroFails) {
  ASSERT_TRUE(
      ExecuteSql("INSERT INTO OBSERVATION VALUES ('r', 'o', 1)", &db_).ok());
  EXPECT_FALSE(ExecuteSql("SELECT 1 / 0 FROM OBSERVATION", &db_).ok());
}

TEST_F(SqlExecutorTest, EvaluateConditionOverParams) {
  ParamMap params;
  params.emplace("t1", ParamValue::Scalar(Value::Time(5 * kSecond)));
  params.emplace("t2", ParamValue::Scalar(Value::Time(8 * kSecond)));
  Result<SqlExprPtr> cond = ParseSqlExpression("t2 - t1 < 5000000");
  ASSERT_TRUE(cond.ok());
  Result<bool> holds = EvaluateCondition(**cond, params);
  ASSERT_TRUE(holds.ok());
  EXPECT_TRUE(*holds);
  Result<SqlExprPtr> cond2 = ParseSqlExpression("t2 - t1 > 5000000");
  Result<bool> holds2 = EvaluateCondition(**cond2, params);
  ASSERT_TRUE(holds2.ok());
  EXPECT_FALSE(*holds2);
}

TEST_F(SqlExecutorTest, IsNullPredicates) {
  ASSERT_TRUE(ExecuteSql("INSERT INTO OBJECTLOCATION (object_epc, loc_id) "
                         "VALUES ('o1', 'dock')",
                         &db_)
                  .ok());
  ASSERT_TRUE(ExecuteSql(
                  "INSERT INTO OBJECTLOCATION VALUES ('o2', 'dock', 5, 9)",
                  &db_)
                  .ok());
  Result<ExecResult> missing = ExecuteSql(
      "SELECT object_epc FROM OBJECTLOCATION WHERE tstart IS NULL", &db_);
  ASSERT_TRUE(missing.ok()) << missing.status();
  ASSERT_EQ(missing->rows.size(), 1u);
  EXPECT_EQ(missing->rows[0][0].AsString(), "o1");
  Result<ExecResult> present = ExecuteSql(
      "SELECT COUNT(*) FROM OBJECTLOCATION WHERE tstart IS NOT NULL", &db_);
  ASSERT_TRUE(present.ok());
  EXPECT_EQ(present->rows[0][0].AsInt(), 1);
  // UC is not NULL.
  Result<ExecResult> uc = ExecuteSql(
      "SELECT COUNT(*) FROM OBJECTLOCATION WHERE tend IS NULL", &db_);
  ASSERT_TRUE(uc.ok());
  EXPECT_EQ(uc->rows[0][0].AsInt(), 1);  // Only o1's default-NULL tend.
}

TEST_F(SqlExecutorTest, IndexProbeMatchesScanSemantics) {
  // OBJECTLOCATION is indexed on object_epc; OBSERVATION's `reader` is
  // not. Results must be identical either way, including residual
  // predicates and param-valued keys.
  for (int i = 0; i < 50; ++i) {
    ParamMap params;
    params.emplace("o", ParamValue::Scalar(
                            Value::String("obj" + std::to_string(i % 5))));
    params.emplace("t", ParamValue::Scalar(Value::Time(i)));
    ASSERT_TRUE(ExecuteSql(
                    "INSERT INTO OBJECTLOCATION VALUES (o, 'dock', t, \"UC\")",
                    &db_, params)
                    .ok());
  }
  ParamMap probe;
  probe.emplace("target", ParamValue::Scalar(Value::String("obj3")));
  Result<ExecResult> keyed = ExecuteSql(
      "SELECT COUNT(*) FROM OBJECTLOCATION WHERE object_epc = target AND "
      "tstart >= 23",
      &db_, probe);
  ASSERT_TRUE(keyed.ok()) << keyed.status();
  EXPECT_EQ(keyed->rows[0][0].AsInt(), 6);  // obj3 at t=23,28,...,48.

  // Keyed UPDATE touches exactly the probe's rows.
  Result<ExecResult> updated = ExecuteSql(
      "UPDATE OBJECTLOCATION SET tend = 99 WHERE object_epc = target", &db_,
      probe);
  ASSERT_TRUE(updated.ok()) << updated.status();
  EXPECT_EQ(updated->affected, 10u);
  // Keyed DELETE.
  Result<ExecResult> deleted = ExecuteSql(
      "DELETE FROM OBJECTLOCATION WHERE object_epc = target AND tstart < 20",
      &db_, probe);
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(deleted->affected, 4u);  // t=3,8,13,18.
  Result<ExecResult> rest = ExecuteSql(
      "SELECT COUNT(*) FROM OBJECTLOCATION WHERE object_epc = 'obj3'", &db_);
  ASSERT_TRUE(rest.ok());
  EXPECT_EQ(rest->rows[0][0].AsInt(), 6);
}

TEST_F(SqlExecutorTest, IndexProbeMissingKeyMatchesNothing) {
  ASSERT_TRUE(ExecuteSql("INSERT INTO OBJECTLOCATION VALUES ('a', 'x', 1, "
                         "\"UC\")",
                         &db_)
                  .ok());
  Result<ExecResult> rows = ExecuteSql(
      "SELECT * FROM OBJECTLOCATION WHERE object_epc = 'ghost'", &db_);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->rows.empty());
}

TEST_F(SqlExecutorTest, CountStar) {
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(ExecuteSql("INSERT INTO OBSERVATION VALUES ('r1', 'o" +
                               std::to_string(i) + "', " + std::to_string(i) +
                               ")",
                           &db_)
                    .ok());
  }
  Result<ExecResult> all = ExecuteSql("SELECT COUNT(*) FROM OBSERVATION",
                                      &db_);
  ASSERT_TRUE(all.ok()) << all.status();
  ASSERT_EQ(all->rows.size(), 1u);
  EXPECT_EQ(all->rows[0][0].AsInt(), 7);
  EXPECT_EQ(all->column_names[0], "COUNT(*)");
  Result<ExecResult> filtered = ExecuteSql(
      "SELECT COUNT(*) FROM OBSERVATION WHERE ts >= 4", &db_);
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(filtered->rows[0][0].AsInt(), 3);
  // Empty table counts zero.
  Result<ExecResult> none = ExecuteSql(
      "SELECT COUNT(*) FROM OBJECTLOCATION", &db_);
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none->rows[0][0].AsInt(), 0);
}

TEST_F(SqlExecutorTest, TruthySemantics) {
  EXPECT_FALSE(Truthy(Value::Null()));
  EXPECT_FALSE(Truthy(Value::Int(0)));
  EXPECT_TRUE(Truthy(Value::Int(1)));
  EXPECT_FALSE(Truthy(Value::String("")));
  EXPECT_TRUE(Truthy(Value::String("x")));
  EXPECT_TRUE(Truthy(Value::Uc()));
}

}  // namespace
}  // namespace rfidcep::store
