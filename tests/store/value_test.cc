#include "store/value.h"

#include <gtest/gtest.h>

namespace rfidcep::store {
namespace {

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::String("x").AsString(), "x");
  EXPECT_EQ(Value::Time(7 * kSecond).AsTime(), 7 * kSecond);
  EXPECT_TRUE(Value::Uc().is_uc());
}

TEST(ValueTest, IntAndTimeAreDistinctKinds) {
  EXPECT_EQ(Value::Int(5).kind(), ValueKind::kInt);
  EXPECT_EQ(Value::Time(5).kind(), ValueKind::kTime);
}

TEST(ValueTest, UcEqualsStringUcLiteral) {
  // Paper SQL `WHERE tend = "UC"` must hit kUc values.
  EXPECT_TRUE(Value::Uc().EqualsSql(Value::String("UC")));
  EXPECT_TRUE(Value::String("UC").EqualsSql(Value::Uc()));
  EXPECT_TRUE(Value::Uc().EqualsSql(Value::Uc()));
  EXPECT_FALSE(Value::Uc().EqualsSql(Value::String("uc")));
  EXPECT_FALSE(Value::Uc().EqualsSql(Value::Time(5)));
}

TEST(ValueTest, UcOrdersAfterEveryTimestamp) {
  EXPECT_GT(Value::Uc().Compare(Value::Time(1'000'000'000)), 0);
  EXPECT_LT(Value::Time(0).Compare(Value::Uc()), 0);
}

TEST(ValueTest, NullNeverEqualsAnything) {
  EXPECT_FALSE(Value::Null().EqualsSql(Value::Null()));
  EXPECT_FALSE(Value::Null().EqualsSql(Value::Int(0)));
  EXPECT_FALSE(Value::Int(0).EqualsSql(Value::Null()));
}

TEST(ValueTest, NumericCrossKindEquality) {
  EXPECT_TRUE(Value::Int(3).EqualsSql(Value::Double(3.0)));
  EXPECT_FALSE(Value::Int(3).EqualsSql(Value::Double(3.5)));
  EXPECT_FALSE(Value::Int(3).EqualsSql(Value::String("3")));
}

TEST(ValueTest, CompareTotalOrder) {
  EXPECT_LT(Value::Null().Compare(Value::Int(0)), 0);
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_GT(Value::Int(2).Compare(Value::Int(1)), 0);
  EXPECT_EQ(Value::Int(2).Compare(Value::Int(2)), 0);
  EXPECT_LT(Value::Int(5).Compare(Value::String("a")), 0);
  EXPECT_LT(Value::String("a").Compare(Value::String("b")), 0);
  EXPECT_LT(Value::String("zz").Compare(Value::Uc()), 0);
  EXPECT_LT(Value::Int(3).Compare(Value::Double(3.5)), 0);
  EXPECT_LT(Value::Time(5).Compare(Value::Time(6)), 0);
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(7).ToString(), "7");
  EXPECT_EQ(Value::String("abc").ToString(), "abc");
  EXPECT_EQ(Value::Uc().ToString(), "UC");
  EXPECT_EQ(Value::Time(kSecond).ToString(), "1.000000s");
}

TEST(ValueTest, EncodeKeyIsInjectivePerKind) {
  // Same payload, different kinds must not collide in hash indexes.
  EXPECT_NE(Value::Int(5).EncodeKey(), Value::Time(5).EncodeKey());
  EXPECT_NE(Value::String("5").EncodeKey(), Value::Int(5).EncodeKey());
  EXPECT_NE(Value::Null().EncodeKey(), Value::Uc().EncodeKey());
  EXPECT_EQ(Value::String("x").EncodeKey(), Value::String("x").EncodeKey());
}

}  // namespace
}  // namespace rfidcep::store
