#include "store/wal.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "store/database.h"
#include "store/sql_executor.h"

namespace rfidcep::store {
namespace {

namespace fs = std::filesystem;

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("wal_test_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::unique_ptr<Wal> OpenOrDie(WalOptions options = {}) {
    Result<std::unique_ptr<Wal>> wal = Wal::Open(dir_.string(), options);
    EXPECT_TRUE(wal.ok()) << wal.status().message();
    return std::move(*wal);
  }

  static WalRecord MakeRecord(uint64_t seq, uint32_t index,
                              std::string sql = "INSERT INTO t VALUES (1)") {
    WalRecord record;
    record.action_seq = seq;
    record.action_index = index;
    record.affected = 1;
    record.rule_id = "r" + std::to_string(seq);
    record.sql = std::move(sql);
    return record;
  }

  static std::vector<WalRecord> ReplayAll(const Wal& wal,
                                          uint64_t after_lsn = 0) {
    std::vector<WalRecord> records;
    Status status = wal.Replay(after_lsn, [&](const WalRecord& record) {
      records.push_back(record);
      return Status::Ok();
    });
    EXPECT_TRUE(status.ok()) << status.message();
    return records;
  }

  std::vector<fs::path> SegmentFiles() const {
    std::vector<fs::path> files;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    return files;
  }

  fs::path dir_;
};

TEST_F(WalTest, RoundTripsEveryParamValueKind) {
  {
    std::unique_ptr<Wal> wal = OpenOrDie();
    WalRecord record = MakeRecord(7, 2, "INSERT INTO t VALUES (:a)");
    record.affected = 3;
    record.rule_id = "dock rule";
    record.params["n"] = ParamValue::Scalar(Value::Null());
    record.params["i"] = ParamValue::Scalar(Value::Int(-42));
    record.params["d"] = ParamValue::Scalar(Value::Double(2.5));
    record.params["s"] = ParamValue::Scalar(Value::String("a \"quoted\" str"));
    record.params["t"] = ParamValue::Scalar(Value::Time(123456789));
    record.params["u"] = ParamValue::Scalar(Value::Uc());
    record.params["m"] = ParamValue::Multi(
        {Value::String("x"), Value::Int(9), Value::Uc()});
    Result<uint64_t> lsn = wal->Append(std::move(record));
    ASSERT_TRUE(lsn.ok()) << lsn.status().message();
    EXPECT_EQ(*lsn, 1u);
    ASSERT_TRUE(wal->Sync().ok());
  }

  std::unique_ptr<Wal> wal = OpenOrDie();
  EXPECT_EQ(wal->recovered_lsn(), 1u);
  const std::string key = WalActionKey("dock rule", 7, 2);
  ASSERT_EQ(wal->recovered_actions().count(key), 1u);
  EXPECT_EQ(wal->recovered_actions().at(key), 3u);

  std::vector<WalRecord> records = ReplayAll(*wal);
  ASSERT_EQ(records.size(), 1u);
  const WalRecord& r = records[0];
  EXPECT_EQ(r.lsn, 1u);
  EXPECT_EQ(r.action_seq, 7u);
  EXPECT_EQ(r.action_index, 2u);
  EXPECT_EQ(r.affected, 3u);
  EXPECT_EQ(r.rule_id, "dock rule");
  EXPECT_EQ(r.sql, "INSERT INTO t VALUES (:a)");
  ASSERT_EQ(r.params.size(), 7u);
  EXPECT_TRUE(r.params.at("n").scalar.is_null());
  EXPECT_EQ(r.params.at("i").scalar.AsInt(), -42);
  EXPECT_EQ(r.params.at("d").scalar.AsDouble(), 2.5);
  EXPECT_EQ(r.params.at("s").scalar.AsString(), "a \"quoted\" str");
  EXPECT_EQ(r.params.at("t").scalar.AsTime(), 123456789);
  EXPECT_TRUE(r.params.at("u").scalar.is_uc());
  ASSERT_TRUE(r.params.at("m").is_multi);
  ASSERT_EQ(r.params.at("m").values.size(), 3u);
  EXPECT_EQ(r.params.at("m").values[1].AsInt(), 9);
  EXPECT_TRUE(r.params.at("m").values[2].is_uc());
}

TEST_F(WalTest, ReplayIntoDatabaseIsIdempotentViaCursor) {
  std::unique_ptr<Wal> wal = OpenOrDie();
  for (int i = 0; i < 3; ++i) {
    WalRecord record = MakeRecord(static_cast<uint64_t>(i + 1), 0,
                                  "INSERT INTO OBSERVATION VALUES ('r1', 'o" +
                                      std::to_string(i) + "', " +
                                      std::to_string(i * 10) + ")");
    ASSERT_TRUE(wal->Append(std::move(record)).ok());
  }

  Database db;
  ASSERT_TRUE(db.InstallRfidSchema().ok());
  Result<uint64_t> cursor = ReplayWalIntoDatabase(*wal, &db);
  ASSERT_TRUE(cursor.ok()) << cursor.status().message();
  EXPECT_EQ(*cursor, 3u);
  EXPECT_EQ(db.GetTable("OBSERVATION")->size(), 3u);

  // Double replay from the returned cursor is a no-op.
  Result<uint64_t> again = ReplayWalIntoDatabase(*wal, &db, *cursor);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *cursor);
  EXPECT_EQ(db.GetTable("OBSERVATION")->size(), 3u);
}

TEST_F(WalTest, ProcedureAndAlarmRecordsDedupButDoNotReplay) {
  {
    std::unique_ptr<Wal> wal = OpenOrDie();
    ASSERT_TRUE(
        wal->Append(MakeRecord(1, 0,
                               "INSERT INTO OBSERVATION VALUES ('r', 'o', 5)"))
            .ok());
    WalRecord proc;
    proc.kind = WalRecordKind::kProcedure;
    proc.action_seq = 1;
    proc.action_index = 1;
    proc.rule_id = "dock rule";
    proc.sql = "start shipment";
    ASSERT_TRUE(wal->Append(std::move(proc)).ok());
    WalRecord alarm;
    alarm.kind = WalRecordKind::kAlarm;
    alarm.action_seq = 2;
    alarm.action_index = 0;
    alarm.rule_id = "dock rule";
    alarm.sql = "send alarm";
    alarm.params["tag"] = ParamValue::Scalar(Value::String("tag9"));
    ASSERT_TRUE(wal->Append(std::move(alarm)).ok());
    ASSERT_TRUE(wal->Sync().ok());
  }

  std::unique_ptr<Wal> wal = OpenOrDie();
  EXPECT_EQ(wal->recovered_lsn(), 3u);
  // Every kind lands in the dedup map, so recovery skips re-invocation.
  EXPECT_EQ(wal->recovered_actions().count(WalActionKey("dock rule", 1, 1)),
            1u);
  EXPECT_EQ(wal->recovered_actions().count(WalActionKey("dock rule", 2, 0)),
            1u);
  std::vector<WalRecord> records = ReplayAll(*wal);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].kind, WalRecordKind::kSql);
  EXPECT_EQ(records[1].kind, WalRecordKind::kProcedure);
  EXPECT_EQ(records[1].sql, "start shipment");
  EXPECT_EQ(records[2].kind, WalRecordKind::kAlarm);
  EXPECT_EQ(records[2].params.at("tag").scalar.AsString(), "tag9");

  // Store replay applies only the SQL frame but moves the cursor past
  // the procedure frames, so a second replay stays a no-op.
  Database db;
  ASSERT_TRUE(db.InstallRfidSchema().ok());
  Result<uint64_t> cursor = ReplayWalIntoDatabase(*wal, &db);
  ASSERT_TRUE(cursor.ok()) << cursor.status().message();
  EXPECT_EQ(*cursor, 3u);
  EXPECT_EQ(db.GetTable("OBSERVATION")->size(), 1u);
  Result<uint64_t> again = ReplayWalIntoDatabase(*wal, &db, *cursor);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *cursor);
  EXPECT_EQ(db.GetTable("OBSERVATION")->size(), 1u);
}

TEST_F(WalTest, UnknownRecordKindIsDroppedAsDamagedTail) {
  // A CRC-valid frame whose kind byte names no known record kind is
  // undecodable: Open() treats it like any other invalid tail record.
  fs::create_directories(dir_);
  std::string payload("\x09", 1);
  payload.append(40, '\0');
  std::string frame;
  for (uint32_t v : {static_cast<uint32_t>(payload.size()),
                     common::Crc32(payload.data(), payload.size())}) {
    for (int i = 0; i < 4; ++i) frame.push_back(static_cast<char>(v >> (8 * i)));
  }
  frame += payload;
  std::ofstream(dir_ / "wal-00000000000000000001.seg", std::ios::binary)
      << frame;

  std::unique_ptr<Wal> wal = OpenOrDie();
  EXPECT_EQ(wal->recovered_lsn(), 0u);
  EXPECT_TRUE(wal->recovered_actions().empty());
}

TEST_F(WalTest, TornFinalRecordIsTruncatedAndAppendContinues) {
  {
    std::unique_ptr<Wal> wal = OpenOrDie();
    for (uint64_t seq = 1; seq <= 3; ++seq) {
      ASSERT_TRUE(wal->Append(MakeRecord(seq, 0)).ok());
    }
    ASSERT_TRUE(wal->Sync().ok());
  }
  std::vector<fs::path> files = SegmentFiles();
  ASSERT_EQ(files.size(), 1u);
  // Tear the final record mid-frame, as an interrupted write() would.
  uint64_t size = fs::file_size(files[0]);
  fs::resize_file(files[0], size - 5);

  std::unique_ptr<Wal> wal = OpenOrDie();
  EXPECT_EQ(wal->recovered_lsn(), 2u);
  EXPECT_EQ(wal->recovered_actions().count(WalActionKey("r3", 3, 0)), 0u);

  // The torn bytes are gone; the next append takes the freed LSN.
  Result<uint64_t> lsn = wal->Append(MakeRecord(4, 0));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 3u);
  std::vector<WalRecord> records = ReplayAll(*wal);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[2].action_seq, 4u);
}

TEST_F(WalTest, CorruptTailOfFinalSegmentIsTruncated) {
  {
    std::unique_ptr<Wal> wal = OpenOrDie();
    for (uint64_t seq = 1; seq <= 4; ++seq) {
      ASSERT_TRUE(wal->Append(MakeRecord(seq, 0)).ok());
    }
    ASSERT_TRUE(wal->Sync().ok());
  }
  std::vector<fs::path> files = SegmentFiles();
  ASSERT_EQ(files.size(), 1u);
  uint64_t frame = fs::file_size(files[0]) / 4;
  {
    // Flip one payload byte inside the third record: it and everything
    // after it are dropped as a damaged tail.
    std::fstream f(files[0], std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(2 * frame + 12));
    f.put('\xff');
  }
  std::unique_ptr<Wal> wal = OpenOrDie();
  EXPECT_EQ(wal->recovered_lsn(), 2u);
  EXPECT_EQ(ReplayAll(*wal).size(), 2u);
}

TEST_F(WalTest, CorruptionInEarlierSegmentFailsOpen) {
  WalOptions small;
  small.segment_bytes = 64;  // Every record rotates into its own segment.
  {
    std::unique_ptr<Wal> wal = OpenOrDie(small);
    for (uint64_t seq = 1; seq <= 3; ++seq) {
      ASSERT_TRUE(wal->Append(MakeRecord(seq, 0)).ok());
    }
    ASSERT_TRUE(wal->Sync().ok());
  }
  std::vector<fs::path> files = SegmentFiles();
  ASSERT_GE(files.size(), 2u);
  {
    std::fstream f(files[0], std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(10);
    f.put('\xff');
  }
  Result<std::unique_ptr<Wal>> wal = Wal::Open(dir_.string(), small);
  ASSERT_FALSE(wal.ok());
  EXPECT_EQ(wal.status().code(), StatusCode::kInvalidArgument)
      << wal.status().message();
}

TEST_F(WalTest, EmptySegmentFileIsValid) {
  fs::create_directories(dir_);
  std::ofstream(dir_ / "wal-00000000000000000001.seg").flush();
  std::unique_ptr<Wal> wal = OpenOrDie();
  EXPECT_EQ(wal->recovered_lsn(), 0u);
  Result<uint64_t> lsn = wal->Append(MakeRecord(1, 0));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 1u);
}

TEST_F(WalTest, RotationPreservesLsnOrderAcrossSegments) {
  WalOptions small;
  small.segment_bytes = 100;
  const uint64_t kRecords = 20;
  {
    std::unique_ptr<Wal> wal = OpenOrDie(small);
    for (uint64_t seq = 1; seq <= kRecords; ++seq) {
      Result<uint64_t> lsn = wal->Append(MakeRecord(seq, 0));
      ASSERT_TRUE(lsn.ok());
      EXPECT_EQ(*lsn, seq);
    }
    ASSERT_TRUE(wal->Sync().ok());
    EXPECT_EQ(wal->last_lsn(), kRecords);
  }
  ASSERT_GT(SegmentFiles().size(), 1u);

  std::unique_ptr<Wal> wal = OpenOrDie(small);
  EXPECT_EQ(wal->recovered_lsn(), kRecords);
  std::vector<WalRecord> records = ReplayAll(*wal);
  ASSERT_EQ(records.size(), kRecords);
  for (uint64_t i = 0; i < kRecords; ++i) {
    EXPECT_EQ(records[i].lsn, i + 1);
    EXPECT_EQ(records[i].action_seq, i + 1);
  }
  // A replay cursor skips exactly the prefix.
  EXPECT_EQ(ReplayAll(*wal, kRecords / 2).size(), kRecords - kRecords / 2);

  // Appending after recovery lands in the final segment, LSNs sequential.
  Result<uint64_t> lsn = wal->Append(MakeRecord(kRecords + 1, 0));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, kRecords + 1);
}

TEST_F(WalTest, EveryAppendPolicySurvivesUnflushedDrop) {
  WalOptions durable;
  durable.fsync = FsyncPolicy::kEveryAppend;
  {
    std::unique_ptr<Wal> wal = OpenOrDie(durable);
    ASSERT_TRUE(wal->Append(MakeRecord(1, 0)).ok());
    // No Sync(), no Flush(): the policy already pushed it to disk.
  }
  std::unique_ptr<Wal> wal = OpenOrDie(durable);
  EXPECT_EQ(wal->recovered_lsn(), 1u);
}

}  // namespace
}  // namespace rfidcep::store
