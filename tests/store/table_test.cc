#include "store/table.h"

#include <gtest/gtest.h>

namespace rfidcep::store {
namespace {

Schema LocationSchema() {
  return Schema({{"object_epc", ColumnType::kString},
                 {"loc_id", ColumnType::kString},
                 {"tstart", ColumnType::kTime},
                 {"tend", ColumnType::kTime}});
}

Row LocationRow(const std::string& object, const std::string& loc,
                TimePoint start) {
  return {Value::String(object), Value::String(loc), Value::Time(start),
          Value::Uc()};
}

TEST(SchemaTest, FindColumnIsCaseInsensitive) {
  Schema schema = LocationSchema();
  EXPECT_EQ(schema.FindColumn("object_epc"), 0);
  EXPECT_EQ(schema.FindColumn("OBJECT_EPC"), 0);
  EXPECT_EQ(schema.FindColumn("tend"), 3);
  EXPECT_EQ(schema.FindColumn("nope"), -1);
}

TEST(SchemaTest, CoercionRules) {
  Schema schema = LocationSchema();
  // String "UC" coerces to kUc in a TIME column.
  Value uc_string = Value::String("UC");
  ASSERT_TRUE(schema.CoerceValue(3, &uc_string).ok());
  EXPECT_TRUE(uc_string.is_uc());
  // Int coerces to time.
  Value t = Value::Int(5);
  ASSERT_TRUE(schema.CoerceValue(2, &t).ok());
  EXPECT_EQ(t.kind(), ValueKind::kTime);
  // String column rejects a time.
  Value bad = Value::Time(5);
  EXPECT_FALSE(schema.CoerceValue(0, &bad).ok());
  // NULL is accepted anywhere.
  Value null = Value::Null();
  EXPECT_TRUE(schema.CoerceValue(0, &null).ok());
}

TEST(TableTest, InsertAndScan) {
  Table table("OBJECTLOCATION", LocationSchema());
  ASSERT_TRUE(table.Insert(LocationRow("o1", "dock", 0)).ok());
  ASSERT_TRUE(table.Insert(LocationRow("o2", "dock", kSecond)).ok());
  EXPECT_EQ(table.size(), 2u);
  size_t seen = 0;
  table.Scan([&](const Row& row) {
    EXPECT_EQ(row.size(), 4u);
    ++seen;
  });
  EXPECT_EQ(seen, 2u);
}

TEST(TableTest, InsertRejectsWrongArity) {
  Table table("T", LocationSchema());
  EXPECT_FALSE(table.Insert({Value::Int(1)}).ok());
}

TEST(TableTest, UpdateWhereMutatesMatchingRows) {
  Table table("OBJECTLOCATION", LocationSchema());
  ASSERT_TRUE(table.Insert(LocationRow("o1", "dock", 0)).ok());
  ASSERT_TRUE(table.Insert(LocationRow("o2", "dock", 0)).ok());
  Result<size_t> updated = table.UpdateWhere(
      [](const Row& row) { return row[0].EqualsSql(Value::String("o1")); },
      [](Row* row) { (*row)[3] = Value::Time(9 * kSecond); });
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(*updated, 1u);
  std::vector<Row> open = table.SelectWhere(
      [](const Row& row) { return row[3].is_uc(); });
  ASSERT_EQ(open.size(), 1u);
  EXPECT_EQ(open[0][0].AsString(), "o2");
}

TEST(TableTest, DeleteWhereRemovesAndCounts) {
  Table table("T", LocationSchema());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        table.Insert(LocationRow("o" + std::to_string(i % 2), "x", i)).ok());
  }
  size_t deleted = table.DeleteWhere(
      [](const Row& row) { return row[0].EqualsSql(Value::String("o0")); });
  EXPECT_EQ(deleted, 5u);
  EXPECT_EQ(table.size(), 5u);
}

TEST(TableTest, IndexedLookupMatchesScan) {
  Table table("T", LocationSchema());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        table.Insert(LocationRow("o" + std::to_string(i % 7), "x", i)).ok());
  }
  ASSERT_TRUE(table.CreateIndex("object_epc").ok());
  EXPECT_TRUE(table.HasIndex(0));
  std::vector<Row> indexed = table.Lookup(0, Value::String("o3"));
  std::vector<Row> scanned = table.SelectWhere(
      [](const Row& row) { return row[0].EqualsSql(Value::String("o3")); });
  EXPECT_EQ(indexed.size(), scanned.size());
  EXPECT_FALSE(indexed.empty());
}

TEST(TableTest, IndexSurvivesUpdatesAndDeletes) {
  Table table("T", LocationSchema());
  ASSERT_TRUE(table.CreateIndex("object_epc").ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        table.Insert(LocationRow("o" + std::to_string(i), "x", i)).ok());
  }
  // Update renames o5 -> o99; index must follow.
  ASSERT_TRUE(table
                  .UpdateWhere(
                      [](const Row& row) {
                        return row[0].EqualsSql(Value::String("o5"));
                      },
                      [](Row* row) { (*row)[0] = Value::String("o99"); })
                  .ok());
  EXPECT_TRUE(table.Lookup(0, Value::String("o5")).empty());
  EXPECT_EQ(table.Lookup(0, Value::String("o99")).size(), 1u);
  table.DeleteWhere(
      [](const Row& row) { return row[0].EqualsSql(Value::String("o99")); });
  EXPECT_TRUE(table.Lookup(0, Value::String("o99")).empty());
}

TEST(TableTest, CompactionPreservesContentAndIndex) {
  Table table("T", LocationSchema());
  ASSERT_TRUE(table.CreateIndex("object_epc").ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        table.Insert(LocationRow("o" + std::to_string(i), "x", i)).ok());
  }
  // Delete 3/4 of rows to trigger compaction.
  table.DeleteWhere([](const Row& row) {
    return row[2].AsTime() % 4 != 0;
  });
  EXPECT_EQ(table.size(), 50u);
  EXPECT_EQ(table.Lookup(0, Value::String("o8")).size(), 1u);
  EXPECT_TRUE(table.Lookup(0, Value::String("o9")).empty());
  // Inserting after compaction still indexes correctly.
  ASSERT_TRUE(table.Insert(LocationRow("new", "x", 999)).ok());
  EXPECT_EQ(table.Lookup(0, Value::String("new")).size(), 1u);
}

TEST(TableTest, CreateIndexOnUnknownColumnFails) {
  Table table("T", LocationSchema());
  EXPECT_FALSE(table.CreateIndex("ghost").ok());
}

}  // namespace
}  // namespace rfidcep::store
