#include "rules/parser.h"

#include <gtest/gtest.h>

#include "events/expr.h"

namespace rfidcep::rules {
namespace {

using events::ExprOp;

TEST(RuleParserTest, ParsesPaperRule1Verbatim) {
  Result<RuleSet> set = ParseRuleProgram(R"(
    CREATE RULE r1, duplicate detection rule
    ON WITHIN(observation(r, o, t1); observation(r, o, t2), 5sec)
    IF true
    DO send duplicate msg(observation(r, o, t1))
  )");
  ASSERT_TRUE(set.ok()) << set.status();
  ASSERT_EQ(set->rules.size(), 1u);
  const Rule& rule = set->rules[0];
  EXPECT_EQ(rule.id, "r1");
  EXPECT_EQ(rule.name, "duplicate detection rule");
  EXPECT_EQ(rule.event->op(), ExprOp::kSeq);
  EXPECT_EQ(rule.event->within(), 5 * kSecond);
  EXPECT_EQ(rule.condition, nullptr);  // IF true.
  ASSERT_EQ(rule.actions.size(), 1u);
  EXPECT_EQ(rule.actions[0].kind, RuleAction::Kind::kProcedure);
  EXPECT_EQ(rule.actions[0].procedure_name, "send duplicate msg");
  EXPECT_EQ(rule.actions[0].procedure_args, "observation(r, o, t1)");
}

TEST(RuleParserTest, ParsesPaperRule2Infield) {
  Result<RuleSet> set = ParseRuleProgram(R"(
    CREATE RULE r2, infield filtering
    ON WITHIN(NOT observation(r, o, t1); observation(r, o, t2), 30sec)
    IF true
    DO INSERT INTO OBSERVATION VALUES (r, o, t2)
  )");
  ASSERT_TRUE(set.ok()) << set.status();
  const Rule& rule = set->rules[0];
  EXPECT_EQ(rule.event->op(), ExprOp::kSeq);
  EXPECT_EQ(rule.event->children()[0]->op(), ExprOp::kNot);
  EXPECT_EQ(rule.event->within(), 30 * kSecond);
  ASSERT_EQ(rule.actions.size(), 1u);
  EXPECT_EQ(rule.actions[0].kind, RuleAction::Kind::kSql);
}

TEST(RuleParserTest, ParsesPaperRule3LocationChange) {
  Result<RuleSet> set = ParseRuleProgram(R"(
    CREATE RULE r3, location change rule
    ON observation(r, o, t)
    IF true
    DO UPDATE OBJECTLOCATION SET tend = t WHERE object_epc = o AND tend = "UC";
       INSERT INTO OBJECTLOCATION VALUES(o, "loc2", t, "UC")
  )");
  ASSERT_TRUE(set.ok()) << set.status();
  const Rule& rule = set->rules[0];
  EXPECT_EQ(rule.event->op(), ExprOp::kPrimitive);
  ASSERT_EQ(rule.actions.size(), 2u);
  EXPECT_EQ(rule.actions[0].kind, RuleAction::Kind::kSql);
  EXPECT_EQ(rule.actions[1].kind, RuleAction::Kind::kSql);
}

TEST(RuleParserTest, ParsesPaperRule4ContainmentWithDefines) {
  Result<RuleSet> set = ParseRuleProgram(R"(
    DEFINE E1 = observation("r1", o1, t1)
    DEFINE E2 = observation("r2", o2, t2)
    CREATE RULE r4, containment rule
    ON TSEQ(TSEQ+(E1, 0.1sec, 1sec); E2, 10sec, 20sec)
    IF true
    DO BULK INSERT INTO CONTAINMENT VALUES (o2, o1, t2, "UC")
  )");
  ASSERT_TRUE(set.ok()) << set.status();
  EXPECT_EQ(set->defines.size(), 2u);
  const Rule& rule = set->rules[0];
  EXPECT_EQ(rule.event->op(), ExprOp::kSeq);
  EXPECT_EQ(rule.event->dist_lo(), 10 * kSecond);
  EXPECT_EQ(rule.event->dist_hi(), 20 * kSecond);
  const events::EventExprPtr& seqplus = rule.event->children()[0];
  EXPECT_EQ(seqplus->op(), ExprOp::kSeqPlus);
  EXPECT_EQ(seqplus->dist_lo(), 100 * kMillisecond);
  EXPECT_EQ(seqplus->dist_hi(), kSecond);
  ASSERT_EQ(rule.actions.size(), 1u);
  EXPECT_TRUE(rule.actions[0].sql.bulk);
}

TEST(RuleParserTest, ParsesPaperRule5AssetMonitoring) {
  Result<RuleSet> set = ParseRuleProgram(R"(
    DEFINE E4 = observation("r4", o4, t4), type(o4) = "laptop"
    DEFINE E5 = observation("r4", o5, t5), type(o5) = "superuser"
    CREATE RULE r5, asset monitoring rule
    ON WITHIN(E4 AND NOT E5, 5sec)
    IF true
    DO send alarm
  )");
  ASSERT_TRUE(set.ok()) << set.status();
  const Rule& rule = set->rules[0];
  EXPECT_EQ(rule.event->op(), ExprOp::kAnd);
  EXPECT_EQ(rule.event->within(), 5 * kSecond);
  EXPECT_EQ(rule.event->children()[1]->op(), ExprOp::kNot);
  // The DEFINEd type constraint survives alias expansion.
  const events::EventExprPtr& e4 = rule.event->children()[0];
  ASSERT_EQ(e4->op(), ExprOp::kPrimitive);
  EXPECT_EQ(e4->primitive().type_constraint(), "laptop");
  ASSERT_EQ(rule.actions.size(), 1u);
  EXPECT_EQ(rule.actions[0].procedure_name, "send alarm");
  EXPECT_TRUE(rule.actions[0].procedure_args.empty());
}

TEST(RuleParserTest, ParsesMultipleRulesInOneProgram) {
  Result<RuleSet> set = ParseRuleProgram(R"(
    CREATE RULE a, first
    ON observation(r, o, t)
    IF true
    DO send alarm

    CREATE RULE b, second
    ON observation("r9", o, t)
    IF true
    DO INSERT INTO OBSERVATION VALUES (r9, o, t)
  )");
  ASSERT_TRUE(set.ok()) << set.status();
  EXPECT_EQ(set->rules.size(), 2u);
  EXPECT_EQ(set->rules[1].id, "b");
}

TEST(RuleParserTest, ParsesConditionExpression) {
  Result<RuleSet> set = ParseRuleProgram(R"(
    CREATE RULE c, conditional
    ON observation(r, o, t)
    IF t > 100 AND o != 'noise'
    DO send alarm
  )");
  ASSERT_TRUE(set.ok()) << set.status();
  EXPECT_NE(set->rules[0].condition, nullptr);
  EXPECT_EQ(set->rules[0].condition_text, "t > 100 AND o != 'noise'");
}

TEST(RuleParserTest, IfClauseIsOptional) {
  Result<RuleSet> set = ParseRuleProgram(
      "CREATE RULE x, noif ON observation(r, o, t) DO send alarm");
  ASSERT_TRUE(set.ok()) << set.status();
  EXPECT_EQ(set->rules[0].condition, nullptr);
}

TEST(RuleParserTest, GroupAndTypeConstraints) {
  Result<events::EventExprPtr> expr = ParseEventExpr(
      "observation(r, o, t), group(r) = 'g1', type(o) = 'case'");
  ASSERT_TRUE(expr.ok()) << expr.status();
  EXPECT_EQ((*expr)->primitive().group_constraint(), "g1");
  EXPECT_EQ((*expr)->primitive().type_constraint(), "case");
}

TEST(RuleParserTest, OrAndPrecedence) {
  // AND binds tighter than OR.
  Result<events::EventExprPtr> expr = ParseEventExpr(
      "observation(\"a\", o, t) OR observation(\"b\", o, t) AND "
      "observation(\"c\", o, t)");
  ASSERT_TRUE(expr.ok()) << expr.status();
  EXPECT_EQ((*expr)->op(), ExprOp::kOr);
  EXPECT_EQ((*expr)->children()[1]->op(), ExprOp::kAnd);
}

TEST(RuleParserTest, AllDesugarsToNestedAnd) {
  // Paper §2.2: ALL(E1, ..., En) = E1 ∧ ... ∧ En.
  Result<events::EventExprPtr> expr = ParseEventExpr(
      "ALL(observation(\"a\", o1, t1), observation(\"b\", o2, t2), "
      "observation(\"c\", o3, t3))");
  ASSERT_TRUE(expr.ok()) << expr.status();
  EXPECT_EQ((*expr)->op(), ExprOp::kAnd);
  EXPECT_EQ((*expr)->children()[0]->op(), ExprOp::kAnd);
  EXPECT_EQ((*expr)->children()[1]->op(), ExprOp::kPrimitive);
  // Single-element ALL is the event itself.
  Result<events::EventExprPtr> single =
      ParseEventExpr("ALL(observation(\"a\", o, t))");
  ASSERT_TRUE(single.ok());
  EXPECT_EQ((*single)->op(), ExprOp::kPrimitive);
}

TEST(RuleParserTest, SeqPlusWithoutBounds) {
  Result<events::EventExprPtr> expr =
      ParseEventExpr("SEQ(SEQ+(observation(\"a\", o1, t1)); "
                     "observation(\"b\", o2, t2))");
  ASSERT_TRUE(expr.ok()) << expr.status();
  EXPECT_EQ((*expr)->children()[0]->op(), ExprOp::kSeqPlus);
  EXPECT_EQ((*expr)->children()[0]->dist_hi(), kDurationInfinity);
}

TEST(RuleParserTest, WithinOverSingleEvent) {
  Result<events::EventExprPtr> expr = ParseEventExpr(
      "WITHIN(TSEQ+(observation(\"a\", o, t), 0.1sec, 1sec), 100sec)");
  ASSERT_TRUE(expr.ok()) << expr.status();
  EXPECT_EQ((*expr)->op(), ExprOp::kSeqPlus);
  EXPECT_EQ((*expr)->within(), 100 * kSecond);
}

TEST(RuleParserTest, RejectsMalformedPrograms) {
  EXPECT_FALSE(ParseRuleProgram("CREATE RULE x ON DO send alarm").ok());
  EXPECT_FALSE(ParseRuleProgram("CREATE RULE x, y ON observation(r, o, t)").ok());
  EXPECT_FALSE(
      ParseRuleProgram("CREATE RULE x, y ON unknown_alias IF true DO a").ok());
  EXPECT_FALSE(ParseRuleProgram(
                   "CREATE RULE x, y ON TSEQ(observation(a, o, t); "
                   "observation(b, o, t), 20sec, 10sec) IF true DO act")
                   .ok());  // lo > hi.
  EXPECT_FALSE(ParseRuleProgram("nonsense").ok());
  EXPECT_FALSE(ParseRuleProgram(
                   "CREATE RULE x, y ON observation(r, o, t) IF true DO "
                   "INSERT INTO t VALUES(")
                   .ok());
}

TEST(RuleParserTest, DuplicateMsgStyleArgsKeepRawText) {
  Result<RuleSet> set = ParseRuleProgram(R"(
    CREATE RULE p, proc args
    ON observation(r, o, t)
    IF true
    DO notify(security, level = 3)
  )");
  ASSERT_TRUE(set.ok()) << set.status();
  EXPECT_EQ(set->rules[0].actions[0].procedure_name, "notify");
  EXPECT_EQ(set->rules[0].actions[0].procedure_args, "security, level = 3");
}

TEST(RuleParserTest, AliasReuseSharesStructure) {
  Result<RuleSet> set = ParseRuleProgram(R"(
    DEFINE E1 = observation("r1", o1, t1)
    CREATE RULE a, one
    ON SEQ(E1; observation("r2", o2, t2))
    IF true
    DO send alarm
    CREATE RULE b, two
    ON WITHIN(E1, 10sec)
    IF true
    DO send alarm
  )");
  ASSERT_TRUE(set.ok()) << set.status();
  ASSERT_EQ(set->rules.size(), 2u);
  // Both rules reference the same primitive definition.
  EXPECT_EQ(set->rules[0].event->children()[0]->CanonicalKey(),
            "PRIM" + set->rules[1].event->primitive().CanonicalKey().substr(0));
}

}  // namespace
}  // namespace rfidcep::rules
