#include "epc/catalog.h"

#include <gtest/gtest.h>

#include "epc/epc.h"

namespace rfidcep::epc {
namespace {

TEST(ProductCatalogTest, ResolvesItemClass) {
  ProductCatalog catalog;
  ASSERT_TRUE(catalog.RegisterItemClass(614141, 7, 300003, "laptop").ok());
  Result<Epc> laptop = Epc::MakeSgtin(1, 614141, 7, 300003, 17);
  ASSERT_TRUE(laptop.ok());
  EXPECT_EQ(catalog.TypeOf(laptop->ToUri()), "laptop");
  // Different serial, same class.
  Result<Epc> other = Epc::MakeSgtin(1, 614141, 7, 300003, 99);
  EXPECT_EQ(catalog.TypeOf(other->ToUri()), "laptop");
}

TEST(ProductCatalogTest, UnknownEpcHasEmptyType) {
  ProductCatalog catalog;
  EXPECT_EQ(catalog.TypeOf("urn:epc:id:sgtin:0614141.100734.2"), "");
  EXPECT_EQ(catalog.TypeOf("opaque-id"), "");
}

TEST(ProductCatalogTest, ExactOverrideBeatsItemClass) {
  ProductCatalog catalog;
  ASSERT_TRUE(catalog.RegisterItemClass(614141, 7, 300003, "laptop").ok());
  Result<Epc> epc = Epc::MakeSgtin(1, 614141, 7, 300003, 5);
  catalog.RegisterExact(epc->ToUri(), "demo-unit");
  EXPECT_EQ(catalog.TypeOf(epc->ToUri()), "demo-unit");
}

TEST(ProductCatalogTest, ExactMappingSupportsOpaqueIds) {
  // The paper's examples use ids like '8E5YUK691I0J60KDN'.
  ProductCatalog catalog;
  catalog.RegisterExact("8E5YUK691I0J60KDN", "laptop");
  catalog.RegisterExact("UH7JEFU63MAW6I610", "pallet");
  EXPECT_EQ(catalog.TypeOf("8E5YUK691I0J60KDN"), "laptop");
  EXPECT_EQ(catalog.TypeOf("UH7JEFU63MAW6I610"), "pallet");
}

TEST(ProductCatalogTest, RejectsInvalidItemClass) {
  ProductCatalog catalog;
  EXPECT_FALSE(catalog.RegisterItemClass(614141, 7, 99999999, "x").ok());
}

TEST(ReaderRegistryTest, GroupDefaultsToReaderItself) {
  // Paper: E = observation('r', o, t) <=> group(r) = 'r'.
  ReaderRegistry registry;
  EXPECT_EQ(registry.GroupOf("r1"), "r1");
  EXPECT_EQ(registry.LocationOf("r1"), "");
}

TEST(ReaderRegistryTest, RegisteredReaderHasGroupAndLocation) {
  ReaderRegistry registry;
  registry.RegisterReader("r1", "g1", "warehouse-a");
  registry.RegisterReader("r2", "g1", "warehouse-a");
  registry.RegisterReader("r3", "g2", "dock");
  EXPECT_EQ(registry.GroupOf("r1"), "g1");
  EXPECT_EQ(registry.GroupOf("r2"), "g1");
  EXPECT_EQ(registry.LocationOf("r3"), "dock");
  EXPECT_EQ(registry.ReadersInGroup("g1"),
            (std::vector<std::string>{"r1", "r2"}));
  EXPECT_TRUE(registry.ReadersInGroup("nope").empty());
}

TEST(ReaderRegistryTest, ReRegistrationOverwrites) {
  ReaderRegistry registry;
  registry.RegisterReader("r1", "g1", "a");
  registry.RegisterReader("r1", "g2", "b");
  EXPECT_EQ(registry.GroupOf("r1"), "g2");
  EXPECT_EQ(registry.LocationOf("r1"), "b");
  EXPECT_EQ(registry.size(), 1u);
}

}  // namespace
}  // namespace rfidcep::epc
