#include "epc/epc.h"

#include <gtest/gtest.h>

namespace rfidcep::epc {
namespace {

TEST(EpcTest, SgtinUriRoundTrip) {
  Result<Epc> epc = Epc::MakeSgtin(3, 614141, 7, 100734, 2);
  ASSERT_TRUE(epc.ok()) << epc.status();
  EXPECT_EQ(epc->ToUri(), "urn:epc:id:sgtin:0614141.100734.2");
  Result<Epc> parsed = Epc::FromUri(epc->ToUri());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->company_prefix(), 614141u);
  EXPECT_EQ(parsed->reference(), 100734u);
  EXPECT_EQ(parsed->serial(), 2u);
  EXPECT_EQ(parsed->scheme(), Scheme::kSgtin96);
}

TEST(EpcTest, SgtinPreservesLeadingZeros) {
  Result<Epc> parsed = Epc::FromUri("urn:epc:id:sgtin:0614141.000005.42");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->reference(), 5u);
  EXPECT_EQ(parsed->ToUri(), "urn:epc:id:sgtin:0614141.000005.42");
}

TEST(EpcTest, SgtinBinaryRoundTrip) {
  Result<Epc> epc = Epc::MakeSgtin(3, 614141, 7, 812345, 6789);
  ASSERT_TRUE(epc.ok());
  EpcBits bits = epc->ToBinary();
  EXPECT_EQ(bits[0], kHeaderSgtin96);
  Result<Epc> decoded = Epc::FromBinary(bits);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, *epc);
  EXPECT_EQ(decoded->filter(), 3);
}

TEST(EpcTest, SgtinPartitionByCompanyDigits) {
  // 12-digit company prefix => partition 0; 6-digit => partition 6.
  Result<Epc> p0 = Epc::MakeSgtin(0, 123456789012ull, 12, 1, 1);
  ASSERT_TRUE(p0.ok()) << p0.status();
  EXPECT_EQ(p0->partition(), 0);
  Result<Epc> p6 = Epc::MakeSgtin(0, 123456, 6, 1234567, 1);
  ASSERT_TRUE(p6.ok()) << p6.status();
  EXPECT_EQ(p6->partition(), 6);
}

TEST(EpcTest, SsccRoundTrip) {
  Result<Epc> epc = Epc::MakeSscc(0, 614141, 7, 1234567890);
  ASSERT_TRUE(epc.ok()) << epc.status();
  EXPECT_EQ(epc->ToUri(), "urn:epc:id:sscc:0614141.1234567890");
  Result<Epc> decoded = Epc::FromBinary(epc->ToBinary());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, *epc);
  Result<Epc> parsed = Epc::FromUri(epc->ToUri());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, *epc);
}

TEST(EpcTest, SglnRoundTrip) {
  Result<Epc> epc = Epc::MakeSgln(0, 614141, 7, 12345, 99);
  ASSERT_TRUE(epc.ok()) << epc.status();
  EXPECT_EQ(epc->ToUri(), "urn:epc:id:sgln:0614141.12345.99");
  Result<Epc> decoded = Epc::FromBinary(epc->ToBinary());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, *epc);
}

TEST(EpcTest, SglnPartitionZeroHasEmptyLocationRef) {
  Result<Epc> epc = Epc::MakeSgln(0, 123456789012ull, 12, 0, 7);
  ASSERT_TRUE(epc.ok()) << epc.status();
  EXPECT_EQ(epc->ToUri(), "urn:epc:id:sgln:123456789012..7");
  Result<Epc> parsed = Epc::FromUri(epc->ToUri());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, *epc);
}

TEST(EpcTest, RejectsOversizedFields) {
  // Item reference wider than the partition allows (7 digits company =>
  // 6-digit reference).
  EXPECT_FALSE(Epc::MakeSgtin(0, 614141, 7, 10000000, 1).ok());
  // Serial over 2^38.
  EXPECT_FALSE(Epc::MakeSgtin(0, 614141, 7, 1, 1ull << 38).ok());
  // Filter out of range.
  EXPECT_FALSE(Epc::MakeSgtin(8, 614141, 7, 1, 1).ok());
  // Company prefix with unsupported digit count.
  EXPECT_FALSE(Epc::MakeSgtin(0, 12345, 5, 1, 1).ok());
  EXPECT_FALSE(Epc::MakeSgtin(0, 1234567890123ull, 13, 1, 1).ok());
}

TEST(EpcTest, RejectsMalformedUris) {
  EXPECT_FALSE(Epc::FromUri("").ok());
  EXPECT_FALSE(Epc::FromUri("urn:epc:id:").ok());
  EXPECT_FALSE(Epc::FromUri("urn:epc:id:grai:1.2.3").ok());
  EXPECT_FALSE(Epc::FromUri("urn:epc:id:sgtin:0614141.100734").ok());
  EXPECT_FALSE(Epc::FromUri("urn:epc:id:sgtin:0614141.1007x4.2").ok());
  EXPECT_FALSE(Epc::FromUri("not-a-uri").ok());
}

TEST(EpcTest, Gid96RoundTrips) {
  Result<Epc> gid = Epc::MakeGid(268435455, 16777215, 68719476735ull);
  ASSERT_TRUE(gid.ok()) << gid.status();  // All fields at their maxima.
  EXPECT_EQ(gid->ToUri(), "urn:epc:id:gid:268435455.16777215.68719476735");
  Result<Epc> parsed = Epc::FromUri(gid->ToUri());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, *gid);
  EpcBits bits = gid->ToBinary();
  EXPECT_EQ(bits[0], kHeaderGid96);
  Result<Epc> decoded = Epc::FromBinary(bits);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, *gid);
  EXPECT_EQ(gid->ClassKey(), "gid:268435455.16777215");
}

TEST(EpcTest, Gid96RejectsOversizedFields) {
  EXPECT_FALSE(Epc::MakeGid(1ull << 28, 0, 0).ok());
  EXPECT_FALSE(Epc::MakeGid(0, 1ull << 24, 0).ok());
  EXPECT_FALSE(Epc::MakeGid(0, 0, 1ull << 36).ok());
  EXPECT_TRUE(Epc::MakeGid(0, 0, 0).ok());
}

TEST(EpcTest, RejectsUnknownBinaryHeader) {
  EpcBits bits{};
  bits[0] = 0xFF;
  EXPECT_FALSE(Epc::FromBinary(bits).ok());
}

TEST(EpcTest, ClassKeyIgnoresSerial) {
  Result<Epc> a = Epc::MakeSgtin(1, 614141, 7, 100734, 1);
  Result<Epc> b = Epc::MakeSgtin(1, 614141, 7, 100734, 999);
  Result<Epc> c = Epc::MakeSgtin(1, 614141, 7, 200001, 1);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(a->ClassKey(), b->ClassKey());
  EXPECT_NE(a->ClassKey(), c->ClassKey());
}

class SgtinPartitionSweep : public ::testing::TestWithParam<int> {};

TEST_P(SgtinPartitionSweep, BinaryRoundTripAtEveryPartition) {
  int company_digits = GetParam();
  Result<PartitionRow> row = PartitionFor(
      Scheme::kSgtin96, 12 - company_digits);
  ASSERT_TRUE(row.ok());
  // Maximal values that fit both digit and bit budgets.
  uint64_t company = 1;
  for (int i = 1; i < company_digits; ++i) company = company * 10 + 1;
  uint64_t reference = (uint64_t{1} << row->reference_bits) - 1;
  uint64_t ref_cap = 1;
  for (int i = 0; i < row->reference_digits; ++i) ref_cap *= 10;
  reference = std::min(reference, ref_cap - 1);
  Result<Epc> epc = Epc::MakeSgtin(0, company, company_digits, reference,
                                   (1ull << 38) - 1);
  ASSERT_TRUE(epc.ok()) << epc.status();
  Result<Epc> decoded = Epc::FromBinary(epc->ToBinary());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, *epc);
  Result<Epc> reparsed = Epc::FromUri(epc->ToUri());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(*reparsed, *epc);
}

INSTANTIATE_TEST_SUITE_P(AllPartitions, SgtinPartitionSweep,
                         ::testing::Values(6, 7, 8, 9, 10, 11, 12));

}  // namespace
}  // namespace rfidcep::epc
