// A brute-force reference implementation of complex-event semantics, used
// as an oracle by the property tests.
//
// Given the COMPLETE event history, EnumerateInstances computes every
// instance of a NOT-free expression under *unrestricted* semantics:
//
//   prim     every matching observation
//   OR       union of the branches' instances
//   AND      every unifying cross pair within the interval bound
//   SEQ/TSEQ every ordered, distance/interval-admissible, unifying pair
//   SEQ+     the maximal adjacent-distance runs of the constituent stream
//            (the documented run semantics; see DESIGN.md §3)
//
// It is deliberately simple and quadratic/cubic — correctness only. The
// streaming engine in unrestricted context must agree with it exactly;
// chronicle-context results must be a subset of it.
//
// ValidateInstance re-checks every temporal constraint of `expr` on a
// detected instance tree — used to assert that whatever the engine emits
// under ANY context satisfies the declarative constraints.

#ifndef RFIDCEP_TESTS_PROPERTY_REFERENCE_ORACLE_H_
#define RFIDCEP_TESTS_PROPERTY_REFERENCE_ORACLE_H_

#include <algorithm>
#include <vector>

#include "events/event_instance.h"
#include "events/event_type.h"
#include "events/expr.h"

namespace rfidcep::engine::testing {

using events::Bindings;
using events::EventExpr;
using events::EventInstance;
using events::EventInstancePtr;
using events::ExprOp;
using events::Observation;

inline bool OracleUnifies(const Bindings& a, const Bindings& b) {
  Bindings tmp = a;
  return tmp.Merge(b);
}

// All instances of `expr` over the complete `history` (must be
// timestamp-sorted). NOT is unsupported (callers keep oracle expressions
// NOT-free).
inline std::vector<EventInstancePtr> EnumerateInstances(
    const EventExpr& expr, const std::vector<Observation>& history,
    const events::Environment& env, uint64_t* seq) {
  std::vector<EventInstancePtr> out;
  auto passes_within = [&expr](const EventInstancePtr& e) {
    return !expr.has_within() || e->interval() <= expr.within();
  };
  switch (expr.op()) {
    case ExprOp::kPrimitive: {
      for (const Observation& obs : history) {
        if (expr.primitive().Matches(obs, env)) {
          out.push_back(EventInstance::MakePrimitive(
              obs, expr.primitive().Bind(obs), ++*seq));
        }
      }
      break;
    }
    case ExprOp::kOr: {
      for (const events::EventExprPtr& child : expr.children()) {
        std::vector<EventInstancePtr> sub =
            EnumerateInstances(*child, history, env, seq);
        out.insert(out.end(), sub.begin(), sub.end());
      }
      break;
    }
    case ExprOp::kAnd: {
      std::vector<EventInstancePtr> lhs =
          EnumerateInstances(*expr.children()[0], history, env, seq);
      std::vector<EventInstancePtr> rhs =
          EnumerateInstances(*expr.children()[1], history, env, seq);
      for (const EventInstancePtr& a : lhs) {
        for (const EventInstancePtr& b : rhs) {
          if (expr.has_within() &&
              events::CombinedInterval(*a, *b) > expr.within()) {
            continue;
          }
          if (!OracleUnifies(a->bindings(), b->bindings())) continue;
          Bindings merged = a->bindings();
          merged.Merge(b->bindings());
          const EventInstancePtr& first = a->t_begin() <= b->t_begin() ? a : b;
          const EventInstancePtr& second = a->t_begin() <= b->t_begin() ? b : a;
          out.push_back(EventInstance::MakeComplex(
              std::min(a->t_begin(), b->t_begin()),
              std::max(a->t_end(), b->t_end()), std::move(merged),
              {first, second}, ++*seq));
        }
      }
      break;
    }
    case ExprOp::kSeq: {
      std::vector<EventInstancePtr> lhs =
          EnumerateInstances(*expr.children()[0], history, env, seq);
      std::vector<EventInstancePtr> rhs =
          EnumerateInstances(*expr.children()[1], history, env, seq);
      for (const EventInstancePtr& a : lhs) {
        for (const EventInstancePtr& b : rhs) {
          if (a->t_end() >= b->t_begin()) continue;
          Duration d = events::Dist(*a, *b);
          if (d < expr.dist_lo() || d > expr.dist_hi()) continue;
          if (expr.has_within() &&
              b->t_end() - a->t_begin() > expr.within()) {
            continue;
          }
          if (!OracleUnifies(a->bindings(), b->bindings())) continue;
          Bindings merged = a->bindings();
          merged.Merge(b->bindings());
          out.push_back(EventInstance::MakeComplex(
              a->t_begin(), b->t_end(), std::move(merged), {a, b}, ++*seq));
        }
      }
      break;
    }
    case ExprOp::kSeqPlus: {
      std::vector<EventInstancePtr> elements =
          EnumerateInstances(*expr.children()[0], history, env, seq);
      std::sort(elements.begin(), elements.end(),
                [](const EventInstancePtr& a, const EventInstancePtr& b) {
                  if (a->t_end() != b->t_end()) return a->t_end() < b->t_end();
                  return a->sequence_number() < b->sequence_number();
                });
      std::vector<EventInstancePtr> run;
      auto close_run = [&]() {
        if (run.empty()) return;
        Bindings merged;
        for (const EventInstancePtr& e : run) {
          Bindings multi = e->bindings().ToMulti();
          merged.Merge(multi);
        }
        out.push_back(EventInstance::MakeComplex(
            run.front()->t_begin(), run.back()->t_end(), std::move(merged),
            run, ++*seq));
        run.clear();
      };
      for (const EventInstancePtr& e : elements) {
        if (!run.empty()) {
          Duration d = e->t_end() - run.back()->t_end();
          bool fits = d >= expr.dist_lo() && d <= expr.dist_hi();
          bool fits_within = !expr.has_within() ||
                             e->t_end() - run.front()->t_begin() <=
                                 expr.within();
          if (!fits || !fits_within) close_run();
        }
        run.push_back(e);
      }
      close_run();
      break;
    }
    case ExprOp::kNot:
      break;  // Unsupported in the oracle.
  }
  std::erase_if(out, [&](const EventInstancePtr& e) {
    return !passes_within(e);
  });
  return out;
}

// Spans as comparable fingerprints (sorted).
struct Span {
  TimePoint t_begin;
  TimePoint t_end;
  friend bool operator==(const Span&, const Span&) = default;
  friend auto operator<=>(const Span&, const Span&) = default;
};

inline std::vector<Span> Spans(const std::vector<EventInstancePtr>& xs) {
  std::vector<Span> out;
  out.reserve(xs.size());
  for (const EventInstancePtr& e : xs) {
    out.push_back(Span{e->t_begin(), e->t_end()});
  }
  std::sort(out.begin(), out.end());
  return out;
}

// Re-checks every temporal constraint and variable join of `expr` against
// a detected instance tree.
inline bool ValidateInstance(const EventExpr& expr,
                             const EventInstance& instance) {
  if (expr.has_within() && instance.interval() > expr.within()) return false;
  switch (expr.op()) {
    case ExprOp::kPrimitive:
      return instance.is_primitive();
    case ExprOp::kOr:
      for (const events::EventExprPtr& child : expr.children()) {
        if (ValidateInstance(*child, instance)) return true;
      }
      return false;
    case ExprOp::kAnd: {
      if (instance.children().size() != 2) return false;
      const EventInstance& a = *instance.children()[0];
      const EventInstance& b = *instance.children()[1];
      if (!OracleUnifies(a.bindings(), b.bindings())) return false;
      return (ValidateInstance(*expr.children()[0], a) &&
              ValidateInstance(*expr.children()[1], b)) ||
             (ValidateInstance(*expr.children()[0], b) &&
              ValidateInstance(*expr.children()[1], a));
    }
    case ExprOp::kSeq: {
      if (instance.children().size() != 2) return false;
      const EventInstance& first = *instance.children()[0];
      const EventInstance& second = *instance.children()[1];
      // A synthetic non-occurrence child (NOT side) has no children and
      // no observation; skip structural checks for it.
      bool first_synth = !first.is_primitive() && first.children().empty();
      bool second_synth = !second.is_primitive() && second.children().empty();
      if (!first_synth && !second_synth) {
        if (first.t_end() >= second.t_begin()) return false;
        Duration d = events::Dist(first, second);
        if (d < expr.dist_lo() || d > expr.dist_hi()) return false;
      }
      bool first_ok = first_synth ||
                      ValidateInstance(*expr.children()[0], first);
      bool second_ok = second_synth ||
                       ValidateInstance(*expr.children()[1], second);
      return first_ok && second_ok;
    }
    case ExprOp::kSeqPlus: {
      if (instance.children().empty()) return false;
      for (size_t i = 0; i < instance.children().size(); ++i) {
        if (!ValidateInstance(*expr.children()[0], *instance.children()[i])) {
          return false;
        }
        if (i > 0) {
          Duration d = events::Dist(*instance.children()[i - 1],
                                    *instance.children()[i]);
          if (d < expr.dist_lo() || d > expr.dist_hi()) return false;
        }
      }
      return true;
    }
    case ExprOp::kNot:
      return true;  // Checked behaviorally elsewhere.
  }
  return false;
}

}  // namespace rfidcep::engine::testing

#endif  // RFIDCEP_TESTS_PROPERTY_REFERENCE_ORACLE_H_
