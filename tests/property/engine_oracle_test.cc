// Property tests: the streaming engine against a brute-force oracle.
//
// For a family of expression templates and many random histories:
//   1. engine(unrestricted) == oracle enumeration, exactly;
//   2. engine(chronicle) ⊆ engine(unrestricted) (span multiset);
//   3. every instance the engine emits (any context) re-validates against
//      the declarative temporal constraints and variable joins.

#include <set>

#include <gtest/gtest.h>

#include "common/prng.h"
#include "rules/parser.h"
#include "tests/engine/test_util.h"
#include "tests/property/reference_oracle.h"

namespace rfidcep::engine {
namespace {

using ::rfidcep::engine::testing::EngineHarness;
using ::rfidcep::engine::testing::EnumerateInstances;
using ::rfidcep::engine::testing::Span;
using ::rfidcep::engine::testing::Spans;
using ::rfidcep::engine::testing::ValidateInstance;
using events::EventInstancePtr;
using events::Observation;

// NOT-free templates covering every constructor, chosen so the engine's
// documented detection regime is complete (TSEQ-over-TSEQ+ uses
// dist_lo >= inner dist_hi; see DESIGN.md §3).
const char* kTemplates[] = {
    // 0: primitive
    "observation(\"A\", o, t)",
    // 1: disjunction
    "observation(\"A\", o, t) OR observation(\"B\", o, t)",
    // 2: bounded conjunction
    "WITHIN(observation(\"A\", o1, t1) AND observation(\"B\", o2, t2), 4sec)",
    // 3: bounded sequence
    "WITHIN(SEQ(observation(\"A\", o1, t1); observation(\"B\", o2, t2)), "
    "6sec)",
    // 4: distance-constrained sequence
    "TSEQ(observation(\"A\", o1, t1); observation(\"B\", o2, t2), 1sec, "
    "5sec)",
    // 5: equality join on (r, o) — the duplicate-filter shape
    "WITHIN(observation(r, o, t1); observation(r, o, t2), 5sec)",
    // 6: aperiodic runs under a distance-constrained sequence
    "TSEQ(TSEQ+(observation(\"A\", o1, t1), 0sec, 1sec); "
    "observation(\"B\", o2, t2), 2sec, 20sec)",
    // 7: self-closing aperiodic runs
    "WITHIN(TSEQ+(observation(\"A\", o1, t1), 0sec, 2sec), 30sec)",
    // 8: disjunction feeding a bounded conjunction
    "WITHIN((observation(\"A\", o1, t1) OR observation(\"B\", o2, t2)) AND "
    "observation(\"C\", o3, t3), 5sec)",
    // 9: left-nested sequences
    "WITHIN(SEQ(SEQ(observation(\"A\", o1, t1); observation(\"B\", o2, "
    "t2)); observation(\"C\", o3, t3)), 12sec)",
};

std::vector<Observation> RandomHistory(uint64_t seed, size_t n) {
  rfidcep::Prng prng(seed);
  std::vector<Observation> out;
  const char* readers[] = {"A", "B", "C"};
  TimePoint t = 0;
  for (size_t i = 0; i < n; ++i) {
    t += prng.UniformInt(0, 3 * kSecond);
    out.push_back(Observation{
        readers[prng.UniformInt(0, 2)],
        "o" + std::to_string(prng.UniformInt(0, 3)), t});
  }
  return out;
}

class OracleSweep
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(OracleSweep, UnrestrictedMatchesOracleExactly) {
  auto [template_index, seed] = GetParam();
  const char* event_text = kTemplates[template_index];
  std::vector<Observation> history = RandomHistory(seed, 60);

  // Oracle.
  Result<events::EventExprPtr> expr = rules::ParseEventExpr(event_text);
  ASSERT_TRUE(expr.ok()) << expr.status();
  events::Environment env;
  uint64_t seq = 0;
  std::vector<EventInstancePtr> expected =
      EnumerateInstances(**expr, history, env, &seq);

  // Engine, unrestricted context.
  EngineOptions options;
  options.detector.context = ParameterContext::kUnrestricted;
  EngineHarness h(options);
  ASSERT_TRUE(h.AddRules(std::string("CREATE RULE p, property ON ") +
                         event_text + " IF true DO act")
                  .ok());
  ASSERT_TRUE(h.engine->Compile().ok());
  for (const Observation& obs : history) {
    ASSERT_TRUE(h.engine->Process(obs).ok());
  }
  ASSERT_TRUE(h.engine->Flush().ok());

  std::vector<EventInstancePtr> actual;
  for (const auto& match : h.matches) actual.push_back(match.instance);
  EXPECT_EQ(Spans(actual), Spans(expected))
      << "template " << template_index << " seed " << seed << "\nevent: "
      << event_text;
}

TEST_P(OracleSweep, ChronicleIsSubsetOfUnrestricted) {
  auto [template_index, seed] = GetParam();
  const char* event_text = kTemplates[template_index];
  std::vector<Observation> history = RandomHistory(seed, 60);

  auto run = [&](ParameterContext context) {
    EngineOptions options;
    options.detector.context = context;
    EngineHarness h(options);
    EXPECT_TRUE(h.AddRules(std::string("CREATE RULE p, property ON ") +
                           event_text + " IF true DO act")
                    .ok());
    EXPECT_TRUE(h.engine->Compile().ok());
    for (const Observation& obs : history) {
      EXPECT_TRUE(h.engine->Process(obs).ok());
    }
    EXPECT_TRUE(h.engine->Flush().ok());
    std::vector<EventInstancePtr> out;
    for (const auto& match : h.matches) out.push_back(match.instance);
    return out;
  };

  std::vector<Span> chronicle = Spans(run(ParameterContext::kChronicle));
  std::vector<Span> unrestricted =
      Spans(run(ParameterContext::kUnrestricted));
  // Multiset inclusion.
  EXPECT_TRUE(std::includes(unrestricted.begin(), unrestricted.end(),
                            chronicle.begin(), chronicle.end()))
      << "template " << template_index << " seed " << seed;
}

TEST_P(OracleSweep, EveryEmittedInstanceRevalidates) {
  auto [template_index, seed] = GetParam();
  const char* event_text = kTemplates[template_index];
  std::vector<Observation> history = RandomHistory(seed, 60);
  Result<events::EventExprPtr> expr = rules::ParseEventExpr(event_text);
  ASSERT_TRUE(expr.ok());

  for (ParameterContext context :
       {ParameterContext::kChronicle, ParameterContext::kRecent,
        ParameterContext::kContinuous, ParameterContext::kUnrestricted}) {
    EngineOptions options;
    options.detector.context = context;
    EngineHarness h(options);
    ASSERT_TRUE(h.AddRules(std::string("CREATE RULE p, property ON ") +
                           event_text + " IF true DO act")
                    .ok());
  ASSERT_TRUE(h.engine->Compile().ok());
    for (const Observation& obs : history) {
      ASSERT_TRUE(h.engine->Process(obs).ok());
    }
    ASSERT_TRUE(h.engine->Flush().ok());
    for (const auto& match : h.matches) {
      EXPECT_TRUE(ValidateInstance(**expr, *match.instance))
          << "template " << template_index << " seed " << seed << " context "
          << ParameterContextName(context) << " instance "
          << match.instance->ToString();
    }
  }
}

TEST_P(OracleSweep, ChronicleNeverSharesConstituents) {
  // Chronicle consumes: no two matches of a binary rule may share a
  // constituent instance.
  auto [template_index, seed] = GetParam();
  const char* event_text = kTemplates[template_index];
  if (template_index == 0 || template_index == 1) return;  // Not binary.
  std::vector<Observation> history = RandomHistory(seed, 60);

  EngineHarness h;
  ASSERT_TRUE(h.AddRules(std::string("CREATE RULE p, property ON ") +
                         event_text + " IF true DO act")
                  .ok());
  ASSERT_TRUE(h.engine->Compile().ok());
  for (const Observation& obs : history) {
    ASSERT_TRUE(h.engine->Process(obs).ok());
  }
  ASSERT_TRUE(h.engine->Flush().ok());

  std::set<uint64_t> seen;
  for (const auto& match : h.matches) {
    for (const EventInstancePtr& child : match.instance->children()) {
      if (child->children().empty() && !child->is_primitive()) continue;
      auto [it, inserted] = seen.insert(child->sequence_number());
      EXPECT_TRUE(inserted)
          << "constituent reused across chronicle matches (template "
          << template_index << " seed " << seed << ")";
    }
  }
}

TEST(OracleEnvironment, GroupAndTypeConstrainedTemplatesMatchOracle) {
  // Group/type constraints resolved through catalogs, engine vs oracle
  // under a shared Environment.
  epc::ReaderRegistry readers;
  readers.RegisterReader("A", "g_in", "in");
  readers.RegisterReader("B", "g_in", "in");
  readers.RegisterReader("C", "g_out", "out");
  epc::ProductCatalog catalog;
  catalog.RegisterExact("o0", "case");
  catalog.RegisterExact("o1", "case");
  catalog.RegisterExact("o2", "item");
  events::Environment env{&catalog, &readers};

  const char* templates[] = {
      "observation(r, o, t), group(r) = \"g_in\", type(o) = \"case\"",
      "WITHIN(observation(r, o, t1), group(r) = \"g_in\"; "
      "observation(r2, o, t2), group(r2) = \"g_out\", 8sec)",
  };
  for (const char* event_text : templates) {
    for (uint64_t seed : {3u, 11u, 29u}) {
      std::vector<Observation> history = RandomHistory(seed, 60);
      Result<events::EventExprPtr> expr = rules::ParseEventExpr(event_text);
      ASSERT_TRUE(expr.ok()) << expr.status();
      uint64_t seq = 0;
      std::vector<EventInstancePtr> expected =
          EnumerateInstances(**expr, history, env, &seq);

      EngineOptions options;
      options.detector.context = ParameterContext::kUnrestricted;
      store::Database db;
      ASSERT_TRUE(db.InstallRfidSchema().ok());
      RcedaEngine engine(&db, env, options);
      std::vector<EventInstancePtr> actual;
      engine.SetMatchCallback(
          [&actual](const rules::Rule&, const events::EventInstancePtr& e) {
            actual.push_back(e);
          });
      ASSERT_TRUE(engine
                      .AddRulesFromText(
                          std::string("CREATE RULE p, env property ON ") +
                          event_text + " IF true DO act")
                      .ok());
      ASSERT_TRUE(engine.Compile().ok());
      for (const Observation& obs : history) {
        ASSERT_TRUE(engine.Process(obs).ok());
      }
      ASSERT_TRUE(engine.Flush().ok());
      EXPECT_EQ(Spans(actual), Spans(expected))
          << event_text << " seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTemplatesManySeeds, OracleSweep,
    ::testing::Combine(::testing::Range(0, 10),
                       ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u)),
    [](const ::testing::TestParamInfo<std::tuple<int, uint64_t>>& info) {
      return "T" + std::to_string(std::get<0>(info.param)) + "Seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace rfidcep::engine
