// Differential semantics fuzzing: four executions of every random case
// must agree (ISSUE 4's oracle protocol):
//
//   1. reference interpreter (src/engine/reference/) vs serial Detector —
//      per-rule span multisets;
//   2. serial vs ShardedDetector at shards 2 and 4 — per-rule span lists
//      in exact firing order (the sharded pipeline's determinism
//      guarantee is per rule, not across rules);
//   3. single-shot Process loop vs batch-split ProcessAll;
//   4. end-of-stream Flush vs incremental AdvanceTo interleaved between
//      observations (pseudo events fire early instead of at Flush);
//   5. rule-set compiler axis — the fully compiled serial baseline
//      (indexed dispatch + predicate pushdown + SEQ+ prefix sharing) vs
//      each stage disabled, serially and on a forced-data-partition
//      pipeline; the crash-recovery sweep additionally restores
//      prefix-shared snapshots into unshared compiles and vice versa;
//   6. durable (WAL) crash axis — rules carry real SQL actions against
//      the RFID store, the run is killed at a salt-chosen BYTE offset in
//      the write-ahead log (mid-record torn tails included), and
//      WAL replay + snapshot restore must reproduce the uninterrupted
//      run's match stream AND byte-identical final tables (exactly-once
//      effects), across sync/async dispatch and shard layouts;
//   7. metamorphic rewrite axis (ISSUE 9) — each case's compiled rule
//      expressions get a random chain of provably equivalent rewrites
//      (engine/rewrite.h: operand permutation, OR rotation, ⊥-branch
//      introduction, SEQ⇄TSEQ, bound slack, WITHIN push); original and
//      rewritten programs must agree through the reference interpreter,
//      serial/sharded/data-partitioned engines, and every compile mode —
//      ordered when the chain preserves order, as multisets otherwise.
//
// Cases are seeded: random rule sets (OR/AND/NOT/SEQ/TSEQ/SEQ+/TSEQ+/
// WITHIN nested up to depth 4) over random observation streams with
// duplicates, timestamp ties, and boundary-landing gaps. A failing case
// is greedily shrunk (observations first, then rules) and dumped as a
// replayable .rules + .trace pair for scripts/fuzz_repro.sh.
//
// RFIDCEP_FUZZ_CASES scales the sweep (default runs in a few seconds;
// CI's nightly dispatch sets it high). Minimized regressions live in
// tests/property/corpus/ and are replayed by the Corpus test below.

#include <cstdlib>
#include <filesystem>
#include <functional>
#include <memory>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/prng.h"
#include "engine/engine.h"
#include "engine/reference/reference_interpreter.h"
#include "engine/rewrite.h"
#include "rules/parser.h"
#include "sim/trace.h"
#include "sim/workload.h"
#include "store/csv.h"
#include "store/database.h"
#include "store/wal.h"
#include "tests/property/reference_oracle.h"

namespace rfidcep::engine {
namespace {

using ::rfidcep::engine::testing::Span;
using events::EventInstancePtr;
using events::Observation;

// Spans keyed by rule id. Ordered = emission order; callers sort a copy
// when only the multiset matters.
using SpansByRule = std::map<std::string, std::vector<Span>>;

std::vector<Span> Sorted(std::vector<Span> spans) {
  std::sort(spans.begin(), spans.end());
  return spans;
}

std::string FormatSpans(const std::vector<Span>& spans) {
  std::ostringstream out;
  out << "{";
  for (const Span& s : spans) {
    out << " [" << s.t_begin << "," << s.t_end << "]";
  }
  out << " }";
  return out.str();
}

// --- Case representation -----------------------------------------------------

struct FuzzCase {
  std::vector<std::string> rules;  // Full CREATE RULE statements.
  std::vector<Observation> stream;

  std::string Program() const {
    std::string out;
    for (const std::string& rule : rules) {
      out += rule;
      out += "\n";
    }
    return out;
  }
};

// --- Generators --------------------------------------------------------------

std::string Sec(int64_t s) { return std::to_string(s) + "sec"; }

class ExprGen {
 public:
  explicit ExprGen(Prng* prng) : prng_(*prng) {}

  // One rule event, nested up to `depth` constructor levels below the
  // mandatory root WITHIN (which bounds every expiry window, keeping the
  // rule compilable).
  std::string Root(int depth) {
    return "WITHIN(" + Expr(depth, /*safe=*/true) + ", " +
           Sec(prng_.UniformInt(6, 16)) + ")";
  }

  // Variables every firing of the rule is guaranteed to bind to a single
  // scalar: collected only from leaves outside OR branches, negations,
  // and SEQ+ bodies (whose repeats bind multis). SQL actions draw their
  // parameters from these so generated statements never hit the
  // unbound-parameter error path.
  const std::vector<std::string>& scalar_objects() const {
    return scalar_objects_;
  }
  const std::vector<std::string>& scalar_times() const {
    return scalar_times_;
  }

 private:
  std::string Fresh(const char* base) {
    return std::string(base) + std::to_string(++var_counter_);
  }

  std::string Primitive(bool safe) {
    // Shared variables ("r", "o") across leaves create equality joins;
    // literals anchor the leaf to one reader.
    std::string reader;
    switch (prng_.UniformInt(0, 3)) {
      case 0: reader = "\"A\""; break;
      case 1: reader = "\"B\""; break;
      case 2: reader = "\"C\""; break;
      default: reader = "r"; break;
    }
    std::string object = prng_.Chance(0.4) ? "o" : Fresh("o");
    std::string time = Fresh("t");
    if (safe) {
      scalar_objects_.push_back(object);
      scalar_times_.push_back(time);
    }
    return "observation(" + reader + ", " + object + ", " + time + ")";
  }

  std::string Expr(int depth, bool safe) {
    if (depth <= 0 || prng_.Chance(0.25)) return Primitive(safe);
    switch (prng_.UniformInt(0, 7)) {
      case 0:
        // A firing binds only the matched branch's variables.
        return "(" + Expr(depth - 1, false) + " OR " + Expr(depth - 1, false) +
               ")";
      case 1:
        return "(" + Expr(depth - 1, safe) + " AND " + Expr(depth - 1, safe) +
               ")";
      case 2:
        return "SEQ(" + Expr(depth - 1, safe) + "; " + Expr(depth - 1, safe) +
               ")";
      case 3: {
        int64_t lo = prng_.UniformInt(0, 2);
        int64_t hi = lo + prng_.UniformInt(0, 4);
        return "TSEQ(" + Expr(depth - 1, safe) + "; " + Expr(depth - 1, safe) +
               ", " + Sec(lo) + ", " + Sec(hi) + ")";
      }
      case 4:
        return "WITHIN(" + Expr(depth - 1, safe) + ", " +
               Sec(prng_.UniformInt(2, 10)) + ")";
      case 5:
        // Negation as a conjunction sibling (Fig. 8's shoplifting shape).
        return "(" + Expr(depth - 1, safe) + " AND NOT " + Primitive(false) +
               ")";
      case 6: {
        // Negation inside a sequence, either side.
        int64_t lo = prng_.UniformInt(0, 1);
        int64_t hi = lo + prng_.UniformInt(1, 4);
        if (prng_.Chance(0.5)) {
          return "TSEQ(NOT " + Primitive(false) + "; " +
                 Expr(depth - 1, safe) + ", " + Sec(lo) + ", " + Sec(hi) + ")";
        }
        return "TSEQ(" + Expr(depth - 1, safe) + "; NOT " + Primitive(false) +
               ", " + Sec(lo) + ", " + Sec(hi) + ")";
      }
      default: {
        // Bounded aperiodic runs: standalone (root WITHIN bounds the
        // expiry) or as a TSEQ initiator under the documented regime
        // (outer dist_lo >= inner dist_hi; see DESIGN.md §3).
        int64_t lo = prng_.UniformInt(0, 1);
        int64_t hi = lo + prng_.UniformInt(1, 3);
        std::string plus = "TSEQ+(" + Primitive(false) + ", " + Sec(lo) +
                           ", " + Sec(hi) + ")";
        if (prng_.Chance(0.5)) return plus;
        int64_t outer_lo = hi + prng_.UniformInt(0, 2);
        int64_t outer_hi = outer_lo + prng_.UniformInt(1, 4);
        return "TSEQ(" + plus + "; " + Primitive(safe) + ", " +
               Sec(outer_lo) + ", " + Sec(outer_hi) + ")";
      }
    }
  }

  Prng& prng_;
  int var_counter_ = 0;
  std::vector<std::string> scalar_objects_;
  std::vector<std::string> scalar_times_;
};

// A DO clause over parameters the match always binds (the durable crash
// axis): the paper's location-maintenance UPDATE+INSERT pair, plain
// INSERTs into the RFID tables, and an SQL+procedure mix. Every
// statement stays executable, so a store divergence means lost or
// doubled effects, not error-path noise. The UPDATE's WHERE is scoped to
// the rule's own loc_id: cross-rule firing order is only per-rule
// deterministic across shard layouts, so rules must not rewrite each
// other's rows or the final multiset itself would be layout-dependent.
std::string GenActions(Prng* prng, const ExprGen& gen, int rule_index) {
  const std::vector<std::string>& objects = gen.scalar_objects();
  const std::vector<std::string>& times = gen.scalar_times();
  if (objects.empty() || times.empty()) {
    return "INSERT INTO OBSERVATION VALUES (\"wal\", \"probe\", 1)";
  }
  auto pick = [prng](const std::vector<std::string>& v) {
    return v[static_cast<size_t>(
        prng->UniformInt(0, static_cast<int64_t>(v.size()) - 1))];
  };
  const std::string o = pick(objects);
  const std::string t = pick(times);
  const std::string loc = "\"L" + std::to_string(rule_index) + "\"";
  switch (prng->UniformInt(0, 3)) {
    case 0:
      return "UPDATE OBJECTLOCATION SET tend = " + t +
             " WHERE object_epc = " + o + " AND loc_id = " + loc +
             " AND tend = \"UC\"; " + "INSERT INTO OBJECTLOCATION VALUES (" +
             o + ", " + loc + ", " + t + ", \"UC\")";
    case 1:
      return "INSERT INTO OBSERVATION VALUES (\"relay\", " + o + ", " + t +
             ")";
    case 2:
      // Half the mixes end in an alarm-named procedure so the durable
      // axis exercises both kProcedure and kAlarm WAL frames.
      return "INSERT INTO OBJECTCONTAINMENT VALUES (" + o + ", " + loc +
             ", " + t + ", \"UC\"); " +
             (prng->UniformInt(0, 1) != 0 ? "raise alarm" : "act");
    default:
      return "INSERT INTO OBSERVATION VALUES (\"wal\", \"probe\", 1)";
  }
}

// One syntactically valid, compilable rule. Random shapes can violate
// graph validation (unbounded expiry through an OR, pull-mode roots); the
// generator retries and finally falls back to a known-good template.
std::string GenRule(Prng* prng, int rule_index, int depth,
                    bool sql_actions = false) {
  for (int attempt = 0; attempt < 8; ++attempt) {
    ExprGen gen(prng);
    std::string root = gen.Root(depth);
    std::string action =
        sql_actions ? GenActions(prng, gen, rule_index) : "act";
    std::string text = "CREATE RULE f" + std::to_string(rule_index) +
                       ", fuzz generated ON " + root + " IF true DO " +
                       action;
    Result<rules::RuleSet> set = rules::ParseRuleProgram(text);
    if (!set.ok()) continue;
    std::vector<const rules::Rule*> refs{&set->rules[0]};
    if (EventGraph::Build(refs).ok()) return text;
  }
  return "CREATE RULE f" + std::to_string(rule_index) +
         ", fuzz fallback ON WITHIN(SEQ(observation(\"A\", o1, t1); "
         "observation(\"B\", o2, t2)), 5sec) IF true DO " +
         (sql_actions
              ? "INSERT INTO OBSERVATION VALUES (\"relay\", o2, t2)"
              : "act");
}

// Sorted stream with heavy timestamp ties and steps that land exactly on
// (and one microsecond off) the whole-second bounds the rules use.
std::vector<Observation> GenStream(Prng* prng, size_t min_n, size_t max_n) {
  static const Duration kSteps[] = {0,           0,       kSecond,
                                    2 * kSecond, 3 * kSecond, 1,
                                    kSecond - 1};
  static const char* kReaders[] = {"A", "B", "C"};
  static const char* kObjects[] = {"x", "y", "z"};
  size_t n = static_cast<size_t>(
      prng->UniformInt(static_cast<int64_t>(min_n),
                       static_cast<int64_t>(max_n)));
  std::vector<Observation> out;
  out.reserve(n);
  TimePoint t = 0;
  for (size_t i = 0; i < n; ++i) {
    t += kSteps[prng->UniformInt(0, 6)];
    out.push_back(Observation{kReaders[prng->UniformInt(0, 2)],
                              kObjects[prng->UniformInt(0, 2)], t});
  }
  return out;
}

// Airport-baggage stream (satellite 4) mapped onto the harness
// vocabulary: stage readers A→B→C→A so SEQ rules over A/B/C fire on the
// journeys, and duplicated bag EPCs so concurrent journeys collide on
// the join variables. The fuzzer feeds engines in timestamp order, so
// this uses event_order — the batching shows up as heavy burst ties.
std::vector<Observation> BaggageFuzzStream(uint64_t seed) {
  sim::BaggageConfig config;
  config.stage_readers = {"A", "B", "C", "A"};
  Prng prng(seed * 0x100000001b3ULL);
  sim::BaggageWorkload workload =
      sim::GenerateBaggage(config, {"x", "y", "z", "x", "y", "z"}, &prng);
  return workload.event_order;
}

FuzzCase GenCase(uint64_t seed) {
  Prng prng(seed);
  FuzzCase c;
  int num_rules = static_cast<int>(prng.UniformInt(1, 3));
  for (int i = 0; i < num_rules; ++i) {
    c.rules.push_back(GenRule(&prng, i, /*depth=*/3));
  }
  c.stream = GenStream(&prng, 20, 60);
  return c;
}

// Like GenCase, but every rule carries real SQL actions against the RFID
// store — the input to the durable (WAL) crash axis.
FuzzCase GenDurableCase(uint64_t seed) {
  Prng prng(seed);
  FuzzCase c;
  int num_rules = static_cast<int>(prng.UniformInt(1, 3));
  for (int i = 0; i < num_rules; ++i) {
    c.rules.push_back(GenRule(&prng, i, /*depth=*/3, /*sql_actions=*/true));
  }
  c.stream = GenStream(&prng, 20, 60);
  return c;
}

// --- Execution protocols -----------------------------------------------------

struct RunSpec {
  int shards = 1;
  bool split_batch = false;  // Two ProcessAll halves instead of Process.
  bool incremental = false;  // AdvanceTo interleaved between observations.
  bool tolerate_out_of_order = false;
  // Force data-partitioned sharding (keyed rules replicated, stream split
  // by hash(EPC/site), cross-object rules on the residual shard). Falls
  // back to rule sharding when no generated rule is key-partitionable —
  // still a valid differential run, just one that exercises less.
  PartitionMode partition = PartitionMode::kRule;
  // Rule-set compiler axis. The serial baseline runs fully compiled
  // (indexed dispatch + predicate pushdown + prefix sharing — the engine
  // defaults); these toggles run the same case with compiler stages
  // disabled, and every configuration must agree.
  bool compile_off = false;   // Legacy scan dispatch, private SEQ+ copies.
  bool no_pushdown = false;   // Indexed dispatch without pushed predicates.
  bool no_share = false;      // Compiled dispatch, private SEQ+ copies.
};

SpansByRule RunEngine(const std::string& program,
                      const std::vector<Observation>& stream, RunSpec spec) {
  EngineOptions options;
  options.detector.context = ParameterContext::kChronicle;
  options.detector.tolerate_out_of_order = spec.tolerate_out_of_order;
  options.shards = spec.shards;
  options.partition = spec.partition;
  if (spec.compile_off) {
    options.detector.compile.indexed_dispatch = false;
    options.detector.compile.predicate_pushdown = false;
    options.detector.compile.share_prefixes = false;
  }
  if (spec.no_pushdown) options.detector.compile.predicate_pushdown = false;
  if (spec.no_share) options.detector.compile.share_prefixes = false;
  RcedaEngine engine(/*db=*/nullptr, events::Environment{}, options);
  SpansByRule out;
  engine.SetMatchCallback(
      [&out](const rules::Rule& rule, const EventInstancePtr& e) {
        out[rule.id].push_back(Span{e->t_begin(), e->t_end()});
      });
  EXPECT_TRUE(engine.AddRulesFromText(program).ok());
  EXPECT_TRUE(engine.Compile().ok());
  // Every rule id present even when it never fires, so comparisons see
  // empty-vs-nonempty instead of missing keys.
  for (size_t i = 0; i < engine.num_rules(); ++i) out[engine.rule(i).id];

  if (spec.split_batch) {
    size_t half = stream.size() / 2;
    std::vector<Observation> a(stream.begin(), stream.begin() + half);
    std::vector<Observation> b(stream.begin() + half, stream.end());
    EXPECT_TRUE(engine.ProcessAll(a).ok());
    EXPECT_TRUE(engine.ProcessAll(b).ok());
  } else if (spec.incremental) {
    TimePoint prev = 0;
    for (const Observation& obs : stream) {
      if (obs.timestamp > prev) {
        // Advance to the midpoint and then to the observation's own
        // instant before processing it — pseudo events fire early, and
        // the boundary pseudo at exactly obs.timestamp must stay pending.
        EXPECT_TRUE(
            engine.AdvanceTo(prev + (obs.timestamp - prev) / 2).ok());
        EXPECT_TRUE(engine.AdvanceTo(obs.timestamp).ok());
      }
      EXPECT_TRUE(engine.Process(obs).ok());
      prev = obs.timestamp;
    }
  } else {
    for (const Observation& obs : stream) {
      EXPECT_TRUE(engine.Process(obs).ok());
    }
  }
  EXPECT_TRUE(engine.Flush().ok());
  return out;
}

SpansByRule RunReference(const rules::RuleSet& set, const EventGraph& graph,
                         const std::vector<Observation>& stream) {
  static const events::Environment env{};
  SpansByRule out;
  for (size_t i = 0; i < set.rules.size(); ++i) {
    reference::ReferenceOptions options;
    options.context = ParameterContext::kChronicle;
    reference::ReferenceInterpreter interp(graph.RuleExpr(i), &env, options);
    std::vector<Span>& spans = out[set.rules[i].id];
    for (const EventInstancePtr& e : interp.Run(stream)) {
      spans.push_back(Span{e->t_begin(), e->t_end()});
    }
  }
  return out;
}

// Runs all execution protocols; returns a description of the first
// divergence, or nullopt when they all agree.
std::optional<std::string> CheckCase(const FuzzCase& c) {
  std::string program = c.Program();
  Result<rules::RuleSet> set = rules::ParseRuleProgram(program);
  if (!set.ok()) return "parse failed: " + set.status().ToString();
  Result<EventGraph> graph = EventGraph::Build(set->rules);
  if (!graph.ok()) return "graph build failed: " + graph.status().ToString();

  SpansByRule reference = RunReference(*set, *graph, c.stream);
  SpansByRule serial = RunEngine(program, c.stream, RunSpec{});

  for (const auto& [rule_id, expected] : reference) {
    std::vector<Span> actual = Sorted(serial[rule_id]);
    if (Sorted(expected) != actual) {
      return "reference vs serial divergence on rule " + rule_id +
             "\n  reference: " + FormatSpans(Sorted(expected)) +
             "\n  serial:    " + FormatSpans(actual);
    }
  }

  const struct {
    const char* name;
    RunSpec spec;
  } kProtocols[] = {
      {"sharded(2)", RunSpec{2, false, false, false}},
      {"sharded(4)", RunSpec{4, false, false, false}},
      {"batch-split ProcessAll", RunSpec{1, true, false, false}},
      {"incremental AdvanceTo", RunSpec{1, false, true, false}},
      {"sharded(2) incremental", RunSpec{2, false, true, false}},
      {"sharded(2) data",
       RunSpec{2, false, false, false, PartitionMode::kData}},
      {"sharded(4) data",
       RunSpec{4, false, false, false, PartitionMode::kData}},
      {"sharded(2) data batch-split",
       RunSpec{2, true, false, false, PartitionMode::kData}},
      {"sharded(2) data incremental",
       RunSpec{2, false, true, false, PartitionMode::kData}},
      // Rule-set compiler axis: the serial baseline above is the fully
      // compiled engine, so comparing these against it IS the
      // optimized-vs-unoptimized differential.
      {"compile off",
       RunSpec{1, false, false, false, PartitionMode::kRule,
               /*compile_off=*/true}},
      {"no predicate pushdown",
       RunSpec{1, false, false, false, PartitionMode::kRule, false,
               /*no_pushdown=*/true}},
      {"no prefix sharing",
       RunSpec{1, false, false, false, PartitionMode::kRule, false, false,
               /*no_share=*/true}},
      {"compile off sharded(2) data",
       RunSpec{2, false, false, false, PartitionMode::kData,
               /*compile_off=*/true}},
      {"no prefix sharing sharded(2) data",
       RunSpec{2, false, false, false, PartitionMode::kData, false, false,
               /*no_share=*/true}},
  };
  for (const auto& protocol : kProtocols) {
    SpansByRule other = RunEngine(program, c.stream, protocol.spec);
    for (const auto& [rule_id, expected] : serial) {
      // Exact emission order per rule: the sharded replay and the pseudo
      // firing path both guarantee it.
      if (other[rule_id] != expected) {
        return std::string("serial vs ") + protocol.name +
               " divergence on rule " + rule_id +
               "\n  serial: " + FormatSpans(expected) + "\n  " +
               protocol.name + ": " + FormatSpans(other[rule_id]);
      }
    }
  }
  return std::nullopt;
}

// --- Crash-recovery protocol (tentpole validation) ---------------------------
//
// Checkpoint at a salt-chosen prefix, restore into serial and sharded
// (2, 4) engines, continue the stream: (prefix matches on the source) +
// (suffix matches on the restored engine) must equal the uninterrupted
// serial run exactly, per rule, in emission order. The serial→serial
// snapshot is additionally required to be byte-idempotent
// (restore + re-serialize reproduces the same bytes).

struct RecoveryEngine {
  std::unique_ptr<RcedaEngine> engine;
  SpansByRule matches;

  static std::unique_ptr<RecoveryEngine> Make(
      const std::string& program, int shards,
      PartitionMode partition = PartitionMode::kRule,
      bool share_prefixes = true) {
    auto r = std::make_unique<RecoveryEngine>();
    EngineOptions options;
    options.detector.context = ParameterContext::kChronicle;
    options.shards = shards;
    options.partition = partition;
    options.detector.compile.share_prefixes = share_prefixes;
    r->engine = std::make_unique<RcedaEngine>(/*db=*/nullptr,
                                              events::Environment{}, options);
    SpansByRule* out = &r->matches;
    r->engine->SetMatchCallback(
        [out](const rules::Rule& rule, const EventInstancePtr& e) {
          (*out)[rule.id].push_back(Span{e->t_begin(), e->t_end()});
        });
    if (!r->engine->AddRulesFromText(program).ok()) return nullptr;
    if (!r->engine->Compile().ok()) return nullptr;
    for (size_t i = 0; i < r->engine->num_rules(); ++i) {
      r->matches[r->engine->rule(i).id];
    }
    return r;
  }
};

std::optional<std::string> CheckRecoveryCase(const FuzzCase& c,
                                             uint64_t salt) {
  std::string program = c.Program();
  Result<rules::RuleSet> set = rules::ParseRuleProgram(program);
  if (!set.ok()) return "parse failed: " + set.status().ToString();
  if (!EventGraph::Build(set->rules).ok()) return std::nullopt;

  SpansByRule reference = RunEngine(program, c.stream, RunSpec{});
  const size_t cut = c.stream.empty() ? 0 : salt % (c.stream.size() + 1);
  const std::vector<Observation> head(c.stream.begin(),
                                      c.stream.begin() +
                                          static_cast<long>(cut));
  const std::vector<Observation> tail(c.stream.begin() +
                                          static_cast<long>(cut),
                                      c.stream.end());

  struct Layout {
    int shards;
    PartitionMode partition;
    bool share = true;  // Prefix-sharing compile (the engine default).
  };
  // Every source layout checkpoints; every target layout must restore it
  // exactly — including rule-sharded snapshots onto data-partitioned
  // layouts and vice versa (a data-partitioned capture merges its keyed
  // replicas into one serial-equivalent source), and prefix-shared
  // snapshots onto unshared compiles and vice versa (the state-key alias
  // pass in engine/snapshot.cc).
  static constexpr Layout kSources[] = {{1, PartitionMode::kRule},
                                        {2, PartitionMode::kRule},
                                        {2, PartitionMode::kData},
                                        {1, PartitionMode::kRule, false}};
  static constexpr Layout kTargets[] = {{1, PartitionMode::kRule},
                                        {2, PartitionMode::kRule},
                                        {4, PartitionMode::kRule},
                                        {2, PartitionMode::kData},
                                        {4, PartitionMode::kData},
                                        {1, PartitionMode::kRule, false}};
  for (const Layout& src : kSources) {
    const int source_shards = src.shards;
    auto source = RecoveryEngine::Make(program, source_shards, src.partition,
                                       src.share);
    if (source == nullptr) return "source engine failed to compile";
    if (!source->engine->ProcessAll(head).ok()) {
      return "source prefix processing failed";
    }
    std::string bytes;
    if (Status s = source->engine->SerializeState(&bytes); !s.ok()) {
      return "checkpoint failed at cut " + std::to_string(cut) + " from " +
             std::to_string(source_shards) + " shards: " + s.ToString();
    }
    if (source_shards == 1) {
      auto twin = RecoveryEngine::Make(program, 1, src.partition, src.share);
      if (twin == nullptr) return "twin engine failed to compile";
      if (Status s = twin->engine->RestoreState(bytes); !s.ok()) {
        return "serial restore failed: " + s.ToString();
      }
      std::string again;
      if (!twin->engine->SerializeState(&again).ok() || again != bytes) {
        return "serial snapshot is not byte-idempotent at cut " +
               std::to_string(cut);
      }
    }
    for (const Layout& tgt : kTargets) {
      const int target_shards = tgt.shards;
      auto target = RecoveryEngine::Make(program, target_shards,
                                         tgt.partition, tgt.share);
      if (target == nullptr) return "target engine failed to compile";
      if (Status s = target->engine->RestoreState(bytes); !s.ok()) {
        return "restore into " + std::to_string(target_shards) +
               " shards failed: " + s.ToString();
      }
      if (!target->engine->ProcessAll(tail).ok() ||
          !target->engine->Flush().ok()) {
        return "restored suffix processing failed";
      }
      for (const auto& [rule_id, expected] : reference) {
        std::vector<Span> combined = source->matches[rule_id];
        const std::vector<Span>& post = target->matches[rule_id];
        combined.insert(combined.end(), post.begin(), post.end());
        if (combined != expected) {
          auto describe = [](const Layout& l) {
            return std::to_string(l.shards) +
                   (l.partition == PartitionMode::kData ? "d" : "r") +
                   (l.share ? "" : " unshared");
          };
          return "crash-recovery divergence on rule " + rule_id + " (cut " +
                 std::to_string(cut) + "/" +
                 std::to_string(c.stream.size()) + ", " + describe(src) +
                 " -> " + describe(tgt) + " shards)" +
                 "\n  uninterrupted: " + FormatSpans(expected) +
                 "\n  recovered:     " + FormatSpans(combined);
        }
      }
    }
  }
  return std::nullopt;
}

// --- Durable crash-recovery protocol (WAL axis) ------------------------------
//
// The exactly-once invariant end to end: a run with SQL actions, a store
// write-ahead log, and a mid-run checkpoint is killed at a salt-chosen
// BYTE offset into the WAL — cuts land mid-record (torn tails) and
// across segment rotations (tiny segments below). Replaying the
// surviving log into a fresh store, restoring the snapshot, and
// reprocessing the suffix must reproduce the uninterrupted run's match
// stream per rule in emission order AND its final tables — byte for byte
// when the recovery keeps the crashed run's shard layout, as row
// multisets per table when it re-partitions (cross-rule row interleaving
// is the one thing sharding does not promise). Dispatch mode (sync or
// async) and shard count are salt-chosen independently on both sides of
// the crash.

// Identity of one procedure/alarm invocation, comparable between a
// rig's handler log and the WAL's surviving kProcedure/kAlarm frames.
std::string ProcKey(const std::string& rule_id, uint64_t seq,
                    const std::string& name) {
  return rule_id + '\x1f' + std::to_string(seq) + '\x1f' + name;
}

struct DurableRig {
  std::unique_ptr<store::Database> db = std::make_unique<store::Database>();
  // Declared before the engine: teardown drains the async action stage,
  // which still invokes the handlers recording into this map.
  std::map<std::string, int> invocations;
  std::unique_ptr<RcedaEngine> engine;
  SpansByRule matches;

  // Compile is left to the caller: a WAL can only attach before it.
  static std::unique_ptr<DurableRig> Make(const std::string& program,
                                          bool async, int shards) {
    auto r = std::make_unique<DurableRig>();
    if (!r->db->InstallRfidSchema().ok()) return nullptr;
    EngineOptions options;
    options.detector.context = ParameterContext::kChronicle;
    options.shards = shards;
    options.async_actions = async;
    r->engine = std::make_unique<RcedaEngine>(r->db.get(),
                                              events::Environment{}, options);
    SpansByRule* out = &r->matches;
    r->engine->SetMatchCallback(
        [out](const rules::Rule& rule, const EventInstancePtr& e) {
          (*out)[rule.id].push_back(Span{e->t_begin(), e->t_end()});
        });
    // The procedures the generator emits, counting every invocation so
    // the durable axis can hold callbacks to exactly-once.
    std::map<std::string, int>* inv = &r->invocations;
    for (const char* name : {"act", "raise alarm"}) {
      r->engine->RegisterProcedure(
          name, [inv, name](const RuleFiring& firing, const std::string&) {
            ++(*inv)[ProcKey(firing.rule->id, firing.seq, name)];
          });
    }
    if (!r->engine->AddRulesFromText(program).ok()) return nullptr;
    return r;
  }
};

std::string DumpStore(store::Database* db) {
  std::string out;
  for (const char* table :
       {"OBSERVATION", "OBJECTLOCATION", "OBJECTCONTAINMENT"}) {
    out += table;
    out += "\n";
    out += store::TableToCsv(*db->GetTable(table));
  }
  return out;
}

// Row-order-insensitive dump: each table's data rows sorted. Row order
// interleaves across rules, and cross-rule order is the one thing the
// sharded pipeline does NOT promise — so a recovery onto a different
// shard layout is held to multiset equality per table, while same-layout
// recovery is held to the byte-identical DumpStore.
std::string DumpStoreSorted(store::Database* db) {
  std::string out;
  for (const char* table :
       {"OBSERVATION", "OBJECTLOCATION", "OBJECTCONTAINMENT"}) {
    std::string csv = store::TableToCsv(*db->GetTable(table));
    std::istringstream in(csv);
    std::string header;
    std::getline(in, header);
    std::vector<std::string> rows;
    for (std::string line; std::getline(in, line);) rows.push_back(line);
    std::sort(rows.begin(), rows.end());
    out += table;
    out += "\n";
    out += header;
    out += "\n";
    for (const std::string& row : rows) {
      out += row;
      out += "\n";
    }
  }
  return out;
}

// Discards every WAL byte past `keep`: segments wholly beyond it are
// deleted and the segment containing it is cut mid-file — exactly what a
// crash during a buffered write leaves behind.
void TruncateWalAt(const std::filesystem::path& dir, uint64_t keep) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  uint64_t seen = 0;
  for (const fs::path& file : files) {
    uint64_t size = fs::file_size(file);
    if (seen >= keep) {
      fs::remove(file);
    } else if (seen + size > keep) {
      fs::resize_file(file, keep - seen);
    }
    seen += size;
  }
}

std::optional<std::string> CheckDurableRecoveryCase(const FuzzCase& c,
                                                    uint64_t salt) {
  namespace fs = std::filesystem;
  std::string program = c.Program();
  Result<rules::RuleSet> set = rules::ParseRuleProgram(program);
  if (!set.ok()) return "parse failed: " + set.status().ToString();
  if (!EventGraph::Build(set->rules).ok()) return std::nullopt;

  const bool crash_async = (salt & 1) != 0;
  const int crash_shards = (salt & 2) != 0 ? 2 : 1;
  const bool recover_async = (salt & 4) != 0;
  const int recover_shards = (salt & 8) != 0 ? 2 : 1;
  const size_t cut = c.stream.empty() ? 0 : (salt >> 4) % (c.stream.size() + 1);

  // Uninterrupted synchronous run on the crash layout: the oracle for
  // the match stream and the final table contents. Dispatch mode never
  // changes effect order (the async stage executes in enqueue order), so
  // a same-layout recovery must match this byte for byte; a recovery
  // onto the other layout is held to per-table multisets instead.
  auto reference =
      DurableRig::Make(program, /*async=*/false, /*shards=*/crash_shards);
  if (reference == nullptr) return "reference rig failed to build";
  if (!reference->engine->Compile().ok()) return "reference compile failed";
  for (const Observation& obs : c.stream) {
    if (!reference->engine->Process(obs).ok()) {
      return "reference processing failed";
    }
  }
  if (!reference->engine->Flush().ok()) return "reference flush failed";

  fs::path wal_dir = fs::path(::testing::TempDir()) / "diff_fuzz_wal";
  fs::remove_all(wal_dir);
  store::WalOptions wal_options;
  wal_options.segment_bytes = 512;  // Tiny segments: cuts cross rotations.

  std::string snapshot_bytes;
  uint64_t checkpoint_bytes = 0;
  uint64_t final_bytes = 0;
  SpansByRule head_matches;
  std::map<std::string, int> crashed_inv;
  {
    Result<std::unique_ptr<store::Wal>> wal =
        store::Wal::Open(wal_dir.string(), wal_options);
    if (!wal.ok()) return "wal open failed: " + wal.status().ToString();
    auto crashed = DurableRig::Make(program, crash_async, crash_shards);
    if (crashed == nullptr) return "crash rig failed to build";
    if (!crashed->engine->AttachWal(wal->get()).ok() ||
        !crashed->engine->Compile().ok()) {
      return "crash rig compile failed";
    }
    for (size_t i = 0; i < cut; ++i) {
      if (!crashed->engine->Process(c.stream[i]).ok()) {
        return "crash-run prefix processing failed";
      }
    }
    if (Status s = crashed->engine->SerializeState(&snapshot_bytes); !s.ok()) {
      return "checkpoint failed: " + s.ToString();
    }
    head_matches = crashed->matches;
    checkpoint_bytes = (*wal)->total_bytes();  // Synced by SerializeState.
    // The doomed tail: processed and logged, then thrown away past the
    // salt-chosen crash point below.
    const size_t doomed = cut + (salt >> 9) % (c.stream.size() - cut + 1);
    for (size_t i = cut; i < doomed; ++i) {
      if (!crashed->engine->Process(c.stream[i]).ok()) {
        return "crash-run tail processing failed";
      }
    }
    crashed->engine.reset();  // Teardown drains the async stage into the WAL.
    crashed_inv = std::move(crashed->invocations);
    crashed.reset();
    final_bytes = (*wal)->total_bytes();
  }  // The WAL destructor flushes: the files hold every logged record.
  TruncateWalAt(wal_dir,
                checkpoint_bytes +
                    (final_bytes > checkpoint_bytes
                         ? salt % (final_bytes - checkpoint_bytes + 1)
                         : 0));

  Result<std::unique_ptr<store::Wal>> wal =
      store::Wal::Open(wal_dir.string(), wal_options);
  if (!wal.ok()) return "wal reopen failed: " + wal.status().ToString();
  // Procedure/alarm frames that survived the cut: the durable record of
  // which callbacks already ran. Captured now, before the recovered run
  // appends its own frames to the same log.
  std::set<std::string> kept_procs;
  if (Status s = (*wal)->Replay(0, [&](const store::WalRecord& r) {
        if (r.kind != store::WalRecordKind::kSql) {
          kept_procs.insert(ProcKey(r.rule_id, r.action_seq, r.sql));
        }
        return Status::Ok();
      });
      !s.ok()) {
    return "wal procedure scan failed: " + s.ToString();
  }
  auto recovered = DurableRig::Make(program, recover_async, recover_shards);
  if (recovered == nullptr) return "recovery rig failed to build";
  if (Result<uint64_t> cursor =
          store::ReplayWalIntoDatabase(**wal, recovered->db.get());
      !cursor.ok()) {
    return "wal replay failed: " + cursor.status().ToString();
  }
  if (!recovered->engine->AttachWal(wal->get()).ok() ||
      !recovered->engine->Compile().ok()) {
    return "recovery rig compile failed";
  }
  if (Status s = recovered->engine->RestoreState(snapshot_bytes); !s.ok()) {
    return "restore failed: " + s.ToString();
  }
  for (size_t i = cut; i < c.stream.size(); ++i) {
    if (!recovered->engine->Process(c.stream[i]).ok()) {
      return "recovered suffix processing failed";
    }
  }
  if (!recovered->engine->Flush().ok()) return "recovered flush failed";

  auto describe = [&] {
    return " (cut " + std::to_string(cut) + "/" +
           std::to_string(c.stream.size()) + ", " +
           (crash_async ? "async" : "sync") + std::to_string(crash_shards) +
           " -> " + (recover_async ? "async" : "sync") +
           std::to_string(recover_shards) + ")";
  };
  for (const auto& [rule_id, expected] : reference->matches) {
    std::vector<Span> combined = head_matches[rule_id];
    const std::vector<Span>& post = recovered->matches[rule_id];
    combined.insert(combined.end(), post.begin(), post.end());
    if (combined != expected) {
      return "durable-recovery match divergence on rule " + rule_id +
             describe() + "\n  uninterrupted: " + FormatSpans(expected) +
             "\n  recovered:     " + FormatSpans(combined);
    }
  }
  const bool same_layout = recover_shards == crash_shards;
  const std::string expected_store = same_layout
                                         ? DumpStore(reference->db.get())
                                         : DumpStoreSorted(reference->db.get());
  const std::string got = same_layout ? DumpStore(recovered->db.get())
                                      : DumpStoreSorted(recovered->db.get());
  if (got != expected_store) {
    return std::string("durable-recovery store divergence") +
           (same_layout ? "" : " (row-order-insensitive)") + describe() +
           "\n  uninterrupted tables:\n" + expected_store +
           "  recovered tables:\n" + got;
  }

  // Procedure/alarm exactly-once. The logical counter must land exactly
  // on the uninterrupted run's; the physical invocation log may exceed
  // it only inside the unavoidable at-least-once window — a callback
  // that ran before the crash but whose WAL frame was lost to the cut
  // re-invokes on recovery. Any duplicate whose frame *survived*, any
  // lost invocation, and any invocation the reference never made are
  // all bugs.
  if (recovered->engine->stats().procedures_invoked !=
      reference->engine->stats().procedures_invoked) {
    return "durable-recovery procedure counter divergence" + describe() +
           ": uninterrupted " +
           std::to_string(reference->engine->stats().procedures_invoked) +
           ", recovered " +
           std::to_string(recovered->engine->stats().procedures_invoked);
  }
  std::map<std::string, int> combined_inv = crashed_inv;
  for (const auto& [key, count] : recovered->invocations) {
    combined_inv[key] += count;
  }
  for (const auto& [key, count] : reference->invocations) {
    if (count != 1) {
      return "reference rig invoked a procedure twice: " + key + describe();
    }
    auto it = combined_inv.find(key);
    const int total = it == combined_inv.end() ? 0 : it->second;
    if (total < 1) {
      return "lost procedure invocation " + key + describe();
    }
    if (total > 2) {
      return "procedure invoked " + std::to_string(total) + " times: " + key +
             describe();
    }
    if (total == 2 &&
        (kept_procs.count(key) != 0 || crashed_inv.count(key) == 0)) {
      return "duplicate procedure invocation outside the lost-frame window: " +
             key + describe();
    }
  }
  for (const auto& [key, count] : combined_inv) {
    if (reference->invocations.count(key) == 0) {
      return "phantom procedure invocation " + key + describe();
    }
  }
  fs::remove_all(wal_dir);
  return std::nullopt;
}

// --- Shrinking ---------------------------------------------------------------

using CaseChecker =
    std::function<std::optional<std::string>(const FuzzCase&)>;

// Greedy 1-minimal reduction: drop observations, then whole rules, as
// long as `check` still reports a divergence.
FuzzCase Shrink(FuzzCase c, const CaseChecker& check) {
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t i = 0; i < c.stream.size();) {
      FuzzCase trial = c;
      trial.stream.erase(trial.stream.begin() + static_cast<long>(i));
      if (check(trial).has_value()) {
        c = std::move(trial);
        progress = true;
      } else {
        ++i;
      }
    }
    for (size_t i = 0; c.rules.size() > 1 && i < c.rules.size();) {
      FuzzCase trial = c;
      trial.rules.erase(trial.rules.begin() + static_cast<long>(i));
      if (check(trial).has_value()) {
        c = std::move(trial);
        progress = true;
      } else {
        ++i;
      }
    }
  }
  return c;
}

// --- Metamorphic rewrite axis (ISSUE 9 tentpole) -----------------------------
//
// A case is a seeded rule set plus a chain of provably-equivalent
// rewrites (engine/rewrite.h) applied to the compiled-form rule
// expressions. The original and rewritten programs must produce the
// same per-rule match spans — in emission order when every chain step
// preserves order, as multisets otherwise (AND operand permutation
// makes tie order observable by design). Divergences triage in layers:
// the two reference runs disagreeing is a rewriter soundness bug; the
// rewritten reference vs the rewritten serial engine is an engine bug
// on a shape the generator never emits; and the rewritten program must
// agree with itself across shard layouts, data partitioning, and every
// compile mode, exactly as the base protocol demands.

struct RewriteStep {
  int rule = 0;        // Index into FuzzCase::rules.
  std::string name;    // Identity name from RewriteCatalog().
  int site = 0;        // Preorder site at application time.
  uint64_t salt = 0;   // Resolves parameterized choices.
};

std::string FormatChain(const std::vector<RewriteStep>& chain) {
  std::ostringstream out;
  for (const RewriteStep& s : chain) {
    out << "  rule " << s.rule << ": " << s.name << " @ site " << s.site
        << " salt " << s.salt << "\n";
  }
  return out.str();
}

// Splices a rewritten event expression into a CREATE RULE statement,
// replacing the text between the first " ON " and the trailing " IF "
// (or " DO ") clause. Generated and corpus rules never embed those
// keywords inside the event text itself.
std::optional<std::string> SpliceRuleEvent(const std::string& rule_text,
                                           const std::string& event_text) {
  size_t on = rule_text.find(" ON ");
  if (on == std::string::npos) return std::nullopt;
  size_t tail = rule_text.find(" IF ", on + 4);
  if (tail == std::string::npos) tail = rule_text.find(" DO ", on + 4);
  if (tail == std::string::npos) return std::nullopt;
  return rule_text.substr(0, on + 4) + event_text + rule_text.substr(tail);
}

// Applies `chain` to the compiled-form rule expressions of `c` and
// splices the results back into the rule texts. Returns nullopt when
// the base program does not compile or any step's precondition fails at
// its site (shrinker trials routinely invalidate later steps; such
// trials are simply not divergences).
std::optional<FuzzCase> ApplyChain(const FuzzCase& c,
                                   const std::vector<RewriteStep>& chain) {
  Result<rules::RuleSet> set = rules::ParseRuleProgram(c.Program());
  if (!set.ok()) return std::nullopt;
  Result<EventGraph> graph = EventGraph::Build(set->rules);
  if (!graph.ok()) return std::nullopt;
  std::vector<events::EventExprPtr> exprs;
  std::vector<bool> touched(c.rules.size(), false);
  for (size_t i = 0; i < set->rules.size(); ++i) {
    exprs.push_back(graph->RuleExpr(i));
  }
  for (const RewriteStep& step : chain) {
    if (step.rule < 0 || static_cast<size_t>(step.rule) >= exprs.size()) {
      return std::nullopt;
    }
    events::EventExprPtr next = ApplyRewrite(exprs[step.rule], step.name,
                                             step.site, step.salt);
    if (next == nullptr) return std::nullopt;
    exprs[step.rule] = std::move(next);
    touched[step.rule] = true;
  }
  FuzzCase rewritten = c;
  for (size_t i = 0; i < c.rules.size(); ++i) {
    if (!touched[i]) continue;
    std::optional<std::string> spliced =
        SpliceRuleEvent(c.rules[i], exprs[i]->ToString());
    if (!spliced.has_value()) return std::nullopt;
    rewritten.rules[i] = *spliced;
  }
  return rewritten;
}

// A seed-derived random rewrite chain over the case's compiled rule
// expressions: 1-4 steps, each an active identity at a uniformly chosen
// applicable site, applied cumulatively (later steps see earlier
// rewrites). Empty when the case offers no applicable site at all.
std::vector<RewriteStep> GenChain(Prng* prng, const FuzzCase& c) {
  std::vector<RewriteStep> chain;
  Result<rules::RuleSet> set = rules::ParseRuleProgram(c.Program());
  if (!set.ok()) return chain;
  Result<EventGraph> graph = EventGraph::Build(set->rules);
  if (!graph.ok()) return chain;
  std::vector<events::EventExprPtr> exprs;
  for (size_t i = 0; i < set->rules.size(); ++i) {
    exprs.push_back(graph->RuleExpr(i));
  }
  std::vector<std::string_view> active;
  for (const RewriteIdentity& id : RewriteCatalog()) {
    if (id.active) active.push_back(id.name);
  }
  const int steps = static_cast<int>(prng->UniformInt(1, 4));
  for (int s = 0; s < steps; ++s) {
    for (int attempt = 0; attempt < 12; ++attempt) {
      RewriteStep step;
      step.rule = static_cast<int>(
          prng->UniformInt(0, static_cast<int64_t>(exprs.size()) - 1));
      step.name = std::string(active[static_cast<size_t>(
          prng->UniformInt(0, static_cast<int64_t>(active.size()) - 1))]);
      std::vector<int> sites = ApplicableSites(exprs[step.rule], step.name);
      if (sites.empty()) continue;
      step.site = sites[static_cast<size_t>(
          prng->UniformInt(0, static_cast<int64_t>(sites.size()) - 1))];
      step.salt = static_cast<uint64_t>(prng->UniformInt(0, 1 << 20));
      events::EventExprPtr next =
          ApplyRewrite(exprs[step.rule], step.name, step.site, step.salt);
      if (next == nullptr) continue;  // Sites and apply must agree; belt.
      exprs[step.rule] = std::move(next);
      chain.push_back(std::move(step));
      break;
    }
  }
  return chain;
}

// The metamorphic oracle. Returns the first divergence, nullopt when
// original and rewritten agree everywhere (or the chain is inapplicable
// to this case — see ApplyChain).
std::optional<std::string> CheckMetamorphicCase(
    const FuzzCase& c, const std::vector<RewriteStep>& chain) {
  std::string program = c.Program();
  Result<rules::RuleSet> set = rules::ParseRuleProgram(program);
  if (!set.ok()) return std::nullopt;
  Result<EventGraph> graph = EventGraph::Build(set->rules);
  if (!graph.ok()) return std::nullopt;

  std::optional<FuzzCase> rewritten = ApplyChain(c, chain);
  if (!rewritten.has_value()) return std::nullopt;
  std::string rew_program = rewritten->Program();
  // The rewriter's contract: every variant reparses and recompiles. A
  // failure here is a rewriter bug, not a skip.
  Result<rules::RuleSet> rew_set = rules::ParseRuleProgram(rew_program);
  if (!rew_set.ok()) {
    return "rewritten program does not reparse: " +
           rew_set.status().ToString() + "\n" + rew_program;
  }
  Result<EventGraph> rew_graph = EventGraph::Build(rew_set->rules);
  if (!rew_graph.ok()) {
    return "rewritten program does not compile: " +
           rew_graph.status().ToString() + "\n" + rew_program;
  }

  bool ordered = true;
  for (const RewriteStep& step : chain) {
    const RewriteIdentity* id = FindRewrite(step.name);
    if (id == nullptr || !id->order_preserving) ordered = false;
  }

  // Layer 1: the rewrite must not change the declared semantics. The
  // naive reference interpreter runs both forms; a difference means the
  // identity (or its precondition) is wrong — fix the rewriter, never
  // ship the variant.
  SpansByRule ref_orig = RunReference(*set, *graph, c.stream);
  SpansByRule ref_rew = RunReference(*rew_set, *rew_graph, c.stream);
  for (const auto& [rule_id, expected] : ref_orig) {
    if (Sorted(expected) != Sorted(ref_rew[rule_id])) {
      return "rewriter soundness bug: reference disagrees with itself on "
             "rule " +
             rule_id + "\n  original:  " + FormatSpans(Sorted(expected)) +
             "\n  rewritten: " + FormatSpans(Sorted(ref_rew[rule_id]));
    }
  }

  // Layer 2: the engine must implement the declared semantics on the
  // rewritten shape (shapes the generator alone never produces).
  SpansByRule serial_rew = RunEngine(rew_program, c.stream, RunSpec{});
  for (const auto& [rule_id, expected] : ref_rew) {
    if (Sorted(expected) != Sorted(serial_rew[rule_id])) {
      return "reference vs serial divergence on REWRITTEN form, rule " +
             rule_id + "\n  reference: " + FormatSpans(Sorted(expected)) +
             "\n  serial:    " + FormatSpans(Sorted(serial_rew[rule_id]));
    }
  }

  // Layer 3: the metamorphic identity itself, engine vs engine —
  // emission-ordered when every step preserves order.
  SpansByRule serial_orig = RunEngine(program, c.stream, RunSpec{});
  for (const auto& [rule_id, expected] : serial_orig) {
    const std::vector<Span>& got = serial_rew[rule_id];
    bool agree = ordered ? (got == expected)
                         : (Sorted(got) == Sorted(expected));
    if (!agree) {
      return std::string("metamorphic divergence (") +
             (ordered ? "ordered" : "multiset") + ") on rule " + rule_id +
             "\n  original:  " + FormatSpans(expected) +
             "\n  rewritten: " + FormatSpans(got);
    }
  }

  // Layer 4: the rewritten program through the shard/partition/compile
  // protocols, each held to the serial run in exact emission order.
  const struct {
    const char* name;
    RunSpec spec;
  } kMetaProtocols[] = {
      {"sharded(2)", RunSpec{2, false, false, false}},
      {"sharded(4)", RunSpec{4, false, false, false}},
      {"sharded(2) data",
       RunSpec{2, false, false, false, PartitionMode::kData}},
      {"sharded(4) data",
       RunSpec{4, false, false, false, PartitionMode::kData}},
      {"compile off",
       RunSpec{1, false, false, false, PartitionMode::kRule,
               /*compile_off=*/true}},
      {"no predicate pushdown",
       RunSpec{1, false, false, false, PartitionMode::kRule, false,
               /*no_pushdown=*/true}},
      {"no prefix sharing",
       RunSpec{1, false, false, false, PartitionMode::kRule, false, false,
               /*no_share=*/true}},
  };
  for (const auto& protocol : kMetaProtocols) {
    SpansByRule other = RunEngine(rew_program, c.stream, protocol.spec);
    for (const auto& [rule_id, expected] : serial_rew) {
      if (other[rule_id] != expected) {
        return std::string("rewritten serial vs ") + protocol.name +
               " divergence on rule " + rule_id +
               "\n  serial: " + FormatSpans(expected) + "\n  " +
               protocol.name + ": " + FormatSpans(other[rule_id]);
      }
    }
  }
  return std::nullopt;
}

using MetaChecker = std::function<std::optional<std::string>(
    const FuzzCase&, const std::vector<RewriteStep>&)>;

// Chain-aware greedy reduction: shorten the rewrite chain (suffix
// truncation, then single-step drops), shrink the stream, then drop
// rules the chain does not touch (remapping step rule indexes). A trial
// that invalidates a remaining step's site simply stops reproducing and
// is rejected, so minimization never forces an inapplicable rewrite.
std::pair<FuzzCase, std::vector<RewriteStep>> MetaShrink(
    FuzzCase c, std::vector<RewriteStep> chain, const MetaChecker& check) {
  bool progress = true;
  while (progress) {
    progress = false;
    while (chain.size() > 1) {
      std::vector<RewriteStep> trial(chain.begin(), chain.end() - 1);
      if (!check(c, trial).has_value()) break;
      chain = std::move(trial);
      progress = true;
    }
    for (size_t i = 0; chain.size() > 1 && i < chain.size();) {
      std::vector<RewriteStep> trial = chain;
      trial.erase(trial.begin() + static_cast<long>(i));
      if (check(c, trial).has_value()) {
        chain = std::move(trial);
        progress = true;
      } else {
        ++i;
      }
    }
    for (size_t i = 0; i < c.stream.size();) {
      FuzzCase trial = c;
      trial.stream.erase(trial.stream.begin() + static_cast<long>(i));
      if (check(trial, chain).has_value()) {
        c = std::move(trial);
        progress = true;
      } else {
        ++i;
      }
    }
    for (size_t i = 0; c.rules.size() > 1 && i < c.rules.size();) {
      bool referenced = false;
      for (const RewriteStep& step : chain) {
        if (step.rule == static_cast<int>(i)) referenced = true;
      }
      if (referenced) {
        ++i;
        continue;
      }
      FuzzCase trial = c;
      trial.rules.erase(trial.rules.begin() + static_cast<long>(i));
      std::vector<RewriteStep> remapped = chain;
      for (RewriteStep& step : remapped) {
        if (step.rule > static_cast<int>(i)) --step.rule;
      }
      if (check(trial, remapped).has_value()) {
        c = std::move(trial);
        chain = std::move(remapped);
        progress = true;
      } else {
        ++i;
      }
    }
  }
  return {std::move(c), std::move(chain)};
}

// Dumps a failing case as scripts/fuzz_repro.sh input and returns the
// human-readable report. A non-null `chain` additionally writes the
// .rewrites file so the metamorphic axis replays offline.
std::string ReportDivergence(const FuzzCase& c, const std::string& why,
                             uint64_t seed,
                             const std::vector<RewriteStep>* chain = nullptr) {
  namespace fs = std::filesystem;
  fs::path dir = fs::path(::testing::TempDir());
  fs::path rules_path = dir / ("diff_fuzz_" + std::to_string(seed) + ".rules");
  fs::path trace_path = dir / ("diff_fuzz_" + std::to_string(seed) + ".trace");
  fs::path rewrites_path =
      dir / ("diff_fuzz_" + std::to_string(seed) + ".rewrites");
  {
    std::ofstream out(rules_path);
    out << c.Program();
  }
  EXPECT_TRUE(sim::WriteTraceFile(trace_path.string(), c.stream).ok());
  if (chain != nullptr) {
    std::ofstream out(rewrites_path);
    out << "# rule identity site salt\n";
    for (const RewriteStep& s : *chain) {
      out << s.rule << " " << s.name << " " << s.site << " " << s.salt
          << "\n";
    }
  }
  std::ostringstream report;
  report << why << "\nminimized case (seed " << seed << "):\n" << c.Program();
  if (chain != nullptr) {
    report << "rewrite chain:\n" << FormatChain(*chain);
  }
  report << "stream (" << c.stream.size() << " obs):\n"
         << sim::TraceToCsv(c.stream) << "dumped: " << rules_path.string()
         << " + " << trace_path.string()
         << (chain != nullptr ? " + " + rewrites_path.string() : "")
         << "\nreplay: scripts/fuzz_repro.sh " << rules_path.string() << " "
         << trace_path.string();
  if (chain != nullptr) report << " " << rewrites_path.string();
  return report.str();
}

// --- The sweep ---------------------------------------------------------------

int FuzzCases() {
  if (const char* env = std::getenv("RFIDCEP_FUZZ_CASES")) {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 600;  // ISSUE 4 floor is 500.
}

TEST(DifferentialFuzz, FourExecutionsAgree) {
  const int cases = FuzzCases();
  for (int i = 0; i < cases; ++i) {
    uint64_t seed = 0x5eedULL * 1000003ULL + static_cast<uint64_t>(i);
    FuzzCase c = GenCase(seed);
    std::optional<std::string> why = CheckCase(c);
    if (why.has_value()) {
      FuzzCase minimized = Shrink(c, CheckCase);
      std::optional<std::string> min_why = CheckCase(minimized);
      FAIL() << ReportDivergence(
          minimized, min_why.value_or(*why), seed);
    }
  }
}

TEST(DifferentialFuzz, MetamorphicEquivalence) {
  // ISSUE 9 tentpole sweep: every seeded case gets a random chain of
  // provably equivalent rewrites; the original and rewritten programs
  // must agree through the reference interpreter, the serial engine,
  // rule- and data-sharded layouts, and every compile mode.
  const int cases = FuzzCases();
  int rewritten_cases = 0;
  for (int i = 0; i < cases; ++i) {
    uint64_t seed = 0x3e7aULL * 1000003ULL + static_cast<uint64_t>(i);
    FuzzCase c = GenCase(seed);
    // Every fourth case swaps the synthetic stream for the airport
    // baggage workload: bursty batch-upload ties and colliding bag EPCs
    // stress the rewrites differently than uniform traffic.
    if (i % 4 == 3) c.stream = BaggageFuzzStream(seed);
    Prng chain_prng(seed ^ 0x9e3779b97f4a7c15ULL);
    std::vector<RewriteStep> chain = GenChain(&chain_prng, c);
    if (chain.empty()) continue;
    ++rewritten_cases;
    std::optional<std::string> why = CheckMetamorphicCase(c, chain);
    if (why.has_value()) {
      auto [min_case, min_chain] = MetaShrink(c, chain, CheckMetamorphicCase);
      std::optional<std::string> min_why =
          CheckMetamorphicCase(min_case, min_chain);
      FAIL() << ReportDivergence(min_case, min_why.value_or(*why), seed,
                                 &min_chain);
    }
  }
  // The axis must actually exercise rewrites, not silently skip.
  EXPECT_GT(rewritten_cases, cases / 2);
}

TEST(DifferentialFuzz, CrashRecoveryAgrees) {
  // Tentpole acceptance sweep: every seeded case is checkpointed at a
  // seed-chosen prefix, restored serially and re-partitioned onto 2 and
  // 4 shards, and the stitched runs must reproduce the uninterrupted
  // execution exactly.
  const int cases = FuzzCases();
  for (int i = 0; i < cases; ++i) {
    uint64_t seed = 0xc8a5ULL * 1000003ULL + static_cast<uint64_t>(i);
    FuzzCase c = GenCase(seed);
    const uint64_t salt = seed >> 7;
    auto check = [salt](const FuzzCase& trial) {
      return CheckRecoveryCase(trial, salt);
    };
    std::optional<std::string> why = check(c);
    if (why.has_value()) {
      FuzzCase minimized = Shrink(c, check);
      std::optional<std::string> min_why = check(minimized);
      FAIL() << ReportDivergence(
          minimized, min_why.value_or(*why), seed);
    }
  }
}

TEST(DifferentialFuzz, DurableCrashRecoveryAgrees) {
  // WAL axis of the tentpole: every seeded case carries SQL actions, the
  // run is killed at a salt-chosen byte offset into the write-ahead log
  // (mid-record torn tails included), and WAL replay + snapshot restore
  // must reproduce the uninterrupted run exactly — match stream and
  // byte-identical final store tables.
  const int cases = FuzzCases();
  for (int i = 0; i < cases; ++i) {
    uint64_t seed = 0xda7aULL * 1000003ULL + static_cast<uint64_t>(i);
    FuzzCase c = GenDurableCase(seed);
    const uint64_t salt = seed * 0x9e3779b97f4a7c15ULL;
    auto check = [salt](const FuzzCase& trial) {
      return CheckDurableRecoveryCase(trial, salt);
    };
    std::optional<std::string> why = check(c);
    if (why.has_value()) {
      FuzzCase minimized = Shrink(c, check);
      std::optional<std::string> min_why = check(minimized);
      FAIL() << ReportDivergence(minimized, min_why.value_or(*why), seed);
    }
  }
}

// --- Corpus replay -----------------------------------------------------------
// Minimized regressions from past divergences: <name>.rules + <name>.trace
// pairs, each re-verified through the full four-execution protocol.

TEST(DifferentialFuzz, CorpusReplays) {
  namespace fs = std::filesystem;
  // scripts/fuzz_repro.sh points this at a directory holding one dumped
  // .rules/.trace pair to recheck a divergence outside the checked-in set.
  const char* override_dir = std::getenv("RFIDCEP_CORPUS_DIR");
  fs::path dir(override_dir != nullptr ? override_dir : RFIDCEP_CORPUS_DIR);
  ASSERT_TRUE(fs::is_directory(dir)) << dir.string();
  int replayed = 0;
  std::vector<fs::path> entries;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".rules") entries.push_back(entry.path());
  }
  std::sort(entries.begin(), entries.end());
  for (const fs::path& rules_path : entries) {
    fs::path trace_path = rules_path;
    trace_path.replace_extension(".trace");
    ASSERT_TRUE(fs::exists(trace_path)) << trace_path.string();

    FuzzCase c;
    {
      std::ifstream in(rules_path);
      std::string line;
      while (std::getline(in, line)) {
        if (!line.empty() && line[0] != '#') c.rules.push_back(line);
      }
    }
    Result<std::vector<Observation>> stream =
        sim::ReadTraceFile(trace_path.string());
    ASSERT_TRUE(stream.ok()) << trace_path.string();
    c.stream = *stream;

    std::optional<std::string> why = CheckCase(c);
    EXPECT_FALSE(why.has_value())
        << "corpus regression " << rules_path.filename().string() << ": "
        << why.value_or("");
    // Every corpus case also runs the crash-recovery protocol, cutting
    // at a few different prefixes.
    for (uint64_t salt : {1u, 7u, 13u}) {
      std::optional<std::string> recovery = CheckRecoveryCase(c, salt);
      EXPECT_FALSE(recovery.has_value())
          << "corpus recovery regression "
          << rules_path.filename().string() << ": " << recovery.value_or("");
    }
    // And the durable (WAL) protocol, with crash salts covering both
    // dispatch modes and shard layouts.
    for (uint64_t salt : {0x21u, 0x9eu, 0x137u}) {
      std::optional<std::string> durable = CheckDurableRecoveryCase(c, salt);
      EXPECT_FALSE(durable.has_value())
          << "corpus durable-recovery regression "
          << rules_path.filename().string() << ": " << durable.value_or("");
    }
    // Metamorphic regressions carry a .rewrites file next to the pair;
    // replay the recorded chain through the full metamorphic oracle.
    fs::path rewrites_path = rules_path;
    rewrites_path.replace_extension(".rewrites");
    if (fs::exists(rewrites_path)) {
      std::vector<RewriteStep> chain;
      std::ifstream in(rewrites_path);
      std::string line;
      while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#') continue;
        std::istringstream fields(line);
        RewriteStep step;
        ASSERT_TRUE(static_cast<bool>(fields >> step.rule >> step.name >>
                                      step.site >> step.salt))
            << rewrites_path.string() << ": bad line: " << line;
        chain.push_back(std::move(step));
      }
      ASSERT_FALSE(chain.empty()) << rewrites_path.string();
      // The recorded chain must still apply — a silently skipped chain
      // would hollow out the regression.
      ASSERT_TRUE(ApplyChain(c, chain).has_value())
          << "corpus rewrite chain no longer applies: "
          << rewrites_path.filename().string() << "\n"
          << FormatChain(chain);
      std::optional<std::string> meta = CheckMetamorphicCase(c, chain);
      EXPECT_FALSE(meta.has_value())
          << "corpus metamorphic regression "
          << rules_path.filename().string() << ": " << meta.value_or("");
    }
    ++replayed;
  }
  EXPECT_GT(replayed, 0) << "empty corpus directory: " << dir.string();
}

// --- Out-of-order tolerance properties (satellite 4) -------------------------

const char* kSeqRules = R"(
CREATE RULE seq, permutation ON WITHIN(SEQ(observation("A", o1, t1); observation("B", o2, t2)), 6sec) IF true DO act
CREATE RULE seqjoin, permutation ON WITHIN(SEQ(observation("A", o, t1); observation("B", o, t2)), 6sec) IF true DO act
CREATE RULE seqplus, permutation ON WITHIN(TSEQ+(observation("A", o, t), 0sec, 2sec), 20sec) IF true DO act
)";

TEST(DifferentialFuzz, EqualTimestampPermutationPreservesMatchSet) {
  // Permuting observations WITHIN equal-timestamp groups (the stream
  // stays non-decreasing, so nothing is dropped) must not change any
  // rule's span multiset: spans are functions of timestamps, and
  // chronicle consumption at a tie only reorders which equal-span pair
  // fires.
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    Prng prng(seed * 7919);
    std::vector<Observation> sorted = GenStream(&prng, 30, 50);
    std::vector<Observation> permuted = sorted;
    for (size_t lo = 0; lo < permuted.size();) {
      size_t hi = lo + 1;
      while (hi < permuted.size() &&
             permuted[hi].timestamp == permuted[lo].timestamp) {
        ++hi;
      }
      for (size_t i = hi - 1; i > lo; --i) {
        size_t j = static_cast<size_t>(prng.UniformInt(
            static_cast<int64_t>(lo), static_cast<int64_t>(i)));
        std::swap(permuted[i], permuted[j]);
      }
      lo = hi;
    }

    SpansByRule a = RunEngine(kSeqRules, sorted, RunSpec{});
    SpansByRule b = RunEngine(kSeqRules, permuted, RunSpec{});
    for (const auto& [rule_id, spans] : a) {
      EXPECT_EQ(Sorted(spans), Sorted(b[rule_id]))
          << "rule " << rule_id << " seed " << seed;
    }
  }
}

TEST(DifferentialFuzz, ToleratedShuffleEqualsKeptSubsequence) {
  // With tolerate_out_of_order, a shuffled stream is the kept
  // subsequence (observations at or after the running clock max) — the
  // engine must behave exactly as if only those were fed, in order.
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    Prng prng(seed * 104729);
    std::vector<Observation> sorted = GenStream(&prng, 30, 50);
    std::vector<Observation> shuffled = sorted;
    for (size_t i = shuffled.size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(
          prng.UniformInt(0, static_cast<int64_t>(i)));
      std::swap(shuffled[i], shuffled[j]);
    }
    std::vector<Observation> kept;
    TimePoint clock = 0;
    for (const Observation& obs : shuffled) {
      if (obs.timestamp < clock) continue;
      clock = obs.timestamp;
      kept.push_back(obs);
    }

    RunSpec tolerant;
    tolerant.tolerate_out_of_order = true;
    SpansByRule a = RunEngine(kSeqRules, shuffled, tolerant);
    SpansByRule b = RunEngine(kSeqRules, kept, RunSpec{});
    for (const auto& [rule_id, spans] : a) {
      EXPECT_EQ(spans, b[rule_id]) << "rule " << rule_id << " seed " << seed;
    }
  }
}

TEST(DifferentialFuzz, BaggageArrivalToleratedEqualsKeptSubsequence) {
  // The baggage workload's upload-order arrivals regress in time
  // whenever one portal's batch lands after another portal's later
  // batch. Fed with tolerate_out_of_order, the engine must behave
  // exactly as if only the kept subsequence (reads at or after the
  // running clock max) had arrived, in order — same invariant the
  // synthetic shuffle test pins, now on the realistic arrival process.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    std::vector<Observation> arrivals;
    {
      sim::BaggageConfig config;
      config.stage_readers = {"A", "B", "C", "A"};
      Prng prng(seed * 15485863);
      arrivals = sim::GenerateBaggage(config, {"x", "y", "z", "x", "y", "z"},
                                      &prng)
                     .arrivals;
    }
    std::vector<Observation> kept;
    TimePoint clock = 0;
    for (const Observation& obs : arrivals) {
      if (obs.timestamp < clock) continue;
      clock = obs.timestamp;
      kept.push_back(obs);
    }
    // The batching must actually produce regressions, or this test
    // degenerates into the in-order case.
    ASSERT_LT(kept.size(), arrivals.size()) << "seed " << seed;

    RunSpec tolerant;
    tolerant.tolerate_out_of_order = true;
    SpansByRule a = RunEngine(kSeqRules, arrivals, tolerant);
    SpansByRule b = RunEngine(kSeqRules, kept, RunSpec{});
    for (const auto& [rule_id, spans] : a) {
      EXPECT_EQ(spans, b[rule_id]) << "rule " << rule_id << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace rfidcep::engine
