// Unit obligations for the metamorphic rewrite engine (engine/rewrite.h):
//
//  - every identity that claims an inverse is structurally self-inverse
//    (back_transform(equivalent_transform(e)) == e) at every applicable
//    site of a shape-diverse corpus, across salts;
//  - ApplicableSites and ApplyRewrite agree exactly (apply never succeeds
//    off-site, never fails on-site);
//  - every produced variant serializes to rule text that re-parses and
//    compiles (EventGraph::Build validation passes);
//  - the known-unsound identities (demorgan-split, double-negation,
//    seqplus-unroll) are reject-only: no applicable site anywhere;
//  - the ⊥ leaf introduced by or-bottom-add can never match an
//    observation and binds the same variable terms as its sibling.
//
// Semantic equivalence of the variants is the differential fuzzer's job
// (differential_fuzz_test.cc, MetamorphicEquivalence); this suite pins
// the rewriter's own contract.

#include "engine/rewrite.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/graph.h"
#include "events/event_type.h"
#include "events/expr.h"
#include "rules/parser.h"

namespace rfidcep::engine {
namespace {

using events::EventExprPtr;
using events::ExprOp;

// Shape-diverse event expressions; each is propagated (compiled form)
// before rewriting, matching how the fuzz harness feeds the rewriter.
const char* const kCorpus[] = {
    R"(WITHIN(observation("A", o, t), 5sec))",
    R"(WITHIN((observation("A", o, t1) OR observation("B", o, t2)), 6sec))",
    R"(WITHIN((observation("A", o, t1) OR observation("B", o, t2) OR )"
    R"(observation("C", o, t3)), 8sec))",
    R"(WITHIN((observation("A", o, t1) AND observation("B", o, t2)), 6sec))",
    R"(WITHIN((observation("A", o, t1) AND NOT observation("B", o, t2)), )"
    R"(6sec))",
    R"(WITHIN(SEQ(observation("A", o, t1); observation("B", o, t2)), 6sec))",
    R"(WITHIN(TSEQ(observation("A", o, t1); observation("B", o, t2), 0sec, )"
    R"(10sec), 6sec))",
    R"(WITHIN(TSEQ(observation("A", o, t1); observation("B", o, t2), 0sec, )"
    R"(3sec), 6sec))",
    R"(WITHIN(TSEQ(NOT observation("A", o, t1); observation("B", o, t2), )"
    R"(0sec, 4sec), 6sec))",
    R"(WITHIN(TSEQ(observation("A", o, t1); NOT observation("B", o, t2), )"
    R"(0sec, 4sec), 6sec))",
    R"(WITHIN(SEQ+(observation("A", o, t)), 9sec))",
    R"(WITHIN(TSEQ+(observation("A", o, t), 0sec, 2sec), 20sec))",
    R"(WITHIN(SEQ(TSEQ+(observation("A", o, t), 0sec, 2sec); )"
    R"(observation("B", o2, t2)), 12sec))",
    R"(WITHIN(WITHIN(SEQ(observation("A", o, t1); observation("B", o, t2)), )"
    R"(4sec), 8sec))",
    R"(WITHIN((observation("A", o, t1), type(o) = "case" AND )"
    R"(observation("B", o, t2)), 7sec))",
};

std::vector<EventExprPtr> CompiledCorpus() {
  std::vector<EventExprPtr> out;
  for (const char* text : kCorpus) {
    auto parsed = rules::ParseEventExpr(text);
    EXPECT_TRUE(parsed.ok()) << text << ": " << parsed.status().message();
    if (parsed.ok()) out.push_back(PropagateIntervalConstraints(*parsed));
  }
  return out;
}

std::vector<const RewriteIdentity*> ActiveIdentities() {
  std::vector<const RewriteIdentity*> out;
  for (const RewriteIdentity& id : RewriteCatalog()) {
    if (id.active) out.push_back(&id);
  }
  return out;
}

TEST(RewriteCatalogTest, CatalogShape) {
  size_t active = 0;
  for (const RewriteIdentity& id : RewriteCatalog()) {
    EXPECT_EQ(FindRewrite(id.name), &id);
    EXPECT_FALSE(id.precondition.empty()) << id.name;
    if (id.active) ++active;
    if (!id.inverse.empty()) {
      const RewriteIdentity* inv = FindRewrite(id.inverse);
      ASSERT_NE(inv, nullptr) << id.name << " names unknown inverse";
      EXPECT_TRUE(inv->active) << id.name << " claims an inactive inverse";
    }
  }
  // The acceptance bar: at least 6 distinct active identity families.
  EXPECT_GE(active, 6u);
  EXPECT_EQ(FindRewrite("no-such-identity"), nullptr);
}

TEST(RewriteCatalogTest, OperandReorderingIsMultisetOnly) {
  // AND reordering feeds canonical leaf dispatch, so tie order is
  // observable: the catalog must not claim order preservation.
  ASSERT_NE(FindRewrite("and-perm"), nullptr);
  EXPECT_FALSE(FindRewrite("and-perm")->order_preserving);
  // OR operand position is inert for emission order.
  ASSERT_NE(FindRewrite("or-perm"), nullptr);
  EXPECT_TRUE(FindRewrite("or-perm")->order_preserving);
}

TEST(RewriterTest, SitesAndApplyAgreeEverywhere) {
  for (const EventExprPtr& expr : CompiledCorpus()) {
    const int nodes = CountNodes(expr);
    for (const RewriteIdentity* id : ActiveIdentities()) {
      std::vector<int> sites = ApplicableSites(expr, id->name);
      size_t next = 0;
      for (int site = 0; site <= nodes; ++site) {
        bool applicable = next < sites.size() && sites[next] == site;
        if (applicable) ++next;
        EventExprPtr got = ApplyRewrite(expr, id->name, site, /*salt=*/0);
        EXPECT_EQ(got != nullptr, applicable)
            << id->name << " at site " << site << " of "
            << expr->ToString();
        if (got != nullptr) {
          EXPECT_FALSE(StructurallyEqual(got, expr))
              << id->name << " at site " << site << " was an identity map";
        }
      }
    }
  }
}

TEST(RewriterTest, SelfInverseWhereClaimed) {
  for (const EventExprPtr& expr : CompiledCorpus()) {
    for (const RewriteIdentity* id : ActiveIdentities()) {
      if (id->inverse.empty()) continue;
      for (int site : ApplicableSites(expr, id->name)) {
        for (uint64_t salt : {0u, 1u, 2u, 7u}) {
          EventExprPtr forward = ApplyRewrite(expr, id->name, site, salt);
          ASSERT_NE(forward, nullptr) << id->name << " site " << site;
          EventExprPtr back =
              ApplyRewrite(forward, id->inverse, site, salt);
          ASSERT_NE(back, nullptr)
              << id->inverse << " does not apply at site " << site
              << " of " << forward->ToString();
          EXPECT_TRUE(StructurallyEqual(back, expr))
              << id->name << "/" << id->inverse << " round trip at site "
              << site << ":\n  original:  " << expr->ToString()
              << "\n  rewritten: " << forward->ToString()
              << "\n  restored:  " << back->ToString();
        }
      }
    }
  }
}

TEST(RewriterTest, VariantsReparseAndCompile) {
  for (const EventExprPtr& expr : CompiledCorpus()) {
    for (const RewriteIdentity* id : ActiveIdentities()) {
      for (int site : ApplicableSites(expr, id->name)) {
        for (uint64_t salt : {0u, 1u, 2u}) {
          EventExprPtr variant = ApplyRewrite(expr, id->name, site, salt);
          ASSERT_NE(variant, nullptr);
          std::string text = "CREATE RULE r, rewritten ON " +
                             variant->ToString() + " DO noop";
          auto set = rules::ParseRuleProgram(text);
          ASSERT_TRUE(set.ok())
              << id->name << " variant does not reparse: " << text << "\n"
              << set.status().message();
          auto graph = EventGraph::Build(set->rules);
          EXPECT_TRUE(graph.ok())
              << id->name << " variant does not compile: " << text << "\n"
              << graph.status().message();
        }
      }
    }
  }
}

TEST(RewriterTest, WithinDeletionCompilesToIdenticalGraph) {
  // within-del only removes what compile-time propagation re-imposes:
  // the compiled rule expression must come back structurally identical.
  for (const EventExprPtr& expr : CompiledCorpus()) {
    for (int site : ApplicableSites(expr, "within-del")) {
      EventExprPtr variant = ApplyRewrite(expr, "within-del", site, 0);
      ASSERT_NE(variant, nullptr);
      EXPECT_TRUE(
          StructurallyEqual(PropagateIntervalConstraints(variant), expr))
          << "site " << site << " of " << expr->ToString();
    }
  }
}

TEST(RewriterTest, RejectOnlyIdentitiesHaveNoSites) {
  for (std::string_view name :
       {"demorgan-split", "double-negation", "seqplus-unroll"}) {
    const RewriteIdentity* id = FindRewrite(name);
    ASSERT_NE(id, nullptr) << name;
    EXPECT_FALSE(id->active) << name;
    for (const EventExprPtr& expr : CompiledCorpus()) {
      EXPECT_TRUE(ApplicableSites(expr, name).empty()) << name;
      for (int site = 0; site < CountNodes(expr); ++site) {
        EXPECT_EQ(ApplyRewrite(expr, name, site, 0), nullptr)
            << name << " applied at site " << site;
      }
    }
  }
}

TEST(RewriterTest, KnownUnsoundPreconditionsReject) {
  auto compiled = [](const char* text) {
    auto parsed = rules::ParseEventExpr(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status().message();
    return PropagateIntervalConstraints(*parsed);
  };
  // tseq-to-seq requires the distance bound to dominate the interval
  // constraint; TSEQ[0, 3sec] WITHIN 6sec admits pairs the SEQ form
  // would not, so the site must be rejected.
  EventExprPtr narrow = compiled(
      R"(WITHIN(TSEQ(observation("A", o, t1); observation("B", o, t2), )"
      R"(0sec, 3sec), 6sec))");
  EXPECT_TRUE(ApplicableSites(narrow, "tseq-to-seq").empty());
  EXPECT_TRUE(ApplicableSites(narrow, "tseq-hi-slack").empty());
  // or-bottom-add is rejected at composite sites: OR's exported binding
  // set is the intersection across branches, and a 3-slot observation
  // cannot cover a composite subtree's bindings (site 0 is the AND).
  EventExprPtr conj = compiled(
      R"(WITHIN((observation("A", o, t1) AND observation("B", o, t2)), )"
      R"(6sec))");
  EXPECT_EQ(ApplyRewrite(conj, "or-bottom-add", 0, 0), nullptr);
  // tseq-lo-strict needs a finite distance upper bound (TSEQ with an
  // infinite hi has no rule-language spelling once lo > 0).
  EventExprPtr seq = compiled(
      R"(WITHIN(SEQ(observation("A", o, t1); observation("B", o, t2)), )"
      R"(6sec))");
  EXPECT_TRUE(ApplicableSites(seq, "tseq-lo-strict").empty());
}

TEST(RewriterTest, NeverLeafCannotMatchAndPreservesBindings) {
  auto parsed =
      rules::ParseEventExpr(R"(WITHIN(observation("A", o, t), 5sec))");
  ASSERT_TRUE(parsed.ok());
  EventExprPtr expr = PropagateIntervalConstraints(*parsed);
  for (uint64_t salt : {0u, 1u}) {
    EventExprPtr variant = ApplyRewrite(expr, "or-bottom-add", 0, salt);
    ASSERT_NE(variant, nullptr);
    ASSERT_EQ(variant->op(), ExprOp::kOr);
    ASSERT_EQ(variant->children().size(), 2u);
    EXPECT_TRUE(StructurallyEqual(variant->children()[0], expr));
    const events::PrimitiveEventType& bottom =
        variant->children()[1]->primitive();
    const events::PrimitiveEventType& leaf =
        variant->children()[0]->primitive();
    ASSERT_TRUE(bottom.type_constraint().has_value());
    EXPECT_EQ(*bottom.type_constraint(), kNeverTypeConstraint);
    // Same terms => Bind produces the same symbols, so the OR exports
    // exactly the original leaf's binding set.
    EXPECT_EQ(bottom.reader(), leaf.reader());
    EXPECT_EQ(bottom.object(), leaf.object());
    EXPECT_EQ(bottom.time_var(), leaf.time_var());
    // No catalog maps an EPC to "__never__": the default environment
    // types every object as "".
    events::Environment env;
    EXPECT_FALSE(bottom.Matches(events::Observation{"A", "x", 0}, env));
    EXPECT_FALSE(bottom.Matches(events::Observation{"B", "x", 0}, env));
    // And the deletion direction recovers the original leaf exactly.
    EventExprPtr restored = ApplyRewrite(variant, "or-bottom-del", 0, salt);
    ASSERT_NE(restored, nullptr);
    EXPECT_TRUE(StructurallyEqual(restored, expr));
  }
}

}  // namespace
}  // namespace rfidcep::engine
