// Randomized operation sequences against the data store, checking the
// invariants that matter to rule actions: size accounting, index/scan
// agreement, compaction transparency, and CSV round-trip fidelity.

#include <map>

#include <gtest/gtest.h>

#include "common/prng.h"
#include "store/csv.h"
#include "store/database.h"
#include "store/sql_executor.h"

namespace rfidcep::store {
namespace {

class StoreFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StoreFuzz, RandomOpsKeepIndexAndScanInAgreement) {
  Prng prng(GetParam());
  Database db;
  ASSERT_TRUE(db.InstallRfidSchema().ok());
  Table* table = db.GetTable("OBJECTLOCATION");

  auto random_object = [&] {
    return "obj" + std::to_string(prng.UniformInt(0, 19));
  };

  size_t model_size = 0;
  for (int op = 0; op < 400; ++op) {
    int dice = static_cast<int>(prng.UniformInt(0, 9));
    std::string object = random_object();
    if (dice < 6) {  // Insert.
      ASSERT_TRUE(table
                      ->Insert({Value::String(object), Value::String("loc"),
                                Value::Time(op), Value::Uc()})
                      .ok());
      ++model_size;
    } else if (dice < 8) {  // Update all rows of one object.
      Result<size_t> updated = table->UpdateWhereKeyed(
          0, Value::String(object), nullptr,
          [op](Row* row) { (*row)[3] = Value::Time(op); });
      ASSERT_TRUE(updated.ok());
    } else {  // Delete all rows of one object.
      size_t deleted =
          table->DeleteWhereKeyed(0, Value::String(object), nullptr);
      ASSERT_LE(deleted, model_size);
      model_size -= deleted;
    }
    ASSERT_EQ(table->size(), model_size) << "op " << op;

    // Periodically: index lookups must agree with full scans.
    if (op % 25 == 0) {
      for (int probe = 0; probe < 5; ++probe) {
        Value key = Value::String(random_object());
        std::vector<Row> indexed = table->Lookup(0, key);
        std::vector<Row> scanned = table->SelectWhere(
            [&key](const Row& row) { return row[0].EqualsSql(key); });
        ASSERT_EQ(indexed.size(), scanned.size()) << "op " << op;
      }
    }
  }

  // CSV round-trip preserves the final state exactly.
  std::string csv = TableToCsv(*table);
  Database db2;
  ASSERT_TRUE(db2.InstallRfidSchema().ok());
  Table* table2 = db2.GetTable("OBJECTLOCATION");
  ASSERT_TRUE(LoadTableFromCsv(csv, table2).ok());
  EXPECT_EQ(TableToCsv(*table2), csv);
  EXPECT_EQ(table2->size(), table->size());
}

TEST_P(StoreFuzz, SqlLayerMatchesDirectTableOps) {
  // Drive the same mutations through SQL with parameters and through the
  // table API; final states must agree.
  Prng prng(GetParam() * 31);
  Database via_sql;
  Database direct;
  ASSERT_TRUE(via_sql.InstallRfidSchema().ok());
  ASSERT_TRUE(direct.InstallRfidSchema().ok());
  Table* direct_table = direct.GetTable("OBJECTLOCATION");

  for (int op = 0; op < 200; ++op) {
    std::string object = "o" + std::to_string(prng.UniformInt(0, 9));
    int dice = static_cast<int>(prng.UniformInt(0, 9));
    if (dice < 6) {
      ParamMap params;
      params.emplace("o", ParamValue::Scalar(Value::String(object)));
      params.emplace("t", ParamValue::Scalar(Value::Time(op)));
      ASSERT_TRUE(
          ExecuteSql("INSERT INTO OBJECTLOCATION VALUES (o, 'x', t, \"UC\")",
                     &via_sql, params)
              .ok());
      ASSERT_TRUE(direct_table
                      ->Insert({Value::String(object), Value::String("x"),
                                Value::Time(op), Value::Uc()})
                      .ok());
    } else if (dice < 8) {
      ParamMap params;
      params.emplace("o", ParamValue::Scalar(Value::String(object)));
      params.emplace("t", ParamValue::Scalar(Value::Time(op)));
      ASSERT_TRUE(ExecuteSql("UPDATE OBJECTLOCATION SET tend = t WHERE "
                             "object_epc = o AND tend = \"UC\"",
                             &via_sql, params)
                      .ok());
      Result<size_t> updated = direct_table->UpdateWhereKeyed(
          0, Value::String(object),
          [](const Row& row) { return row[3].is_uc(); },
          [op](Row* row) { (*row)[3] = Value::Time(op); });
      ASSERT_TRUE(updated.ok());
    } else {
      ParamMap params;
      params.emplace("o", ParamValue::Scalar(Value::String(object)));
      ASSERT_TRUE(ExecuteSql(
                      "DELETE FROM OBJECTLOCATION WHERE object_epc = o",
                      &via_sql, params)
                      .ok());
      direct_table->DeleteWhereKeyed(0, Value::String(object), nullptr);
    }
  }
  EXPECT_EQ(TableToCsv(*via_sql.GetTable("OBJECTLOCATION")),
            TableToCsv(*direct_table));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreFuzz,
                         ::testing::Values(1u, 7u, 42u, 99u, 1234u, 5309u));

}  // namespace
}  // namespace rfidcep::store
