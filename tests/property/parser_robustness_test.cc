// Robustness sweeps for the rule-language and SQL parsers: random inputs,
// truncations, and mutations must produce error Statuses, never crashes,
// and valid programs must survive a parse → print → reparse cycle at the
// expression level.

#include <cstring>

#include <gtest/gtest.h>

#include "common/prng.h"
#include "rules/parser.h"
#include "store/sql_parser.h"

namespace rfidcep {
namespace {

constexpr char kValidProgram[] = R"(
DEFINE E1 = observation("g_pack_item_0", o1, t1)
DEFINE E2 = observation("g_pack_case_0", o2, t2)
CREATE RULE r4, containment rule
ON TSEQ(TSEQ+(E1, 0.1sec, 1sec); E2, 10sec, 20sec)
IF true
DO BULK INSERT INTO OBJECTCONTAINMENT VALUES (o1, o2, t2, "UC")
)";

constexpr char kValidSql[] =
    "UPDATE OBJECTLOCATION SET tend = t WHERE object_epc = o AND "
    "tend = \"UC\"";

class TruncationSweep : public ::testing::TestWithParam<int> {};

TEST_P(TruncationSweep, TruncatedRuleProgramNeverCrashes) {
  // Parse every prefix length (sampled); outcome must be a Status, and
  // only the full program parses to the full rule set.
  size_t len = std::strlen(kValidProgram);
  size_t cut = static_cast<size_t>(GetParam()) * len / 40;
  std::string prefix(kValidProgram, cut);
  Result<rules::RuleSet> result = rules::ParseRuleProgram(prefix);
  if (result.ok()) {
    // A prefix may legally parse if it ends exactly after a statement;
    // it can never contain more than one rule.
    EXPECT_LE(result->rules.size(), 1u);
  }
}

TEST_P(TruncationSweep, TruncatedSqlNeverCrashes) {
  size_t len = std::strlen(kValidSql);
  size_t cut = static_cast<size_t>(GetParam()) * len / 40;
  std::string prefix(kValidSql, cut);
  Result<store::SqlStatement> result = store::ParseSql(prefix);
  (void)result;  // Either outcome is fine; no crash or hang.
}

INSTANTIATE_TEST_SUITE_P(Prefixes, TruncationSweep, ::testing::Range(0, 41));

class MutationSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MutationSweep, MutatedRuleProgramsNeverCrash) {
  Prng prng(GetParam());
  std::string text = kValidProgram;
  // Flip a handful of characters to printable noise.
  for (int i = 0; i < 8; ++i) {
    size_t pos = static_cast<size_t>(
        prng.UniformInt(0, static_cast<int64_t>(text.size()) - 1));
    text[pos] = static_cast<char>(prng.UniformInt(32, 126));
  }
  Result<rules::RuleSet> result = rules::ParseRuleProgram(text);
  (void)result;
}

TEST_P(MutationSweep, RandomGarbageIsRejectedCleanly) {
  Prng prng(GetParam() * 7919);
  std::string text;
  for (int i = 0; i < 200; ++i) {
    text += static_cast<char>(prng.UniformInt(32, 126));
  }
  EXPECT_FALSE(rules::ParseRuleProgram(text).ok());
  Result<store::SqlStatement> sql = store::ParseSql(text);
  (void)sql;  // Garbage that happens to start with a keyword may go far.
}

TEST_P(MutationSweep, RandomTokenSoupNeverCrashes) {
  // Well-formed tokens in random order stress the grammar, not the lexer.
  static const char* kTokens[] = {
      "CREATE", "RULE",  "ON",      "IF",   "DO",   "DEFINE", "WITHIN",
      "SEQ",    "TSEQ",  "SEQ",     "NOT",  "AND",  "OR",     "ALL",
      "(",      ")",     ",",       ";",    "=",    "+",
      "observation", "group", "type", "r", "o", "t1", "'r1'", "\"case\"",
      "5sec",   "0.1sec", "send", "alarm", "INSERT", "INTO", "VALUES"};
  Prng prng(GetParam() * 104729);
  std::string text;
  for (int i = 0; i < 60; ++i) {
    text += kTokens[prng.UniformInt(0, std::size(kTokens) - 1)];
    text += ' ';
  }
  Result<rules::RuleSet> result = rules::ParseRuleProgram(text);
  (void)result;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationSweep,
                         ::testing::Range<uint64_t>(1, 33));

TEST(ParserRoundTrip, ExpressionPrintReparse) {
  // ToString() of a parsed event must reparse to the same canonical key.
  const char* expressions[] = {
      "WITHIN(observation(r, o, t1); observation(r, o, t2), 5sec)",
      "TSEQ(TSEQ+(observation(\"r1\", o1, t1), 0.1sec, 1sec); "
      "observation(\"r2\", o2, t2), 10sec, 20sec)",
      "WITHIN(observation(\"r4\", o4, t4), type(o4) = 'laptop' AND "
      "NOT observation(\"r4\", o5, t5), type(o5) = 'superuser', 5sec)",
      "observation(r, o, t), group(r) = 'g1', type(o) = 'case'",
      "ALL(observation(\"a\", o1, t1), observation(\"b\", o2, t2))",
  };
  for (const char* text : expressions) {
    Result<events::EventExprPtr> first = rules::ParseEventExpr(text);
    ASSERT_TRUE(first.ok()) << text << ": " << first.status();
    std::string printed = (*first)->ToString();
    Result<events::EventExprPtr> second = rules::ParseEventExpr(printed);
    ASSERT_TRUE(second.ok()) << printed << ": " << second.status();
    EXPECT_EQ((*first)->CanonicalKey(), (*second)->CanonicalKey())
        << "original: " << text << "\nprinted: " << printed;
  }
}

}  // namespace
}  // namespace rfidcep
