file(REMOVE_RECURSE
  "CMakeFiles/bench_epc.dir/bench_epc.cc.o"
  "CMakeFiles/bench_epc.dir/bench_epc.cc.o.d"
  "bench_epc"
  "bench_epc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_epc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
