# Empty dependencies file for bench_epc.
# This may be replaced when dependencies are built.
