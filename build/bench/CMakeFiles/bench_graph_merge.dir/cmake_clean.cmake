file(REMOVE_RECURSE
  "CMakeFiles/bench_graph_merge.dir/bench_graph_merge.cc.o"
  "CMakeFiles/bench_graph_merge.dir/bench_graph_merge.cc.o.d"
  "bench_graph_merge"
  "bench_graph_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_graph_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
