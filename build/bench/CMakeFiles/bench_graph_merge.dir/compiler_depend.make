# Empty compiler generated dependencies file for bench_graph_merge.
# This may be replaced when dependencies are built.
