file(REMOVE_RECURSE
  "CMakeFiles/bench_actions.dir/bench_actions.cc.o"
  "CMakeFiles/bench_actions.dir/bench_actions.cc.o.d"
  "bench_actions"
  "bench_actions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_actions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
