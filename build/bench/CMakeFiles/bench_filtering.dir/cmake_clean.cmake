file(REMOVE_RECURSE
  "CMakeFiles/bench_filtering.dir/bench_filtering.cc.o"
  "CMakeFiles/bench_filtering.dir/bench_filtering.cc.o.d"
  "bench_filtering"
  "bench_filtering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
