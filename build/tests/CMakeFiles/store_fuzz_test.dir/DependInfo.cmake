
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/property/store_fuzz_test.cc" "tests/CMakeFiles/store_fuzz_test.dir/property/store_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/store_fuzz_test.dir/property/store_fuzz_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/rfidcep_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/rfidcep_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/rfidcep_store.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rfidcep_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/events/CMakeFiles/rfidcep_events.dir/DependInfo.cmake"
  "/root/repo/build/src/epc/CMakeFiles/rfidcep_epc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rfidcep_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
