file(REMOVE_RECURSE
  "CMakeFiles/contexts_test.dir/engine/contexts_test.cc.o"
  "CMakeFiles/contexts_test.dir/engine/contexts_test.cc.o.d"
  "contexts_test"
  "contexts_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contexts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
