# Empty compiler generated dependencies file for contexts_test.
# This may be replaced when dependencies are built.
