# Empty compiler generated dependencies file for engine_oracle_test.
# This may be replaced when dependencies are built.
