file(REMOVE_RECURSE
  "CMakeFiles/engine_oracle_test.dir/property/engine_oracle_test.cc.o"
  "CMakeFiles/engine_oracle_test.dir/property/engine_oracle_test.cc.o.d"
  "engine_oracle_test"
  "engine_oracle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
