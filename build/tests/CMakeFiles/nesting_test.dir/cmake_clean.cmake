file(REMOVE_RECURSE
  "CMakeFiles/nesting_test.dir/engine/nesting_test.cc.o"
  "CMakeFiles/nesting_test.dir/engine/nesting_test.cc.o.d"
  "nesting_test"
  "nesting_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nesting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
