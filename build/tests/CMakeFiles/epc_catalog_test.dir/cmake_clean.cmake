file(REMOVE_RECURSE
  "CMakeFiles/epc_catalog_test.dir/epc/catalog_test.cc.o"
  "CMakeFiles/epc_catalog_test.dir/epc/catalog_test.cc.o.d"
  "epc_catalog_test"
  "epc_catalog_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epc_catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
