# Empty compiler generated dependencies file for epc_catalog_test.
# This may be replaced when dependencies are built.
