file(REMOVE_RECURSE
  "CMakeFiles/event_instance_test.dir/events/event_instance_test.cc.o"
  "CMakeFiles/event_instance_test.dir/events/event_instance_test.cc.o.d"
  "event_instance_test"
  "event_instance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_instance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
