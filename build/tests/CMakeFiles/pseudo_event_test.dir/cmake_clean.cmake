file(REMOVE_RECURSE
  "CMakeFiles/pseudo_event_test.dir/engine/pseudo_event_test.cc.o"
  "CMakeFiles/pseudo_event_test.dir/engine/pseudo_event_test.cc.o.d"
  "pseudo_event_test"
  "pseudo_event_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pseudo_event_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
