# Empty dependencies file for pseudo_event_test.
# This may be replaced when dependencies are built.
