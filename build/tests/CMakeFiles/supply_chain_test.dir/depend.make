# Empty dependencies file for supply_chain_test.
# This may be replaced when dependencies are built.
