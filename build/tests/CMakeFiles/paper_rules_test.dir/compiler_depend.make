# Empty compiler generated dependencies file for paper_rules_test.
# This may be replaced when dependencies are built.
