file(REMOVE_RECURSE
  "CMakeFiles/paper_rules_test.dir/integration/paper_rules_test.cc.o"
  "CMakeFiles/paper_rules_test.dir/integration/paper_rules_test.cc.o.d"
  "paper_rules_test"
  "paper_rules_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
