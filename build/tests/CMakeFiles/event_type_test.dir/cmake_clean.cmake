file(REMOVE_RECURSE
  "CMakeFiles/event_type_test.dir/events/event_type_test.cc.o"
  "CMakeFiles/event_type_test.dir/events/event_type_test.cc.o.d"
  "event_type_test"
  "event_type_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_type_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
