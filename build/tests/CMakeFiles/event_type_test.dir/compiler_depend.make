# Empty compiler generated dependencies file for event_type_test.
# This may be replaced when dependencies are built.
