file(REMOVE_RECURSE
  "CMakeFiles/rfidcep_sim.dir/supply_chain.cc.o"
  "CMakeFiles/rfidcep_sim.dir/supply_chain.cc.o.d"
  "CMakeFiles/rfidcep_sim.dir/trace.cc.o"
  "CMakeFiles/rfidcep_sim.dir/trace.cc.o.d"
  "CMakeFiles/rfidcep_sim.dir/workload.cc.o"
  "CMakeFiles/rfidcep_sim.dir/workload.cc.o.d"
  "librfidcep_sim.a"
  "librfidcep_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfidcep_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
