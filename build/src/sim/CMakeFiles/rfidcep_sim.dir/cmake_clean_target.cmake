file(REMOVE_RECURSE
  "librfidcep_sim.a"
)
