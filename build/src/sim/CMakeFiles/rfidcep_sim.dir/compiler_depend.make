# Empty compiler generated dependencies file for rfidcep_sim.
# This may be replaced when dependencies are built.
