file(REMOVE_RECURSE
  "librfidcep_engine.a"
)
