file(REMOVE_RECURSE
  "CMakeFiles/rfidcep_engine.dir/actions.cc.o"
  "CMakeFiles/rfidcep_engine.dir/actions.cc.o.d"
  "CMakeFiles/rfidcep_engine.dir/baseline/type_level_detector.cc.o"
  "CMakeFiles/rfidcep_engine.dir/baseline/type_level_detector.cc.o.d"
  "CMakeFiles/rfidcep_engine.dir/detector.cc.o"
  "CMakeFiles/rfidcep_engine.dir/detector.cc.o.d"
  "CMakeFiles/rfidcep_engine.dir/engine.cc.o"
  "CMakeFiles/rfidcep_engine.dir/engine.cc.o.d"
  "CMakeFiles/rfidcep_engine.dir/graph.cc.o"
  "CMakeFiles/rfidcep_engine.dir/graph.cc.o.d"
  "librfidcep_engine.a"
  "librfidcep_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfidcep_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
