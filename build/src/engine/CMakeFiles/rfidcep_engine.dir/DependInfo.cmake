
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/actions.cc" "src/engine/CMakeFiles/rfidcep_engine.dir/actions.cc.o" "gcc" "src/engine/CMakeFiles/rfidcep_engine.dir/actions.cc.o.d"
  "/root/repo/src/engine/baseline/type_level_detector.cc" "src/engine/CMakeFiles/rfidcep_engine.dir/baseline/type_level_detector.cc.o" "gcc" "src/engine/CMakeFiles/rfidcep_engine.dir/baseline/type_level_detector.cc.o.d"
  "/root/repo/src/engine/detector.cc" "src/engine/CMakeFiles/rfidcep_engine.dir/detector.cc.o" "gcc" "src/engine/CMakeFiles/rfidcep_engine.dir/detector.cc.o.d"
  "/root/repo/src/engine/engine.cc" "src/engine/CMakeFiles/rfidcep_engine.dir/engine.cc.o" "gcc" "src/engine/CMakeFiles/rfidcep_engine.dir/engine.cc.o.d"
  "/root/repo/src/engine/graph.cc" "src/engine/CMakeFiles/rfidcep_engine.dir/graph.cc.o" "gcc" "src/engine/CMakeFiles/rfidcep_engine.dir/graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rfidcep_common.dir/DependInfo.cmake"
  "/root/repo/build/src/events/CMakeFiles/rfidcep_events.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/rfidcep_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/rfidcep_store.dir/DependInfo.cmake"
  "/root/repo/build/src/epc/CMakeFiles/rfidcep_epc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
