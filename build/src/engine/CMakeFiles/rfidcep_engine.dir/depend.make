# Empty dependencies file for rfidcep_engine.
# This may be replaced when dependencies are built.
