file(REMOVE_RECURSE
  "librfidcep_common.a"
)
