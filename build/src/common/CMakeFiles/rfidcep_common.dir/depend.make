# Empty dependencies file for rfidcep_common.
# This may be replaced when dependencies are built.
