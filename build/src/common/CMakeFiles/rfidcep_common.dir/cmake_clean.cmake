file(REMOVE_RECURSE
  "CMakeFiles/rfidcep_common.dir/duration.cc.o"
  "CMakeFiles/rfidcep_common.dir/duration.cc.o.d"
  "CMakeFiles/rfidcep_common.dir/status.cc.o"
  "CMakeFiles/rfidcep_common.dir/status.cc.o.d"
  "CMakeFiles/rfidcep_common.dir/strings.cc.o"
  "CMakeFiles/rfidcep_common.dir/strings.cc.o.d"
  "CMakeFiles/rfidcep_common.dir/time.cc.o"
  "CMakeFiles/rfidcep_common.dir/time.cc.o.d"
  "librfidcep_common.a"
  "librfidcep_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfidcep_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
