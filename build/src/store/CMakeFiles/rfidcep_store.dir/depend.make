# Empty dependencies file for rfidcep_store.
# This may be replaced when dependencies are built.
