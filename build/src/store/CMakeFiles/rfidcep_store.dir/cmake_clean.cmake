file(REMOVE_RECURSE
  "CMakeFiles/rfidcep_store.dir/csv.cc.o"
  "CMakeFiles/rfidcep_store.dir/csv.cc.o.d"
  "CMakeFiles/rfidcep_store.dir/database.cc.o"
  "CMakeFiles/rfidcep_store.dir/database.cc.o.d"
  "CMakeFiles/rfidcep_store.dir/schema.cc.o"
  "CMakeFiles/rfidcep_store.dir/schema.cc.o.d"
  "CMakeFiles/rfidcep_store.dir/sql_ast.cc.o"
  "CMakeFiles/rfidcep_store.dir/sql_ast.cc.o.d"
  "CMakeFiles/rfidcep_store.dir/sql_executor.cc.o"
  "CMakeFiles/rfidcep_store.dir/sql_executor.cc.o.d"
  "CMakeFiles/rfidcep_store.dir/sql_lexer.cc.o"
  "CMakeFiles/rfidcep_store.dir/sql_lexer.cc.o.d"
  "CMakeFiles/rfidcep_store.dir/sql_parser.cc.o"
  "CMakeFiles/rfidcep_store.dir/sql_parser.cc.o.d"
  "CMakeFiles/rfidcep_store.dir/table.cc.o"
  "CMakeFiles/rfidcep_store.dir/table.cc.o.d"
  "CMakeFiles/rfidcep_store.dir/value.cc.o"
  "CMakeFiles/rfidcep_store.dir/value.cc.o.d"
  "librfidcep_store.a"
  "librfidcep_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfidcep_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
