
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/store/csv.cc" "src/store/CMakeFiles/rfidcep_store.dir/csv.cc.o" "gcc" "src/store/CMakeFiles/rfidcep_store.dir/csv.cc.o.d"
  "/root/repo/src/store/database.cc" "src/store/CMakeFiles/rfidcep_store.dir/database.cc.o" "gcc" "src/store/CMakeFiles/rfidcep_store.dir/database.cc.o.d"
  "/root/repo/src/store/schema.cc" "src/store/CMakeFiles/rfidcep_store.dir/schema.cc.o" "gcc" "src/store/CMakeFiles/rfidcep_store.dir/schema.cc.o.d"
  "/root/repo/src/store/sql_ast.cc" "src/store/CMakeFiles/rfidcep_store.dir/sql_ast.cc.o" "gcc" "src/store/CMakeFiles/rfidcep_store.dir/sql_ast.cc.o.d"
  "/root/repo/src/store/sql_executor.cc" "src/store/CMakeFiles/rfidcep_store.dir/sql_executor.cc.o" "gcc" "src/store/CMakeFiles/rfidcep_store.dir/sql_executor.cc.o.d"
  "/root/repo/src/store/sql_lexer.cc" "src/store/CMakeFiles/rfidcep_store.dir/sql_lexer.cc.o" "gcc" "src/store/CMakeFiles/rfidcep_store.dir/sql_lexer.cc.o.d"
  "/root/repo/src/store/sql_parser.cc" "src/store/CMakeFiles/rfidcep_store.dir/sql_parser.cc.o" "gcc" "src/store/CMakeFiles/rfidcep_store.dir/sql_parser.cc.o.d"
  "/root/repo/src/store/table.cc" "src/store/CMakeFiles/rfidcep_store.dir/table.cc.o" "gcc" "src/store/CMakeFiles/rfidcep_store.dir/table.cc.o.d"
  "/root/repo/src/store/value.cc" "src/store/CMakeFiles/rfidcep_store.dir/value.cc.o" "gcc" "src/store/CMakeFiles/rfidcep_store.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rfidcep_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
