file(REMOVE_RECURSE
  "librfidcep_store.a"
)
