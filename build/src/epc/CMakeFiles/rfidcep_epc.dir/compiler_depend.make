# Empty compiler generated dependencies file for rfidcep_epc.
# This may be replaced when dependencies are built.
