# Empty dependencies file for rfidcep_epc.
# This may be replaced when dependencies are built.
