file(REMOVE_RECURSE
  "CMakeFiles/rfidcep_epc.dir/catalog.cc.o"
  "CMakeFiles/rfidcep_epc.dir/catalog.cc.o.d"
  "CMakeFiles/rfidcep_epc.dir/epc.cc.o"
  "CMakeFiles/rfidcep_epc.dir/epc.cc.o.d"
  "librfidcep_epc.a"
  "librfidcep_epc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfidcep_epc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
