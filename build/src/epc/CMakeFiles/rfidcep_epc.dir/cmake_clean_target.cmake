file(REMOVE_RECURSE
  "librfidcep_epc.a"
)
