file(REMOVE_RECURSE
  "librfidcep_rules.a"
)
