file(REMOVE_RECURSE
  "CMakeFiles/rfidcep_rules.dir/parser.cc.o"
  "CMakeFiles/rfidcep_rules.dir/parser.cc.o.d"
  "librfidcep_rules.a"
  "librfidcep_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfidcep_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
