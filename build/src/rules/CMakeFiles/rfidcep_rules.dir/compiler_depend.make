# Empty compiler generated dependencies file for rfidcep_rules.
# This may be replaced when dependencies are built.
