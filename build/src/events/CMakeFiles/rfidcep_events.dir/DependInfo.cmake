
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/events/binding.cc" "src/events/CMakeFiles/rfidcep_events.dir/binding.cc.o" "gcc" "src/events/CMakeFiles/rfidcep_events.dir/binding.cc.o.d"
  "/root/repo/src/events/event_instance.cc" "src/events/CMakeFiles/rfidcep_events.dir/event_instance.cc.o" "gcc" "src/events/CMakeFiles/rfidcep_events.dir/event_instance.cc.o.d"
  "/root/repo/src/events/event_type.cc" "src/events/CMakeFiles/rfidcep_events.dir/event_type.cc.o" "gcc" "src/events/CMakeFiles/rfidcep_events.dir/event_type.cc.o.d"
  "/root/repo/src/events/expr.cc" "src/events/CMakeFiles/rfidcep_events.dir/expr.cc.o" "gcc" "src/events/CMakeFiles/rfidcep_events.dir/expr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rfidcep_common.dir/DependInfo.cmake"
  "/root/repo/build/src/epc/CMakeFiles/rfidcep_epc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
