# Empty dependencies file for rfidcep_events.
# This may be replaced when dependencies are built.
