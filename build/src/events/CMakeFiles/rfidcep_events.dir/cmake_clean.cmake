file(REMOVE_RECURSE
  "CMakeFiles/rfidcep_events.dir/binding.cc.o"
  "CMakeFiles/rfidcep_events.dir/binding.cc.o.d"
  "CMakeFiles/rfidcep_events.dir/event_instance.cc.o"
  "CMakeFiles/rfidcep_events.dir/event_instance.cc.o.d"
  "CMakeFiles/rfidcep_events.dir/event_type.cc.o"
  "CMakeFiles/rfidcep_events.dir/event_type.cc.o.d"
  "CMakeFiles/rfidcep_events.dir/expr.cc.o"
  "CMakeFiles/rfidcep_events.dir/expr.cc.o.d"
  "librfidcep_events.a"
  "librfidcep_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfidcep_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
