file(REMOVE_RECURSE
  "librfidcep_events.a"
)
