# Empty compiler generated dependencies file for library_checkout.
# This may be replaced when dependencies are built.
