file(REMOVE_RECURSE
  "CMakeFiles/library_checkout.dir/library_checkout.cpp.o"
  "CMakeFiles/library_checkout.dir/library_checkout.cpp.o.d"
  "library_checkout"
  "library_checkout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/library_checkout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
