# Empty compiler generated dependencies file for asset_monitoring.
# This may be replaced when dependencies are built.
