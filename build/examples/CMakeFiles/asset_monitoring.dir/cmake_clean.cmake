file(REMOVE_RECURSE
  "CMakeFiles/asset_monitoring.dir/asset_monitoring.cpp.o"
  "CMakeFiles/asset_monitoring.dir/asset_monitoring.cpp.o.d"
  "asset_monitoring"
  "asset_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asset_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
