file(REMOVE_RECURSE
  "CMakeFiles/supply_chain_tracking.dir/supply_chain_tracking.cpp.o"
  "CMakeFiles/supply_chain_tracking.dir/supply_chain_tracking.cpp.o.d"
  "supply_chain_tracking"
  "supply_chain_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supply_chain_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
