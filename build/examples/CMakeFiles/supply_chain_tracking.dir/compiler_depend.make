# Empty compiler generated dependencies file for supply_chain_tracking.
# This may be replaced when dependencies are built.
