// Umbrella header: everything a typical rfidcep application needs.
//
//   #include "rfidcep.h"
//
//   rfidcep::store::Database db;
//   db.InstallRfidSchema();
//   rfidcep::engine::RcedaEngine engine(&db, rfidcep::events::Environment{});
//   engine.AddRulesFromText("CREATE RULE ... ON ... IF ... DO ...");
//   engine.Process({"reader", "object-epc", timestamp});
//   engine.Flush();
//
// Individual module headers remain the preferred includes for library
// code; this header is a convenience for applications and prototypes.

#ifndef RFIDCEP_RFIDCEP_H_
#define RFIDCEP_RFIDCEP_H_

#include "common/duration.h"
#include "common/prng.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/time.h"
#include "engine/actions.h"
#include "engine/baseline/type_level_detector.h"
#include "engine/context.h"
#include "engine/detector.h"
#include "engine/engine.h"
#include "engine/graph.h"
#include "epc/catalog.h"
#include "epc/epc.h"
#include "events/binding.h"
#include "events/event_instance.h"
#include "events/event_type.h"
#include "events/expr.h"
#include "events/observation.h"
#include "rules/parser.h"
#include "rules/rule.h"
#include "sim/supply_chain.h"
#include "sim/trace.h"
#include "sim/workload.h"
#include "store/database.h"
#include "store/sql_executor.h"
#include "store/sql_parser.h"

#endif  // RFIDCEP_RFIDCEP_H_
