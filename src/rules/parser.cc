#include "rules/parser.h"

#include <map>

#include "common/duration.h"
#include "common/strings.h"
#include "events/symbol.h"
#include "store/sql_lexer.h"
#include "store/sql_parser.h"

namespace rfidcep::rules {

namespace {

using events::EventExpr;
using events::EventExprPtr;
using events::PrimitiveEventType;
using events::Term;
using store::SqlToken;
using store::SqlTokenKind;

// Alias table with case-sensitive names (E1 and e1 are distinct, matching
// the paper's usage).
using AliasMap = std::map<std::string, EventExprPtr>;

class RuleParser {
 public:
  RuleParser(std::string_view text, std::vector<SqlToken> tokens)
      : text_(text), tokens_(std::move(tokens)) {}

  Result<RuleSet> ParseProgram();
  Result<EventExprPtr> ParseSingleEvent(const AliasMap& aliases);

 private:
  const SqlToken& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const SqlToken& Advance() { return tokens_[pos_++]; }
  bool AtEnd() const { return Peek().kind == SqlTokenKind::kEnd; }

  bool Match(std::string_view word) {
    if (Peek().Is(word)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(std::string_view word) {
    if (Match(word)) return Status::Ok();
    return Status::ParseError("expected '" + std::string(word) + "' but got '" +
                              Peek().text + "' at offset " +
                              std::to_string(Peek().offset));
  }

  Result<std::string> ExpectIdentifier(std::string_view what) {
    if (Peek().kind != SqlTokenKind::kIdentifier) {
      return Status::ParseError("expected " + std::string(what) +
                                " but got '" + Peek().text + "' at offset " +
                                std::to_string(Peek().offset));
    }
    return Advance().text;
  }

  Result<Rule> ParseRule(const AliasMap& aliases);
  Result<std::pair<std::string, EventExprPtr>> ParseDefine(
      const AliasMap& aliases);

  // Event grammar.
  Result<EventExprPtr> ParseEvent(const AliasMap& aliases);
  // Event with optional infix ';' sequencing (paper style:
  // "WITHIN(obs(...); obs(...), 5sec)"); only valid inside parentheses
  // and WITHIN, where ';' is unambiguous.
  Result<EventExprPtr> ParseSeqChain(const AliasMap& aliases);
  Result<EventExprPtr> ParseAndEvent(const AliasMap& aliases);
  Result<EventExprPtr> ParseNotEvent(const AliasMap& aliases);
  Result<EventExprPtr> ParsePrimaryEvent(const AliasMap& aliases);
  Result<EventExprPtr> ParseObservation();
  Result<Duration> ParseDurationTokens();
  Result<Term> ParseTerm(std::string_view what);

  // Scans forward from the current position for `word` at parenthesis
  // depth 0; returns its token index or -1.
  int FindAtDepthZero(std::string_view word) const;

  // Raw source text between two byte offsets.
  std::string_view Slice(size_t begin_offset, size_t end_offset) const {
    return text_.substr(begin_offset, end_offset - begin_offset);
  }

  Result<std::vector<RuleAction>> ParseActions(size_t actions_begin_index);

  std::string_view text_;
  std::vector<SqlToken> tokens_;
  size_t pos_ = 0;
};

bool IsEventKeyword(const SqlToken& token) {
  for (std::string_view kw :
       {"OR", "AND", "NOT", "SEQ", "TSEQ", "WITHIN", "OBSERVATION", "GROUP",
        "TYPE", "ALL"}) {
    if (token.Is(kw)) return true;
  }
  return false;
}

Result<RuleSet> RuleParser::ParseProgram() {
  RuleSet out;
  AliasMap aliases;
  while (!AtEnd()) {
    if (Match("DEFINE")) {
      RFIDCEP_ASSIGN_OR_RETURN(auto define, ParseDefine(aliases));
      aliases[define.first] = define.second;
      out.defines.push_back(std::move(define));
      continue;
    }
    if (Match("CREATE")) {
      RFIDCEP_RETURN_IF_ERROR(Expect("RULE"));
      RFIDCEP_ASSIGN_OR_RETURN(Rule rule, ParseRule(aliases));
      out.rules.push_back(std::move(rule));
      continue;
    }
    return Status::ParseError("expected DEFINE or CREATE RULE but got '" +
                              Peek().text + "' at offset " +
                              std::to_string(Peek().offset));
  }
  return out;
}

Result<std::pair<std::string, EventExprPtr>> RuleParser::ParseDefine(
    const AliasMap& aliases) {
  RFIDCEP_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("alias name"));
  RFIDCEP_RETURN_IF_ERROR(Expect("="));
  RFIDCEP_ASSIGN_OR_RETURN(EventExprPtr event, ParseEvent(aliases));
  return std::make_pair(std::move(name), std::move(event));
}

Result<Rule> RuleParser::ParseRule(const AliasMap& aliases) {
  Rule rule;
  RFIDCEP_ASSIGN_OR_RETURN(rule.id, ExpectIdentifier("rule id"));
  if (Match(",")) {
    // Rule name: identifier words up to ON.
    std::vector<std::string> words;
    while (Peek().kind == SqlTokenKind::kIdentifier && !Peek().Is("ON")) {
      words.push_back(Advance().text);
    }
    rule.name = Join(words, " ");
  }
  RFIDCEP_RETURN_IF_ERROR(Expect("ON"));
  RFIDCEP_ASSIGN_OR_RETURN(rule.event, ParseEvent(aliases));

  if (Match("IF")) {
    int do_index = FindAtDepthZero("DO");
    if (do_index < 0) {
      return Status::ParseError("rule '" + rule.id +
                                "': missing DO after IF condition");
    }
    size_t cond_begin = Peek().offset;
    size_t cond_end = tokens_[do_index].offset;
    std::string_view cond_text = StripWhitespace(Slice(cond_begin, cond_end));
    rule.condition_text = std::string(cond_text);
    if (!EqualsIgnoreCase(cond_text, "true")) {
      RFIDCEP_ASSIGN_OR_RETURN(rule.condition,
                               store::ParseSqlExpression(cond_text));
    }
    pos_ = static_cast<size_t>(do_index);
  }
  RFIDCEP_RETURN_IF_ERROR(Expect("DO"));
  RFIDCEP_ASSIGN_OR_RETURN(rule.actions, ParseActions(pos_));
  return rule;
}

int RuleParser::FindAtDepthZero(std::string_view word) const {
  int depth = 0;
  for (size_t i = pos_; i < tokens_.size(); ++i) {
    const SqlToken& token = tokens_[i];
    if (token.kind == SqlTokenKind::kSymbol) {
      if (token.text == "(") ++depth;
      if (token.text == ")") --depth;
    }
    if (depth == 0 && token.Is(word)) return static_cast<int>(i);
  }
  return -1;
}

// Parses the action list starting at token index `actions_begin_index`
// (just after DO). Actions are raw text separated by top-level ';' and
// terminated by the next top-level DEFINE / CREATE RULE / end of input.
Result<std::vector<RuleAction>> RuleParser::ParseActions(
    size_t actions_begin_index) {
  // Find the end of the action list.
  int depth = 0;
  size_t end_index = tokens_.size() - 1;  // kEnd token.
  std::vector<size_t> separators;        // Indices of top-level ';'.
  for (size_t i = actions_begin_index; i + 1 < tokens_.size(); ++i) {
    const SqlToken& token = tokens_[i];
    if (token.kind == SqlTokenKind::kSymbol) {
      if (token.text == "(") ++depth;
      if (token.text == ")") --depth;
      if (depth == 0 && token.text == ";") separators.push_back(i);
    }
    if (depth == 0 && token.Is("DEFINE")) {
      end_index = i;
      break;
    }
    if (depth == 0 && token.Is("CREATE") && tokens_[i + 1].Is("RULE")) {
      end_index = i;
      break;
    }
  }

  // Build [begin, end) offset ranges for each action.
  std::vector<std::pair<size_t, size_t>> ranges;
  size_t begin_offset = tokens_[actions_begin_index].offset;
  for (size_t separator : separators) {
    if (separator >= end_index) break;
    ranges.emplace_back(begin_offset, tokens_[separator].offset);
    begin_offset = tokens_[separator].offset + 1;
  }
  size_t end_offset = end_index + 1 < tokens_.size()
                          ? tokens_[end_index].offset
                          : text_.size();
  if (end_index + 1 == tokens_.size()) end_offset = text_.size();
  ranges.emplace_back(begin_offset, end_offset);

  std::vector<RuleAction> actions;
  for (const auto& [begin, end] : ranges) {
    std::string_view action_text = StripWhitespace(Slice(begin, end));
    if (action_text.empty()) continue;
    RuleAction action;
    if (store::LooksLikeSql(action_text)) {
      action.kind = RuleAction::Kind::kSql;
      action.sql_text = std::string(action_text);
      RFIDCEP_ASSIGN_OR_RETURN(action.sql, store::ParseSql(action_text));
    } else {
      action.kind = RuleAction::Kind::kProcedure;
      size_t paren = action_text.find('(');
      if (paren == std::string_view::npos) {
        action.procedure_name =
            std::string(StripWhitespace(action_text));
      } else {
        action.procedure_name =
            std::string(StripWhitespace(action_text.substr(0, paren)));
        std::string_view args = action_text.substr(paren + 1);
        if (args.empty() || args.back() != ')') {
          return Status::ParseError("unterminated procedure arguments in '" +
                                    std::string(action_text) + "'");
        }
        args.remove_suffix(1);
        action.procedure_args = std::string(StripWhitespace(args));
      }
      if (action.procedure_name.empty()) {
        return Status::ParseError("empty action");
      }
    }
    actions.push_back(std::move(action));
  }
  if (actions.empty()) {
    return Status::ParseError("rule has no actions after DO");
  }
  pos_ = end_index;
  return actions;
}

Result<EventExprPtr> RuleParser::ParseSeqChain(const AliasMap& aliases) {
  RFIDCEP_ASSIGN_OR_RETURN(EventExprPtr lhs, ParseEvent(aliases));
  while (Match(";")) {
    RFIDCEP_ASSIGN_OR_RETURN(EventExprPtr rhs, ParseEvent(aliases));
    lhs = EventExpr::Seq(std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<EventExprPtr> RuleParser::ParseEvent(const AliasMap& aliases) {
  RFIDCEP_ASSIGN_OR_RETURN(EventExprPtr lhs, ParseAndEvent(aliases));
  while (Match("OR")) {
    RFIDCEP_ASSIGN_OR_RETURN(EventExprPtr rhs, ParseAndEvent(aliases));
    lhs = EventExpr::Or(std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<EventExprPtr> RuleParser::ParseAndEvent(const AliasMap& aliases) {
  RFIDCEP_ASSIGN_OR_RETURN(EventExprPtr lhs, ParseNotEvent(aliases));
  while (Match("AND")) {
    RFIDCEP_ASSIGN_OR_RETURN(EventExprPtr rhs, ParseNotEvent(aliases));
    lhs = EventExpr::And(std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<EventExprPtr> RuleParser::ParseNotEvent(const AliasMap& aliases) {
  if (Match("NOT")) {
    RFIDCEP_ASSIGN_OR_RETURN(EventExprPtr inner, ParseNotEvent(aliases));
    return EventExpr::Not(std::move(inner));
  }
  return ParsePrimaryEvent(aliases);
}

Result<EventExprPtr> RuleParser::ParsePrimaryEvent(const AliasMap& aliases) {
  if (Match("(")) {
    RFIDCEP_ASSIGN_OR_RETURN(EventExprPtr inner, ParseSeqChain(aliases));
    RFIDCEP_RETURN_IF_ERROR(Expect(")"));
    return inner;
  }
  if (Match("SEQ")) {
    bool aperiodic = Match("+");
    RFIDCEP_RETURN_IF_ERROR(Expect("("));
    RFIDCEP_ASSIGN_OR_RETURN(EventExprPtr first, ParseEvent(aliases));
    if (aperiodic) {
      RFIDCEP_RETURN_IF_ERROR(Expect(")"));
      return EventExpr::SeqPlus(std::move(first));
    }
    RFIDCEP_RETURN_IF_ERROR(Expect(";"));
    RFIDCEP_ASSIGN_OR_RETURN(EventExprPtr second, ParseEvent(aliases));
    RFIDCEP_RETURN_IF_ERROR(Expect(")"));
    return EventExpr::Seq(std::move(first), std::move(second));
  }
  if (Match("TSEQ")) {
    bool aperiodic = Match("+");
    RFIDCEP_RETURN_IF_ERROR(Expect("("));
    RFIDCEP_ASSIGN_OR_RETURN(EventExprPtr first, ParseEvent(aliases));
    EventExprPtr second;
    if (!aperiodic) {
      RFIDCEP_RETURN_IF_ERROR(Expect(";"));
      RFIDCEP_ASSIGN_OR_RETURN(second, ParseEvent(aliases));
    }
    RFIDCEP_RETURN_IF_ERROR(Expect(","));
    RFIDCEP_ASSIGN_OR_RETURN(Duration lo, ParseDurationTokens());
    RFIDCEP_RETURN_IF_ERROR(Expect(","));
    RFIDCEP_ASSIGN_OR_RETURN(Duration hi, ParseDurationTokens());
    RFIDCEP_RETURN_IF_ERROR(Expect(")"));
    if (lo > hi) {
      return Status::InvalidArgument(
          "TSEQ lower distance bound exceeds upper bound");
    }
    if (aperiodic) {
      return EventExpr::TseqPlus(std::move(first), lo, hi);
    }
    return EventExpr::Tseq(std::move(first), std::move(second), lo, hi);
  }
  if (Match("ALL")) {
    // Paper §2.2: ALL(E1, ..., En) ⇔ E1 ∧ E2 ∧ ... ∧ En.
    RFIDCEP_RETURN_IF_ERROR(Expect("("));
    RFIDCEP_ASSIGN_OR_RETURN(EventExprPtr all, ParseEvent(aliases));
    while (Match(",")) {
      RFIDCEP_ASSIGN_OR_RETURN(EventExprPtr next, ParseEvent(aliases));
      all = EventExpr::And(std::move(all), std::move(next));
    }
    RFIDCEP_RETURN_IF_ERROR(Expect(")"));
    return all;
  }
  if (Match("WITHIN")) {
    RFIDCEP_RETURN_IF_ERROR(Expect("("));
    RFIDCEP_ASSIGN_OR_RETURN(EventExprPtr inner, ParseSeqChain(aliases));
    RFIDCEP_RETURN_IF_ERROR(Expect(","));
    RFIDCEP_ASSIGN_OR_RETURN(Duration tau, ParseDurationTokens());
    RFIDCEP_RETURN_IF_ERROR(Expect(")"));
    return EventExpr::Within(std::move(inner), tau);
  }
  if (Peek().Is("OBSERVATION")) {
    return ParseObservation();
  }
  // Alias reference.
  if (Peek().kind == SqlTokenKind::kIdentifier && !IsEventKeyword(Peek())) {
    std::string name = Advance().text;
    auto it = aliases.find(name);
    if (it == aliases.end()) {
      return Status::ParseError("unknown event alias '" + name +
                                "' (missing DEFINE?)");
    }
    return it->second;
  }
  return Status::ParseError("expected an event expression but got '" +
                            Peek().text + "' at offset " +
                            std::to_string(Peek().offset));
}

Result<Term> RuleParser::ParseTerm(std::string_view what) {
  const SqlToken& token = Peek();
  if (token.kind == SqlTokenKind::kString) {
    std::string value = token.text;
    Advance();
    return Term::Literal(std::move(value));
  }
  if (token.kind == SqlTokenKind::kIdentifier) {
    std::string name = token.text;
    Advance();
    // Intern at parse time: detection works with SymbolIds only.
    events::InternSymbol(name);
    return Term::Variable(std::move(name));
  }
  return Status::ParseError("expected " + std::string(what) +
                            " (literal or variable) but got '" + token.text +
                            "'");
}

Result<EventExprPtr> RuleParser::ParseObservation() {
  RFIDCEP_RETURN_IF_ERROR(Expect("OBSERVATION"));
  RFIDCEP_RETURN_IF_ERROR(Expect("("));
  RFIDCEP_ASSIGN_OR_RETURN(Term reader, ParseTerm("reader term"));
  RFIDCEP_RETURN_IF_ERROR(Expect(","));
  RFIDCEP_ASSIGN_OR_RETURN(Term object, ParseTerm("object term"));
  RFIDCEP_RETURN_IF_ERROR(Expect(","));
  RFIDCEP_ASSIGN_OR_RETURN(std::string time_var,
                           ExpectIdentifier("time variable"));
  RFIDCEP_RETURN_IF_ERROR(Expect(")"));

  PrimitiveEventType type(std::move(reader), std::move(object),
                          std::move(time_var));

  // Optional trailing constraints: ", group(r) = 'g1'", ", type(o) = 'case'".
  while (Peek().Is(",") &&
         (Peek(1).Is("GROUP") || Peek(1).Is("TYPE")) && Peek(2).Is("(")) {
    Advance();  // ','
    bool is_group = Peek().Is("GROUP");
    Advance();  // GROUP or TYPE
    RFIDCEP_RETURN_IF_ERROR(Expect("("));
    RFIDCEP_ASSIGN_OR_RETURN(std::string var,
                             ExpectIdentifier("constraint variable"));
    (void)var;  // The variable names the observation attribute positionally.
    RFIDCEP_RETURN_IF_ERROR(Expect(")"));
    RFIDCEP_RETURN_IF_ERROR(Expect("="));
    if (Peek().kind != SqlTokenKind::kString) {
      return Status::ParseError("expected string literal after " +
                                std::string(is_group ? "group" : "type") +
                                "(...) = ");
    }
    std::string value = Advance().text;
    if (is_group) {
      type.WithGroup(std::move(value));
    } else {
      type.WithObjectType(std::move(value));
    }
  }
  return EventExpr::Primitive(std::move(type));
}

Result<Duration> RuleParser::ParseDurationTokens() {
  const SqlToken& number = Peek();
  if (number.kind != SqlTokenKind::kInteger &&
      number.kind != SqlTokenKind::kDouble) {
    return Status::ParseError("expected a duration literal but got '" +
                              number.text + "' at offset " +
                              std::to_string(number.offset));
  }
  std::string text = number.text;
  Advance();
  RFIDCEP_ASSIGN_OR_RETURN(std::string unit,
                           ExpectIdentifier("duration unit"));
  return ParseDuration(text + unit);
}

Result<EventExprPtr> RuleParser::ParseSingleEvent(const AliasMap& aliases) {
  RFIDCEP_ASSIGN_OR_RETURN(EventExprPtr event, ParseEvent(aliases));
  if (!AtEnd()) {
    return Status::ParseError("unexpected trailing token '" + Peek().text +
                              "' after event expression");
  }
  return event;
}

}  // namespace

Result<RuleSet> ParseRuleProgram(std::string_view text) {
  RFIDCEP_ASSIGN_OR_RETURN(std::vector<SqlToken> tokens,
                           store::SqlTokenize(text));
  RuleParser parser(text, std::move(tokens));
  return parser.ParseProgram();
}

Result<events::EventExprPtr> ParseEventExpr(
    std::string_view text,
    const std::vector<std::pair<std::string, events::EventExprPtr>>& defines) {
  RFIDCEP_ASSIGN_OR_RETURN(std::vector<SqlToken> tokens,
                           store::SqlTokenize(text));
  AliasMap aliases;
  for (const auto& [name, expr] : defines) aliases[name] = expr;
  RuleParser parser(text, std::move(tokens));
  return parser.ParseSingleEvent(aliases);
}

}  // namespace rfidcep::rules
