// Parser for the paper's declarative RFID rule language.
//
// Program grammar (keywords case-insensitive):
//
//   program     := (define | rule)*
//   define      := DEFINE ident '=' event
//   rule        := CREATE RULE ident ',' name-words
//                  ON event [IF condition] DO action (';' action)*
//                  (name-words end at the first ON, so a rule name cannot
//                  contain the words ON / IF / DO)
//   event       := or_event
//   or_event    := and_event (OR and_event)*
//   and_event   := not_event (AND not_event)*
//   not_event   := NOT not_event | primary
//   primary     := '(' event ')'
//                | SEQ '(' event ';' event ')'
//                | TSEQ '(' event ';' event ',' duration ',' duration ')'
//                | SEQ '+' '(' event ')'
//                | TSEQ '+' '(' event ',' duration ',' duration ')'
//                | WITHIN '(' event ',' duration ')'
//                | ALL '(' event (',' event)* ')'      (sugar for nested AND)
//                | observation | alias-ident
//   observation := OBSERVATION '(' term ',' term ',' term ')' constraint*
//   constraint  := ',' (GROUP | TYPE) '(' ident ')' '=' string-literal
//   term        := string-literal | ident
//   duration    := number unit            e.g. 0.1sec, 10min
//   condition   := SQL boolean expression (store/sql_parser.h)
//   action      := SQL statement | procedure-name [ '(' raw-args ')' ]
//
// The five example rules in the paper parse verbatim (with ASCII AND/OR/NOT
// for ∧/∨/¬).

#ifndef RFIDCEP_RULES_PARSER_H_
#define RFIDCEP_RULES_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "rules/rule.h"

namespace rfidcep::rules {

// Parses a whole rule program (any number of DEFINE / CREATE RULE
// statements).
Result<RuleSet> ParseRuleProgram(std::string_view text);

// Parses a single event expression, with optional DEFINE aliases resolved
// from `defines`.
Result<events::EventExprPtr> ParseEventExpr(
    std::string_view text,
    const std::vector<std::pair<std::string, events::EventExprPtr>>& defines =
        {});

}  // namespace rfidcep::rules

#endif  // RFIDCEP_RULES_PARSER_H_
