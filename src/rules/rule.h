// RFID rules (paper §3):
//
//   CREATE RULE rule_id, rule_name
//   ON event
//   IF condition
//   DO action1; action2; ...; actionN
//
// The event part is a complex event expression (events/expr.h); the
// condition is a boolean SQL expression over the match's bindings; each
// action is either a SQL statement against the RFID data store or a named
// user procedure (e.g. `send alarm`).

#ifndef RFIDCEP_RULES_RULE_H_
#define RFIDCEP_RULES_RULE_H_

#include <string>
#include <vector>

#include "events/expr.h"
#include "store/sql_ast.h"

namespace rfidcep::rules {

struct RuleAction {
  enum class Kind { kSql, kProcedure };

  Kind kind = Kind::kProcedure;
  // kSql:
  store::SqlStatement sql;
  std::string sql_text;  // Original statement text, for diagnostics.
  // kProcedure:
  std::string procedure_name;  // e.g. "send alarm".
  std::string procedure_args;  // Raw text between parentheses, if any.
};

struct Rule {
  std::string id;
  std::string name;
  events::EventExprPtr event;
  store::SqlExprPtr condition;  // Null means IF true.
  std::string condition_text;
  std::vector<RuleAction> actions;

  // Rules own unique_ptr-based SQL ASTs: movable, not copyable.
  Rule() = default;
  Rule(Rule&&) = default;
  Rule& operator=(Rule&&) = default;
  Rule(const Rule&) = delete;
  Rule& operator=(const Rule&) = delete;
};

// A parsed rule program: DEFINE aliases plus CREATE RULE statements.
struct RuleSet {
  std::vector<Rule> rules;
  // Alias name -> event expression, from DEFINE statements (kept for
  // introspection; aliases are already inlined into rule events).
  std::vector<std::pair<std::string, events::EventExprPtr>> defines;

  RuleSet() = default;
  RuleSet(RuleSet&&) = default;
  RuleSet& operator=(RuleSet&&) = default;
  RuleSet(const RuleSet&) = delete;
  RuleSet& operator=(const RuleSet&) = delete;
};

}  // namespace rfidcep::rules

#endif  // RFIDCEP_RULES_RULE_H_
