#include "engine/sharded_engine.h"

#include <algorithm>

#include "engine/snapshot.h"
#include "engine/trace.h"

namespace rfidcep::engine {

using events::EventInstancePtr;
using events::Observation;

ShardedDetector::ShardedDetector(const events::Environment* env,
                                 ShardedOptions options, ShardedMatchSink sink)
    : env_(env), options_(options), sink_(std::move(sink)) {}

Result<std::unique_ptr<ShardedDetector>> ShardedDetector::Create(
    const std::vector<rules::Rule>& rules, const EventGraph& union_graph,
    const events::Environment* env, ShardedOptions options,
    ShardedMatchSink sink) {
  int num_shards =
      std::clamp(options.shards, 1, kMaxDetectionShards);

  // Partition: coupled rule groups (shared SEQ+ state) stay together;
  // biggest groups are placed first on the least-loaded shard, so the
  // assignment is deterministic in the rule set alone.
  std::vector<std::vector<size_t>> groups = union_graph.CoupledRuleGroups();
  std::sort(groups.begin(), groups.end(),
            [](const std::vector<size_t>& a, const std::vector<size_t>& b) {
              if (a.size() != b.size()) return a.size() > b.size();
              return a.front() < b.front();
            });
  std::vector<std::vector<size_t>> assignment(
      static_cast<size_t>(num_shards));
  for (const std::vector<size_t>& group : groups) {
    size_t target = 0;
    for (size_t s = 1; s < assignment.size(); ++s) {
      if (assignment[s].size() < assignment[target].size()) target = s;
    }
    assignment[target].insert(assignment[target].end(), group.begin(),
                              group.end());
  }
  // Drop empty shards (more shards than coupled groups) and keep each
  // shard's rules in global order so per-shard emission order restricts
  // the serial rule order.
  assignment.erase(std::remove_if(assignment.begin(), assignment.end(),
                                  [](const std::vector<size_t>& a) {
                                    return a.empty();
                                  }),
                   assignment.end());
  for (std::vector<size_t>& rule_set : assignment) {
    std::sort(rule_set.begin(), rule_set.end());
  }

  auto sharded = std::unique_ptr<ShardedDetector>(
      new ShardedDetector(env, options, std::move(sink)));
  for (size_t s = 0; s < assignment.size(); ++s) {
    auto shard = std::make_unique<Shard>();
    shard->id = static_cast<int>(s);
    shard->rule_map = assignment[s];
    std::vector<const rules::Rule*> local_rules;
    local_rules.reserve(shard->rule_map.size());
    for (size_t rule_index : shard->rule_map) {
      local_rules.push_back(&rules[rule_index]);
    }
    RFIDCEP_ASSIGN_OR_RETURN(EventGraph graph,
                             EventGraph::Build(local_rules));
    shard->graph.emplace(std::move(graph));
    shard->inbox = std::make_unique<common::SpscRing<Command>>(
        options.queue_capacity);
    shard->outbox = std::make_unique<common::SpscRing<MatchRecord>>(
        options.queue_capacity);
    Shard* raw = shard.get();
    ShardedDetector* owner = sharded.get();
    shard->on_local_match = [owner, raw](size_t local_rule,
                                         const EventInstancePtr& instance) {
      owner->EmitLocalMatch(raw, local_rule, instance);
    };
    shard->detector_options = options.detector;
    shard->detector_options.shard_id = shard->id;
    shard->detector_options.trace = options.trace;
    if (options.metrics != nullptr) {
      const std::string label =
          "{shard=\"" + std::to_string(shard->id) + "\"}";
      shard->instruments =
          MakeDetectorInstruments(options.metrics, shard->id, *shard->graph);
      shard->detector_options.instruments = &shard->instruments;
      shard->routed =
          options.metrics->GetCounter("shard_routed_total" + label);
      shard->enqueue_stalls =
          options.metrics->GetCounter("shard_enqueue_stalls_total" + label);
      shard->matches_drained =
          options.metrics->GetCounter("shard_matches_total" + label);
      shard->inbox_peak = options.metrics->GetGauge("shard_inbox_peak" + label);
      shard->outbox_peak =
          options.metrics->GetGauge("shard_outbox_peak" + label);
    }
    shard->detector = std::make_unique<Detector>(
        &*shard->graph, env, shard->detector_options, shard->on_local_match);

    // Routing table: this shard consumes observations hitting any of its
    // leaves' reader keys (probed by reader and by reader group, exactly
    // like the detector's primitive dispatch).
    EventGraph::Subscription sub = shard->graph->ComputeSubscription();
    uint32_t bit = 1u << s;
    for (const std::string& key : sub.reader_keys) {
      sharded->route_by_reader_key_[key] |= bit;
    }
    if (sub.any_reader) sharded->any_reader_mask_ |= bit;

    sharded->shards_.push_back(std::move(shard));
  }
  if (options.metrics != nullptr) {
    // Same names the serial path registers: totals are comparable (and
    // reconcile with EngineStats) at any shard count.
    sharded->observations_counter_ =
        options.metrics->GetCounter("rfidcep_observations_total");
    sharded->out_of_order_counter_ =
        options.metrics->GetCounter("rfidcep_out_of_order_dropped_total");
    sharded->unrouted_counter_ =
        options.metrics->GetCounter("rfidcep_unrouted_observations_total");
  }
  for (std::unique_ptr<Shard>& shard : sharded->shards_) {
    Shard* raw = shard.get();
    shard->thread =
        std::thread([owner = sharded.get(), raw] { owner->WorkerMain(raw); });
  }
  return sharded;
}

ShardedDetector::~ShardedDetector() {
  for (std::unique_ptr<Shard>& shard : shards_) {
    if (!shard->thread.joinable()) continue;
    EnqueueBlocking(shard.get(), Command{Command::Kind::kStop, 0, nullptr, 0});
    shard->work_bell.Ring();
    shard->thread.join();
  }
}

// --- Worker side ------------------------------------------------------------

void ShardedDetector::WorkerMain(Shard* shard) {
  Command command;
  for (;;) {
    if (!shard->inbox->TryPop(&command)) {
      uint64_t seen = shard->work_bell.generation();
      if (!shard->inbox->TryPop(&command)) {
        shard->work_bell.WaitBeyondForever(seen);
        continue;
      }
    }
    switch (command.kind) {
      case Command::Kind::kObservation: {
        shard->current_seq = command.seq;
        Status status = shard->detector->Process(*command.obs);
        if (!status.ok() && shard->first_error.ok()) {
          shard->first_error = status;
        }
        break;
      }
      case Command::Kind::kAdvanceTo:
        shard->current_seq = command.seq;
        shard->detector->AdvanceTo(command.t);
        break;
      case Command::Kind::kFlush:
        shard->current_seq = command.seq;
        shard->detector->Flush();
        break;
      case Command::Kind::kReset:
        shard->detector = std::make_unique<Detector>(
            &*shard->graph, env_, shard->detector_options,
            shard->on_local_match);
        shard->current_seq = 0;
        shard->emit_counter = 0;
        shard->first_error = Status::Ok();
        break;
      case Command::Kind::kBarrier:
        barrier_acks_.fetch_add(1, std::memory_order_release);
        ack_bell_.Ring();
        break;
      case Command::Kind::kStop:
        return;
    }
  }
}

void ShardedDetector::EmitLocalMatch(Shard* shard, size_t local_rule,
                                     const EventInstancePtr& instance) {
  MatchRecord record;
  record.seq = shard->current_seq;
  record.emit = ++shard->emit_counter;
  record.local_rule = static_cast<uint32_t>(local_rule);
  record.fire_time = shard->detector->clock();
  record.instance = instance;
  while (!shard->outbox->TryPush(std::move(record))) {
    // Full outbox: the coordinator is either draining already or asleep
    // waiting for barrier acks — ring its bell so it drains.
    ack_bell_.Ring();
    std::this_thread::yield();
  }
  if (shard->outbox_peak != nullptr) {
    shard->outbox_peak->UpdateMax(static_cast<int64_t>(shard->outbox->size()));
  }
}

// --- Coordinator side -------------------------------------------------------

uint32_t ShardedDetector::RouteMask(const Observation& obs) const {
  uint32_t mask = any_reader_mask_;
  if (auto it = route_by_reader_key_.find(obs.reader);
      it != route_by_reader_key_.end()) {
    mask |= it->second;
  }
  std::string_view group = env_->GroupViewOf(obs.reader);
  if (group != obs.reader) {
    if (auto it = route_by_reader_key_.find(group);
        it != route_by_reader_key_.end()) {
      mask |= it->second;
    }
  }
  return mask;
}

void ShardedDetector::EnqueueBlocking(Shard* shard, Command command) {
  bool stalled = false;
  while (!shard->inbox->TryPush(std::move(command))) {
    if (!stalled && shard->enqueue_stalls != nullptr) {
      shard->enqueue_stalls->Increment();
      stalled = true;
    }
    shard->work_bell.Ring();  // Full inbox: make sure the worker is awake.
    DrainOutboxes();
    std::this_thread::yield();
  }
  if (shard->inbox_peak != nullptr) {
    shard->inbox_peak->UpdateMax(static_cast<int64_t>(shard->inbox->size()));
  }
}

void ShardedDetector::DrainOutboxes() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    MatchRecord record;
    while (shard->outbox->TryPop(&record)) {
      record.shard = shard->id;
      if (shard->matches_drained != nullptr) {
        shard->matches_drained->Increment();
      }
      pending_.push_back(std::move(record));
    }
  }
}

void ShardedDetector::BarrierAndDeliver() {
  for (std::unique_ptr<Shard>& shard : shards_) {
    EnqueueBlocking(shard.get(),
                    Command{Command::Kind::kBarrier, 0, nullptr, 0});
    shard->work_bell.Ring();
  }
  barrier_target_ += shards_.size();
  for (;;) {
    DrainOutboxes();
    if (barrier_acks_.load(std::memory_order_acquire) >= barrier_target_) {
      break;
    }
    uint64_t seen = ack_bell_.generation();
    DrainOutboxes();
    if (barrier_acks_.load(std::memory_order_acquire) >= barrier_target_) {
      break;
    }
    ack_bell_.WaitBeyond(seen);
  }
  DrainOutboxes();

  // Reorder stage: canonical replay order is (command seq, shard id,
  // per-shard emission index) — independent of worker scheduling, and for
  // each rule identical to its serial firing order.
  std::sort(pending_.begin(), pending_.end(),
            [](const MatchRecord& a, const MatchRecord& b) {
              if (a.seq != b.seq) return a.seq < b.seq;
              if (a.shard != b.shard) return a.shard < b.shard;
              return a.emit < b.emit;
            });
  for (MatchRecord& record : pending_) {
    sink_(shards_[record.shard]->rule_map[record.local_rule], record.instance,
          record.fire_time);
  }
  pending_.clear();
}

Status ShardedDetector::ProcessBatch(const Observation* batch, size_t count) {
  Status result = Status::Ok();
  for (size_t i = 0; i < count; ++i) {
    const Observation& obs = batch[i];
    if (obs.timestamp < clock_) {
      if (options_.detector.tolerate_out_of_order) {
        ++out_of_order_dropped_;
        if (out_of_order_counter_ != nullptr) {
          out_of_order_counter_->Increment();
        }
        continue;
      }
      result = Status::InvalidArgument(
          "out-of-order observation at " + FormatTimePoint(obs.timestamp) +
          " (clock is " + FormatTimePoint(clock_) + ")");
      break;
    }
    clock_ = obs.timestamp;
    ++observations_;
    if (observations_counter_ != nullptr) observations_counter_->Increment();
    uint32_t mask = RouteMask(obs);
    uint64_t seq = ++command_seq_;
    if (options_.trace != nullptr) {
      options_.trace->RecordObservation(seq, obs);
    }
    if (mask == 0) {  // No shard's vocabulary can consume it.
      if (unrouted_counter_ != nullptr) unrouted_counter_->Increment();
      continue;
    }
    for (size_t s = 0; mask != 0; ++s, mask >>= 1) {
      if (mask & 1u) {
        if (shards_[s]->routed != nullptr) shards_[s]->routed->Increment();
        EnqueueBlocking(
            shards_[s].get(),
            Command{Command::Kind::kObservation, seq, &obs, 0});
      }
    }
  }
  BarrierAndDeliver();
  return result;
}

void ShardedDetector::AdvanceTo(TimePoint t) {
  uint64_t seq = ++command_seq_;
  for (std::unique_ptr<Shard>& shard : shards_) {
    EnqueueBlocking(shard.get(),
                    Command{Command::Kind::kAdvanceTo, seq, nullptr, t});
  }
  clock_ = std::max(clock_, t);
  BarrierAndDeliver();
}

void ShardedDetector::Flush() {
  uint64_t seq = ++command_seq_;
  for (std::unique_ptr<Shard>& shard : shards_) {
    EnqueueBlocking(shard.get(),
                    Command{Command::Kind::kFlush, seq, nullptr, 0});
  }
  BarrierAndDeliver();
  // Pseudo events may have advanced shard clocks past the last
  // observation; keep the out-of-order gate aligned with serial.
  clock_ = clock();
}

void ShardedDetector::Reset() {
  for (std::unique_ptr<Shard>& shard : shards_) {
    EnqueueBlocking(shard.get(),
                    Command{Command::Kind::kReset, 0, nullptr, 0});
  }
  BarrierAndDeliver();
  pending_.clear();
  command_seq_ = 0;
  clock_ = 0;
  observations_ = 0;
  out_of_order_dropped_ = 0;
  baseline_ = DetectorStats{};
}

// --- Checkpoint/restore ------------------------------------------------------

namespace {

std::vector<std::string> ShardStateKeys(const std::vector<rules::Rule>& rules,
                                        const std::vector<size_t>& rule_map,
                                        const EventGraph& graph) {
  std::vector<std::string> local_ids;
  local_ids.reserve(rule_map.size());
  for (size_t rule_index : rule_map) local_ids.push_back(rules[rule_index].id);
  return graph.NodeStateKeys(local_ids);
}

}  // namespace

void ShardedDetector::CaptureState(const std::vector<rules::Rule>& rules,
                                   snapshot::EngineSnapshot* out) const {
  out->source_shards = num_shards();
  out->sources.clear();
  out->sources.resize(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    shard.detector->SaveState(
        ShardStateKeys(rules, shard.rule_map, *shard.graph),
        &out->sources[s]);
  }
}

Status ShardedDetector::RestoreState(const std::vector<rules::Rule>& rules,
                                     const snapshot::EngineSnapshot& snap) {
  // Workers are quiescent (every public entry point barriers), so shard
  // detectors can be rebuilt from this thread; the next inbox push
  // publishes the new state to the worker.
  BarrierAndDeliver();
  for (std::unique_ptr<Shard>& shard : shards_) {
    RFIDCEP_ASSIGN_OR_RETURN(
        snapshot::RestorePlan plan,
        snapshot::BuildRestorePlan(
            snap, ShardStateKeys(rules, shard->rule_map, *shard->graph)));
    RFIDCEP_RETURN_IF_ERROR(
        shard->detector->RestoreState(plan, DetectorStats{}));
    shard->current_seq = 0;
    shard->emit_counter = 0;
    shard->first_error = Status::Ok();
  }
  pending_.clear();
  command_seq_ = 0;
  clock_ = snap.clock;
  observations_ = snap.stats.detector.observations;
  out_of_order_dropped_ = snap.stats.detector.out_of_order_dropped;
  baseline_ = snap.stats.detector;
  baseline_.observations = 0;
  baseline_.out_of_order_dropped = 0;
  return Status::Ok();
}

// --- Introspection (quiescent callers only) ---------------------------------

DetectorStats ShardedDetector::stats() const {
  DetectorStats total = baseline_;  // Pre-restore totals (zero otherwise).
  total.observations = observations_;
  total.out_of_order_dropped = out_of_order_dropped_;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const DetectorStats& s = shard->detector->stats();
    total.primitive_matches += s.primitive_matches;
    total.instances_produced += s.instances_produced;
    total.pseudo_scheduled += s.pseudo_scheduled;
    total.pseudo_fired += s.pseudo_fired;
    total.rule_matches += s.rule_matches;
  }
  return total;
}

TimePoint ShardedDetector::clock() const {
  TimePoint t = clock_;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    t = std::max(t, shard->detector->clock());
  }
  return t;
}

size_t ShardedDetector::TotalBufferedEntries() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    total += shard->detector->TotalBufferedEntries();
  }
  return total;
}

size_t ShardedDetector::PendingPseudoEvents() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    total += shard->detector->PendingPseudoEvents();
  }
  return total;
}

std::string ShardedDetector::DebugReport(
    const std::vector<rules::Rule>& rules) const {
  std::string out = "sharded engine: " + std::to_string(shards_.size()) +
                    " shards clock=" + FormatTimePoint(clock()) +
                    " pending_pseudo=" + std::to_string(PendingPseudoEvents()) +
                    " buffered=" + std::to_string(TotalBufferedEntries()) +
                    "\n";
  for (const std::unique_ptr<Shard>& shard : shards_) {
    out += "shard " + std::to_string(shard->id) + ": rules=[";
    for (size_t i = 0; i < shard->rule_map.size(); ++i) {
      if (i > 0) out += " ";
      out += rules[shard->rule_map[i]].id;
    }
    out += "] clock=" + FormatTimePoint(shard->detector->clock()) +
           " pending_pseudo=" +
           std::to_string(shard->detector->PendingPseudoEvents()) +
           " buffered=" +
           std::to_string(shard->detector->TotalBufferedEntries()) +
           " inbox_depth=" + std::to_string(shard->inbox->size()) + "/" +
           std::to_string(shard->inbox->capacity()) +
           " outbox_depth=" + std::to_string(shard->outbox->size()) + "/" +
           std::to_string(shard->outbox->capacity());
    if (shard->routed != nullptr) {
      out += " routed=" + std::to_string(shard->routed->value()) +
             " matches=" + std::to_string(shard->matches_drained->value()) +
             " stalls=" + std::to_string(shard->enqueue_stalls->value()) +
             " inbox_peak=" + std::to_string(shard->inbox_peak->value()) +
             " outbox_peak=" + std::to_string(shard->outbox_peak->value()) +
             " pseudo_peak=" +
             std::to_string(shard->instruments.pseudo_queue_peak->value());
    }
    out += "\n";
    for (const GraphNode& node : shard->graph->nodes()) {
      out += "  #" + std::to_string(node.id) + " " +
             std::string(DetectionModeName(node.mode)) + " produced=" +
             std::to_string(shard->detector->ProducedAt(node.id)) +
             " buffered=" +
             std::to_string(shard->detector->BufferedAt(node.id)) + " " +
             node.canonical_key + "\n";
    }
  }
  return out;
}

}  // namespace rfidcep::engine
