#include "engine/sharded_engine.h"

#include <algorithm>
#include <string_view>
#include <variant>

#include "engine/snapshot.h"
#include "engine/trace.h"
#include "events/binding.h"
#include "events/symbol.h"

namespace rfidcep::engine {

using events::EventInstancePtr;
using events::Observation;

namespace {

// FNV-1a over the partition key (object or reader EPC). The same hash
// routes live observations and re-buckets restored state, so a restore
// followed by more stream lands every key on the shard that already
// holds its partial matches.
uint64_t PartitionHash(std::string_view key) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// Whether a restored instance belongs on keyed replica `bucket`. An
// instance without the partition binding (defensive: keyed graphs bind
// the key variable on every node) stays on replica 0 so it is restored
// exactly once.
bool KeepInBucket(const EventInstancePtr& instance, events::SymbolId sym,
                  uint32_t bucket, int replicas) {
  if (sym == events::kInvalidSymbol || instance == nullptr) return bucket == 0;
  const events::BindingValue* value = instance->bindings().FindScalar(sym);
  if (value == nullptr || !std::holds_alternative<std::string>(*value)) {
    return bucket == 0;
  }
  return PartitionHash(std::get<std::string>(*value)) %
             static_cast<uint64_t>(replicas) ==
         bucket;
}

// Restricts a full restore plan (built for the replicated keyed graph)
// to the slice a single replica owns: slot entries, NOT-log entries, and
// pseudo anchors whose partition binding hashes to `bucket`. Anchorless
// pseudo events (stale no-ops) and per-node produced counts stay on
// replica 0 only, so aggregates are restored exactly once. Keyed graphs
// host no SEQ+ nodes (the classifier rejects them), so runs never need
// splitting.
void FilterPlanToBucket(snapshot::RestorePlan* plan,
                        const std::vector<events::SymbolId>& node_syms,
                        uint32_t bucket, int replicas) {
  auto sym_of = [&](int node_id) {
    return node_id >= 0 && static_cast<size_t>(node_id) < node_syms.size()
               ? node_syms[static_cast<size_t>(node_id)]
               : events::kInvalidSymbol;
  };
  for (snapshot::RestoredNode& node : plan->nodes) {
    events::SymbolId sym = sym_of(node.node_id);
    for (auto& slot : node.slots) {
      slot.erase(std::remove_if(
                     slot.begin(), slot.end(),
                     [&](const auto& entry) {
                       return !KeepInBucket(entry.first, sym, bucket, replicas);
                     }),
                 slot.end());
    }
    node.not_log.erase(
        std::remove_if(node.not_log.begin(), node.not_log.end(),
                       [&](const EventInstancePtr& instance) {
                         return !KeepInBucket(instance, sym, bucket, replicas);
                       }),
        node.not_log.end());
    if (bucket != 0) node.produced = 0;
  }
  plan->pseudos.erase(
      std::remove_if(plan->pseudos.begin(), plan->pseudos.end(),
                     [&](const snapshot::RestoredPseudo& pseudo) {
                       if (pseudo.anchor == nullptr) return bucket != 0;
                       return !KeepInBucket(pseudo.anchor,
                                            sym_of(pseudo.parent_node), bucket,
                                            replicas);
                     }),
      plan->pseudos.end());
}

}  // namespace

ShardedDetector::ShardedDetector(const events::Environment* env,
                                 ShardedOptions options, ShardedMatchSink sink)
    : env_(env), options_(options), sink_(std::move(sink)) {}

Result<std::unique_ptr<ShardedDetector>> ShardedDetector::Create(
    const std::vector<rules::Rule>& rules, const EventGraph& union_graph,
    const events::Environment* env, ShardedOptions options,
    ShardedMatchSink sink) {
  int num_shards =
      std::clamp(options.shards, 1, kMaxDetectionShards);

  auto sharded = std::unique_ptr<ShardedDetector>(
      new ShardedDetector(env, options, std::move(sink)));

  // --- Partition --------------------------------------------------------
  // assignment[s] is shard s's (sorted) global rule set; keyed_flags[s]
  // says whether shard s is a keyed replica.
  std::vector<std::vector<size_t>> assignment;
  std::vector<bool> keyed_flags;

  if (options.partition == PartitionMode::kData && num_shards > 1) {
    // Data partitioning: key-partitionable rules are replicated across
    // every worker and the stream is split by hash(partition key);
    // everything else shares one residual shard.
    std::vector<size_t> epc;
    std::vector<size_t> site;
    std::vector<size_t> residual;
    for (size_t i = 0; i < rules.size(); ++i) {
      switch (union_graph.ClassifyRulePartition(i).cls) {
        case EventGraph::RulePartitionClass::kEpcKeyed:
          epc.push_back(i);
          break;
        case EventGraph::RulePartitionClass::kSiteKeyed:
          site.push_back(i);
          break;
        case EventGraph::RulePartitionClass::kCrossObject:
          residual.push_back(i);
          break;
      }
    }
    // One partition dimension per pipeline: object wins when both appear
    // (the paper's joins predominantly correlate on the tag EPC); rules
    // keyed on the losing dimension run with the cross-object residual.
    const bool object_dim = !epc.empty();
    std::vector<size_t>& keyed = object_dim ? epc : site;
    std::vector<size_t>& off_dim = object_dim ? site : epc;
    residual.insert(residual.end(), off_dim.begin(), off_dim.end());
    std::sort(residual.begin(), residual.end());
    if (!keyed.empty()) {
      int replicas = num_shards;
      if (!residual.empty() && replicas + 1 > kMaxDetectionShards) {
        replicas = kMaxDetectionShards - 1;  // Routing mask is 32 bits.
      }
      sharded->data_mode_ = true;
      sharded->object_dim_ = object_dim;
      sharded->num_replicas_ = replicas;
      assignment.assign(static_cast<size_t>(replicas), keyed);
      keyed_flags.assign(static_cast<size_t>(replicas), true);
      if (!residual.empty()) {
        assignment.push_back(std::move(residual));
        keyed_flags.push_back(false);
      }
    }
    // No partitionable rule: fall through to rule sharding.
  }

  if (!sharded->data_mode_) {
    // Rule partitioning: coupled rule groups (shared SEQ+ state) stay
    // together; biggest groups are placed first on the least-loaded
    // shard, so the assignment is deterministic in the rule set alone.
    std::vector<std::vector<size_t>> groups = union_graph.CoupledRuleGroups();
    std::sort(groups.begin(), groups.end(),
              [](const std::vector<size_t>& a, const std::vector<size_t>& b) {
                if (a.size() != b.size()) return a.size() > b.size();
                return a.front() < b.front();
              });
    assignment.assign(static_cast<size_t>(num_shards), {});
    for (const std::vector<size_t>& group : groups) {
      size_t target = 0;
      for (size_t s = 1; s < assignment.size(); ++s) {
        if (assignment[s].size() < assignment[target].size()) target = s;
      }
      assignment[target].insert(assignment[target].end(), group.begin(),
                                group.end());
    }
    // Drop empty shards (more shards than coupled groups) and keep each
    // shard's rules in global order so per-shard emission order restricts
    // the serial rule order.
    assignment.erase(std::remove_if(assignment.begin(), assignment.end(),
                                    [](const std::vector<size_t>& a) {
                                      return a.empty();
                                    }),
                     assignment.end());
    for (std::vector<size_t>& rule_set : assignment) {
      std::sort(rule_set.begin(), rule_set.end());
    }
    keyed_flags.assign(assignment.size(), false);
  }

  for (size_t s = 0; s < assignment.size(); ++s) {
    auto shard = std::make_unique<Shard>();
    shard->id = static_cast<int>(s);
    shard->rule_map = assignment[s];
    shard->keyed = keyed_flags[s];
    shard->bucket = shard->keyed ? static_cast<uint32_t>(s) : 0;
    std::vector<const rules::Rule*> local_rules;
    local_rules.reserve(shard->rule_map.size());
    for (size_t rule_index : shard->rule_map) {
      local_rules.push_back(&rules[rule_index]);
    }
    RFIDCEP_ASSIGN_OR_RETURN(
        EventGraph graph,
        EventGraph::Build(local_rules,
                          options.detector.compile.share_prefixes));
    shard->graph.emplace(std::move(graph));
    shard->inbox = std::make_unique<common::SpscRing<Command>>(
        options.queue_capacity);
    shard->outbox = std::make_unique<common::SpscRing<MatchRecord>>(
        options.queue_capacity);
    Shard* raw = shard.get();
    ShardedDetector* owner = sharded.get();
    shard->on_local_match = [owner, raw](size_t local_rule,
                                         const EventInstancePtr& instance) {
      owner->EmitLocalMatch(raw, local_rule, instance);
    };
    shard->detector_options = options.detector;
    shard->detector_options.shard_id = shard->id;
    shard->detector_options.trace = options.trace;
    if (options.metrics != nullptr) {
      const std::string label =
          "{shard=\"" + std::to_string(shard->id) + "\"}";
      shard->instruments =
          MakeDetectorInstruments(options.metrics, shard->id, *shard->graph);
      shard->detector_options.instruments = &shard->instruments;
      shard->routed =
          options.metrics->GetCounter("shard_routed_total" + label);
      shard->enqueue_stalls =
          options.metrics->GetCounter("shard_enqueue_stalls_total" + label);
      shard->matches_drained =
          options.metrics->GetCounter("shard_matches_total" + label);
      shard->inbox_peak = options.metrics->GetGauge("shard_inbox_peak" + label);
      shard->outbox_peak =
          options.metrics->GetGauge("shard_outbox_peak" + label);
    }
    shard->detector = std::make_unique<Detector>(
        &*shard->graph, env, shard->detector_options, shard->on_local_match);

    // Routing table: a rule-sharded (or residual) shard consumes
    // observations hitting any of its leaves' reader keys (probed by
    // reader and by reader group, exactly like the detector's primitive
    // dispatch). Keyed replicas share one vocabulary — recorded once as
    // the gate in front of the hash route.
    EventGraph::Subscription sub = shard->graph->ComputeSubscription();
    if (shard->keyed) {
      if (s == 0) {
        for (const std::string& key : sub.reader_keys) {
          sharded->keyed_reader_keys_[key] = true;
        }
        sharded->keyed_any_reader_ = sub.any_reader;
        for (const std::string& var :
             shard->graph->NodePartitionVars(sharded->object_dim_)) {
          sharded->replica_partition_syms_.push_back(
              var.empty() ? events::kInvalidSymbol
                          : events::SymbolTable::Global().Intern(var));
        }
      }
    } else {
      uint32_t bit = 1u << s;
      for (const std::string& key : sub.reader_keys) {
        sharded->route_by_reader_key_[key] |= bit;
      }
      if (sub.any_reader) sharded->any_reader_mask_ |= bit;
    }

    sharded->shards_.push_back(std::move(shard));
  }
  if (options.metrics != nullptr) {
    // Same names the serial path registers: totals are comparable (and
    // reconcile with EngineStats) at any shard count.
    sharded->observations_counter_ =
        options.metrics->GetCounter("rfidcep_observations_total");
    sharded->out_of_order_counter_ =
        options.metrics->GetCounter("rfidcep_out_of_order_dropped_total");
    sharded->unrouted_counter_ =
        options.metrics->GetCounter("rfidcep_unrouted_observations_total");
  }
  for (std::unique_ptr<Shard>& shard : sharded->shards_) {
    Shard* raw = shard.get();
    shard->thread =
        std::thread([owner = sharded.get(), raw] { owner->WorkerMain(raw); });
  }
  return sharded;
}

ShardedDetector::~ShardedDetector() {
  for (std::unique_ptr<Shard>& shard : shards_) {
    if (!shard->thread.joinable()) continue;
    Command stop;
    stop.kind = Command::Kind::kStop;
    EnqueueBlocking(shard.get(), std::move(stop));
    shard->work_bell.Ring();
    shard->thread.join();
  }
}

// --- Worker side ------------------------------------------------------------

void ShardedDetector::WorkerMain(Shard* shard) {
  Command command;
  for (;;) {
    if (!shard->inbox->TryPop(&command)) {
      uint64_t seen = shard->work_bell.generation();
      if (!shard->inbox->TryPop(&command)) {
        shard->work_bell.WaitBeyondForever(seen);
        continue;
      }
    }
    switch (command.kind) {
      case Command::Kind::kObsBatch: {
        for (const auto& [seq, obs] : command.batch) {
          shard->current_seq = seq;
          shard->detector->SetCommandSeq(seq);
          Status status = shard->detector->Process(*obs);
          if (!status.ok() && shard->first_error.ok()) {
            shard->first_error = status;
          }
        }
        if (command.advance_after) {
          // Per-batch clock sync (data mode): fire every pseudo event
          // scheduled strictly before the coordinator clock, so each
          // barrier delivers exactly the serial match prefix.
          shard->current_seq = command.advance_seq;
          shard->detector->SetCommandSeq(command.advance_seq);
          shard->detector->AdvanceTo(command.t);
        }
        break;
      }
      case Command::Kind::kAdvanceTo:
        shard->current_seq = command.seq;
        shard->detector->SetCommandSeq(command.seq);
        shard->detector->AdvanceTo(command.t);
        break;
      case Command::Kind::kFlush:
        shard->current_seq = command.seq;
        shard->detector->SetCommandSeq(command.seq);
        shard->detector->Flush();
        break;
      case Command::Kind::kReset:
        shard->detector = std::make_unique<Detector>(
            &*shard->graph, env_, shard->detector_options,
            shard->on_local_match);
        shard->current_seq = 0;
        shard->emit_counter = 0;
        shard->first_error = Status::Ok();
        break;
      case Command::Kind::kBarrier:
        barrier_acks_.fetch_add(1, std::memory_order_release);
        ack_bell_.Ring();
        break;
      case Command::Kind::kStop:
        return;
    }
  }
}

void ShardedDetector::EmitLocalMatch(Shard* shard, size_t local_rule,
                                     const EventInstancePtr& instance) {
  MatchRecord record;
  record.seq = shard->current_seq;
  record.emit = ++shard->emit_counter;
  record.local_rule = static_cast<uint32_t>(local_rule);
  record.fire_time = shard->detector->clock();
  if (data_mode_) {
    // Replay key (see MatchRecord): each shard emits these in
    // nondecreasing key order, so the barrier merge is a K-way merge of
    // presorted runs.
    const Detector& detector = *shard->detector;
    if (detector.in_pseudo_firing()) {
      record.kind = 1;
      record.sort_time = detector.firing_execute_at();
      record.stamp = detector.firing_stamp();
    } else {
      record.kind = 0;
      record.sort_time = detector.clock();
      record.stamp.assign(1, detector.command_seq());
    }
  }
  record.instance = instance;
  while (!shard->outbox->TryPush(std::move(record))) {
    // Full outbox: the coordinator is either draining already or asleep
    // waiting for barrier acks — ring its bell so it drains.
    ack_bell_.Ring();
    std::this_thread::yield();
  }
  if (shard->outbox_peak != nullptr) {
    shard->outbox_peak->UpdateMax(static_cast<int64_t>(shard->outbox->size()));
  }
}

// --- Coordinator side -------------------------------------------------------

uint32_t ShardedDetector::RouteMask(const Observation& obs) const {
  uint32_t mask = any_reader_mask_;
  std::string_view group = env_->GroupViewOf(obs.reader);
  if (auto it = route_by_reader_key_.find(obs.reader);
      it != route_by_reader_key_.end()) {
    mask |= it->second;
  }
  if (group != obs.reader) {
    if (auto it = route_by_reader_key_.find(group);
        it != route_by_reader_key_.end()) {
      mask |= it->second;
    }
  }
  if (data_mode_) {
    // Keyed route: ONE replica, chosen by the partition-key hash, gated
    // on the replicated graph's vocabulary.
    bool keyed =
        keyed_any_reader_ ||
        keyed_reader_keys_.find(obs.reader) != keyed_reader_keys_.end() ||
        (group != obs.reader &&
         keyed_reader_keys_.find(group) != keyed_reader_keys_.end());
    if (keyed) {
      const std::string& key = object_dim_ ? obs.object : obs.reader;
      mask |= 1u << (PartitionHash(key) %
                     static_cast<uint64_t>(num_replicas_));
    }
  }
  return mask;
}

void ShardedDetector::EnqueueBlocking(Shard* shard, Command command) {
  bool stalled = false;
  while (!shard->inbox->TryPush(std::move(command))) {
    if (!stalled && shard->enqueue_stalls != nullptr) {
      shard->enqueue_stalls->Increment();
      stalled = true;
    }
    shard->work_bell.Ring();  // Full inbox: make sure the worker is awake.
    DrainOutboxes();
    std::this_thread::yield();
  }
  if (shard->inbox_peak != nullptr) {
    shard->inbox_peak->UpdateMax(static_cast<int64_t>(shard->inbox->size()));
  }
}

void ShardedDetector::DrainOutboxes() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    size_t start = shard->pending.size();
    size_t popped = shard->outbox->TryPopAll(&shard->pending);
    if (popped == 0) continue;
    for (size_t i = start; i < shard->pending.size(); ++i) {
      shard->pending[i].shard = shard->id;
    }
    if (shard->matches_drained != nullptr) {
      shard->matches_drained->Increment(popped);
    }
  }
}

void ShardedDetector::BarrierAndDeliver() {
  for (std::unique_ptr<Shard>& shard : shards_) {
    Command barrier;
    barrier.kind = Command::Kind::kBarrier;
    EnqueueBlocking(shard.get(), std::move(barrier));
    shard->work_bell.Ring();
  }
  barrier_target_ += shards_.size();
  for (;;) {
    DrainOutboxes();
    if (barrier_acks_.load(std::memory_order_acquire) >= barrier_target_) {
      break;
    }
    uint64_t seen = ack_bell_.generation();
    DrainOutboxes();
    if (barrier_acks_.load(std::memory_order_acquire) >= barrier_target_) {
      break;
    }
    ack_bell_.WaitBeyond(seen);
  }
  DrainOutboxes();

  // Reorder stage. Every shard's pending run is already sorted in replay
  // order (workers emit monotonically — detection walks the stream and
  // the pseudo queue in exactly this order), so the canonical order is a
  // K-way merge of presorted runs, not a global sort. Rule mode replays
  // by (command seq, shard id, per-shard emission index); data mode by
  // the serial-reconstructing (sort_time, kind, stamp, shard, emit) key
  // (see MatchRecord). Both are independent of worker scheduling and for
  // each rule identical to its serial firing order.
  const bool data = data_mode_;
  auto before = [data](const MatchRecord& a, const MatchRecord& b) {
    if (data) {
      if (a.sort_time != b.sort_time) return a.sort_time < b.sort_time;
      if (a.kind != b.kind) return a.kind < b.kind;
      if (a.stamp != b.stamp) return a.stamp < b.stamp;
    } else {
      if (a.seq != b.seq) return a.seq < b.seq;
    }
    if (a.shard != b.shard) return a.shard < b.shard;
    return a.emit < b.emit;
  };
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    total += shard->pending.size();
  }
  std::vector<size_t> cursor(shards_.size(), 0);
  for (size_t delivered = 0; delivered < total; ++delivered) {
    size_t best = shards_.size();
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (cursor[s] >= shards_[s]->pending.size()) continue;
      if (best == shards_.size() ||
          before(shards_[s]->pending[cursor[s]],
                 shards_[best]->pending[cursor[best]])) {
        best = s;
      }
    }
    MatchRecord& record = shards_[best]->pending[cursor[best]++];
    sink_(shards_[best]->rule_map[record.local_rule], record.instance,
          record.fire_time);
  }
  for (std::unique_ptr<Shard>& shard : shards_) shard->pending.clear();
}

Status ShardedDetector::ProcessBatch(const Observation* batch, size_t count) {
  Status result = Status::Ok();
  for (std::unique_ptr<Shard>& shard : shards_) shard->staged.clear();
  bool accepted = false;
  for (size_t i = 0; i < count; ++i) {
    const Observation& obs = batch[i];
    if (obs.timestamp < clock_) {
      if (options_.detector.tolerate_out_of_order) {
        ++out_of_order_dropped_;
        if (out_of_order_counter_ != nullptr) {
          out_of_order_counter_->Increment();
        }
        continue;
      }
      result = Status::InvalidArgument(
          "out-of-order observation at " + FormatTimePoint(obs.timestamp) +
          " (clock is " + FormatTimePoint(clock_) + ")");
      break;
    }
    clock_ = obs.timestamp;
    ++observations_;
    accepted = true;
    if (observations_counter_ != nullptr) observations_counter_->Increment();
    uint32_t mask = RouteMask(obs);
    uint64_t seq = ++command_seq_;
    if (options_.trace != nullptr) {
      options_.trace->RecordObservation(seq, obs);
    }
    if (mask == 0) {  // No shard's vocabulary can consume it.
      ++unrouted_;
      if (unrouted_counter_ != nullptr) unrouted_counter_->Increment();
      if (options_.trace != nullptr) {
        options_.trace->RecordUnrouted(seq, obs);
      }
      continue;
    }
    for (size_t s = 0; mask != 0; ++s, mask >>= 1) {
      if (mask & 1u) {
        if (shards_[s]->routed != nullptr) shards_[s]->routed->Increment();
        shards_[s]->staged.emplace_back(seq, &obs);
      }
    }
  }
  // Handoff: each shard's whole share of the batch rides in ONE ring
  // slot. In data mode every shard additionally advances to the
  // coordinator clock under one shared command sequence — the per-batch
  // sync that fires pending expirations on replicas the batch never
  // touched, keeping the concatenation of per-barrier merges identical
  // to the serial emission order.
  const bool advance = data_mode_ && accepted;
  const uint64_t advance_seq = advance ? ++command_seq_ : 0;
  for (std::unique_ptr<Shard>& shard : shards_) {
    if (shard->staged.empty() && !advance) continue;
    Command command;
    command.kind = Command::Kind::kObsBatch;
    command.batch = std::move(shard->staged);
    shard->staged.clear();
    command.advance_after = advance;
    command.t = clock_;
    command.advance_seq = advance_seq;
    EnqueueBlocking(shard.get(), std::move(command));
    shard->work_bell.Ring();
  }
  BarrierAndDeliver();
  return result;
}

void ShardedDetector::AdvanceTo(TimePoint t) {
  uint64_t seq = ++command_seq_;
  for (std::unique_ptr<Shard>& shard : shards_) {
    Command command;
    command.kind = Command::Kind::kAdvanceTo;
    command.seq = seq;
    command.t = t;
    EnqueueBlocking(shard.get(), std::move(command));
    shard->work_bell.Ring();
  }
  clock_ = std::max(clock_, t);
  BarrierAndDeliver();
}

void ShardedDetector::Flush() {
  uint64_t seq = ++command_seq_;
  for (std::unique_ptr<Shard>& shard : shards_) {
    Command command;
    command.kind = Command::Kind::kFlush;
    command.seq = seq;
    EnqueueBlocking(shard.get(), std::move(command));
    shard->work_bell.Ring();
  }
  BarrierAndDeliver();
  // Pseudo events may have advanced shard clocks past the last
  // observation; keep the out-of-order gate aligned with serial.
  clock_ = clock();
}

void ShardedDetector::Reset() {
  for (std::unique_ptr<Shard>& shard : shards_) {
    Command command;
    command.kind = Command::Kind::kReset;
    EnqueueBlocking(shard.get(), std::move(command));
    shard->work_bell.Ring();
  }
  BarrierAndDeliver();
  for (std::unique_ptr<Shard>& shard : shards_) {
    shard->staged.clear();
    shard->pending.clear();
  }
  command_seq_ = 0;
  clock_ = 0;
  observations_ = 0;
  out_of_order_dropped_ = 0;
  unrouted_ = 0;
  baseline_ = DetectorStats{};
}

// --- Checkpoint/restore ------------------------------------------------------

namespace {

std::vector<std::string> ShardStateKeys(const std::vector<rules::Rule>& rules,
                                        const std::vector<size_t>& rule_map,
                                        const EventGraph& graph) {
  std::vector<std::string> local_ids;
  local_ids.reserve(rule_map.size());
  for (size_t rule_index : rule_map) local_ids.push_back(rules[rule_index].id);
  return graph.NodeStateKeys(local_ids);
}

}  // namespace

void ShardedDetector::CaptureState(const std::vector<rules::Rule>& rules,
                                   snapshot::EngineSnapshot* out) const {
  if (data_mode_) {
    // Keyed replicas hold complementary per-key slices of one logical
    // detector: merge them (plus the residual) into a single
    // serial-equivalent source, so the snapshot restores onto ANY layout
    // through the ordinary re-partitioning path.
    std::vector<snapshot::DetectorSnapshot> sources(shards_.size());
    std::vector<bool> keyed(shards_.size(), false);
    for (size_t s = 0; s < shards_.size(); ++s) {
      const Shard& shard = *shards_[s];
      shard.detector->SaveState(
          ShardStateKeys(rules, shard.rule_map, *shard.graph), &sources[s]);
      sources[s].source_id = shard.id;
      keyed[s] = shard.keyed;
    }
    out->source_shards = 1;
    out->sources.clear();
    out->sources.push_back(snapshot::MergeShardSnapshots(sources, keyed));
    return;
  }
  out->source_shards = num_shards();
  out->sources.clear();
  out->sources.resize(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    shard.detector->SaveState(
        ShardStateKeys(rules, shard.rule_map, *shard.graph),
        &out->sources[s]);
  }
}

Status ShardedDetector::RestoreState(const std::vector<rules::Rule>& rules,
                                     const snapshot::EngineSnapshot& snap) {
  // Workers are quiescent (every public entry point barriers), so shard
  // detectors can be rebuilt from this thread; the next inbox push
  // publishes the new state to the worker.
  BarrierAndDeliver();
  for (std::unique_ptr<Shard>& shard : shards_) {
    RFIDCEP_ASSIGN_OR_RETURN(
        snapshot::RestorePlan plan,
        snapshot::BuildRestorePlan(
            snap, ShardStateKeys(rules, shard->rule_map, *shard->graph),
            shard->graph->NodeStateAliases()));
    if (shard->keyed) {
      // Replicas share one graph: restrict the full plan to the key
      // slice this replica owns (the same hash the router uses).
      FilterPlanToBucket(&plan, replica_partition_syms_, shard->bucket,
                         num_replicas_);
    }
    RFIDCEP_RETURN_IF_ERROR(
        shard->detector->RestoreState(plan, DetectorStats{}));
    shard->current_seq = 0;
    shard->emit_counter = 0;
    shard->first_error = Status::Ok();
    shard->staged.clear();
    shard->pending.clear();
  }
  command_seq_ = 0;
  clock_ = snap.clock;
  observations_ = snap.stats.detector.observations;
  out_of_order_dropped_ = snap.stats.detector.out_of_order_dropped;
  unrouted_ = 0;  // Not serialized (an acceptance-stage diagnostic).
  baseline_ = snap.stats.detector;
  baseline_.observations = 0;
  baseline_.out_of_order_dropped = 0;
  return Status::Ok();
}

// --- Introspection (quiescent callers only) ---------------------------------

DetectorStats ShardedDetector::stats() const {
  DetectorStats total = baseline_;  // Pre-restore totals (zero otherwise).
  total.observations = observations_;
  total.out_of_order_dropped = out_of_order_dropped_;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const DetectorStats& s = shard->detector->stats();
    total.primitive_matches += s.primitive_matches;
    total.instances_produced += s.instances_produced;
    total.pseudo_scheduled += s.pseudo_scheduled;
    total.pseudo_fired += s.pseudo_fired;
    total.rule_matches += s.rule_matches;
  }
  return total;
}

TimePoint ShardedDetector::clock() const {
  TimePoint t = clock_;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    t = std::max(t, shard->detector->clock());
  }
  return t;
}

size_t ShardedDetector::TotalBufferedEntries() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    total += shard->detector->TotalBufferedEntries();
  }
  return total;
}

size_t ShardedDetector::PendingPseudoEvents() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    total += shard->detector->PendingPseudoEvents();
  }
  return total;
}

std::string ShardedDetector::DebugReport(
    const std::vector<rules::Rule>& rules) const {
  std::string out = "sharded engine: " + std::to_string(shards_.size()) +
                    " shards partition=";
  if (data_mode_) {
    out += std::string("data key=") + (object_dim_ ? "object" : "reader") +
           " replicas=" + std::to_string(num_replicas_);
  } else {
    out += "rule";
  }
  out += " clock=" + FormatTimePoint(clock()) +
         " pending_pseudo=" + std::to_string(PendingPseudoEvents()) +
         " buffered=" + std::to_string(TotalBufferedEntries()) +
         " unrouted=" + std::to_string(unrouted_) + "\n";
  for (const std::unique_ptr<Shard>& shard : shards_) {
    out += "shard " + std::to_string(shard->id);
    if (shard->keyed) {
      out += " [replica bucket=" + std::to_string(shard->bucket) + "]";
    } else if (data_mode_) {
      out += " [residual]";
    }
    out += ": rules=[";
    for (size_t i = 0; i < shard->rule_map.size(); ++i) {
      if (i > 0) out += " ";
      out += rules[shard->rule_map[i]].id;
    }
    out += "] clock=" + FormatTimePoint(shard->detector->clock()) +
           " pending_pseudo=" +
           std::to_string(shard->detector->PendingPseudoEvents()) +
           " buffered=" +
           std::to_string(shard->detector->TotalBufferedEntries()) +
           " inbox_depth=" + std::to_string(shard->inbox->size()) + "/" +
           std::to_string(shard->inbox->capacity()) +
           " outbox_depth=" + std::to_string(shard->outbox->size()) + "/" +
           std::to_string(shard->outbox->capacity());
    if (shard->detector->FullscanObservations() > 0) {
      out += " dispatch_fullscan=" +
             std::to_string(shard->detector->FullscanObservations());
    }
    if (shard->routed != nullptr) {
      out += " routed=" + std::to_string(shard->routed->value()) +
             " matches=" + std::to_string(shard->matches_drained->value()) +
             " stalls=" + std::to_string(shard->enqueue_stalls->value()) +
             " inbox_peak=" + std::to_string(shard->inbox_peak->value()) +
             " outbox_peak=" + std::to_string(shard->outbox_peak->value()) +
             " pseudo_peak=" +
             std::to_string(shard->instruments.pseudo_queue_peak->value());
    }
    out += "\n";
    for (const GraphNode& node : shard->graph->nodes()) {
      out += "  #" + std::to_string(node.id) + " " +
             std::string(DetectionModeName(node.mode)) + " produced=" +
             std::to_string(shard->detector->ProducedAt(node.id)) +
             " buffered=" +
             std::to_string(shard->detector->BufferedAt(node.id)) + " " +
             node.canonical_key + "\n";
    }
  }
  return out;
}

}  // namespace rfidcep::engine
