// Structured trace sink: event-instance lifecycles as JSONL.
//
// When attached to an engine (RcedaEngine::SetTraceSink, before
// Compile), the sink receives one JSON object per line for every stage
// of an instance's life:
//
//   {"k":"obs", "seq":N, "reader":..., "object":..., "t":usec}
//   {"k":"unrouted","seq":N,"reader":...,"object":...,"t":usec}
//   {"k":"node","shard":S,"node":ID,"mode":...,"t0":...,"t1":...,
//    "iseq":instance-seq}                      (graph-node activation)
//   {"k":"pseudo","shard":S,"node":ID,"exec":...,"created":...}
//   {"k":"match","rule":...,"t0":...,"t1":...,"fire":...}
//   {"k":"cond","rule":...,"held":true|false}
//   {"k":"action","rule":...,"kind":"sql"|"proc","ok":true|false}
//
// Timestamps are event time in integer microseconds (the engine's
// logical clock), so a trace replayed against the same rule set is
// bit-identical run to run — the point of the format: diff two traces to
// localize where a detection diverged, or feed one to tooling that
// reconstructs per-instance timelines. Records are written in engine
// order; with sharded detection, worker threads serialize through the
// sink's mutex (tracing is a debugging facility — when the sink is
// detached the hot path only tests a null pointer).

#ifndef RFIDCEP_ENGINE_TRACE_H_
#define RFIDCEP_ENGINE_TRACE_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

#include "common/time.h"
#include "events/event_instance.h"
#include "events/observation.h"

namespace rfidcep::engine {

class TraceSink {
 public:
  // Every completed JSONL line (no trailing newline) is passed to
  // `write`; the callback runs under the sink's mutex.
  using WriteFn = std::function<void(std::string_view line)>;

  explicit TraceSink(WriteFn write) : write_(std::move(write)) {}
  // Convenience: append lines to `out` (not owned; must outlive the sink).
  explicit TraceSink(std::ostream* out)
      : TraceSink([out](std::string_view line) {
          out->write(line.data(), static_cast<std::streamsize>(line.size()));
          out->put('\n');
        }) {}

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  void RecordObservation(uint64_t seq, const events::Observation& obs);
  // An observation no shard subscription consumed (sharded routing only):
  // silently dropping it would hide vocabulary/routing bugs, so the drop
  // leaves a record keyed by the same command seq as its "obs" line.
  void RecordUnrouted(uint64_t seq, const events::Observation& obs);
  void RecordNodeActivation(int shard, int node_id, std::string_view mode,
                            const events::EventInstance& instance);
  void RecordPseudoFired(int shard, int node_id, TimePoint execute_at,
                         TimePoint created_at);
  void RecordMatch(std::string_view rule_id,
                   const events::EventInstance& instance, TimePoint fire_time);
  void RecordCondition(std::string_view rule_id, bool held);
  void RecordAction(std::string_view rule_id, std::string_view kind, bool ok);
  // Checkpoint / restore marker: `op` is "checkpoint" or "restore",
  // `bytes` the encoded snapshot size, `clock` the capture clock,
  // `shards` the detector source count (1 = serial).
  void RecordSnapshot(std::string_view op, uint64_t bytes, TimePoint clock,
                      int shards);

  uint64_t records() const;

  // JSON string escaping for the fields above (exposed for tests).
  static std::string EscapeJson(std::string_view s);

 private:
  void Write(std::string line);

  mutable std::mutex mu_;
  WriteFn write_;
  uint64_t records_ = 0;
};

}  // namespace rfidcep::engine

#endif  // RFIDCEP_ENGINE_TRACE_H_
