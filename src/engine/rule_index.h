// Compiled primitive dispatch: a vocabulary-inverted index from
// (reader literal / reader group, pushed type(o) constraint) to the
// candidate leaf nodes, replacing the per-bucket leaf scan so per-event
// dispatch cost tracks the rules an observation can actually affect.
//
// Key choice matches EventGraph::ComputeSubscription (and the legacy
// dispatch map): a leaf is bucketed under its reader literal if it has
// one, else under its group constraint, else it is unkeyed. An
// observation probes bucket[obs.reader], then bucket[group(obs.reader)]
// (if different), then the unkeyed bucket — the same probe order as the
// legacy scan, and entries carry canonical ranks so a probe visits
// candidates in exactly the canonical-key order the scan would have.
//
// With predicate pushdown, leaves carrying a type(o)='T' constraint are
// further keyed by T inside their bucket: type(obs.object) is resolved
// once per observation (allocation-free Environment::TypeViewOf) and
// selects the sub-bucket, instead of each subscribed leaf re-resolving
// it inside Matches(). The probe itself then implies the reader-literal
// and type predicates; what remains per candidate are cheap residual
// view comparisons (object literal, group constraint reached through
// the raw-reader probe).

#ifndef RFIDCEP_ENGINE_RULE_INDEX_H_
#define RFIDCEP_ENGINE_RULE_INDEX_H_

#include <string_view>
#include <vector>

#include "common/strings.h"
#include "engine/graph.h"

namespace rfidcep::engine {

// One candidate leaf inside a dispatch bucket.
struct DispatchEntry {
  int node_id = -1;
  // Position of this leaf in the full canonical-key ordering of its
  // bucket (typed and untyped entries together), so a probe can merge
  // the two lists back into legacy emission order.
  int rank = 0;
  // Residual predicates the probe does not imply. Views alias the
  // graph's PrimitiveEventType storage (the graph outlives the index).
  bool check_group = false;       // group(obs.reader) == `group`.
  std::string_view group;
  bool check_object = false;      // obs.object == `object_literal`.
  std::string_view object_literal;
  // Without pushdown the entry may still carry a type constraint; the
  // probe then falls back to the full Matches() predicate.
  bool needs_full_match = false;
};

class PrimitiveIndex {
 public:
  struct Bucket {
    // type constraint value -> candidates (predicate pushdown only).
    StringViewMap<std::vector<DispatchEntry>> by_type;
    // Candidates with no pushed type predicate, in rank order.
    std::vector<DispatchEntry> untyped;
  };

  // Builds the index over `graph`'s leaves. With `predicate_pushdown`,
  // type constraints key sub-buckets; otherwise every entry is untyped
  // and evaluated with the full Matches() predicate.
  PrimitiveIndex(const EventGraph& graph, bool predicate_pushdown);

  // No leaf constrains the reader, its group, or (pushed) its type:
  // every observation visits every leaf, i.e. dispatch degenerates to a
  // full scan. Surfaced so the detector can count it instead of
  // silently degrading.
  bool fullscan_fallback() const { return fullscan_fallback_; }

  // Whether any bucket has typed sub-buckets (the probe only resolves
  // type(obs.object) when it does).
  bool has_typed_entries() const { return has_typed_entries_; }

  // The bucket for a reader literal / group key, or nullptr.
  const Bucket* FindReaderBucket(std::string_view key) const {
    auto it = by_reader_.find(key);
    return it != by_reader_.end() ? &it->second : nullptr;
  }

  // Leaves with neither a reader literal nor a group constraint.
  const Bucket& unkeyed() const { return unkeyed_; }

  // Visits `bucket`'s candidates for an observation whose resolved
  // type(o) is `type_view`, in canonical (rank) order.
  template <typename Fn>
  static void Probe(const Bucket& bucket, std::string_view type_view,
                    Fn&& fn) {
    const std::vector<DispatchEntry>* typed = nullptr;
    if (!bucket.by_type.empty()) {
      if (auto it = bucket.by_type.find(type_view);
          it != bucket.by_type.end()) {
        typed = &it->second;
      }
    }
    if (typed == nullptr) {
      for (const DispatchEntry& entry : bucket.untyped) fn(entry);
      return;
    }
    size_t i = 0, j = 0;
    while (i < typed->size() && j < bucket.untyped.size()) {
      if ((*typed)[i].rank < bucket.untyped[j].rank) {
        fn((*typed)[i++]);
      } else {
        fn(bucket.untyped[j++]);
      }
    }
    while (i < typed->size()) fn((*typed)[i++]);
    while (j < bucket.untyped.size()) fn(bucket.untyped[j++]);
  }

 private:
  void AddBucket(Bucket* bucket, const EventGraph& graph,
                 std::vector<int> node_ids, bool predicate_pushdown);

  StringViewMap<Bucket> by_reader_;
  Bucket unkeyed_;
  bool fullscan_fallback_ = false;
  bool has_typed_entries_ = false;
};

}  // namespace rfidcep::engine

#endif  // RFIDCEP_ENGINE_RULE_INDEX_H_
