// Reference semantics interpreter — the executable oracle for the
// detection engine (see docs/semantics.md).
//
// This is a deliberately naive implementation of the paper's §2 event
// model: every constructor is evaluated directly from its definition over
// plain, never-pruned vectors. Where the production Detector maintains
// hash-bucketed slot buffers with deadline GC, interned join keys, a NOT
// log with retention pruning, and a pseudo-event priority queue, the
// reference interpreter keeps
//
//   * full unconsumed-instance lists per binary slot (consumption is a
//     flag, never an erase),
//   * the complete occurrence log of every negated subevent (window
//     queries are literal linear scans over the whole history),
//   * chronicle selection by explicit sort over every admissible
//     candidate (paper §4.2: oldest initiator, oldest terminator),
//   * deferred completions (non-spontaneous NOT / SEQ+ expiries, §4.5) in
//     a flat list scanned for the minimum on every firing.
//
// O(n²) per constructor is the point: none of the detector's indexing,
// expiry bookkeeping, or anchor-consumption shortcuts exist here, so any
// boundary off-by-one in those optimizations shows up as a divergence in
// the differential fuzz harness (tests/property/differential_fuzz_test.cc).
//
// The interpreter shares the engine's committed boundary conventions
// (closed [τl, τu] distance bounds, closed WITHIN, pseudo events fire only
// once the stream strictly passes their execution time — docs/semantics.md
// has the full table). Feed it the *compiled* expression form
// (EventGraph::RuleExpr) so oracle and detector evaluate the same
// normalized tree.

#ifndef RFIDCEP_ENGINE_REFERENCE_REFERENCE_INTERPRETER_H_
#define RFIDCEP_ENGINE_REFERENCE_REFERENCE_INTERPRETER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/time.h"
#include "engine/context.h"
#include "events/event_instance.h"
#include "events/event_type.h"
#include "events/expr.h"
#include "events/observation.h"

namespace rfidcep::engine::reference {

struct ReferenceOptions {
  // Only kChronicle and kUnrestricted are implemented (the paper default
  // and the exhaustive baseline); Run() fails on the others.
  ParameterContext context = ParameterContext::kChronicle;
  // Mirrors DetectorOptions: observations older than the stream clock are
  // silently dropped when set; Run() fails on them otherwise.
  bool tolerate_out_of_order = false;
};

class ReferenceInterpreter {
 public:
  // `root` is one rule's event expression, ideally the compiled form from
  // EventGraph::RuleExpr (interval constraints are (re-)propagated here,
  // which is idempotent). `env` must outlive the interpreter.
  ReferenceInterpreter(const events::EventExprPtr& root,
                       const events::Environment* env,
                       ReferenceOptions options = {});
  ~ReferenceInterpreter();

  ReferenceInterpreter(const ReferenceInterpreter&) = delete;
  ReferenceInterpreter& operator=(const ReferenceInterpreter&) = delete;

  // Evaluates the whole stream (end-of-stream flush included) and returns
  // every completion of the root expression in emission order. Resets all
  // runtime state first, so Run may be called repeatedly.
  std::vector<events::EventInstancePtr> Run(
      const std::vector<events::Observation>& stream);

 private:
  struct Node;

  Node* Build(const events::EventExpr& expr);
  void ResetState();
  void DispatchLeaves(const events::Observation& obs);
  void Deliver(Node* node, events::EventInstancePtr inst);
  void Arrival(Node* parent, const Node* child,
               const events::EventInstancePtr& inst);
  void AndArrival(Node* node, int slot, const events::EventInstancePtr& e);
  void SeqInitiatorArrival(Node* node, const events::EventInstancePtr& e1);
  void SeqTerminatorArrival(Node* node, const events::EventInstancePtr& e2);
  void SeqPlusArrival(Node* node, const events::EventInstancePtr& e);
  void MaterializeRun(Node* node, bool force, bool include_now);
  void CloseRun(Node* node);
  bool PairNaive(Node* node, int incoming_slot,
                 const events::EventInstancePtr& incoming);
  void ProducePair(Node* node, const events::EventInstancePtr& initiator,
                   const events::EventInstancePtr& terminator);
  bool HasOccurrence(const Node* not_node, const events::Bindings& probe,
                     TimePoint from, TimePoint to, bool include_from,
                     bool include_to) const;

  struct Check {
    TimePoint at = 0;
    uint64_t order = 0;  // FIFO tie-break at equal times.
    Node* node = nullptr;
    // Anchored NOT completions carry their anchor; null for SEQ+ expiry.
    events::EventInstancePtr anchor;
  };
  void ScheduleCheck(TimePoint at, Node* node,
                     events::EventInstancePtr anchor);
  void FireChecksBefore(TimePoint t);
  void FlushChecks();
  void FireCheck(Check check);

  uint64_t NextSeq() { return ++sequence_counter_; }

  const events::Environment* env_;
  ReferenceOptions options_;
  std::vector<std::unique_ptr<Node>> nodes_;  // Creation (post-)order.
  std::unordered_map<std::string, Node*> interned_;  // By canonical key.
  Node* root_ = nullptr;
  std::vector<Node*> leaves_;  // Creation order, mirrors graph dispatch.

  std::vector<Check> pending_;  // Unordered; firing scans for the minimum.
  std::vector<events::EventInstancePtr> results_;
  TimePoint clock_ = 0;
  uint64_t sequence_counter_ = 0;
  uint64_t check_counter_ = 0;
};

}  // namespace rfidcep::engine::reference

#endif  // RFIDCEP_ENGINE_REFERENCE_REFERENCE_INTERPRETER_H_
