#include "engine/reference/reference_interpreter.h"

#include <algorithm>
#include <cassert>

#include "engine/graph.h"

namespace rfidcep::engine::reference {

using events::Bindings;
using events::EventExpr;
using events::EventExprPtr;
using events::EventInstance;
using events::EventInstancePtr;
using events::ExprOp;
using events::Observation;

// Per-node runtime state. Nothing here is ever garbage-collected: slots
// remember every instance (consumption is a flag), NOT logs keep the full
// occurrence history, and admissibility recomputes deadlines from the
// node's constraints on every probe.
struct ReferenceInterpreter::Node {
  ExprOp op = ExprOp::kPrimitive;
  events::PrimitiveEventType primitive;
  Duration dist_lo = 0;
  Duration dist_hi = kDurationInfinity;
  Duration within = kDurationInfinity;
  std::string canonical_key;
  std::vector<Node*> children;
  std::vector<Node*> parents;  // Deduped, creation order.
  bool is_root = false;
  // SEQ+ self-closure: the run must expire on its own unless every parent
  // consumes it as a SEQ initiator (then the terminator materializes it).
  bool seqplus_self = false;

  struct Held {
    EventInstancePtr inst;
    bool consumed = false;
  };
  std::vector<Held> slots[2];            // AND both, SEQ slot 0.
  std::vector<EventInstancePtr> not_log;  // NOT: full child history.
  bool run_open = false;                  // SEQ+.
  std::vector<EventInstancePtr> run_elems;
  Bindings run_bindings;
  TimePoint run_begin = 0;
  TimePoint run_end = 0;
};

ReferenceInterpreter::ReferenceInterpreter(const EventExprPtr& root,
                                           const events::Environment* env,
                                           ReferenceOptions options)
    : env_(env), options_(options) {
  assert((options_.context == ParameterContext::kChronicle ||
          options_.context == ParameterContext::kUnrestricted) &&
         "reference interpreter implements chronicle and unrestricted only");
  // Idempotent for already-compiled expressions (EventGraph::RuleExpr).
  EventExprPtr propagated = PropagateIntervalConstraints(root);
  root_ = Build(*propagated);
  root_->is_root = true;
  // Leaves dispatch in canonical-key order, mirroring the detector's
  // compilation-invariant bucket order.
  std::sort(leaves_.begin(), leaves_.end(), [](const Node* a, const Node* b) {
    return a->canonical_key < b->canonical_key;
  });
  for (const std::unique_ptr<Node>& node : nodes_) {
    if (node->op != ExprOp::kSeqPlus) continue;
    bool self = node->is_root || node->parents.empty();
    for (const Node* parent : node->parents) {
      // A SEQ terminator drives materialization only when it arrives; a
      // negated terminator never does (mirrors the detector's rule).
      if (parent->op != ExprOp::kSeq || parent->children[0] != node.get() ||
          parent->children[1]->op == ExprOp::kNot) {
        self = true;
      }
    }
    node->seqplus_self = self;
  }
}

ReferenceInterpreter::~ReferenceInterpreter() = default;

// Hash-consing by canonical key mirrors the graph compiler: a rule using
// the same subevent twice (duplicate filter) gets one shared node whose
// arrivals play every role, in the same slot order as the detector.
ReferenceInterpreter::Node* ReferenceInterpreter::Build(
    const EventExpr& expr) {
  std::string key = expr.CanonicalKey();
  // SEQ+ occurrences are never shared (mirrors the graph compiler): run
  // state reacts to the parent SEQ's terminator, so each parent needs a
  // private copy.
  bool shareable = expr.op() != ExprOp::kSeqPlus;
  if (shareable) {
    if (auto it = interned_.find(key); it != interned_.end()) {
      return it->second;
    }
  }
  std::vector<Node*> children;
  children.reserve(expr.children().size());
  for (const EventExprPtr& child : expr.children()) {
    children.push_back(Build(*child));
  }
  nodes_.push_back(std::make_unique<Node>());
  Node* node = nodes_.back().get();
  node->op = expr.op();
  node->primitive = expr.primitive();
  node->dist_lo = expr.dist_lo();
  node->dist_hi = expr.dist_hi();
  node->within = expr.within();
  node->canonical_key = key;
  node->children = std::move(children);
  for (Node* child : node->children) {
    auto& parents = child->parents;
    if (std::find(parents.begin(), parents.end(), node) == parents.end()) {
      parents.push_back(node);
    }
  }
  if (node->op == ExprOp::kPrimitive) leaves_.push_back(node);
  if (shareable) interned_.emplace(std::move(key), node);
  return node;
}

void ReferenceInterpreter::ResetState() {
  for (const std::unique_ptr<Node>& node : nodes_) {
    node->slots[0].clear();
    node->slots[1].clear();
    node->not_log.clear();
    node->run_open = false;
    node->run_elems.clear();
    node->run_bindings = Bindings();
    node->run_begin = 0;
    node->run_end = 0;
  }
  pending_.clear();
  results_.clear();
  clock_ = 0;
  sequence_counter_ = 0;
  check_counter_ = 0;
}

std::vector<EventInstancePtr> ReferenceInterpreter::Run(
    const std::vector<Observation>& stream) {
  ResetState();
  for (const Observation& obs : stream) {
    if (obs.timestamp < clock_) {
      assert(options_.tolerate_out_of_order &&
             "out-of-order stream fed to the reference interpreter");
      continue;  // Mirrors the detector's tolerate_out_of_order drop.
    }
    // Pseudo completions fire only once the stream strictly passes their
    // execution time: an observation AT the boundary instant is processed
    // first (it may falsify a NOT window or extend a SEQ+ run).
    FireChecksBefore(obs.timestamp);
    clock_ = obs.timestamp;
    DispatchLeaves(obs);
  }
  FlushChecks();
  return std::move(results_);
}

void ReferenceInterpreter::DispatchLeaves(const Observation& obs) {
  // Mirror the detector's dispatch order: leaves keyed by the exact
  // reader, then leaves keyed by the reader's group, then unkeyed leaves —
  // each class in node-creation order.
  auto leaf_key = [](const Node* leaf) -> const std::string* {
    if (leaf->primitive.reader().is_literal) {
      return &leaf->primitive.reader().text;
    }
    if (leaf->primitive.group_constraint().has_value()) {
      return &*leaf->primitive.group_constraint();
    }
    return nullptr;
  };
  auto dispatch_to = [&](const Node* match_leaf) {
    for (Node* leaf : leaves_) {
      if (leaf != match_leaf) continue;
      if (!leaf->primitive.Matches(obs, *env_)) continue;
      Bindings bindings = leaf->primitive.Bind(obs);
      if (leaf->primitive.reader_location_sym() != events::kInvalidSymbol &&
          env_->readers != nullptr) {
        std::string_view location = env_->readers->LocationViewOf(obs.reader);
        if (!location.empty()) {
          bindings.BindScalar(leaf->primitive.reader_location_sym(),
                              std::string(location));
        }
      }
      Deliver(leaf, EventInstance::MakePrimitive(obs, std::move(bindings),
                                                 NextSeq()));
    }
  };
  std::string_view group = env_->GroupViewOf(obs.reader);
  for (Node* leaf : leaves_) {
    const std::string* key = leaf_key(leaf);
    if (key != nullptr && *key == obs.reader) dispatch_to(leaf);
  }
  if (group != obs.reader) {
    for (Node* leaf : leaves_) {
      const std::string* key = leaf_key(leaf);
      if (key != nullptr && *key == group) dispatch_to(leaf);
    }
  }
  for (Node* leaf : leaves_) {
    if (leaf_key(leaf) == nullptr) dispatch_to(leaf);
  }
}

void ReferenceInterpreter::Deliver(Node* node, EventInstancePtr inst) {
  // WITHIN is an interval constraint on the node itself (§4.3): an
  // instance whose interval exceeds it is not an occurrence. Closed bound:
  // interval == within passes.
  if (node->within != kDurationInfinity &&
      inst->interval() > node->within) {
    return;
  }
  if (node->is_root) results_.push_back(inst);
  for (Node* parent : node->parents) {
    Arrival(parent, node, inst);
  }
}

void ReferenceInterpreter::Arrival(Node* parent, const Node* child,
                                   const EventInstancePtr& inst) {
  switch (parent->op) {
    case ExprOp::kPrimitive:
      assert(false && "primitive nodes have no children");
      return;
    case ExprOp::kOr:
      Deliver(parent, inst);
      return;
    case ExprOp::kNot:
      parent->not_log.push_back(inst);
      return;
    case ExprOp::kSeqPlus:
      SeqPlusArrival(parent, inst);
      return;
    case ExprOp::kAnd:
      for (int slot = 0; slot < 2; ++slot) {
        if (parent->children[slot] == child) AndArrival(parent, slot, inst);
      }
      return;
    case ExprOp::kSeq:
      // Terminator role first, then initiator (an instance serving both
      // roles pairs with a strictly older occurrence before becoming an
      // initiator itself) — same order as the detector's RouteToParent.
      if (parent->children[1] == child) SeqTerminatorArrival(parent, inst);
      if (parent->children[0] == child) SeqInitiatorArrival(parent, inst);
      return;
  }
}

// --- AND ---------------------------------------------------------------------

void ReferenceInterpreter::AndArrival(Node* node, int slot,
                                      const EventInstancePtr& e) {
  Node* other = node->children[1 - slot];
  if (other->op == ExprOp::kNot) {
    // WITHIN(E ∧ ¬N, w): N must not occur anywhere in the closed window
    // [t_end(e) − w, t_begin(e) + w] (that is exactly the set of instants
    // an N occurrence could pair with `e` under CombinedInterval <= w).
    // The past half is decidable now; the future half at t_begin(e) + w.
    Duration w = node->within;  // Finite (graph validation).
    if (HasOccurrence(other, e->bindings(), e->t_end() - w, e->t_end(),
                      /*include_from=*/true, /*include_to=*/true)) {
      return;
    }
    ScheduleCheck(AddSaturating(e->t_begin(), w), node, e);
    return;
  }
  bool paired = PairNaive(node, slot, e);
  bool buffer = !paired;
  if (options_.context == ParameterContext::kUnrestricted) buffer = true;
  if (buffer) node->slots[slot].push_back({e, false});
}

// --- SEQ ---------------------------------------------------------------------

void ReferenceInterpreter::SeqInitiatorArrival(Node* node,
                                               const EventInstancePtr& e1) {
  Node* right = node->children[1];
  if (right->op == ExprOp::kNot) {
    // SEQ(a ; ¬b): confirmed at expiry if no negated occurrence strictly
    // follows a within the bounded window.
    TimePoint expiry = std::min(AddSaturating(e1->t_begin(), node->within),
                                AddSaturating(e1->t_end(), node->dist_hi));
    ScheduleCheck(expiry, node, e1);
    return;
  }
  node->slots[0].push_back({e1, false});
}

void ReferenceInterpreter::SeqTerminatorArrival(Node* node,
                                                const EventInstancePtr& e2) {
  Node* left = node->children[0];
  if (left->op == ExprOp::kNot) {
    // WITHIN(¬a ; b, w): non-occurrence of `a` over the half-open window
    // [t_end(b) − width, t_begin(b)) — b itself does not falsify it.
    Duration width = std::min(node->within, node->dist_hi);
    TimePoint from = e2->t_end() - width;
    TimePoint to = e2->t_begin();
    if (!HasOccurrence(left, e2->bindings(), from, to,
                       /*include_from=*/true, /*include_to=*/false)) {
      EventInstancePtr synth =
          EventInstance::MakeComplex(from, to, Bindings(), {}, NextSeq());
      EventInstancePtr inst = EventInstance::MakeComplex(
          from, e2->t_end(), e2->bindings(), {std::move(synth), e2},
          NextSeq());
      Deliver(node, std::move(inst));
    }
    return;
  }
  if (left->op == ExprOp::kSeqPlus) {
    // A fully unbounded SEQ+ is closed by its sequence terminator (Snoop
    // A* semantics); bounded runs only close once expired.
    bool force = left->dist_hi == kDurationInfinity &&
                 left->within == kDurationInfinity;
    MaterializeRun(left, force, /*include_now=*/false);
  }
  PairNaive(node, 1, e2);
}

// --- Pairing -----------------------------------------------------------------

bool ReferenceInterpreter::PairNaive(Node* node, int incoming_slot,
                                     const EventInstancePtr& incoming) {
  std::vector<Node::Held>& buffer = node->slots[1 - incoming_slot];

  // An initiator stays pairable until the stream clock passes its
  // deadline: min(t_begin + within, t_end + dist_hi), both bounds closed
  // (clock == deadline still pairs). An initiator the clock has
  // invalidated is consumed — it is never retried against a later
  // terminator, exactly like the detector's pruned buffers.
  auto deadline = [&](const EventInstancePtr& inst) {
    TimePoint d = AddSaturating(inst->t_begin(), node->within);
    if (node->op == ExprOp::kSeq) {
      d = std::min(d, AddSaturating(inst->t_end(), node->dist_hi));
    }
    return d;
  };
  auto admissible = [&](const EventInstancePtr& cand) {
    if (node->op == ExprOp::kSeq) {
      // Strict sequence: the initiator ends before the terminator begins,
      // with dist in the closed [dist_lo, dist_hi].
      if (cand->t_end() >= incoming->t_begin()) return false;
      Duration d = incoming->t_end() - cand->t_end();
      if (d < node->dist_lo || d > node->dist_hi) return false;
    }
    if (node->within != kDurationInfinity &&
        events::CombinedInterval(*cand, *incoming) > node->within) {
      return false;
    }
    return cand->bindings().UnifiesWith(incoming->bindings());
  };

  std::vector<Node::Held*> candidates;
  for (Node::Held& held : buffer) {
    if (held.consumed && options_.context == ParameterContext::kChronicle) {
      continue;
    }
    if (deadline(held.inst) < clock_) continue;
    if (!admissible(held.inst)) continue;
    candidates.push_back(&held);
  }
  if (candidates.empty()) return false;
  // Chronicle selection by explicit sort: oldest (by arrival sequence)
  // admissible candidate wins.
  std::sort(candidates.begin(), candidates.end(),
            [](const Node::Held* a, const Node::Held* b) {
              return a->inst->sequence_number() < b->inst->sequence_number();
            });
  if (options_.context == ParameterContext::kChronicle) {
    candidates.front()->consumed = true;
    ProducePair(node, candidates.front()->inst, incoming);
    return true;
  }
  // Unrestricted: every admissible combination, nothing consumed.
  for (Node::Held* held : candidates) {
    ProducePair(node, held->inst, incoming);
  }
  return true;
}

void ReferenceInterpreter::ProducePair(Node* node,
                                       const EventInstancePtr& initiator,
                                       const EventInstancePtr& terminator) {
  TimePoint t_begin = std::min(initiator->t_begin(), terminator->t_begin());
  TimePoint t_end = std::max(initiator->t_end(), terminator->t_end());
  Bindings merged = initiator->bindings();
  bool ok = merged.Merge(terminator->bindings());
  assert(ok && "admissibility verified unification");
  (void)ok;
  std::vector<EventInstancePtr> children;
  if (initiator->t_begin() <= terminator->t_begin()) {
    children = {initiator, terminator};
  } else {
    children = {terminator, initiator};
  }
  Deliver(node, EventInstance::MakeComplex(t_begin, t_end, std::move(merged),
                                           std::move(children), NextSeq()));
}

// --- SEQ+ --------------------------------------------------------------------

void ReferenceInterpreter::SeqPlusArrival(Node* node,
                                          const EventInstancePtr& e) {
  bool extended = false;
  if (node->run_open) {
    Duration d = e->t_end() - node->run_end;
    bool fits_dist = d >= node->dist_lo && d <= node->dist_hi;
    bool fits_within = node->within == kDurationInfinity ||
                       e->t_end() - node->run_begin <= node->within;
    if (fits_dist && fits_within) {
      node->run_elems.push_back(e);
      node->run_bindings.Merge(e->bindings().ToMulti());
      node->run_end = e->t_end();
      extended = true;
    } else {
      CloseRun(node);
    }
  }
  if (!extended) {
    node->run_open = true;
    node->run_elems = {e};
    node->run_bindings = e->bindings().ToMulti();
    node->run_begin = e->t_begin();
    node->run_end = e->t_end();
  }
  if (node->seqplus_self) {
    TimePoint expiry = std::min(AddSaturating(node->run_end, node->dist_hi),
                                AddSaturating(node->run_begin, node->within));
    ScheduleCheck(expiry, node, nullptr);
  }
}

void ReferenceInterpreter::MaterializeRun(Node* node, bool force,
                                          bool include_now) {
  if (!node->run_open) return;
  // Closed extension bound: an element AT t_end + dist_hi still extends
  // the run. A terminator arriving at exactly the expiry therefore must
  // not close it (include_now=false) — an element in the same dispatch
  // round may yet extend it. The scheduled-check path fires only once the
  // stream strictly passed the expiry, so there clock_ == expiry is dead.
  TimePoint expiry = std::min(AddSaturating(node->run_end, node->dist_hi),
                              AddSaturating(node->run_begin, node->within));
  bool expired = include_now ? expiry <= clock_ : expiry < clock_;
  if (force || expired) CloseRun(node);
}

void ReferenceInterpreter::CloseRun(Node* node) {
  node->run_open = false;
  EventInstancePtr inst = EventInstance::MakeComplex(
      node->run_begin, node->run_end, std::move(node->run_bindings),
      std::move(node->run_elems), NextSeq());
  node->run_elems.clear();
  node->run_bindings = Bindings();
  Deliver(node, std::move(inst));
}

// --- NOT ---------------------------------------------------------------------

bool ReferenceInterpreter::HasOccurrence(const Node* not_node,
                                         const Bindings& probe,
                                         TimePoint from, TimePoint to,
                                         bool include_from,
                                         bool include_to) const {
  // Literal definition over the complete, never-pruned history.
  for (const EventInstancePtr& inst : not_node->not_log) {
    TimePoint t = inst->t_end();
    bool after_from = include_from ? t >= from : t > from;
    bool before_to = include_to ? t <= to : t < to;
    if (after_from && before_to && probe.UnifiesWith(inst->bindings())) {
      return true;
    }
  }
  return false;
}

// --- Deferred completions ----------------------------------------------------

void ReferenceInterpreter::ScheduleCheck(TimePoint at, Node* node,
                                         EventInstancePtr anchor) {
  if (at == kTimeInfinity) return;
  pending_.push_back(Check{at, ++check_counter_, node, std::move(anchor)});
}

void ReferenceInterpreter::FireChecksBefore(TimePoint t) {
  for (;;) {
    size_t best = pending_.size();
    for (size_t i = 0; i < pending_.size(); ++i) {
      if (pending_[i].at >= t) continue;
      if (best == pending_.size() || pending_[i].at < pending_[best].at ||
          (pending_[i].at == pending_[best].at &&
           pending_[i].order < pending_[best].order)) {
        best = i;
      }
    }
    if (best == pending_.size()) return;
    Check check = std::move(pending_[best]);
    pending_.erase(pending_.begin() + static_cast<long>(best));
    FireCheck(std::move(check));
  }
}

void ReferenceInterpreter::FlushChecks() {
  while (!pending_.empty()) {
    size_t best = 0;
    for (size_t i = 1; i < pending_.size(); ++i) {
      if (pending_[i].at < pending_[best].at ||
          (pending_[i].at == pending_[best].at &&
           pending_[i].order < pending_[best].order)) {
        best = i;
      }
    }
    Check check = std::move(pending_[best]);
    pending_.erase(pending_.begin() + static_cast<long>(best));
    FireCheck(std::move(check));
  }
}

void ReferenceInterpreter::FireCheck(Check check) {
  clock_ = std::max(clock_, check.at);
  Node* node = check.node;
  if (node->op == ExprOp::kSeqPlus) {
    MaterializeRun(node, /*force=*/false, /*include_now=*/true);
    return;
  }
  // Anchored NOT completion (AND or SEQ with a negated side). Each anchor
  // is checked exactly once; a falsified anchor is simply dead (Fig. 8d).
  Node* not_child = node->children[0]->op == ExprOp::kNot
                        ? node->children[0]
                        : node->children[1];
  assert(not_child->op == ExprOp::kNot);
  TimePoint created = check.anchor->t_end();
  // AND re-checks its own instant (an occurrence at exactly t_end pairs);
  // SEQ requires the negated occurrence to strictly follow the anchor.
  bool include_from = node->op == ExprOp::kAnd;
  if (HasOccurrence(not_child, check.anchor->bindings(), created, check.at,
                    include_from, /*include_to=*/true)) {
    return;
  }
  EventInstancePtr synth = EventInstance::MakeComplex(
      created, check.at, Bindings(), {}, NextSeq());
  EventInstancePtr inst = EventInstance::MakeComplex(
      check.anchor->t_begin(), check.at, check.anchor->bindings(),
      {check.anchor, std::move(synth)}, NextSeq());
  Deliver(node, std::move(inst));
}

}  // namespace rfidcep::engine::reference
