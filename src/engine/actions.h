// Rule firing and action dispatch.
//
// When a rule's event completes and its IF-condition holds, the engine
// executes the rule's DO-actions in order: SQL statements run against the
// RFID data store with the match's bindings as parameters; named
// procedures call back into the application (e.g. `send alarm`). The
// paper notes RFID rule actions neither inject new primitive events nor
// cascade rule firings — dispatch is therefore a terminal step.

#ifndef RFIDCEP_ENGINE_ACTIONS_H_
#define RFIDCEP_ENGINE_ACTIONS_H_

#include <functional>
#include <string>
#include <unordered_map>

#include "common/metrics.h"
#include "common/status.h"
#include "events/event_instance.h"
#include "rules/rule.h"
#include "store/database.h"
#include "store/sql_executor.h"
#include "store/wal.h"

namespace rfidcep::engine {

class TraceSink;

// Registry instrument handles for action dispatch; resolved by the
// engine at compile time. All fields are non-null when the struct is
// attached (SetObservability).
struct ActionInstruments {
  common::Counter* sql_actions = nullptr;
  common::Counter* rows_written = nullptr;  // Store rows touched by SQL.
  common::Counter* procedures = nullptr;
  common::Counter* unknown_procedures = nullptr;
  common::Counter* deduped = nullptr;  // WAL-deduplicated skips (recovery).
};

struct RuleFiring {
  const rules::Rule* rule = nullptr;
  events::EventInstancePtr instance;
  store::ParamMap params;   // Bindings of the match, as SQL parameters.
  TimePoint fire_time = 0;  // Engine clock at detection.
  // Engine-wide firing sequence number, deterministic across shard
  // layouts (assigned in canonical replay order). Dedup key half for
  // exactly-once effects when a WAL is attached.
  uint64_t seq = 0;
  // True for firings re-enqueued from a restored snapshot's pending
  // action queue: the original event instance is gone, so a procedure
  // whose WAL frame was lost is credited but not re-invoked (see
  // docs/recovery.md "Exactly-once effects").
  bool replayed = false;
};

// A user procedure invoked by a DO-action. `args` is the raw text between
// the action's parentheses (may be empty).
using Procedure =
    std::function<void(const RuleFiring& firing, const std::string& args)>;

// Converts an instance's variable bindings into SQL parameters: scalar
// string/time bindings become scalar params, multi-valued bindings become
// multi params (usable only in BULK INSERT).
store::ParamMap BuildParams(const events::Bindings& bindings);

class ActionDispatcher {
 public:
  // `db` may be null if no rule uses SQL actions.
  explicit ActionDispatcher(store::Database* db) : db_(db) {}

  // Registers (or replaces) the handler for procedure `name` (matched
  // case-insensitively, whitespace-normalized).
  void RegisterProcedure(std::string_view name, Procedure procedure);

  // Attaches a write-ahead log: every successfully executed action —
  // SQL statements and procedure/alarm invocations alike — is appended
  // to it, and actions whose (rule, seq, index) key already appears in
  // the recovered log are skipped with their counters credited
  // (exactly-once across restore). The WAL must outlive the dispatcher.
  void AttachWal(store::Wal* wal);
  store::Wal* wal() const { return wal_; }

  // Runs every action of `firing.rule`. Returns the first error but still
  // attempts the remaining actions. Unregistered procedures are counted,
  // not errors (so examples can omit handlers).
  Status Dispatch(const RuleFiring& firing);

  // Counters are *logical*: a WAL-deduplicated skip counts as executed
  // (its effect is already in the recovered store), so an uninterrupted
  // run and a crash+restore run converge on identical totals.
  uint64_t sql_actions_executed() const { return sql_actions_executed_; }
  uint64_t procedures_invoked() const { return procedures_invoked_; }
  uint64_t unknown_procedures() const { return unknown_procedures_; }
  uint64_t actions_deduped() const { return actions_deduped_; }
  uint64_t rows_written() const { return rows_written_; }

  // Attaches (or detaches, with nulls) metrics and tracing. Both
  // pointers must outlive the dispatcher; the disabled path is a branch
  // on a null pointer.
  void SetObservability(const ActionInstruments* instruments,
                        TraceSink* trace) {
    instruments_ = instruments;
    trace_ = trace;
  }

 private:
  static std::string NormalizeName(std::string_view name);

  store::Database* db_;
  std::unordered_map<std::string, Procedure> procedures_;
  const ActionInstruments* instruments_ = nullptr;
  TraceSink* trace_ = nullptr;
  store::Wal* wal_ = nullptr;
  store::WalActionMap executed_;  // Dedup map recovered from the WAL.
  uint64_t sql_actions_executed_ = 0;
  uint64_t procedures_invoked_ = 0;
  uint64_t unknown_procedures_ = 0;
  uint64_t actions_deduped_ = 0;
  uint64_t rows_written_ = 0;
};

}  // namespace rfidcep::engine

#endif  // RFIDCEP_ENGINE_ACTIONS_H_
