#include "engine/rewrite.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/time.h"

namespace rfidcep::engine {

using events::EventExpr;
using events::EventExprPtr;
using events::ExprOp;
using events::PrimitiveEventType;
using events::Term;

namespace {

// ---------------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------------

const std::vector<RewriteIdentity>& Catalog() {
  static const std::vector<RewriteIdentity> kCatalog = {
      // --- Operand reordering ------------------------------------------------
      {"and-perm", "and-perm", /*order_preserving=*/false, /*active=*/true,
       "op == AND. AND is symmetric (both arrival slots run the same "
       "pairing/negation logic), but operand order feeds canonical leaf "
       "dispatch, so two matches completing on the same observation can swap "
       "emission positions: multiset equality only."},
      {"or-perm", "or-perm", /*order_preserving=*/true, /*active=*/true,
       "op == OR with >= 2 children. OR children propagate matches "
       "independently; emission order is driven by constituent arrival, not "
       "operand position."},
      {"or-assoc-l", "or-assoc-r", /*order_preserving=*/true, /*active=*/true,
       "OR(a, OR(b, c)) -> OR(OR(a, b), c): both ORs binary and the inner OR "
       "imposes no extra interval constraint (inner.within == outer.within "
       "after propagation)."},
      {"or-assoc-r", "or-assoc-l", /*order_preserving=*/true, /*active=*/true,
       "OR(OR(a, b), c) -> OR(a, OR(b, c)): mirror of or-assoc-l."},
      // --- Neutral-element OR ------------------------------------------------
      {"or-bottom-add", "or-bottom-del", /*order_preserving=*/true,
       /*active=*/true,
       "leaf -> OR(leaf, never-leaf): primitive sites only. The never-leaf "
       "is a copy of the target leaf (same reader/object/time terms, so the "
       "OR's exported binding set — the intersection across branches — is "
       "exactly the leaf's) with its type constraint overwritten to "
       "'__never__', which no catalog maps an EPC to: it contributes no "
       "occurrences. Non-leaf sites are rejected because a 3-slot "
       "observation cannot cover an arbitrary subtree's bindings, and "
       "OR's intersection would silently weaken join and NOT-log keys."},
      {"or-bottom-del", "", /*order_preserving=*/true, /*active=*/true,
       "OR(leaf, never-leaf) -> leaf: binary OR over a primitive and a "
       "never-leaf binding the same variable terms (binding export is then "
       "unchanged by construction). No inverse claim: re-adding is salt-"
       "parameterized (group-constraint shape)."},
      // --- SEQ <-> TSEQ ------------------------------------------------------
      {"seq-to-tseq", "tseq-to-seq", /*order_preserving=*/true, /*active=*/true,
       "SEQ[0, inf) -> TSEQ[0, within]: requires finite within w. Any "
       "admissible pair has dist <= CombinedInterval <= w; initiator deadline "
       "min(t_begin + w, t_end + hi) and the negated-side windows are "
       "unchanged because hi >= w throughout."},
      {"tseq-to-seq", "", /*order_preserving=*/true, /*active=*/true,
       "TSEQ[0, hi] -> SEQ[0, inf): requires finite within w and hi >= w "
       "(the distance bound is then never the binding constraint). No inverse "
       "claim: the original hi is not recoverable when hi > w."},
      {"tseq-hi-slack", "", /*order_preserving=*/true, /*active=*/true,
       "TSEQ[lo, hi] -> TSEQ[lo, hi'] with hi' = max(within, lo) + slack, "
       "finite: requires finite within w and hi >= w. Both bounds dominate "
       "the within constraint, so the admissible pair set, deadlines, and "
       "negation windows are identical."},
      {"tseq-lo-strict", "tseq-lo-relax", /*order_preserving=*/true,
       /*active=*/true,
       "TSEQ[0, hi] -> TSEQ[1usec, hi]: requires op == SEQ, finite hi >= "
       "1usec. Sequence pairing is strict (e1.t_end < e2.t_begin) over "
       "integer microseconds, so dist >= 1usec always; lo is unused on "
       "negated sides."},
      {"tseq-lo-relax", "tseq-lo-strict", /*order_preserving=*/true,
       /*active=*/true,
       "TSEQ[1usec, hi] -> TSEQ[0, hi]: inverse direction; same strictness "
       "argument."},
      // --- SEQ+ bounds -------------------------------------------------------
      {"seqplus-hi-slack", "", /*order_preserving=*/true, /*active=*/true,
       "SEQ+[lo, hi] -> SEQ+[lo, hi'] with hi' >= within: requires finite "
       "within w, hi >= w, and w >= lo. Run extension is gated by "
       "fits_within (d <= span <= w <= hi either way) and run closure by "
       "min(run_end + hi, run_begin + w) = run_begin + w, so run boundaries "
       "are identical. hi' may be inf only when lo == 0 (SEQ+ prints as SEQ; "
       "lo > 0 with hi = inf has no rule-language spelling)."},
      // --- WITHIN propagation ------------------------------------------------
      {"within-del", "within-add", /*order_preserving=*/true, /*active=*/true,
       "Drop a child's interval constraint when it equals the parent's "
       "(finite) constraint: compile-time propagation re-imposes "
       "min(parent.within) on every child, so the compiled graphs are "
       "identical."},
      {"within-add", "within-del", /*order_preserving=*/true, /*active=*/true,
       "Impose the parent's finite interval constraint on an unconstrained "
       "child: explicit spelling of what propagation does anyway."},
      // --- Reject-only: classically valid, unsound here ----------------------
      {"demorgan-split", "", /*order_preserving=*/false, /*active=*/false,
       "REJECTED: AND(A, NOT B) within w is NOT equivalent to nested "
       "negation-splitting forms. The non-occurrence window of NOT B is "
       "anchored to its AND sibling's interval ([x.t_end - w, x.t_begin + w] "
       "plus the pseudo-event probe); any restructuring re-anchors the "
       "window to a different sibling and admits/blocks different B "
       "placements. Counterexample: A = a, B = b, w = 2s, a spans [0, 3s], b "
       "at 1s falls inside the original window but outside the split form's "
       "[x.t_begin, x.t_begin + w]."},
      {"double-negation", "", /*order_preserving=*/true, /*active=*/false,
       "REJECTED: NOT(NOT E) never compiles — graph validation requires NOT "
       "directly under AND/SEQ and over a spontaneous (non-NOT) child, so "
       "neither introducing nor eliminating a double negation has an "
       "applicable site in any compilable rule."},
      {"seqplus-unroll", "", /*order_preserving=*/false, /*active=*/false,
       "REJECTED: SEQ+(E) is not OR(E, SEQ(E; E+)) under chronicle "
       "consumption — SEQ+ runs are maximal aperiodic chains with multi-"
       "valued bindings, while the unrolled prefix consumes its initiator "
       "independently and matches non-maximal subsequences."},
  };
  return kCatalog;
}

// ---------------------------------------------------------------------------
// Rebuild helpers
// ---------------------------------------------------------------------------

// Reconstructs `n`'s node kind over new children, preserving distance
// bounds, then re-applies its interval constraint. Factories create
// nodes with within = inf, so this is also how a *slacker* constraint
// is installed (EventExpr::Within only ever tightens).
EventExprPtr CloneShell(const EventExpr& n, std::vector<EventExprPtr> kids,
                        Duration within) {
  EventExprPtr out;
  switch (n.op()) {
    case ExprOp::kPrimitive:
      out = EventExpr::Primitive(n.primitive());
      break;
    case ExprOp::kOr:
      out = EventExpr::Or(std::move(kids));
      break;
    case ExprOp::kAnd:
      out = EventExpr::And(std::move(kids[0]), std::move(kids[1]));
      break;
    case ExprOp::kNot:
      out = EventExpr::Not(std::move(kids[0]));
      break;
    case ExprOp::kSeq:
      out = EventExpr::Tseq(std::move(kids[0]), std::move(kids[1]),
                            n.dist_lo(), n.dist_hi());
      break;
    case ExprOp::kSeqPlus:
      out = EventExpr::TseqPlus(std::move(kids[0]), n.dist_lo(), n.dist_hi());
      break;
  }
  return within != kDurationInfinity ? EventExpr::Within(std::move(out), within)
                                     : out;
}

EventExprPtr CloneShell(const EventExpr& n, std::vector<EventExprPtr> kids) {
  return CloneShell(n, std::move(kids), n.within());
}

// Like CloneShell but with overridden distance bounds (kSeq/kSeqPlus only).
EventExprPtr Rebound(const EventExpr& n, Duration lo, Duration hi) {
  std::vector<EventExprPtr> kids = n.children();
  EventExprPtr out;
  if (n.op() == ExprOp::kSeq) {
    out = EventExpr::Tseq(std::move(kids[0]), std::move(kids[1]), lo, hi);
  } else {
    out = EventExpr::TseqPlus(std::move(kids[0]), lo, hi);
  }
  return n.has_within() ? EventExpr::Within(std::move(out), n.within()) : out;
}

bool IsNeverLeaf(const EventExpr& e) {
  return e.op() == ExprOp::kPrimitive &&
         e.primitive().type_constraint().has_value() &&
         *e.primitive().type_constraint() == kNeverTypeConstraint;
}

// The ⊥ leaf for a target leaf: identical terms (so Bind produces the
// same symbol set and the OR's exported bindings equal the leaf's) with
// type(o) forced to "__never__". The salt optionally stacks a group
// constraint no reader belongs to, exercising the group-keyed dispatch
// registration instead of the leaf's own key.
EventExprPtr MakeNeverLeaf(const PrimitiveEventType& leaf, uint64_t salt) {
  PrimitiveEventType type(leaf.reader(), leaf.object(), leaf.time_var());
  if (leaf.group_constraint().has_value()) {
    type.WithGroup(*leaf.group_constraint());
  } else if ((salt & 1) != 0 && !leaf.reader().is_literal) {
    type.WithGroup("zzneverg");
  }
  type.WithObjectType(std::string(kNeverTypeConstraint));
  return EventExpr::Primitive(std::move(type));
}

// True when `never` is a never-leaf binding the same variable terms as
// the primitive `leaf` (the or-bottom-del soundness precondition).
bool IsMatchedNeverLeaf(const EventExpr& leaf, const EventExpr& never) {
  if (leaf.op() != ExprOp::kPrimitive || !IsNeverLeaf(never)) return false;
  const PrimitiveEventType& a = leaf.primitive();
  const PrimitiveEventType& b = never.primitive();
  return a.reader() == b.reader() && a.object() == b.object() &&
         a.time_var() == b.time_var();
}

// ---------------------------------------------------------------------------
// Preconditions + application
// ---------------------------------------------------------------------------

// A precondition is a pure predicate over (node, parent); Apply below
// re-checks it before rewriting, so ApplicableSites and ApplyRewrite can
// never disagree.
bool Precondition(const EventExpr& n, const EventExpr* parent,
                  std::string_view name) {
  if (name == "and-perm") return n.op() == ExprOp::kAnd;
  if (name == "or-perm") {
    return n.op() == ExprOp::kOr && n.children().size() >= 2;
  }
  if (name == "or-assoc-l") {
    if (n.op() != ExprOp::kOr || n.children().size() != 2) return false;
    const EventExpr& inner = *n.children()[1];
    return inner.op() == ExprOp::kOr && inner.children().size() == 2 &&
           inner.within() == n.within();
  }
  if (name == "or-assoc-r") {
    if (n.op() != ExprOp::kOr || n.children().size() != 2) return false;
    const EventExpr& inner = *n.children()[0];
    return inner.op() == ExprOp::kOr && inner.children().size() == 2 &&
           inner.within() == n.within();
  }
  if (name == "or-bottom-add") {
    return n.op() == ExprOp::kPrimitive && !IsNeverLeaf(n);
  }
  if (name == "or-bottom-del") {
    return n.op() == ExprOp::kOr && n.children().size() == 2 &&
           IsMatchedNeverLeaf(*n.children()[0], *n.children()[1]);
  }
  if (name == "seq-to-tseq") {
    return n.op() == ExprOp::kSeq && n.dist_lo() == 0 &&
           n.dist_hi() == kDurationInfinity && n.has_within();
  }
  if (name == "tseq-to-seq") {
    return n.op() == ExprOp::kSeq && n.dist_lo() == 0 &&
           n.dist_hi() != kDurationInfinity && n.has_within() &&
           n.dist_hi() >= n.within();
  }
  if (name == "tseq-hi-slack") {
    return n.op() == ExprOp::kSeq && n.has_within() &&
           n.dist_hi() >= n.within();
  }
  if (name == "tseq-lo-strict") {
    return n.op() == ExprOp::kSeq && n.dist_lo() == 0 &&
           n.dist_hi() != kDurationInfinity && n.dist_hi() >= kMicrosecond;
  }
  if (name == "tseq-lo-relax") {
    return n.op() == ExprOp::kSeq && n.dist_lo() == kMicrosecond &&
           n.dist_hi() != kDurationInfinity;
  }
  if (name == "seqplus-hi-slack") {
    return n.op() == ExprOp::kSeqPlus && n.has_within() &&
           n.dist_hi() >= n.within() && n.within() >= n.dist_lo();
  }
  if (name == "within-del") {
    return parent != nullptr && parent->has_within() && n.has_within() &&
           n.within() == parent->within();
  }
  if (name == "within-add") {
    return parent != nullptr && parent->has_within() && !n.has_within();
  }
  return false;  // Unknown or reject-only: no applicable sites.
}

EventExprPtr ApplyAt(const EventExprPtr& node, const EventExpr* parent,
                     std::string_view name, uint64_t salt) {
  if (!Precondition(*node, parent, name)) return nullptr;
  const EventExpr& n = *node;

  if (name == "and-perm") {
    return CloneShell(n, {n.children()[1], n.children()[0]});
  }
  if (name == "or-perm") {
    std::vector<EventExprPtr> kids = n.children();
    std::swap(kids.front(), kids.back());
    return CloneShell(n, std::move(kids));
  }
  if (name == "or-assoc-l") {
    // OR(a, OR(b, c)) -> OR(OR(a, b), c); the rebuilt inner OR takes the
    // outer constraint so the inverse rotation restores it structurally.
    const EventExprPtr& a = n.children()[0];
    const EventExpr& inner = *n.children()[1];
    EventExprPtr ab = EventExpr::Or(a, inner.children()[0]);
    if (n.has_within()) ab = EventExpr::Within(std::move(ab), n.within());
    return CloneShell(n, {std::move(ab), inner.children()[1]});
  }
  if (name == "or-assoc-r") {
    const EventExpr& inner = *n.children()[0];
    const EventExprPtr& c = n.children()[1];
    EventExprPtr bc = EventExpr::Or(inner.children()[1], c);
    if (n.has_within()) bc = EventExpr::Within(std::move(bc), n.within());
    return CloneShell(n, {inner.children()[0], std::move(bc)});
  }
  if (name == "or-bottom-add") {
    EventExprPtr wrapped =
        EventExpr::Or(node, MakeNeverLeaf(n.primitive(), salt));
    if (n.has_within()) {
      wrapped = EventExpr::Within(std::move(wrapped), n.within());
    }
    return wrapped;
  }
  if (name == "or-bottom-del") return n.children()[0];
  if (name == "seq-to-tseq") return Rebound(n, 0, n.within());
  if (name == "tseq-to-seq") return Rebound(n, 0, kDurationInfinity);
  if (name == "tseq-hi-slack") {
    static constexpr Duration kSlack[] = {0, kSecond, 5 * kSecond};
    Duration base = std::max(n.within(), n.dist_lo());
    return Rebound(n, n.dist_lo(), AddSaturating(base, kSlack[salt % 3]));
  }
  if (name == "tseq-lo-strict") return Rebound(n, kMicrosecond, n.dist_hi());
  if (name == "tseq-lo-relax") return Rebound(n, 0, n.dist_hi());
  if (name == "seqplus-hi-slack") {
    Duration w = n.within();
    Duration hi;
    switch (salt % 3) {
      case 0:
        hi = w;
        break;
      case 1:
        hi = AddSaturating(w, 2 * kSecond);
        break;
      default:
        hi = n.dist_lo() == 0 ? kDurationInfinity
                              : AddSaturating(w, 7 * kSecond);
        break;
    }
    return Rebound(n, n.dist_lo(), hi);
  }
  if (name == "within-del") {
    return CloneShell(n, n.children(), kDurationInfinity);
  }
  if (name == "within-add") {
    return CloneShell(n, n.children(), parent->within());
  }
  return nullptr;
}

struct WalkCtx {
  std::string_view name;
  int target = -1;  // Preorder index to rewrite; -1 = enumerate only.
  uint64_t salt = 0;
  int counter = 0;
  bool applied = false;
  std::vector<int>* sites = nullptr;
};

EventExprPtr Walk(const EventExprPtr& node, const EventExpr* parent,
                  WalkCtx* ctx) {
  const int index = ctx->counter++;
  if (ctx->sites != nullptr && Precondition(*node, parent, ctx->name)) {
    ctx->sites->push_back(index);
  }
  if (index == ctx->target) {
    EventExprPtr out = ApplyAt(node, parent, ctx->name, ctx->salt);
    if (out != nullptr) {
      ctx->applied = true;
      return out;
    }
    return node;
  }
  if (node->children().empty()) return node;
  std::vector<EventExprPtr> kids;
  kids.reserve(node->children().size());
  bool changed = false;
  for (const EventExprPtr& child : node->children()) {
    EventExprPtr next = Walk(child, node.get(), ctx);
    changed = changed || next != child;
    kids.push_back(std::move(next));
  }
  if (!changed) return node;
  return CloneShell(*node, std::move(kids));
}

}  // namespace

const std::vector<RewriteIdentity>& RewriteCatalog() { return Catalog(); }

const RewriteIdentity* FindRewrite(std::string_view name) {
  for (const RewriteIdentity& id : Catalog()) {
    if (id.name == name) return &id;
  }
  return nullptr;
}

int CountNodes(const EventExprPtr& expr) {
  if (expr == nullptr) return 0;
  int n = 1;
  for (const EventExprPtr& child : expr->children()) n += CountNodes(child);
  return n;
}

std::vector<int> ApplicableSites(const EventExprPtr& expr,
                                 std::string_view name) {
  std::vector<int> sites;
  if (expr == nullptr || FindRewrite(name) == nullptr) return sites;
  WalkCtx ctx;
  ctx.name = name;
  ctx.sites = &sites;
  Walk(expr, nullptr, &ctx);
  return sites;
}

EventExprPtr ApplyRewrite(const EventExprPtr& expr, std::string_view name,
                          int site, uint64_t salt) {
  if (expr == nullptr || FindRewrite(name) == nullptr) return nullptr;
  WalkCtx ctx;
  ctx.name = name;
  ctx.target = site;
  ctx.salt = salt;
  EventExprPtr out = Walk(expr, nullptr, &ctx);
  return ctx.applied ? out : nullptr;
}

bool StructurallyEqual(const EventExprPtr& a, const EventExprPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->op() != b->op() || a->dist_lo() != b->dist_lo() ||
      a->dist_hi() != b->dist_hi() || a->within() != b->within()) {
    return false;
  }
  if (a->op() == ExprOp::kPrimitive &&
      a->primitive().CanonicalKey() != b->primitive().CanonicalKey()) {
    return false;
  }
  if (a->children().size() != b->children().size()) return false;
  for (size_t i = 0; i < a->children().size(); ++i) {
    if (!StructurallyEqual(a->children()[i], b->children()[i])) return false;
  }
  return true;
}

}  // namespace rfidcep::engine
