// The traditional ECA-style baseline the paper argues against (§4.1).
//
// Traditional ECA engines detect complex events at *type level*: any
// instance of a constituent type advances the automaton, and instance-level
// temporal constraints (TSEQ distance bounds, WITHIN intervals) are only
// checked afterwards, as rule *conditions* on the single type-level match.
// With the event history of the paper's Fig. 4 this returns zero instances
// for E = TSEQ(TSEQ+(E1, 0, 1s); E2, 5s, 10s), where the correct chronicle
// answer is two — the aperiodic collection greedily absorbs every E1, and
// the post-hoc distance check then rejects the whole match.
//
// Supported constructors: primitives, OR, AND, SEQ/TSEQ, SEQ+/TSEQ+,
// WITHIN (checked post-hoc). NOT is not supported (traditional engines
// need initiator/terminator pairs for negation; see §6).

#ifndef RFIDCEP_ENGINE_BASELINE_TYPE_LEVEL_DETECTOR_H_
#define RFIDCEP_ENGINE_BASELINE_TYPE_LEVEL_DETECTOR_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "events/event_instance.h"
#include "events/event_type.h"
#include "events/expr.h"

namespace rfidcep::engine::baseline {

struct BaselineStats {
  uint64_t observations = 0;
  uint64_t type_level_matches = 0;  // Root completions before checks.
  uint64_t accepted = 0;            // Matches passing constraint checks.
  uint64_t rejected = 0;            // Matches failing constraint checks.
};

// Invoked for every *accepted* match.
using BaselineMatchCallback =
    std::function<void(const events::EventInstancePtr&)>;

class TypeLevelDetector {
 public:
  // Fails (kUnimplemented) if `expr` contains NOT.
  static Result<std::unique_ptr<TypeLevelDetector>> Create(
      events::EventExprPtr expr, const events::Environment* env,
      BaselineMatchCallback on_match);

  Status Process(const events::Observation& obs);

  const BaselineStats& stats() const { return stats_; }

 private:
  struct NodeState {
    // kSeq: buffered initiator instances. kAnd: both slots.
    std::deque<events::EventInstancePtr> slots[2];
    // kSeqPlus: every constituent instance since the last consumption.
    std::vector<events::EventInstancePtr> collection;
  };

  TypeLevelDetector(events::EventExprPtr expr, const events::Environment* env,
                    BaselineMatchCallback on_match);

  // Flattens the expression tree into nodes_ (index order = postorder).
  int BuildNodes(const events::EventExprPtr& expr);

  void Arrive(int node_index, int child_index,
              const events::EventInstancePtr& instance);
  void EmitAt(int node_index, const events::EventInstancePtr& instance);

  // Post-hoc constraint validation of a completed root instance against
  // the original expression ("constraints as conditions").
  bool CheckConstraints(const events::EventExpr& expr,
                        const events::EventInstance& instance) const;

  struct Node {
    events::EventExprPtr expr;
    std::vector<int> children;
    int parent = -1;
    int slot_in_parent = 0;
  };

  events::EventExprPtr root_expr_;
  const events::Environment* env_;
  BaselineMatchCallback on_match_;
  std::vector<Node> nodes_;
  std::vector<NodeState> states_;
  std::vector<int> primitive_nodes_;
  int root_ = -1;
  uint64_t seq_ = 0;
  BaselineStats stats_;
};

}  // namespace rfidcep::engine::baseline

#endif  // RFIDCEP_ENGINE_BASELINE_TYPE_LEVEL_DETECTOR_H_
