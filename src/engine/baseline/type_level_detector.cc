#include "engine/baseline/type_level_detector.h"

namespace rfidcep::engine::baseline {

using events::Bindings;
using events::EventExpr;
using events::EventExprPtr;
using events::EventInstance;
using events::EventInstancePtr;
using events::ExprOp;
using events::Observation;

namespace {

bool ContainsNot(const EventExpr& expr) {
  if (expr.op() == ExprOp::kNot) return true;
  for (const EventExprPtr& child : expr.children()) {
    if (ContainsNot(*child)) return true;
  }
  return false;
}

// Merge that cannot fail: both sides demoted to multi-valued bindings.
Bindings LooseMerge(const Bindings& a, const Bindings& b) {
  Bindings merged = a.ToMulti();
  Bindings other = b.ToMulti();
  merged.Merge(other);
  return merged;
}

}  // namespace

Result<std::unique_ptr<TypeLevelDetector>> TypeLevelDetector::Create(
    events::EventExprPtr expr, const events::Environment* env,
    BaselineMatchCallback on_match) {
  if (ContainsNot(*expr)) {
    return Status::Unimplemented(
        "the type-level ECA baseline does not support NOT");
  }
  return std::unique_ptr<TypeLevelDetector>(
      new TypeLevelDetector(std::move(expr), env, std::move(on_match)));
}

TypeLevelDetector::TypeLevelDetector(events::EventExprPtr expr,
                                     const events::Environment* env,
                                     BaselineMatchCallback on_match)
    : root_expr_(std::move(expr)), env_(env), on_match_(std::move(on_match)) {
  root_ = BuildNodes(root_expr_);
  states_.resize(nodes_.size());
}

int TypeLevelDetector::BuildNodes(const EventExprPtr& expr) {
  std::vector<int> children;
  children.reserve(expr->children().size());
  for (const EventExprPtr& child : expr->children()) {
    children.push_back(BuildNodes(child));
  }
  Node node;
  node.expr = expr;
  node.children = children;
  int id = static_cast<int>(nodes_.size());
  nodes_.push_back(std::move(node));
  for (size_t slot = 0; slot < children.size(); ++slot) {
    nodes_[children[slot]].parent = id;
    nodes_[children[slot]].slot_in_parent = static_cast<int>(slot);
  }
  if (expr->op() == ExprOp::kPrimitive) {
    primitive_nodes_.push_back(id);
  }
  return id;
}

Status TypeLevelDetector::Process(const Observation& obs) {
  ++stats_.observations;
  for (int node_index : primitive_nodes_) {
    const events::PrimitiveEventType& type =
        nodes_[node_index].expr->primitive();
    if (!type.Matches(obs, *env_)) continue;
    EmitAt(node_index,
           EventInstance::MakePrimitive(obs, type.Bind(obs), ++seq_));
  }
  return Status::Ok();
}

void TypeLevelDetector::EmitAt(int node_index,
                               const EventInstancePtr& instance) {
  if (node_index == root_) {
    ++stats_.type_level_matches;
    // "Constraints as conditions": check temporal constraints only now.
    if (CheckConstraints(*nodes_[node_index].expr, *instance)) {
      ++stats_.accepted;
      if (on_match_) on_match_(instance);
    } else {
      ++stats_.rejected;
    }
    return;
  }
  const Node& node = nodes_[node_index];
  Arrive(node.parent, node_index, instance);
}

void TypeLevelDetector::Arrive(int node_index, int child_index,
                               const EventInstancePtr& instance) {
  Node& node = nodes_[node_index];
  NodeState& st = states_[node_index];
  int slot = nodes_[child_index].slot_in_parent;

  switch (node.expr->op()) {
    case ExprOp::kPrimitive:
      return;  // Unreachable.
    case ExprOp::kOr:
      EmitAt(node_index, instance);
      return;
    case ExprOp::kNot:
      return;  // Rejected at Create().
    case ExprOp::kAnd: {
      std::deque<EventInstancePtr>& other = st.slots[1 - slot];
      if (other.empty()) {
        st.slots[slot].push_back(instance);
        return;
      }
      EventInstancePtr partner = other.front();
      other.pop_front();
      TimePoint t_begin = std::min(partner->t_begin(), instance->t_begin());
      TimePoint t_end = std::max(partner->t_end(), instance->t_end());
      std::vector<EventInstancePtr> children =
          partner->t_begin() <= instance->t_begin()
              ? std::vector<EventInstancePtr>{partner, instance}
              : std::vector<EventInstancePtr>{instance, partner};
      EmitAt(node_index, EventInstance::MakeComplex(
                             t_begin, t_end,
                             LooseMerge(partner->bindings(),
                                        instance->bindings()),
                             std::move(children), ++seq_));
      return;
    }
    case ExprOp::kSeq: {
      if (slot == 0) {
        st.slots[0].push_back(instance);
        return;
      }
      // Terminator. An aperiodic initiator is consumed wholesale.
      const Node& left = nodes_[node.children[0]];
      EventInstancePtr initiator;
      if (left.expr->op() == ExprOp::kSeqPlus) {
        NodeState& left_state = states_[node.children[0]];
        std::vector<EventInstancePtr>& collection = left_state.collection;
        // Keep only elements strictly before the terminator.
        std::vector<EventInstancePtr> taken;
        for (const EventInstancePtr& e : collection) {
          if (e->t_end() < instance->t_begin()) taken.push_back(e);
        }
        if (taken.empty()) return;
        collection.clear();
        Bindings merged;
        for (const EventInstancePtr& e : taken) {
          merged = LooseMerge(merged, e->bindings());
        }
        TimePoint run_begin = taken.front()->t_begin();
        TimePoint run_end = taken.back()->t_end();
        initiator = EventInstance::MakeComplex(
            run_begin, run_end, std::move(merged), std::move(taken), ++seq_);
      } else {
        std::deque<EventInstancePtr>& buffer = st.slots[0];
        while (!buffer.empty() &&
               buffer.front()->t_end() >= instance->t_begin()) {
          buffer.pop_front();
        }
        if (buffer.empty()) return;
        initiator = buffer.front();
        buffer.pop_front();
      }
      EmitAt(node_index,
             EventInstance::MakeComplex(
                 initiator->t_begin(), instance->t_end(),
                 LooseMerge(initiator->bindings(), instance->bindings()),
                 {initiator, instance}, ++seq_));
      return;
    }
    case ExprOp::kSeqPlus:
      st.collection.push_back(instance);
      return;
  }
}

bool TypeLevelDetector::CheckConstraints(
    const EventExpr& expr, const EventInstance& instance) const {
  if (expr.has_within() && instance.interval() > expr.within()) return false;
  switch (expr.op()) {
    case ExprOp::kPrimitive:
      return true;
    case ExprOp::kOr:
      for (const EventExprPtr& child : expr.children()) {
        if (CheckConstraints(*child, instance)) return true;
      }
      return false;
    case ExprOp::kNot:
      return false;  // Unsupported.
    case ExprOp::kAnd: {
      if (instance.children().size() != 2) return false;
      const EventInstance& a = *instance.children()[0];
      const EventInstance& b = *instance.children()[1];
      return (CheckConstraints(*expr.children()[0], a) &&
              CheckConstraints(*expr.children()[1], b)) ||
             (CheckConstraints(*expr.children()[0], b) &&
              CheckConstraints(*expr.children()[1], a));
    }
    case ExprOp::kSeq: {
      if (instance.children().size() != 2) return false;
      const EventInstance& first = *instance.children()[0];
      const EventInstance& second = *instance.children()[1];
      if (first.t_end() >= second.t_begin()) return false;
      Duration d = events::Dist(first, second);
      if (d < expr.dist_lo() || d > expr.dist_hi()) return false;
      return CheckConstraints(*expr.children()[0], first) &&
             CheckConstraints(*expr.children()[1], second);
    }
    case ExprOp::kSeqPlus: {
      if (instance.children().empty()) return false;
      const EventExpr& element_expr = *expr.children()[0];
      for (size_t i = 0; i < instance.children().size(); ++i) {
        if (!CheckConstraints(element_expr, *instance.children()[i])) {
          return false;
        }
        if (i > 0) {
          Duration d = events::Dist(*instance.children()[i - 1],
                                    *instance.children()[i]);
          if (d < expr.dist_lo() || d > expr.dist_hi()) return false;
        }
      }
      return true;
    }
  }
  return false;
}

}  // namespace rfidcep::engine::baseline
