// Parameter contexts (paper §4.2, after Snoop).
//
// A parameter context decides which constituent-instance combinations are
// pulled out of the event history when a complex event completes. The
// paper argues only the *chronicle* context is correct for RFID streams,
// because complex-event instances routinely overlap (multiple packing
// episodes in flight); we implement all five for tests and ablation.

#ifndef RFIDCEP_ENGINE_CONTEXT_H_
#define RFIDCEP_ENGINE_CONTEXT_H_

#include <string_view>

namespace rfidcep::engine {

enum class ParameterContext {
  kChronicle = 0,  // Oldest initiator pairs with oldest terminator (default).
  kRecent,         // Most recent initiator; initiator is reused.
  kContinuous,     // Every open initiator pairs with the terminator.
  kCumulative,     // All initiators merge into one instance.
  kUnrestricted,   // Every combination; nothing is consumed.
};

std::string_view ParameterContextName(ParameterContext context);

}  // namespace rfidcep::engine

#endif  // RFIDCEP_ENGINE_CONTEXT_H_
