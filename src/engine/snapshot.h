// Checkpoint/restore for detector state (versioned binary format).
//
// A snapshot captures everything the RCEDA runtime accumulates on a
// stream: slot buffers with expiry deadlines, NOT logs, SEQ+ open runs,
// the pending pseudo-event queue, chronicle pairing state (the buffered
// initiator/terminator instances and their consumption status ARE that
// state), synth/inst sequence counters, engine statistics, fired counts,
// and the metric counter values. Since version 2 it also anchors action
// *effects*: the firing sequence counter, the confirmed store-WAL LSN,
// and the in-flight (pending) action queue — together with the WAL
// itself this makes SQL effects exactly-once across a crash (see
// docs/recovery.md "Exactly-once effects"). Store rows are still not in
// the snapshot; they are reconstructed by replaying the WAL.
//
// Snapshots are taken at a single logical instant: the engine advances
// every detector to the engine clock before capturing (firing — and
// delivering — any expirations scheduled strictly before it), so all
// captured detectors agree on the clock and every pending pseudo event
// executes at or after it. That invariant is what makes a snapshot
// restorable at ANY shard count: per-node state is identified by a
// graph-independent state key (EventGraph::NodeStateKeys) and
// re-partitioned onto the target's graphs, and the per-source pseudo
// queues merge by a greedy topological pass that preserves every
// source's relative order (sources hosting the same node pend identical
// pseudo subsequences, so duplicates collapse exactly).
//
// Portability: symbol ids and join-bucket hashes are process-local, so
// records carry variable NAMES and anchor positions; bucket keys and
// pseudo anchors are recomputed against the restoring process's symbol
// table. A snapshot is validated against a rule-set fingerprint (rule
// ids + root canonical keys + parameter context) before it is loaded.

#ifndef RFIDCEP_ENGINE_SNAPSHOT_H_
#define RFIDCEP_ENGINE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "engine/context.h"
#include "engine/detector.h"
#include "engine/engine.h"
#include "engine/graph.h"
#include "events/binding.h"
#include "events/event_instance.h"
#include "events/observation.h"
#include "rules/rule.h"
#include "store/sql_executor.h"

namespace rfidcep::engine::snapshot {

// Version 2 appends the durable-action section (durable_lsn,
// pending_actions) after the sources. Version 1 snapshots still decode:
// the section defaults to empty.
inline constexpr uint32_t kSnapshotVersion = 2;
inline constexpr uint32_t kMinSnapshotVersion = 1;
inline constexpr std::string_view kSnapshotMagic = "RCEDSNAP";

// One buffered event instance. Children precede parents in the instance
// table, so decoding is a single forward pass. Bindings are stored by
// variable name (symbol ids do not survive the process boundary).
struct InstanceRecord {
  bool is_primitive = false;
  events::Observation observation;   // Primitive only.
  TimePoint t_begin = 0;             // Complex only (primitives derive
  TimePoint t_end = 0;               // their span from the observation).
  uint64_t sequence_number = 0;      // Source-local synth/inst sequence.
  std::vector<std::pair<std::string, events::BindingValue>> scalars;
  std::vector<std::pair<std::string, std::vector<events::BindingValue>>>
      multis;
  std::vector<uint32_t> children;    // Indexes into the instance table.
};

struct SlotEntryRecord {
  uint32_t instance = 0;  // Index into the instance table.
  TimePoint deadline = 0;
};

struct RunRecord {
  std::vector<uint32_t> elements;  // Instance table indexes, run order.
  TimePoint t_begin = 0;
  TimePoint t_end = 0;
};

// Runtime state of one graph node, identified by its graph-independent
// state key. Slot/NOT entries are serialized live-only (deadline at or
// after the capture clock) and in sequence-number order — that order is
// the arrival order, so restoring it verbatim reproduces the original
// bucket and expiry-deque ordering.
struct NodeStateRecord {
  std::string state_key;
  Duration retention = 0;  // Source-graph retention (NOT-log source choice).
  uint64_t produced = 0;
  std::vector<SlotEntryRecord> slots[2];
  std::vector<uint32_t> not_log;
  std::vector<RunRecord> runs;
};

// How a pseudo event's buffered anchor instance is recorded. Positions
// index the parent's serialized slot entries — stable across sources
// because capture happens at one clock, so every source hosting the node
// serializes the same live entries in the same order.
enum class AnchorKind : uint8_t {
  kNone = 0,   // No anchor (SEQ+ self-expiry pseudos).
  kLive = 1,   // Anchor found buffered at capture: (slot, position).
  kStale = 2,  // Anchor already consumed/pruned; fires as a no-op.
};

struct PseudoRecord {
  TimePoint execute_at = 0;
  TimePoint created_at = 0;
  std::string target_key;  // State key of the queried node.
  std::string parent_key;  // State key of the node acting on the result.
  AnchorKind anchor_kind = AnchorKind::kNone;
  uint8_t anchor_slot = 0;
  uint32_t anchor_pos = 0;
  // Scheduling-position stamp (Detector::PseudoEvent::stamp). In-memory
  // only — NOT serialized: it exists so MergeShardSnapshots can sort
  // per-shard queues into serial FIFO order at capture time. Queue order
  // in the encoded bytes already IS the firing order, so decoded records
  // don't need it (restore synthesizes before-the-checkpoint stamps).
  std::vector<uint64_t> stamp;
};

// One source detector (the serial detector, or one shard).
struct DetectorSnapshot {
  int source_id = 0;
  TimePoint clock = 0;  // Equals the engine clock (capture invariant).
  uint64_t sequence_counter = 0;
  uint64_t pseudo_counter = 0;
  DetectorStats stats;
  std::vector<InstanceRecord> instances;
  std::vector<NodeStateRecord> nodes;
  std::vector<PseudoRecord> pseudos;  // Queue order: (execute_at, order).
};

struct EngineSnapshot {
  uint32_t version = kSnapshotVersion;
  uint64_t fingerprint = 0;
  uint8_t context = 0;  // ParameterContext, fingerprinted too.
  bool flushed = false;
  TimePoint clock = 0;  // Engine clock at capture (out-of-order gate).
  uint64_t trace_obs_seq = 0;
  EngineStats stats;
  // Fired count per rule id (rule-id keyed: survives re-indexing).
  std::vector<std::pair<std::string, uint64_t>> fired;
  // Counter dump from the metrics registry (restored after Reset();
  // shard-labeled counters only transfer between equal shard layouts).
  std::vector<std::pair<std::string, uint64_t>> counters;
  int source_shards = 1;
  std::vector<DetectorSnapshot> sources;

  // --- Version 2: durable action pipeline ---------------------------------
  // A firing enqueued but not yet confirmed (executed + WAL-flushed) at
  // capture. Restore re-enqueues these, deduplicated against the
  // recovered WAL, before reprocessing the stream suffix.
  struct PendingActionRecord {
    std::string rule_id;
    uint64_t seq = 0;        // The firing's per-rule sequence number.
    TimePoint fire_time = 0;
    std::vector<std::pair<std::string, store::ParamValue>> params;
  };
  uint64_t durable_lsn = 0;  // Confirmed WAL LSN at capture (0 = no WAL).
  std::vector<PendingActionRecord> pending_actions;
};

// FNV-1a over the parameter context, rule count, and each rule's (id,
// root canonical key) in rule-index order: two engines with equal
// fingerprints compile graphs with identical node state-key vocabularies.
uint64_t ComputeFingerprint(ParameterContext context,
                            const std::vector<rules::Rule>& rules,
                            const EventGraph& graph);

// Binary little-endian encoding. Encoding is deterministic: re-encoding
// a decoded snapshot, or re-capturing a freshly restored engine of the
// same layout, is byte-identical.
std::string EncodeEngineSnapshot(const EngineSnapshot& snap);
// Bounds-checked decode. Fails with kFailedPrecondition on a bad magic
// or unsupported version (the explicit format gate), kInvalidArgument on
// truncation or malformed records.
Status DecodeEngineSnapshot(std::string_view bytes, EngineSnapshot* out);

// --- Restore planning -------------------------------------------------------
// A fully resolved restore plan for ONE target detector: node ids are
// target-graph ids, instances are live objects (decoded per target, so
// detectors never share them), anchors are resolved to instances. The
// detector recomputes bucket keys, expiry deques, and run bindings.
struct RestoredRun {
  std::vector<events::EventInstancePtr> elements;
  TimePoint t_begin = 0;
  TimePoint t_end = 0;
};

struct RestoredNode {
  int node_id = -1;
  uint64_t produced = 0;
  std::vector<std::pair<events::EventInstancePtr, TimePoint>> slots[2];
  std::vector<events::EventInstancePtr> not_log;
  std::vector<RestoredRun> runs;
};

struct RestoredPseudo {
  TimePoint execute_at = 0;
  TimePoint created_at = 0;
  int target_node = -1;
  int parent_node = -1;
  events::EventInstancePtr anchor;  // Null: no anchor / stale (no-op).
  uint64_t order = 0;               // Merged queue order (dense, global).
};

struct RestorePlan {
  TimePoint clock = 0;
  uint64_t sequence_counter = 0;  // Max over sources: new instances sort
                                  // after every restored one.
  uint64_t pseudo_counter = 0;    // Merged queue length.
  std::vector<RestoredNode> nodes;
  std::vector<RestoredPseudo> pseudos;
};

// Builds the plan for a target detector whose graph has per-node state
// keys `target_keys` (EventGraph::NodeStateKeys order). Nodes hosted by
// several sources restore from the max-retention source (ties: lowest
// source id) — retention is the only parent-dependent state dimension,
// and the max-retention log is a superset whose extra entries no live
// window query can see. Pseudo orders are assigned by the global merge,
// so plans built per shard from one snapshot agree on relative order.
//
// `target_aliases` (EventGraph::NodeStateAliases, may be empty) makes
// plans portable across compile modes: a target key with no exact match
// in the snapshot but a non-empty alias <K> restores from a
// representative source key ending in "|<K>" that itself matches no
// target exactly (state and pseudos fan out to every such target —
// share-eligible SEQ+ copies have identical trajectories, whether one
// shared node or per-rule private copies). Exact matches always win, so
// same-layout restores are unaffected.
Result<RestorePlan> BuildRestorePlan(
    const EngineSnapshot& snap, const std::vector<std::string>& target_keys,
    const std::vector<std::string>& target_aliases = {});

// --- Data-partitioned capture -----------------------------------------------
// Merges the per-shard snapshots of a DATA-partitioned engine into ONE
// serial-equivalent source, so the encoded snapshot is indistinguishable
// from a serial capture and restores onto any layout through the normal
// BuildRestorePlan path. Unlike rule-sharded sources (which duplicate a
// shared node's state), keyed replicas hold COMPLEMENTARY per-key slices
// of the same state key, so per node the merge either
//   * takes a non-replica (residual) copy — complete over all keys — when
//     its retention covers the replicas' window, or
//   * unions the replica slices (sorted by sequence number, then source;
//     cross-key relative order is unobservable: every probe and pairing
//     unifies on the partition key first).
// Pseudo queues merge by (execute_at, stamp) — the serial FIFO order —
// and anchors are re-pointed at the merged slot positions; a pseudo whose
// side of a shared node lost the choice keeps firing as a no-op (kStale),
// exactly mirroring its live twin from the winning side.
// `keyed_replica[i]` flags whether sources[i] is a keyed replica.
DetectorSnapshot MergeShardSnapshots(const std::vector<DetectorSnapshot>& sources,
                                     const std::vector<bool>& keyed_replica);

}  // namespace rfidcep::engine::snapshot

#endif  // RFIDCEP_ENGINE_SNAPSHOT_H_
