// ActionStage: asynchronous rule-action execution off the detection path.
//
// With EngineOptions::async_actions the engine no longer runs SQL
// actions inline in OnMatch. Fired rule firings are stamped with a
// deterministic engine-wide sequence number and handed to a bounded
// SPSC ring (the coordinator/serial thread is always the single
// producer — sharded layouts funnel matches through the coordinator in
// canonical replay order, so queue order is identical across layouts).
// One worker thread drains the ring in batches, executes each firing's
// actions through the shared ActionDispatcher, and marks the WAL batch
// boundary with a single buffered-write flush — so a drained batch
// costs one write() however many statements it logged.
//
// Backpressure: a full ring blocks Enqueue (counted), which in turn
// stalls the detection pipeline's own rings — the same bounded-queue
// discipline as the sharded coordinator.
//
// Snapshots capture the stage without quiescing it: the producer keeps
// a lightweight pending list (rule pointer + event instance reference)
// of firings not yet confirmed by the worker, and the worker publishes
// a consistent Progress tuple (confirmed count, WAL LSN, logical action
// counters) at batch boundaries. SerializeState pairs the two, so a
// restore can re-enqueue exactly the in-flight firings (deduplicated
// against the recovered WAL) — see docs/recovery.md "Exactly-once
// effects".

#ifndef RFIDCEP_ENGINE_ACTION_STAGE_H_
#define RFIDCEP_ENGINE_ACTION_STAGE_H_

#include <atomic>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/spsc_ring.h"
#include "common/worker.h"
#include "engine/actions.h"

namespace rfidcep::engine {

class ActionStage {
 public:
  struct Options {
    size_t queue_capacity = 1024;  // Rounded up to a power of two.
    // Optional instruments (registry-owned, engine-resolved).
    common::Counter* enqueue_stalls = nullptr;
    common::Counter* batches = nullptr;
  };

  // A consistent view of the worker's progress, published at batch
  // boundaries. Counter fields mirror the dispatcher's cumulative
  // logical counters *at the confirmed boundary* — unlike reading the
  // dispatcher directly, they never expose a half-executed batch.
  struct Progress {
    uint64_t confirmed_count = 0;  // Items fully executed (and logged).
    uint64_t confirmed_seq = 0;  // Per-rule seq of the last confirmed item.
    uint64_t confirmed_lsn = 0;    // WAL last_lsn at the boundary.
    uint64_t sql_actions = 0;
    uint64_t rows_written = 0;
    uint64_t procedures = 0;
    uint64_t unknown_procedures = 0;
    uint64_t actions_deduped = 0;
    uint64_t firing_errors = 0;  // Firings whose dispatch reported an error.
    uint64_t batches = 0;        // Ring drains (grouped executions).
    Status first_error;
  };

  // One unconfirmed firing, as captured for a snapshot. Normal firings
  // keep a reference to the matched instance (params are rebuilt at
  // capture); firings replayed from an earlier snapshot carry their
  // params directly (the instance no longer exists).
  struct PendingAction {
    const rules::Rule* rule = nullptr;
    uint64_t seq = 0;
    TimePoint fire_time = 0;
    bool replayed = false;
    events::EventInstancePtr instance;
    store::ParamMap params;  // Used when instance is null.
  };

  // `dispatcher` must outlive the stage. From construction until
  // destruction the dispatcher belongs to the worker thread — the owner
  // must not Dispatch on it, attach a WAL, or register procedures.
  ActionStage(ActionDispatcher* dispatcher, Options options);
  // Drains everything enqueued, then joins the worker.
  ~ActionStage();

  ActionStage(const ActionStage&) = delete;
  ActionStage& operator=(const ActionStage&) = delete;

  // Producer side (detection thread). Blocks while the ring is full.
  // `action_us` (may be null) receives the firing's dispatch latency.
  void Enqueue(RuleFiring firing, common::Histogram* action_us);

  // Producer side: returns when every firing enqueued so far has been
  // executed (and, with a WAL attached, logged and flushed).
  void Drain();

  Progress progress() const;

  // Producer side: the firings not yet confirmed as of
  // `confirmed_count` (pair with the same Progress read), oldest first.
  std::vector<PendingAction> PendingAfter(uint64_t confirmed_count);

  uint64_t enqueue_stalls() const { return enqueue_stalls_; }

 private:
  struct Item {
    RuleFiring firing;
    common::Histogram* action_us = nullptr;
  };

  void WorkerLoop();

  ActionDispatcher* const dispatcher_;
  const Options options_;
  common::SpscRing<Item> ring_;
  common::Doorbell work_bell_;  // Producer -> worker.
  common::Doorbell done_bell_;  // Worker -> producer.
  std::atomic<uint64_t> processed_count_{0};
  std::atomic<bool> stop_{false};

  mutable std::mutex mu_;  // Guards progress_.
  Progress progress_;

  // Producer-side bookkeeping (no synchronization needed).
  std::deque<PendingAction> pending_;
  uint64_t enqueued_count_ = 0;
  uint64_t pruned_count_ = 0;  // Pending entries retired so far.
  uint64_t enqueue_stalls_ = 0;

  std::thread worker_;
};

}  // namespace rfidcep::engine

#endif  // RFIDCEP_ENGINE_ACTION_STAGE_H_
