// Metamorphic rewrite engine (ROADMAP item 5, EET-style equivalence
// testing): rewrites a compiled-form rule expression (EventGraph::
// RuleExpr) into a provably equivalent variant. Each identity in the
// catalog carries its soundness precondition; Apply refuses any site
// where the precondition does not hold, so every produced variant is
// equivalent BY CONSTRUCTION under the chronicle semantics documented
// in docs/semantics.md — a divergence between the original and the
// rewritten rule is therefore an engine bug, never expected noise.
//
// Identities operate on the compiled form deliberately: interval
// constraints are already propagated (graph.cc PropagateIntervalConstraints),
// so preconditions like "the inner OR imposes no extra WITHIN" are a
// direct attribute comparison, and re-parsing a serialized variant
// rebuilds the same propagated tree (propagation is idempotent).
//
// The catalog (identity / soundness precondition / ordering claim) is
// mirrored in docs/semantics.md; rewriter_test.cc holds the unit
// obligations (self-inverse where claimed, rejection of the known-
// unsound shapes).
//
// Sites are addressed by preorder index into the rule expression, which
// is stable under every identity here (none adds or removes nodes
// before the target site), so an (identity, site) pair recorded in a
// .rewrites repro file replays exactly.

#ifndef RFIDCEP_ENGINE_REWRITE_H_
#define RFIDCEP_ENGINE_REWRITE_H_

#include <string_view>
#include <vector>

#include "events/expr.h"

namespace rfidcep::engine {

struct RewriteIdentity {
  std::string_view name;
  // Name of the identity that structurally undoes this one at the same
  // preorder site (back_transform(equivalent_transform(e)) == e), or
  // empty when no such claim is made (parameterized rewrites lose the
  // original attribute value).
  std::string_view inverse;
  // True when the rewrite provably preserves per-rule emission ORDER,
  // not just the match multiset. Operand reordering of AND is held to
  // multiset equality only: canonical leaf dispatch makes tie order
  // observable in principle, so comparisons must normalize order.
  bool order_preserving = true;
  // True when ApplicableSites can be non-empty. Reject-only entries
  // document identities that are classically valid but UNSOUND under
  // this algebra's window/consumption semantics; their precondition
  // text records the counterexample family.
  bool active = true;
  std::string_view precondition;
};

// The full identity catalog, reject-only entries included.
const std::vector<RewriteIdentity>& RewriteCatalog();

// Catalog lookup by name; nullptr for unknown names.
const RewriteIdentity* FindRewrite(std::string_view name);

// Number of expression nodes (preorder site space).
int CountNodes(const events::EventExprPtr& expr);

// Preorder sites of `expr` where `name`'s soundness precondition holds.
std::vector<int> ApplicableSites(const events::EventExprPtr& expr,
                                 std::string_view name);

// Applies `name` at preorder index `site`. Returns nullptr when the
// precondition does not hold there (or the site is out of range) —
// callers must treat that as "inapplicable", never force the rewrite.
// `salt` deterministically resolves parameterized choices (slack
// amounts, the ⊥-leaf constraint shape); it never affects soundness.
events::EventExprPtr ApplyRewrite(const events::EventExprPtr& expr,
                                  std::string_view name, int site,
                                  uint64_t salt);

// Deep structural equality: op, distance bounds, interval constraint,
// and primitive event types (by canonical key), recursively.
bool StructurallyEqual(const events::EventExprPtr& a,
                       const events::EventExprPtr& b);

// The object-type constraint value carried by the ⊥ ("never") leaf the
// or-bottom identity introduces. No product catalog maps any EPC to it
// (the fuzz environment runs with a null catalog, where type(o) = ""),
// so the leaf provably matches no observation.
inline constexpr std::string_view kNeverTypeConstraint = "__never__";

}  // namespace rfidcep::engine

#endif  // RFIDCEP_ENGINE_REWRITE_H_
