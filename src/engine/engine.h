// RcedaEngine: the public facade of the RFID complex event detection
// system (paper Fig. 2).
//
// Typical use:
//
//   store::Database db;
//   db.InstallRfidSchema();
//   RcedaEngine engine(&db, events::Environment{&catalog, &readers});
//   engine.AddRulesFromText(R"(
//     CREATE RULE r1, duplicate detection rule
//     ON WITHIN(observation(r, o, t1); observation(r, o, t2), 5sec)
//     IF true
//     DO send duplicate msg(observation(r, o, t1))
//   )");
//   engine.RegisterProcedure("send duplicate msg", ...);
//   engine.Compile();
//   for (const Observation& obs : stream) engine.Process(obs);
//   engine.Flush();

#ifndef RFIDCEP_ENGINE_ENGINE_H_
#define RFIDCEP_ENGINE_ENGINE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "engine/action_stage.h"
#include "engine/actions.h"
#include "engine/detector.h"
#include "engine/graph.h"
#include "engine/sharded_engine.h"
#include "events/event_type.h"
#include "rules/parser.h"
#include "rules/rule.h"
#include "store/database.h"

namespace rfidcep::engine {

struct EngineOptions {
  DetectorOptions detector;
  // When false, rule matches are counted (and reported to the match
  // callback) but actions are not executed — the paper's Fig. 9
  // measurement excludes action cost the same way.
  bool execute_actions = true;
  // Number of detection shards. 1 (the default) is the serial in-place
  // fast path: one merged graph, one detector, no queue hops. Values > 1
  // partition the rule set across dedicated worker threads (see
  // engine/sharded_engine.h); conditions, actions, fired counts, and the
  // match callback still run on the calling thread, in a canonical order.
  int shards = 1;
  // Per-shard command/match ring capacity when shards > 1.
  size_t shard_queue_capacity = 1024;
  // Run rule actions on a dedicated pipeline stage instead of inline on
  // the detection path (engine/action_stage.h). Matches are still fired,
  // counted, and sequenced on the detection thread in canonical order;
  // only the SQL/procedure execution moves off it. EngineStats action
  // fields and the deferred error then refresh at the synchronization
  // points (Flush, SerializeState, RestoreState, Reset) rather than per
  // match. No effect when execute_actions is false.
  bool async_actions = false;
  // Bounded action-queue capacity when async_actions is set (rounded up
  // to a power of two). A full queue blocks the detection thread —
  // bounded-queue backpressure, same as the shard rings.
  size_t action_queue_capacity = 1024;
  // How the stream is split when shards > 1: kRule partitions the rule
  // set, kData replicates key-partitionable rules and splits the stream
  // by hash(EPC / site) — see engine/sharded_engine.h. Ignored when
  // shards <= 1.
  PartitionMode partition = PartitionMode::kRule;
  // Whether Compile() resolves registry instruments and times rule
  // evaluation. Defaults on at compile time (cmake -DRFIDCEP_METRICS=OFF
  // flips the default); when off, every instrumentation site in the
  // engine, detector, shards, and action dispatcher is a branch on a
  // null pointer (<2% overhead, see docs/observability.md).
  bool enable_metrics = common::kMetricsDefaultEnabled;
};

struct EngineStats {
  DetectorStats detector;
  uint64_t rules_fired = 0;        // Matches whose condition held.
  uint64_t condition_rejects = 0;  // Matches whose condition was false.
  uint64_t condition_errors = 0;
  uint64_t action_errors = 0;
  uint64_t sql_actions_executed = 0;
  uint64_t procedures_invoked = 0;
  uint64_t unknown_procedures = 0;
};

struct EngineInstruments;

// The daemon-facing slice of the engine: what a long-running server
// front-end (src/server/) needs to drive a compiled, rule-loaded engine
// — stream observations, mark durability points, and report — without
// seeing rule registration, compilation, or wiring. Narrow on purpose:
// the server (and its tests) program against this, so a fake engine can
// stand in for the real one, and the daemon cannot reach into lifecycle
// calls that only make sense at setup time.
class EngineFrontend {
 public:
  virtual ~EngineFrontend() = default;

  // Streaming (see RcedaEngine for the lifecycle contract).
  virtual Status ProcessAll(const std::vector<events::Observation>& batch) = 0;
  virtual Status AdvanceTo(TimePoint t) = 0;
  virtual Status Flush() = 0;

  // Durability: snapshot bytes out / in (docs/recovery.md).
  virtual Status SerializeState(std::string* out) = 0;
  virtual Status RestoreState(std::string_view bytes) = 0;

  // Introspection and observability.
  virtual const EngineStats& stats() const = 0;
  virtual uint64_t FiredCount(std::string_view rule_id) const = 0;
  virtual size_t num_rules() const = 0;
  virtual const rules::Rule& rule(size_t index) const = 0;
  virtual std::string ExportMetrics() const = 0;
};

class RcedaEngine : public EngineFrontend {
 public:
  // `db` may be null when no rule uses SQL actions. `env` supplies the
  // type()/group() mapping functions; copied.
  RcedaEngine(store::Database* db, events::Environment env,
              EngineOptions options = {});
  ~RcedaEngine();

  RcedaEngine(const RcedaEngine&) = delete;
  RcedaEngine& operator=(const RcedaEngine&) = delete;

  // --- Rule registration (before Compile) ---------------------------------
  Status AddRule(rules::Rule rule);
  Status AddRules(rules::RuleSet set);
  Status AddRulesFromText(std::string_view program);

  // Removes a rule by id. Implies Decompile() when already compiled.
  Status RemoveRule(std::string_view rule_id);

  // Builds the event graph and detector (or the sharded detection
  // pipeline when options.shards > 1). Idempotent until rules change.
  Status Compile();
  bool compiled() const {
    return detector_ != nullptr || sharded_ != nullptr;
  }

  // Changes the shard count used by the next Compile(). Requires
  // !compiled() (Decompile() first to re-shard an existing engine).
  Status SetShards(int shards);
  // Detection shards in use: 1 for the serial fast path; when compiled
  // with options.shards > 1, the actual count (empty shards collapse).
  int num_shards() const {
    return sharded_ != nullptr ? sharded_->num_shards() : 1;
  }
  // True when the compiled pipeline runs data-partitioned (kData was
  // requested and at least one rule was key-partitionable).
  bool data_partitioned() const {
    return sharded_ != nullptr && sharded_->data_partitioned();
  }

  // Drops the compiled graph and all runtime state so rules can be added
  // or removed again. Statistics and fired counts are preserved.
  void Decompile();

  // Rebuilds the detector: clears buffered partial matches, pending
  // pseudo events, and the clock (a new stream may start at t=0).
  // Statistics and fired counts are reset. Requires compiled().
  Status Reset();

  // --- Streaming -----------------------------------------------------------
  // Lifecycle: every streaming call requires compiled() — Process /
  // ProcessAll / AdvanceTo before Compile() (or after Decompile()) fail
  // with kFailedPrecondition, as do all three after Flush() has ended the
  // stream. Flush() itself is idempotent; Reset() starts a new stream.
  Status Process(const events::Observation& obs);
  Status ProcessAll(const std::vector<events::Observation>& batch) override;
  // Fires pending pseudo events strictly before `t` / all of them. A
  // pseudo at exactly `t` stays pending so an observation at `t` can still
  // falsify or extend it first (same rule Process applies).
  Status AdvanceTo(TimePoint t) override;
  Status Flush() override;

  // --- Durability (docs/recovery.md) ---------------------------------------
  // Serializes the engine's detection state (engine/snapshot.h format).
  // Requires compiled(). Capture happens at one logical instant: the
  // engine first advances detection to the current clock, so expirations
  // scheduled strictly before it fire — and their matches are delivered —
  // as part of the checkpoint. Action side effects already in the store
  // are NOT captured.
  Status SerializeState(std::string* out) override;
  // Replaces detection state from serialized `bytes`. Requires
  // compiled() with the same rule set and parameter context — validated
  // by the snapshot's rule-set fingerprint (kFailedPrecondition on
  // mismatch, and on a format version this build does not read). The
  // shard count may differ from the snapshot's: state is re-partitioned.
  Status RestoreState(std::string_view bytes) override;
  // SerializeState / RestoreState against the file at `path`.
  Status Checkpoint(const std::string& path);
  Status Restore(const std::string& path);
  // Attaches a store write-ahead log (store/wal.h): every executed SQL
  // action is logged with its firing sequence, making store effects
  // exactly-once across a crash when paired with checkpoints (see
  // docs/recovery.md "Exactly-once effects"). Call before Compile() with
  // a WAL already Open()ed — its recovered action set seeds the
  // dispatcher's dedup map. Requires a database; null detaches.
  // The caller keeps ownership; the WAL must outlive the engine (or the
  // next AttachWal).
  Status AttachWal(store::Wal* wal);
  store::Wal* wal() const { return dispatcher_.wal(); }

  // --- Integration -----------------------------------------------------------
  void RegisterProcedure(std::string_view name, Procedure procedure) {
    dispatcher_.RegisterProcedure(name, std::move(procedure));
  }
  // Observes every rule match (before condition evaluation); test hook.
  using MatchCallback = std::function<void(const rules::Rule& rule,
                                           const events::EventInstancePtr&)>;
  void SetMatchCallback(MatchCallback callback) {
    match_callback_ = std::move(callback);
  }

  // --- Observability -----------------------------------------------------------
  // Toggles metric collection for the next Compile(). Requires
  // !compiled() (Decompile() first); registered instruments and their
  // values are preserved across toggles.
  Status SetMetricsEnabled(bool enabled);
  bool metrics_enabled() const { return options_.enable_metrics; }
  // Attaches a JSONL lifecycle trace sink (see engine/trace.h) for the
  // next Compile(); null detaches. Requires !compiled(). The sink must
  // outlive the engine (or the next Decompile()).
  Status SetTraceSink(TraceSink* sink);
  // The engine's registry: every instrument the engine, its detector(s),
  // shards, and action dispatcher registered. Live — counters update as
  // the stream is processed.
  common::MetricsRegistry& metrics_registry() { return registry_; }
  // Prometheus text exposition of every registered metric (see
  // docs/observability.md for the catalog). "# metrics disabled" when
  // collection is off.
  std::string ExportMetrics() const override;

  // --- Introspection -----------------------------------------------------------
  const EngineStats& stats() const override { return stats_; }
  uint64_t FiredCount(std::string_view rule_id) const override;
  size_t num_rules() const override { return rules_.size(); }
  const rules::Rule& rule(size_t index) const override { return rules_[index]; }
  // Requires compiled().
  const EventGraph& graph() const { return *graph_; }
  TimePoint clock() const {
    if (sharded_ != nullptr) return sharded_->clock();
    return detector_ != nullptr ? detector_->clock() : 0;
  }
  size_t TotalBufferedEntries() const {
    if (sharded_ != nullptr) return sharded_->TotalBufferedEntries();
    return detector_ != nullptr ? detector_->TotalBufferedEntries() : 0;
  }
  size_t PendingPseudoEvents() const {
    if (sharded_ != nullptr) return sharded_->PendingPseudoEvents();
    return detector_ != nullptr ? detector_->PendingPseudoEvents() : 0;
  }
  // First error encountered while evaluating conditions/actions on the
  // stream (streaming never aborts on action failures).
  const Status& first_deferred_error() const { return deferred_error_; }

  // One line per graph node: mode, canonical key, instances produced,
  // entries currently buffered — plus queue/clock totals. For operators
  // and debugging; requires compiled().
  std::string DebugReport() const;

 private:
  // Cumulative action counters as reported by one source (the dispatcher
  // in sync mode, the stage's confirmed Progress in async mode). Sources
  // are process-local and monotonic, so after a restore the engine's
  // logical totals are computed as
  //   restored base + (source now - source at restore)
  // — see SyncActionProgress().
  struct ActionAccounting {
    uint64_t sql_actions = 0;
    uint64_t rows_written = 0;
    uint64_t procedures = 0;
    uint64_t unknown_procedures = 0;
    uint64_t deduped = 0;
    uint64_t errors = 0;
  };

  void OnMatch(size_t rule_index, const events::EventInstancePtr& instance,
               TimePoint fire_time);
  // Detector options for the serial path with observability wiring
  // (instruments/trace) applied; requires Compile() to have resolved
  // `metrics_` when metrics are enabled.
  DetectorOptions SerialDetectorOptions() const;
  // Folds the action stage's confirmed progress `p` into EngineStats and
  // the deferred error (async mode; no-op source of truth in sync mode,
  // where OnMatch updates inline).
  void ApplyActionProgress(const ActionStage::Progress& p);
  // Reads the stage's current progress and applies it.
  void SyncActionProgress();
  // Re-bases the action accounting on the current source counters with
  // `restored` as the new logical totals (restore/reset).
  void RebaseActionAccounting(const ActionAccounting& restored);
  // Current source counters: stage progress when async, dispatcher
  // counters when sync (requires the stage drained / absent).
  ActionAccounting CurrentActionSource() const;
  // Base-adjusted logical totals into stats_ from the sync dispatcher.
  void SyncDispatcherStats();

  store::Database* db_;
  events::Environment env_;
  EngineOptions options_;
  ActionDispatcher dispatcher_;
  std::vector<rules::Rule> rules_;
  std::vector<uint64_t> fired_counts_;
  std::optional<EventGraph> graph_;
  // Declared before the detectors: they hold instrument pointers into
  // the registry up to and including their destructors (the sharded
  // coordinator updates ring gauges while enqueueing stop commands), so
  // the registry must be destroyed after them.
  common::MetricsRegistry registry_;
  std::unique_ptr<EngineInstruments> metrics_;  // Null when disabled.
  std::unique_ptr<Detector> detector_;            // options.shards <= 1.
  std::unique_ptr<ShardedDetector> sharded_;      // options.shards > 1.
  // Declared after the detectors and the registry: the stage's worker
  // dispatches into registry-owned instruments up to its join, so it
  // must be destroyed first (members destroy in reverse order).
  std::unique_ptr<ActionStage> action_stage_;     // options.async_actions.
  ActionAccounting stats_base_;   // Logical totals at last restore/reset.
  ActionAccounting source_base_;  // Source counters at that moment.
  MatchCallback match_callback_;
  EngineStats stats_;
  Status deferred_error_;
  TraceSink* trace_ = nullptr;                  // Not owned.
  uint64_t trace_obs_seq_ = 0;                  // Serial-path obs records.
  bool flushed_ = false;  // Stream ended by Flush(); cleared by
                          // Compile()/Reset(), restored from snapshots.
};

}  // namespace rfidcep::engine

#endif  // RFIDCEP_ENGINE_ENGINE_H_
