#include "engine/action_stage.h"

#include <chrono>
#include <utility>

namespace rfidcep::engine {

namespace {

uint64_t ElapsedUs(std::chrono::steady_clock::time_point start) {
  auto us = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  return static_cast<uint64_t>(us.count());
}

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

// How long the worker polls an empty ring before parking on the
// doorbell. Firings trickle in one per matched event, typically tens of
// microseconds apart: parking after every drained item costs a futex
// sleep/wake round trip PER FIRING (and makes every producer Ring() a
// kernel wakeup), which is slower than executing the action itself.
// ~1k pauses is a few tens of microseconds — enough to coalesce a
// steady firing stream into multi-item drains while bounding the idle
// burn to one doorbell timeout when the stream goes quiet. On a
// single-core host the spin is disabled outright: the worker would be
// polling on the very core the producer needs to make progress.
constexpr int kIdleSpins = 1024;

}  // namespace

ActionStage::ActionStage(ActionDispatcher* dispatcher, Options options)
    : dispatcher_(dispatcher),
      options_(options),
      ring_(options.queue_capacity) {
  worker_ = std::thread([this] { WorkerLoop(); });
}

ActionStage::~ActionStage() {
  stop_.store(true, std::memory_order_release);
  work_bell_.Ring();
  if (worker_.joinable()) worker_.join();
}

void ActionStage::Enqueue(RuleFiring firing, common::Histogram* action_us) {
  PendingAction pending;
  pending.rule = firing.rule;
  pending.seq = firing.seq;
  pending.fire_time = firing.fire_time;
  pending.replayed = firing.replayed;
  if (firing.replayed) {
    pending.params = firing.params;  // No instance to rebuild them from.
  } else {
    pending.instance = firing.instance;
  }
  pending_.push_back(std::move(pending));
  // Retire pending entries the worker has confirmed since the last call;
  // keeps the list at (roughly) ring depth.
  uint64_t processed = processed_count_.load(std::memory_order_acquire);
  while (pruned_count_ < processed && !pending_.empty()) {
    pending_.pop_front();
    ++pruned_count_;
  }

  Item item{std::move(firing), action_us};
  while (!ring_.TryPush(std::move(item))) {
    // Full ring: backpressure into the detection path. Wake the worker
    // and wait for it to confirm a batch.
    ++enqueue_stalls_;
    if (options_.enqueue_stalls != nullptr) options_.enqueue_stalls->Increment();
    uint64_t seen = done_bell_.generation();
    work_bell_.Ring();
    done_bell_.WaitBeyond(seen);
  }
  ++enqueued_count_;
  // Only ring the bell when the worker may be parked: if the item we
  // just pushed is alone in the ring, the worker had drained everything
  // and could be (about to start) waiting.
  if (ring_.size() == 1) work_bell_.Ring();
}

void ActionStage::Drain() {
  const uint64_t target = enqueued_count_;
  while (processed_count_.load(std::memory_order_acquire) < target) {
    uint64_t seen = done_bell_.generation();
    if (processed_count_.load(std::memory_order_acquire) >= target) break;
    work_bell_.Ring();  // In case the worker parked between our reads.
    done_bell_.WaitBeyond(seen);
  }
}

ActionStage::Progress ActionStage::progress() const {
  std::lock_guard<std::mutex> lock(mu_);
  return progress_;
}

std::vector<ActionStage::PendingAction> ActionStage::PendingAfter(
    uint64_t confirmed_count) {
  while (pruned_count_ < confirmed_count && !pending_.empty()) {
    pending_.pop_front();
    ++pruned_count_;
  }
  return std::vector<PendingAction>(pending_.begin(), pending_.end());
}

void ActionStage::WorkerLoop() {
  std::vector<Item> batch;
  Progress acc;
  store::Wal* wal = dispatcher_->wal();
  const int idle_spins =
      std::thread::hardware_concurrency() > 1 ? kIdleSpins : 0;
  while (true) {
    batch.clear();
    uint64_t seen = work_bell_.generation();
    if (ring_.TryPopAll(&batch) == 0) {
      if (stop_.load(std::memory_order_acquire)) break;
      bool found = false;
      for (int i = 0; i < idle_spins && !found; ++i) {
        CpuRelax();
        found = ring_.TryPopAll(&batch) != 0;
      }
      if (!found) {
        // `seen` predates the pre-spin empty check, so a Ring at any
        // point since returns immediately (no lost wakeup).
        work_bell_.WaitBeyond(seen);
        continue;
      }
    }
    for (Item& item : batch) {
      auto start = std::chrono::steady_clock::now();
      Status status = dispatcher_->Dispatch(item.firing);
      if (item.action_us != nullptr) item.action_us->Record(ElapsedUs(start));
      if (!status.ok()) {
        ++acc.firing_errors;
        if (acc.first_error.ok()) acc.first_error = status;
      }
      acc.confirmed_seq = item.firing.seq;
    }
    if (wal != nullptr) {
      // Batch boundary: one write() covers every record this drain
      // appended. (Confirmation means "handed to the OS"; durability
      // points are the engine's explicit Sync calls at checkpoints.)
      Status flushed = wal->Flush();
      if (!flushed.ok() && acc.first_error.ok()) acc.first_error = flushed;
      acc.confirmed_lsn = wal->last_lsn();
    }
    acc.confirmed_count += batch.size();
    acc.sql_actions = dispatcher_->sql_actions_executed();
    acc.rows_written = dispatcher_->rows_written();
    acc.procedures = dispatcher_->procedures_invoked();
    acc.unknown_procedures = dispatcher_->unknown_procedures();
    acc.actions_deduped = dispatcher_->actions_deduped();
    ++acc.batches;
    if (options_.batches != nullptr) options_.batches->Increment();
    {
      std::lock_guard<std::mutex> lock(mu_);
      progress_ = acc;
    }
    processed_count_.store(acc.confirmed_count, std::memory_order_release);
    done_bell_.Ring();
  }
}

}  // namespace rfidcep::engine
