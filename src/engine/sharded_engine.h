// Sharded parallel detection: the rule set is partitioned into N shards,
// each owning its own merged EventGraph, Detector, and pseudo-event
// queue, running on a dedicated worker thread.
//
// Data flow per batch (coordinator = the thread calling ProcessBatch):
//
//   1. *Route.* Each observation is stamped with a global command
//      sequence number and staged (by pointer — the batch outlives the
//      barrier) for every shard whose subscription vocabulary (reader
//      literals / group constraints of its leaves,
//      EventGraph::ComputeSubscription) can consume it; in data-partition
//      mode, for exactly one keyed replica chosen by hash(partition key).
//      Each shard's whole share then rides in ONE kObsBatch slot of its
//      bounded SPSC inbox ring, so ring traffic is per batch, not per
//      event. A full inbox applies backpressure: the coordinator drains
//      match outboxes and yields until space frees up.
//   2. *Detect.* Each worker drains its inbox in order: observations run
//      through the shard's Detector exactly as the serial engine would
//      (pseudo events scheduled before an observation's timestamp fire
//      first, against the shard's own queue). Rule completions are
//      pushed to the shard's outbox ring stamped with (command seq,
//      per-shard emission index, shard detector clock).
//   3. *Reorder + replay.* After a barrier (every shard acknowledged
//      every command of the batch), the coordinator sorts the collected
//      match records by (command seq, shard id, emission index) and
//      replays them through the match sink. Condition evaluation, SQL
//      and procedure actions against the single store::Database, and
//      fired counts therefore run on one thread, in a canonical order
//      independent of the shard count.
//
// Correctness of the partition: detection state is per graph node, and a
// node's inputs are fully determined by the observation subsequence its
// leaves subscribe to — which routing delivers to every hosting shard —
// with one exception: a SEQ+ node's open run is closed by sequence
// terminators and expiry pseudo events of *other* nodes, so rules
// sharing a SEQ+ node are coupled and must co-reside
// (EventGraph::CoupledRuleGroups); the partitioner keeps such groups on
// one shard. Per-rule matches, fired counts, and database effects are
// then identical to serial execution; duplicated subgraphs across shards
// mean aggregate counters like primitive_matches and instances_produced
// may exceed the serial counts.

#ifndef RFIDCEP_ENGINE_SHARDED_ENGINE_H_
#define RFIDCEP_ENGINE_SHARDED_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/spsc_ring.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/worker.h"
#include "engine/detector.h"
#include "engine/graph.h"
#include "events/event_instance.h"
#include "events/event_type.h"
#include "events/observation.h"
#include "rules/rule.h"

namespace rfidcep::engine {

namespace snapshot {
struct EngineSnapshot;
}  // namespace snapshot

// Matches are replayed on the coordinator thread in canonical order.
// `fire_time` is the shard detector's clock at completion time (equal to
// the serial detector's clock at the same completion).
using ShardedMatchSink =
    std::function<void(size_t rule_index,
                       const events::EventInstancePtr& instance,
                       TimePoint fire_time)>;

// How the stream is split across worker threads.
//
//  * kRule: partition the RULE set; every shard receives every
//    observation its subscription can consume. Simple, but any-reader
//    rules broadcast the whole stream to their shard, so routing/ring
//    overhead scales with the shard count.
//  * kData: partition the DATA. Rules whose joins all correlate on one
//    tag EPC (or one reader site) — the paper's common case — are
//    compiled into one merged graph REPLICATED across `shards` workers,
//    and each observation is routed to exactly ONE replica by
//    hash(partition key). Rules that correlate across objects fall back
//    to a single dedicated residual shard (rule-sharded path). If no rule
//    is key-partitionable the engine silently runs kRule.
//    Replay stays byte-identical to serial: matches carry a
//    (time, kind, scheduling stamp) key that reconstructs the serial
//    emission order across replicas (see MatchRecord below).
enum class PartitionMode : uint8_t {
  kRule = 0,
  kData,
};

struct ShardedOptions {
  int shards = 2;              // Clamped to [1, kMaxDetectionShards].
  size_t queue_capacity = 1024;  // Per-shard inbox/outbox ring capacity.
  PartitionMode partition = PartitionMode::kRule;
  DetectorOptions detector;
  // Observability wiring (both may be null). With a registry, every
  // shard gets its own labeled instrument set plus coordinator-side
  // routing counters and ring high watermarks; the registry must outlive
  // the detector. The trace sink is shared by all workers (internally
  // synchronized).
  common::MetricsRegistry* metrics = nullptr;
  TraceSink* trace = nullptr;
};

inline constexpr int kMaxDetectionShards = 32;

class ShardedDetector {
 public:
  // Builds the partition, per-shard graphs, and worker threads.
  // `union_graph` is the merged graph over all rules (used for rule
  // coupling); `rules` and `env` must outlive the detector.
  static Result<std::unique_ptr<ShardedDetector>> Create(
      const std::vector<rules::Rule>& rules, const EventGraph& union_graph,
      const events::Environment* env, ShardedOptions options,
      ShardedMatchSink sink);

  ~ShardedDetector();

  ShardedDetector(const ShardedDetector&) = delete;
  ShardedDetector& operator=(const ShardedDetector&) = delete;

  // Routes `count` observations, waits for every shard to finish them,
  // and replays the resulting matches in canonical order. Timestamps
  // must be non-decreasing across calls (DetectorOptions semantics).
  Status ProcessBatch(const events::Observation* batch, size_t count);

  // Fires pseudo events with execute time <= t on every shard.
  void AdvanceTo(TimePoint t);
  // Fires every remaining pseudo event on every shard.
  void Flush();
  // Rebuilds every shard's detector in place: buffered partial matches,
  // pseudo queues, statistics, and the clock are cleared; workers stay up.
  void Reset();

  // Aggregated statistics. `observations` / `out_of_order_dropped` are
  // counted once at the routing stage; `rule_matches` sums to exactly
  // the serial count (each rule lives on one shard); the remaining
  // counters sum over shards and may exceed serial counts where
  // subgraphs are duplicated. Callers must be quiescent (any public
  // method has returned), which every entry point guarantees by
  // barriering before it returns.
  DetectorStats stats() const;

  TimePoint clock() const;
  size_t TotalBufferedEntries() const;
  size_t PendingPseudoEvents() const;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  // Global rule indexes hosted by shard `shard`.
  const std::vector<size_t>& ShardRules(int shard) const {
    return shards_[shard]->rule_map;
  }

  // Per-shard sections: shard id, hosted rules, clock, ring depths,
  // buffered entries, and one line per graph node.
  std::string DebugReport(const std::vector<rules::Rule>& rules) const;

  // --- Checkpoint/restore (engine/snapshot.h) -----------------------------
  // Captures every shard detector into `out->sources` / `source_shards`.
  // The caller must have advanced the pipeline to one clock
  // (AdvanceTo(clock())) first; every public entry point barriers before
  // returning, so the workers are quiescent here.
  void CaptureState(const std::vector<rules::Rule>& rules,
                    snapshot::EngineSnapshot* out) const;
  // Restores shard detectors from `snap`, re-partitioning node state and
  // merging pseudo queues onto this pipeline's shard layout (the snapshot
  // may come from a serial engine or any shard count). The coordinator
  // clock and acceptance counters are restored; the snapshot's aggregate
  // detector stats become a baseline added into stats(), since per-shard
  // stats cannot be re-partitioned.
  Status RestoreState(const std::vector<rules::Rule>& rules,
                      const snapshot::EngineSnapshot& snap);

  // True when this pipeline runs data-partitioned (kData requested and at
  // least one rule was key-partitionable).
  bool data_partitioned() const { return data_mode_; }

 private:
  struct Command {
    enum class Kind : uint8_t {
      kObsBatch,   // A batch of routed observations in one ring slot.
      kAdvanceTo,
      kFlush,
      kReset,
      kBarrier,
      kStop,
    };
    Kind kind = Kind::kBarrier;
    uint64_t seq = 0;  // Global command sequence (kAdvanceTo / kFlush).
    TimePoint t = 0;   // kAdvanceTo / batch advance.
    // kObsBatch: (command seq, observation) pairs, routed per shard by
    // the coordinator; pointers are valid until the barrier. One ring
    // slot carries the shard's whole share of a ProcessBatch call, so
    // ring traffic is per batch, not per event.
    std::vector<std::pair<uint64_t, const events::Observation*>> batch;
    // kObsBatch in data mode: after the batch, advance the detector to
    // `t` under command `advance_seq`. This is the per-batch clock sync
    // that makes every barrier deliver exactly the serial match prefix
    // (all pseudo events scheduled strictly before the coordinator clock
    // have fired on their owning replica).
    bool advance_after = false;
    uint64_t advance_seq = 0;
  };

  struct MatchRecord {
    uint64_t seq = 0;        // Command that produced the match.
    uint64_t emit = 0;       // Per-shard emission index.
    uint32_t local_rule = 0;
    int shard = 0;           // Filled in by the coordinator on drain.
    TimePoint fire_time = 0;
    // Data-mode replay key: (sort_time, kind, stamp, shard, emit).
    //  * kind 0 = emitted during observation dispatch; sort_time is the
    //    observation timestamp and stamp is [command seq].
    //  * kind 1 = emitted during a pseudo-event firing; sort_time is the
    //    firing pseudo's execute_at and stamp its scheduling stamp
    //    (Detector::PseudoEvent::stamp).
    // For equal times, dispatch emissions sort before firings at that
    // instant — exactly the serial rule that an observation at `t` is
    // handled before expiries at `t`. Rule mode replays by
    // (seq, shard, emit) and leaves these fields empty.
    uint8_t kind = 0;
    TimePoint sort_time = 0;
    std::vector<uint64_t> stamp;
    events::EventInstancePtr instance;
  };

  struct Shard {
    int id = 0;
    std::vector<size_t> rule_map;  // Local rule index -> global index.
    // Data mode: this shard is a keyed replica owning partition bucket
    // `bucket` (observations with hash(key) % replicas == bucket).
    bool keyed = false;
    uint32_t bucket = 0;
    // Coordinator-side staging for the current ProcessBatch call; moved
    // into a kObsBatch command, one ring slot per shard per batch.
    std::vector<std::pair<uint64_t, const events::Observation*>> staged;
    // Drained match records, one presorted run per shard (each worker
    // emits in replay-key order), merged K-way at the barrier.
    std::vector<MatchRecord> pending;
    std::optional<EventGraph> graph;
    std::unique_ptr<Detector> detector;
    RuleMatchCallback on_local_match;  // Reused when kReset rebuilds.
    // Options the shard's detector is (re)built with: the base detector
    // options plus this shard's instruments / trace / shard id.
    DetectorOptions detector_options;
    DetectorInstruments instruments;  // Referenced by detector_options.
    // Coordinator-side instruments (null when metrics are disabled).
    common::Counter* routed = nullptr;          // Observations enqueued.
    common::Counter* enqueue_stalls = nullptr;  // Full-inbox backpressure.
    common::Counter* matches_drained = nullptr;
    common::Gauge* inbox_peak = nullptr;   // Ring depth high watermarks.
    common::Gauge* outbox_peak = nullptr;
    std::unique_ptr<common::SpscRing<Command>> inbox;
    std::unique_ptr<common::SpscRing<MatchRecord>> outbox;
    common::Doorbell work_bell;  // Coordinator -> worker.
    std::thread thread;
    // Worker-local bookkeeping (written only on the worker thread; the
    // coordinator reads them after a barrier acknowledgment).
    uint64_t current_seq = 0;
    uint64_t emit_counter = 0;
    Status first_error;
  };

  ShardedDetector(const events::Environment* env, ShardedOptions options,
                  ShardedMatchSink sink);

  void WorkerMain(Shard* shard);
  void EmitLocalMatch(Shard* shard, size_t local_rule,
                      const events::EventInstancePtr& instance);

  // Shards whose subscription can consume `obs` (bit per shard).
  uint32_t RouteMask(const events::Observation& obs) const;
  // Blocking enqueue: drains outboxes and yields while `shard`'s inbox
  // is full, so workers can always make progress.
  void EnqueueBlocking(Shard* shard, Command command);
  // Enqueues a barrier on every shard, waits for all acknowledgments
  // while draining outboxes, then replays pending matches in canonical
  // order through the sink.
  void BarrierAndDeliver();
  void DrainOutboxes();

  const events::Environment* env_;
  ShardedOptions options_;
  ShardedMatchSink sink_;

  std::vector<std::unique_ptr<Shard>> shards_;
  StringViewMap<uint32_t> route_by_reader_key_;
  uint32_t any_reader_mask_ = 0;

  // --- Data partitioning ----------------------------------------------------
  bool data_mode_ = false;
  bool object_dim_ = true;  // Partition by object (EPC) vs reader (site).
  int num_replicas_ = 0;    // Keyed replica shards are ids [0, num_replicas_).
  // Keyed-subscription gate: an observation reaches its replica only if
  // the replicated graph could consume it (same vocabulary the residual
  // routing uses).
  StringViewMap<bool> keyed_reader_keys_;
  bool keyed_any_reader_ = false;
  // Per-node partition variable symbols of the replica graph (identical
  // across replicas — same rule subset, deterministic build), used to
  // re-bucket restored state.
  std::vector<events::SymbolId> replica_partition_syms_;

  uint64_t command_seq_ = 0;
  TimePoint clock_ = 0;  // Last routed/advanced time (out-of-order gate).
  uint64_t observations_ = 0;
  uint64_t out_of_order_dropped_ = 0;
  uint64_t unrouted_ = 0;  // Observations no subscription consumed.
  // Pre-restore aggregate detector stats (observations fields zeroed —
  // the coordinator counts those itself). Added into stats(); cleared by
  // Reset().
  DetectorStats baseline_;

  // Engine-global acceptance counters, shared by name with the serial
  // path (null when metrics are disabled). Incremented once at routing.
  common::Counter* observations_counter_ = nullptr;
  common::Counter* out_of_order_counter_ = nullptr;
  common::Counter* unrouted_counter_ = nullptr;

  std::atomic<uint64_t> barrier_acks_{0};
  uint64_t barrier_target_ = 0;
  common::Doorbell ack_bell_;  // Workers -> coordinator.
};

}  // namespace rfidcep::engine

#endif  // RFIDCEP_ENGINE_SHARDED_ENGINE_H_
