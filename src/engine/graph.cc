#include "engine/graph.h"

#include <algorithm>
#include <functional>

namespace rfidcep::engine {

using events::EventExpr;
using events::EventExprPtr;
using events::ExprOp;

std::string_view DetectionModeName(DetectionMode mode) {
  switch (mode) {
    case DetectionMode::kPush:
      return "push";
    case DetectionMode::kMixed:
      return "mixed";
    case DetectionMode::kPull:
      return "pull";
  }
  return "?";
}

namespace {

EventExprPtr PropagateImpl(const EventExpr& expr, Duration inherited) {
  Duration within = std::min(expr.within(), inherited);
  EventExprPtr rebuilt;
  switch (expr.op()) {
    case ExprOp::kPrimitive:
      rebuilt = EventExpr::Primitive(expr.primitive());
      break;
    case ExprOp::kOr: {
      std::vector<EventExprPtr> children;
      children.reserve(expr.children().size());
      for (const EventExprPtr& child : expr.children()) {
        children.push_back(PropagateImpl(*child, within));
      }
      rebuilt = EventExpr::Or(std::move(children));
      break;
    }
    case ExprOp::kAnd:
      rebuilt = EventExpr::And(PropagateImpl(*expr.children()[0], within),
                               PropagateImpl(*expr.children()[1], within));
      break;
    case ExprOp::kNot:
      rebuilt = EventExpr::Not(PropagateImpl(*expr.children()[0], within));
      break;
    case ExprOp::kSeq:
      rebuilt = EventExpr::Tseq(PropagateImpl(*expr.children()[0], within),
                                PropagateImpl(*expr.children()[1], within),
                                expr.dist_lo(), expr.dist_hi());
      break;
    case ExprOp::kSeqPlus:
      rebuilt = EventExpr::TseqPlus(PropagateImpl(*expr.children()[0], within),
                                    expr.dist_lo(), expr.dist_hi());
      break;
  }
  if (within != kDurationInfinity) {
    rebuilt = EventExpr::Within(std::move(rebuilt), within);
  }
  return rebuilt;
}

}  // namespace

EventExprPtr PropagateIntervalConstraints(const EventExprPtr& expr) {
  return PropagateImpl(*expr, kDurationInfinity);
}

int EventGraph::Intern(const EventExpr& expr, bool terminator_closed) {
  std::string key = expr.CanonicalKey();
  // SEQ+ run state is parent-specific only where a parent SEQ's positive
  // terminator force-materializes the run (SeqTerminatorArrival): two
  // rules sharing that node would observe (and disturb) each other's
  // runs. Everywhere else a bounded SEQ+ is self-closing — every run is
  // materialized by its own expiry pseudo event, so the node's state
  // trajectory is identical whether it serves one rule or many, and the
  // per-rule continuation slots above it keep run *consumption* private.
  // Such occurrences are share-eligible; sharing them is opt-in
  // (share_prefixes_). Unbounded or terminator-closed SEQ+ stays private
  // per occurrence; it never touches the intern table at all, so an
  // interned eligible node can never acquire a terminator-closed parent.
  bool eligible = false;
  if (expr.op() == ExprOp::kSeqPlus) {
    bool bounded = expr.dist_hi() != kDurationInfinity ||
                   expr.within() != kDurationInfinity;
    eligible = bounded && !terminator_closed;
  }
  bool shareable =
      expr.op() != ExprOp::kSeqPlus || (share_prefixes_ && eligible);
  if (shareable) {
    if (auto it = interned_.find(key); it != interned_.end()) {
      return it->second;
    }
  }
  // Intern children first (so ids are topologically ordered).
  std::vector<int> child_ids;
  child_ids.reserve(expr.children().size());
  for (size_t c = 0; c < expr.children().size(); ++c) {
    bool child_closed =
        expr.op() == ExprOp::kSeq && c == 0 &&
        expr.children()[1]->op() != ExprOp::kNot;
    child_ids.push_back(Intern(*expr.children()[c], child_closed));
  }

  GraphNode node;
  node.id = static_cast<int>(nodes_.size());
  node.op = expr.op();
  node.primitive = expr.primitive();
  node.dist_lo = expr.dist_lo();
  node.dist_hi = expr.dist_hi();
  node.within = expr.within();
  node.children = child_ids;
  node.canonical_key = key;
  node.seqplus_share_eligible = eligible;
  nodes_.push_back(std::move(node));
  if (shareable) interned_.emplace(std::move(key), nodes_.back().id);
  int id = nodes_.back().id;

  for (int child : child_ids) {
    auto& parents = nodes_[child].parents;
    if (std::find(parents.begin(), parents.end(), id) == parents.end()) {
      parents.push_back(id);
    }
  }
  if (expr.op() == ExprOp::kPrimitive) primitive_nodes_.push_back(id);
  return id;
}

namespace {

EventExprPtr ExprFromNode(const std::vector<GraphNode>& nodes, int id,
                          std::vector<EventExprPtr>* memo) {
  if ((*memo)[id] != nullptr) return (*memo)[id];
  const GraphNode& node = nodes[id];
  EventExprPtr expr;
  switch (node.op) {
    case ExprOp::kPrimitive:
      expr = EventExpr::Primitive(node.primitive);
      break;
    case ExprOp::kOr: {
      std::vector<EventExprPtr> children;
      children.reserve(node.children.size());
      for (int child : node.children) {
        children.push_back(ExprFromNode(nodes, child, memo));
      }
      expr = EventExpr::Or(std::move(children));
      break;
    }
    case ExprOp::kAnd:
      expr = EventExpr::And(ExprFromNode(nodes, node.children[0], memo),
                            ExprFromNode(nodes, node.children[1], memo));
      break;
    case ExprOp::kNot:
      expr = EventExpr::Not(ExprFromNode(nodes, node.children[0], memo));
      break;
    case ExprOp::kSeq:
      expr = EventExpr::Tseq(ExprFromNode(nodes, node.children[0], memo),
                             ExprFromNode(nodes, node.children[1], memo),
                             node.dist_lo, node.dist_hi);
      break;
    case ExprOp::kSeqPlus:
      expr = EventExpr::TseqPlus(ExprFromNode(nodes, node.children[0], memo),
                                 node.dist_lo, node.dist_hi);
      break;
  }
  if (node.within != kDurationInfinity) {
    expr = EventExpr::Within(std::move(expr), node.within);
  }
  (*memo)[id] = expr;
  return expr;
}

}  // namespace

events::EventExprPtr EventGraph::RuleExpr(size_t rule_index) const {
  std::vector<EventExprPtr> memo(nodes_.size());
  return ExprFromNode(nodes_, rule_roots_[rule_index], &memo);
}

void EventGraph::ComputeModes() {
  // Children precede parents in id order.
  for (GraphNode& node : nodes_) {
    auto child_mode = [&](int slot) {
      return nodes_[node.children[slot]].mode;
    };
    switch (node.op) {
      case ExprOp::kPrimitive:
        node.mode = DetectionMode::kPush;
        break;
      case ExprOp::kOr: {
        bool all_push = true;
        bool all_pull = true;
        for (int child : node.children) {
          all_push &= nodes_[child].mode == DetectionMode::kPush;
          all_pull &= nodes_[child].mode == DetectionMode::kPull;
        }
        node.mode = all_push ? DetectionMode::kPush
                    : all_pull ? DetectionMode::kPull
                               : DetectionMode::kMixed;
        break;
      }
      case ExprOp::kAnd: {
        DetectionMode a = child_mode(0);
        DetectionMode b = child_mode(1);
        if (a == DetectionMode::kPush && b == DetectionMode::kPush) {
          node.mode = DetectionMode::kPush;
        } else if (a == DetectionMode::kPull && b == DetectionMode::kPull) {
          node.mode = DetectionMode::kPull;
        } else {
          node.mode = DetectionMode::kMixed;
        }
        break;
      }
      case ExprOp::kNot:
        node.mode = DetectionMode::kPull;
        break;
      case ExprOp::kSeq: {
        // Detection is driven by the terminator (second child).
        switch (child_mode(1)) {
          case DetectionMode::kPush:
            node.mode = DetectionMode::kPush;
            break;
          case DetectionMode::kMixed:
            node.mode = DetectionMode::kMixed;
            break;
          case DetectionMode::kPull:
            // SEQ(a; NOT b): detectable at expiry when the window is
            // bounded by WITHIN or the distance constraint.
            node.mode = (node.within != kDurationInfinity ||
                         node.dist_hi != kDurationInfinity)
                            ? DetectionMode::kMixed
                            : DetectionMode::kPull;
            break;
        }
        break;
      }
      case ExprOp::kSeqPlus:
        node.mode = child_mode(0) == DetectionMode::kPull
                        ? DetectionMode::kPull
                        : DetectionMode::kMixed;
        break;
    }
  }
}

namespace {

std::vector<std::string> Intersect(const std::vector<std::string>& a,
                                   const std::vector<std::string>& b) {
  std::vector<std::string> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<std::string> Union(const std::vector<std::string>& a,
                               const std::vector<std::string>& b) {
  std::vector<std::string> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

}  // namespace

void EventGraph::ComputeJoinVars() {
  // Bound-variable sets, children first (ids are topological).
  for (GraphNode& node : nodes_) {
    switch (node.op) {
      case ExprOp::kPrimitive: {
        const events::PrimitiveEventType& type = node.primitive;
        if (!type.reader().is_literal && !type.reader().text.empty()) {
          node.bound_vars.push_back(type.reader().text);
        }
        if (!type.object().is_literal && !type.object().text.empty()) {
          node.bound_vars.push_back(type.object().text);
        }
        if (!type.time_var().empty()) {
          node.bound_vars.push_back(type.time_var());
        }
        std::sort(node.bound_vars.begin(), node.bound_vars.end());
        node.bound_vars.erase(
            std::unique(node.bound_vars.begin(), node.bound_vars.end()),
            node.bound_vars.end());
        break;
      }
      case ExprOp::kOr: {
        node.bound_vars = nodes_[node.children[0]].bound_vars;
        for (size_t i = 1; i < node.children.size(); ++i) {
          node.bound_vars =
              Intersect(node.bound_vars, nodes_[node.children[i]].bound_vars);
        }
        break;
      }
      case ExprOp::kAnd:
      case ExprOp::kSeq:
        node.bound_vars = Union(nodes_[node.children[0]].bound_vars,
                                nodes_[node.children[1]].bound_vars);
        break;
      case ExprOp::kNot:
      case ExprOp::kSeqPlus:
        // NOT instances are synthetic; SEQ+ demotes bindings to
        // multi-valued — neither guarantees scalar bindings.
        break;
    }
    if (node.op == ExprOp::kAnd || node.op == ExprOp::kSeq) {
      node.join_vars = Intersect(nodes_[node.children[0]].bound_vars,
                                 nodes_[node.children[1]].bound_vars);
    }
  }
  // NOT log keys: variables shared with every probing sibling.
  for (GraphNode& node : nodes_) {
    if (node.op != ExprOp::kNot) continue;
    std::vector<std::string> key = nodes_[node.children[0]].bound_vars;
    for (int parent_id : node.parents) {
      const GraphNode& parent = nodes_[parent_id];
      for (int sibling : parent.children) {
        if (sibling != node.id) {
          key = Intersect(key, nodes_[sibling].bound_vars);
        }
      }
    }
    node.join_vars = std::move(key);
  }
  // Intern the join vocabulary once, at compile time.
  for (GraphNode& node : nodes_) {
    node.join_syms.reserve(node.join_vars.size());
    for (const std::string& var : node.join_vars) {
      node.join_syms.push_back(events::InternSymbol(var));
    }
  }
}

namespace {

// Upper bound on how long after its t_end an instance of `id` can arrive at
// its parents. Primitives arrive immediately. A SEQ+ run closes only when the
// clock passes run_end + min(dist_hi, within), so its instance lags by that
// much plus whatever lag its element already carries. Composite nodes inherit
// the worst lag among their non-negated children (NOT children never produce
// arrivals; they are only consulted via log queries).
Duration MaterializationLag(const std::vector<GraphNode>& nodes, int id,
                            std::vector<Duration>* memo) {
  Duration& slot = (*memo)[id];
  if (slot >= 0) return slot;
  slot = 0;  // Primitives and kNot stay at zero; also breaks any cycle.
  const GraphNode& node = nodes[id];
  if (node.op == ExprOp::kSeqPlus) {
    Duration closure = std::min(node.dist_hi, node.within);
    slot = AddSaturating(closure,
                         MaterializationLag(nodes, node.children[0], memo));
  } else if (node.op != ExprOp::kPrimitive && node.op != ExprOp::kNot) {
    Duration lag = 0;
    for (int child_id : node.children) {
      if (nodes[child_id].op == ExprOp::kNot) continue;
      lag = std::max(lag, MaterializationLag(nodes, child_id, memo));
    }
    slot = lag;
  }
  return slot;
}

}  // namespace

void EventGraph::ComputeRetention() {
  std::vector<Duration> lag_memo(nodes_.size(), Duration{-1});
  for (GraphNode& node : nodes_) {
    Duration retention = 0;
    for (int parent_id : node.parents) {
      const GraphNode& parent = nodes_[parent_id];
      Duration window = parent.within;
      if (window == kDurationInfinity && parent.op == ExprOp::kSeq) {
        window = parent.dist_hi;
      }
      // A query against this node's log is anchored at the triggering
      // sibling's t_end, which can lie well before the clock when that
      // sibling materializes late (e.g. a SEQ+ run closing at its expiry
      // pseudo event). Pad the window by the siblings' materialization lag
      // so falsifiers are still in the log when the late query arrives.
      Duration sibling_lag = 0;
      for (int child_id : parent.children) {
        if (child_id == node.id || nodes_[child_id].op == ExprOp::kNot) {
          continue;
        }
        sibling_lag = std::max(
            sibling_lag, MaterializationLag(nodes_, child_id, &lag_memo));
      }
      retention = std::max(retention, AddSaturating(window, sibling_lag));
    }
    node.retention = retention;
  }
}

Status EventGraph::Validate(
    const std::vector<const rules::Rule*>& rules) const {
  auto rule_error = [&](size_t rule_index, const std::string& what) {
    return Status::FailedPrecondition(
        "invalid rule '" + rules[rule_index]->id + "': " + what);
  };

  // Per-node structural checks.
  for (const GraphNode& node : nodes_) {
    if (node.op == ExprOp::kNot) {
      const GraphNode& child = nodes_[node.children[0]];
      if (child.mode != DetectionMode::kPush) {
        return Status::Unimplemented(
            "NOT over a non-spontaneous event (" + child.canonical_key +
            ") is not supported");
      }
      for (int parent_id : node.parents) {
        const GraphNode& parent = nodes_[parent_id];
        if (parent.op != ExprOp::kAnd && parent.op != ExprOp::kSeq) {
          return Status::Unimplemented(
              "NOT may only appear under AND or SEQ/TSEQ");
        }
      }
    }
    if (node.op == ExprOp::kSeq) {
      bool left_not = nodes_[node.children[0]].op == ExprOp::kNot;
      bool right_not = nodes_[node.children[1]].op == ExprOp::kNot;
      if ((left_not || right_not) && node.within == kDurationInfinity &&
          node.dist_hi == kDurationInfinity) {
        return Status::FailedPrecondition(
            "SEQ with a negated side needs a WITHIN or distance bound: " +
            node.canonical_key);
      }
      if (left_not && right_not) {
        return Status::Unimplemented(
            "SEQ with both sides negated is not supported");
      }
    }
    if (node.op == ExprOp::kAnd && node.mode == DetectionMode::kMixed &&
        node.within == kDurationInfinity) {
      return Status::FailedPrecondition(
          "AND with a negated side needs a WITHIN bound to ever be "
          "detected: " +
          node.canonical_key);
    }
    if (node.op == ExprOp::kSeqPlus) {
      bool bounded = node.dist_hi != kDurationInfinity ||
                     node.within != kDurationInfinity;
      if (!bounded) {
        // Only legal when every use is as the initiator of a SEQ, whose
        // terminator then closes the open run.
        bool queried_only = !node.parents.empty();
        for (int parent_id : node.parents) {
          const GraphNode& parent = nodes_[parent_id];
          if (parent.op != ExprOp::kSeq || parent.children[0] != node.id) {
            queried_only = false;
          }
        }
        if (!queried_only) {
          return Status::FailedPrecondition(
              "unbounded SEQ+ can never close: " + node.canonical_key +
              " (add distance bounds, WITHIN, or a sequence terminator)");
        }
      }
    }
  }

  for (size_t i = 0; i < rule_roots_.size(); ++i) {
    const GraphNode& root = nodes_[rule_roots_[i]];
    if (root.mode == DetectionMode::kPull) {
      return rule_error(i,
                        "event is pull-mode (non-spontaneous with no bounded "
                        "window); it can never be detected");
    }
  }
  return Status::Ok();
}

Result<EventGraph> EventGraph::Build(const std::vector<rules::Rule>& rules,
                                     bool share_prefixes) {
  std::vector<const rules::Rule*> pointers;
  pointers.reserve(rules.size());
  for (const rules::Rule& rule : rules) pointers.push_back(&rule);
  return Build(pointers, share_prefixes);
}

Result<EventGraph> EventGraph::Build(
    const std::vector<const rules::Rule*>& rules, bool share_prefixes) {
  EventGraph graph;
  graph.share_prefixes_ = share_prefixes;
  for (size_t i = 0; i < rules.size(); ++i) {
    if (rules[i]->event == nullptr) {
      return Status::InvalidArgument("rule '" + rules[i]->id +
                                     "' has no event");
    }
    EventExprPtr propagated = PropagateIntervalConstraints(rules[i]->event);
    int root = graph.Intern(*propagated, /*terminator_closed=*/false);
    graph.rule_roots_.push_back(root);
    graph.nodes_[root].rule_indexes.push_back(i);
  }
  graph.ComputeModes();
  graph.ComputeRetention();
  graph.ComputeJoinVars();
  RFIDCEP_RETURN_IF_ERROR(graph.Validate(rules));
  return graph;
}

EventGraph::Subscription EventGraph::ComputeSubscription() const {
  Subscription sub;
  for (int id : primitive_nodes_) {
    const events::PrimitiveEventType& type = nodes_[id].primitive;
    if (type.reader().is_literal) {
      sub.reader_keys.push_back(type.reader().text);
    } else if (type.group_constraint().has_value()) {
      sub.reader_keys.push_back(*type.group_constraint());
    } else {
      sub.any_reader = true;
    }
  }
  std::sort(sub.reader_keys.begin(), sub.reader_keys.end());
  sub.reader_keys.erase(
      std::unique(sub.reader_keys.begin(), sub.reader_keys.end()),
      sub.reader_keys.end());
  return sub;
}

EventGraph::RulePartition EventGraph::ClassifyRulePartition(
    size_t rule_index) const {
  RulePartition out;
  bool has_seqplus = false;
  bool object_ok = true, reader_ok = true;
  std::string object_var, reader_var;
  std::vector<bool> seen(nodes_.size());
  std::vector<int> stack{rule_roots_[rule_index]};
  while (!stack.empty()) {
    int id = stack.back();
    stack.pop_back();
    if (seen[id]) continue;
    seen[id] = true;
    const GraphNode& node = nodes_[id];
    if (node.op == ExprOp::kSeqPlus) has_seqplus = true;
    if (node.op == ExprOp::kPrimitive) {
      const events::Term& object = node.primitive.object();
      if (object.is_literal) {
        object_ok = false;
      } else if (object_var.empty()) {
        object_var = object.text;
      } else if (object_var != object.text) {
        object_ok = false;
      }
      const events::Term& reader = node.primitive.reader();
      if (reader.is_literal) {
        reader_ok = false;
      } else if (reader_var.empty()) {
        reader_var = reader.text;
      } else if (reader_var != reader.text) {
        reader_ok = false;
      }
    }
    for (int child : node.children) stack.push_back(child);
  }
  if (has_seqplus) return out;  // Open runs span keys: never partitionable.
  if (object_ok && !object_var.empty()) {
    out.cls = RulePartitionClass::kEpcKeyed;
    out.key_var = object_var;
  } else if (reader_ok && !reader_var.empty()) {
    out.cls = RulePartitionClass::kSiteKeyed;
    out.key_var = reader_var;
  }
  return out;
}

std::vector<std::string> EventGraph::NodePartitionVars(bool object_dim) const {
  std::vector<std::string> vars(nodes_.size());
  // Leaves bind their own term variable; hash-consing guarantees every
  // internal node's leaves agree (variable names are part of the
  // canonical key), so any leaf under the node names its partition var.
  std::function<const std::string&(int)> var_of =
      [&](int id) -> const std::string& {
    if (!vars[id].empty()) return vars[id];
    const GraphNode& node = nodes_[id];
    if (node.op == ExprOp::kPrimitive) {
      const events::Term& term =
          object_dim ? node.primitive.object() : node.primitive.reader();
      if (!term.is_literal) vars[id] = term.text;
      return vars[id];
    }
    for (int child : node.children) {
      const std::string& v = var_of(child);
      if (!v.empty()) return vars[id] = v, vars[id];
    }
    return vars[id];
  };
  for (size_t id = 0; id < nodes_.size(); ++id) var_of(static_cast<int>(id));
  return vars;
}

std::vector<std::vector<size_t>> EventGraph::CoupledRuleGroups() const {
  size_t num_rules = rule_roots_.size();
  std::vector<size_t> parent(num_rules);
  for (size_t i = 0; i < num_rules; ++i) parent[i] = i;
  auto find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](size_t a, size_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  };

  // Union rules that reach a common SEQ+ node.
  std::unordered_map<int, size_t> seqplus_owner;
  std::vector<bool> seen(nodes_.size());
  std::vector<int> stack;
  for (size_t r = 0; r < num_rules; ++r) {
    seen.assign(nodes_.size(), false);
    stack.assign(1, rule_roots_[r]);
    while (!stack.empty()) {
      int id = stack.back();
      stack.pop_back();
      if (seen[id]) continue;
      seen[id] = true;
      if (nodes_[id].op == ExprOp::kSeqPlus) {
        auto [it, inserted] = seqplus_owner.emplace(id, r);
        if (!inserted) unite(it->second, r);
      }
      for (int child : nodes_[id].children) stack.push_back(child);
    }
  }

  std::vector<std::vector<size_t>> groups;
  std::unordered_map<size_t, size_t> group_of_root;
  for (size_t r = 0; r < num_rules; ++r) {
    size_t root = find(r);
    auto [it, inserted] = group_of_root.emplace(root, groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(r);
  }
  return groups;
}

std::vector<std::string> EventGraph::NodeStateKeys(
    const std::vector<std::string>& rule_ids) const {
  std::vector<std::string> keys(nodes_.size());
  // Keys are built parent-first for SEQ+ chains; recursion depth is the
  // expression nesting depth.
  std::function<const std::string&(int)> key_of =
      [&](int id) -> const std::string& {
    std::string& out = keys[id];
    if (!out.empty()) return out;
    const GraphNode& node = nodes_[id];
    if (node.op != ExprOp::kSeqPlus) {
      out = node.canonical_key;
      return out;
    }
    if (share_prefixes_ && node.seqplus_share_eligible) {
      // Shared across rules: hash-consing makes the canonical key unique
      // among shared SEQ+ nodes, and a shared node's state trajectory
      // matches each private copy's, so this key is position-free.
      out = "shared|";
      out += node.canonical_key;
      return out;
    }
    if (node.parents.empty()) {
      // A private SEQ+ rule root is created per rule, so it carries
      // exactly one rule index (Intern never reuses a private SEQ+).
      out = "rule:";
      out += node.rule_indexes.empty()
                 ? "#" + std::to_string(id)
                 : rule_ids[node.rule_indexes.front()];
      out += '|';
      out += node.canonical_key;
      return out;
    }
    // Nested SEQ+: at most one parent (non-shareable nodes are never
    // re-interned), and (parent state key, slot) pins the occurrence.
    int parent_id = node.parents.front();
    const GraphNode& parent = nodes_[parent_id];
    size_t slot = 0;
    for (size_t c = 0; c < parent.children.size(); ++c) {
      if (parent.children[c] == id) {
        slot = c;
        break;
      }
    }
    out = key_of(parent_id);
    out += "|c";
    out += std::to_string(slot);
    out += '|';
    out += node.canonical_key;
    return out;
  };
  for (size_t id = 0; id < nodes_.size(); ++id) {
    key_of(static_cast<int>(id));
  }
  return keys;
}

std::vector<std::string> EventGraph::NodeStateAliases() const {
  // Eligibility is computed identically in both compile modes, so for a
  // given rule set the set of aliased canonical keys agrees between a
  // shared graph ("shared|<key>" state keys) and an unshared one
  // (positional "…|<key>" state keys for the same occurrences).
  std::vector<std::string> aliases(nodes_.size());
  for (const GraphNode& node : nodes_) {
    if (node.op == ExprOp::kSeqPlus && node.seqplus_share_eligible) {
      aliases[node.id] = node.canonical_key;
    }
  }
  return aliases;
}

std::string EventGraph::DebugString() const {
  std::string out;
  for (const GraphNode& node : nodes_) {
    out += "#" + std::to_string(node.id) + " " +
           std::string(DetectionModeName(node.mode)) + " " +
           node.canonical_key;
    if (!node.rule_indexes.empty()) {
      out += " [rules:";
      for (size_t rule : node.rule_indexes) {
        out += " " + std::to_string(rule);
      }
      out += "]";
    }
    out += "\n";
  }
  return out;
}

}  // namespace rfidcep::engine
