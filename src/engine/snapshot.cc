#include "engine/snapshot.h"

#include <algorithm>
#include <array>
#include <bit>
#include <limits>
#include <map>
#include <optional>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "events/symbol.h"

namespace rfidcep::engine::snapshot {

using events::BindingValue;
using events::Bindings;
using events::EventInstance;
using events::EventInstancePtr;

namespace {

// --- Byte stream helpers ----------------------------------------------------

class Writer {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) U8(static_cast<uint8_t>(v >> (8 * i)));
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) U8(static_cast<uint8_t>(v >> (8 * i)));
  }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    out_.append(s);
  }
  void Raw(std::string_view s) { out_.append(s); }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  Status U8(uint8_t* v) {
    RFIDCEP_RETURN_IF_ERROR(Need(1));
    *v = static_cast<uint8_t>(data_[pos_++]);
    return Status::Ok();
  }
  Status U32(uint32_t* v) {
    RFIDCEP_RETURN_IF_ERROR(Need(4));
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_++]))
            << (8 * i);
    }
    return Status::Ok();
  }
  Status U64(uint64_t* v) {
    RFIDCEP_RETURN_IF_ERROR(Need(8));
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_++]))
            << (8 * i);
    }
    return Status::Ok();
  }
  Status I64(int64_t* v) {
    uint64_t u = 0;
    RFIDCEP_RETURN_IF_ERROR(U64(&u));
    *v = static_cast<int64_t>(u);
    return Status::Ok();
  }
  Status Str(std::string* s) {
    uint32_t n = 0;
    RFIDCEP_RETURN_IF_ERROR(U32(&n));
    RFIDCEP_RETURN_IF_ERROR(Need(n));
    s->assign(data_.substr(pos_, n));
    pos_ += n;
    return Status::Ok();
  }
  Status Raw(size_t n, std::string_view* out) {
    RFIDCEP_RETURN_IF_ERROR(Need(n));
    *out = data_.substr(pos_, n);
    pos_ += n;
    return Status::Ok();
  }
  // Collection sizes are length-prefixed; cap preallocation by what the
  // remaining bytes could possibly hold (min 1 byte per element).
  Status Count(uint32_t* n) {
    RFIDCEP_RETURN_IF_ERROR(U32(n));
    if (*n > data_.size() - pos_) {
      return Status::InvalidArgument("snapshot: impossible element count");
    }
    return Status::Ok();
  }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status Need(size_t n) {
    if (data_.size() - pos_ < n) {
      return Status::InvalidArgument("snapshot: truncated input");
    }
    return Status::Ok();
  }

  std::string_view data_;
  size_t pos_ = 0;
};

// --- Value helpers ----------------------------------------------------------

void PutValue(Writer* w, const BindingValue& v) {
  if (const std::string* s = std::get_if<std::string>(&v)) {
    w->U8(0);
    w->Str(*s);
  } else {
    w->U8(1);
    w->I64(std::get<TimePoint>(v));
  }
}

Status GetValue(Reader* r, BindingValue* v) {
  uint8_t tag = 0;
  RFIDCEP_RETURN_IF_ERROR(r->U8(&tag));
  if (tag == 0) {
    std::string s;
    RFIDCEP_RETURN_IF_ERROR(r->Str(&s));
    *v = std::move(s);
    return Status::Ok();
  }
  if (tag == 1) {
    TimePoint t = 0;
    RFIDCEP_RETURN_IF_ERROR(r->I64(&t));
    *v = t;
    return Status::Ok();
  }
  return Status::InvalidArgument("snapshot: unknown binding value tag");
}

// Store values (pending-action params), tagged by ValueKind. Mirrors the
// WAL codec: kNull/kUc carry no payload, kDouble round-trips via bit
// pattern so re-encoding is byte-exact.
void PutStoreScalar(Writer* w, const store::Value& v) {
  w->U8(static_cast<uint8_t>(v.kind()));
  switch (v.kind()) {
    case store::ValueKind::kNull:
    case store::ValueKind::kUc:
      break;
    case store::ValueKind::kInt:
      w->I64(v.AsInt());
      break;
    case store::ValueKind::kTime:
      w->I64(v.AsTime());
      break;
    case store::ValueKind::kDouble:
      w->U64(std::bit_cast<uint64_t>(v.AsDouble()));
      break;
    case store::ValueKind::kString:
      w->Str(v.AsString());
      break;
  }
}

Status GetStoreScalar(Reader* r, store::Value* v) {
  uint8_t tag = 0;
  RFIDCEP_RETURN_IF_ERROR(r->U8(&tag));
  switch (static_cast<store::ValueKind>(tag)) {
    case store::ValueKind::kNull:
      *v = store::Value::Null();
      return Status::Ok();
    case store::ValueKind::kUc:
      *v = store::Value::Uc();
      return Status::Ok();
    case store::ValueKind::kInt: {
      int64_t i = 0;
      RFIDCEP_RETURN_IF_ERROR(r->I64(&i));
      *v = store::Value::Int(i);
      return Status::Ok();
    }
    case store::ValueKind::kTime: {
      int64_t t = 0;
      RFIDCEP_RETURN_IF_ERROR(r->I64(&t));
      *v = store::Value::Time(t);
      return Status::Ok();
    }
    case store::ValueKind::kDouble: {
      uint64_t bits = 0;
      RFIDCEP_RETURN_IF_ERROR(r->U64(&bits));
      *v = store::Value::Double(std::bit_cast<double>(bits));
      return Status::Ok();
    }
    case store::ValueKind::kString: {
      std::string s;
      RFIDCEP_RETURN_IF_ERROR(r->Str(&s));
      *v = store::Value::String(std::move(s));
      return Status::Ok();
    }
  }
  return Status::InvalidArgument("snapshot: unknown store value tag");
}

void PutParamValue(Writer* w, const store::ParamValue& p) {
  w->U8(p.is_multi ? 1 : 0);
  if (p.is_multi) {
    w->U32(static_cast<uint32_t>(p.values.size()));
    for (const store::Value& v : p.values) PutStoreScalar(w, v);
  } else {
    PutStoreScalar(w, p.scalar);
  }
}

Status GetParamValue(Reader* r, store::ParamValue* p) {
  uint8_t is_multi = 0;
  RFIDCEP_RETURN_IF_ERROR(r->U8(&is_multi));
  p->is_multi = is_multi != 0;
  if (p->is_multi) {
    uint32_t n = 0;
    RFIDCEP_RETURN_IF_ERROR(r->Count(&n));
    p->values.resize(n);
    for (store::Value& v : p->values) {
      RFIDCEP_RETURN_IF_ERROR(GetStoreScalar(r, &v));
    }
    return Status::Ok();
  }
  return GetStoreScalar(r, &p->scalar);
}

void PutDetectorStats(Writer* w, const DetectorStats& s) {
  w->U64(s.observations);
  w->U64(s.out_of_order_dropped);
  w->U64(s.primitive_matches);
  w->U64(s.instances_produced);
  w->U64(s.pseudo_scheduled);
  w->U64(s.pseudo_fired);
  w->U64(s.rule_matches);
}

Status GetDetectorStats(Reader* r, DetectorStats* s) {
  RFIDCEP_RETURN_IF_ERROR(r->U64(&s->observations));
  RFIDCEP_RETURN_IF_ERROR(r->U64(&s->out_of_order_dropped));
  RFIDCEP_RETURN_IF_ERROR(r->U64(&s->primitive_matches));
  RFIDCEP_RETURN_IF_ERROR(r->U64(&s->instances_produced));
  RFIDCEP_RETURN_IF_ERROR(r->U64(&s->pseudo_scheduled));
  RFIDCEP_RETURN_IF_ERROR(r->U64(&s->pseudo_fired));
  return r->U64(&s->rule_matches);
}

void PutInstance(Writer* w, const InstanceRecord& rec) {
  w->U8(rec.is_primitive ? 1 : 0);
  if (rec.is_primitive) {
    w->Str(rec.observation.reader);
    w->Str(rec.observation.object);
    w->I64(rec.observation.timestamp);
  } else {
    w->I64(rec.t_begin);
    w->I64(rec.t_end);
  }
  w->U64(rec.sequence_number);
  w->U32(static_cast<uint32_t>(rec.scalars.size()));
  for (const auto& [name, value] : rec.scalars) {
    w->Str(name);
    PutValue(w, value);
  }
  w->U32(static_cast<uint32_t>(rec.multis.size()));
  for (const auto& [name, values] : rec.multis) {
    w->Str(name);
    w->U32(static_cast<uint32_t>(values.size()));
    for (const BindingValue& value : values) PutValue(w, value);
  }
  w->U32(static_cast<uint32_t>(rec.children.size()));
  for (uint32_t child : rec.children) w->U32(child);
}

Status GetInstance(Reader* r, uint32_t self_index, InstanceRecord* rec) {
  uint8_t primitive = 0;
  RFIDCEP_RETURN_IF_ERROR(r->U8(&primitive));
  rec->is_primitive = primitive != 0;
  if (rec->is_primitive) {
    RFIDCEP_RETURN_IF_ERROR(r->Str(&rec->observation.reader));
    RFIDCEP_RETURN_IF_ERROR(r->Str(&rec->observation.object));
    RFIDCEP_RETURN_IF_ERROR(r->I64(&rec->observation.timestamp));
  } else {
    RFIDCEP_RETURN_IF_ERROR(r->I64(&rec->t_begin));
    RFIDCEP_RETURN_IF_ERROR(r->I64(&rec->t_end));
  }
  RFIDCEP_RETURN_IF_ERROR(r->U64(&rec->sequence_number));
  uint32_t n = 0;
  RFIDCEP_RETURN_IF_ERROR(r->Count(&n));
  rec->scalars.resize(n);
  for (auto& [name, value] : rec->scalars) {
    RFIDCEP_RETURN_IF_ERROR(r->Str(&name));
    RFIDCEP_RETURN_IF_ERROR(GetValue(r, &value));
  }
  RFIDCEP_RETURN_IF_ERROR(r->Count(&n));
  rec->multis.resize(n);
  for (auto& [name, values] : rec->multis) {
    RFIDCEP_RETURN_IF_ERROR(r->Str(&name));
    uint32_t m = 0;
    RFIDCEP_RETURN_IF_ERROR(r->Count(&m));
    values.resize(m);
    for (BindingValue& value : values) {
      RFIDCEP_RETURN_IF_ERROR(GetValue(r, &value));
    }
  }
  RFIDCEP_RETURN_IF_ERROR(r->Count(&n));
  rec->children.resize(n);
  for (uint32_t& child : rec->children) {
    RFIDCEP_RETURN_IF_ERROR(r->U32(&child));
    if (child >= self_index) {
      return Status::InvalidArgument(
          "snapshot: instance child index out of order");
    }
  }
  return Status::Ok();
}

void PutNodeState(Writer* w, const NodeStateRecord& rec) {
  w->Str(rec.state_key);
  w->I64(rec.retention);
  w->U64(rec.produced);
  for (int slot = 0; slot < 2; ++slot) {
    w->U32(static_cast<uint32_t>(rec.slots[slot].size()));
    for (const SlotEntryRecord& entry : rec.slots[slot]) {
      w->U32(entry.instance);
      w->I64(entry.deadline);
    }
  }
  w->U32(static_cast<uint32_t>(rec.not_log.size()));
  for (uint32_t instance : rec.not_log) w->U32(instance);
  w->U32(static_cast<uint32_t>(rec.runs.size()));
  for (const RunRecord& run : rec.runs) {
    w->U32(static_cast<uint32_t>(run.elements.size()));
    for (uint32_t element : run.elements) w->U32(element);
    w->I64(run.t_begin);
    w->I64(run.t_end);
  }
}

Status GetNodeState(Reader* r, uint32_t num_instances, NodeStateRecord* rec) {
  auto check = [num_instances](uint32_t instance) {
    if (instance >= num_instances) {
      return Status::InvalidArgument(
          "snapshot: node state references unknown instance");
    }
    return Status::Ok();
  };
  RFIDCEP_RETURN_IF_ERROR(r->Str(&rec->state_key));
  RFIDCEP_RETURN_IF_ERROR(r->I64(&rec->retention));
  RFIDCEP_RETURN_IF_ERROR(r->U64(&rec->produced));
  uint32_t n = 0;
  for (int slot = 0; slot < 2; ++slot) {
    RFIDCEP_RETURN_IF_ERROR(r->Count(&n));
    rec->slots[slot].resize(n);
    for (SlotEntryRecord& entry : rec->slots[slot]) {
      RFIDCEP_RETURN_IF_ERROR(r->U32(&entry.instance));
      RFIDCEP_RETURN_IF_ERROR(check(entry.instance));
      RFIDCEP_RETURN_IF_ERROR(r->I64(&entry.deadline));
    }
  }
  RFIDCEP_RETURN_IF_ERROR(r->Count(&n));
  rec->not_log.resize(n);
  for (uint32_t& instance : rec->not_log) {
    RFIDCEP_RETURN_IF_ERROR(r->U32(&instance));
    RFIDCEP_RETURN_IF_ERROR(check(instance));
  }
  RFIDCEP_RETURN_IF_ERROR(r->Count(&n));
  rec->runs.resize(n);
  for (RunRecord& run : rec->runs) {
    uint32_t m = 0;
    RFIDCEP_RETURN_IF_ERROR(r->Count(&m));
    run.elements.resize(m);
    for (uint32_t& element : run.elements) {
      RFIDCEP_RETURN_IF_ERROR(r->U32(&element));
      RFIDCEP_RETURN_IF_ERROR(check(element));
    }
    RFIDCEP_RETURN_IF_ERROR(r->I64(&run.t_begin));
    RFIDCEP_RETURN_IF_ERROR(r->I64(&run.t_end));
  }
  return Status::Ok();
}

void PutPseudo(Writer* w, const PseudoRecord& rec) {
  w->I64(rec.execute_at);
  w->I64(rec.created_at);
  w->Str(rec.target_key);
  w->Str(rec.parent_key);
  w->U8(static_cast<uint8_t>(rec.anchor_kind));
  w->U8(rec.anchor_slot);
  w->U32(rec.anchor_pos);
}

Status GetPseudo(Reader* r, PseudoRecord* rec) {
  RFIDCEP_RETURN_IF_ERROR(r->I64(&rec->execute_at));
  RFIDCEP_RETURN_IF_ERROR(r->I64(&rec->created_at));
  RFIDCEP_RETURN_IF_ERROR(r->Str(&rec->target_key));
  RFIDCEP_RETURN_IF_ERROR(r->Str(&rec->parent_key));
  uint8_t kind = 0;
  RFIDCEP_RETURN_IF_ERROR(r->U8(&kind));
  if (kind > static_cast<uint8_t>(AnchorKind::kStale)) {
    return Status::InvalidArgument("snapshot: unknown pseudo anchor kind");
  }
  rec->anchor_kind = static_cast<AnchorKind>(kind);
  RFIDCEP_RETURN_IF_ERROR(r->U8(&rec->anchor_slot));
  if (rec->anchor_slot > 1) {
    return Status::InvalidArgument("snapshot: pseudo anchor slot out of range");
  }
  return r->U32(&rec->anchor_pos);
}

void PutSource(Writer* w, const DetectorSnapshot& src) {
  w->U32(static_cast<uint32_t>(src.source_id));
  w->I64(src.clock);
  w->U64(src.sequence_counter);
  w->U64(src.pseudo_counter);
  PutDetectorStats(w, src.stats);
  w->U32(static_cast<uint32_t>(src.instances.size()));
  for (const InstanceRecord& rec : src.instances) PutInstance(w, rec);
  w->U32(static_cast<uint32_t>(src.nodes.size()));
  for (const NodeStateRecord& rec : src.nodes) PutNodeState(w, rec);
  w->U32(static_cast<uint32_t>(src.pseudos.size()));
  for (const PseudoRecord& rec : src.pseudos) PutPseudo(w, rec);
}

Status GetSource(Reader* r, DetectorSnapshot* src) {
  uint32_t id = 0;
  RFIDCEP_RETURN_IF_ERROR(r->U32(&id));
  src->source_id = static_cast<int>(id);
  RFIDCEP_RETURN_IF_ERROR(r->I64(&src->clock));
  RFIDCEP_RETURN_IF_ERROR(r->U64(&src->sequence_counter));
  RFIDCEP_RETURN_IF_ERROR(r->U64(&src->pseudo_counter));
  RFIDCEP_RETURN_IF_ERROR(GetDetectorStats(r, &src->stats));
  uint32_t n = 0;
  RFIDCEP_RETURN_IF_ERROR(r->Count(&n));
  src->instances.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    RFIDCEP_RETURN_IF_ERROR(GetInstance(r, i, &src->instances[i]));
  }
  uint32_t num_instances = n;
  RFIDCEP_RETURN_IF_ERROR(r->Count(&n));
  src->nodes.resize(n);
  for (NodeStateRecord& rec : src->nodes) {
    RFIDCEP_RETURN_IF_ERROR(GetNodeState(r, num_instances, &rec));
  }
  RFIDCEP_RETURN_IF_ERROR(r->Count(&n));
  src->pseudos.resize(n);
  for (PseudoRecord& rec : src->pseudos) {
    RFIDCEP_RETURN_IF_ERROR(GetPseudo(r, &rec));
  }
  return Status::Ok();
}

// --- Fingerprint ------------------------------------------------------------

constexpr uint64_t kFnvOffset = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvBytes(uint64_t h, std::string_view s) {
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

uint64_t FnvU64(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= static_cast<uint8_t>(v >> (8 * i));
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

uint64_t ComputeFingerprint(ParameterContext context,
                            const std::vector<rules::Rule>& rules,
                            const EventGraph& graph) {
  uint64_t h = kFnvOffset;
  h = FnvU64(h, static_cast<uint64_t>(context));
  h = FnvU64(h, rules.size());
  for (size_t i = 0; i < rules.size(); ++i) {
    h = FnvBytes(h, rules[i].id);
    h = FnvBytes(h, graph.node(graph.RuleRoot(i)).canonical_key);
  }
  return h;
}

std::string EncodeEngineSnapshot(const EngineSnapshot& snap) {
  Writer w;
  w.Raw(kSnapshotMagic);
  w.U32(snap.version);
  w.U64(snap.fingerprint);
  w.U8(snap.context);
  w.U8(snap.flushed ? 1 : 0);
  w.I64(snap.clock);
  w.U64(snap.trace_obs_seq);
  PutDetectorStats(&w, snap.stats.detector);
  w.U64(snap.stats.rules_fired);
  w.U64(snap.stats.condition_rejects);
  w.U64(snap.stats.condition_errors);
  w.U64(snap.stats.action_errors);
  w.U64(snap.stats.sql_actions_executed);
  w.U64(snap.stats.procedures_invoked);
  w.U64(snap.stats.unknown_procedures);
  w.U32(static_cast<uint32_t>(snap.fired.size()));
  for (const auto& [rule_id, count] : snap.fired) {
    w.Str(rule_id);
    w.U64(count);
  }
  w.U32(static_cast<uint32_t>(snap.counters.size()));
  for (const auto& [name, value] : snap.counters) {
    w.Str(name);
    w.U64(value);
  }
  w.U32(static_cast<uint32_t>(snap.source_shards));
  w.U32(static_cast<uint32_t>(snap.sources.size()));
  for (const DetectorSnapshot& src : snap.sources) PutSource(&w, src);
  if (snap.version >= 2) {
    // Durable action section. Version-1 encodes (for the golden
    // backward-compat fixtures) stop at the sources.
    w.U64(snap.durable_lsn);
    w.U32(static_cast<uint32_t>(snap.pending_actions.size()));
    for (const EngineSnapshot::PendingActionRecord& p : snap.pending_actions) {
      w.Str(p.rule_id);
      w.U64(p.seq);
      w.I64(p.fire_time);
      w.U32(static_cast<uint32_t>(p.params.size()));
      for (const auto& [name, value] : p.params) {
        w.Str(name);
        PutParamValue(&w, value);
      }
    }
  }
  return w.Take();
}

Status DecodeEngineSnapshot(std::string_view bytes, EngineSnapshot* out) {
  Reader r(bytes);
  std::string_view magic;
  RFIDCEP_RETURN_IF_ERROR(r.Raw(kSnapshotMagic.size(), &magic));
  if (magic != kSnapshotMagic) {
    return Status::FailedPrecondition("snapshot: bad magic (not a snapshot)");
  }
  RFIDCEP_RETURN_IF_ERROR(r.U32(&out->version));
  if (out->version < kMinSnapshotVersion || out->version > kSnapshotVersion) {
    return Status::FailedPrecondition(
        "snapshot: unsupported format version " +
        std::to_string(out->version) + " (this build reads versions " +
        std::to_string(kMinSnapshotVersion) + "-" +
        std::to_string(kSnapshotVersion) + ")");
  }
  RFIDCEP_RETURN_IF_ERROR(r.U64(&out->fingerprint));
  RFIDCEP_RETURN_IF_ERROR(r.U8(&out->context));
  uint8_t flushed = 0;
  RFIDCEP_RETURN_IF_ERROR(r.U8(&flushed));
  out->flushed = flushed != 0;
  RFIDCEP_RETURN_IF_ERROR(r.I64(&out->clock));
  RFIDCEP_RETURN_IF_ERROR(r.U64(&out->trace_obs_seq));
  RFIDCEP_RETURN_IF_ERROR(GetDetectorStats(&r, &out->stats.detector));
  RFIDCEP_RETURN_IF_ERROR(r.U64(&out->stats.rules_fired));
  RFIDCEP_RETURN_IF_ERROR(r.U64(&out->stats.condition_rejects));
  RFIDCEP_RETURN_IF_ERROR(r.U64(&out->stats.condition_errors));
  RFIDCEP_RETURN_IF_ERROR(r.U64(&out->stats.action_errors));
  RFIDCEP_RETURN_IF_ERROR(r.U64(&out->stats.sql_actions_executed));
  RFIDCEP_RETURN_IF_ERROR(r.U64(&out->stats.procedures_invoked));
  RFIDCEP_RETURN_IF_ERROR(r.U64(&out->stats.unknown_procedures));
  uint32_t n = 0;
  RFIDCEP_RETURN_IF_ERROR(r.Count(&n));
  out->fired.resize(n);
  for (auto& [rule_id, count] : out->fired) {
    RFIDCEP_RETURN_IF_ERROR(r.Str(&rule_id));
    RFIDCEP_RETURN_IF_ERROR(r.U64(&count));
  }
  RFIDCEP_RETURN_IF_ERROR(r.Count(&n));
  out->counters.resize(n);
  for (auto& [name, value] : out->counters) {
    RFIDCEP_RETURN_IF_ERROR(r.Str(&name));
    RFIDCEP_RETURN_IF_ERROR(r.U64(&value));
  }
  uint32_t shards = 0;
  RFIDCEP_RETURN_IF_ERROR(r.U32(&shards));
  out->source_shards = static_cast<int>(shards);
  RFIDCEP_RETURN_IF_ERROR(r.Count(&n));
  out->sources.resize(n);
  for (DetectorSnapshot& src : out->sources) {
    RFIDCEP_RETURN_IF_ERROR(GetSource(&r, &src));
  }
  if (out->version >= 2) {
    RFIDCEP_RETURN_IF_ERROR(r.U64(&out->durable_lsn));
    RFIDCEP_RETURN_IF_ERROR(r.Count(&n));
    out->pending_actions.resize(n);
    for (EngineSnapshot::PendingActionRecord& p : out->pending_actions) {
      RFIDCEP_RETURN_IF_ERROR(r.Str(&p.rule_id));
      RFIDCEP_RETURN_IF_ERROR(r.U64(&p.seq));
      RFIDCEP_RETURN_IF_ERROR(r.I64(&p.fire_time));
      uint32_t np = 0;
      RFIDCEP_RETURN_IF_ERROR(r.Count(&np));
      p.params.resize(np);
      for (auto& [name, value] : p.params) {
        RFIDCEP_RETURN_IF_ERROR(r.Str(&name));
        RFIDCEP_RETURN_IF_ERROR(GetParamValue(&r, &value));
      }
    }
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("snapshot: trailing bytes after payload");
  }
  return Status::Ok();
}

// --- Restore planning -------------------------------------------------------

namespace {

// Rebuilds one source's instance table as live objects. Each call makes
// fresh instances, so plans for different target detectors never share.
Result<std::vector<EventInstancePtr>> DecodeInstances(
    const DetectorSnapshot& src) {
  std::vector<EventInstancePtr> out;
  out.reserve(src.instances.size());
  for (const InstanceRecord& rec : src.instances) {
    Bindings bindings;
    for (const auto& [name, value] : rec.scalars) {
      bindings.BindScalar(events::InternSymbol(name), value);
    }
    for (const auto& [name, values] : rec.multis) {
      events::SymbolId sym = events::InternSymbol(name);
      for (const BindingValue& value : values) {
        bindings.BindMulti(sym, value);
      }
    }
    if (rec.is_primitive) {
      out.push_back(EventInstance::MakePrimitive(
          rec.observation, std::move(bindings), rec.sequence_number));
    } else {
      std::vector<EventInstancePtr> children;
      children.reserve(rec.children.size());
      for (uint32_t child : rec.children) {
        children.push_back(out[child]);  // Bounds-checked at decode.
      }
      out.push_back(EventInstance::MakeComplex(rec.t_begin, rec.t_end,
                                               std::move(bindings),
                                               std::move(children),
                                               rec.sequence_number));
    }
  }
  return out;
}

// Identity of a pending pseudo event for the cross-source merge. Sources
// hosting the same node pend identical pseudo subsequences (capture
// happens after advancing every source to one clock), so equal tuples on
// different sources are the same logical pseudo; `occurrence`
// disambiguates exact repeats within one source.
using PseudoIdentity =
    std::tuple<int64_t, int64_t, std::string_view, std::string_view, uint8_t,
               uint8_t, uint32_t, uint32_t>;

PseudoIdentity IdentityOf(const PseudoRecord& rec, uint32_t occurrence) {
  return {rec.execute_at,
          rec.created_at,
          rec.target_key,
          rec.parent_key,
          static_cast<uint8_t>(rec.anchor_kind),
          rec.anchor_slot,
          rec.anchor_pos,
          occurrence};
}

}  // namespace

Result<RestorePlan> BuildRestorePlan(
    const EngineSnapshot& snap, const std::vector<std::string>& target_keys,
    const std::vector<std::string>& target_aliases) {
  if (snap.sources.empty()) {
    return Status::InvalidArgument("snapshot: no detector sources");
  }
  RestorePlan plan;
  plan.clock = snap.clock;
  for (const DetectorSnapshot& src : snap.sources) {
    if (src.clock != snap.clock) {
      return Status::Internal(
          "snapshot: source clock disagrees with the engine clock");
    }
    plan.sequence_counter =
        std::max(plan.sequence_counter, src.sequence_counter);
  }

  std::unordered_map<std::string_view, int> target_by_key;
  target_by_key.reserve(target_keys.size());
  for (size_t i = 0; i < target_keys.size(); ++i) {
    target_by_key.emplace(target_keys[i], static_cast<int>(i));
  }

  // Pick a source per target node: max retention, then lowest source id
  // (retention is the one parent-dependent dimension of node state; every
  // other field is identical wherever the node is hosted).
  struct Chosen {
    size_t source;
    const NodeStateRecord* record;
  };
  std::unordered_map<std::string_view, Chosen> chosen;
  for (size_t s = 0; s < snap.sources.size(); ++s) {
    for (const NodeStateRecord& rec : snap.sources[s].nodes) {
      if (target_by_key.find(rec.state_key) == target_by_key.end()) continue;
      auto [it, inserted] = chosen.emplace(rec.state_key, Chosen{s, &rec});
      if (!inserted && rec.retention > it->second.record->retention) {
        it->second = Chosen{s, &rec};
      }
    }
  }

  // Materialize node states; remember each restored node's position for
  // pseudo anchor resolution.
  std::vector<std::vector<EventInstancePtr>> instances(snap.sources.size());
  std::unordered_map<std::string_view, size_t> plan_node_by_key;
  auto materialize = [](const NodeStateRecord& rec,
                        const std::vector<EventInstancePtr>& table,
                        int node_id) {
    RestoredNode node;
    node.node_id = node_id;
    node.produced = rec.produced;
    for (int slot = 0; slot < 2; ++slot) {
      node.slots[slot].reserve(rec.slots[slot].size());
      for (const SlotEntryRecord& entry : rec.slots[slot]) {
        node.slots[slot].emplace_back(table[entry.instance], entry.deadline);
      }
    }
    node.not_log.reserve(rec.not_log.size());
    for (uint32_t instance : rec.not_log) {
      node.not_log.push_back(table[instance]);
    }
    node.runs.reserve(rec.runs.size());
    for (const RunRecord& run : rec.runs) {
      RestoredRun restored;
      restored.t_begin = run.t_begin;
      restored.t_end = run.t_end;
      restored.elements.reserve(run.elements.size());
      for (uint32_t element : run.elements) {
        restored.elements.push_back(table[element]);
      }
      node.runs.push_back(std::move(restored));
    }
    return node;
  };
  for (const auto& [key, pick] : chosen) {
    if (instances[pick.source].empty() &&
        !snap.sources[pick.source].instances.empty()) {
      RFIDCEP_ASSIGN_OR_RETURN(instances[pick.source],
                               DecodeInstances(snap.sources[pick.source]));
    }
    plan_node_by_key.emplace(key, plan.nodes.size());
    plan.nodes.push_back(materialize(*pick.record, instances[pick.source],
                                     target_by_key.at(key)));
  }

  // --- Cross-compile-mode aliases ----------------------------------------
  // A share-eligible SEQ+ node's state is equivalent across compiles: one
  // "shared|<K>" node in a prefix-sharing graph, one or more positional
  // "…|<K>" private copies otherwise, all with identical trajectories
  // (only instance sequence numbers differ). A target key with no exact
  // source match but a non-empty alias <K> restores from a representative
  // source key with the "|<K>" suffix that itself matches no target
  // exactly; the representative's state and pseudos fan out to every such
  // target. Exact matches are never overridden, so same-layout restores
  // stay byte-identical.
  std::unordered_map<std::string_view, std::vector<int>> alias_targets;
  std::unordered_map<std::string_view, std::string_view> rep_of_alias;
  std::unordered_map<std::string_view, std::string_view> alias_of_rep;
  if (!target_aliases.empty()) {
    std::unordered_set<std::string_view> source_keys;
    for (const DetectorSnapshot& src : snap.sources) {
      for (const NodeStateRecord& rec : src.nodes) {
        source_keys.insert(rec.state_key);
      }
      for (const PseudoRecord& rec : src.pseudos) {
        source_keys.insert(rec.target_key);
        source_keys.insert(rec.parent_key);
      }
    }
    auto suffix_matches = [](std::string_view key, std::string_view alias) {
      return key.size() > alias.size() + 1 &&
             key[key.size() - alias.size() - 1] == '|' &&
             key.substr(key.size() - alias.size()) == alias;
    };
    for (size_t i = 0; i < target_keys.size(); ++i) {
      if (target_aliases[i].empty()) continue;
      if (source_keys.count(target_keys[i]) > 0) continue;  // Exact wins.
      alias_targets[target_aliases[i]].push_back(static_cast<int>(i));
    }
    for (auto& [alias, targets] : alias_targets) {
      // Node-id order, not key order: an uninterrupted engine schedules
      // each private copy's expiry pseudo in node order, so fanned-out
      // pseudos must tie-break same-timestamp firing the same way.
      std::sort(targets.begin(), targets.end());
      // Representative: the lexicographically smallest matching source
      // key (all candidates have identical trajectories; smallest is
      // deterministic across plans).
      std::string_view rep;
      for (std::string_view key : source_keys) {
        if (target_by_key.count(key) > 0) continue;
        if (!suffix_matches(key, alias)) continue;
        if (rep.empty() || key < rep) rep = key;
      }
      if (rep.empty()) continue;
      rep_of_alias.emplace(alias, rep);
      alias_of_rep.emplace(rep, alias);
    }
    for (const auto& [alias, targets] : alias_targets) {
      auto rep_it = rep_of_alias.find(alias);
      if (rep_it == rep_of_alias.end()) continue;
      // Same source choice rule as the exact pass.
      size_t src_idx = 0;
      const NodeStateRecord* pick = nullptr;
      for (size_t s = 0; s < snap.sources.size(); ++s) {
        for (const NodeStateRecord& rec : snap.sources[s].nodes) {
          if (rec.state_key != rep_it->second) continue;
          if (pick == nullptr || rec.retention > pick->retention) {
            pick = &rec;
            src_idx = s;
          }
        }
      }
      if (pick == nullptr) continue;  // Representative had empty state.
      if (instances[src_idx].empty() &&
          !snap.sources[src_idx].instances.empty()) {
        RFIDCEP_ASSIGN_OR_RETURN(instances[src_idx],
                                 DecodeInstances(snap.sources[src_idx]));
      }
      for (int target : targets) {
        plan.nodes.push_back(materialize(*pick, instances[src_idx], target));
      }
    }
  }

  // Merge the per-source pseudo queues: emit an identity only once it is
  // at the front of EVERY source still containing it (each source's
  // sequence is a restriction of the serial firing order, so a ready
  // identity always exists), smallest identity first among the ready
  // fronts. This preserves every source's relative order — and therefore
  // every rule's — while collapsing cross-source duplicates.
  size_t num_sources = snap.sources.size();
  std::vector<std::vector<PseudoIdentity>> keys(num_sources);
  std::map<PseudoIdentity, std::vector<std::pair<size_t, size_t>>> positions;
  for (size_t s = 0; s < num_sources; ++s) {
    const std::vector<PseudoRecord>& queue = snap.sources[s].pseudos;
    std::map<PseudoIdentity, uint32_t> occurrences;
    keys[s].reserve(queue.size());
    for (size_t p = 0; p < queue.size(); ++p) {
      PseudoIdentity base = IdentityOf(queue[p], 0);
      uint32_t occurrence = occurrences[base]++;
      PseudoIdentity id = IdentityOf(queue[p], occurrence);
      positions[id].emplace_back(s, keys[s].size());
      keys[s].push_back(id);
    }
  }
  std::vector<size_t> cursor(num_sources, 0);
  uint64_t order = 0;
  auto remaining = [&] {
    for (size_t s = 0; s < num_sources; ++s) {
      if (cursor[s] < keys[s].size()) return true;
    }
    return false;
  };
  while (remaining()) {
    std::optional<PseudoIdentity> best;
    size_t best_source = 0;
    for (size_t s = 0; s < num_sources; ++s) {
      if (cursor[s] >= keys[s].size()) continue;
      const PseudoIdentity& front = keys[s][cursor[s]];
      bool ready = true;
      for (const auto& [other, pos] : positions.at(front)) {
        if (cursor[other] != pos) {
          ready = false;
          break;
        }
      }
      if (ready && (!best || front < *best)) {
        best = front;
        best_source = s;
      }
    }
    if (!best) {
      // Cannot happen when every source order restricts one serial
      // order; refuse rather than emit out of order.
      return Status::Internal("snapshot: pseudo queues are order-incompatible");
    }
    ++order;
    const PseudoRecord& rec =
        snap.sources[best_source].pseudos[cursor[best_source]];
    // Advance every source whose front is this identity.
    for (const auto& [s, pos] : positions.at(*best)) {
      if (cursor[s] == pos) ++cursor[s];
    }
    auto parent_it = target_by_key.find(rec.parent_key);
    if (parent_it == target_by_key.end()) {
      // Aliased cross-compile-mode delivery: fan the representative's
      // pseudos out to every aliased target, consecutive orders in
      // target-node order. Eligible SEQ+ pseudos are self-targeted expiry
      // timers with no anchor, so fanning is a pure copy.
      auto rep_it = alias_of_rep.find(rec.parent_key);
      if (rep_it == alias_of_rep.end()) continue;  // Other shard's node.
      if (rec.anchor_kind == AnchorKind::kLive) {
        return Status::Internal(
            "snapshot: aliased pseudo carries a live anchor");
      }
      bool first = true;
      for (int target : alias_targets.at(rep_it->second)) {
        int target_node = target;
        if (rec.target_key != rec.parent_key) {
          auto t_it = target_by_key.find(rec.target_key);
          if (t_it == target_by_key.end()) {
            return Status::Internal(
                "snapshot: pseudo target is missing from the target graph");
          }
          target_node = t_it->second;
        }
        if (!first) ++order;
        first = false;
        RestoredPseudo pseudo;
        pseudo.execute_at = rec.execute_at;
        pseudo.created_at = rec.created_at;
        pseudo.target_node = target_node;
        pseudo.parent_node = target;
        pseudo.order = order;
        plan.pseudos.push_back(std::move(pseudo));
      }
      continue;
    }
    auto target_it = target_by_key.find(rec.target_key);
    if (target_it == target_by_key.end()) {
      return Status::Internal(
          "snapshot: pseudo target is missing from the target graph");
    }
    RestoredPseudo pseudo;
    pseudo.execute_at = rec.execute_at;
    pseudo.created_at = rec.created_at;
    pseudo.target_node = target_it->second;
    pseudo.parent_node = parent_it->second;
    pseudo.order = order;
    if (rec.anchor_kind == AnchorKind::kLive) {
      auto node_it = plan_node_by_key.find(rec.parent_key);
      if (node_it == plan_node_by_key.end()) {
        return Status::Internal(
            "snapshot: live pseudo anchor without parent node state");
      }
      const RestoredNode& node = plan.nodes[node_it->second];
      const auto& slot = node.slots[rec.anchor_slot];
      if (rec.anchor_pos >= slot.size()) {
        return Status::Internal(
            "snapshot: live pseudo anchor position out of range");
      }
      pseudo.anchor = slot[rec.anchor_pos].first;
    }
    plan.pseudos.push_back(std::move(pseudo));
  }
  plan.pseudo_counter = order;
  return plan;
}

DetectorSnapshot MergeShardSnapshots(
    const std::vector<DetectorSnapshot>& sources,
    const std::vector<bool>& keyed_replica) {
  DetectorSnapshot out;
  out.source_id = 0;
  if (sources.empty()) return out;
  out.clock = sources[0].clock;

  // Concatenate instance tables; children indexes shift by each source's
  // offset. (Records from non-chosen sides stay in the table unreferenced
  // — harmless, and keeps anchors a pure index remap.)
  std::vector<uint32_t> offset(sources.size(), 0);
  uint32_t total_instances = 0;
  for (size_t s = 0; s < sources.size(); ++s) {
    offset[s] = total_instances;
    total_instances += static_cast<uint32_t>(sources[s].instances.size());
  }
  out.instances.reserve(total_instances);
  for (size_t s = 0; s < sources.size(); ++s) {
    for (const InstanceRecord& rec : sources[s].instances) {
      InstanceRecord copy = rec;
      for (uint32_t& child : copy.children) child += offset[s];
      out.instances.push_back(std::move(copy));
    }
    out.sequence_counter =
        std::max(out.sequence_counter, sources[s].sequence_counter);
    const DetectorStats& st = sources[s].stats;
    out.stats.observations += st.observations;
    out.stats.out_of_order_dropped += st.out_of_order_dropped;
    out.stats.primitive_matches += st.primitive_matches;
    out.stats.instances_produced += st.instances_produced;
    out.stats.pseudo_scheduled += st.pseudo_scheduled;
    out.stats.pseudo_fired += st.pseudo_fired;
    out.stats.rule_matches += st.rule_matches;
  }

  // Renumber sequence numbers into one global order. Per-source sequence
  // numbers collide across replicas (each replica counts its own slice),
  // and downstream consumers need them unique and arrival-ordered within
  // a bucket: FirePseudo re-finds its anchor by sequence number, and
  // restore rebuilds bucket deques assuming sequence order is arrival
  // order. K-way merge popping the source whose next instance carries the
  // smallest effective end time (ties by source id): each source's
  // internal order is preserved exactly — same-key state lives on one
  // replica, so only that relative order is observable — and primitives,
  // which each replica holds in timestamp order, interleave back into
  // stream arrival order.
  std::vector<uint64_t> new_seq(total_instances, 0);
  {
    auto eff_t_end = [&](size_t s, size_t i) {
      const InstanceRecord& rec = sources[s].instances[i];
      return rec.is_primitive ? rec.observation.timestamp : rec.t_end;
    };
    std::vector<size_t> cursor(sources.size(), 0);
    uint64_t next = 0;
    for (uint32_t assigned = 0; assigned < total_instances; ++assigned) {
      size_t best = sources.size();
      for (size_t s = 0; s < sources.size(); ++s) {
        if (cursor[s] >= sources[s].instances.size()) continue;
        if (best == sources.size() ||
            eff_t_end(s, cursor[s]) < eff_t_end(best, cursor[best])) {
          best = s;
        }
      }
      new_seq[offset[best] + cursor[best]] = ++next;
      ++cursor[best];
    }
    for (uint32_t i = 0; i < total_instances; ++i) {
      out.instances[i].sequence_number = new_seq[i];
    }
    out.sequence_counter = std::max(out.sequence_counter, next);
  }

  // Group node records by state key (first-appearance order, so merged
  // output is deterministic).
  struct Ref {
    size_t source;
    const NodeStateRecord* rec;
  };
  std::vector<std::string_view> key_order;
  std::unordered_map<std::string_view, std::vector<Ref>> by_key;
  for (size_t s = 0; s < sources.size(); ++s) {
    for (const NodeStateRecord& rec : sources[s].nodes) {
      auto [it, inserted] = by_key.try_emplace(rec.state_key);
      if (inserted) key_order.push_back(rec.state_key);
      it->second.push_back(Ref{s, &rec});
    }
  }

  // Anchor remap: (source, parent state key) -> per-slot src pos -> merged
  // pos. Entries absent here were not chosen into the merge: their
  // pseudos degrade to kStale and fire as no-ops, mirroring the live twin
  // kept from the winning side of the same shared node.
  constexpr uint32_t kDropped = std::numeric_limits<uint32_t>::max();
  std::map<std::pair<size_t, std::string_view>,
           std::array<std::vector<uint32_t>, 2>>
      posmap;

  auto seq_of = [&](size_t s, uint32_t instance) {
    // Renumbered: unique across sources, arrival-ordered (see above).
    return out.instances[offset[s] + instance].sequence_number;
  };

  for (std::string_view key : key_order) {
    const std::vector<Ref>& refs = by_key.at(key);
    std::vector<Ref> keyed, other;
    for (const Ref& r : refs) {
      (keyed_replica[r.source] ? keyed : other).push_back(r);
    }
    // A non-replica copy is complete over every key; take it when its
    // retention covers the replicas' window, else union the replica
    // slices (see header comment).
    const Ref* pick = nullptr;
    for (const Ref& r : other) {
      if (pick == nullptr || r.rec->retention > pick->rec->retention) {
        pick = &r;
      }
    }
    if (pick != nullptr && !keyed.empty() &&
        pick->rec->retention < keyed.front().rec->retention) {
      pick = nullptr;  // Replicas retain longer: union them instead.
    }

    NodeStateRecord merged;
    merged.state_key = std::string(key);
    if (pick != nullptr) {
      const NodeStateRecord& rec = *pick->rec;
      merged.retention = rec.retention;
      merged.produced = rec.produced;
      merged.not_log.reserve(rec.not_log.size());
      for (uint32_t inst : rec.not_log) {
        merged.not_log.push_back(inst + offset[pick->source]);
      }
      merged.runs = rec.runs;
      for (RunRecord& run : merged.runs) {
        for (uint32_t& element : run.elements) {
          element += offset[pick->source];
        }
      }
      auto& slots = posmap[{pick->source, key}];
      for (int slot = 0; slot < 2; ++slot) {
        merged.slots[slot].reserve(rec.slots[slot].size());
        slots[slot].assign(rec.slots[slot].size(), kDropped);
        for (size_t pos = 0; pos < rec.slots[slot].size(); ++pos) {
          slots[slot][pos] = static_cast<uint32_t>(merged.slots[slot].size());
          SlotEntryRecord entry = rec.slots[slot][pos];
          entry.instance += offset[pick->source];
          merged.slots[slot].push_back(entry);
        }
      }
    } else {
      merged.retention = keyed.front().rec->retention;
      for (const Ref& r : keyed) merged.produced += r.rec->produced;
      // Union per slot, sorted by (sequence number, source): each
      // replica's order is its arrival order, and cross-key interleaving
      // is unobservable (probes unify on the partition key first).
      struct SrcEntry {
        uint64_t seq;
        size_t source;
        size_t pos;
        SlotEntryRecord entry;
      };
      for (int slot = 0; slot < 2; ++slot) {
        std::vector<SrcEntry> entries;
        for (const Ref& r : keyed) {
          const auto& src_slot = r.rec->slots[slot];
          posmap[{r.source, key}][slot].assign(src_slot.size(), kDropped);
          for (size_t pos = 0; pos < src_slot.size(); ++pos) {
            entries.push_back(SrcEntry{seq_of(r.source, src_slot[pos].instance),
                                       r.source, pos, src_slot[pos]});
          }
        }
        std::sort(entries.begin(), entries.end(),
                  [](const SrcEntry& a, const SrcEntry& b) {
                    return std::tie(a.seq, a.source) < std::tie(b.seq, b.source);
                  });
        merged.slots[slot].reserve(entries.size());
        for (const SrcEntry& e : entries) {
          posmap[{e.source, key}][slot][e.pos] =
              static_cast<uint32_t>(merged.slots[slot].size());
          SlotEntryRecord entry = e.entry;
          entry.instance += offset[e.source];
          merged.slots[slot].push_back(entry);
        }
      }
      std::vector<std::tuple<uint64_t, size_t, uint32_t>> log_entries;
      for (const Ref& r : keyed) {
        for (uint32_t inst : r.rec->not_log) {
          log_entries.emplace_back(seq_of(r.source, inst), r.source,
                                   inst + offset[r.source]);
        }
      }
      std::sort(log_entries.begin(), log_entries.end());
      merged.not_log.reserve(log_entries.size());
      for (const auto& [seq, s, inst] : log_entries) {
        merged.not_log.push_back(inst);
      }
      for (const Ref& r : keyed) {
        for (const RunRecord& run : r.rec->runs) {
          RunRecord copy = run;
          for (uint32_t& element : copy.elements) element += offset[r.source];
          merged.runs.push_back(std::move(copy));
        }
      }
    }
    out.nodes.push_back(std::move(merged));
  }

  // Merge pseudo queues by (execute_at, stamp): the stamps encode each
  // pseudo's serial scheduling position, so this is exactly the serial
  // FIFO order the queue would hold in an unsharded run.
  struct PRef {
    size_t source;
    size_t pos;
    const PseudoRecord* rec;
  };
  std::vector<PRef> prefs;
  for (size_t s = 0; s < sources.size(); ++s) {
    for (size_t p = 0; p < sources[s].pseudos.size(); ++p) {
      prefs.push_back(PRef{s, p, &sources[s].pseudos[p]});
    }
  }
  std::sort(prefs.begin(), prefs.end(), [](const PRef& a, const PRef& b) {
    return std::tie(a.rec->execute_at, a.rec->stamp, a.source, a.pos) <
           std::tie(b.rec->execute_at, b.rec->stamp, b.source, b.pos);
  });
  out.pseudos.reserve(prefs.size());
  for (const PRef& p : prefs) {
    PseudoRecord rec = *p.rec;
    if (rec.anchor_kind == AnchorKind::kLive) {
      uint32_t merged_pos = kDropped;
      auto it = posmap.find({p.source, std::string_view(rec.parent_key)});
      if (it != posmap.end()) {
        const std::vector<uint32_t>& slot_map = it->second[rec.anchor_slot];
        if (rec.anchor_pos < slot_map.size()) {
          merged_pos = slot_map[rec.anchor_pos];
        }
      }
      if (merged_pos == kDropped) {
        rec.anchor_kind = AnchorKind::kStale;
        rec.anchor_slot = 0;
        rec.anchor_pos = 0;
      } else {
        rec.anchor_pos = merged_pos;
      }
    }
    out.pseudos.push_back(std::move(rec));
  }
  out.pseudo_counter = out.pseudos.size();
  return out;
}

}  // namespace rfidcep::engine::snapshot
