#include "engine/rule_index.h"

#include <algorithm>
#include <string>
#include <utility>

namespace rfidcep::engine {

PrimitiveIndex::PrimitiveIndex(const EventGraph& graph,
                               bool predicate_pushdown) {
  StringViewMap<std::vector<int>> keyed;
  std::vector<int> unkeyed_ids;
  for (int id : graph.primitive_nodes()) {
    const events::PrimitiveEventType& type = graph.node(id).primitive;
    if (type.reader().is_literal) {
      keyed[type.reader().text].push_back(id);
    } else if (type.group_constraint().has_value()) {
      keyed[*type.group_constraint()].push_back(id);
    } else {
      unkeyed_ids.push_back(id);
    }
  }
  for (auto& [key, ids] : keyed) {
    AddBucket(&by_reader_[key], graph, std::move(ids), predicate_pushdown);
  }
  AddBucket(&unkeyed_, graph, std::move(unkeyed_ids), predicate_pushdown);
  fullscan_fallback_ =
      by_reader_.empty() && unkeyed_.by_type.empty() && !unkeyed_.untyped.empty();
}

void PrimitiveIndex::AddBucket(Bucket* bucket, const EventGraph& graph,
                               std::vector<int> node_ids,
                               bool predicate_pushdown) {
  // Canonical-key order, matching the legacy bucket sort (leaf canonical
  // keys are unique by hash-consing, so this is a total order). Sharded
  // replay relies on every compilation dispatching a rule subset in the
  // same relative order; ranks let typed/untyped sub-lists merge back
  // into exactly this order.
  std::sort(node_ids.begin(), node_ids.end(), [&](int a, int b) {
    return graph.node(a).canonical_key < graph.node(b).canonical_key;
  });
  for (size_t rank = 0; rank < node_ids.size(); ++rank) {
    const events::PrimitiveEventType& type =
        graph.node(node_ids[rank]).primitive;
    DispatchEntry entry;
    entry.node_id = node_ids[rank];
    entry.rank = static_cast<int>(rank);
    if (predicate_pushdown) {
      // The probe implies the reader-literal predicate (the bucket is
      // reached via obs.reader or group(obs.reader) equal to the key) and
      // the type predicate (sub-bucket selection). A group constraint
      // stays residual: its bucket can be reached via a reader literally
      // named like the group without belonging to it.
      if (type.group_constraint().has_value()) {
        entry.check_group = true;
        entry.group = *type.group_constraint();
      }
      if (type.object().is_literal) {
        entry.check_object = true;
        entry.object_literal = type.object().text;
      }
      if (type.type_constraint().has_value()) {
        bucket->by_type[*type.type_constraint()].push_back(entry);
        has_typed_entries_ = true;
        continue;
      }
    } else {
      entry.needs_full_match = true;
    }
    bucket->untyped.push_back(entry);
  }
}

}  // namespace rfidcep::engine
