#include "engine/engine.h"

#include <chrono>
#include <fstream>
#include <map>
#include <sstream>

#include "engine/snapshot.h"
#include "engine/trace.h"
#include "store/sql_executor.h"

namespace rfidcep::engine {

// Instrument handles resolved from the engine's registry at Compile()
// time. Only pointers live here — the instruments (and their values)
// belong to the registry, so re-compiling or toggling metrics never
// loses counts.
struct EngineInstruments {
  common::Counter* observations = nullptr;  // Shared with the detection tier.
  common::Counter* out_of_order = nullptr;
  common::Counter* process_calls = nullptr;
  common::Counter* matches = nullptr;
  common::Counter* rules_fired = nullptr;
  common::Counter* condition_rejects = nullptr;
  common::Counter* condition_errors = nullptr;
  common::Counter* action_errors = nullptr;
  common::Histogram* process_us = nullptr;  // Per Process/ProcessAll call.
  struct PerRule {
    common::Counter* matches = nullptr;
    common::Counter* fired = nullptr;
    common::Histogram* condition_us = nullptr;
    common::Histogram* action_us = nullptr;
    common::Histogram* handle_us = nullptr;  // Match delivery -> done.
  };
  std::vector<PerRule> per_rule;  // By rule index.
  ActionInstruments actions;
  DetectorInstruments detector;  // Serial path (shard 0) only.
};

namespace {

using SteadyTime = std::chrono::steady_clock::time_point;

SteadyTime Now() { return std::chrono::steady_clock::now(); }

uint64_t ElapsedUs(SteadyTime start) {
  auto us = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  return static_cast<uint64_t>(us.count());
}

int64_t ElapsedNs(SteadyTime start) {
  auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::steady_clock::now() - start);
  return static_cast<int64_t>(ns.count());
}

Status NotCompiled() {
  return Status::FailedPrecondition(
      "engine is not compiled (call Compile() first)");
}

Status AlreadyFlushed() {
  return Status::FailedPrecondition(
      "stream already flushed (Reset() starts a new stream)");
}

}  // namespace

RcedaEngine::RcedaEngine(store::Database* db, events::Environment env,
                         EngineOptions options)
    : db_(db), env_(env), options_(options), dispatcher_(db) {}

RcedaEngine::~RcedaEngine() = default;

Status RcedaEngine::AddRule(rules::Rule rule) {
  if (compiled()) {
    return Status::FailedPrecondition(
        "cannot add rules after the engine has been compiled");
  }
  for (const rules::Rule& existing : rules_) {
    if (existing.id == rule.id) {
      return Status::AlreadyExists("duplicate rule id '" + rule.id + "'");
    }
  }
  rules_.push_back(std::move(rule));
  return Status::Ok();
}

Status RcedaEngine::AddRules(rules::RuleSet set) {
  for (rules::Rule& rule : set.rules) {
    RFIDCEP_RETURN_IF_ERROR(AddRule(std::move(rule)));
  }
  return Status::Ok();
}

Status RcedaEngine::AddRulesFromText(std::string_view program) {
  RFIDCEP_ASSIGN_OR_RETURN(rules::RuleSet set,
                           rules::ParseRuleProgram(program));
  return AddRules(std::move(set));
}

Status RcedaEngine::RemoveRule(std::string_view rule_id) {
  for (size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i].id == rule_id) {
      Decompile();
      rules_.erase(rules_.begin() + static_cast<long>(i));
      return Status::Ok();
    }
  }
  return Status::NotFound("no rule '" + std::string(rule_id) + "'");
}

Status RcedaEngine::SetShards(int shards) {
  if (compiled()) {
    return Status::FailedPrecondition(
        "cannot change the shard count while compiled (Decompile() first)");
  }
  if (shards < 1 || shards > kMaxDetectionShards) {
    return Status::InvalidArgument(
        "shard count must be in [1, " +
        std::to_string(kMaxDetectionShards) + "]");
  }
  options_.shards = shards;
  return Status::Ok();
}

Status RcedaEngine::AttachWal(store::Wal* wal) {
  if (compiled()) {
    return Status::FailedPrecondition(
        "cannot attach a WAL while compiled (Decompile() first)");
  }
  if (wal != nullptr && db_ == nullptr) {
    return Status::FailedPrecondition(
        "a store WAL requires an engine with a database");
  }
  dispatcher_.AttachWal(wal);
  return Status::Ok();
}

Status RcedaEngine::Compile() {
  if (compiled()) return Status::Ok();
  if (rules_.empty()) {
    return Status::FailedPrecondition("no rules registered");
  }
  action_stage_.reset();  // A failed earlier Compile() may have left one.
  RFIDCEP_ASSIGN_OR_RETURN(
      EventGraph graph,
      EventGraph::Build(rules_, options_.detector.compile.share_prefixes));
  graph_.emplace(std::move(graph));
  fired_counts_.assign(rules_.size(), 0);
  flushed_ = false;  // The fresh detector starts a new stream.
  if (options_.enable_metrics) {
    metrics_ = std::make_unique<EngineInstruments>();
    EngineInstruments& m = *metrics_;
    m.observations = registry_.GetCounter("rfidcep_observations_total");
    m.out_of_order =
        registry_.GetCounter("rfidcep_out_of_order_dropped_total");
    m.process_calls = registry_.GetCounter("rfidcep_process_calls_total");
    m.matches = registry_.GetCounter("rfidcep_matches_total");
    m.rules_fired = registry_.GetCounter("rfidcep_rules_fired_total");
    m.condition_rejects =
        registry_.GetCounter("rfidcep_condition_rejects_total");
    m.condition_errors =
        registry_.GetCounter("rfidcep_condition_errors_total");
    m.action_errors = registry_.GetCounter("rfidcep_action_errors_total");
    m.process_us = registry_.GetHistogram("rfidcep_process_us");
    m.per_rule.reserve(rules_.size());
    for (const rules::Rule& rule : rules_) {
      const std::string label = "{rule=\"" + rule.id + "\"}";
      EngineInstruments::PerRule r;
      r.matches = registry_.GetCounter("rule_matches_total" + label);
      r.fired = registry_.GetCounter("rule_fired_total" + label);
      r.condition_us = registry_.GetHistogram("rule_condition_us" + label);
      r.action_us = registry_.GetHistogram("rule_action_us" + label);
      r.handle_us = registry_.GetHistogram("rule_match_handle_us" + label);
      m.per_rule.push_back(r);
    }
    m.actions.sql_actions = registry_.GetCounter("actions_sql_total");
    m.actions.rows_written = registry_.GetCounter("store_rows_written_total");
    m.actions.procedures = registry_.GetCounter("actions_procedures_total");
    m.actions.unknown_procedures =
        registry_.GetCounter("actions_unknown_procedures_total");
    m.actions.deduped = registry_.GetCounter("actions_deduped_total");
    dispatcher_.SetObservability(&m.actions, trace_);
  } else {
    dispatcher_.SetObservability(nullptr, trace_);
  }
  if (options_.async_actions && options_.execute_actions) {
    ActionStage::Options stage_options;
    stage_options.queue_capacity = options_.action_queue_capacity;
    if (metrics_ != nullptr) {
      stage_options.enqueue_stalls =
          registry_.GetCounter("action_enqueue_stalls_total");
      stage_options.batches = registry_.GetCounter("actions_batches_total");
    }
    action_stage_ = std::make_unique<ActionStage>(&dispatcher_, stage_options);
  }
  if (options_.shards > 1) {
    ShardedOptions sharded_options;
    sharded_options.shards = options_.shards;
    sharded_options.queue_capacity = options_.shard_queue_capacity;
    sharded_options.partition = options_.partition;
    sharded_options.detector = options_.detector;
    sharded_options.metrics = metrics_ != nullptr ? &registry_ : nullptr;
    sharded_options.trace = trace_;
    RFIDCEP_ASSIGN_OR_RETURN(
        sharded_,
        ShardedDetector::Create(
            rules_, *graph_, &env_, sharded_options,
            [this](size_t rule_index,
                   const events::EventInstancePtr& instance,
                   TimePoint fire_time) {
              OnMatch(rule_index, instance, fire_time);
            }));
    return Status::Ok();
  }
  if (metrics_ != nullptr) {
    metrics_->detector = MakeDetectorInstruments(&registry_, 0, *graph_);
    // The serial detector is the acceptance gate, so it also feeds the
    // engine-global counters (in sharded mode the coordinator does).
    metrics_->detector.observations = metrics_->observations;
    metrics_->detector.out_of_order_dropped = metrics_->out_of_order;
  }
  detector_ = std::make_unique<Detector>(
      &*graph_, &env_, SerialDetectorOptions(),
      [this](size_t rule_index, const events::EventInstancePtr& instance) {
        OnMatch(rule_index, instance, detector_->clock());
      });
  return Status::Ok();
}

DetectorOptions RcedaEngine::SerialDetectorOptions() const {
  DetectorOptions detector_options = options_.detector;
  detector_options.trace = trace_;
  detector_options.shard_id = 0;
  if (metrics_ != nullptr) {
    detector_options.instruments = &metrics_->detector;
  }
  return detector_options;
}

void RcedaEngine::Decompile() {
  // The stage first: its worker holds the dispatcher and registry-owned
  // instruments until it joins.
  action_stage_.reset();
  detector_.reset();
  sharded_.reset();
  graph_.reset();
  // Instrument handles are re-resolved by the next Compile(); the
  // registry (and every accumulated value) survives.
  dispatcher_.SetObservability(nullptr, nullptr);
  metrics_.reset();
}

Status RcedaEngine::SetMetricsEnabled(bool enabled) {
  if (compiled()) {
    return Status::FailedPrecondition(
        "cannot toggle metrics while compiled (Decompile() first)");
  }
  options_.enable_metrics = enabled;
  return Status::Ok();
}

Status RcedaEngine::SetTraceSink(TraceSink* sink) {
  if (compiled()) {
    return Status::FailedPrecondition(
        "cannot attach a trace sink while compiled (Decompile() first)");
  }
  trace_ = sink;
  return Status::Ok();
}

std::string RcedaEngine::ExportMetrics() const {
  if (!options_.enable_metrics) return "# metrics disabled\n";
  return registry_.ExportText();
}

Status RcedaEngine::Reset() {
  if (!compiled()) {
    return Status::FailedPrecondition("engine is not compiled");
  }
  if (action_stage_ != nullptr) action_stage_->Drain();
  if (sharded_ != nullptr) {
    sharded_->Reset();
  } else {
    detector_ = std::make_unique<Detector>(
        &*graph_, &env_, SerialDetectorOptions(),
        [this](size_t rule_index, const events::EventInstancePtr& instance) {
          OnMatch(rule_index, instance, detector_->clock());
        });
  }
  fired_counts_.assign(rules_.size(), 0);
  stats_ = EngineStats{};
  deferred_error_ = Status::Ok();
  registry_.Reset();  // Zero instruments; registration is preserved.
  trace_obs_seq_ = 0;
  flushed_ = false;
  RebaseActionAccounting(ActionAccounting{});  // Logical totals back to zero.
  return Status::Ok();
}

Status RcedaEngine::Process(const events::Observation& obs) {
  if (!compiled()) return NotCompiled();
  if (flushed_) return AlreadyFlushed();
  EngineInstruments* m = metrics_.get();
  SteadyTime start;
  if (m != nullptr) {
    m->process_calls->Increment();
    start = Now();
  }
  Status status;
  if (sharded_ != nullptr) {
    status = sharded_->ProcessBatch(&obs, 1);
    stats_.detector = sharded_->stats();
  } else {
    if (trace_ != nullptr) trace_->RecordObservation(++trace_obs_seq_, obs);
    status = detector_->Process(obs);
    stats_.detector = detector_->stats();
  }
  if (m != nullptr) m->process_us->Record(ElapsedUs(start));
  return status;
}

Status RcedaEngine::ProcessAll(const std::vector<events::Observation>& batch) {
  if (!compiled()) return NotCompiled();
  if (flushed_) return AlreadyFlushed();
  EngineInstruments* m = metrics_.get();
  SteadyTime start;
  if (m != nullptr) {
    m->process_calls->Increment();
    start = Now();
  }
  Status status;
  if (sharded_ != nullptr) {
    // Routing fan-out: one barrier and one stats sync per batch.
    status = sharded_->ProcessBatch(batch.data(), batch.size());
    stats_.detector = sharded_->stats();
  } else {
    for (const events::Observation& obs : batch) {
      if (trace_ != nullptr) trace_->RecordObservation(++trace_obs_seq_, obs);
      status = detector_->Process(obs);
      if (!status.ok()) break;
    }
    stats_.detector = detector_->stats();
  }
  if (m != nullptr) m->process_us->Record(ElapsedUs(start));
  return status;
}

Status RcedaEngine::AdvanceTo(TimePoint t) {
  if (!compiled()) return NotCompiled();
  if (flushed_) return AlreadyFlushed();
  if (sharded_ != nullptr) {
    sharded_->AdvanceTo(t);
    stats_.detector = sharded_->stats();
  } else {
    detector_->AdvanceTo(t);
    stats_.detector = detector_->stats();
  }
  return Status::Ok();
}

Status RcedaEngine::Flush() {
  if (!compiled()) return NotCompiled();
  if (flushed_) return Status::Ok();  // Idempotent: nothing left to fire.
  if (sharded_ != nullptr) {
    sharded_->Flush();
    stats_.detector = sharded_->stats();
  } else {
    detector_->Flush();
    stats_.detector = detector_->stats();
  }
  // Stream end is a durability point: every firing the flush delivered
  // is executed, logged, and fsynced before Flush() returns.
  if (action_stage_ != nullptr) {
    action_stage_->Drain();
    SyncActionProgress();
  }
  if (store::Wal* wal = dispatcher_.wal(); wal != nullptr) {
    RFIDCEP_RETURN_IF_ERROR(wal->Sync());
  }
  flushed_ = true;
  return Status::Ok();
}

// --- Durability ------------------------------------------------------------

Status RcedaEngine::SerializeState(std::string* out) {
  if (!compiled()) return NotCompiled();
  SteadyTime start = Now();
  // Capture at one logical instant: advance detection to the engine
  // clock, firing (and delivering) expirations scheduled strictly before
  // it. Every detector clock then equals the engine clock and every
  // pending pseudo event executes at or after it — the invariant the
  // restore-time state merge relies on (see snapshot.h). Bypasses the
  // public AdvanceTo so a flushed engine (diverged shard clocks, empty
  // queues) can still be captured.
  if (sharded_ != nullptr) {
    sharded_->AdvanceTo(sharded_->clock());
    stats_.detector = sharded_->stats();
  } else {
    detector_->AdvanceTo(detector_->clock());
    stats_.detector = detector_->stats();
  }
  // Matches the advance just delivered are enqueued by now; read ONE
  // confirmed boundary and use it for the stats, the durable LSN, and
  // the pending capture, so all three describe the same instant (the
  // worker keeps running — capture does not quiesce the stage).
  ActionStage::Progress progress;
  if (action_stage_ != nullptr) {
    progress = action_stage_->progress();
    ApplyActionProgress(progress);
  }

  snapshot::EngineSnapshot snap;
  snap.fingerprint = snapshot::ComputeFingerprint(options_.detector.context,
                                                  rules_, *graph_);
  snap.context = static_cast<uint8_t>(options_.detector.context);
  snap.flushed = flushed_;
  snap.clock = clock();
  snap.trace_obs_seq = trace_obs_seq_;
  snap.stats = stats_;
  snap.fired.reserve(rules_.size());
  for (size_t i = 0; i < rules_.size(); ++i) {
    snap.fired.emplace_back(rules_[i].id, fired_counts_[i]);
  }
  if (options_.enable_metrics) snap.counters = registry_.CounterValues();
  if (options_.enable_metrics && action_stage_ != nullptr) {
    // The live action counters can run ahead of the confirmed boundary
    // by a partially-confirmed batch; pin the snapshot's copies to the
    // same logical instant as the stats and the pending queue.
    const std::pair<std::string_view, uint64_t> confirmed[] = {
        {"actions_sql_total", stats_.sql_actions_executed},
        {"store_rows_written_total",
         stats_base_.rows_written +
             (progress.rows_written - source_base_.rows_written)},
        {"actions_procedures_total", stats_.procedures_invoked},
        {"actions_unknown_procedures_total", stats_.unknown_procedures},
        {"actions_deduped_total",
         stats_base_.deduped + (progress.actions_deduped - source_base_.deduped)},
        {"rfidcep_action_errors_total", stats_.action_errors},
    };
    for (auto& [name, value] : snap.counters) {
      for (const auto& [confirmed_name, confirmed_value] : confirmed) {
        if (name == confirmed_name) {
          value = confirmed_value;
          break;
        }
      }
    }
  }
  if (sharded_ != nullptr) {
    sharded_->CaptureState(rules_, &snap);
  } else {
    std::vector<std::string> rule_ids;
    rule_ids.reserve(rules_.size());
    for (const rules::Rule& rule : rules_) rule_ids.push_back(rule.id);
    snap.source_shards = 1;
    snap.sources.resize(1);
    detector_->SaveState(graph_->NodeStateKeys(rule_ids), &snap.sources[0]);
  }
  store::Wal* wal = dispatcher_.wal();
  if (action_stage_ != nullptr) {
    snap.durable_lsn = progress.confirmed_lsn;
    for (const ActionStage::PendingAction& pending :
         action_stage_->PendingAfter(progress.confirmed_count)) {
      snapshot::EngineSnapshot::PendingActionRecord rec;
      rec.rule_id = pending.rule->id;
      rec.seq = pending.seq;
      rec.fire_time = pending.fire_time;
      store::ParamMap params = pending.instance != nullptr
                                   ? BuildParams(pending.instance->bindings())
                                   : pending.params;
      rec.params.assign(params.begin(), params.end());
      snap.pending_actions.push_back(std::move(rec));
    }
  } else if (wal != nullptr) {
    // Sync dispatch: everything executed is already appended.
    snap.durable_lsn = wal->last_lsn();
  }
  // The durable LSN was read BEFORE this sync, so the sync is guaranteed
  // to cover it: a checkpoint never claims an LSN the disk doesn't have.
  if (wal != nullptr) RFIDCEP_RETURN_IF_ERROR(wal->Sync());
  *out = snapshot::EncodeEngineSnapshot(snap);
  if (options_.enable_metrics) {
    registry_.GetGauge("snapshot_bytes")->Set(
        static_cast<int64_t>(out->size()));
    registry_.GetGauge("snapshot_ns")->Set(ElapsedNs(start));
  }
  if (trace_ != nullptr) {
    trace_->RecordSnapshot("checkpoint", out->size(), snap.clock,
                           snap.source_shards);
  }
  return Status::Ok();
}

Status RcedaEngine::RestoreState(std::string_view bytes) {
  if (!compiled()) return NotCompiled();
  SteadyTime start = Now();
  // Quiesce the action pipeline: once drained, the dispatcher, its WAL,
  // and the stage's progress are stable for the duration of the restore.
  if (action_stage_ != nullptr) action_stage_->Drain();
  snapshot::EngineSnapshot snap;
  RFIDCEP_RETURN_IF_ERROR(snapshot::DecodeEngineSnapshot(bytes, &snap));
  uint64_t expected = snapshot::ComputeFingerprint(options_.detector.context,
                                                   rules_, *graph_);
  if (snap.fingerprint != expected) {
    return Status::FailedPrecondition(
        "snapshot rule-set fingerprint mismatch: the snapshot was taken "
        "under a different rule set or parameter context");
  }
  store::Wal* wal = dispatcher_.wal();
  if (wal != nullptr && snap.version < 2) {
    return Status::FailedPrecondition(
        "snapshot: a version-1 snapshot carries no durable-action section "
        "and cannot restore into an engine with a WAL attached");
  }
  if (wal != nullptr && wal->last_lsn() < snap.durable_lsn) {
    return Status::FailedPrecondition(
        "snapshot: WAL ends at LSN " + std::to_string(wal->last_lsn()) +
        " but the checkpoint was taken at durable LSN " +
        std::to_string(snap.durable_lsn) +
        " — WAL and snapshot are from different runs, or the WAL lost "
        "records the checkpoint had synced");
  }

  // Per-rule fired counts are keyed by rule id; the fingerprint
  // guarantees the id sets agree.
  std::vector<uint64_t> fired(rules_.size(), 0);
  for (const auto& [rule_id, count] : snap.fired) {
    bool found = false;
    for (size_t i = 0; i < rules_.size(); ++i) {
      if (rules_[i].id == rule_id) {
        fired[i] = count;
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::Internal("snapshot: fired count for unknown rule '" +
                              rule_id + "'");
    }
  }

  if (sharded_ != nullptr) {
    RFIDCEP_RETURN_IF_ERROR(sharded_->RestoreState(rules_, snap));
  } else {
    std::vector<std::string> rule_ids;
    rule_ids.reserve(rules_.size());
    for (const rules::Rule& rule : rules_) rule_ids.push_back(rule.id);
    RFIDCEP_ASSIGN_OR_RETURN(
        snapshot::RestorePlan plan,
        snapshot::BuildRestorePlan(snap, graph_->NodeStateKeys(rule_ids),
                                   graph_->NodeStateAliases()));
    RFIDCEP_RETURN_IF_ERROR(
        detector_->RestoreState(plan, snap.stats.detector));
  }
  fired_counts_ = std::move(fired);
  stats_ = snap.stats;
  flushed_ = snap.flushed;
  trace_obs_seq_ = snap.trace_obs_seq;
  deferred_error_ = Status::Ok();

  if (options_.enable_metrics) {
    // Counter continuity: zero everything, then re-apply the snapshot's
    // totals. Shard-labeled counters transfer verbatim between identical
    // shard layouts. Across layouts (including every restore of a
    // data-partitioned engine's snapshot, which is pre-merged to one
    // serial-equivalent source) the per-shard SPLIT is meaningless but
    // the totals are not: they are summed over the shard label and
    // credited to the target's shard-0 instrument — the same convention
    // the restore plan uses for unkeyed state. Per-node firing counters
    // are the exception: node ids are relative to each layout's graphs,
    // so cross-layout they stay with the layout that did the work.
    registry_.Reset();
    bool same_layout = snap.source_shards == num_shards();
    std::map<std::string, uint64_t> aggregated;
    for (const auto& [name, value] : snap.counters) {
      size_t label = name.find("shard=\"");
      if (same_layout || label == std::string::npos) {
        if (common::Counter* counter = registry_.GetCounter(name)) {
          counter->Increment(value);
        }
        continue;
      }
      if (name.find("node=") != std::string::npos) continue;
      // Strip the `shard="N"` label (and whichever separator flanks it).
      std::string base = name;
      size_t end = base.find('"', label + 7) + 1;
      if (end < base.size() && base[end] == ',') {
        ++end;
      } else if (base[label - 1] == ',') {
        --label;
      } else {
        --label;
        ++end;
      }
      base.erase(label, end - label);
      aggregated[base] += value;
    }
    for (const auto& [base, value] : aggregated) {
      std::string target = base;
      if (num_shards() > 1) {
        size_t brace = target.find('{');
        if (brace == std::string::npos) {
          target += "{shard=\"0\"}";
        } else {
          target.insert(brace + 1, "shard=\"0\",");
        }
      }
      if (common::Counter* counter = registry_.GetCounter(target)) {
        counter->Increment(value);
      }
    }
    registry_.GetGauge("restore_ns")->Set(ElapsedNs(start));
  }

  // Logical action totals continue from the snapshot's confirmed values;
  // the sources (dispatcher / stage progress) are process-local and keep
  // their own cumulative counts, hence the re-base.
  ActionAccounting restored;
  restored.sql_actions = snap.stats.sql_actions_executed;
  restored.procedures = snap.stats.procedures_invoked;
  restored.unknown_procedures = snap.stats.unknown_procedures;
  restored.errors = snap.stats.action_errors;
  for (const auto& [name, value] : snap.counters) {
    if (name == "store_rows_written_total") restored.rows_written = value;
    if (name == "actions_deduped_total") restored.deduped = value;
  }
  RebaseActionAccounting(restored);

  // Re-enqueue the checkpoint's in-flight firings with their original
  // sequence numbers. Firings whose actions made it into the recovered
  // WAL dedup (effects and counters credited, not re-executed); firings
  // the crash lost re-execute. Together with reprocessing the stream
  // suffix after the checkpoint this makes store effects exactly-once —
  // see docs/recovery.md "Exactly-once effects".
  if (options_.execute_actions) {
    for (const snapshot::EngineSnapshot::PendingActionRecord& rec :
         snap.pending_actions) {
      const rules::Rule* rule = nullptr;
      for (const rules::Rule& candidate : rules_) {
        if (candidate.id == rec.rule_id) {
          rule = &candidate;
          break;
        }
      }
      if (rule == nullptr) {
        // Unreachable past the fingerprint gate; corruption if it is.
        return Status::Internal("snapshot: pending action for unknown rule '" +
                                rec.rule_id + "'");
      }
      RuleFiring firing;
      firing.rule = rule;
      firing.params = store::ParamMap(rec.params.begin(), rec.params.end());
      firing.fire_time = rec.fire_time;
      firing.seq = rec.seq;
      firing.replayed = true;
      if (action_stage_ != nullptr) {
        action_stage_->Enqueue(std::move(firing), nullptr);
      } else {
        Status status = dispatcher_.Dispatch(firing);
        if (!status.ok()) {
          ++stats_.action_errors;
          if (metrics_ != nullptr) metrics_->action_errors->Increment();
          if (deferred_error_.ok()) deferred_error_ = status;
        }
        SyncDispatcherStats();
      }
    }
  }

  if (trace_ != nullptr) {
    trace_->RecordSnapshot("restore", bytes.size(), snap.clock,
                           snap.source_shards);
  }
  return Status::Ok();
}

Status RcedaEngine::Checkpoint(const std::string& path) {
  std::string bytes;
  RFIDCEP_RETURN_IF_ERROR(SerializeState(&bytes));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::NotFound("cannot open checkpoint file '" + path +
                            "' for writing");
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) {
    return Status::Internal("failed writing checkpoint file '" + path + "'");
  }
  return Status::Ok();
}

Status RcedaEngine::Restore(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open checkpoint file '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::Internal("failed reading checkpoint file '" + path + "'");
  }
  return RestoreState(buffer.str());
}

std::string RcedaEngine::DebugReport() const {
  if (!compiled()) return "engine is not compiled\n";
  std::string out;
  if (sharded_ != nullptr) {
    out = sharded_->DebugReport(rules_);
  } else {
    out = "clock=" + FormatTimePoint(detector_->clock()) +
          " pending_pseudo=" +
          std::to_string(detector_->PendingPseudoEvents()) + " buffered=" +
          std::to_string(detector_->TotalBufferedEntries()) + "\n";
    if (detector_->FullscanObservations() > 0) {
      out += "dispatch_fullscan=" +
             std::to_string(detector_->FullscanObservations()) +
             " (no subscribable vocabulary: every observation scans every "
             "leaf)\n";
    }
    for (const GraphNode& node : graph_->nodes()) {
      out += "#";
      out += std::to_string(node.id);
      out += " ";
      out += DetectionModeName(node.mode);
      out += " produced=";
      out += std::to_string(detector_->ProducedAt(node.id));
      out += " buffered=";
      out += std::to_string(detector_->BufferedAt(node.id));
      out += " ";
      out += node.canonical_key;
      out += "\n";
    }
  }
  for (size_t i = 0; i < rules_.size(); ++i) {
    out += "rule " + rules_[i].id + " fired=" +
           std::to_string(fired_counts_[i]) + "\n";
  }
  return out;
}

uint64_t RcedaEngine::FiredCount(std::string_view rule_id) const {
  for (size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i].id == rule_id) return fired_counts_[i];
  }
  return 0;
}

void RcedaEngine::OnMatch(size_t rule_index,
                          const events::EventInstancePtr& instance,
                          TimePoint fire_time) {
  const rules::Rule& rule = rules_[rule_index];
  EngineInstruments* m = metrics_.get();
  EngineInstruments::PerRule* r =
      m != nullptr ? &m->per_rule[rule_index] : nullptr;
  SteadyTime handle_start;
  if (m != nullptr) {
    handle_start = Now();
    m->matches->Increment();
    r->matches->Increment();
  }
  if (trace_ != nullptr) trace_->RecordMatch(rule.id, *instance, fire_time);
  if (match_callback_) match_callback_(rule, instance);

  RuleFiring firing;
  firing.rule = &rule;
  firing.instance = instance;
  firing.params = BuildParams(instance->bindings());
  firing.fire_time = fire_time;

  if (rule.condition != nullptr) {
    SteadyTime cond_start;
    if (r != nullptr) cond_start = Now();
    Result<bool> holds =
        store::EvaluateCondition(*rule.condition, firing.params);
    if (r != nullptr) r->condition_us->Record(ElapsedUs(cond_start));
    if (!holds.ok()) {
      ++stats_.condition_errors;
      if (m != nullptr) m->condition_errors->Increment();
      if (trace_ != nullptr) trace_->RecordCondition(rule.id, false);
      if (deferred_error_.ok()) deferred_error_ = holds.status();
      if (r != nullptr) r->handle_us->Record(ElapsedUs(handle_start));
      return;
    }
    if (trace_ != nullptr) trace_->RecordCondition(rule.id, *holds);
    if (!*holds) {
      ++stats_.condition_rejects;
      if (m != nullptr) {
        m->condition_rejects->Increment();
        r->handle_us->Record(ElapsedUs(handle_start));
      }
      return;
    }
  }
  ++fired_counts_[rule_index];
  ++stats_.rules_fired;
  if (m != nullptr) {
    m->rules_fired->Increment();
    r->fired->Increment();
  }
  // The firing's sequence number is its per-rule fired ordinal: per-rule
  // emission order is the determinism guarantee that holds across shard
  // layouts, and fired_counts_ travels in every snapshot — so the
  // numbering is identical across layouts and across a run and its
  // restored continuation (the WAL dedup keyspace, with the rule id).
  firing.seq = fired_counts_[rule_index];

  if (!options_.execute_actions) {
    if (r != nullptr) r->handle_us->Record(ElapsedUs(handle_start));
    return;
  }
  if (action_stage_ != nullptr) {
    // Async pipeline: hand off and return to detection. The worker
    // records the firing's dispatch latency into action_us; handle_us
    // here covers delivery through enqueue (including backpressure).
    action_stage_->Enqueue(std::move(firing),
                           r != nullptr ? r->action_us : nullptr);
    if (r != nullptr) r->handle_us->Record(ElapsedUs(handle_start));
    return;
  }
  SteadyTime action_start;
  if (r != nullptr) action_start = Now();
  Status status = dispatcher_.Dispatch(firing);
  if (r != nullptr) r->action_us->Record(ElapsedUs(action_start));
  if (!status.ok()) {
    ++stats_.action_errors;
    if (m != nullptr) m->action_errors->Increment();
    if (deferred_error_.ok()) deferred_error_ = status;
  }
  SyncDispatcherStats();
  if (r != nullptr) r->handle_us->Record(ElapsedUs(handle_start));
}

// --- Action accounting ------------------------------------------------------

RcedaEngine::ActionAccounting RcedaEngine::CurrentActionSource() const {
  if (action_stage_ != nullptr) {
    ActionStage::Progress p = action_stage_->progress();
    return ActionAccounting{p.sql_actions,        p.rows_written,
                            p.procedures,        p.unknown_procedures,
                            p.actions_deduped,   p.firing_errors};
  }
  // Sync mode: errors are accounted inline by OnMatch, not via a base.
  return ActionAccounting{dispatcher_.sql_actions_executed(),
                          dispatcher_.rows_written(),
                          dispatcher_.procedures_invoked(),
                          dispatcher_.unknown_procedures(),
                          dispatcher_.actions_deduped(),
                          0};
}

void RcedaEngine::RebaseActionAccounting(const ActionAccounting& restored) {
  stats_base_ = restored;
  source_base_ = CurrentActionSource();
}

void RcedaEngine::SyncDispatcherStats() {
  stats_.sql_actions_executed =
      stats_base_.sql_actions +
      (dispatcher_.sql_actions_executed() - source_base_.sql_actions);
  stats_.procedures_invoked =
      stats_base_.procedures +
      (dispatcher_.procedures_invoked() - source_base_.procedures);
  stats_.unknown_procedures =
      stats_base_.unknown_procedures +
      (dispatcher_.unknown_procedures() - source_base_.unknown_procedures);
}

void RcedaEngine::ApplyActionProgress(const ActionStage::Progress& p) {
  stats_.sql_actions_executed =
      stats_base_.sql_actions + (p.sql_actions - source_base_.sql_actions);
  stats_.procedures_invoked =
      stats_base_.procedures + (p.procedures - source_base_.procedures);
  stats_.unknown_procedures =
      stats_base_.unknown_procedures +
      (p.unknown_procedures - source_base_.unknown_procedures);
  uint64_t errors =
      stats_base_.errors + (p.firing_errors - source_base_.errors);
  if (errors > stats_.action_errors) {
    if (metrics_ != nullptr) {
      metrics_->action_errors->Increment(errors - stats_.action_errors);
    }
    stats_.action_errors = errors;
  }
  if (deferred_error_.ok() && !p.first_error.ok()) {
    deferred_error_ = p.first_error;
  }
}

void RcedaEngine::SyncActionProgress() {
  if (action_stage_ == nullptr) return;
  ApplyActionProgress(action_stage_->progress());
}

}  // namespace rfidcep::engine
