#include "engine/engine.h"

#include "store/sql_executor.h"

namespace rfidcep::engine {

RcedaEngine::RcedaEngine(store::Database* db, events::Environment env,
                         EngineOptions options)
    : db_(db), env_(env), options_(options), dispatcher_(db) {}

Status RcedaEngine::AddRule(rules::Rule rule) {
  if (compiled()) {
    return Status::FailedPrecondition(
        "cannot add rules after the engine has been compiled");
  }
  for (const rules::Rule& existing : rules_) {
    if (existing.id == rule.id) {
      return Status::AlreadyExists("duplicate rule id '" + rule.id + "'");
    }
  }
  rules_.push_back(std::move(rule));
  return Status::Ok();
}

Status RcedaEngine::AddRules(rules::RuleSet set) {
  for (rules::Rule& rule : set.rules) {
    RFIDCEP_RETURN_IF_ERROR(AddRule(std::move(rule)));
  }
  return Status::Ok();
}

Status RcedaEngine::AddRulesFromText(std::string_view program) {
  RFIDCEP_ASSIGN_OR_RETURN(rules::RuleSet set,
                           rules::ParseRuleProgram(program));
  return AddRules(std::move(set));
}

Status RcedaEngine::RemoveRule(std::string_view rule_id) {
  for (size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i].id == rule_id) {
      Decompile();
      rules_.erase(rules_.begin() + static_cast<long>(i));
      return Status::Ok();
    }
  }
  return Status::NotFound("no rule '" + std::string(rule_id) + "'");
}

Status RcedaEngine::Compile() {
  if (compiled()) return Status::Ok();
  if (rules_.empty()) {
    return Status::FailedPrecondition("no rules registered");
  }
  RFIDCEP_ASSIGN_OR_RETURN(EventGraph graph, EventGraph::Build(rules_));
  graph_.emplace(std::move(graph));
  fired_counts_.assign(rules_.size(), 0);
  detector_ = std::make_unique<Detector>(
      &*graph_, &env_, options_.detector,
      [this](size_t rule_index, const events::EventInstancePtr& instance) {
        OnMatch(rule_index, instance);
      });
  return Status::Ok();
}

void RcedaEngine::Decompile() {
  detector_.reset();
  graph_.reset();
}

Status RcedaEngine::Reset() {
  if (!compiled()) {
    return Status::FailedPrecondition("engine is not compiled");
  }
  detector_ = std::make_unique<Detector>(
      &*graph_, &env_, options_.detector,
      [this](size_t rule_index, const events::EventInstancePtr& instance) {
        OnMatch(rule_index, instance);
      });
  fired_counts_.assign(rules_.size(), 0);
  stats_ = EngineStats{};
  deferred_error_ = Status::Ok();
  return Status::Ok();
}

Status RcedaEngine::Process(const events::Observation& obs) {
  if (!compiled()) RFIDCEP_RETURN_IF_ERROR(Compile());
  Status status = detector_->Process(obs);
  stats_.detector = detector_->stats();
  return status;
}

Status RcedaEngine::ProcessAll(const std::vector<events::Observation>& batch) {
  if (!compiled()) RFIDCEP_RETURN_IF_ERROR(Compile());
  for (const events::Observation& obs : batch) {
    RFIDCEP_RETURN_IF_ERROR(detector_->Process(obs));
  }
  stats_.detector = detector_->stats();
  return Status::Ok();
}

Status RcedaEngine::AdvanceTo(TimePoint t) {
  if (!compiled()) RFIDCEP_RETURN_IF_ERROR(Compile());
  detector_->AdvanceTo(t);
  stats_.detector = detector_->stats();
  return Status::Ok();
}

Status RcedaEngine::Flush() {
  if (!compiled()) RFIDCEP_RETURN_IF_ERROR(Compile());
  detector_->Flush();
  stats_.detector = detector_->stats();
  return Status::Ok();
}

std::string RcedaEngine::DebugReport() const {
  if (!compiled()) return "engine is not compiled\n";
  std::string out = "clock=" + FormatTimePoint(detector_->clock()) +
                    " pending_pseudo=" +
                    std::to_string(detector_->PendingPseudoEvents()) +
                    " buffered=" +
                    std::to_string(detector_->TotalBufferedEntries()) + "\n";
  for (const GraphNode& node : graph_->nodes()) {
    out += "#" + std::to_string(node.id) + " " +
           std::string(DetectionModeName(node.mode)) + " produced=" +
           std::to_string(detector_->ProducedAt(node.id)) + " buffered=" +
           std::to_string(detector_->BufferedAt(node.id)) + " " +
           node.canonical_key + "\n";
  }
  for (size_t i = 0; i < rules_.size(); ++i) {
    out += "rule " + rules_[i].id + " fired=" +
           std::to_string(fired_counts_[i]) + "\n";
  }
  return out;
}

uint64_t RcedaEngine::FiredCount(std::string_view rule_id) const {
  for (size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i].id == rule_id) return fired_counts_[i];
  }
  return 0;
}

void RcedaEngine::OnMatch(size_t rule_index,
                          const events::EventInstancePtr& instance) {
  const rules::Rule& rule = rules_[rule_index];
  if (match_callback_) match_callback_(rule, instance);

  RuleFiring firing;
  firing.rule = &rule;
  firing.instance = instance;
  firing.params = BuildParams(instance->bindings());
  firing.fire_time = detector_->clock();

  if (rule.condition != nullptr) {
    Result<bool> holds =
        store::EvaluateCondition(*rule.condition, firing.params);
    if (!holds.ok()) {
      ++stats_.condition_errors;
      if (deferred_error_.ok()) deferred_error_ = holds.status();
      return;
    }
    if (!*holds) {
      ++stats_.condition_rejects;
      return;
    }
  }
  ++fired_counts_[rule_index];
  ++stats_.rules_fired;

  if (!options_.execute_actions) return;
  Status status = dispatcher_.Dispatch(firing);
  if (!status.ok()) {
    ++stats_.action_errors;
    if (deferred_error_.ok()) deferred_error_ = status;
  }
  stats_.sql_actions_executed = dispatcher_.sql_actions_executed();
  stats_.procedures_invoked = dispatcher_.procedures_invoked();
  stats_.unknown_procedures = dispatcher_.unknown_procedures();
}

}  // namespace rfidcep::engine
