#include "engine/engine.h"

#include "store/sql_executor.h"

namespace rfidcep::engine {

RcedaEngine::RcedaEngine(store::Database* db, events::Environment env,
                         EngineOptions options)
    : db_(db), env_(env), options_(options), dispatcher_(db) {}

Status RcedaEngine::AddRule(rules::Rule rule) {
  if (compiled()) {
    return Status::FailedPrecondition(
        "cannot add rules after the engine has been compiled");
  }
  for (const rules::Rule& existing : rules_) {
    if (existing.id == rule.id) {
      return Status::AlreadyExists("duplicate rule id '" + rule.id + "'");
    }
  }
  rules_.push_back(std::move(rule));
  return Status::Ok();
}

Status RcedaEngine::AddRules(rules::RuleSet set) {
  for (rules::Rule& rule : set.rules) {
    RFIDCEP_RETURN_IF_ERROR(AddRule(std::move(rule)));
  }
  return Status::Ok();
}

Status RcedaEngine::AddRulesFromText(std::string_view program) {
  RFIDCEP_ASSIGN_OR_RETURN(rules::RuleSet set,
                           rules::ParseRuleProgram(program));
  return AddRules(std::move(set));
}

Status RcedaEngine::RemoveRule(std::string_view rule_id) {
  for (size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i].id == rule_id) {
      Decompile();
      rules_.erase(rules_.begin() + static_cast<long>(i));
      return Status::Ok();
    }
  }
  return Status::NotFound("no rule '" + std::string(rule_id) + "'");
}

Status RcedaEngine::SetShards(int shards) {
  if (compiled()) {
    return Status::FailedPrecondition(
        "cannot change the shard count while compiled (Decompile() first)");
  }
  if (shards < 1 || shards > kMaxDetectionShards) {
    return Status::InvalidArgument(
        "shard count must be in [1, " +
        std::to_string(kMaxDetectionShards) + "]");
  }
  options_.shards = shards;
  return Status::Ok();
}

Status RcedaEngine::Compile() {
  if (compiled()) return Status::Ok();
  if (rules_.empty()) {
    return Status::FailedPrecondition("no rules registered");
  }
  RFIDCEP_ASSIGN_OR_RETURN(EventGraph graph, EventGraph::Build(rules_));
  graph_.emplace(std::move(graph));
  fired_counts_.assign(rules_.size(), 0);
  if (options_.shards > 1) {
    ShardedOptions sharded_options;
    sharded_options.shards = options_.shards;
    sharded_options.queue_capacity = options_.shard_queue_capacity;
    sharded_options.detector = options_.detector;
    RFIDCEP_ASSIGN_OR_RETURN(
        sharded_,
        ShardedDetector::Create(
            rules_, *graph_, &env_, sharded_options,
            [this](size_t rule_index,
                   const events::EventInstancePtr& instance,
                   TimePoint fire_time) {
              OnMatch(rule_index, instance, fire_time);
            }));
    return Status::Ok();
  }
  detector_ = std::make_unique<Detector>(
      &*graph_, &env_, options_.detector,
      [this](size_t rule_index, const events::EventInstancePtr& instance) {
        OnMatch(rule_index, instance, detector_->clock());
      });
  return Status::Ok();
}

void RcedaEngine::Decompile() {
  detector_.reset();
  sharded_.reset();
  graph_.reset();
}

Status RcedaEngine::Reset() {
  if (!compiled()) {
    return Status::FailedPrecondition("engine is not compiled");
  }
  if (sharded_ != nullptr) {
    sharded_->Reset();
  } else {
    detector_ = std::make_unique<Detector>(
        &*graph_, &env_, options_.detector,
        [this](size_t rule_index, const events::EventInstancePtr& instance) {
          OnMatch(rule_index, instance, detector_->clock());
        });
  }
  fired_counts_.assign(rules_.size(), 0);
  stats_ = EngineStats{};
  deferred_error_ = Status::Ok();
  return Status::Ok();
}

Status RcedaEngine::Process(const events::Observation& obs) {
  if (!compiled()) RFIDCEP_RETURN_IF_ERROR(Compile());
  Status status;
  if (sharded_ != nullptr) {
    status = sharded_->ProcessBatch(&obs, 1);
    stats_.detector = sharded_->stats();
  } else {
    status = detector_->Process(obs);
    stats_.detector = detector_->stats();
  }
  return status;
}

Status RcedaEngine::ProcessAll(const std::vector<events::Observation>& batch) {
  if (!compiled()) RFIDCEP_RETURN_IF_ERROR(Compile());
  if (sharded_ != nullptr) {
    // Routing fan-out: one barrier and one stats sync per batch.
    Status status = sharded_->ProcessBatch(batch.data(), batch.size());
    stats_.detector = sharded_->stats();
    return status;
  }
  Status status;
  for (const events::Observation& obs : batch) {
    status = detector_->Process(obs);
    if (!status.ok()) break;
  }
  stats_.detector = detector_->stats();
  return status;
}

Status RcedaEngine::AdvanceTo(TimePoint t) {
  if (!compiled()) RFIDCEP_RETURN_IF_ERROR(Compile());
  if (sharded_ != nullptr) {
    sharded_->AdvanceTo(t);
    stats_.detector = sharded_->stats();
  } else {
    detector_->AdvanceTo(t);
    stats_.detector = detector_->stats();
  }
  return Status::Ok();
}

Status RcedaEngine::Flush() {
  if (!compiled()) RFIDCEP_RETURN_IF_ERROR(Compile());
  if (sharded_ != nullptr) {
    sharded_->Flush();
    stats_.detector = sharded_->stats();
  } else {
    detector_->Flush();
    stats_.detector = detector_->stats();
  }
  return Status::Ok();
}

std::string RcedaEngine::DebugReport() const {
  if (!compiled()) return "engine is not compiled\n";
  std::string out;
  if (sharded_ != nullptr) {
    out = sharded_->DebugReport(rules_);
  } else {
    out = "clock=" + FormatTimePoint(detector_->clock()) +
          " pending_pseudo=" +
          std::to_string(detector_->PendingPseudoEvents()) + " buffered=" +
          std::to_string(detector_->TotalBufferedEntries()) + "\n";
    for (const GraphNode& node : graph_->nodes()) {
      out += "#";
      out += std::to_string(node.id);
      out += " ";
      out += DetectionModeName(node.mode);
      out += " produced=";
      out += std::to_string(detector_->ProducedAt(node.id));
      out += " buffered=";
      out += std::to_string(detector_->BufferedAt(node.id));
      out += " ";
      out += node.canonical_key;
      out += "\n";
    }
  }
  for (size_t i = 0; i < rules_.size(); ++i) {
    out += "rule " + rules_[i].id + " fired=" +
           std::to_string(fired_counts_[i]) + "\n";
  }
  return out;
}

uint64_t RcedaEngine::FiredCount(std::string_view rule_id) const {
  for (size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i].id == rule_id) return fired_counts_[i];
  }
  return 0;
}

void RcedaEngine::OnMatch(size_t rule_index,
                          const events::EventInstancePtr& instance,
                          TimePoint fire_time) {
  const rules::Rule& rule = rules_[rule_index];
  if (match_callback_) match_callback_(rule, instance);

  RuleFiring firing;
  firing.rule = &rule;
  firing.instance = instance;
  firing.params = BuildParams(instance->bindings());
  firing.fire_time = fire_time;

  if (rule.condition != nullptr) {
    Result<bool> holds =
        store::EvaluateCondition(*rule.condition, firing.params);
    if (!holds.ok()) {
      ++stats_.condition_errors;
      if (deferred_error_.ok()) deferred_error_ = holds.status();
      return;
    }
    if (!*holds) {
      ++stats_.condition_rejects;
      return;
    }
  }
  ++fired_counts_[rule_index];
  ++stats_.rules_fired;

  if (!options_.execute_actions) return;
  Status status = dispatcher_.Dispatch(firing);
  if (!status.ok()) {
    ++stats_.action_errors;
    if (deferred_error_.ok()) deferred_error_ = status;
  }
  stats_.sql_actions_executed = dispatcher_.sql_actions_executed();
  stats_.procedures_invoked = dispatcher_.procedures_invoked();
  stats_.unknown_procedures = dispatcher_.unknown_procedures();
}

}  // namespace rfidcep::engine
