#include "engine/trace.h"

namespace rfidcep::engine {

namespace {

void AppendField(std::string* out, const char* key, std::string_view value,
                 bool quote) {
  if (out->back() != '{') *out += ',';
  *out += '"';
  *out += key;
  *out += "\":";
  if (quote) {
    *out += '"';
    *out += TraceSink::EscapeJson(value);
    *out += '"';
  } else {
    *out += value;
  }
}

void AppendInt(std::string* out, const char* key, int64_t value) {
  AppendField(out, key, std::to_string(value), /*quote=*/false);
}

void AppendBool(std::string* out, const char* key, bool value) {
  AppendField(out, key, value ? "true" : "false", /*quote=*/false);
}

std::string Begin(const char* kind) {
  std::string out = "{\"k\":\"";
  out += kind;
  out += '"';
  return out;
}

}  // namespace

std::string TraceSink::EscapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

void TraceSink::Write(std::string line) {
  line += '}';
  std::lock_guard<std::mutex> lock(mu_);
  ++records_;
  write_(line);
}

uint64_t TraceSink::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

void TraceSink::RecordObservation(uint64_t seq,
                                  const events::Observation& obs) {
  std::string line = Begin("obs");
  AppendInt(&line, "seq", static_cast<int64_t>(seq));
  AppendField(&line, "reader", obs.reader, /*quote=*/true);
  AppendField(&line, "object", obs.object, /*quote=*/true);
  AppendInt(&line, "t", obs.timestamp);
  Write(std::move(line));
}

void TraceSink::RecordUnrouted(uint64_t seq, const events::Observation& obs) {
  std::string line = Begin("unrouted");
  AppendInt(&line, "seq", static_cast<int64_t>(seq));
  AppendField(&line, "reader", obs.reader, /*quote=*/true);
  AppendField(&line, "object", obs.object, /*quote=*/true);
  AppendInt(&line, "t", obs.timestamp);
  Write(std::move(line));
}

void TraceSink::RecordNodeActivation(int shard, int node_id,
                                     std::string_view mode,
                                     const events::EventInstance& instance) {
  std::string line = Begin("node");
  AppendInt(&line, "shard", shard);
  AppendInt(&line, "node", node_id);
  AppendField(&line, "mode", mode, /*quote=*/true);
  AppendInt(&line, "t0", instance.t_begin());
  AppendInt(&line, "t1", instance.t_end());
  AppendInt(&line, "iseq", static_cast<int64_t>(instance.sequence_number()));
  Write(std::move(line));
}

void TraceSink::RecordPseudoFired(int shard, int node_id, TimePoint execute_at,
                                  TimePoint created_at) {
  std::string line = Begin("pseudo");
  AppendInt(&line, "shard", shard);
  AppendInt(&line, "node", node_id);
  AppendInt(&line, "exec", execute_at);
  AppendInt(&line, "created", created_at);
  Write(std::move(line));
}

void TraceSink::RecordSnapshot(std::string_view op, uint64_t bytes,
                               TimePoint clock, int shards) {
  std::string line = Begin("snapshot");
  AppendField(&line, "op", op, /*quote=*/true);
  AppendInt(&line, "bytes", static_cast<int64_t>(bytes));
  AppendInt(&line, "clock", clock);
  AppendInt(&line, "shards", shards);
  Write(std::move(line));
}

void TraceSink::RecordMatch(std::string_view rule_id,
                            const events::EventInstance& instance,
                            TimePoint fire_time) {
  std::string line = Begin("match");
  AppendField(&line, "rule", rule_id, /*quote=*/true);
  AppendInt(&line, "t0", instance.t_begin());
  AppendInt(&line, "t1", instance.t_end());
  AppendInt(&line, "fire", fire_time);
  Write(std::move(line));
}

void TraceSink::RecordCondition(std::string_view rule_id, bool held) {
  std::string line = Begin("cond");
  AppendField(&line, "rule", rule_id, /*quote=*/true);
  AppendBool(&line, "held", held);
  Write(std::move(line));
}

void TraceSink::RecordAction(std::string_view rule_id, std::string_view kind,
                             bool ok) {
  std::string line = Begin("action");
  AppendField(&line, "rule", rule_id, /*quote=*/true);
  AppendField(&line, "kind", kind, /*quote=*/true);
  AppendBool(&line, "ok", ok);
  Write(std::move(line));
}

}  // namespace rfidcep::engine
