#include "engine/actions.h"

#include <cctype>

#include "engine/trace.h"

namespace rfidcep::engine {

namespace {

store::Value ToValue(const events::BindingValue& value) {
  if (const std::string* s = std::get_if<std::string>(&value)) {
    return store::Value::String(*s);
  }
  return store::Value::Time(std::get<TimePoint>(value));
}

}  // namespace

store::ParamMap BuildParams(const events::Bindings& bindings) {
  store::ParamMap params;
  for (const auto& [var, value] : bindings.scalars()) {
    params.emplace(events::SymbolName(var),
                   store::ParamValue::Scalar(ToValue(value)));
  }
  for (const auto& [var, values] : bindings.multis()) {
    std::vector<store::Value> converted;
    converted.reserve(values.size());
    for (const events::BindingValue& value : values) {
      converted.push_back(ToValue(value));
    }
    params.emplace(events::SymbolName(var),
                   store::ParamValue::Multi(std::move(converted)));
  }
  return params;
}

std::string ActionDispatcher::NormalizeName(std::string_view name) {
  std::string out;
  bool pending_space = false;
  for (char c : name) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out += ' ';
      pending_space = false;
    }
    out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

void ActionDispatcher::RegisterProcedure(std::string_view name,
                                         Procedure procedure) {
  procedures_[NormalizeName(name)] = std::move(procedure);
}

void ActionDispatcher::AttachWal(store::Wal* wal) {
  wal_ = wal;
  executed_ = wal != nullptr ? wal->recovered_actions() : store::WalActionMap{};
}

Status ActionDispatcher::Dispatch(const RuleFiring& firing) {
  Status first_error;
  const auto& actions = firing.rule->actions;
  for (uint32_t index = 0; index < actions.size(); ++index) {
    const rules::RuleAction& action = actions[index];
    switch (action.kind) {
      case rules::RuleAction::Kind::kSql: {
        if (db_ == nullptr) {
          if (first_error.ok()) {
            first_error = Status::FailedPrecondition(
                "rule '" + firing.rule->id +
                "' has SQL actions but the engine has no database");
          }
          continue;
        }
        if (wal_ != nullptr) {
          auto hit = executed_.find(
              store::WalActionKey(firing.rule->id, firing.seq, index));
          if (hit != executed_.end()) {
            // Effect already durable (recovered from the log): credit the
            // logical counters and skip re-execution.
            ++sql_actions_executed_;
            ++actions_deduped_;
            rows_written_ += hit->second;
            if (instruments_ != nullptr) {
              instruments_->sql_actions->Increment();
              instruments_->rows_written->Increment(hit->second);
              instruments_->deduped->Increment();
            }
            continue;
          }
        }
        Result<store::ExecResult> result =
            store::ExecuteSql(action.sql, db_, firing.params);
        if (trace_ != nullptr) {
          trace_->RecordAction(firing.rule->id, "sql", result.ok());
        }
        if (!result.ok()) {
          if (first_error.ok()) first_error = result.status();
          continue;
        }
        if (wal_ != nullptr) {
          store::WalRecord record;
          record.action_seq = firing.seq;
          record.action_index = index;
          record.affected = static_cast<uint32_t>(result->affected);
          record.rule_id = firing.rule->id;
          record.sql = action.sql_text;
          record.params = firing.params;
          Result<uint64_t> appended = wal_->Append(std::move(record));
          if (!appended.ok() && first_error.ok()) {
            first_error = appended.status();
          }
        }
        ++sql_actions_executed_;
        rows_written_ += result->affected;
        if (instruments_ != nullptr) {
          instruments_->sql_actions->Increment();
          instruments_->rows_written->Increment(result->affected);
        }
        break;
      }
      case rules::RuleAction::Kind::kProcedure: {
        const std::string name = NormalizeName(action.procedure_name);
        auto it = procedures_.find(name);
        if (it == procedures_.end()) {
          ++unknown_procedures_;
          if (instruments_ != nullptr) {
            instruments_->unknown_procedures->Increment();
          }
          continue;
        }
        if (wal_ != nullptr &&
            executed_.count(store::WalActionKey(firing.rule->id, firing.seq,
                                                index)) != 0) {
          // The callback already ran before the crash and its frame
          // survived in the log: credit the logical counters and skip
          // re-invocation — this is what keeps alarms single-fire
          // across a restore.
          ++procedures_invoked_;
          ++actions_deduped_;
          if (instruments_ != nullptr) {
            instruments_->procedures->Increment();
            instruments_->deduped->Increment();
          }
          if (trace_ != nullptr) {
            trace_->RecordAction(firing.rule->id, "proc", true);
          }
          continue;
        }
        // Replayed firings have no event instance any more; procedures
        // are credited for counter parity but not re-invoked (and not
        // logged: no frame may claim an invocation that never happened).
        if (!firing.replayed) {
          it->second(firing, action.procedure_args);
          if (wal_ != nullptr) {
            // Log after the callback returns. A crash in between loses
            // the frame and recovery re-invokes: external effects are
            // at-least-once in that window (docs/recovery.md), while
            // logging first would let a logged-but-never-run alarm
            // vanish entirely, which is worse.
            store::WalRecord record;
            record.kind = name.find("alarm") != std::string::npos
                              ? store::WalRecordKind::kAlarm
                              : store::WalRecordKind::kProcedure;
            record.action_seq = firing.seq;
            record.action_index = index;
            record.rule_id = firing.rule->id;
            record.sql = name;
            record.params = firing.params;
            Result<uint64_t> appended = wal_->Append(std::move(record));
            if (!appended.ok() && first_error.ok()) {
              first_error = appended.status();
            }
          }
        }
        ++procedures_invoked_;
        if (instruments_ != nullptr) instruments_->procedures->Increment();
        if (trace_ != nullptr) {
          trace_->RecordAction(firing.rule->id, "proc", true);
        }
        break;
      }
    }
  }
  return first_error;
}

}  // namespace rfidcep::engine
