// The RCEDA runtime (paper §4.4–§4.6).
//
// The detector walks an EventGraph with per-node runtime state:
//
//   * binary nodes (AND, SEQ/TSEQ) keep slot buffers of unconsumed
//     constituent instances, pruned by deadlines derived from the node's
//     propagated WITHIN bound and distance constraints. Buffers are
//     hash-bucketed by the node's equality-join variables (graph
//     join_vars), so a rule like the duplicate filter — which joins on
//     the same (reader, object) — pairs in O(1) expected time instead of
//     scanning the whole window;
//   * NOT nodes keep a time-ordered log of their child's occurrences
//     (bucketed the same way) and answer window queries ("was there an
//     occurrence unifying with these bindings in [a, b]?");
//   * SEQ+/TSEQ+ nodes keep the open run of adjacent occurrences, closing
//     it on a distance-constraint violation, at expiry (via a pseudo
//     event), or when a sequence terminator forces closure;
//   * non-spontaneous completions are driven by *pseudo events* held in a
//     queue sorted by execution time and interleaved with the observation
//     stream, exactly as in §4.5.
//
// Instances pair under a configurable parameter context (chronicle by
// default, §4.2); shared variables across constituents must unify
// (equality joins).

#ifndef RFIDCEP_ENGINE_DETECTOR_H_
#define RFIDCEP_ENGINE_DETECTOR_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include <memory>

#include "common/metrics.h"
#include "common/status.h"
#include "common/strings.h"
#include "engine/context.h"
#include "engine/graph.h"
#include "engine/rule_index.h"
#include "events/binding.h"
#include "events/event_instance.h"
#include "events/event_type.h"

namespace rfidcep::engine {

class TraceSink;

namespace snapshot {
struct DetectorSnapshot;
struct RestorePlan;
}  // namespace snapshot

// Registry instrument handles for one detector. The engine (or the
// sharded pipeline, one per shard) resolves these from its
// MetricsRegistry at compile time; a null DetectorOptions::instruments
// disables every update site with a single branch. Individual fields may
// also be null (e.g. the sharded pipeline counts observations once at
// the routing stage, so per-shard detectors leave those unset).
struct DetectorInstruments {
  common::Counter* observations = nullptr;
  common::Counter* out_of_order_dropped = nullptr;
  common::Counter* primitive_matches = nullptr;
  common::Counter* instances_produced = nullptr;
  common::Counter* rule_matches = nullptr;
  common::Counter* pseudo_scheduled = nullptr;
  common::Counter* pseudo_fired = nullptr;
  common::Gauge* pseudo_queue_depth = nullptr;
  common::Gauge* pseudo_queue_peak = nullptr;
  // Event-time lag between a pseudo event's scheduled execution time and
  // the clock when it actually fired (0 when fired exactly on time by the
  // stream; positive when a later observation or AdvanceTo drove it).
  common::Histogram* pseudo_lag_us = nullptr;
  // Observations dispatched through the full-scan fallback (the rule
  // set's leaves constrain neither reader, group, nor pushed type, so
  // indexed dispatch degenerates to visiting every leaf).
  common::Counter* dispatch_fullscan = nullptr;
  // Instances emitted per graph node, indexed by node id (all non-null
  // when the vector is sized; empty disables per-node counting).
  std::vector<common::Counter*> node_firings;
};

struct DetectorOptions {
  ParameterContext context = ParameterContext::kChronicle;
  // If true, observations older than the clock are counted and dropped;
  // if false they fail with kInvalidArgument.
  bool tolerate_out_of_order = false;
  // Test hook: map every complete join key onto one constant bucket so
  // distinct join-value tuples always "collide". Detection results must
  // be identical (bucket scans re-check unification); only performance
  // degrades. Never enable outside tests.
  bool debug_force_join_collisions = false;
  // Observability wiring, set by the engine / sharded pipeline. Both may
  // be null (the default): the disabled path is a branch on a null
  // pointer at each update site. `instruments` must outlive the detector.
  const DetectorInstruments* instruments = nullptr;
  TraceSink* trace = nullptr;
  // Label for trace records and per-shard metrics (0 in serial mode).
  int shard_id = 0;
  // Rule-set compile options. indexed_dispatch/predicate_pushdown pick
  // the dispatch implementation here; share_prefixes acts at graph build
  // time and is carried by the graph itself.
  CompileOptions compile;
};

struct DetectorStats {
  uint64_t observations = 0;           // Observations accepted.
  uint64_t out_of_order_dropped = 0;
  uint64_t primitive_matches = 0;      // (observation, leaf-node) matches.
  uint64_t instances_produced = 0;     // Complex instances emitted.
  uint64_t pseudo_scheduled = 0;
  uint64_t pseudo_fired = 0;
  uint64_t rule_matches = 0;           // Root completions reported.
};

// Resolves the per-shard instrument set (labels `shard="N"`, one
// per-node firing counter per graph node) from `registry`. The global
// acceptance counters (observations / out_of_order_dropped) are left
// null — the owner decides whether this detector is the acceptance gate
// (serial engine) or not (sharded workers, counted at routing).
DetectorInstruments MakeDetectorInstruments(common::MetricsRegistry* registry,
                                            int shard_id,
                                            const EventGraph& graph);

// Called when rule `rule_index`'s event completes with `instance`.
using RuleMatchCallback =
    std::function<void(size_t rule_index,
                       const events::EventInstancePtr& instance)>;

class Detector {
 public:
  // `graph` and `env` must outlive the detector.
  Detector(const EventGraph* graph, const events::Environment* env,
           DetectorOptions options, RuleMatchCallback on_match);

  Detector(const Detector&) = delete;
  Detector& operator=(const Detector&) = delete;

  // Feeds one observation. Timestamps must be non-decreasing (see
  // DetectorOptions::tolerate_out_of_order). Pseudo events scheduled
  // strictly before the observation's timestamp fire first.
  Status Process(const events::Observation& obs);

  // Fires all pseudo events with execution time strictly before `t` and
  // advances the clock to `t` (no-op if `t` is in the past). Pseudos at
  // exactly `t` stay pending — identical to Process(obs@t), so
  // AdvanceTo(t); Process(obs@t) is equivalent to Process(obs@t): an
  // observation at the boundary instant is handled before the expiry it
  // coincides with (closed NOT windows, closed SEQ+ distance bounds).
  void AdvanceTo(TimePoint t);

  // Fires every remaining pseudo event (end of stream).
  void Flush();

  TimePoint clock() const { return clock_; }
  const DetectorStats& stats() const { return stats_; }

  // --- Command identity (sharded replay) ----------------------------------
  // Serial callers never touch these: each Process() call auto-increments
  // an internal command counter. Sharded workers override it with the
  // coordinator's global command sequence before every command, so the
  // scheduling stamps (PseudoEvent::stamp) and match replay keys agree
  // across shards regardless of which subset of the stream each one sees.
  void SetCommandSeq(uint64_t seq) {
    external_seq_ = true;
    cmd_seq_ = seq;
  }
  uint64_t command_seq() const { return cmd_seq_; }

  // Firing context, valid while a match callback runs: whether the match
  // was emitted during a pseudo-event firing (as opposed to observation
  // dispatch), and if so the firing pseudo's execution time and stamp.
  // Sharded emission uses these to stamp match records for replay.
  bool in_pseudo_firing() const { return firing_ != nullptr; }
  TimePoint firing_execute_at() const { return firing_->execute_at; }
  const std::vector<uint64_t>& firing_stamp() const { return firing_->stamp; }

  // Total buffered entries across all nodes (tests/benchmarks: bounded
  // memory under expiry GC).
  size_t TotalBufferedEntries() const;

  // Instances produced by graph node `node_id` so far.
  uint64_t ProducedAt(int node_id) const {
    return produced_per_node_[node_id];
  }
  // Currently buffered entries (slots + NOT log + open run elements) at
  // graph node `node_id`.
  size_t BufferedAt(int node_id) const;
  // Pseudo events currently pending in the queue.
  size_t PendingPseudoEvents() const { return pseudo_queue_.size(); }

  // Observations dispatched through the full-scan fallback (see
  // DetectorInstruments::dispatch_fullscan); 0 when the rule set has
  // subscribable vocabulary or indexed dispatch is off.
  uint64_t FullscanObservations() const { return fullscan_observations_; }

  // --- Checkpoint/restore (engine/snapshot.h) -----------------------------
  // Captures this detector's runtime state into `out`. `state_keys` is
  // EventGraph::NodeStateKeys for this detector's graph (one key per
  // node). The caller must have advanced the detector to the capture
  // clock first (see snapshot.h): entries already past their deadline are
  // skipped, pending pseudo events all execute at or after the clock.
  void SaveState(const std::vector<std::string>& state_keys,
                 snapshot::DetectorSnapshot* out) const;
  // Replaces this detector's runtime state with `plan` (built by
  // snapshot::BuildRestorePlan against this detector's graph) and
  // installs `stats`. Join-bucket keys, expiry deques, and SEQ+ run
  // bindings are recomputed; anchors re-key via their restored instances.
  Status RestoreState(const snapshot::RestorePlan& plan,
                      const DetectorStats& stats);

 private:
  // A precomputed 64-bit equality-join bucket key (see binding.h's
  // ComputeJoinKey). Computed once per (node, instance) at emit/arrival
  // time and carried alongside the instance — never rebuilt per probe,
  // and never materialized as a string.
  struct JoinKey {
    uint64_t hash = events::kWildcardJoinKey;
    bool complete = false;  // False: some join variable was unbound.
  };

  struct BufferedEntry {
    events::EventInstancePtr instance;
    TimePoint deadline;  // Prune once clock > deadline.
  };

  // Instances bucketed by their hashed equality-join key. Entries missing
  // a join variable land in the wildcard bucket (kWildcardJoinKey), which
  // every lookup also scans. Distinct join tuples may share a bucket
  // (hash collision); pairing re-checks unification, so collisions cost
  // time, not correctness.
  struct SlotBuffer {
    std::unordered_map<uint64_t, std::deque<BufferedEntry>> buckets;
    // (deadline, bucket key) in insertion order; drained as the clock
    // advances to prune expired bucket fronts without full sweeps.
    std::deque<std::pair<TimePoint, uint64_t>> expiry;
    size_t total = 0;
  };

  struct NotLog {
    std::unordered_map<uint64_t, std::deque<events::EventInstancePtr>>
        buckets;
    std::deque<std::pair<TimePoint, uint64_t>> expiry;
    size_t total = 0;
  };

  struct Run {
    std::vector<events::EventInstancePtr> elements;
    events::Bindings bindings;  // Multi-valued union of element bindings.
    TimePoint t_begin = 0;
    TimePoint t_end = 0;
  };

  struct NodeState {
    SlotBuffer slots[2];  // AND both, SEQ slot 0.
    NotLog not_log;       // NOT only.
    std::vector<Run> open_runs;  // SEQ+ only (<=1 open).
  };

  struct PseudoEvent {
    TimePoint execute_at;  // te
    TimePoint created_at;  // tc
    int target_node;       // Node queried (NOT node or the SEQ+ itself).
    int parent_node;       // Node acting on the result.
    uint64_t anchor_seq;   // Buffered anchor instance (0 = none).
    uint64_t anchor_key;   // Bucket holding the anchor.
    uint64_t order;        // FIFO tie-break.
    // Scheduling-position stamp: a layout-independent encoding of WHERE
    // in the serial execution this pseudo was scheduled, so detectors
    // running disjoint substreams (data-partitioned shards) can merge
    // their pseudo-driven emissions back into serial FIFO order.
    //   dispatch-scheduled: [clock, 0, command_seq, sub]
    //   cascade-scheduled : [parent.execute_at, 1, parent.stamp..., sub]
    // For pseudos with equal execute_at, lexicographic stamp order equals
    // the serial scheduling order (dispatch at time t precedes firings at
    // execute_at == t; a cascade sorts after its parent).
    std::vector<uint64_t> stamp;
  };
  struct PseudoLater {
    bool operator()(const PseudoEvent& a, const PseudoEvent& b) const {
      if (a.execute_at != b.execute_at) return a.execute_at > b.execute_at;
      return a.order > b.order;
    }
  };

  // --- Routing ------------------------------------------------------------
  void Emit(int node_id, events::EventInstancePtr instance);
  void RouteToParent(int parent_id, int child_id,
                     const events::EventInstancePtr& instance);
  // Binary arrivals take the instance's join key under the target node,
  // computed once by RouteToParent.
  void AndArrival(int node_id, int slot, const events::EventInstancePtr& e,
                  JoinKey key);
  void SeqTerminatorArrival(int node_id, const events::EventInstancePtr& e2,
                            JoinKey key);
  void SeqInitiatorArrival(int node_id, const events::EventInstancePtr& e1,
                           JoinKey key);
  void SeqPlusArrival(int node_id, const events::EventInstancePtr& e);

  // Closes expired/forced SEQ+ runs and emits them. `force` closes the
  // open run regardless of expiry (terminator-driven closure).
  // Closes the open run if forced or expired. include_now controls whether
  // a run expiring exactly at clock_ counts as expired: true only on the
  // pseudo-event path, which fires strictly after the expiry has passed.
  void MaterializeSeqPlus(int node_id, bool force, bool include_now);
  void CloseRun(int node_id, Run run);

  // --- Slot buffers --------------------------------------------------------
  // Hashed bucket key of `bindings` under the node's join variables;
  // wildcard (incomplete) when a variable is unbound.
  JoinKey KeyFor(int node_id, const events::Bindings& bindings) const;
  void BufferInsert(int node_id, int slot, events::EventInstancePtr e,
                    TimePoint deadline, JoinKey key);
  void DrainSlotExpiry(SlotBuffer* slot) const;
  void PruneBucketFront(std::deque<BufferedEntry>* bucket,
                        size_t* total) const;

  // --- Pairing ------------------------------------------------------------
  // Pairs `incoming` (whose join key under this node is `key`) against the
  // opposite slot buffer per the parameter context. Returns true if at
  // least one pair was produced.
  bool PairBinary(int node_id, int incoming_slot,
                  const events::EventInstancePtr& incoming, JoinKey key);
  void ProducePair(int node_id, const events::EventInstancePtr& initiator,
                   const events::EventInstancePtr& terminator);

  // --- NOT queries ------------------------------------------------------------
  bool NotHasOccurrence(int not_node_id, const events::Bindings& probe,
                        TimePoint from, TimePoint to, bool include_from,
                        bool include_to);
  void NotLogInsert(int not_node_id, const events::EventInstancePtr& e);
  void PruneNotLog(int not_node_id);

  // --- Pseudo events ------------------------------------------------------------
  void SchedulePseudo(TimePoint execute_at, TimePoint created_at,
                      int target_node, int parent_node, uint64_t anchor_seq,
                      uint64_t anchor_key);
  void FirePseudo(const PseudoEvent& pe);
  void FirePseudosBefore(TimePoint t);  // execute_at < t.

  // --- Helpers -------------------------------------------------------------------
  uint64_t NextSeq() { return ++sequence_counter_; }

  const EventGraph* graph_;
  const events::Environment* env_;
  DetectorOptions options_;
  RuleMatchCallback on_match_;

  std::vector<NodeState> states_;
  std::vector<uint64_t> produced_per_node_;
  std::vector<bool> seqplus_self_;  // Precomputed self-closure flags.
  // Primitive dispatch, one of two implementations chosen at compile
  // time (DetectorOptions::compile.indexed_dispatch):
  //  * compiled inverted index with optional predicate pushdown;
  //  * legacy bucket scan: reader literal / group-constraint value ->
  //    leaves, probed with string_views via transparent hashing.
  std::unique_ptr<PrimitiveIndex> index_;
  StringViewMap<std::vector<int>> primitive_by_reader_key_;
  std::vector<int> primitive_unkeyed_;
  uint64_t fullscan_observations_ = 0;

  std::priority_queue<PseudoEvent, std::vector<PseudoEvent>, PseudoLater>
      pseudo_queue_;
  TimePoint clock_ = 0;
  uint64_t sequence_counter_ = 0;
  uint64_t pseudo_counter_ = 0;
  // Command identity + scheduling position (see SetCommandSeq above).
  uint64_t cmd_seq_ = 0;
  bool external_seq_ = false;
  uint64_t dispatch_sub_ = 0;          // Schedules during current dispatch.
  uint64_t fire_sub_ = 0;              // Schedules during current firing.
  const PseudoEvent* firing_ = nullptr;  // Set for the span of FirePseudo.
  DetectorStats stats_;
};

}  // namespace rfidcep::engine

#endif  // RFIDCEP_ENGINE_DETECTOR_H_
