// The RCEDA event graph (paper §4.3–§4.5).
//
// Given a set of rules, we build one DAG whose leaves are primitive event
// types and whose internal nodes are complex-event constructors. Building
// proceeds in the paper's phases:
//
//   1. per-rule expression trees, with WITHIN interval constraints
//      propagated top-down (child.within = min(child.within,
//      parent.within));
//   2. common-subgraph merging by canonical key, so shared subevents are
//      detected once;
//   3. bottom-up detection-mode assignment (push / pull / mixed);
//   4. top-down pseudo-event planning (which nodes anchor expiry timers
//      and which non-spontaneous nodes they query);
//   5. validation: a rule whose root would be pull-mode (or whose expiry
//      window is unbounded) can never fire and is rejected as invalid.

#ifndef RFIDCEP_ENGINE_GRAPH_H_
#define RFIDCEP_ENGINE_GRAPH_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "events/expr.h"
#include "rules/rule.h"

namespace rfidcep::engine {

enum class DetectionMode {
  kPush = 0,  // Spontaneous: occurrences propagate bottom-up.
  kMixed,     // Needs pseudo events / on-demand materialization.
  kPull,      // Only answers explicit queries (NOT).
};

std::string_view DetectionModeName(DetectionMode mode);

// Rule-set compile options (the rule compiler). The engine defaults all
// three on; EventGraph::Build's bare overloads default share_prefixes off
// so ad-hoc graphs keep the historical private-SEQ+ layout.
struct CompileOptions {
  // Dispatch observations through a vocabulary-inverted index
  // (engine/rule_index.h) instead of scanning reader-key leaf buckets.
  bool indexed_dispatch = true;
  // Hoist leaf type(o) equality predicates into the index probe so each
  // is evaluated once per observation, not once per subscribed leaf.
  // Only meaningful with indexed_dispatch.
  bool predicate_pushdown = true;
  // Hash-cons share-eligible SEQ+ nodes across rules (safe prefix
  // sharing; see EventGraph::Intern for the eligibility rule).
  bool share_prefixes = true;
};

struct GraphNode {
  int id = -1;
  events::ExprOp op = events::ExprOp::kPrimitive;
  events::PrimitiveEventType primitive;  // Leaves only.
  Duration dist_lo = 0;                      // kSeq / kSeqPlus.
  Duration dist_hi = kDurationInfinity;      // kSeq / kSeqPlus.
  Duration within = kDurationInfinity;       // Propagated interval bound.
  std::vector<int> children;                 // Child node ids (slot order).
  std::vector<int> parents;                  // Parent node ids (deduped).
  std::vector<size_t> rule_indexes;          // Rules rooted at this node.
  DetectionMode mode = DetectionMode::kPush;
  // How long this node's occurrence log / output must stay queryable by
  // parents (drives buffer GC); kDurationInfinity disables GC.
  Duration retention = 0;
  // Scalar variables guaranteed to be bound by every instance of this
  // node (sorted). OR takes the intersection of its branches; NOT and
  // SEQ+ bind nothing scalar.
  std::vector<std::string> bound_vars;
  // Equality-join keys:
  //  * kAnd/kSeq: variables shared by both children — instances can only
  //    pair when they agree on these, so slot buffers are hash-bucketed
  //    by them (the duplicate-filter rule's same-(r,o) join).
  //  * kNot: variables shared by the negated child and every sibling that
  //    queries it — the occurrence log is bucketed by them.
  std::vector<std::string> join_vars;
  // join_vars as interned symbols (same order); the detector hashes join
  // keys over these so the per-event path never touches variable names.
  std::vector<events::SymbolId> join_syms;
  std::string canonical_key;
  // SEQ+ only: whether this occurrence may be hash-consed across rules
  // (bounded expiry and not closed by a positive SEQ terminator — see
  // Intern). Computed identically whether or not sharing is enabled, so
  // state keys/aliases agree across compile modes.
  bool seqplus_share_eligible = false;
};

class EventGraph {
 public:
  // Builds the merged, validated graph for `rules`. Each rule's event is
  // interval-propagated, hash-consed into shared nodes, and validated.
  // Fails with kFailedPrecondition naming the first invalid rule.
  // `share_prefixes` additionally hash-conses share-eligible SEQ+ nodes
  // across rules (CompileOptions::share_prefixes); it defaults off so
  // callers that build ad-hoc graphs keep the historical layout.
  static Result<EventGraph> Build(const std::vector<rules::Rule>& rules,
                                  bool share_prefixes = false);
  // Same, over an arbitrary selection of rules (rules are move-only, so
  // shard compilation selects by pointer). Rule indexes in the resulting
  // graph are positions in `rules`.
  static Result<EventGraph> Build(const std::vector<const rules::Rule*>& rules,
                                  bool share_prefixes = false);

  // Whether this graph was built with SEQ+ prefix sharing enabled.
  bool share_prefixes() const { return share_prefixes_; }

  const std::vector<GraphNode>& nodes() const { return nodes_; }
  const GraphNode& node(int id) const { return nodes_[id]; }
  size_t num_nodes() const { return nodes_.size(); }

  // Root node id for rule index `rule_index`.
  int RuleRoot(size_t rule_index) const { return rule_roots_[rule_index]; }

  // The compiled (normalized, interval-propagated, hash-consed) event
  // expression of rule `rule_index`, rebuilt as a walkable EventExpr tree.
  // Shared subgraphs come back as shared subtrees (same EventExprPtr), so
  // structural sharing survives the round trip. This is the form the
  // reference interpreter (src/engine/reference/) evaluates: it reflects
  // exactly what the detector runs, not what the rule author wrote.
  events::EventExprPtr RuleExpr(size_t rule_index) const;

  // All leaf (primitive) node ids.
  const std::vector<int>& primitive_nodes() const { return primitive_nodes_; }

  // --- Routing (sharded detection) ---------------------------------------
  // The primitive subscription vocabulary of this graph: every reader
  // literal and group-constraint value over its leaves. An observation can
  // only match a leaf here if its reader — or its reader's group — hits
  // `reader_keys`, unless `any_reader` is set (some leaf constrains
  // neither the reader nor its group). This is the same key choice the
  // detector's primitive dispatch map uses, so routing by it is exact.
  struct Subscription {
    std::vector<std::string> reader_keys;  // Sorted, deduped.
    bool any_reader = false;
  };
  Subscription ComputeSubscription() const;

  // --- Data partitioning (sharded detection) ------------------------------
  // Whether a rule can be evaluated per partition key without ever
  // consulting state from another key — the equivalence-preserving
  // condition for hashing observations across graph replicas. A rule is
  // EPC-keyed when every leaf (positive and negated) binds the same
  // non-literal object variable: every join, NOT-window probe, and
  // chronicle pairing then unifies on that variable, so the state touched
  // by an observation is a function of its object value alone. Site-keyed
  // is the same argument over the reader variable. SEQ+ disqualifies a
  // rule outright: open runs absorb instances across keys.
  enum class RulePartitionClass {
    kEpcKeyed = 0,   // Partition by hash(observation.object).
    kSiteKeyed,      // Partition by hash(observation.reader).
    kCrossObject,    // Not key-partitionable: rule-sharded fallback.
  };
  struct RulePartition {
    RulePartitionClass cls = RulePartitionClass::kCrossObject;
    std::string key_var;  // The shared variable (keyed classes only).
  };
  RulePartition ClassifyRulePartition(size_t rule_index) const;

  // For a graph whose rules are all keyed on one dimension: the partition
  // variable each node's instances bind (the object/reader variable of
  // any leaf under the node — hash-consing makes it unique per node).
  // Used to re-bucket restored state onto keyed replicas. Empty string
  // for nodes with no such variable (literal terms).
  std::vector<std::string> NodePartitionVars(bool object_dim) const;

  // --- Snapshots (engine/snapshot.h) --------------------------------------
  // A graph-independent identity for every node's runtime state, used to
  // match detector state across differently-partitioned graphs over the
  // same rule set (serial <-> sharded restore). Shareable nodes are
  // identified by their canonical key (hash-consing makes it unique in
  // any graph). Private SEQ+ nodes — duplicate canonical keys are
  // possible — are qualified by position: a SEQ+ rule root by the owning
  // rule's id (`rule_ids[rule_index]`), a nested SEQ+ by its unique
  // parent's state key and child slot. Under share_prefixes, eligible
  // SEQ+ nodes are instead keyed "shared|<canonical key>": sharing makes
  // the canonical key unique again, and a shared node's trajectory is
  // identical to each private copy's, so the two layouts restore into
  // each other via NodeStateAliases().
  std::vector<std::string> NodeStateKeys(
      const std::vector<std::string>& rule_ids) const;

  // Companion to NodeStateKeys: for each node, the canonical key under
  // which its state is equivalent across shared/unshared compiles —
  // non-empty exactly for share-eligible SEQ+ nodes. BuildRestorePlan
  // uses it to match "rule:<id>|<key>" private copies against
  // "shared|<key>" shared state (either direction) when no exact state
  // key matches.
  std::vector<std::string> NodeStateAliases() const;

  // Rules that must be detected on the same shard: two rules sharing a
  // SEQ+ node are coupled through its open-run state (one rule's
  // sequence terminator or expiry pseudo event closes the run the other
  // rule consumes), so evaluating them on separate graph copies could
  // diverge from serial execution. Returns a partition of all rule
  // indexes into such coupled groups (singletons for uncoupled rules),
  // ordered by each group's smallest rule index.
  std::vector<std::vector<size_t>> CoupledRuleGroups() const;

  // Human-readable dump (one line per node) for debugging and docs.
  std::string DebugString() const;

 private:
  EventGraph() = default;

  // Recursively interns `expr` (already interval-propagated) and returns
  // its node id. `terminator_closed` says the occurrence sits in the
  // initiator slot of a SEQ whose terminator is positive — the one
  // context where an arriving terminator force-closes SEQ+ runs, making
  // cross-rule sharing unsafe.
  int Intern(const events::EventExpr& expr, bool terminator_closed);

  void ComputeModes();
  void ComputeRetention();
  void ComputeJoinVars();
  Status Validate(const std::vector<const rules::Rule*>& rules) const;

  std::vector<GraphNode> nodes_;
  std::vector<int> rule_roots_;
  std::vector<int> primitive_nodes_;
  std::unordered_map<std::string, int> interned_;
  bool share_prefixes_ = false;
};

// Returns a copy of `expr` with interval constraints pushed down:
// every child's within becomes min(child.within, parent.within)
// (paper §4.3, Fig. 7).
events::EventExprPtr PropagateIntervalConstraints(
    const events::EventExprPtr& expr);

}  // namespace rfidcep::engine

#endif  // RFIDCEP_ENGINE_GRAPH_H_
